package dsenergy

import (
	"dsenergy/internal/cronos"
	"dsenergy/internal/ligen"
	"dsenergy/internal/xrand"
)

// This file exposes the reference CPU implementations of the two
// applications, so downstream users can run the actual science — an MHD
// simulation, a virtual-screening campaign — not just their energy profiles.

// Magnetohydrodynamics (Cronos).
type (
	// MHDConfig configures the finite-volume MHD solver.
	MHDConfig = cronos.Config
	// MHDSolver advances an ideal-MHD state per Algorithm 1 of the paper.
	MHDSolver = cronos.Solver
	// MHDGrid is the conserved-variable mesh.
	MHDGrid = cronos.Grid
	// MHDBoundary selects the boundary condition.
	MHDBoundary = cronos.Boundary
)

// MHD boundary conditions.
const (
	MHDPeriodic = cronos.Periodic
	MHDOutflow  = cronos.Outflow
)

// MUSCL slope limiters (MHDConfig.Limiter).
const (
	// LimiterMinmod is the robust default.
	LimiterMinmod = cronos.LimiterMinmod
	// LimiterVanLeer is sharper on smooth solutions.
	LimiterVanLeer = cronos.LimiterVanLeer
)

// NewMHDSolver builds an MHD solver; initialize its grid with one of the
// InitMHD* helpers before running.
func NewMHDSolver(cfg MHDConfig) (*MHDSolver, error) { return cronos.NewSolver(cfg) }

// InitMHDBlastWave sets up the magnetized blast-wave problem.
func InitMHDBlastWave(g *MHDGrid, pAmbient, pBlast, radius float64) {
	cronos.InitBlastWave(g, pAmbient, pBlast, radius)
}

// InitMHDAlfvenWave sets up a travelling circularly polarized Alfvén wave.
func InitMHDAlfvenWave(g *MHDGrid, amplitude float64) { cronos.InitAlfvenWave(g, amplitude) }

// User-provided conservation laws (a documented Cronos capability: "the
// code also allows the solver to be used for other conservation laws that
// can be provided by the user").
type (
	// ConservationLaw is a user-provided scalar law ∂u/∂t + ∇·F(u) = 0.
	ConservationLaw = cronos.ScalarLaw
	// ScalarSolver advances a user-provided conservation law on the mesh.
	ScalarSolver = cronos.ScalarSolver
	// AdvectionLaw is linear advection (an exactly solvable smoke test).
	AdvectionLaw = cronos.AdvectionLaw
	// BurgersLaw is the inviscid Burgers equation (shock formation).
	BurgersLaw = cronos.BurgersLaw
)

// NewScalarSolver builds a solver for a user-provided conservation law.
func NewScalarSolver(law ConservationLaw, nx, ny, nz int, b MHDBoundary) (*ScalarSolver, error) {
	return cronos.NewScalarSolver(law, nx, ny, nz, b)
}

// Drug discovery (LiGen).
type (
	// Ligand is a small molecule with rotatable bonds.
	Ligand = ligen.Ligand
	// LigandLibrary is a chemical library to screen.
	LigandLibrary = ligen.Library
	// Pocket is the protein binding site (docking target).
	Pocket = ligen.Pocket
	// DockParams are Algorithm 2's parameters.
	DockParams = ligen.Params
	// DockResult is the outcome of docking one ligand.
	DockResult = ligen.DockResult
	// ScreenResult is one row of a virtual-screening ranking.
	ScreenResult = ligen.ScreenResult
)

// GenLigandLibrary synthesizes a deterministic chemical library of n ligands
// with the given per-ligand structure.
func GenLigandLibrary(seed uint64, n, atoms, fragments int) (*LigandLibrary, error) {
	return ligen.GenLibrary(xrand.New(seed), n, atoms, fragments)
}

// GenPocket synthesizes a deterministic protein pocket on an n³ grid of the
// given half-width (Å).
func GenPocket(seed uint64, n int, extent float64) (*Pocket, error) {
	return ligen.GenPocket(xrand.New(seed), n, extent)
}

// DefaultDockParams returns campaign-scale docking parameters.
func DefaultDockParams() DockParams { return ligen.DefaultParams() }

// FastDockParams returns reduced docking parameters suited to CPU-reference
// demos and tests.
func FastDockParams() DockParams { return ligen.TestParams() }

// Dock runs Algorithm 2 for one ligand.
func Dock(l *Ligand, target *Pocket, params DockParams, seed uint64) (DockResult, error) {
	return ligen.Dock(l, target, params, xrand.New(seed))
}

// Screen ranks a library against the target over a goroutine worker pool;
// results are deterministic in seed regardless of worker count.
func Screen(lib *LigandLibrary, target *Pocket, params DockParams, workers int, seed uint64) ([]ScreenResult, error) {
	return ligen.Screen(lib, target, params, workers, seed)
}
