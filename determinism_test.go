package dsenergy_test

// Seed-determinism regression test: the dynamic guarantee behind what the
// dsalint maporder and randsource passes enforce statically. Two
// characterization campaigns from identical seeds must serialize to
// byte-identical datasets — any math/rand leak, map-ordered accumulation or
// unjoined goroutine racing the measurement path shows up here as a diff.

import (
	"bytes"
	"fmt"
	"testing"

	"dsenergy"
)

// characterize runs one small LiGen + Cronos characterization campaign on a
// freshly seeded testbed and returns both datasets serialized to CSV. The
// workers count feeds BuildConfig.Workers (0 = GOMAXPROCS, 1 = serial) and
// must never change the bytes.
func characterize(t *testing.T, seed uint64, workers int) []byte {
	t.Helper()
	tb, err := dsenergy.NewTestbed(seed)
	if err != nil {
		t.Fatal(err)
	}
	v100 := tb.Queues()[0]
	freqs := []int{832, 1087, 1297}

	var buf bytes.Buffer

	var ligenWLs []dsenergy.FeaturedWorkload
	for _, in := range []dsenergy.LiGenInput{
		{Ligands: 256, Atoms: 31, Fragments: 4},
		{Ligands: 512, Atoms: 63, Fragments: 8},
	} {
		w, err := dsenergy.NewLiGenWorkload(in)
		if err != nil {
			t.Fatal(err)
		}
		ligenWLs = append(ligenWLs, dsenergy.FeaturedWorkload{
			Workload: w,
			Features: []float64{float64(in.Ligands), float64(in.Atoms), float64(in.Fragments)},
		})
	}
	ds, err := dsenergy.BuildDataset(v100, dsenergy.LiGenSchema(), ligenWLs,
		dsenergy.BuildConfig{Freqs: freqs, Reps: 2, Workers: workers})
	if err != nil {
		t.Fatal(err)
	}
	if err := ds.WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}

	var cronosWLs []dsenergy.FeaturedWorkload
	for _, g := range [][3]int{{10, 4, 4}, {16, 8, 8}} {
		w, err := dsenergy.NewCronosWorkload(g[0], g[1], g[2], 3)
		if err != nil {
			t.Fatal(err)
		}
		cronosWLs = append(cronosWLs, dsenergy.FeaturedWorkload{
			Workload: w,
			Features: []float64{float64(g[0]), float64(g[1]), float64(g[2])},
		})
	}
	ds, err = dsenergy.BuildDataset(v100, dsenergy.CronosSchema(), cronosWLs,
		dsenergy.BuildConfig{Freqs: freqs, Reps: 2, Workers: workers})
	if err != nil {
		t.Fatal(err)
	}
	if err := ds.WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// resilientRun executes one fault-injected cluster campaign (both apps) and
// serializes every Result field, resilience accounting included.
func resilientRun(t *testing.T, clusterSeed, faultSeed uint64) []byte {
	t.Helper()
	c, err := dsenergy.NewCluster(clusterSeed, dsenergy.V100Spec(), 4, dsenergy.DefaultInterconnect())
	if err != nil {
		t.Fatal(err)
	}
	plan := dsenergy.FaultPlan{
		Seed:          faultSeed,
		TransientProb: 0.02,
		Failures:      []dsenergy.DeviceFailure{{Device: 3, AfterSubmits: 9}},
		Throttles:     []dsenergy.ThermalThrottle{{Device: 1, FromSubmit: 5, ToSubmit: 20, CapMHz: 1000}},
	}
	if err := c.SetFaultPlan(plan, dsenergy.DefaultResilienceConfig()); err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	lr, err := c.ScreenLiGen(dsenergy.LiGenInput{Ligands: 1024, Atoms: 63, Fragments: 8})
	if err != nil {
		t.Fatal(err)
	}
	cr, err := c.RunCronos(32, 16, 16, 12)
	if err != nil {
		t.Fatal(err)
	}
	fmt.Fprintf(&buf, "%+v\n%+v\n", lr, cr)
	return buf.Bytes()
}

// scheduleRun trains the two small raw models, generates a job stream and
// executes it with the deadline-aware scheduler on a fault-injected cluster,
// returning the SLO report plus the full observability export (metrics and
// trace) as bytes.
func scheduleRun(t *testing.T, seed uint64) []byte {
	t.Helper()
	tb, err := dsenergy.NewTestbed(seed)
	if err != nil {
		t.Fatal(err)
	}
	v100 := tb.Queues()[0]
	freqs := []int{832, 1087, 1297, 1597}

	train := func(schema dsenergy.Schema, wls []dsenergy.FeaturedWorkload, modelSeed uint64) *dsenergy.Model {
		ds, err := dsenergy.BuildDataset(v100, schema, wls, dsenergy.BuildConfig{Freqs: freqs, Reps: 1})
		if err != nil {
			t.Fatal(err)
		}
		m, err := dsenergy.Train(ds, dsenergy.RandomForestSpec(), modelSeed)
		if err != nil {
			t.Fatal(err)
		}
		return m
	}
	var ligenWLs []dsenergy.FeaturedWorkload
	for _, in := range []dsenergy.LiGenInput{
		{Ligands: 1024, Atoms: 63, Fragments: 8},
		{Ligands: 4096, Atoms: 89, Fragments: 8},
	} {
		w, err := dsenergy.NewLiGenWorkload(in)
		if err != nil {
			t.Fatal(err)
		}
		ligenWLs = append(ligenWLs, dsenergy.FeaturedWorkload{
			Workload: w,
			Features: []float64{float64(in.Ligands), float64(in.Atoms), float64(in.Fragments)},
		})
	}
	var cronosWLs []dsenergy.FeaturedWorkload
	for _, g := range []struct {
		grid  [3]int
		steps int
	}{
		{[3]int{128, 64, 64}, 8},
		{[3]int{192, 96, 96}, 10},
	} {
		w, err := dsenergy.NewCronosWorkload(g.grid[0], g.grid[1], g.grid[2], g.steps)
		if err != nil {
			t.Fatal(err)
		}
		cronosWLs = append(cronosWLs, dsenergy.FeaturedWorkload{
			Workload: w,
			Features: []float64{float64(g.grid[0]), float64(g.grid[1]), float64(g.grid[2])},
		})
	}
	models := &dsenergy.SchedModelSet{
		LiGen:  train(dsenergy.LiGenSchema(), ligenWLs, seed+1),
		Cronos: train(dsenergy.CronosSchema(), cronosWLs, seed+2),
	}

	jobs, err := dsenergy.GenerateJobStream(dsenergy.JobStreamConfig{Seed: seed + 3, Jobs: 24}, dsenergy.V100Spec())
	if err != nil {
		t.Fatal(err)
	}
	c, err := dsenergy.NewCluster(seed, dsenergy.V100Spec(), 2, dsenergy.DefaultInterconnect())
	if err != nil {
		t.Fatal(err)
	}
	plan := dsenergy.FaultPlan{
		Seed:          seed + 4,
		TransientProb: 0.05,
		Failures:      []dsenergy.DeviceFailure{{Device: 1, AfterSubmits: 12}},
		Throttles:     []dsenergy.ThermalThrottle{{Device: 0, FromSubmit: 4, ToSubmit: 30, CapMHz: 1005}},
	}
	if err := c.SetFaultPlan(plan, dsenergy.DefaultResilienceConfig()); err != nil {
		t.Fatal(err)
	}
	o := dsenergy.NewObserver()
	c.SetObserver(o)
	s, err := dsenergy.NewScheduler(c, dsenergy.SchedConfig{Freqs: freqs, Models: models, Obs: o})
	if err != nil {
		t.Fatal(err)
	}
	r, err := s.Run(jobs)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := r.WriteText(&buf); err != nil {
		t.Fatal(err)
	}
	if err := o.WriteMetricsText(&buf); err != nil {
		t.Fatal(err)
	}
	if err := o.WriteTraceText(&buf); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// TestSchedulerSeedDeterminism extends the determinism contract to the
// deadline-aware scheduler: identical seeds must reproduce the same
// admissions, faults, recoveries and energy accounting — byte-identical SLO
// report and observability export, even mid-fault-storm.
func TestSchedulerSeedDeterminism(t *testing.T) {
	first := scheduleRun(t, 42)
	second := scheduleRun(t, 42)
	if !bytes.Equal(first, second) {
		t.Fatalf("identically seeded scheduler runs diverged\n--- first ---\n%s\n--- second ---\n%s", first, second)
	}
	if other := scheduleRun(t, 43); bytes.Equal(first, other) {
		t.Fatal("differently seeded scheduler runs produced identical bytes; draws are not seeded")
	}
}

// TestFaultInjectionSeedDeterminism pins injected faults into the same
// determinism contract as measurement noise: identical seeds must reproduce
// the same faults, the same recoveries and byte-identical results — which is
// what makes a failure scenario replayable for debugging.
func TestFaultInjectionSeedDeterminism(t *testing.T) {
	first := resilientRun(t, 42, 7)
	second := resilientRun(t, 42, 7)
	if !bytes.Equal(first, second) {
		t.Fatalf("identically seeded faulty runs diverged\n--- first ---\n%s\n--- second ---\n%s", first, second)
	}
	if other := resilientRun(t, 42, 8); bytes.Equal(first, other) {
		t.Fatal("different fault seeds produced identical results; fault draws are not seeded")
	}
}

// TestEmptyFaultPlanPreservesFaultFreeResults locks in the other half of the
// contract: attaching an empty plan must leave results bit-identical to a
// cluster that never heard of fault injection.
func TestEmptyFaultPlanPreservesFaultFreeResults(t *testing.T) {
	run := func(attach bool) []byte {
		c, err := dsenergy.NewCluster(42, dsenergy.V100Spec(), 4, dsenergy.DefaultInterconnect())
		if err != nil {
			t.Fatal(err)
		}
		if attach {
			if err := c.SetFaultPlan(dsenergy.FaultPlan{Seed: 7}, dsenergy.DefaultResilienceConfig()); err != nil {
				t.Fatal(err)
			}
		}
		lr, err := c.ScreenLiGen(dsenergy.LiGenInput{Ligands: 1024, Atoms: 63, Fragments: 8})
		if err != nil {
			t.Fatal(err)
		}
		cr, err := c.RunCronos(32, 16, 16, 12)
		if err != nil {
			t.Fatal(err)
		}
		var buf bytes.Buffer
		fmt.Fprintf(&buf, "%+v\n%+v\n", lr, cr)
		return buf.Bytes()
	}
	if !bytes.Equal(run(false), run(true)) {
		t.Fatal("an empty fault plan changed fault-free results")
	}
}

func TestCharacterizationSeedDeterminism(t *testing.T) {
	first := characterize(t, 42, 1)
	second := characterize(t, 42, 1)
	if !bytes.Equal(first, second) {
		t.Fatalf("identically seeded characterizations produced different datasets\n--- first ---\n%s\n--- second ---\n%s",
			first, second)
	}
	if other := characterize(t, 43, 1); bytes.Equal(first, other) {
		t.Fatal("differently seeded characterizations produced identical datasets; measurement noise is not seeded")
	}
}

// TestParallelCharacterizationMatchesSerial pins the parallel engine's
// facade-level contract: the same campaign run serially (Workers=1), on the
// full GOMAXPROCS pool (Workers=0) and on an awkward worker count produces
// byte-identical CSV datasets, because every measurement's randomness is
// pre-split in task order before any worker starts.
func TestParallelCharacterizationMatchesSerial(t *testing.T) {
	serial := characterize(t, 42, 1)
	for _, workers := range []int{0, 3} {
		if got := characterize(t, 42, workers); !bytes.Equal(serial, got) {
			t.Fatalf("Workers=%d characterization diverged from serial bytes", workers)
		}
	}
}

// serveRun executes a reduced frequency-advisor serving campaign — four
// advisor shards with a mid-load hot-reload and a rejected corrupt upload —
// and returns the SLO report plus the full observability export as bytes.
func serveRun(t *testing.T, seed uint64, workers int) []byte {
	t.Helper()
	cfg := dsenergy.QuickExperimentConfig()
	cfg.Seed = seed
	cfg.ServeRequests = 4000
	cfg.Jobs = workers
	o := dsenergy.NewObserver()
	cfg.Obs = o
	r, err := cfg.Serve()
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := r.WriteText(&buf); err != nil {
		t.Fatal(err)
	}
	if err := o.WriteMetricsText(&buf); err != nil {
		t.Fatal(err)
	}
	if err := o.WriteTraceText(&buf); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// TestServeSeedDeterminism extends the determinism contract to the serving
// layer: identical seeds must replay the same multi-shard request load —
// same arrivals, batch closings, cache evictions and hot-reloads — to a
// byte-identical SLO report and observability export, for every worker
// count.
func TestServeSeedDeterminism(t *testing.T) {
	first := serveRun(t, 42, 1)
	for _, workers := range []int{0, 3} {
		if got := serveRun(t, 42, workers); !bytes.Equal(first, got) {
			t.Fatalf("Jobs=%d serving campaign diverged from serial bytes", workers)
		}
	}
	if second := serveRun(t, 42, 1); !bytes.Equal(first, second) {
		t.Fatal("identically seeded serving campaigns diverged")
	}
	if other := serveRun(t, 43, 1); bytes.Equal(first, other) {
		t.Fatal("differently seeded serving campaigns produced identical bytes; load draws are not seeded")
	}
}
