// Command characterize regenerates the paper's energy-characterization
// figures (Figures 1-10): multi-objective speedup / normalized-energy sweeps
// of LiGen and Cronos across the core-frequency range of the simulated
// NVIDIA V100 and AMD MI100, with Pareto-optimal frequencies marked.
//
// Usage:
//
//	characterize [-fig all|1|2|...|10] [-quick] [-j N] [-stride N] [-reps N]
//	             [-metrics m.json] [-trace t.txt] [-profile p.txt]
package main

import (
	"flag"
	"fmt"
	"os"

	"dsenergy/internal/cliutil"
	"dsenergy/internal/experiments"
)

func main() {
	fig := flag.String("fig", "all", "figure to regenerate: all or 1..10")
	quick := flag.Bool("quick", false, "reduced-fidelity sweep (faster)")
	jobs := flag.Int("j", 0, "worker goroutines (0 = GOMAXPROCS, 1 = serial); output is identical for every value")
	stride := flag.Int("stride", 0, "override frequency stride (0 = config default)")
	reps := flag.Int("reps", 0, "override measurement repetitions (0 = config default)")
	format := flag.String("format", "text", "output format: text or csv")
	obsFlags := cliutil.RegisterObs()
	flag.Parse()
	if err := cliutil.CheckJobs("characterize", *jobs); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	if *format != "text" && *format != "csv" {
		fmt.Fprintf(os.Stderr, "characterize: unknown format %q (want text or csv)\n", *format)
		os.Exit(2)
	}

	cfg := experiments.DefaultConfig()
	if *quick {
		cfg = experiments.QuickConfig()
	}
	cfg.Jobs = *jobs
	cfg.Obs = obsFlags.Observer()
	if *stride > 0 {
		cfg.FreqStride = *stride
	}
	if *reps > 0 {
		cfg.Reps = *reps
	}

	gens := map[string]func() (experiments.Figure, error){
		"1": cfg.Fig1, "2": cfg.Fig2, "3": cfg.Fig3, "4": cfg.Fig4, "5": cfg.Fig5,
		"6": cfg.Fig6, "7": cfg.Fig7, "8": cfg.Fig8, "9": cfg.Fig9, "10": cfg.Fig10,
	}
	order := []string{"1", "2", "3", "4", "5", "6", "7", "8", "9", "10"}

	run := func(id string) {
		gen, ok := gens[id]
		if !ok {
			fmt.Fprintf(os.Stderr, "characterize: unknown figure %q (want 1..10)\n", id)
			os.Exit(2)
		}
		f, err := gen()
		if err != nil {
			fmt.Fprintf(os.Stderr, "characterize: figure %s: %v\n", id, err)
			os.Exit(1)
		}
		if *format == "csv" {
			if err := experiments.RenderFigureCSV(os.Stdout, f); err != nil {
				fmt.Fprintf(os.Stderr, "characterize: writing csv: %v\n", err)
				os.Exit(1)
			}
			return
		}
		experiments.RenderFigure(os.Stdout, f)
		fmt.Println()
	}

	if *fig == "all" {
		for _, id := range order {
			run(id)
		}
	} else {
		run(*fig)
	}
	if err := obsFlags.Write(cfg.Obs); err != nil {
		fmt.Fprintf(os.Stderr, "characterize: %v\n", err)
		os.Exit(1)
	}
}
