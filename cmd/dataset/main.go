// Command dataset runs the measurement campaign of the training phase
// (Figure 11, steps 1-3) and writes the resulting dataset as CSV, so the
// expensive sweep is acquired once and reused by modeling runs (the
// counterpart of core.ReadCSV / Dataset.WriteCSV).
//
// Usage:
//
//	dataset -app cronos  [-device v100|mi100] [-quick] [-j N] [-o cronos.csv]
//	dataset -app ligen   [-device v100|mi100] [-quick] [-j N] [-o ligen.csv]
package main

import (
	"flag"
	"fmt"
	"os"

	"dsenergy/internal/cliutil"
	"dsenergy/internal/experiments"
	"dsenergy/internal/synergy"
)

func main() {
	app := flag.String("app", "cronos", "application to measure: cronos or ligen")
	device := flag.String("device", "v100", "device to measure on: v100 or mi100")
	quick := flag.Bool("quick", false, "reduced-fidelity sweep (faster)")
	jobs := flag.Int("j", 0, "worker goroutines (0 = GOMAXPROCS, 1 = serial); output is identical for every value")
	out := flag.String("o", "", "output file (default stdout)")
	obsFlags := cliutil.RegisterObs()
	flag.Parse()
	if err := cliutil.CheckJobs("dataset", *jobs); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}

	cfg := experiments.DefaultConfig()
	if *quick {
		cfg = experiments.QuickConfig()
	}
	cfg.Jobs = *jobs
	cfg.Obs = obsFlags.Observer()
	p, err := cfg.Platform()
	if err != nil {
		fail(err)
	}
	var q *synergy.Queue
	switch *device {
	case "v100":
		q = p.Queues()[0]
	case "mi100":
		q = p.Queues()[1]
	default:
		fail(fmt.Errorf("unknown device %q (want v100 or mi100)", *device))
	}

	w := os.Stdout
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			fail(err)
		}
		defer f.Close()
		w = f
	}

	switch *app {
	case "cronos":
		ds, _, err := cfg.BuildCronosDataset(q)
		if err != nil {
			fail(err)
		}
		if err := ds.WriteCSV(w); err != nil {
			fail(err)
		}
		fmt.Fprintf(os.Stderr, "dataset: wrote %d cronos samples (%d inputs) from %s\n",
			len(ds.Samples), len(ds.Inputs()), ds.Device)
	case "ligen":
		ds, _, err := cfg.BuildLiGenDataset(q)
		if err != nil {
			fail(err)
		}
		if err := ds.WriteCSV(w); err != nil {
			fail(err)
		}
		fmt.Fprintf(os.Stderr, "dataset: wrote %d ligen samples (%d inputs) from %s\n",
			len(ds.Samples), len(ds.Inputs()), ds.Device)
	default:
		fail(fmt.Errorf("unknown app %q (want cronos or ligen)", *app))
	}
	if err := obsFlags.Write(cfg.Obs); err != nil {
		fail(err)
	}
}

func fail(err error) {
	fmt.Fprintf(os.Stderr, "dataset: %v\n", err)
	os.Exit(1)
}
