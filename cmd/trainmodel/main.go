// Command trainmodel runs the training-phase workflow of the paper (§4.2.2,
// Figure 11): it measures the Cronos and LiGen input grids across the
// frequency sweep on the simulated V100, fits the domain-specific models,
// reports the regressor comparison of §5.2.1 (Linear, Lasso, SVR-RBF,
// Random Forest) and the random-forest grid search.
//
// Usage:
//
//	trainmodel [-quick] [-j N] [-compare] [-gridsearch] [-tables]
//	           [-metrics m.json] [-trace t.txt] [-profile p.txt]
package main

import (
	"flag"
	"fmt"
	"os"

	"dsenergy/internal/cliutil"
	"dsenergy/internal/core"
	"dsenergy/internal/experiments"
)

func main() {
	quick := flag.Bool("quick", false, "reduced-fidelity sweep (faster)")
	jobs := flag.Int("j", 0, "worker goroutines (0 = GOMAXPROCS, 1 = serial); output is identical for every value")
	compare := flag.Bool("compare", true, "run the §5.2.1 regressor comparison")
	gridsearch := flag.Bool("gridsearch", false, "run the random-forest grid search (slow)")
	loocv := flag.Bool("loocv", true, "run the leave-one-input-out accuracy report")
	tables := flag.Bool("tables", true, "print the feature tables (Tables 1-2)")
	obsFlags := cliutil.RegisterObs()
	flag.Parse()
	if err := cliutil.CheckJobs("trainmodel", *jobs); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}

	cfg := experiments.DefaultConfig()
	if *quick {
		cfg = experiments.QuickConfig()
	}
	cfg.Jobs = *jobs
	cfg.Obs = obsFlags.Observer()

	if *tables {
		experiments.RenderTable1(os.Stdout)
		fmt.Println()
		experiments.RenderTable2(os.Stdout)
		fmt.Println()
	}

	p, err := cfg.Platform()
	if err != nil {
		fail(err)
	}
	q := p.Queues()[0] // V100, the paper's training device

	cds, _, err := cfg.BuildCronosDataset(q)
	if err != nil {
		fail(err)
	}
	fmt.Printf("Cronos dataset: %d inputs x %d samples on %s (baseline %d MHz)\n",
		len(cds.Inputs()), len(cds.Samples), cds.Device, cds.BaselineFreqMHz)
	lds, _, err := cfg.BuildLiGenDataset(q)
	if err != nil {
		fail(err)
	}
	fmt.Printf("LiGen dataset:  %d inputs x %d samples on %s (baseline %d MHz)\n\n",
		len(lds.Inputs()), len(lds.Samples), lds.Device, lds.BaselineFreqMHz)

	if *loocv {
		for _, ds := range []*core.Dataset{cds, lds} {
			accs, err := core.LeaveOneInputOut(ds, cfg.ForestSpec(), cfg.Seed)
			if err != nil {
				fail(err)
			}
			fmt.Printf("leave-one-input-out accuracy (%s, random forest):\n", ds.Schema.App)
			for _, a := range accs {
				fmt.Printf("   %-18s speedup MAPE %.4f   energy MAPE %.4f\n",
					a.Label, a.SpeedupMAPE, a.NormEnergyMAPE)
			}
			fmt.Println()
		}
	}

	if *compare {
		cmp, err := cfg.CompareRegressors()
		if err != nil {
			fail(err)
		}
		experiments.RenderAlgorithmComparison(os.Stdout, cmp)
		fmt.Println()
	}
	if *gridsearch {
		gs, err := cfg.GridSearchRF()
		if err != nil {
			fail(err)
		}
		experiments.RenderGridSearch(os.Stdout, gs)
	}
	if err := obsFlags.Write(cfg.Obs); err != nil {
		fail(err)
	}
}

func fail(err error) {
	fmt.Fprintf(os.Stderr, "trainmodel: %v\n", err)
	os.Exit(1)
}
