// Command features runs the general-purpose model's static analysis on a
// kernel listing (the "new input code" of §4.1): it parses the PTX-like
// listing, prints the Table 1 feature vector, and optionally trains a quick
// general-purpose model to predict the kernel's speedup / normalized-energy
// curve — the full prediction phase of Fan et al. from the command line.
//
// Usage:
//
//	features kernel.k              # print the static feature vector
//	features -predict kernel.k    # + general-purpose curve prediction
//	echo "fadd 10" | features -   # read the listing from stdin
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"dsenergy/internal/experiments"
	"dsenergy/internal/kernels"
)

func main() {
	predict := flag.Bool("predict", false, "train a quick general-purpose model and predict the curve")
	flag.Parse()
	if flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: features [-predict] <listing file | ->")
		os.Exit(2)
	}

	var src io.Reader = os.Stdin
	if name := flag.Arg(0); name != "-" {
		f, err := os.Open(name)
		if err != nil {
			fail(err)
		}
		defer f.Close()
		src = f
	}
	mix, err := kernels.ParseListing(src)
	if err != nil {
		fail(err)
	}

	fmt.Println("static code features (Table 1):")
	feats := mix.StaticFeatures()
	for i, name := range kernels.FeatureNames {
		fmt.Printf("   %-14s %.4f\n", name, feats[i])
	}
	fmt.Printf("compute cycles/item: %.1f, flops/item: %.1f, raw bytes/item: %.1f\n",
		mix.ComputeCycles(), mix.Flops(), mix.GlobalBytes())

	if !*predict {
		return
	}
	cfg := experiments.QuickConfig()
	p, err := cfg.Platform()
	if err != nil {
		fail(err)
	}
	q := p.Queues()[0]
	gp, err := cfg.TrainGP(q)
	if err != nil {
		fail(err)
	}
	sweep := q.Spec().FreqsAbove(cfg.BandFrac)
	var freqs []int
	for i := 0; i < len(sweep); i += 12 {
		freqs = append(freqs, sweep[i])
	}
	freqs = append(freqs, q.Spec().FMaxMHz())
	fmt.Printf("\ngeneral-purpose prediction on %s (baseline %d MHz):\n",
		q.Spec().Name, gp.BaselineFreqMHz)
	fmt.Printf("%10s %10s %12s\n", "freq(MHz)", "speedup", "norm energy")
	for _, c := range gp.PredictCurves(mix, freqs) {
		fmt.Printf("%10d %10.4f %12.4f\n", c.FreqMHz, c.Speedup, c.NormEnergy)
	}
}

func fail(err error) {
	fmt.Fprintf(os.Stderr, "features: %v\n", err)
	os.Exit(1)
}
