// Command evalmodels regenerates the paper's model-evaluation results:
// Figure 13 (MAPE of the domain-specific models vs the general-purpose model
// for every input, both applications) and Figure 14 (predicted Pareto sets
// against the true Pareto set), plus the ablation studies listed in
// DESIGN.md.
//
// Usage:
//
//	evalmodels [-fig 13|14|all] [-ablations] [-quick] [-j N]
//	           [-metrics m.json] [-trace t.txt] [-profile p.txt]
package main

import (
	"flag"
	"fmt"
	"os"
	"sort"

	"dsenergy/internal/cliutil"
	"dsenergy/internal/experiments"
)

func main() {
	fig := flag.String("fig", "all", "figure to regenerate: 13, 14 or all")
	ablations := flag.Bool("ablations", false, "also run the ablation studies")
	perkernel := flag.Bool("perkernel", false, "also run the per-kernel scaling experiment (§7)")
	tuners := flag.Bool("tuners", false, "also run the model-vs-online tuner comparison")
	quick := flag.Bool("quick", false, "reduced-fidelity sweep (faster)")
	jobs := flag.Int("j", 0, "worker goroutines (0 = GOMAXPROCS, 1 = serial); output is identical for every value")
	obsFlags := cliutil.RegisterObs()
	flag.Parse()
	if err := cliutil.CheckJobs("evalmodels", *jobs); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}

	cfg := experiments.DefaultConfig()
	if *quick {
		cfg = experiments.QuickConfig()
	}
	cfg.Jobs = *jobs
	cfg.Obs = obsFlags.Observer()

	if *fig == "13" || *fig == "all" {
		r, err := cfg.Fig13()
		if err != nil {
			fail(err)
		}
		experiments.RenderFig13(os.Stdout, r)
		fmt.Println()
	}
	if *fig == "14" || *fig == "all" {
		panels, err := cfg.Fig14()
		if err != nil {
			fail(err)
		}
		experiments.RenderFig14(os.Stdout, panels)
		fmt.Println()
	}
	if *ablations {
		if err := cfg.RenderAblations(os.Stdout); err != nil {
			fail(err)
		}
	}
	if *tuners {
		r, err := cfg.CompareTuners()
		if err != nil {
			fail(err)
		}
		experiments.RenderTuningComparison(os.Stdout, r)
		fmt.Println()
	}
	if *perkernel {
		r, err := cfg.FutureWorkPerKernel()
		if err != nil {
			fail(err)
		}
		fmt.Println("== per-kernel frequency scaling (§7 future work), Cronos 160x64x64 ==")
		kernels := make([]string, 0, len(r.Plan))
		for k := range r.Plan {
			kernels = append(kernels, k)
		}
		sort.Strings(kernels)
		for _, k := range kernels {
			fmt.Printf("   %-16s -> %d MHz\n", k, r.Plan[k])
		}
		fmt.Printf("   measured: speedup %.3f, energy saving %.1f%%\n",
			r.Outcome.Speedup(), r.Outcome.EnergySaving()*100)
	}
	if err := obsFlags.Write(cfg.Obs); err != nil {
		fail(err)
	}
}

func fail(err error) {
	fmt.Fprintf(os.Stderr, "evalmodels: %v\n", err)
	os.Exit(1)
}
