// Command reproduce regenerates the paper's complete result set in one run:
// every characterization figure (1-10), the feature tables, the model
// accuracy comparison (Figure 13), the Pareto-set comparison (Figure 14),
// the §5.2.1 regressor comparison, the ablations, the tuner comparison, the
// per-kernel scaling experiment, the strong-scaling study, the resilience
// demonstration and the deadline-aware scheduling campaign — each written to
// its own file under the output directory.
//
// Usage:
//
//	reproduce [-out results] [-quick] [-j N] [-metrics m.json] [-trace t.txt] [-profile p.txt]
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"sort"

	"dsenergy/internal/cliutil"
	"dsenergy/internal/experiments"
)

func main() {
	out := flag.String("out", "results", "output directory")
	quick := flag.Bool("quick", false, "reduced-fidelity configuration")
	jobs := flag.Int("j", 0, "worker goroutines (0 = GOMAXPROCS, 1 = serial); output is identical for every value")
	obsFlags := cliutil.RegisterObs()
	flag.Parse()
	if err := cliutil.CheckJobs("reproduce", *jobs); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}

	cfg := experiments.DefaultConfig()
	if *quick {
		cfg = experiments.QuickConfig()
	}
	cfg.Jobs = *jobs
	cfg.Obs = obsFlags.Observer()
	if err := os.MkdirAll(*out, 0o755); err != nil {
		fail(err)
	}

	// Per-file wall time lands in the quarantined -profile dump; stdout
	// stays deterministic so progress output is byte-identical across runs.
	write := func(name string, gen func(f *os.File) error) {
		stop := cfg.Obs.Profile().Phase("reproduce/" + name).Start()
		defer stop()
		path := filepath.Join(*out, name)
		f, err := os.Create(path)
		if err != nil {
			fail(err)
		}
		if err := gen(f); err != nil {
			f.Close()
			fail(fmt.Errorf("%s: %w", name, err))
		}
		if err := f.Close(); err != nil {
			fail(err)
		}
		fmt.Printf("wrote %s\n", path)
	}

	// Tables.
	write("tables.txt", func(f *os.File) error {
		experiments.RenderTable1(f)
		fmt.Fprintln(f)
		experiments.RenderTable2(f)
		return nil
	})

	// Characterization figures.
	figGens := []struct {
		name string
		gen  func() (experiments.Figure, error)
	}{
		{"fig01.txt", cfg.Fig1}, {"fig02.txt", cfg.Fig2}, {"fig03.txt", cfg.Fig3},
		{"fig04.txt", cfg.Fig4}, {"fig05.txt", cfg.Fig5}, {"fig06.txt", cfg.Fig6},
		{"fig07.txt", cfg.Fig7}, {"fig08.txt", cfg.Fig8}, {"fig09.txt", cfg.Fig9},
		{"fig10.txt", cfg.Fig10},
	}
	for _, fg := range figGens {
		fg := fg
		write(fg.name, func(f *os.File) error {
			fig, err := fg.gen()
			if err != nil {
				return err
			}
			experiments.RenderFigure(f, fig)
			return nil
		})
	}

	// Model evaluation.
	write("fig13.txt", func(f *os.File) error {
		r, err := cfg.Fig13()
		if err != nil {
			return err
		}
		experiments.RenderFig13(f, r)
		return nil
	})
	write("fig14.txt", func(f *os.File) error {
		panels, err := cfg.Fig14()
		if err != nil {
			return err
		}
		experiments.RenderFig14(f, panels)
		return nil
	})
	write("regressors.txt", func(f *os.File) error {
		cmp, err := cfg.CompareRegressors()
		if err != nil {
			return err
		}
		experiments.RenderAlgorithmComparison(f, cmp)
		return nil
	})
	write("ablations.txt", func(f *os.File) error {
		return cfg.RenderAblations(f)
	})
	write("gridsearch.txt", func(f *os.File) error {
		gs, err := cfg.GridSearchRF()
		if err != nil {
			return err
		}
		experiments.RenderGridSearch(f, gs)
		return nil
	})
	write("tuners.txt", func(f *os.File) error {
		r, err := cfg.CompareTuners()
		if err != nil {
			return err
		}
		experiments.RenderTuningComparison(f, r)
		return nil
	})
	write("perkernel.txt", func(f *os.File) error {
		r, err := cfg.FutureWorkPerKernel()
		if err != nil {
			return err
		}
		fmt.Fprintln(f, "== per-kernel frequency scaling (§7 future work), Cronos 160x64x64 ==")
		kernels := make([]string, 0, len(r.Plan))
		for k := range r.Plan {
			kernels = append(kernels, k)
		}
		sort.Strings(kernels)
		for _, k := range kernels {
			fmt.Fprintf(f, "   %-16s -> %d MHz\n", k, r.Plan[k])
		}
		fmt.Fprintf(f, "   measured: speedup %.3f, energy saving %.1f%%\n",
			r.Outcome.Speedup(), r.Outcome.EnergySaving()*100)
		return nil
	})
	write("scaling.txt", func(f *os.File) error {
		lr, cr, err := cfg.StrongScaling([]int{1, 2, 4, 8, 16})
		if err != nil {
			return err
		}
		fmt.Fprintln(f, "== strong scaling (V100 cluster) ==")
		fmt.Fprintf(f, "%-8s %12s %12s %12s %12s\n", "devices", "ligen t(s)", "ligen eff", "cronos t(s)", "cronos eff")
		for i := range lr {
			fmt.Fprintf(f, "%-8d %12.4f %12.2f %12.4f %12.2f\n",
				lr[i].Devices, lr[i].TimeS, lr[i].Efficiency, cr[i].TimeS, cr[i].Efficiency)
		}
		return nil
	})
	write("resilience.txt", func(f *os.File) error {
		return cfg.RenderResilience(f)
	})
	// Machine-checkable verification of every headline claim.
	var failed int
	write("schedule.txt", func(f *os.File) error {
		n, err := cfg.RenderSchedule(f)
		failed += n
		return err
	})
	write("shapechecks.txt", func(f *os.File) error {
		checks, err := cfg.VerifyShapes()
		if err != nil {
			return err
		}
		failed += experiments.RenderShapeChecks(f, checks)
		return nil
	})
	if err := obsFlags.Write(cfg.Obs); err != nil {
		fail(err)
	}
	if failed > 0 {
		fmt.Fprintf(os.Stderr, "reproduce: %d checks FAILED (see schedule.txt / shapechecks.txt)\n", failed)
		os.Exit(1)
	}
	fmt.Println("done — all checks passed")
}

func fail(err error) {
	fmt.Fprintf(os.Stderr, "reproduce: %v\n", err)
	os.Exit(1)
}
