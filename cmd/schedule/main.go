// Command schedule runs the deadline-aware scheduling campaign: a seeded
// multi-tenant stream of LiGen screens and Cronos runs executed on a
// 4-device V100 cluster under three frequency policies (model-driven,
// max-frequency, static baseline), fault-free and under an aggressive fault
// storm (mid-campaign device loss, thermal-throttle windows, transient
// faults, clock rejections). The output ends with CHECK lines asserting the
// model-driven policy beats both baselines on total energy at an
// equal-or-lower SLO miss rate; any failed check exits 1.
//
// Usage:
//
//	schedule [-quick] [-jobs N] [-j N] [-metrics m.json] [-trace t.txt] [-profile p.txt]
package main

import (
	"flag"
	"fmt"
	"os"

	"dsenergy/internal/cliutil"
	"dsenergy/internal/experiments"
)

func main() {
	quick := flag.Bool("quick", false, "reduced-fidelity configuration")
	streamJobs := flag.Int("jobs", 0, "stream length (0 = campaign default 96; the fault-storm CHECK lines are calibrated to the default and may fail on much shorter streams)")
	jobs := flag.Int("j", 0, "worker goroutines (0 = GOMAXPROCS, 1 = serial); output is identical for every value")
	obsFlags := cliutil.RegisterObs()
	flag.Parse()
	if err := cliutil.CheckJobs("schedule", *jobs); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	if *streamJobs < 0 {
		fmt.Fprintln(os.Stderr, "schedule: -jobs must be >= 0")
		os.Exit(2)
	}

	cfg := experiments.DefaultConfig()
	if *quick {
		cfg = experiments.QuickConfig()
	}
	cfg.Jobs = *jobs
	cfg.ScheduleJobs = *streamJobs
	cfg.Obs = obsFlags.Observer()

	failed, err := cfg.RenderSchedule(os.Stdout)
	if err != nil {
		fmt.Fprintf(os.Stderr, "schedule: %v\n", err)
		os.Exit(1)
	}
	if err := obsFlags.Write(cfg.Obs); err != nil {
		fmt.Fprintf(os.Stderr, "schedule: %v\n", err)
		os.Exit(1)
	}
	if failed > 0 {
		fmt.Fprintf(os.Stderr, "schedule: %d checks FAILED\n", failed)
		os.Exit(1)
	}
}
