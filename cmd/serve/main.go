// Command serve runs the frequency-advisor serving campaign: four advisor
// shards (LiGen and Cronos models on V100 and MI100 silicon) driven by
// seeded open- and closed-loop load generators on simulated time, with a
// mid-load hot-reload of a retrained model, a corrupt upload that must be
// rejected, and malformed/unmodeled requests absorbed by the admission
// tier. The output ends with CHECK lines asserting zero lost requests,
// bit-identical batched inference and per-version response attribution; any
// failed check exits 1.
//
// Usage:
//
//	serve [-quick] [-requests N] [-j N] [-metrics m.json] [-trace t.txt] [-profile p.txt]
package main

import (
	"flag"
	"fmt"
	"os"

	"dsenergy/internal/cliutil"
	"dsenergy/internal/experiments"
)

func main() {
	quick := flag.Bool("quick", false, "reduced-fidelity configuration")
	requests := flag.Int("requests", 0, "per-shard request budget (0 = campaign default 500000; four shards make the default a 2M-request load)")
	jobs := flag.Int("j", 0, "worker goroutines (0 = GOMAXPROCS, 1 = serial); output is identical for every value")
	obsFlags := cliutil.RegisterObs()
	flag.Parse()
	if err := cliutil.CheckJobs("serve", *jobs); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	if *requests < 0 {
		fmt.Fprintln(os.Stderr, "serve: -requests must be >= 0")
		os.Exit(2)
	}

	cfg := experiments.DefaultConfig()
	if *quick {
		cfg = experiments.QuickConfig()
	}
	cfg.Jobs = *jobs
	cfg.ServeRequests = *requests
	cfg.Obs = obsFlags.Observer()

	failed, err := cfg.RenderServe(os.Stdout)
	if err != nil {
		fmt.Fprintf(os.Stderr, "serve: %v\n", err)
		os.Exit(1)
	}
	if err := obsFlags.Write(cfg.Obs); err != nil {
		fmt.Fprintf(os.Stderr, "serve: %v\n", err)
		os.Exit(1)
	}
	if failed > 0 {
		fmt.Fprintf(os.Stderr, "serve: %d checks FAILED\n", failed)
		os.Exit(1)
	}
}
