// Command dsalint runs the repository's domain-aware static-analysis suite
// (internal/analysis) over the module and reports findings in the canonical
// file:line:col: [pass] message form. It exits 1 when any finding survives
// suppression, which is what lets ci.sh use it as a hard gate.
//
// Usage:
//
//	go run ./cmd/dsalint [flags] [patterns]
//
// Patterns are package directories relative to the module root; `./...`
// (the default) analyzes the whole module, `./internal/ml` one package and
// `./internal/...` a subtree. Flags:
//
//	-json            emit findings as a JSON array instead of text
//	-disable=p1,p2   skip the named passes (repeatable, comma-separated)
//	-list            print the available passes and exit
//
// Individual findings are suppressed in source with a
// `//dsalint:ignore <pass>` comment on, or on the line above, the flagged
// statement.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"dsenergy/internal/analysis"
)

type disableFlag []string

func (d *disableFlag) String() string { return strings.Join(*d, ",") }
func (d *disableFlag) Set(v string) error {
	for _, name := range strings.Split(v, ",") {
		if name = strings.TrimSpace(name); name != "" {
			*d = append(*d, name)
		}
	}
	return nil
}

func main() {
	var (
		jsonOut bool
		disable disableFlag
		list    bool
	)
	flag.BoolVar(&jsonOut, "json", false, "emit findings as JSON")
	flag.Var(&disable, "disable", "comma-separated pass names to skip (repeatable)")
	flag.BoolVar(&list, "list", false, "list available passes and exit")
	flag.Parse()

	if list {
		for _, a := range analysis.All() {
			fmt.Printf("%-12s %s\n", a.Name, a.Doc)
		}
		return
	}

	if err := run(jsonOut, disable, flag.Args()); err != nil {
		fmt.Fprintln(os.Stderr, "dsalint:", err)
		os.Exit(2)
	}
}

func run(jsonOut bool, disable []string, patterns []string) error {
	root, err := findModuleRoot()
	if err != nil {
		return err
	}
	loader, err := analysis.NewLoader(root, "")
	if err != nil {
		return err
	}

	dirs, err := resolvePatterns(loader, root, patterns)
	if err != nil {
		return err
	}

	runner := analysis.NewRunner()
	for _, name := range disable {
		if err := runner.Disable(name); err != nil {
			return err
		}
	}

	var pkgs []*analysis.Package
	for _, dir := range dirs {
		pkg, err := loader.LoadDir(dir)
		if err != nil {
			return err
		}
		pkgs = append(pkgs, pkg)
	}

	diags := runner.Run(pkgs)
	if jsonOut {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if diags == nil {
			diags = []analysis.Diagnostic{}
		}
		if err := enc.Encode(diags); err != nil {
			return err
		}
	} else {
		for _, d := range diags {
			fmt.Println(d)
		}
	}
	if len(diags) > 0 {
		if !jsonOut {
			fmt.Fprintf(os.Stderr, "dsalint: %d finding(s)\n", len(diags))
		}
		os.Exit(1)
	}
	return nil
}

// findModuleRoot walks up from the working directory to the nearest go.mod.
func findModuleRoot() (string, error) {
	dir, err := os.Getwd()
	if err != nil {
		return "", err
	}
	for {
		if _, err := os.Stat(filepath.Join(dir, "go.mod")); err == nil {
			return dir, nil
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			return "", fmt.Errorf("no go.mod found above %s", dir)
		}
		dir = parent
	}
}

// resolvePatterns maps ./...-style arguments to package directories relative
// to the module root. No arguments means the whole module.
func resolvePatterns(loader *analysis.Loader, root string, patterns []string) ([]string, error) {
	all, err := loader.GoDirs()
	if err != nil {
		return nil, err
	}
	if len(patterns) == 0 {
		return all, nil
	}
	seen := map[string]bool{}
	var dirs []string
	for _, pat := range patterns {
		rel, recursive, err := normalizePattern(root, pat)
		if err != nil {
			return nil, err
		}
		matched := false
		for _, d := range all {
			ok := d == rel
			if recursive && !ok {
				ok = rel == "." || strings.HasPrefix(d, rel+"/")
			}
			if ok && !seen[d] {
				seen[d] = true
				dirs = append(dirs, d)
				matched = true
			} else if ok {
				matched = true
			}
		}
		if !matched {
			return nil, fmt.Errorf("pattern %q matches no packages", pat)
		}
	}
	return dirs, nil
}

func normalizePattern(root, pat string) (rel string, recursive bool, err error) {
	if rest, ok := strings.CutSuffix(pat, "/..."); ok {
		recursive = true
		pat = rest
		if pat == "" || pat == "." {
			return ".", true, nil
		}
	}
	abs, err := filepath.Abs(pat)
	if err != nil {
		return "", false, err
	}
	rel, err = filepath.Rel(root, abs)
	if err != nil || strings.HasPrefix(rel, "..") {
		return "", false, fmt.Errorf("pattern %q is outside the module", pat)
	}
	return filepath.ToSlash(rel), recursive, nil
}
