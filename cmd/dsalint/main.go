// Command dsalint runs the repository's domain-aware static-analysis suite
// (internal/analysis) over the module and reports findings in the canonical
// file:line:col: [pass] message form. It exits 1 when any finding survives
// suppression, which is what lets ci.sh use it as a hard gate.
//
// Usage:
//
//	go run ./cmd/dsalint [flags] [patterns]
//
// Patterns are package directories relative to the module root; `./...`
// (the default) analyzes the whole module, `./internal/ml` one package and
// `./internal/...` a subtree. Flags:
//
//	-json            emit findings as a JSON array instead of text
//	-disable=p1,p2   skip the named passes (repeatable, comma-separated)
//	-list            print the available passes and exit
//	-calls           dump the interprocedural call graph instead of linting
//	-baseline=file   drop findings whose canonical line appears in file
//
// Individual findings are suppressed in source with a
// `//dsalint:ignore <pass>` comment on, or on the line above, the flagged
// statement. A baseline file (one canonical `file:line:col: [pass] message`
// line per accepted finding, `#` comments allowed) tolerates known debt
// without editing source: create one with `dsalint ./... > baseline.txt`,
// then gate with `dsalint -baseline baseline.txt ./...`, which exits 0 while
// only baselined findings remain and reports stale entries once they are
// fixed.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"

	"dsenergy/internal/analysis"
)

type disableFlag []string

func (d *disableFlag) String() string { return strings.Join(*d, ",") }
func (d *disableFlag) Set(v string) error {
	for _, name := range strings.Split(v, ",") {
		if name = strings.TrimSpace(name); name != "" {
			*d = append(*d, name)
		}
	}
	return nil
}

func main() {
	var (
		jsonOut  bool
		disable  disableFlag
		list     bool
		calls    bool
		baseline string
	)
	flag.BoolVar(&jsonOut, "json", false, "emit findings as JSON")
	flag.Var(&disable, "disable", "comma-separated pass names to skip (repeatable)")
	flag.BoolVar(&list, "list", false, "list available passes and exit")
	flag.BoolVar(&calls, "calls", false, "dump the call graph instead of linting")
	flag.StringVar(&baseline, "baseline", "", "file of accepted findings to subtract")
	flag.Parse()

	if list {
		for _, a := range analysis.All() {
			fmt.Printf("%-12s %s\n", a.Name, a.Doc)
		}
		return
	}

	if err := run(jsonOut, calls, baseline, disable, flag.Args()); err != nil {
		fmt.Fprintln(os.Stderr, "dsalint:", err)
		os.Exit(2)
	}
}

func run(jsonOut, calls bool, baseline string, disable []string, patterns []string) error {
	root, err := findModuleRoot()
	if err != nil {
		return err
	}
	loader, err := analysis.NewLoader(root, "")
	if err != nil {
		return err
	}

	dirs, err := resolvePatterns(loader, root, patterns)
	if err != nil {
		return err
	}

	runner := analysis.NewRunner()
	for _, name := range disable {
		if err := runner.Disable(name); err != nil {
			return err
		}
	}

	var pkgs []*analysis.Package
	for _, dir := range dirs {
		pkg, err := loader.LoadDir(dir)
		if err != nil {
			return err
		}
		pkgs = append(pkgs, pkg)
	}

	if calls {
		return analysis.NewProgram(pkgs).WriteCalls(os.Stdout)
	}

	diags := runner.Run(pkgs)
	if baseline != "" {
		diags, err = subtractBaseline(diags, baseline)
		if err != nil {
			return err
		}
	}
	if jsonOut {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if diags == nil {
			diags = []analysis.Diagnostic{}
		}
		if err := enc.Encode(diags); err != nil {
			return err
		}
	} else {
		for _, d := range diags {
			fmt.Println(d)
		}
	}
	if len(diags) > 0 {
		if !jsonOut {
			fmt.Fprintf(os.Stderr, "dsalint: %d finding(s)\n", len(diags))
		}
		os.Exit(1)
	}
	return nil
}

// subtractBaseline drops diagnostics whose canonical line appears in the
// baseline file and reports stale baseline entries (accepted findings that no
// longer fire) on stderr so the file can be shrunk as debt is paid down.
func subtractBaseline(diags []analysis.Diagnostic, path string) ([]analysis.Diagnostic, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("reading baseline: %w", err)
	}
	accepted := map[string]bool{}
	for _, line := range strings.Split(string(data), "\n") {
		line = strings.TrimSpace(line)
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		accepted[line] = false // false = not yet matched by a live finding
	}
	var kept []analysis.Diagnostic
	suppressed := 0
	for _, d := range diags {
		if _, ok := accepted[d.String()]; ok {
			accepted[d.String()] = true
			suppressed++
			continue
		}
		kept = append(kept, d)
	}
	stale := make([]string, 0)
	for line, hit := range accepted {
		if !hit {
			stale = append(stale, line)
		}
	}
	sort.Strings(stale)
	if suppressed > 0 {
		fmt.Fprintf(os.Stderr, "dsalint: %d finding(s) suppressed by baseline %s\n", suppressed, path)
	}
	for _, line := range stale {
		fmt.Fprintf(os.Stderr, "dsalint: stale baseline entry (no longer fires): %s\n", line)
	}
	return kept, nil
}

// findModuleRoot walks up from the working directory to the nearest go.mod.
func findModuleRoot() (string, error) {
	dir, err := os.Getwd()
	if err != nil {
		return "", err
	}
	for {
		if _, err := os.Stat(filepath.Join(dir, "go.mod")); err == nil {
			return dir, nil
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			return "", fmt.Errorf("no go.mod found above %s", dir)
		}
		dir = parent
	}
}

// resolvePatterns maps ./...-style arguments to package directories relative
// to the module root. No arguments means the whole module.
func resolvePatterns(loader *analysis.Loader, root string, patterns []string) ([]string, error) {
	all, err := loader.GoDirs()
	if err != nil {
		return nil, err
	}
	if len(patterns) == 0 {
		return all, nil
	}
	seen := map[string]bool{}
	var dirs []string
	for _, pat := range patterns {
		rel, recursive, err := normalizePattern(root, pat)
		if err != nil {
			return nil, err
		}
		matched := false
		for _, d := range all {
			ok := d == rel
			if recursive && !ok {
				ok = rel == "." || strings.HasPrefix(d, rel+"/")
			}
			if ok && !seen[d] {
				seen[d] = true
				dirs = append(dirs, d)
				matched = true
			} else if ok {
				matched = true
			}
		}
		if !matched {
			return nil, fmt.Errorf("pattern %q matches no packages", pat)
		}
	}
	return dirs, nil
}

func normalizePattern(root, pat string) (rel string, recursive bool, err error) {
	if rest, ok := strings.CutSuffix(pat, "/..."); ok {
		recursive = true
		pat = rest
		if pat == "" || pat == "." {
			return ".", true, nil
		}
	}
	abs, err := filepath.Abs(pat)
	if err != nil {
		return "", false, err
	}
	rel, err = filepath.Rel(root, abs)
	if err != nil || strings.HasPrefix(rel, "..") {
		return "", false, fmt.Errorf("pattern %q is outside the module", pat)
	}
	return filepath.ToSlash(rel), recursive, nil
}
