package xrand

import (
	"math"
	"testing"
)

func TestDeterminism(t *testing.T) {
	a, b := New(123), New(123)
	for i := 0; i < 100; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatalf("identically seeded generators diverged at step %d", i)
		}
	}
}

func TestDifferentSeedsDiffer(t *testing.T) {
	a, b := New(1), New(2)
	same := 0
	for i := 0; i < 100; i++ {
		if a.Uint64() == b.Uint64() {
			same++
		}
	}
	if same > 0 {
		t.Errorf("%d collisions between different seeds", same)
	}
}

func TestSplitIndependence(t *testing.T) {
	r := New(7)
	s := r.Split()
	// The split stream must differ from the parent's continuation.
	diff := false
	for i := 0; i < 20; i++ {
		if r.Uint64() != s.Uint64() {
			diff = true
			break
		}
	}
	if !diff {
		t.Error("split stream mirrors parent stream")
	}
}

func TestFloat64Range(t *testing.T) {
	r := New(9)
	for i := 0; i < 10000; i++ {
		f := r.Float64()
		if f < 0 || f >= 1 {
			t.Fatalf("Float64 out of [0,1): %g", f)
		}
	}
}

func TestFloat64Mean(t *testing.T) {
	r := New(11)
	var sum float64
	n := 100000
	for i := 0; i < n; i++ {
		sum += r.Float64()
	}
	if mean := sum / float64(n); math.Abs(mean-0.5) > 0.01 {
		t.Errorf("Float64 mean %g, want ~0.5", mean)
	}
}

func TestIntn(t *testing.T) {
	r := New(13)
	counts := make([]int, 7)
	for i := 0; i < 7000; i++ {
		v := r.Intn(7)
		if v < 0 || v >= 7 {
			t.Fatalf("Intn out of range: %d", v)
		}
		counts[v]++
	}
	for v, c := range counts {
		if c < 700 {
			t.Errorf("value %d drawn only %d/7000 times", v, c)
		}
	}
}

func TestIntnPanicsOnBadInput(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("Intn(0) should panic")
		}
	}()
	New(1).Intn(0)
}

func TestNormMoments(t *testing.T) {
	r := New(17)
	var sum, sumSq float64
	n := 100000
	for i := 0; i < n; i++ {
		v := r.Norm()
		sum += v
		sumSq += v * v
	}
	mean := sum / float64(n)
	variance := sumSq/float64(n) - mean*mean
	if math.Abs(mean) > 0.02 {
		t.Errorf("Norm mean %g, want ~0", mean)
	}
	if math.Abs(variance-1) > 0.03 {
		t.Errorf("Norm variance %g, want ~1", variance)
	}
}

func TestPermIsPermutation(t *testing.T) {
	r := New(19)
	p := r.Perm(50)
	seen := make([]bool, 50)
	for _, v := range p {
		if v < 0 || v >= 50 || seen[v] {
			t.Fatalf("invalid permutation: %v", p)
		}
		seen[v] = true
	}
}

func TestShufflePermutes(t *testing.T) {
	r := New(21)
	xs := []int{0, 1, 2, 3, 4, 5, 6, 7, 8, 9}
	r.Shuffle(len(xs), func(i, j int) { xs[i], xs[j] = xs[j], xs[i] })
	seen := make([]bool, 10)
	for _, v := range xs {
		seen[v] = true
	}
	for v, s := range seen {
		if !s {
			t.Fatalf("shuffle lost element %d", v)
		}
	}
}

func TestSplitNMatchesRepeatedSplit(t *testing.T) {
	a, b := New(7), New(7)
	got := a.SplitN(5)
	for i := 0; i < 5; i++ {
		want := b.Split()
		if got[i].Uint64() != want.Uint64() {
			t.Fatalf("SplitN stream %d diverges from sequential Split", i)
		}
	}
	// The parent streams continue identically after the splits.
	if a.Uint64() != b.Uint64() {
		t.Error("SplitN advanced the parent differently from repeated Split")
	}
}

func TestSplitNStreamsDecorrelated(t *testing.T) {
	streams := New(7).SplitN(3)
	seen := map[uint64]bool{}
	for _, s := range streams {
		v := s.Uint64()
		if seen[v] {
			t.Fatal("split streams emitted identical first values")
		}
		seen[v] = true
	}
}
