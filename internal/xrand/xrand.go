// Package xrand provides a small, deterministic, splittable pseudo-random
// number generator used throughout the repository.
//
// Every stochastic component (measurement noise, synthetic ligand libraries,
// bootstrap sampling in the random forest, ...) draws from an xrand.Rand
// seeded from the experiment configuration, so repeated runs — including
// `go test` — are bit-for-bit reproducible. The generator is SplitMix64
// (Steele, Lea, Flood; OOPSLA 2014), which passes BigCrush and supports
// cheap stream splitting, unlike math/rand's global source.
package xrand

import "math"

// Rand is a deterministic pseudo-random number generator.
// The zero value is NOT ready for use; construct with New.
type Rand struct {
	state uint64
}

// New returns a generator seeded with seed. Two generators constructed with
// the same seed produce identical streams.
func New(seed uint64) *Rand {
	return &Rand{state: seed}
}

// Split derives an independent generator from r. The derived stream is
// decorrelated from r's continuation, which lets concurrent components
// (e.g. forest trees trained in parallel) own private generators while the
// overall program stays deterministic regardless of scheduling.
func (r *Rand) Split() *Rand {
	return New(r.Uint64() ^ 0x9e3779b97f4a7c15)
}

// SplitN derives n independent generators from r in one call — the
// pre-split idiom of the parallel execution engine: the streams are created
// in task order *before* any task is handed to a worker pool, so each task's
// randomness depends only on its index, never on scheduling.
func (r *Rand) SplitN(n int) []*Rand {
	out := make([]*Rand, n)
	for i := range out {
		out[i] = r.Split()
	}
	return out
}

// Uint64 returns the next value in the stream.
func (r *Rand) Uint64() uint64 {
	r.state += 0x9e3779b97f4a7c15
	z := r.state
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// Float64 returns a uniform value in [0, 1).
func (r *Rand) Float64() float64 {
	return float64(r.Uint64()>>11) / (1 << 53)
}

// Intn returns a uniform value in [0, n). It panics if n <= 0.
func (r *Rand) Intn(n int) int {
	if n <= 0 {
		panic("xrand: Intn with non-positive n")
	}
	return int(r.Uint64() % uint64(n))
}

// Norm returns a standard normal variate (mean 0, stddev 1) using the
// Box-Muller transform.
func (r *Rand) Norm() float64 {
	// Avoid log(0) by nudging u1 away from zero.
	u1 := r.Float64()
	if u1 < 1e-300 {
		u1 = 1e-300
	}
	u2 := r.Float64()
	return math.Sqrt(-2*math.Log(u1)) * math.Cos(2*math.Pi*u2)
}

// Perm returns a pseudo-random permutation of [0, n).
func (r *Rand) Perm(n int) []int {
	p := make([]int, n)
	for i := range p {
		p[i] = i
	}
	for i := n - 1; i > 0; i-- {
		j := r.Intn(i + 1)
		p[i], p[j] = p[j], p[i]
	}
	return p
}

// Shuffle pseudo-randomly reorders the first n elements using swap.
func (r *Rand) Shuffle(n int, swap func(i, j int)) {
	for i := n - 1; i > 0; i-- {
		j := r.Intn(i + 1)
		swap(i, j)
	}
}
