package microbench

import (
	"testing"

	"dsenergy/internal/gpusim"
	"dsenergy/internal/kernels"
)

func TestSuiteSize(t *testing.T) {
	if got := len(Suite()); got != Count {
		t.Fatalf("suite size %d, want %d (Fan et al.'s 106)", got, Count)
	}
}

func TestSuiteProfilesValid(t *testing.T) {
	for _, b := range Suite() {
		if err := b.Profile.Validate(); err != nil {
			t.Errorf("%s: %v", b.Name, err)
		}
	}
}

func TestSuiteNamesUnique(t *testing.T) {
	seen := map[string]bool{}
	for _, b := range Suite() {
		if seen[b.Name] {
			t.Errorf("duplicate benchmark name %q", b.Name)
		}
		seen[b.Name] = true
	}
}

func TestSuiteDeterministic(t *testing.T) {
	a, b := Suite(), Suite()
	for i := range a {
		if a[i].Name != b[i].Name || a[i].Profile.Mix != b[i].Profile.Mix {
			t.Fatalf("suite not deterministic at %d", i)
		}
	}
}

func TestLocalityPairsShareStaticFeatures(t *testing.T) {
	// Consecutive levels within a family form (streaming, cached) pairs
	// with identical static features but different locality — the
	// ambiguity that bounds static-feature models.
	s := Suite()
	pairs := 0
	for i := 0; i+1 < 100; i += 2 {
		a, b := s[i].Profile, s[i+1].Profile
		fa, fb := a.Mix.StaticFeatures(), b.Mix.StaticFeatures()
		for j := range fa {
			if fa[j] != fb[j] {
				t.Fatalf("pair (%s, %s) static features differ", s[i].Name, s[i+1].Name)
			}
		}
		if a.CacheReuse == b.CacheReuse && a.WorkingSetBytes == b.WorkingSetBytes {
			t.Fatalf("pair (%s, %s) locality identical", s[i].Name, s[i+1].Name)
		}
		pairs++
	}
	if pairs != 50 {
		t.Errorf("checked %d pairs, want 50", pairs)
	}
}

func TestLocalityPairsBehaveDifferently(t *testing.T) {
	// On a real device the two variants of a pair must produce different
	// time/energy: that is the whole point of the construction.
	d, err := gpusim.New(gpusim.V100Spec(), 1)
	if err != nil {
		t.Fatal(err)
	}
	s := Suite()
	differ := 0
	for i := 0; i+1 < 100; i += 2 {
		ta := d.Analytic(s[i].Profile, 1297).TimeS
		tb := d.Analytic(s[i+1].Profile, 1297).TimeS
		if ta != tb {
			differ++
		}
	}
	if differ < 40 {
		t.Errorf("only %d/50 locality pairs behave differently", differ)
	}
}

func TestSuiteCoversFeatureSpace(t *testing.T) {
	// Every Table 1 feature class must dominate (be the largest fraction
	// in) at least one benchmark.
	dominated := make([]bool, len(kernels.FeatureNames))
	for _, b := range Suite() {
		f := b.Profile.Mix.StaticFeatures()
		best, bi := 0.0, 0
		for j, v := range f {
			if v > best {
				best, bi = v, j
			}
		}
		dominated[bi] = true
	}
	for j, ok := range dominated {
		if !ok {
			t.Errorf("no benchmark dominated by feature %s", kernels.FeatureNames[j])
		}
	}
}

func TestSuiteSpansMemoryRegimes(t *testing.T) {
	var streaming, cached int
	for _, b := range Suite() {
		if b.Profile.CacheReuse == 0 {
			streaming++
		}
		if b.Profile.CacheReuse > 0.8 {
			cached++
		}
	}
	if streaming < 20 || cached < 20 {
		t.Errorf("regime coverage: %d streaming, %d cached", streaming, cached)
	}
}
