// Package microbench generates the suite of 106 micro-benchmarks the
// general-purpose energy model of Fan et al. (ICPP'19) is trained on. Each
// micro-benchmark is a synthetic kernel engineered to stress one or more of
// the ten static code features of Table 1 (integer/float arithmetic classes,
// special functions, global and local memory), swept over intensity levels so
// the suite covers the feature space from pure-compute to pure-streaming.
package microbench

import "dsenergy/internal/kernels"

// Count is the suite size used by Fan et al. and reproduced here.
const Count = 106

// Benchmark is one micro-benchmark: a kernel profile plus its identity.
type Benchmark struct {
	Name    string
	Profile kernels.Profile
}

// classSpec describes one dominant-feature family of the suite.
type classSpec struct {
	name string
	// base builds the per-work-item mix for the given intensity level
	// (1..levels).
	base func(level float64) kernels.InstructionMix
	// reuse and wsBytes set the family's locality regime.
	reuse   float64
	wsBytes float64
}

// balancedMix is the background mix every benchmark carries so that no
// feature fraction is ever exactly zero (matching how real micro-benchmarks
// still execute loop and address arithmetic).
var balancedMix = kernels.InstructionMix{
	IntAdd: 8, IntMul: 2, IntBitwise: 2,
	FloatAdd: 4, FloatMul: 4,
	GlobalAcc: 2, LocalAcc: 1,
}

// families enumerates the ten single-feature families (one per Table 1
// feature), each swept over ten intensity levels -> 100 benchmarks; six
// mixed-regime benchmarks complete the suite of 106.
func families() []classSpec {
	return []classSpec{
		{name: "int_add", reuse: 0.9, wsBytes: 1 << 20,
			base: func(l float64) kernels.InstructionMix { return kernels.InstructionMix{IntAdd: 30 * l} }},
		{name: "int_mul", reuse: 0.9, wsBytes: 1 << 20,
			base: func(l float64) kernels.InstructionMix { return kernels.InstructionMix{IntMul: 30 * l} }},
		{name: "int_div", reuse: 0.9, wsBytes: 1 << 20,
			base: func(l float64) kernels.InstructionMix { return kernels.InstructionMix{IntDiv: 8 * l} }},
		{name: "int_bw", reuse: 0.9, wsBytes: 1 << 20,
			base: func(l float64) kernels.InstructionMix { return kernels.InstructionMix{IntBitwise: 30 * l} }},
		{name: "float_add", reuse: 0.9, wsBytes: 1 << 20,
			base: func(l float64) kernels.InstructionMix { return kernels.InstructionMix{FloatAdd: 30 * l} }},
		{name: "float_mul", reuse: 0.9, wsBytes: 1 << 20,
			base: func(l float64) kernels.InstructionMix { return kernels.InstructionMix{FloatMul: 30 * l} }},
		{name: "float_div", reuse: 0.9, wsBytes: 1 << 20,
			base: func(l float64) kernels.InstructionMix { return kernels.InstructionMix{FloatDiv: 8 * l} }},
		{name: "special_fn", reuse: 0.9, wsBytes: 1 << 20,
			base: func(l float64) kernels.InstructionMix { return kernels.InstructionMix{SpecialFn: 12 * l} }},
		{name: "global_mem", reuse: 0.0, wsBytes: 256 << 20,
			base: func(l float64) kernels.InstructionMix { return kernels.InstructionMix{GlobalAcc: 20 * l} }},
		{name: "local_mem", reuse: 0.95, wsBytes: 1 << 20,
			base: func(l float64) kernels.InstructionMix { return kernels.InstructionMix{LocalAcc: 30 * l} }},
	}
}

// mixedSpecs are the six benchmarks combining regimes (compute+memory at
// several arithmetic intensities, and divergent occupancies).
func mixedSpecs() []Benchmark {
	mk := func(name string, mix kernels.InstructionMix, items, reuse, ws float64) Benchmark {
		return Benchmark{Name: name, Profile: kernels.Profile{
			Name: name, Mix: balancedMix.Add(mix),
			WorkItems: items, Launches: 32,
			WorkingSetBytes: ws, CacheReuse: reuse,
		}}
	}
	return []Benchmark{
		mk("mixed_balanced", kernels.InstructionMix{FloatAdd: 40, FloatMul: 40, GlobalAcc: 10},
			1<<20, 0.5, 64<<20),
		mk("mixed_stream_fma", kernels.InstructionMix{FloatAdd: 10, FloatMul: 10, GlobalAcc: 30},
			1<<20, 0.0, 256<<20),
		mk("mixed_compute_burst", kernels.InstructionMix{FloatMul: 120, SpecialFn: 20, GlobalAcc: 2},
			1<<20, 0.95, 1<<20),
		mk("mixed_low_occupancy", kernels.InstructionMix{FloatAdd: 60, FloatMul: 60},
			1<<12, 0.9, 1<<18),
		mk("mixed_int_stream", kernels.InstructionMix{IntAdd: 30, IntBitwise: 20, GlobalAcc: 24},
			1<<20, 0.1, 128<<20),
		mk("mixed_latency", kernels.InstructionMix{FloatDiv: 10, SpecialFn: 10, GlobalAcc: 4},
			1<<10, 0.8, 1<<16),
	}
}

// Suite returns the full deterministic suite of 106 micro-benchmarks.
//
// Each family contributes five intensity levels in two locality regimes: a
// streaming variant (large working set, no reuse) and a cache-resident
// variant (small working set, high reuse). The two variants of a level share
// *identical static code features* — instruction counts cannot distinguish a
// tiled kernel from a streaming one — which is precisely the ambiguity that
// limits static-feature models on memory-sensitive applications (§4.1).
// Work-item counts also vary across levels, spanning occupancy regimes that
// are equally invisible to static features.
func Suite() []Benchmark {
	out := make([]Benchmark, 0, Count)
	for _, fam := range families() {
		for level := 1; level <= 10; level++ {
			intensity := float64((level + 1) / 2) // 1,1,2,2,...,5,5
			cached := level%2 == 0
			// Every benchmark also touches global memory in proportion to
			// its intensity, sweeping the access-fraction axis through the
			// region real kernels occupy; the locality regime then decides
			// whether those accesses are cheap or dominant.
			mix := balancedMix.Add(fam.base(intensity * 2)).
				Add(kernels.InstructionMix{GlobalAcc: 4 * intensity})
			reuse, ws := 0.0, 256.0*(1<<20)
			if cached {
				reuse, ws = 0.88, 3<<20
				if fam.reuse > reuse {
					reuse = fam.reuse
				}
			}
			items := float64(int64(1) << (12 + 2*uint(level%5)))
			out = append(out, Benchmark{
				Name: fam.name + "_" + string(rune('0'+level/10)) + string(rune('0'+level%10)),
				Profile: kernels.Profile{
					Name: fam.name, Mix: mix,
					WorkItems: items, Launches: 32,
					WorkingSetBytes: ws, CacheReuse: reuse,
				},
			})
		}
	}
	out = append(out, mixedSpecs()...)
	return out
}
