// Package core implements the paper's primary contribution: domain-specific
// energy and runtime modeling (§4). A domain-specific model is trained per
// application on that application's own *input characteristics* — the grid
// dimensions for Cronos, the (ligands, fragments, atoms) triple for LiGen
// (Table 2) — paired with the frequency configuration, against measured
// execution time and energy (training phase, Figure 11). At prediction time
// the two models produce time and energy for every frequency, from which
// speedup and normalized energy are derived against the predicted default-
// frequency values, and the Pareto-optimal frequency set is extracted
// (prediction phase, Figure 12).
package core

import (
	"fmt"
	"sort"
	"strconv"
	"strings"

	"dsenergy/internal/ml"
	"dsenergy/internal/pareto"
	"dsenergy/internal/synergy"
)

// Schema names the domain-specific features of one application (Table 2).
type Schema struct {
	App      string
	Features []string
}

// CronosSchema is the magnetohydrodynamics feature set: the grid dimensions.
func CronosSchema() Schema {
	return Schema{App: "cronos", Features: []string{"f_grid_x", "f_grid_y", "f_grid_z"}}
}

// LiGenSchema is the drug-discovery feature set: the library shape.
func LiGenSchema() Schema {
	return Schema{App: "ligen", Features: []string{"f_ligands", "f_fragments", "f_atoms"}}
}

// Sample is one training observation s = (f⃗, c, t, e) as defined in §4.2.2:
// input features, frequency configuration, measured time and energy.
type Sample struct {
	Features []float64
	FreqMHz  int
	TimeS    float64
	EnergyJ  float64
}

// Dataset is the training set D = {s} of one application on one device.
type Dataset struct {
	Schema          Schema
	Device          string
	BaselineFreqMHz int
	Samples         []Sample
}

// FeatureKey renders a feature vector as a stable group label, used by the
// leave-one-input-out protocol to hold out all samples of one input together.
func FeatureKey(features []float64) string {
	parts := make([]string, len(features))
	for i, f := range features {
		parts[i] = strconv.FormatFloat(f, 'g', -1, 64)
	}
	return strings.Join(parts, "x")
}

// Inputs returns the distinct input feature vectors of the dataset, in
// first-appearance order.
func (d *Dataset) Inputs() [][]float64 {
	seen := map[string]bool{}
	var out [][]float64
	for _, s := range d.Samples {
		k := FeatureKey(s.Features)
		if !seen[k] {
			seen[k] = true
			out = append(out, append([]float64(nil), s.Features...))
		}
	}
	return out
}

// InputSamples returns the samples whose features match exactly, sorted by
// frequency.
func (d *Dataset) InputSamples(features []float64) []Sample {
	key := FeatureKey(features)
	var out []Sample
	for _, s := range d.Samples {
		if FeatureKey(s.Features) == key {
			out = append(out, s)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].FreqMHz < out[j].FreqMHz })
	return out
}

// FeaturedWorkload couples an executable workload with its domain-specific
// feature vector, the unit the dataset builder sweeps.
type FeaturedWorkload struct {
	Workload synergy.Workload
	Features []float64
}

// BuildConfig controls dataset acquisition.
type BuildConfig struct {
	// Freqs is the frequency sweep (nil = all device frequencies, as the
	// paper does on the V100's 196 clocks).
	Freqs []int
	// Reps is the repetitions per measurement (0 selects the paper's 5).
	Reps int
	// Workers bounds the measurement goroutines (0 = GOMAXPROCS, 1 = serial).
	// The dataset is byte-identical for every value: all workload×frequency
	// tasks draw pre-split noise streams fixed before the pool starts.
	Workers int
}

// BuildDataset runs the training-phase workflow of Figure 11: every workload
// is executed at every frequency (averaged over repetitions) and the
// observations are collected into a dataset. All workload×frequency
// measurements go through one shared worker pool (synergy.SweepSet), which
// is what lets the paper-scale sweep — hundreds of clocks per workload —
// use every core while producing the same bytes as the serial loop.
func BuildDataset(q *synergy.Queue, schema Schema, wls []FeaturedWorkload, cfg BuildConfig) (*Dataset, error) {
	if len(wls) == 0 {
		return nil, fmt.Errorf("core: no workloads to measure")
	}
	freqs := cfg.Freqs
	if freqs == nil {
		freqs = q.SupportedFreqsMHz()
	}
	reps := cfg.Reps
	if reps <= 0 {
		reps = 5
	}
	ds := &Dataset{
		Schema:          schema,
		Device:          q.Spec().Name,
		BaselineFreqMHz: q.BaselineFreqMHz(),
	}
	workloads := make([]synergy.Workload, len(wls))
	for i, fw := range wls {
		if len(fw.Features) != len(schema.Features) {
			return nil, fmt.Errorf("core: workload %s has %d features, schema %s wants %d",
				fw.Workload.Name(), len(fw.Features), schema.App, len(schema.Features))
		}
		workloads[i] = fw.Workload
	}
	sets, err := synergy.SweepSet(q, workloads, freqs, reps, cfg.Workers)
	if err != nil {
		return nil, err
	}
	for wi, fw := range wls {
		for _, m := range sets[wi] {
			ds.Samples = append(ds.Samples, Sample{
				Features: append([]float64(nil), fw.Features...),
				FreqMHz:  m.FreqMHz,
				TimeS:    m.TimeS,
				EnergyJ:  m.EnergyJ,
			})
		}
	}
	return ds, nil
}

// Model is a trained domain-specific model pair. In raw mode (Train) the two
// regressors are T(f⃗, c) for execution time and E(f⃗, c) for energy
// consumption (Figure 11 outputs 4 and 5). In normalized mode
// (TrainNormalized) they predict speedup and normalized energy directly, the
// formulation §5.2.1 uses for the accuracy evaluation: normalized targets
// share a common scale across inputs, which is what lets the model
// interpolate to unseen inputs within a percent.
type Model struct {
	Schema          Schema
	Device          string
	BaselineFreqMHz int
	// Normalized reports whether the regressors output (speedup,
	// normalized energy) rather than (time, energy).
	Normalized  bool
	timeModel   ml.Regressor
	energyModel ml.Regressor
}

// Train fits the two models on the dataset with the given algorithm (the
// paper compares Linear, Lasso, SVR-RBF and Random Forest and selects the
// forest; pass ml.Spec{Algorithm:"forest"} for the paper configuration).
func Train(ds *Dataset, spec ml.Spec, seed uint64) (*Model, error) {
	if len(ds.Samples) == 0 {
		return nil, fmt.Errorf("core: empty dataset")
	}
	X := make([][]float64, len(ds.Samples))
	yt := make([]float64, len(ds.Samples))
	ye := make([]float64, len(ds.Samples))
	for i, s := range ds.Samples {
		X[i] = sampleRow(s.Features, s.FreqMHz)
		yt[i] = s.TimeS
		ye[i] = s.EnergyJ
	}
	tm, err := spec.New(seed)
	if err != nil {
		return nil, err
	}
	if err := tm.Fit(X, yt); err != nil {
		return nil, fmt.Errorf("core: fitting time model: %w", err)
	}
	em, err := spec.New(seed + 1)
	if err != nil {
		return nil, err
	}
	if err := em.Fit(X, ye); err != nil {
		return nil, fmt.Errorf("core: fitting energy model: %w", err)
	}
	return &Model{
		Schema:          ds.Schema,
		Device:          ds.Device,
		BaselineFreqMHz: ds.BaselineFreqMHz,
		timeModel:       tm,
		energyModel:     em,
	}, nil
}

// TrainNormalized fits the two models on per-input normalized targets:
// speedup t(baseline)/t(c) and normalized energy e(c)/e(baseline), as
// §5.2.1 formulates the models for the accuracy comparison. Every input must
// include the baseline frequency in its sweep.
func TrainNormalized(ds *Dataset, spec ml.Spec, seed uint64) (*Model, error) {
	if len(ds.Samples) == 0 {
		return nil, fmt.Errorf("core: empty dataset")
	}
	var X [][]float64
	var ySp, yNe []float64
	for _, input := range ds.Inputs() {
		curves, err := ds.TrueCurves(input)
		if err != nil {
			return nil, err
		}
		for _, c := range curves {
			X = append(X, sampleRow(input, c.FreqMHz))
			ySp = append(ySp, c.Speedup)
			yNe = append(yNe, c.NormEnergy)
		}
	}
	sm, err := spec.New(seed)
	if err != nil {
		return nil, err
	}
	if err := sm.Fit(X, ySp); err != nil {
		return nil, fmt.Errorf("core: fitting speedup model: %w", err)
	}
	em, err := spec.New(seed + 1)
	if err != nil {
		return nil, err
	}
	if err := em.Fit(X, yNe); err != nil {
		return nil, fmt.Errorf("core: fitting normalized-energy model: %w", err)
	}
	return &Model{
		Schema:          ds.Schema,
		Device:          ds.Device,
		BaselineFreqMHz: ds.BaselineFreqMHz,
		Normalized:      true,
		timeModel:       sm,
		energyModel:     em,
	}, nil
}

// sampleRow assembles a model input row from features and frequency.
func sampleRow(features []float64, freqMHz int) []float64 {
	return append(append([]float64(nil), features...), float64(freqMHz))
}

// PredictTime returns T(f⃗, c) in seconds (raw mode only).
func (m *Model) PredictTime(features []float64, freqMHz int) float64 {
	return m.timeModel.Predict(sampleRow(features, freqMHz))
}

// PredictEnergy returns E(f⃗, c) in joules (raw mode only).
func (m *Model) PredictEnergy(features []float64, freqMHz int) float64 {
	return m.energyModel.Predict(sampleRow(features, freqMHz))
}

// CurvePoint is a derived (speedup, normalized energy) prediction at one
// frequency.
type CurvePoint struct {
	FreqMHz    int
	Speedup    float64
	NormEnergy float64
	TimeS      float64
	EnergyJ    float64
}

// PredictCurves runs the prediction phase of Figure 12: model outputs for
// every frequency, normalized against the predicted values at the baseline
// (default) frequency. In raw mode speedup and normalized energy derive from
// predicted time/energy; in normalized mode the regressors output them
// directly and the baseline normalization squares up residual offset.
func (m *Model) PredictCurves(features []float64, freqs []int) []CurvePoint {
	// One row block — baseline first, then every sweep frequency — feeds
	// both regressors through ml.PredictBatch, so forests take the
	// block-oriented tree-major path. Each batch element is bit-identical
	// to the per-row Predict it replaces.
	rows := make([][]float64, 0, len(freqs)+1)
	rows = append(rows, sampleRow(features, m.BaselineFreqMHz))
	for _, f := range freqs {
		rows = append(rows, sampleRow(features, f))
	}
	times := ml.PredictBatch(m.timeModel, rows)
	energies := ml.PredictBatch(m.energyModel, rows)
	return m.deriveCurve(times, energies, freqs)
}

// FeatureDim is the width of the feature vectors the model was trained on
// (the frequency column is appended internally and not counted).
func (m *Model) FeatureDim() int {
	return len(m.Schema.Features)
}

// PredictCurvesBatch is the serving-side counterpart of PredictCurves: it
// evaluates many inputs against one frequency sweep in a single concatenated
// row block per regressor, and — unlike PredictCurves, which inherits
// Predict's zero fallback for mis-shaped rows — rejects any input whose
// width disagrees with the schema. Because batched forest inference is
// per-row bit-identical to Predict regardless of block composition,
// out[i] is bit-identical to PredictCurves(inputs[i], freqs).
func (m *Model) PredictCurvesBatch(inputs [][]float64, freqs []int) ([][]CurvePoint, error) {
	d := m.FeatureDim()
	for i, in := range inputs {
		if len(in) != d {
			return nil, fmt.Errorf("core: input %d has %d features, schema %s wants %d",
				i, len(in), m.Schema.App, d)
		}
	}
	stride := len(freqs) + 1
	rows := make([][]float64, 0, len(inputs)*stride)
	for _, in := range inputs {
		rows = append(rows, sampleRow(in, m.BaselineFreqMHz))
		for _, f := range freqs {
			rows = append(rows, sampleRow(in, f))
		}
	}
	times, err := ml.CheckedPredictBatch(m.timeModel, rows)
	if err != nil {
		return nil, fmt.Errorf("core: time model: %w", err)
	}
	energies, err := ml.CheckedPredictBatch(m.energyModel, rows)
	if err != nil {
		return nil, fmt.Errorf("core: energy model: %w", err)
	}
	out := make([][]CurvePoint, len(inputs))
	for i := range inputs {
		out[i] = m.deriveCurve(times[i*stride:(i+1)*stride], energies[i*stride:(i+1)*stride], freqs)
	}
	return out, nil
}

// deriveCurve normalizes one input's predicted (time, energy) block —
// baseline row first, then one row per sweep frequency — into curve points.
func (m *Model) deriveCurve(times, energies []float64, freqs []int) []CurvePoint {
	if m.Normalized {
		baseSp, baseNe := times[0], energies[0]
		// Normalized targets sit near 1 by construction; a near-zero or
		// negative predicted baseline means the regressor extrapolated
		// far outside its training range (linear models do on held-out
		// extreme inputs). Fall back to 1 rather than amplifying the
		// breakdown through the division.
		if baseSp <= 0.05 {
			baseSp = 1
		}
		if baseNe <= 0.05 {
			baseNe = 1
		}
		out := make([]CurvePoint, 0, len(freqs))
		for i, f := range freqs {
			out = append(out, CurvePoint{
				FreqMHz:    f,
				Speedup:    times[i+1] / baseSp,
				NormEnergy: energies[i+1] / baseNe,
			})
		}
		return out
	}
	baseT, baseE := times[0], energies[0]
	if baseT <= 0 {
		baseT = 1
	}
	if baseE <= 0 {
		baseE = 1
	}
	out := make([]CurvePoint, 0, len(freqs))
	for i, f := range freqs {
		t, e := times[i+1], energies[i+1]
		sp := 0.0
		if t > 0 {
			sp = baseT / t
		}
		out = append(out, CurvePoint{FreqMHz: f, Speedup: sp, NormEnergy: e / baseE, TimeS: t, EnergyJ: e})
	}
	return out
}

// PredictPareto returns the predicted Pareto-optimal frequency
// configurations (Figure 12's final step).
func (m *Model) PredictPareto(features []float64, freqs []int) []pareto.Point {
	curves := m.PredictCurves(features, freqs)
	pts := make([]pareto.Point, len(curves))
	for i, c := range curves {
		pts[i] = pareto.Point{FreqMHz: c.FreqMHz, Speedup: c.Speedup, NormEnergy: c.NormEnergy}
	}
	return pareto.Front(pts)
}

// TrueCurves derives the measured speedup / normalized-energy curve of one
// input from the dataset itself (the ground truth of Figure 13). The
// baseline is the measurement at the dataset's baseline frequency; it must
// be part of the sweep.
func (d *Dataset) TrueCurves(features []float64) ([]CurvePoint, error) {
	samples := d.InputSamples(features)
	if len(samples) == 0 {
		return nil, fmt.Errorf("core: no samples for input %v", features)
	}
	var base *Sample
	for i := range samples {
		if samples[i].FreqMHz == d.BaselineFreqMHz {
			base = &samples[i]
			break
		}
	}
	if base == nil {
		return nil, fmt.Errorf("core: baseline frequency %d MHz not in sweep for input %v",
			d.BaselineFreqMHz, features)
	}
	out := make([]CurvePoint, 0, len(samples))
	for _, s := range samples {
		out = append(out, CurvePoint{
			FreqMHz:    s.FreqMHz,
			Speedup:    base.TimeS / s.TimeS,
			NormEnergy: s.EnergyJ / base.EnergyJ,
			TimeS:      s.TimeS,
			EnergyJ:    s.EnergyJ,
		})
	}
	return out, nil
}

// TruePareto returns the measured Pareto-optimal frequency set of one input.
func (d *Dataset) TruePareto(features []float64) ([]pareto.Point, error) {
	curves, err := d.TrueCurves(features)
	if err != nil {
		return nil, err
	}
	pts := make([]pareto.Point, len(curves))
	for i, c := range curves {
		pts[i] = pareto.Point{FreqMHz: c.FreqMHz, Speedup: c.Speedup, NormEnergy: c.NormEnergy}
	}
	return pareto.Front(pts), nil
}
