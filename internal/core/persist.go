package core

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"

	"dsenergy/internal/ml"
)

// Trained-model persistence: a domain-specific model pair (plus the metadata
// needed to use it — schema, device, baseline, normalization mode)
// serializes to one JSON document, so a model trained from a stored dataset
// can be deployed without refitting.

type modelJSON struct {
	Schema          Schema          `json:"schema"`
	Device          string          `json:"device"`
	BaselineFreqMHz int             `json:"baseline_freq_mhz"`
	Normalized      bool            `json:"normalized"`
	TimeModel       json.RawMessage `json:"time_model"`
	EnergyModel     json.RawMessage `json:"energy_model"`
}

// Save writes the trained model to w.
func (m *Model) Save(w io.Writer) error {
	if m.timeModel == nil || m.energyModel == nil {
		return fmt.Errorf("core: cannot save an untrained model")
	}
	var tm, em bytes.Buffer
	if err := ml.SaveRegressor(&tm, m.timeModel); err != nil {
		return fmt.Errorf("core: saving time model: %w", err)
	}
	if err := ml.SaveRegressor(&em, m.energyModel); err != nil {
		return fmt.Errorf("core: saving energy model: %w", err)
	}
	return json.NewEncoder(w).Encode(modelJSON{
		Schema:          m.Schema,
		Device:          m.Device,
		BaselineFreqMHz: m.BaselineFreqMHz,
		Normalized:      m.Normalized,
		TimeModel:       tm.Bytes(),
		EnergyModel:     em.Bytes(),
	})
}

// LoadModel reads a model written by Save.
func LoadModel(r io.Reader) (*Model, error) {
	var mj modelJSON
	if err := json.NewDecoder(r).Decode(&mj); err != nil {
		return nil, fmt.Errorf("core: decoding model: %w", err)
	}
	tm, err := ml.LoadRegressor(bytes.NewReader(mj.TimeModel))
	if err != nil {
		return nil, fmt.Errorf("core: loading time model: %w", err)
	}
	em, err := ml.LoadRegressor(bytes.NewReader(mj.EnergyModel))
	if err != nil {
		return nil, fmt.Errorf("core: loading energy model: %w", err)
	}
	return &Model{
		Schema:          mj.Schema,
		Device:          mj.Device,
		BaselineFreqMHz: mj.BaselineFreqMHz,
		Normalized:      mj.Normalized,
		timeModel:       tm,
		energyModel:     em,
	}, nil
}
