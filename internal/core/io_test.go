package core

import (
	"bytes"
	"strings"
	"testing"

	"dsenergy/internal/ml"
)

func TestDatasetCSVRoundTrip(t *testing.T) {
	q := testQueue(t)
	orig := cronosDataset(t, q, paperGrids[:3])

	var buf bytes.Buffer
	if err := orig.WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := ReadCSV(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.Schema.App != orig.Schema.App || got.Device != orig.Device ||
		got.BaselineFreqMHz != orig.BaselineFreqMHz {
		t.Errorf("metadata differs: %+v vs %+v", got.Schema, orig.Schema)
	}
	if len(got.Samples) != len(orig.Samples) {
		t.Fatalf("sample count %d, want %d", len(got.Samples), len(orig.Samples))
	}
	for i := range orig.Samples {
		a, b := orig.Samples[i], got.Samples[i]
		if a.FreqMHz != b.FreqMHz || a.TimeS != b.TimeS || a.EnergyJ != b.EnergyJ {
			t.Fatalf("sample %d differs: %+v vs %+v", i, a, b)
		}
		for j := range a.Features {
			if a.Features[j] != b.Features[j] {
				t.Fatalf("sample %d feature %d differs", i, j)
			}
		}
	}
}

func TestReloadedDatasetTrainsIdentically(t *testing.T) {
	q := testQueue(t)
	orig := cronosDataset(t, q, paperGrids[:3])
	var buf bytes.Buffer
	if err := orig.WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	reloaded, err := ReadCSV(&buf)
	if err != nil {
		t.Fatal(err)
	}
	spec := forestTestSpec()
	m1, err := TrainNormalized(orig, spec, 3)
	if err != nil {
		t.Fatal(err)
	}
	m2, err := TrainNormalized(reloaded, spec, 3)
	if err != nil {
		t.Fatal(err)
	}
	freqs := []int{orig.BaselineFreqMHz, q.Spec().FMaxMHz()}
	c1 := m1.PredictCurves([]float64{20, 8, 8}, freqs)
	c2 := m2.PredictCurves([]float64{20, 8, 8}, freqs)
	for i := range c1 {
		if c1[i] != c2[i] {
			t.Fatalf("reloaded dataset trains differently at %d: %+v vs %+v", i, c1[i], c2[i])
		}
	}
}

func TestReadCSVRejectsMalformed(t *testing.T) {
	cases := map[string]string{
		"bad magic":    "nope,a,b,100\n",
		"short meta":   "#dsenergy-dataset,a,b\nx,freq_mhz,time_s,energy_j\n",
		"bad baseline": "#dsenergy-dataset,a,b,xx\nx,freq_mhz,time_s,energy_j\n",
		"bad header":   "#dsenergy-dataset,a,b,100\nx,nope,time_s,energy_j\n",
		"short header": "#dsenergy-dataset,a,b,100\nfreq_mhz,time_s\n",
		"bad feature":  "#dsenergy-dataset,a,b,100\nx,freq_mhz,time_s,energy_j\nzz,100,1,1\n",
		"bad freq":     "#dsenergy-dataset,a,b,100\nx,freq_mhz,time_s,energy_j\n1,zz,1,1\n",
		"bad time":     "#dsenergy-dataset,a,b,100\nx,freq_mhz,time_s,energy_j\n1,100,zz,1\n",
		"neg energy":   "#dsenergy-dataset,a,b,100\nx,freq_mhz,time_s,energy_j\n1,100,1,-3\n",
	}
	for name, text := range cases {
		if _, err := ReadCSV(strings.NewReader(text)); err == nil {
			t.Errorf("%s: expected parse error", name)
		}
	}
}

func forestTestSpec() ml.Spec {
	return ml.Spec{Algorithm: "forest", Params: map[string]float64{"n_estimators": 10}}
}

func TestModelSaveLoadRoundTrip(t *testing.T) {
	q := testQueue(t)
	ds := cronosDataset(t, q, paperGrids[:3])
	m, err := TrainNormalized(ds, forestTestSpec(), 9)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := m.Save(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := LoadModel(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.Schema.App != m.Schema.App || got.BaselineFreqMHz != m.BaselineFreqMHz ||
		got.Normalized != m.Normalized {
		t.Errorf("metadata changed: %+v", got)
	}
	freqs := []int{q.BaselineFreqMHz(), q.Spec().FMaxMHz()}
	want := m.PredictCurves([]float64{20, 8, 8}, freqs)
	have := got.PredictCurves([]float64{20, 8, 8}, freqs)
	for i := range want {
		if want[i] != have[i] {
			t.Fatalf("prediction changed after round trip: %+v vs %+v", want[i], have[i])
		}
	}
}

func TestModelSaveUntrained(t *testing.T) {
	var buf bytes.Buffer
	if err := (&Model{}).Save(&buf); err == nil {
		t.Error("expected error saving untrained model")
	}
}

func TestLoadModelRejectsGarbage(t *testing.T) {
	if _, err := LoadModel(strings.NewReader("nope")); err == nil {
		t.Error("expected error for non-JSON")
	}
	if _, err := LoadModel(strings.NewReader(`{"time_model":"bm90IGpzb24=","energy_model":"bm90IGpzb24="}`)); err == nil {
		t.Error("expected error for garbage payloads")
	}
}
