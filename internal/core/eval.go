package core

import (
	"context"
	"fmt"

	"dsenergy/internal/ml"
	"dsenergy/internal/parallel"
)

// InputAccuracy is one bar pair of Figure 13: the prediction error of a
// model for one held-out input, measured as MAPE over all frequency
// configurations, separately for speedup and normalized energy.
type InputAccuracy struct {
	Input          []float64
	Label          string
	SpeedupMAPE    float64
	NormEnergyMAPE float64
}

// LeaveOneInputOut runs the paper's validation protocol (§5.2): for every
// distinct input feature vector f⃗, the model is retrained on D \ D_v (all
// samples of the other inputs) and evaluated on D_v (the held-out input's
// samples at every frequency), comparing the predicted speedup and
// normalized-energy curves against the measured ones.
func LeaveOneInputOut(ds *Dataset, spec ml.Spec, seed uint64) ([]InputAccuracy, error) {
	return leaveOneInputOut(ds, spec, seed, 1)
}

// LeaveOneInputOutParallel is LeaveOneInputOut with the folds trained on a
// worker pool (workers <= 0 selects GOMAXPROCS). Every fold retrains from
// the same seed on a disjoint input, so the result is identical to the
// serial protocol for every worker count.
func LeaveOneInputOutParallel(ds *Dataset, spec ml.Spec, seed uint64, workers int) ([]InputAccuracy, error) {
	return leaveOneInputOut(ds, spec, seed, workers)
}

func leaveOneInputOut(ds *Dataset, spec ml.Spec, seed uint64, workers int) ([]InputAccuracy, error) {
	inputs := ds.Inputs()
	if len(inputs) < 2 {
		return nil, fmt.Errorf("core: leave-one-input-out needs >= 2 inputs, have %d", len(inputs))
	}
	return parallel.Map(context.Background(), len(inputs), workers, func(_ context.Context, i int) (InputAccuracy, error) {
		return EvalHeldOut(ds, spec, seed, inputs[i])
	})
}

// TrainHeldOut trains a normalized model on every input except held — one
// fold of the leave-one-input-out protocol, also used by the Figure 14
// Pareto evaluation so the assessed input is genuinely unseen.
func TrainHeldOut(ds *Dataset, spec ml.Spec, seed uint64, held []float64) (*Model, error) {
	key := FeatureKey(held)
	train := &Dataset{
		Schema:          ds.Schema,
		Device:          ds.Device,
		BaselineFreqMHz: ds.BaselineFreqMHz,
	}
	for _, s := range ds.Samples {
		if FeatureKey(s.Features) != key {
			train.Samples = append(train.Samples, s)
		}
	}
	model, err := TrainNormalized(train, spec, seed)
	if err != nil {
		return nil, fmt.Errorf("core: training without input %s: %w", key, err)
	}
	return model, nil
}

// EvalHeldOut trains on every input except held and scores the prediction
// for held.
func EvalHeldOut(ds *Dataset, spec ml.Spec, seed uint64, held []float64) (InputAccuracy, error) {
	model, err := TrainHeldOut(ds, spec, seed, held)
	if err != nil {
		return InputAccuracy{}, err
	}
	return ScoreModel(ds, model, held)
}

// NormalizedXY flattens the dataset into the normalized design matrix and
// target vectors used by TrainNormalized, exposed for hyper-parameter
// searches over the same training problem.
func NormalizedXY(ds *Dataset) (X [][]float64, speedup, normEnergy []float64, err error) {
	for _, input := range ds.Inputs() {
		curves, err := ds.TrueCurves(input)
		if err != nil {
			return nil, nil, nil, err
		}
		for _, c := range curves {
			X = append(X, sampleRow(input, c.FreqMHz))
			speedup = append(speedup, c.Speedup)
			normEnergy = append(normEnergy, c.NormEnergy)
		}
	}
	return X, speedup, normEnergy, nil
}

// ScoreModel compares a model's predicted curves for one input against the
// dataset's measured truth and returns the MAPE pair.
func ScoreModel(ds *Dataset, model *Model, input []float64) (InputAccuracy, error) {
	truth, err := ds.TrueCurves(input)
	if err != nil {
		return InputAccuracy{}, err
	}
	freqs := make([]int, len(truth))
	for i, c := range truth {
		freqs[i] = c.FreqMHz
	}
	pred := model.PredictCurves(input, freqs)

	ts, tn := make([]float64, len(truth)), make([]float64, len(truth))
	ps, pn := make([]float64, len(truth)), make([]float64, len(truth))
	for i := range truth {
		ts[i], tn[i] = truth[i].Speedup, truth[i].NormEnergy
		ps[i], pn[i] = pred[i].Speedup, pred[i].NormEnergy
	}
	return InputAccuracy{
		Input:          append([]float64(nil), input...),
		Label:          FeatureKey(input),
		SpeedupMAPE:    ml.MAPE(ts, ps),
		NormEnergyMAPE: ml.MAPE(tn, pn),
	}, nil
}

// CurveMAPE scores an externally produced curve (e.g. the general-purpose
// model's) against the dataset truth for one input. The prediction must
// cover exactly the dataset's swept frequencies for that input.
func CurveMAPE(ds *Dataset, input []float64, predicted []CurvePoint) (InputAccuracy, error) {
	truth, err := ds.TrueCurves(input)
	if err != nil {
		return InputAccuracy{}, err
	}
	if len(predicted) != len(truth) {
		return InputAccuracy{}, fmt.Errorf("core: predicted %d points, truth has %d", len(predicted), len(truth))
	}
	byFreq := make(map[int]CurvePoint, len(predicted))
	for _, p := range predicted {
		byFreq[p.FreqMHz] = p
	}
	ts, tn := make([]float64, len(truth)), make([]float64, len(truth))
	ps, pn := make([]float64, len(truth)), make([]float64, len(truth))
	for i, c := range truth {
		p, ok := byFreq[c.FreqMHz]
		if !ok {
			return InputAccuracy{}, fmt.Errorf("core: prediction missing frequency %d MHz", c.FreqMHz)
		}
		ts[i], tn[i] = c.Speedup, c.NormEnergy
		ps[i], pn[i] = p.Speedup, p.NormEnergy
	}
	return InputAccuracy{
		Input:          append([]float64(nil), input...),
		Label:          FeatureKey(input),
		SpeedupMAPE:    ml.MAPE(ts, ps),
		NormEnergyMAPE: ml.MAPE(tn, pn),
	}, nil
}

// CompareAlgorithms reproduces §5.2.1's regressor comparison: each algorithm
// is evaluated with the leave-one-input-out protocol and the mean MAPE pair
// across inputs is reported.
type AlgorithmScore struct {
	Spec               ml.Spec
	MeanSpeedupMAPE    float64
	MeanNormEnergyMAPE float64
}

// CompareAlgorithms evaluates each spec on the dataset.
func CompareAlgorithms(ds *Dataset, specs []ml.Spec, seed uint64) ([]AlgorithmScore, error) {
	return compareAlgorithms(ds, specs, seed, 1)
}

// CompareAlgorithmsParallel is CompareAlgorithms with the algorithms
// evaluated on a worker pool (workers <= 0 selects GOMAXPROCS), identical to
// the serial comparison for every worker count.
func CompareAlgorithmsParallel(ds *Dataset, specs []ml.Spec, seed uint64, workers int) ([]AlgorithmScore, error) {
	return compareAlgorithms(ds, specs, seed, workers)
}

func compareAlgorithms(ds *Dataset, specs []ml.Spec, seed uint64, workers int) ([]AlgorithmScore, error) {
	return parallel.Map(context.Background(), len(specs), workers, func(_ context.Context, i int) (AlgorithmScore, error) {
		spec := specs[i]
		accs, err := LeaveOneInputOut(ds, spec, seed)
		if err != nil {
			return AlgorithmScore{}, fmt.Errorf("core: comparing %s: %w", spec.Algorithm, err)
		}
		var ss, se float64
		for _, a := range accs {
			ss += a.SpeedupMAPE
			se += a.NormEnergyMAPE
		}
		n := float64(len(accs))
		return AlgorithmScore{
			Spec:               spec,
			MeanSpeedupMAPE:    ss / n,
			MeanNormEnergyMAPE: se / n,
		}, nil
	})
}
