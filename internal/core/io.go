package core

import (
	"encoding/csv"
	"fmt"
	"io"
	"strconv"
)

// Dataset persistence: measurement campaigns are expensive on real hardware
// (the paper sweeps 196 clocks x 5 repetitions per input), so the training
// set is written once and re-read by every modeling run. The format is CSV
// with a two-line header carrying the schema and device metadata.

// WriteCSV serializes the dataset. Layout:
//
//	#dsenergy-dataset,<app>,<device>,<baselineMHz>
//	<feature names...>,freq_mhz,time_s,energy_j
//	<feature values...>,<freq>,<time>,<energy>
func (d *Dataset) WriteCSV(w io.Writer) error {
	cw := csv.NewWriter(w)
	meta := []string{"#dsenergy-dataset", d.Schema.App, d.Device, strconv.Itoa(d.BaselineFreqMHz)}
	if err := cw.Write(meta); err != nil {
		return err
	}
	header := append(append([]string(nil), d.Schema.Features...), "freq_mhz", "time_s", "energy_j")
	if err := cw.Write(header); err != nil {
		return err
	}
	nf := len(d.Schema.Features)
	for i, s := range d.Samples {
		if len(s.Features) != nf {
			return fmt.Errorf("core: sample %d has %d features, schema wants %d", i, len(s.Features), nf)
		}
		row := make([]string, 0, nf+3)
		for _, f := range s.Features {
			row = append(row, strconv.FormatFloat(f, 'g', -1, 64))
		}
		row = append(row,
			strconv.Itoa(s.FreqMHz),
			strconv.FormatFloat(s.TimeS, 'g', -1, 64),
			strconv.FormatFloat(s.EnergyJ, 'g', -1, 64),
		)
		if err := cw.Write(row); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

// ReadCSV parses a dataset serialized by WriteCSV.
func ReadCSV(r io.Reader) (*Dataset, error) {
	cr := csv.NewReader(r)
	cr.FieldsPerRecord = -1

	meta, err := cr.Read()
	if err != nil {
		return nil, fmt.Errorf("core: reading dataset metadata: %w", err)
	}
	if len(meta) != 4 || meta[0] != "#dsenergy-dataset" {
		return nil, fmt.Errorf("core: not a dsenergy dataset (bad magic row)")
	}
	base, err := strconv.Atoi(meta[3])
	if err != nil {
		return nil, fmt.Errorf("core: bad baseline frequency %q", meta[3])
	}

	header, err := cr.Read()
	if err != nil {
		return nil, fmt.Errorf("core: reading dataset header: %w", err)
	}
	if len(header) < 4 {
		return nil, fmt.Errorf("core: header too short: %v", header)
	}
	nf := len(header) - 3
	if header[nf] != "freq_mhz" || header[nf+1] != "time_s" || header[nf+2] != "energy_j" {
		return nil, fmt.Errorf("core: unexpected header columns: %v", header)
	}

	ds := &Dataset{
		Schema:          Schema{App: meta[1], Features: append([]string(nil), header[:nf]...)},
		Device:          meta[2],
		BaselineFreqMHz: base,
	}
	line := 2
	for {
		row, err := cr.Read()
		if err == io.EOF {
			break
		}
		if err != nil {
			return nil, fmt.Errorf("core: line %d: %w", line, err)
		}
		line++
		if len(row) != nf+3 {
			return nil, fmt.Errorf("core: line %d: %d columns, want %d", line, len(row), nf+3)
		}
		s := Sample{Features: make([]float64, nf)}
		for j := 0; j < nf; j++ {
			if s.Features[j], err = strconv.ParseFloat(row[j], 64); err != nil {
				return nil, fmt.Errorf("core: line %d feature %d: %w", line, j, err)
			}
		}
		if s.FreqMHz, err = strconv.Atoi(row[nf]); err != nil {
			return nil, fmt.Errorf("core: line %d frequency: %w", line, err)
		}
		if s.TimeS, err = strconv.ParseFloat(row[nf+1], 64); err != nil {
			return nil, fmt.Errorf("core: line %d time: %w", line, err)
		}
		if s.EnergyJ, err = strconv.ParseFloat(row[nf+2], 64); err != nil {
			return nil, fmt.Errorf("core: line %d energy: %w", line, err)
		}
		if s.TimeS <= 0 || s.EnergyJ <= 0 {
			return nil, fmt.Errorf("core: line %d: non-positive measurement", line)
		}
		ds.Samples = append(ds.Samples, s)
	}
	return ds, nil
}
