package core

import (
	"fmt"
	"math"
	"strings"
	"testing"
	"testing/quick"

	"dsenergy/internal/cronos"
	"dsenergy/internal/gpmodel"
	"dsenergy/internal/gpusim"
	"dsenergy/internal/ligen"
	"dsenergy/internal/ml"
	"dsenergy/internal/synergy"
)

// everyNth subsamples a frequency table to keep tests fast; the full sweep is
// exercised by the benchmark harness.
func everyNth(fs []int, n int) []int {
	var out []int
	for i := 0; i < len(fs); i += n {
		out = append(out, fs[i])
	}
	// Always include the top frequency.
	if out[len(out)-1] != fs[len(fs)-1] {
		out = append(out, fs[len(fs)-1])
	}
	return out
}

// withBaseline ensures the device baseline frequency is part of the sweep.
func withBaseline(fs []int, base int) []int {
	for _, f := range fs {
		if f == base {
			return fs
		}
	}
	out := append([]int(nil), fs...)
	for i, f := range out {
		if f > base {
			return append(out[:i], append([]int{base}, out[i:]...)...)
		}
	}
	return append(out, base)
}

func cronosDataset(t *testing.T, q *synergy.Queue, grids [][3]int) *Dataset {
	t.Helper()
	var wls []FeaturedWorkload
	for _, g := range grids {
		w, err := cronos.NewWorkload(g[0], g[1], g[2], 8)
		if err != nil {
			t.Fatal(err)
		}
		wls = append(wls, FeaturedWorkload{
			Workload: w,
			Features: []float64{float64(g[0]), float64(g[1]), float64(g[2])},
		})
	}
	freqs := withBaseline(everyNth(q.Spec().FreqsAbove(0.4), 8), q.BaselineFreqMHz())
	ds, err := BuildDataset(q, CronosSchema(), wls, BuildConfig{Freqs: freqs, Reps: 3})
	if err != nil {
		t.Fatal(err)
	}
	return ds
}

func testQueue(t *testing.T) *synergy.Queue {
	t.Helper()
	p, err := synergy.NewPlatform(101, gpusim.V100Spec())
	if err != nil {
		t.Fatal(err)
	}
	return p.Queues()[0]
}

var paperGrids = [][3]int{{10, 4, 4}, {20, 8, 8}, {40, 16, 16}, {80, 32, 32}, {160, 64, 64}}

func TestBuildDatasetShape(t *testing.T) {
	q := testQueue(t)
	ds := cronosDataset(t, q, paperGrids[:3])
	if len(ds.Inputs()) != 3 {
		t.Fatalf("want 3 distinct inputs, got %d", len(ds.Inputs()))
	}
	nFreqs := len(withBaseline(everyNth(q.Spec().FreqsAbove(0.4), 8), q.BaselineFreqMHz()))
	if want := 3 * nFreqs; len(ds.Samples) != want {
		t.Fatalf("want %d samples, got %d", want, len(ds.Samples))
	}
	for _, s := range ds.Samples {
		if s.TimeS <= 0 || s.EnergyJ <= 0 {
			t.Fatalf("non-positive measurement %+v", s)
		}
	}
}

func TestBuildDatasetFeatureMismatch(t *testing.T) {
	q := testQueue(t)
	w, _ := cronos.NewWorkload(8, 4, 4, 2)
	_, err := BuildDataset(q, CronosSchema(), []FeaturedWorkload{
		{Workload: w, Features: []float64{1}},
	}, BuildConfig{Freqs: []int{q.BaselineFreqMHz()}, Reps: 1})
	if err == nil {
		t.Error("expected error for feature-count mismatch")
	}
}

func TestTrueCurvesBaselineIsUnity(t *testing.T) {
	q := testQueue(t)
	ds := cronosDataset(t, q, paperGrids[:2])
	curves, err := ds.TrueCurves([]float64{10, 4, 4})
	if err != nil {
		t.Fatal(err)
	}
	found := false
	for _, c := range curves {
		if c.FreqMHz == ds.BaselineFreqMHz {
			found = true
			if c.Speedup != 1 || c.NormEnergy != 1 {
				t.Errorf("baseline point not (1,1): %+v", c)
			}
		}
	}
	if !found {
		t.Error("baseline frequency missing from truth curves")
	}
}

func TestTrainAndPredictCurves(t *testing.T) {
	q := testQueue(t)
	ds := cronosDataset(t, q, paperGrids)
	m, err := Train(ds, ml.Spec{Algorithm: "forest", Params: map[string]float64{"n_estimators": 30}}, 1)
	if err != nil {
		t.Fatal(err)
	}
	// In-sample prediction should track the measurements closely.
	acc, err := ScoreModel(ds, m, []float64{40, 16, 16})
	if err != nil {
		t.Fatal(err)
	}
	if acc.SpeedupMAPE > 0.02 {
		t.Errorf("in-sample speedup MAPE %.4f, want < 0.02", acc.SpeedupMAPE)
	}
	if acc.NormEnergyMAPE > 0.02 {
		t.Errorf("in-sample energy MAPE %.4f, want < 0.02", acc.NormEnergyMAPE)
	}
}

func TestLeaveOneInputOutAccuracy(t *testing.T) {
	// The headline property of the domain-specific models: held-out inputs
	// are predicted within a few percent (paper: 0.4% - 2.2%).
	q := testQueue(t)
	ds := cronosDataset(t, q, paperGrids)
	accs, err := LeaveOneInputOut(ds, ml.Spec{Algorithm: "forest", Params: map[string]float64{"n_estimators": 30}}, 2)
	if err != nil {
		t.Fatal(err)
	}
	if len(accs) != len(paperGrids) {
		t.Fatalf("want %d accuracies, got %d", len(paperGrids), len(accs))
	}
	for _, a := range accs {
		if a.SpeedupMAPE > 0.06 {
			t.Errorf("input %s: speedup MAPE %.4f too high", a.Label, a.SpeedupMAPE)
		}
		if a.NormEnergyMAPE > 0.06 {
			t.Errorf("input %s: energy MAPE %.4f too high", a.Label, a.NormEnergyMAPE)
		}
	}
}

func TestDomainSpecificBeatsGeneralPurpose(t *testing.T) {
	// The paper's central claim (Figure 13): the domain-specific model has
	// an error at least ~10x lower than the general-purpose model on
	// average. At the reduced test scale we require a 3x margin; the full
	// benchmark harness reproduces the 10x figure.
	q := testQueue(t)
	ds := cronosDataset(t, q, paperGrids)

	gpFreqs := everyNth(q.Spec().FreqsAbove(0.4), 10)
	gp, err := gpmodel.Train(q, gpmodel.TrainConfig{
		Freqs: gpFreqs, Reps: 2,
		Spec: ml.Spec{Algorithm: "forest", Params: map[string]float64{"n_estimators": 30}},
		Seed: 3,
	})
	if err != nil {
		t.Fatal(err)
	}

	dsAccs, err := LeaveOneInputOut(ds, ml.Spec{Algorithm: "forest", Params: map[string]float64{"n_estimators": 30}}, 4)
	if err != nil {
		t.Fatal(err)
	}

	var gpSum float64
	for _, input := range ds.Inputs() {
		truth, err := ds.TrueCurves(input)
		if err != nil {
			t.Fatal(err)
		}
		freqs := make([]int, len(truth))
		for j, c := range truth {
			freqs[j] = c.FreqMHz
		}
		w, _ := cronos.NewWorkload(int(input[0]), int(input[1]), int(input[2]), 8)
		mix := gpmodel.AppStaticFeatures(w.Profiles())
		gpCurves := gp.PredictCurves(mix, freqs)
		conv := make([]CurvePoint, len(gpCurves))
		for j, c := range gpCurves {
			conv[j] = CurvePoint{FreqMHz: c.FreqMHz, Speedup: c.Speedup, NormEnergy: c.NormEnergy}
		}
		gpAcc, err := CurveMAPE(ds, input, conv)
		if err != nil {
			t.Fatal(err)
		}
		gpSum += gpAcc.SpeedupMAPE + gpAcc.NormEnergyMAPE
	}
	var dsSum float64
	for _, a := range dsAccs {
		dsSum += a.SpeedupMAPE + a.NormEnergyMAPE
	}
	dsMean := dsSum / float64(len(dsAccs))
	gpMean := gpSum / float64(len(ds.Inputs()))
	t.Logf("mean MAPE (speedup+energy): domain-specific %.4f, general-purpose %.4f", dsMean, gpMean)
	if gpMean < 3*dsMean {
		t.Errorf("domain-specific model not clearly better: DS %.4f vs GP %.4f", dsMean, gpMean)
	}
}

func TestPredictParetoSubsetOfSweep(t *testing.T) {
	q := testQueue(t)
	ds := cronosDataset(t, q, paperGrids[:3])
	m, err := Train(ds, ml.Spec{Algorithm: "forest", Params: map[string]float64{"n_estimators": 20}}, 5)
	if err != nil {
		t.Fatal(err)
	}
	freqs := withBaseline(everyNth(q.Spec().FreqsAbove(0.4), 8), q.BaselineFreqMHz())
	front := m.PredictPareto([]float64{20, 8, 8}, freqs)
	if len(front) == 0 {
		t.Fatal("empty predicted Pareto front")
	}
	inSweep := map[int]bool{}
	for _, f := range freqs {
		inSweep[f] = true
	}
	for _, p := range front {
		if !inSweep[p.FreqMHz] {
			t.Errorf("front frequency %d not in sweep", p.FreqMHz)
		}
		if math.IsNaN(p.Speedup) || math.IsNaN(p.NormEnergy) {
			t.Errorf("front point not finite: %+v", p)
		}
	}
}

func TestSchemasMatchTable2(t *testing.T) {
	c := CronosSchema()
	if len(c.Features) != 3 || c.Features[0] != "f_grid_x" {
		t.Errorf("cronos schema %v", c.Features)
	}
	l := LiGenSchema()
	if len(l.Features) != 3 || l.Features[0] != "f_ligands" {
		t.Errorf("ligen schema %v", l.Features)
	}
}

func TestFeatureKeyStable(t *testing.T) {
	if FeatureKey([]float64{10, 4, 4}) != "10x4x4" {
		t.Errorf("feature key %q", FeatureKey([]float64{10, 4, 4}))
	}
}

func TestLiGenDatasetRoundTrip(t *testing.T) {
	q := testQueue(t)
	inputs := []ligen.Input{
		{Ligands: 256, Atoms: 31, Fragments: 4},
		{Ligands: 1024, Atoms: 31, Fragments: 4},
		{Ligands: 256, Atoms: 89, Fragments: 4},
		{Ligands: 256, Atoms: 31, Fragments: 16},
	}
	var wls []FeaturedWorkload
	for _, in := range inputs {
		w, err := ligen.NewWorkload(in)
		if err != nil {
			t.Fatal(err)
		}
		wls = append(wls, FeaturedWorkload{
			Workload: w,
			Features: []float64{float64(in.Ligands), float64(in.Fragments), float64(in.Atoms)},
		})
	}
	freqs := withBaseline(everyNth(q.Spec().FreqsAbove(0.4), 10), q.BaselineFreqMHz())
	ds, err := BuildDataset(q, LiGenSchema(), wls, BuildConfig{Freqs: freqs, Reps: 2})
	if err != nil {
		t.Fatal(err)
	}
	accs, err := LeaveOneInputOut(ds, ml.Spec{Algorithm: "forest", Params: map[string]float64{"n_estimators": 20}}, 7)
	if err != nil {
		t.Fatal(err)
	}
	for _, a := range accs {
		if a.SpeedupMAPE > 0.08 || a.NormEnergyMAPE > 0.08 {
			t.Errorf("ligen input %s: MAPE (%.4f, %.4f) too high", a.Label, a.SpeedupMAPE, a.NormEnergyMAPE)
		}
	}
}

func TestMethodologyPortableToUnseenDevice(t *testing.T) {
	// §6: the approach is "architecture-independent" — it only needs the
	// device's frequency range. Run the full pipeline on the A100, which
	// the paper never touched, and check the accuracy regime holds.
	p, err := synergy.NewPlatform(303, gpusim.A100Spec())
	if err != nil {
		t.Fatal(err)
	}
	q := p.Queues()[0]
	ds := cronosDataset(t, q, paperGrids)
	accs, err := LeaveOneInputOut(ds, ml.Spec{Algorithm: "forest", Params: map[string]float64{"n_estimators": 25}}, 5)
	if err != nil {
		t.Fatal(err)
	}
	// The A100's 40 MiB LLC moves the cache-spill transition right between
	// the two largest grids, so their held-out errors run higher than on
	// the V100 — still clearly in the domain-specific regime, far from the
	// general-purpose model's 10-20%.
	for _, a := range accs {
		if a.SpeedupMAPE > 0.10 || a.NormEnergyMAPE > 0.10 {
			t.Errorf("A100 input %s: MAPE (%.4f, %.4f) outside the domain-specific regime",
				a.Label, a.SpeedupMAPE, a.NormEnergyMAPE)
		}
	}
}

// failingWorkload returns an error on its nth execution, for failure
// injection through the measurement pipeline.
type failingWorkload struct {
	failAfter int
	runs      *int
}

func (w failingWorkload) Name() string { return "failing" }
func (w failingWorkload) RunOn(q *synergy.Queue) (float64, float64, error) {
	*w.runs++
	if *w.runs > w.failAfter {
		return 0, 0, errInjected
	}
	return 1, 1, nil
}

var errInjected = fmt.Errorf("injected measurement failure")

func TestBuildDatasetPropagatesWorkloadErrors(t *testing.T) {
	q := testQueue(t)
	runs := 0
	_, err := BuildDataset(q, CronosSchema(), []FeaturedWorkload{{
		Workload: failingWorkload{failAfter: 3, runs: &runs},
		Features: []float64{1, 1, 1},
	}}, BuildConfig{Freqs: []int{q.BaselineFreqMHz(), q.Spec().FMaxMHz()}, Reps: 5})
	if err == nil {
		t.Fatal("expected injected failure to propagate")
	}
	if !strings.Contains(err.Error(), "injected") {
		t.Errorf("error lost its cause: %v", err)
	}
	// The device clock must be restored even after a failed sweep.
	if q.Device().CoreFreqMHz() != q.BaselineFreqMHz() {
		t.Error("failed measurement leaked a pinned frequency")
	}
}

func TestFeatureKeyInjectiveProperty(t *testing.T) {
	// Property: distinct feature vectors get distinct keys (the grouping
	// correctness of the leave-one-input-out protocol rests on this).
	f := func(a, b [3]int16) bool {
		fa := []float64{float64(a[0]), float64(a[1]), float64(a[2])}
		fb := []float64{float64(b[0]), float64(b[1]), float64(b[2])}
		same := a == b
		return (FeatureKey(fa) == FeatureKey(fb)) == same
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

func TestPredictCurvesBatchMatchesPredictCurves(t *testing.T) {
	q := testQueue(t)
	ds := cronosDataset(t, q, paperGrids[:3])
	m, err := Train(ds, ml.Spec{Algorithm: "forest", Params: map[string]float64{"n_estimators": 20}}, 3)
	if err != nil {
		t.Fatal(err)
	}
	freqs := everyNth(q.Spec().FreqsAbove(0.4), 16)
	inputs := [][]float64{{10, 4, 4}, {20, 8, 8}, {40, 16, 16}, {15, 6, 6}}
	batch, err := m.PredictCurvesBatch(inputs, freqs)
	if err != nil {
		t.Fatal(err)
	}
	for i, in := range inputs {
		single := m.PredictCurves(in, freqs)
		if len(batch[i]) != len(single) {
			t.Fatalf("input %d: batch has %d points, single %d", i, len(batch[i]), len(single))
		}
		for j := range single {
			b, s := batch[i][j], single[j]
			if b.FreqMHz != s.FreqMHz ||
				math.Float64bits(b.Speedup) != math.Float64bits(s.Speedup) ||
				math.Float64bits(b.NormEnergy) != math.Float64bits(s.NormEnergy) ||
				math.Float64bits(b.TimeS) != math.Float64bits(s.TimeS) ||
				math.Float64bits(b.EnergyJ) != math.Float64bits(s.EnergyJ) {
				t.Fatalf("input %d freq %d: batch %+v != single %+v", i, b.FreqMHz, b, s)
			}
		}
	}
}

func TestPredictCurvesBatchRejectsMisShapedInputs(t *testing.T) {
	q := testQueue(t)
	ds := cronosDataset(t, q, paperGrids[:2])
	m, err := Train(ds, ml.Spec{Algorithm: "forest", Params: map[string]float64{"n_estimators": 10}}, 3)
	if err != nil {
		t.Fatal(err)
	}
	if m.FeatureDim() != 3 {
		t.Fatalf("FeatureDim = %d, want 3", m.FeatureDim())
	}
	freqs := []int{q.BaselineFreqMHz()}
	for _, bad := range [][][]float64{
		{{10, 4}},             // short
		{{10, 4, 4, 9}},       // wide
		{{10, 4, 4}, {10, 4}}, // mixed
		{nil},                 // empty
	} {
		if _, err := m.PredictCurvesBatch(bad, freqs); err == nil {
			t.Errorf("mis-shaped inputs %v accepted", bad)
		}
	}
}
