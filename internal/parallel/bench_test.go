package parallel

import (
	"context"
	"testing"
)

// BenchmarkDispatch measures the engine's per-task overhead: 1<<16 trivial
// tasks (one slot write each) on two workers, so the cost measured is almost
// entirely claiming, closure dispatch and cancellation polling rather than
// task work.
func BenchmarkDispatch(b *testing.B) {
	const n = 1 << 16
	out := make([]float64, n)
	b.Run("foreach", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			err := ForEach(context.Background(), n, 2, func(_ context.Context, i int) error {
				out[i] = float64(i)
				return nil
			})
			if err != nil {
				b.Fatal(err)
			}
		}
		b.ReportMetric(float64(b.Elapsed().Nanoseconds())/float64(b.N)/n, "ns/task")
	})
	b.Run("foreach-chunked", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			err := ForEachChunked(context.Background(), n, 2, 0, func(_ context.Context, lo, hi int) error {
				for j := lo; j < hi; j++ {
					out[j] = float64(j)
				}
				return nil
			})
			if err != nil {
				b.Fatal(err)
			}
		}
		b.ReportMetric(float64(b.Elapsed().Nanoseconds())/float64(b.N)/n, "ns/task")
	})
}
