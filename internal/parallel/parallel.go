// Package parallel is the repository's deterministic fork/join engine: a
// bounded worker pool whose output is byte-identical to serial execution
// regardless of scheduling.
//
// The engine owns no randomness of its own. Determinism is a contract with
// the caller: any stochastic state a task needs (an xrand stream, a fault
// stream, a cloned device) must be derived *before* the tasks are handed to
// the pool — typically by splitting one parent stream once per task, in task
// order. Each task then depends only on its own pre-split state, never on
// which goroutine runs it or in what order, and the engine writes every
// result into the slot of its task index. Running with one worker, sixteen
// workers, or under the race detector produces the same bytes.
//
// Error handling is fail-fast: the first task error cancels the shared
// context so in-flight and queued tasks can stop early, and the error
// recorded for the lowest task index is returned — on an unlucky schedule a
// lower-index task may have been cancelled before running, so callers that
// need deterministic *state* on failure must discard partial results (as
// synergy.ParallelSweep does) rather than interpret which index failed.
package parallel

import (
	"context"
	"runtime"
	"sync"
	"sync/atomic"
)

// Workers resolves a worker-count request: a positive n is used as given,
// anything else selects GOMAXPROCS (one worker per schedulable CPU).
func Workers(n int) int {
	if n > 0 {
		return n
	}
	return runtime.GOMAXPROCS(0)
}

// ForEach runs fn(ctx, i) for every i in [0, n) on a pool of at most
// Workers(workers) goroutines and waits for all of them. With one worker (or
// n <= 1 tasks) it degrades to a plain loop on the calling goroutine — the
// serial reference the parallel schedule must be indistinguishable from.
//
// The context passed to fn is cancelled as soon as any task fails; fn may
// ignore it (tasks are typically short) or poll it to abort long work early.
func ForEach(ctx context.Context, n, workers int, fn func(ctx context.Context, i int) error) error {
	if n <= 0 {
		return nil
	}
	if ctx == nil {
		ctx = context.Background()
	}
	w := Workers(workers)
	if w > n {
		w = n
	}
	if w == 1 {
		for i := 0; i < n; i++ {
			if err := ctx.Err(); err != nil {
				return err
			}
			if err := fn(ctx, i); err != nil {
				return err
			}
		}
		return nil
	}

	cctx, cancel := context.WithCancel(ctx)
	defer cancel()

	var (
		next   int64 // next unclaimed task index
		mu     sync.Mutex
		errIdx = -1
		first  error
		wg     sync.WaitGroup
	)
	record := func(i int, err error) {
		mu.Lock()
		if errIdx < 0 || i < errIdx {
			errIdx, first = i, err
		}
		mu.Unlock()
		cancel()
	}
	for g := 0; g < w; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(atomic.AddInt64(&next, 1)) - 1
				if i >= n {
					return
				}
				if cctx.Err() != nil {
					// Cancelled by an earlier failure (or the caller): stop
					// claiming work without recording — a cancellation is not
					// this task's error.
					return
				}
				if err := fn(cctx, i); err != nil {
					record(i, err)
					return
				}
			}
		}()
	}
	wg.Wait()
	mu.Lock()
	defer mu.Unlock()
	if first != nil {
		return first
	}
	// No task failed; surface a caller-side cancellation if there was one.
	return ctx.Err()
}

// ForEachChunked runs fn over contiguous half-open ranges [lo, hi) that tile
// [0, n), each at most grain indices wide. It is the grain-size counterpart
// of ForEach for workloads whose per-index cost is small enough that task
// claiming and closure dispatch dominate, or whose bodies can amortize
// per-chunk scratch state across the indices of one range. grain <= 0 selects
// an automatic grain of about n/(4·workers) (at least 1), which keeps roughly
// four chunks per worker in flight for load balancing while dividing the
// per-index dispatch cost by the grain.
//
// The determinism contract is inherited from ForEach unchanged: fn must
// derive everything it needs from the indices it is handed, so every chunk
// decomposition — one chunk, n chunks, or anything between — produces the
// same bytes as the serial loop. With one worker the chunks run in ascending
// order on the calling goroutine.
//
// Error handling is fail-fast like ForEach, at chunk granularity: the context
// passed to fn is cancelled as soon as any chunk fails, and the error
// recorded for the chunk with the lowest start index is returned. As with
// ForEach, an unlucky schedule may cancel a lower chunk before it runs, so
// callers needing deterministic state on failure must discard partial
// results.
func ForEachChunked(ctx context.Context, n, workers, grain int, fn func(ctx context.Context, lo, hi int) error) error {
	if n <= 0 {
		return nil
	}
	if ctx == nil {
		ctx = context.Background()
	}
	w := Workers(workers)
	if w > n {
		w = n
	}
	if grain <= 0 {
		grain = n / (4 * w)
		if grain < 1 {
			grain = 1
		}
	}
	chunks := (n + grain - 1) / grain
	if w > chunks {
		w = chunks
	}
	if w == 1 {
		for lo := 0; lo < n; lo += grain {
			if err := ctx.Err(); err != nil {
				return err
			}
			hi := lo + grain
			if hi > n {
				hi = n
			}
			if err := fn(ctx, lo, hi); err != nil {
				return err
			}
		}
		return nil
	}

	cctx, cancel := context.WithCancel(ctx)
	defer cancel()

	var (
		next  int64 // next unclaimed chunk number
		mu    sync.Mutex
		errLo = -1
		first error
		wg    sync.WaitGroup
	)
	record := func(lo int, err error) {
		mu.Lock()
		if errLo < 0 || lo < errLo {
			errLo, first = lo, err
		}
		mu.Unlock()
		cancel()
	}
	for g := 0; g < w; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				c := int(atomic.AddInt64(&next, 1)) - 1
				if c >= chunks {
					return
				}
				if cctx.Err() != nil {
					return
				}
				lo := c * grain
				hi := lo + grain
				if hi > n {
					hi = n
				}
				if err := fn(cctx, lo, hi); err != nil {
					record(lo, err)
					return
				}
			}
		}()
	}
	wg.Wait()
	mu.Lock()
	defer mu.Unlock()
	if first != nil {
		return first
	}
	return ctx.Err()
}

// Map runs fn over [0, n) like ForEach and collects the results in task
// order: out[i] is fn's value for index i, wherever and whenever it ran.
func Map[T any](ctx context.Context, n, workers int, fn func(ctx context.Context, i int) (T, error)) ([]T, error) {
	out := make([]T, n)
	err := ForEach(ctx, n, workers, func(ctx context.Context, i int) error {
		v, err := fn(ctx, i)
		if err != nil {
			return err
		}
		out[i] = v
		return nil
	})
	if err != nil {
		return nil, err
	}
	return out, nil
}
