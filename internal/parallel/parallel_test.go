package parallel

import (
	"context"
	"errors"
	"fmt"
	"reflect"
	"sync"
	"sync/atomic"
	"testing"

	"dsenergy/internal/xrand"
)

func TestWorkersResolution(t *testing.T) {
	if got := Workers(3); got != 3 {
		t.Errorf("Workers(3) = %d", got)
	}
	if got := Workers(0); got < 1 {
		t.Errorf("Workers(0) = %d, want >= 1", got)
	}
	if got := Workers(-2); got != Workers(0) {
		t.Errorf("Workers(-2) = %d, want GOMAXPROCS default %d", got, Workers(0))
	}
}

func TestForEachRunsEveryIndexOnce(t *testing.T) {
	for _, workers := range []int{1, 2, 7, 64} {
		const n = 100
		counts := make([]int64, n)
		err := ForEach(context.Background(), n, workers, func(_ context.Context, i int) error {
			atomic.AddInt64(&counts[i], 1)
			return nil
		})
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		for i, c := range counts {
			if c != 1 {
				t.Fatalf("workers=%d: index %d ran %d times", workers, i, c)
			}
		}
	}
}

func TestForEachBoundsConcurrency(t *testing.T) {
	const workers = 3
	var cur, max int64
	var mu sync.Mutex
	err := ForEach(context.Background(), 50, workers, func(_ context.Context, i int) error {
		c := atomic.AddInt64(&cur, 1)
		mu.Lock()
		if c > max {
			max = c
		}
		mu.Unlock()
		atomic.AddInt64(&cur, -1)
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if max > workers {
		t.Errorf("observed %d concurrent tasks, pool bound is %d", max, workers)
	}
}

func TestMapPreservesOrder(t *testing.T) {
	for _, workers := range []int{1, 4, 16} {
		out, err := Map(context.Background(), 64, workers, func(_ context.Context, i int) (int, error) {
			return i * i, nil
		})
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		for i, v := range out {
			if v != i*i {
				t.Fatalf("workers=%d: out[%d] = %d, want %d", workers, i, v, i*i)
			}
		}
	}
}

// TestMapMatchesSerialWithPreSplitStreams is the engine's core contract: with
// per-task streams split before the fork, the parallel result set is
// identical to the serial one however the pool schedules it.
func TestMapMatchesSerialWithPreSplitStreams(t *testing.T) {
	run := func(workers int) []uint64 {
		base := xrand.New(99)
		streams := base.SplitN(40)
		out, err := Map(context.Background(), len(streams), workers, func(_ context.Context, i int) (uint64, error) {
			var acc uint64
			for k := 0; k < 50; k++ {
				acc ^= streams[i].Uint64()
			}
			return acc, nil
		})
		if err != nil {
			t.Fatal(err)
		}
		return out
	}
	serial := run(1)
	for _, workers := range []int{2, 8, 32} {
		if got := run(workers); !reflect.DeepEqual(got, serial) {
			t.Fatalf("workers=%d diverged from serial execution", workers)
		}
	}
}

func TestForEachFailFast(t *testing.T) {
	boom := errors.New("boom")
	var ran int64
	err := ForEach(context.Background(), 1000, 4, func(ctx context.Context, i int) error {
		atomic.AddInt64(&ran, 1)
		if i == 5 {
			return fmt.Errorf("task %d: %w", i, boom)
		}
		return nil
	})
	if !errors.Is(err, boom) {
		t.Fatalf("err = %v, want wrapped boom", err)
	}
	if n := atomic.LoadInt64(&ran); n == 1000 {
		t.Error("cancellation did not stop any queued tasks")
	}
}

func TestForEachSerialErrorIsFirstIndex(t *testing.T) {
	// With one worker the engine is a plain loop: the error of the first
	// failing index is returned and later tasks never run.
	var ran []int
	err := ForEach(context.Background(), 10, 1, func(_ context.Context, i int) error {
		ran = append(ran, i)
		if i >= 3 {
			return fmt.Errorf("fail at %d", i)
		}
		return nil
	})
	if err == nil || err.Error() != "fail at 3" {
		t.Fatalf("err = %v", err)
	}
	if !reflect.DeepEqual(ran, []int{0, 1, 2, 3}) {
		t.Fatalf("ran %v", ran)
	}
}

func TestForEachCallerCancellation(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	err := ForEach(ctx, 8, 4, func(context.Context, int) error { return nil })
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
}

func TestForEachChunkedCoversEveryIndexOnce(t *testing.T) {
	const n = 257 // prime: no grain divides it, so the tail chunk is short
	for _, workers := range []int{1, 2, 7, 64} {
		for _, grain := range []int{0, 1, 3, 64, 1000} {
			counts := make([]int64, n)
			err := ForEachChunked(context.Background(), n, workers, grain, func(_ context.Context, lo, hi int) error {
				if lo >= hi || lo < 0 || hi > n {
					return fmt.Errorf("bad chunk [%d,%d)", lo, hi)
				}
				if grain > 0 && hi-lo > grain {
					return fmt.Errorf("chunk [%d,%d) exceeds grain %d", lo, hi, grain)
				}
				for i := lo; i < hi; i++ {
					atomic.AddInt64(&counts[i], 1)
				}
				return nil
			})
			if err != nil {
				t.Fatalf("workers=%d grain=%d: %v", workers, grain, err)
			}
			for i, c := range counts {
				if c != 1 {
					t.Fatalf("workers=%d grain=%d: index %d ran %d times", workers, grain, i, c)
				}
			}
		}
	}
}

// TestForEachChunkedMatchesForEach locks the rewiring contract: a body that
// derives its work purely from the indices produces the same bytes through
// ForEachChunked as through ForEach, for every worker count and grain.
func TestForEachChunkedMatchesForEach(t *testing.T) {
	const n = 120
	want := make([]uint64, n)
	if err := ForEach(context.Background(), n, 1, func(_ context.Context, i int) error {
		want[i] = xrand.New(uint64(i)).Uint64()
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{1, 3, 16} {
		for _, grain := range []int{0, 1, 7, 200} {
			got := make([]uint64, n)
			err := ForEachChunked(context.Background(), n, workers, grain, func(_ context.Context, lo, hi int) error {
				for i := lo; i < hi; i++ {
					got[i] = xrand.New(uint64(i)).Uint64()
				}
				return nil
			})
			if err != nil {
				t.Fatalf("workers=%d grain=%d: %v", workers, grain, err)
			}
			if !reflect.DeepEqual(got, want) {
				t.Fatalf("workers=%d grain=%d diverged from ForEach", workers, grain)
			}
		}
	}
}

func TestForEachChunkedSerialErrorIsFirstChunk(t *testing.T) {
	// With one worker the chunks run in ascending order: the first failing
	// chunk's error is returned and later chunks never run.
	var ran []int
	err := ForEachChunked(context.Background(), 20, 1, 4, func(_ context.Context, lo, hi int) error {
		ran = append(ran, lo)
		if lo >= 8 {
			return fmt.Errorf("fail at %d", lo)
		}
		return nil
	})
	if err == nil || err.Error() != "fail at 8" {
		t.Fatalf("err = %v", err)
	}
	if !reflect.DeepEqual(ran, []int{0, 4, 8}) {
		t.Fatalf("ran chunks %v", ran)
	}
}

func TestForEachChunkedFailFast(t *testing.T) {
	boom := errors.New("boom")
	var ran int64
	err := ForEachChunked(context.Background(), 1000, 4, 1, func(_ context.Context, lo, hi int) error {
		atomic.AddInt64(&ran, 1)
		if lo == 5 {
			return fmt.Errorf("chunk %d: %w", lo, boom)
		}
		return nil
	})
	if !errors.Is(err, boom) {
		t.Fatalf("err = %v, want wrapped boom", err)
	}
	if n := atomic.LoadInt64(&ran); n == 1000 {
		t.Error("cancellation did not stop any queued chunks")
	}
}

func TestForEachChunkedCallerCancellation(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	err := ForEachChunked(ctx, 8, 4, 2, func(context.Context, int, int) error { return nil })
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
}

func TestForEachChunkedEmptyAndNilContext(t *testing.T) {
	if err := ForEachChunked(context.Background(), 0, 4, 8, nil); err != nil {
		t.Fatalf("n=0 must be a no-op, got %v", err)
	}
	err := ForEachChunked(nil, 3, 2, 1, func(context.Context, int, int) error { return nil }) //nolint:staticcheck
	if err != nil {
		t.Fatalf("nil context must default to Background, got %v", err)
	}
}

func TestForEachEmptyAndNilContext(t *testing.T) {
	if err := ForEach(context.Background(), 0, 4, nil); err != nil {
		t.Fatalf("n=0 must be a no-op, got %v", err)
	}
	err := ForEach(nil, 3, 2, func(context.Context, int) error { return nil }) //nolint:staticcheck
	if err != nil {
		t.Fatalf("nil context must default to Background, got %v", err)
	}
}
