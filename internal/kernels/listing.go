package kernels

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"
)

// Static feature extraction from code: the general-purpose model's
// prediction phase "extracts static code features from a new input code"
// (§4.1, after Fan et al., who analyze PTX). This file implements that
// analyzer for a small PTX-like kernel listing format:
//
//	// comments and blank lines are ignored
//	loop 89            // multiplies the counts of the enclosed block
//	    fadd           // one floating point addition
//	    fmul 3         // three floating point multiplications
//	    ld.global 2    // two global memory loads
//	end
//	sin                // one special-function evaluation
//
// Counts are per work item. Nested loops multiply. The recognized opcodes
// map exactly onto the ten Table 1 feature classes.

// opcodeClass maps listing opcodes to InstructionMix fields.
var opcodeClass = map[string]func(*InstructionMix, float64){
	"iadd":      func(m *InstructionMix, n float64) { m.IntAdd += n },
	"isub":      func(m *InstructionMix, n float64) { m.IntAdd += n },
	"imul":      func(m *InstructionMix, n float64) { m.IntMul += n },
	"idiv":      func(m *InstructionMix, n float64) { m.IntDiv += n },
	"and":       func(m *InstructionMix, n float64) { m.IntBitwise += n },
	"or":        func(m *InstructionMix, n float64) { m.IntBitwise += n },
	"xor":       func(m *InstructionMix, n float64) { m.IntBitwise += n },
	"shl":       func(m *InstructionMix, n float64) { m.IntBitwise += n },
	"shr":       func(m *InstructionMix, n float64) { m.IntBitwise += n },
	"fadd":      func(m *InstructionMix, n float64) { m.FloatAdd += n },
	"fsub":      func(m *InstructionMix, n float64) { m.FloatAdd += n },
	"fmul":      func(m *InstructionMix, n float64) { m.FloatMul += n },
	"fma":       func(m *InstructionMix, n float64) { m.FloatAdd += n; m.FloatMul += n },
	"fdiv":      func(m *InstructionMix, n float64) { m.FloatDiv += n },
	"sin":       func(m *InstructionMix, n float64) { m.SpecialFn += n },
	"cos":       func(m *InstructionMix, n float64) { m.SpecialFn += n },
	"sqrt":      func(m *InstructionMix, n float64) { m.SpecialFn += n },
	"exp":       func(m *InstructionMix, n float64) { m.SpecialFn += n },
	"log":       func(m *InstructionMix, n float64) { m.SpecialFn += n },
	"rcp":       func(m *InstructionMix, n float64) { m.SpecialFn += n },
	"ld.global": func(m *InstructionMix, n float64) { m.GlobalAcc += n },
	"st.global": func(m *InstructionMix, n float64) { m.GlobalAcc += n },
	"ld.shared": func(m *InstructionMix, n float64) { m.LocalAcc += n },
	"st.shared": func(m *InstructionMix, n float64) { m.LocalAcc += n },
}

// ParseListing extracts the per-work-item instruction mix from a kernel
// listing — the static analysis step of the general-purpose model's
// prediction phase.
func ParseListing(r io.Reader) (InstructionMix, error) {
	var mix InstructionMix
	multipliers := []float64{1}
	sc := bufio.NewScanner(r)
	line := 0
	for sc.Scan() {
		line++
		text := sc.Text()
		if i := strings.Index(text, "//"); i >= 0 {
			text = text[:i]
		}
		fields := strings.Fields(text)
		if len(fields) == 0 {
			continue
		}
		op := strings.ToLower(fields[0])
		switch op {
		case "loop":
			if len(fields) != 2 {
				return InstructionMix{}, fmt.Errorf("kernels: line %d: loop needs a trip count", line)
			}
			trips, err := strconv.ParseFloat(fields[1], 64)
			if err != nil || trips <= 0 {
				return InstructionMix{}, fmt.Errorf("kernels: line %d: bad trip count %q", line, fields[1])
			}
			multipliers = append(multipliers, multipliers[len(multipliers)-1]*trips)
		case "end":
			if len(multipliers) == 1 {
				return InstructionMix{}, fmt.Errorf("kernels: line %d: end without loop", line)
			}
			multipliers = multipliers[:len(multipliers)-1]
		default:
			apply, ok := opcodeClass[op]
			if !ok {
				return InstructionMix{}, fmt.Errorf("kernels: line %d: unknown opcode %q", line, op)
			}
			count := 1.0
			if len(fields) > 1 {
				v, err := strconv.ParseFloat(fields[1], 64)
				if err != nil || v < 0 {
					return InstructionMix{}, fmt.Errorf("kernels: line %d: bad count %q", line, fields[1])
				}
				count = v
			}
			if len(fields) > 2 {
				return InstructionMix{}, fmt.Errorf("kernels: line %d: trailing tokens", line)
			}
			apply(&mix, count*multipliers[len(multipliers)-1])
		}
	}
	if err := sc.Err(); err != nil {
		return InstructionMix{}, err
	}
	if len(multipliers) != 1 {
		return InstructionMix{}, fmt.Errorf("kernels: %d unclosed loop(s)", len(multipliers)-1)
	}
	if mix.Total() == 0 {
		return InstructionMix{}, fmt.Errorf("kernels: listing contains no instructions")
	}
	return mix, nil
}

// WriteListing renders a mix back into the listing format (single flat block,
// counts merged per class) — the inverse used for inspection and round-trip
// testing.
func WriteListing(w io.Writer, m InstructionMix) error {
	emit := func(op string, n float64) error {
		if n == 0 {
			return nil
		}
		_, err := fmt.Fprintf(w, "%s %g\n", op, n)
		return err
	}
	for _, e := range []struct {
		op string
		n  float64
	}{
		{"iadd", m.IntAdd}, {"imul", m.IntMul}, {"idiv", m.IntDiv}, {"and", m.IntBitwise},
		{"fadd", m.FloatAdd}, {"fmul", m.FloatMul}, {"fdiv", m.FloatDiv}, {"sin", m.SpecialFn},
		{"ld.global", m.GlobalAcc}, {"ld.shared", m.LocalAcc},
	} {
		if err := emit(e.op, e.n); err != nil {
			return err
		}
	}
	return nil
}
