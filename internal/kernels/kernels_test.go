package kernels

import (
	"math"
	"testing"
	"testing/quick"
)

func sampleMix() InstructionMix {
	return InstructionMix{
		IntAdd: 1, IntMul: 2, IntDiv: 3, IntBitwise: 4,
		FloatAdd: 5, FloatMul: 6, FloatDiv: 7, SpecialFn: 8,
		GlobalAcc: 9, LocalAcc: 10,
	}
}

func TestTotal(t *testing.T) {
	if got := sampleMix().Total(); got != 55 {
		t.Errorf("total %g, want 55", got)
	}
	if got := (InstructionMix{}).Total(); got != 0 {
		t.Errorf("empty total %g", got)
	}
}

func TestStaticFeaturesSumToOne(t *testing.T) {
	f := sampleMix().StaticFeatures()
	if len(f) != len(FeatureNames) {
		t.Fatalf("feature vector length %d, want %d", len(f), len(FeatureNames))
	}
	var sum float64
	for _, v := range f {
		if v < 0 {
			t.Fatalf("negative feature fraction %g", v)
		}
		sum += v
	}
	if math.Abs(sum-1) > 1e-12 {
		t.Errorf("features sum to %g, want 1", sum)
	}
}

func TestStaticFeaturesEmptyMix(t *testing.T) {
	f := (InstructionMix{}).StaticFeatures()
	for i, v := range f {
		if v != 0 {
			t.Errorf("empty mix feature %d = %g, want 0", i, v)
		}
	}
}

func TestScaleLinearity(t *testing.T) {
	f := func(k uint8) bool {
		kk := float64(k)
		m := sampleMix().Scale(kk)
		return math.Abs(m.Total()-55*kk) < 1e-9 &&
			math.Abs(m.ComputeCycles()-sampleMix().ComputeCycles()*kk) < 1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestAddCommutes(t *testing.T) {
	a := sampleMix()
	b := InstructionMix{FloatAdd: 3, GlobalAcc: 2}
	if a.Add(b) != b.Add(a) {
		t.Error("Add not commutative")
	}
	if got := a.Add(b).Total(); got != 60 {
		t.Errorf("sum total %g, want 60", got)
	}
}

func TestComputeCyclesWeighting(t *testing.T) {
	// Divisions must cost more than additions.
	add := InstructionMix{FloatAdd: 10}
	div := InstructionMix{FloatDiv: 10}
	if div.ComputeCycles() <= add.ComputeCycles() {
		t.Errorf("division cycles %g not above addition cycles %g",
			div.ComputeCycles(), add.ComputeCycles())
	}
}

func TestFlopsAndBytes(t *testing.T) {
	m := InstructionMix{FloatAdd: 2, FloatMul: 3, FloatDiv: 1, SpecialFn: 4, GlobalAcc: 5}
	if got := m.Flops(); got != 10 {
		t.Errorf("flops %g, want 10", got)
	}
	if got := m.GlobalBytes(); got != 20 {
		t.Errorf("bytes %g, want 20 (4 per access)", got)
	}
}

func TestProfileValidate(t *testing.T) {
	good := Profile{
		Name: "k", Mix: sampleMix(),
		WorkItems: 100, Launches: 1, WorkingSetBytes: 1024, CacheReuse: 0.5,
	}
	if err := good.Validate(); err != nil {
		t.Fatalf("valid profile rejected: %v", err)
	}
	cases := []struct {
		name string
		mut  func(*Profile)
	}{
		{"zero items", func(p *Profile) { p.WorkItems = 0 }},
		{"zero launches", func(p *Profile) { p.Launches = 0 }},
		{"reuse 1", func(p *Profile) { p.CacheReuse = 1 }},
		{"negative reuse", func(p *Profile) { p.CacheReuse = -0.1 }},
		{"negative ws", func(p *Profile) { p.WorkingSetBytes = -1 }},
		{"empty mix", func(p *Profile) { p.Mix = InstructionMix{} }},
		{"negative count", func(p *Profile) { p.Mix.FloatAdd = -1 }},
	}
	for _, c := range cases {
		p := good
		c.mut(&p)
		if err := p.Validate(); err == nil {
			t.Errorf("%s: expected validation error", c.name)
		}
	}
}

func TestProfileTotals(t *testing.T) {
	p := Profile{Mix: InstructionMix{FloatAdd: 2, GlobalAcc: 3}, WorkItems: 10, Launches: 4}
	if got := p.TotalFlops(); got != 20 {
		t.Errorf("total flops %g, want 20", got)
	}
	if got := p.RawGlobalBytes(); got != 120 {
		t.Errorf("raw bytes %g, want 120", got)
	}
	if got := p.TotalComputeCycles(); got != (2+3)*10 {
		t.Errorf("total cycles %g, want 50", got)
	}
}
