package kernels

import (
	"bytes"
	"strings"
	"testing"
)

func TestParseListingBasic(t *testing.T) {
	src := `
// a simple kernel
fadd 3
fmul       // default count 1
ld.global 2
sin
`
	mix, err := ParseListing(strings.NewReader(src))
	if err != nil {
		t.Fatal(err)
	}
	if mix.FloatAdd != 3 || mix.FloatMul != 1 || mix.GlobalAcc != 2 || mix.SpecialFn != 1 {
		t.Errorf("parsed mix %+v", mix)
	}
}

func TestParseListingLoops(t *testing.T) {
	src := `
loop 10
    fadd 2
    loop 5
        fmul
    end
    ld.global
end
iadd
`
	mix, err := ParseListing(strings.NewReader(src))
	if err != nil {
		t.Fatal(err)
	}
	if mix.FloatAdd != 20 {
		t.Errorf("loop fadd %g, want 20", mix.FloatAdd)
	}
	if mix.FloatMul != 50 {
		t.Errorf("nested fmul %g, want 50", mix.FloatMul)
	}
	if mix.GlobalAcc != 10 || mix.IntAdd != 1 {
		t.Errorf("mix %+v", mix)
	}
}

func TestParseListingFMA(t *testing.T) {
	mix, err := ParseListing(strings.NewReader("fma 4"))
	if err != nil {
		t.Fatal(err)
	}
	if mix.FloatAdd != 4 || mix.FloatMul != 4 {
		t.Errorf("fma should count both classes: %+v", mix)
	}
}

func TestParseListingErrors(t *testing.T) {
	cases := map[string]string{
		"unknown opcode":    "frobnicate 3",
		"unclosed loop":     "loop 4\nfadd",
		"end without loop":  "fadd\nend",
		"bad trip count":    "loop x\nfadd\nend",
		"zero trips":        "loop 0\nfadd\nend",
		"bad count":         "fadd nope",
		"negative count":    "fadd -2",
		"trailing tokens":   "fadd 2 3",
		"empty listing":     "// nothing here",
		"loop without body": "loop\nend",
	}
	for name, src := range cases {
		if _, err := ParseListing(strings.NewReader(src)); err == nil {
			t.Errorf("%s: expected parse error", name)
		}
	}
}

func TestListingRoundTrip(t *testing.T) {
	orig := InstructionMix{
		IntAdd: 5, IntMul: 2, IntDiv: 1, IntBitwise: 3,
		FloatAdd: 10, FloatMul: 12, FloatDiv: 2, SpecialFn: 4,
		GlobalAcc: 8, LocalAcc: 6,
	}
	var buf bytes.Buffer
	if err := WriteListing(&buf, orig); err != nil {
		t.Fatal(err)
	}
	got, err := ParseListing(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got != orig {
		t.Errorf("round trip: %+v vs %+v", got, orig)
	}
}

func TestListingMatchesStaticFeatures(t *testing.T) {
	// The analyzer output feeds StaticFeatures exactly like hand-built
	// mixes: a dock-like inner loop yields a compute-dominated vector.
	src := `
loop 256          // restarts
  loop 4          // iterations
    loop 19       // rotamers
      fmul 45
      fadd 33
      sin 2
      ld.global 4
      ld.shared 8
      iadd 10
    end
  end
end
`
	mix, err := ParseListing(strings.NewReader(src))
	if err != nil {
		t.Fatal(err)
	}
	f := mix.StaticFeatures()
	// f_float_mul dominates f_gl_access, as in the LiGen dock kernel.
	if f[5] <= f[8] {
		t.Errorf("float_mul fraction %g not above gl_access %g", f[5], f[8])
	}
	var sum float64
	for _, v := range f {
		sum += v
	}
	if sum < 0.999 || sum > 1.001 {
		t.Errorf("features sum %g", sum)
	}
}
