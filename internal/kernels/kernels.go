// Package kernels defines the kernel intermediate representation shared by
// the GPU simulator, the applications (LiGen, Cronos) and the energy models.
//
// A kernel is described by its per-work-item instruction histogram — the
// exact static code features used by the general-purpose energy model of
// Fan et al. (ICPP'19), reproduced in Table 1 of the paper — together with
// its launch geometry (number of work items, number of launches). From the
// histogram the simulator derives compute cycles and DRAM traffic, and the
// general-purpose model derives its input-independent feature vector.
package kernels

// InstructionMix counts dynamic instructions executed per work item, bucketed
// into the ten static feature classes of Table 1 of the paper.
type InstructionMix struct {
	IntAdd     float64 // integer additions and subtractions
	IntMul     float64 // integer multiplications
	IntDiv     float64 // integer divisions
	IntBitwise float64 // integer bitwise operations
	FloatAdd   float64 // floating point additions and subtractions
	FloatMul   float64 // floating point multiplications
	FloatDiv   float64 // floating point divisions
	SpecialFn  float64 // special functions (sin, cos, sqrt, exp, ...)
	GlobalAcc  float64 // global memory accesses (4-byte words)
	LocalAcc   float64 // local (shared) memory accesses
}

// FeatureNames lists the static feature names in the order produced by
// StaticFeatures. The names follow Table 1 of the paper.
var FeatureNames = []string{
	"f_int_add", "f_int_mul", "f_int_div", "f_int_bw",
	"f_float_add", "f_float_mul", "f_float_div", "f_sf",
	"f_gl_access", "f_loc_access",
}

// Total returns the total per-work-item instruction count.
func (m InstructionMix) Total() float64 {
	return m.IntAdd + m.IntMul + m.IntDiv + m.IntBitwise +
		m.FloatAdd + m.FloatMul + m.FloatDiv + m.SpecialFn +
		m.GlobalAcc + m.LocalAcc
}

// StaticFeatures returns the normalized instruction-class fractions — the
// general-purpose model's feature vector (Table 1). The vector sums to 1 for
// any non-empty mix; an empty mix yields the zero vector.
func (m InstructionMix) StaticFeatures() []float64 {
	t := m.Total()
	if t == 0 {
		return make([]float64, len(FeatureNames))
	}
	return []float64{
		m.IntAdd / t, m.IntMul / t, m.IntDiv / t, m.IntBitwise / t,
		m.FloatAdd / t, m.FloatMul / t, m.FloatDiv / t, m.SpecialFn / t,
		m.GlobalAcc / t, m.LocalAcc / t,
	}
}

// Scale returns a copy of m with every class multiplied by k. It is used by
// the applications to assemble per-work-item mixes from per-element costs.
func (m InstructionMix) Scale(k float64) InstructionMix {
	return InstructionMix{
		IntAdd: m.IntAdd * k, IntMul: m.IntMul * k, IntDiv: m.IntDiv * k,
		IntBitwise: m.IntBitwise * k,
		FloatAdd:   m.FloatAdd * k, FloatMul: m.FloatMul * k,
		FloatDiv: m.FloatDiv * k, SpecialFn: m.SpecialFn * k,
		GlobalAcc: m.GlobalAcc * k, LocalAcc: m.LocalAcc * k,
	}
}

// Add returns the element-wise sum of m and o.
func (m InstructionMix) Add(o InstructionMix) InstructionMix {
	return InstructionMix{
		IntAdd: m.IntAdd + o.IntAdd, IntMul: m.IntMul + o.IntMul,
		IntDiv: m.IntDiv + o.IntDiv, IntBitwise: m.IntBitwise + o.IntBitwise,
		FloatAdd: m.FloatAdd + o.FloatAdd, FloatMul: m.FloatMul + o.FloatMul,
		FloatDiv: m.FloatDiv + o.FloatDiv, SpecialFn: m.SpecialFn + o.SpecialFn,
		GlobalAcc: m.GlobalAcc + o.GlobalAcc, LocalAcc: m.LocalAcc + o.LocalAcc,
	}
}

// Per-class issue costs in SIMD-lane cycles. Simple ALU operations retire one
// per cycle per lane; divisions and special functions occupy the shared SFU
// pipes for many cycles, matching the throughput tables of recent NVIDIA and
// AMD ISAs.
const (
	cyclesIntAdd   = 1.0
	cyclesIntMul   = 1.0
	cyclesIntDiv   = 12.0
	cyclesIntBw    = 1.0
	cyclesFloatAdd = 1.0
	cyclesFloatMul = 1.0
	cyclesFloatDiv = 8.0
	cyclesSpecial  = 4.0
	cyclesLocalAcc = 2.0
	// Global accesses are accounted as DRAM traffic, not issue cycles; the
	// address generation cost is folded into cyclesGlobalIssue.
	cyclesGlobalIssue = 1.0
)

// ComputeCycles returns the SIMD-lane cycles a single work item spends in the
// execution pipelines. Together with the device's lane count and clock this
// yields the compute-roof time.
func (m InstructionMix) ComputeCycles() float64 {
	return m.IntAdd*cyclesIntAdd + m.IntMul*cyclesIntMul +
		m.IntDiv*cyclesIntDiv + m.IntBitwise*cyclesIntBw +
		m.FloatAdd*cyclesFloatAdd + m.FloatMul*cyclesFloatMul +
		m.FloatDiv*cyclesFloatDiv + m.SpecialFn*cyclesSpecial +
		m.LocalAcc*cyclesLocalAcc + m.GlobalAcc*cyclesGlobalIssue
}

// Flops returns the floating point operations per work item (divisions and
// special functions count once each, as profilers report them).
func (m InstructionMix) Flops() float64 {
	return m.FloatAdd + m.FloatMul + m.FloatDiv + m.SpecialFn
}

// GlobalBytes returns the raw (cache-unaware) DRAM bytes touched by one work
// item, assuming 4-byte words as in the paper's feature definition.
func (m InstructionMix) GlobalBytes() float64 {
	return m.GlobalAcc * 4
}

// Profile describes one GPU kernel invocation pattern: the per-work-item
// instruction mix plus launch geometry and locality hints. It is the unit of
// work submitted to a simulated device.
type Profile struct {
	// Name identifies the kernel in traces and reports.
	Name string
	// Mix is the per-work-item dynamic instruction histogram.
	Mix InstructionMix
	// WorkItems is the number of work items per launch.
	WorkItems float64
	// Launches is how many times the kernel is enqueued back to back.
	Launches float64
	// WorkingSetBytes is the resident data footprint of one launch. When it
	// exceeds the device's last-level cache, the effective DRAM traffic
	// rises toward the raw GlobalBytes (see gpusim's cache model).
	WorkingSetBytes float64
	// CacheReuse in [0,1) is the fraction of global accesses served by cache
	// when the working set fits. Stencils and docking kernels with high
	// neighborhood reuse set this close to 1.
	CacheReuse float64
}

// TotalComputeCycles returns the lane-cycles of the whole launch.
func (p Profile) TotalComputeCycles() float64 {
	return p.Mix.ComputeCycles() * p.WorkItems
}

// TotalFlops returns the floating point work of one launch.
func (p Profile) TotalFlops() float64 {
	return p.Mix.Flops() * p.WorkItems
}

// RawGlobalBytes returns the cache-unaware DRAM traffic of one launch.
func (p Profile) RawGlobalBytes() float64 {
	return p.Mix.GlobalBytes() * p.WorkItems
}

// Validate reports whether the profile is well formed (non-negative counts,
// at least one work item and one launch, reuse within [0,1)).
func (p Profile) Validate() error {
	switch {
	case p.WorkItems <= 0:
		return errProfile("WorkItems must be positive")
	case p.Launches <= 0:
		return errProfile("Launches must be positive")
	case p.CacheReuse < 0 || p.CacheReuse >= 1:
		return errProfile("CacheReuse must be in [0,1)")
	case p.WorkingSetBytes < 0:
		return errProfile("WorkingSetBytes must be non-negative")
	case p.Mix.Total() <= 0:
		return errProfile("instruction mix is empty")
	}
	if anyNegative(p.Mix) {
		return errProfile("instruction mix has negative counts")
	}
	return nil
}

func anyNegative(m InstructionMix) bool {
	return m.IntAdd < 0 || m.IntMul < 0 || m.IntDiv < 0 || m.IntBitwise < 0 ||
		m.FloatAdd < 0 || m.FloatMul < 0 || m.FloatDiv < 0 || m.SpecialFn < 0 ||
		m.GlobalAcc < 0 || m.LocalAcc < 0
}

type errProfile string

func (e errProfile) Error() string { return "kernels: invalid profile: " + string(e) }
