package ligen

import (
	"fmt"
	"runtime"
	"sort"
	"sync"

	"dsenergy/internal/xrand"
)

// ScreenResult is one row of a virtual-screening ranking.
type ScreenResult struct {
	LigandIndex int
	Name        string
	Score       float64
}

// Screen ranks a chemical library against the target: every ligand is docked
// and scored independently (the problem is embarrassingly parallel, as the
// paper notes), fanned out over a goroutine worker pool. Each ligand derives
// its own generator from seed and its index, so the ranking is deterministic
// for any worker count.
func Screen(lib *Library, target *Pocket, params Params, workers int, seed uint64) ([]ScreenResult, error) {
	if lib == nil || len(lib.Ligands) == 0 {
		return nil, fmt.Errorf("ligen: empty library")
	}
	if err := params.Validate(); err != nil {
		return nil, err
	}
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	n := len(lib.Ligands)
	results := make([]ScreenResult, n)
	errs := make([]error, workers)
	jobs := make(chan int)

	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := range jobs {
				l := lib.Ligands[i]
				rng := xrand.New(seed ^ (uint64(i)+1)*0x9e3779b97f4a7c15)
				r, err := Dock(l, target, params, rng)
				if err != nil {
					if errs[w] == nil {
						errs[w] = fmt.Errorf("ligand %d (%s): %w", i, l.Name, err)
					}
					continue
				}
				results[i] = ScreenResult{LigandIndex: i, Name: l.Name, Score: r.Score}
			}
		}(w)
	}
	for i := 0; i < n; i++ {
		jobs <- i
	}
	close(jobs)
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}

	// Rank the library by interaction strength, ties broken by index so the
	// output is total-ordered.
	sort.Slice(results, func(i, j int) bool {
		// Exact stored-value tie-break, not a numerical comparison.
		//dsalint:ignore floateq
		if results[i].Score != results[j].Score {
			return results[i].Score > results[j].Score
		}
		return results[i].LigandIndex < results[j].LigandIndex
	})
	return results, nil
}
