package ligen

import (
	"fmt"
	"math"

	"dsenergy/internal/xrand"
)

// Pocket is the docking target: a protein binding site represented — as in
// grid-based docking codes — by a precomputed affinity field sampled on a
// regular 3-D grid, plus an electrostatic potential field for the scoring
// phase. Positive affinity marks favourable placement; positions outside the
// pocket are strongly penalized.
type Pocket struct {
	N       int       // grid points per dimension
	Extent  float64   // half-width of the cubic domain, Å
	Center  Vec3      // pocket center in world coordinates
	Aff     []float64 // affinity field, length N³
	Elec    []float64 // electrostatic potential field, length N³
	spacing float64
}

// DefaultPocketN is the default grid resolution, sized so the pocket fields
// occupy about 2 MiB — comparable to a real receptor grid and small enough
// to be cache resident on the simulated devices.
const DefaultPocketN = 48

// GenPocket builds a deterministic synthetic pocket from rng: a handful of
// Gaussian attraction wells (hydrogen-bond acceptors, hydrophobic patches)
// inside a repulsive shell, plus a smooth electrostatic field.
func GenPocket(rng *xrand.Rand, n int, extent float64) (*Pocket, error) {
	if n < 4 {
		return nil, fmt.Errorf("ligen: pocket grid too small: %d", n)
	}
	if extent <= 0 {
		return nil, fmt.Errorf("ligen: pocket extent must be positive: %g", extent)
	}
	p := &Pocket{
		N: n, Extent: extent,
		Aff:     make([]float64, n*n*n),
		Elec:    make([]float64, n*n*n),
		spacing: 2 * extent / float64(n-1),
	}

	// Attraction wells.
	type well struct {
		c     Vec3
		depth float64
		width float64
	}
	wells := make([]well, 0, 6)
	for w := 0; w < 6; w++ {
		wells = append(wells, well{
			c: Vec3{
				(rng.Float64() - 0.5) * extent,
				(rng.Float64() - 0.5) * extent,
				(rng.Float64() - 0.5) * extent,
			},
			depth: 1 + 2*rng.Float64(),
			width: 2 + 2*rng.Float64(),
		})
	}

	for k := 0; k < n; k++ {
		for j := 0; j < n; j++ {
			for i := 0; i < n; i++ {
				pos := Vec3{
					-extent + float64(i)*p.spacing,
					-extent + float64(j)*p.spacing,
					-extent + float64(k)*p.spacing,
				}
				var aff, elec float64
				for _, w := range wells {
					d2 := pos.Sub(w.c).Dot(pos.Sub(w.c))
					aff += w.depth * math.Exp(-d2/(w.width*w.width))
					elec += w.depth * 0.3 * math.Exp(-d2/(2*w.width*w.width))
				}
				// Repulsive shell toward the pocket wall.
				r := pos.Norm() / extent
				if r > 0.8 {
					aff -= 10 * (r - 0.8) * (r - 0.8) * 25
				}
				idx := (k*n+j)*n + i
				p.Aff[idx] = aff
				p.Elec[idx] = elec
			}
		}
	}
	return p, nil
}

// Bytes returns the memory footprint of the pocket fields.
func (p *Pocket) Bytes() float64 { return float64(len(p.Aff)+len(p.Elec)) * 8 }

// sample trilinearly interpolates field at world position pos; positions
// outside the grid return a large penalty (ligand left the pocket).
func (p *Pocket) sample(field []float64, pos Vec3) float64 {
	local := pos.Sub(p.Center)
	fx := (local[0] + p.Extent) / p.spacing
	fy := (local[1] + p.Extent) / p.spacing
	fz := (local[2] + p.Extent) / p.spacing
	x0, y0, z0 := int(math.Floor(fx)), int(math.Floor(fy)), int(math.Floor(fz))
	if x0 < 0 || y0 < 0 || z0 < 0 || x0 >= p.N-1 || y0 >= p.N-1 || z0 >= p.N-1 {
		return -50
	}
	tx, ty, tz := fx-float64(x0), fy-float64(y0), fz-float64(z0)
	at := func(i, j, k int) float64 { return field[(k*p.N+j)*p.N+i] }
	c00 := at(x0, y0, z0)*(1-tx) + at(x0+1, y0, z0)*tx
	c10 := at(x0, y0+1, z0)*(1-tx) + at(x0+1, y0+1, z0)*tx
	c01 := at(x0, y0, z0+1)*(1-tx) + at(x0+1, y0, z0+1)*tx
	c11 := at(x0, y0+1, z0+1)*(1-tx) + at(x0+1, y0+1, z0+1)*tx
	c0 := c00*(1-ty) + c10*ty
	c1 := c01*(1-ty) + c11*ty
	return c0*(1-tz) + c1*tz
}

// Affinity returns the interpolated placement affinity at pos.
func (p *Pocket) Affinity(pos Vec3) float64 { return p.sample(p.Aff, pos) }

// Potential returns the interpolated electrostatic potential at pos.
func (p *Pocket) Potential(pos Vec3) float64 { return p.sample(p.Elec, pos) }
