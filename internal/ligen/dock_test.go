package ligen

import (
	"math"
	"testing"

	"dsenergy/internal/xrand"
)

func testPocket(t *testing.T) *Pocket {
	t.Helper()
	p, err := GenPocket(xrand.New(1234), 24, 12)
	if err != nil {
		t.Fatal(err)
	}
	return p
}

func TestGenPocketValidation(t *testing.T) {
	if _, err := GenPocket(xrand.New(1), 2, 12); err == nil {
		t.Error("expected error for tiny grid")
	}
	if _, err := GenPocket(xrand.New(1), 24, -1); err == nil {
		t.Error("expected error for negative extent")
	}
}

func TestPocketSampleInterpolation(t *testing.T) {
	p := testPocket(t)
	// At an exact grid point the trilinear sample equals the stored value.
	i, j, k := 10, 7, 5
	pos := Vec3{
		-p.Extent + float64(i)*p.spacing,
		-p.Extent + float64(j)*p.spacing,
		-p.Extent + float64(k)*p.spacing,
	}
	want := p.Aff[(k*p.N+j)*p.N+i]
	if got := p.Affinity(pos); !almostEq(got, want, 1e-9) {
		t.Errorf("grid-point sample %g, want %g", got, want)
	}
}

func TestPocketSampleOutside(t *testing.T) {
	p := testPocket(t)
	if got := p.Affinity(Vec3{1000, 0, 0}); got != -50 {
		t.Errorf("outside sample %g, want penalty -50", got)
	}
}

func TestDockProducesFiniteRankedScore(t *testing.T) {
	p := testPocket(t)
	l, _ := GenLigand(xrand.New(2), "t", 31, 4)
	r, err := Dock(l, p, TestParams(), xrand.New(3))
	if err != nil {
		t.Fatal(err)
	}
	if math.IsInf(r.Score, 0) || math.IsNaN(r.Score) {
		t.Fatalf("dock score not finite: %g", r.Score)
	}
	if len(r.BestPose.Coords) != l.NumAtoms() {
		t.Fatalf("best pose has %d atoms, ligand %d", len(r.BestPose.Coords), l.NumAtoms())
	}
	if r.PosesKept != TestParams().MaxNumPoses {
		t.Errorf("poses kept %d, want clipped to %d", r.PosesKept, TestParams().MaxNumPoses)
	}
}

func TestDockKeepsLigandNearPocket(t *testing.T) {
	p := testPocket(t)
	l, _ := GenLigand(xrand.New(4), "t", 20, 3)
	r, err := Dock(l, p, TestParams(), xrand.New(5))
	if err != nil {
		t.Fatal(err)
	}
	var c Vec3
	for _, pos := range r.BestPose.Coords {
		c = c.Add(pos)
	}
	c = c.Scale(1 / float64(len(r.BestPose.Coords)))
	if d := c.Sub(p.Center).Norm(); d > p.Extent {
		t.Errorf("docked centroid %.2f Å from pocket center, beyond extent %.2f", d, p.Extent)
	}
}

func TestDockDeterministic(t *testing.T) {
	p := testPocket(t)
	l, _ := GenLigand(xrand.New(6), "t", 31, 4)
	a, err := Dock(l, p, TestParams(), xrand.New(7))
	if err != nil {
		t.Fatal(err)
	}
	b, err := Dock(l, p, TestParams(), xrand.New(7))
	if err != nil {
		t.Fatal(err)
	}
	if a.Score != b.Score {
		t.Errorf("identically seeded docks differ: %g vs %g", a.Score, b.Score)
	}
}

func TestDockRejectsBadParams(t *testing.T) {
	p := testPocket(t)
	l, _ := GenLigand(xrand.New(8), "t", 10, 2)
	if _, err := Dock(l, p, Params{}, xrand.New(1)); err == nil {
		t.Error("expected error for zero params")
	}
}

func TestOptimizeNeverWorsensQuickScore(t *testing.T) {
	p := testPocket(t)
	l, _ := GenLigand(xrand.New(9), "t", 31, 4)
	rng := xrand.New(10)
	pose := align(initializePose(l, rng), p)
	for _, rot := range l.Rotamers {
		before := quickEvaluate(pose.Coords, rot.Moving, p)
		pose = optimize(pose, rot, p, 8)
		after := quickEvaluate(pose.Coords, rot.Moving, p)
		if after < before-1e-9 {
			t.Fatalf("optimize worsened the moving-set score: %g -> %g", before, after)
		}
	}
}

func TestOptimizePreservesRigidFragment(t *testing.T) {
	// Atoms upstream of the rotamer must not move.
	p := testPocket(t)
	l, _ := GenLigand(xrand.New(11), "t", 20, 4)
	pose := align(initializePose(l, xrand.New(12)), p)
	rot := l.Rotamers[1]
	before := clonePose(pose)
	pose = optimize(pose, rot, p, 8)
	for i := 0; i < rot.B; i++ {
		if pose.Coords[i] != before.Coords[i] {
			t.Fatalf("upstream atom %d moved during fragment optimization", i)
		}
	}
}

func TestOptimizePreservesBondGeometry(t *testing.T) {
	// Rotamer rotation is rigid for the moving set: pairwise distances
	// within the moving set are preserved.
	p := testPocket(t)
	l, _ := GenLigand(xrand.New(13), "t", 24, 3)
	pose := align(initializePose(l, xrand.New(14)), p)
	rot := l.Rotamers[0]
	before := clonePose(pose)
	pose = optimize(pose, rot, p, 16)
	m := rot.Moving
	for a := 0; a < len(m)-1; a++ {
		d0 := before.Coords[m[a]].Sub(before.Coords[m[a+1]]).Norm()
		d1 := pose.Coords[m[a]].Sub(pose.Coords[m[a+1]]).Norm()
		if !almostEq(d0, d1, 1e-9) {
			t.Fatalf("moving-set distance changed: %g -> %g", d0, d1)
		}
	}
}

func TestClashPenaltyDetectsOverlap(t *testing.T) {
	l, _ := GenLigand(xrand.New(15), "t", 5, 1)
	coords := make([]Vec3, 5)
	// All atoms stacked at the origin: massive clash.
	if pen := clashPenalty(coords, l); pen <= 0 {
		t.Errorf("stacked atoms should clash, penalty %g", pen)
	}
	// Spread far apart: no clash.
	for i := range coords {
		coords[i] = Vec3{float64(i) * 10, 0, 0}
	}
	if pen := clashPenalty(coords, l); pen != 0 {
		t.Errorf("spread atoms should not clash, penalty %g", pen)
	}
}

func TestScreenDeterministicAcrossWorkers(t *testing.T) {
	p := testPocket(t)
	lib, _ := GenLibrary(xrand.New(16), 8, 20, 3)
	r1, err := Screen(lib, p, TestParams(), 1, 77)
	if err != nil {
		t.Fatal(err)
	}
	r4, err := Screen(lib, p, TestParams(), 4, 77)
	if err != nil {
		t.Fatal(err)
	}
	if len(r1) != len(r4) {
		t.Fatalf("result lengths differ: %d vs %d", len(r1), len(r4))
	}
	for i := range r1 {
		if r1[i] != r4[i] {
			t.Fatalf("rank %d differs between 1 and 4 workers: %+v vs %+v", i, r1[i], r4[i])
		}
	}
}

func TestScreenRankingSorted(t *testing.T) {
	p := testPocket(t)
	lib, _ := GenLibrary(xrand.New(17), 6, 25, 4)
	res, err := Screen(lib, p, TestParams(), 2, 88)
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i < len(res); i++ {
		if res[i].Score > res[i-1].Score {
			t.Fatalf("ranking not descending at %d: %g > %g", i, res[i].Score, res[i-1].Score)
		}
	}
}

func TestScreenEmptyLibrary(t *testing.T) {
	p := testPocket(t)
	if _, err := Screen(&Library{}, p, TestParams(), 1, 1); err == nil {
		t.Error("expected error for empty library")
	}
}
