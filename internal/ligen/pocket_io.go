package ligen

import (
	"encoding/binary"
	"fmt"
	"io"
	"math"
)

// Pocket serialization: receptor grids are computed once per target protein
// and shared across screening campaigns (as docking pipelines ship AutoGrid
// maps). The format is a little-endian header followed by the affinity and
// electrostatic fields.

const (
	pocketMagic   = 0x504f434b45543031 // "POCKET01"
	pocketVersion = 1
)

type pocketHeader struct {
	Magic   uint64
	Version uint32
	N       uint32
	Extent  float64
	Center  [3]float64
}

// WritePocket serializes the pocket fields.
func WritePocket(w io.Writer, p *Pocket) error {
	h := pocketHeader{
		Magic: pocketMagic, Version: pocketVersion,
		N: uint32(p.N), Extent: p.Extent, Center: [3]float64(p.Center),
	}
	if err := binary.Write(w, binary.LittleEndian, &h); err != nil {
		return fmt.Errorf("ligen: writing pocket header: %w", err)
	}
	if err := binary.Write(w, binary.LittleEndian, p.Aff); err != nil {
		return fmt.Errorf("ligen: writing affinity field: %w", err)
	}
	if err := binary.Write(w, binary.LittleEndian, p.Elec); err != nil {
		return fmt.Errorf("ligen: writing electrostatic field: %w", err)
	}
	return nil
}

// ReadPocket reconstructs a pocket written by WritePocket.
func ReadPocket(r io.Reader) (*Pocket, error) {
	var h pocketHeader
	if err := binary.Read(r, binary.LittleEndian, &h); err != nil {
		return nil, fmt.Errorf("ligen: reading pocket header: %w", err)
	}
	if h.Magic != pocketMagic {
		return nil, fmt.Errorf("ligen: not a pocket file (bad magic %#x)", h.Magic)
	}
	if h.Version != pocketVersion {
		return nil, fmt.Errorf("ligen: unsupported pocket version %d", h.Version)
	}
	if h.N < 4 || h.N > 4096 || h.Extent <= 0 || math.IsNaN(h.Extent) {
		return nil, fmt.Errorf("ligen: implausible pocket geometry (n=%d extent=%g)", h.N, h.Extent)
	}
	n := int(h.N)
	p := &Pocket{
		N: n, Extent: h.Extent, Center: Vec3(h.Center),
		Aff:     make([]float64, n*n*n),
		Elec:    make([]float64, n*n*n),
		spacing: 2 * h.Extent / float64(n-1),
	}
	if err := binary.Read(r, binary.LittleEndian, p.Aff); err != nil {
		return nil, fmt.Errorf("ligen: reading affinity field: %w", err)
	}
	if err := binary.Read(r, binary.LittleEndian, p.Elec); err != nil {
		return nil, fmt.Errorf("ligen: reading electrostatic field: %w", err)
	}
	for _, v := range p.Aff {
		if math.IsNaN(v) || math.IsInf(v, 0) {
			return nil, fmt.Errorf("ligen: pocket affinity field contains non-finite values")
		}
	}
	return p, nil
}
