package ligen

import (
	"testing"

	"dsenergy/internal/gpusim"
	"dsenergy/internal/synergy"
)

func v100(t *testing.T) *gpusim.Device {
	t.Helper()
	return mustDevice(t, gpusim.V100Spec())
}

// mustDevice builds a device from a known-good spec, failing the test on error.
func mustDevice(t *testing.T, spec gpusim.Spec) *gpusim.Device {
	t.Helper()
	d, err := gpusim.New(spec, 1)
	if err != nil {
		t.Fatal(err)
	}
	return d
}

func TestInputValidation(t *testing.T) {
	for _, in := range []Input{
		{0, 31, 4}, {10, 1, 1}, {10, 31, 0}, {10, 4, 5},
	} {
		if err := in.Validate(); err == nil {
			t.Errorf("input %+v should be invalid", in)
		}
	}
	if err := (Input{Ligands: 2, Atoms: 89, Fragments: 8}).Validate(); err != nil {
		t.Errorf("paper input rejected: %v", err)
	}
}

func TestWorkloadProfilesValid(t *testing.T) {
	w, err := NewWorkload(Input{Ligands: 10000, Atoms: 89, Fragments: 20})
	if err != nil {
		t.Fatal(err)
	}
	ps := w.Profiles()
	if len(ps) != 3 {
		t.Fatalf("want dock/score/sortPoses kernels, got %d", len(ps))
	}
	for _, p := range ps {
		if err := p.Validate(); err != nil {
			t.Errorf("kernel %s: %v", p.Name, err)
		}
	}
	// 10000 ligands at a 2048 batch = 5 launches.
	if ps[0].Launches != 5 {
		t.Errorf("dock launches %g, want 5", ps[0].Launches)
	}
}

func TestWorkloadRigidLigandStillHasWork(t *testing.T) {
	w, err := NewWorkload(Input{Ligands: 16, Atoms: 31, Fragments: 1})
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range w.Profiles() {
		if err := p.Validate(); err != nil {
			t.Errorf("kernel %s invalid for rigid ligand: %v", p.Name, err)
		}
	}
}

func TestLargeInputComputeBoundSpeedup(t *testing.T) {
	// Figure 10b: at the large input (10000 x 89 x 20) raising the clock to
	// the maximum buys ~20% speedup at a substantial energy increase.
	dev := v100(t)
	w, _ := NewWorkload(Input{Ligands: 10000, Atoms: 89, Fragments: 20})
	def := dev.Spec().BaselineFreqMHz()
	tDef, eDef := w.AnalyticOn(dev, def)
	tMax, eMax := w.AnalyticOn(dev, dev.Spec().FMaxMHz())
	sp := tDef / tMax
	if sp < 1.10 || sp > 1.30 {
		t.Errorf("large-input speedup at fmax = %.3f, want ~1.2 (compute leaning)", sp)
	}
	if inc := eMax/eDef - 1; inc < 0.15 {
		t.Errorf("large-input up-clock energy increase %.1f%%, want >= 15%%", inc*100)
	}
}

func TestSmallInputNoDownclockSavings(t *testing.T) {
	// Figure 2a: with 2 ligands the device is underutilized; down-clocking
	// gives no energy savings while up-clocking still buys speedup.
	dev := v100(t)
	w, _ := NewWorkload(Input{Ligands: 2, Atoms: 89, Fragments: 8})
	def := dev.Spec().BaselineFreqMHz()
	tDef, eDef := w.AnalyticOn(dev, def)

	low := dev.Spec().NearestFreqMHz(def * 7 / 10)
	_, eLow := w.AnalyticOn(dev, low)
	if eLow < eDef*0.99 {
		t.Errorf("small input should not save energy by down-clocking: %.3g -> %.3g J", eDef, eLow)
	}
	tMax, _ := w.AnalyticOn(dev, dev.Spec().FMaxMHz())
	if sp := tDef / tMax; sp < 1.10 {
		t.Errorf("small input up-clock speedup %.3f, want >= 1.10 (latency bound)", sp)
	}
}

func TestLargeInputDownclockSavings(t *testing.T) {
	// Figure 2b: at the large input, down-clocking saves energy.
	dev := v100(t)
	w, _ := NewWorkload(Input{Ligands: 10000, Atoms: 89, Fragments: 20})
	def := dev.Spec().BaselineFreqMHz()
	_, eDef := w.AnalyticOn(dev, def)
	low := dev.Spec().NearestFreqMHz(def * 3 / 4)
	_, eLow := w.AnalyticOn(dev, low)
	if saving := 1 - eLow/eDef; saving < 0.03 {
		t.Errorf("large-input down-clock saving %.1f%%, want >= 3%%", saving*100)
	}
}

func TestEnergyAndTimeGrowWithInputDimensions(t *testing.T) {
	// Figures 6 and 8: both time and energy grow with fragments and atoms.
	dev := v100(t)
	def := dev.Spec().BaselineFreqMHz()
	base := Input{Ligands: 1024, Atoms: 31, Fragments: 4}
	wBase, _ := NewWorkload(base)
	t0, e0 := wBase.AnalyticOn(dev, def)

	grow := []Input{
		{Ligands: 1024, Atoms: 31, Fragments: 8},
		{Ligands: 1024, Atoms: 63, Fragments: 4},
		{Ligands: 4096, Atoms: 31, Fragments: 4},
	}
	for _, in := range grow {
		w, _ := NewWorkload(in)
		t1, e1 := w.AnalyticOn(dev, def)
		if t1 <= t0 {
			t.Errorf("input %v: time %.3g not above base %.3g", in, t1, t0)
		}
		if e1 <= e0 {
			t.Errorf("input %v: energy %.3g not above base %.3g", in, e1, e0)
		}
	}
}

func TestMI100SlowerAndHotterThanV100(t *testing.T) {
	// Figure 7 vs 6: both time and energy are higher on the MI100.
	dv := v100(t)
	da := mustDevice(t, gpusim.MI100Spec())
	w, _ := NewWorkload(Input{Ligands: 4096, Atoms: 89, Fragments: 20})
	tv, ev := w.AnalyticOn(dv, dv.Spec().BaselineFreqMHz())
	ta, ea := w.AnalyticOn(da, da.Spec().BaselineFreqMHz())
	if ta <= tv {
		t.Errorf("MI100 time %.3g should exceed V100 %.3g", ta, tv)
	}
	if ea <= ev {
		t.Errorf("MI100 energy %.3g should exceed V100 %.3g", ea, ev)
	}
}

func TestMI100AutoNearBestSpeedup(t *testing.T) {
	// Figure 10c/d: the AMD auto performance level is close to the best
	// achievable speedup; no frequency beats it by more than a few percent.
	da := mustDevice(t, gpusim.MI100Spec())
	w, _ := NewWorkload(Input{Ligands: 10000, Atoms: 89, Fragments: 20})
	tAuto, _ := w.AnalyticOn(da, da.Spec().BaselineFreqMHz())
	best := tAuto
	for _, f := range da.Spec().CoreFreqsMHz {
		ts, _ := w.AnalyticOn(da, f)
		if ts < best {
			best = ts
		}
	}
	if sp := tAuto / best; sp > 1.10 {
		t.Errorf("a fixed clock beats AMD auto by %.1f%%, want <= 10%%", (sp-1)*100)
	}
}

func TestWorkloadRunOnQueue(t *testing.T) {
	p, err := synergy.NewPlatform(3, gpusim.V100Spec())
	if err != nil {
		t.Fatal(err)
	}
	q := p.Queues()[0]
	w, _ := NewWorkload(Input{Ligands: 256, Atoms: 31, Fragments: 4})
	ts, ej, err := w.RunOn(q)
	if err != nil {
		t.Fatal(err)
	}
	if ts <= 0 || ej <= 0 {
		t.Fatalf("non-positive observation t=%g e=%g", ts, ej)
	}
	if got := len(q.Events()); got != 3 {
		t.Errorf("want 3 kernel events, got %d", got)
	}
}
