// Package ligen implements a molecular docking and scoring engine following
// the structure of LiGen, the virtual-screening component of the EXSCALATE
// drug-discovery platform the paper characterizes (Algorithm 2):
//
//	for i in 0..num_restart:
//	    pose = initialize_pose(ligand, i)
//	    pose = align(pose, target)
//	    for n in 0..num_iterations:
//	        for fragment in pose.fragments:
//	            pose = optimize(pose, fragment, target)
//	    pose = evaluate(pose, target)
//	poses = clip(sort(poses), max_num_poses)
//	for pose in poses: score = compute_score(pose, target)
//	return max(scores)
//
// Ligands are synthetic molecules generated from the three parameters the
// paper's domain-specific model uses as features — number of ligands, atoms
// per ligand and fragments per ligand — with rotatable bonds (rotamers)
// splitting each ligand into rigid fragments exactly as LiGen defines them.
// The package provides both a reference CPU implementation (used for
// correctness tests and the examples) and GPU kernel profiles that drive the
// simulated devices for the energy experiments.
package ligen

import (
	"fmt"
	"math"

	"dsenergy/internal/xrand"
)

// Vec3 is a 3-D coordinate in ångström.
type Vec3 [3]float64

// Add returns v + o.
func (v Vec3) Add(o Vec3) Vec3 { return Vec3{v[0] + o[0], v[1] + o[1], v[2] + o[2]} }

// Sub returns v - o.
func (v Vec3) Sub(o Vec3) Vec3 { return Vec3{v[0] - o[0], v[1] - o[1], v[2] - o[2]} }

// Scale returns k·v.
func (v Vec3) Scale(k float64) Vec3 { return Vec3{k * v[0], k * v[1], k * v[2]} }

// Dot returns the inner product.
func (v Vec3) Dot(o Vec3) float64 { return v[0]*o[0] + v[1]*o[1] + v[2]*o[2] }

// Cross returns the vector product.
func (v Vec3) Cross(o Vec3) Vec3 {
	return Vec3{
		v[1]*o[2] - v[2]*o[1],
		v[2]*o[0] - v[0]*o[2],
		v[0]*o[1] - v[1]*o[0],
	}
}

// Norm returns the Euclidean length.
func (v Vec3) Norm() float64 { return math.Sqrt(v.Dot(v)) }

// Normalize returns v/|v| (the zero vector is returned unchanged).
func (v Vec3) Normalize() Vec3 {
	n := v.Norm()
	if n == 0 {
		return v
	}
	return v.Scale(1 / n)
}

// Atom is one ligand atom: its position in the ligand frame plus the charge
// and van-der-Waals radius entering the scoring function.
type Atom struct {
	Pos    Vec3
	Charge float64
	Radius float64
}

// Rotamer is a rotatable bond: rotating the Moving atom set around the
// A→B axis changes the ligand's geometry without altering its chemistry —
// LiGen's definition of a fragment split.
type Rotamer struct {
	A, B   int   // atom indices defining the rotation axis
	Moving []int // indices of atoms displaced by the rotation
}

// Ligand is a small molecule: atoms, the bond chain, and the rotamers that
// partition the atoms into rigid fragments.
type Ligand struct {
	Name      string
	Atoms     []Atom
	Bonds     [][2]int
	Rotamers  []Rotamer
	Fragments [][]int // atom indices per rigid fragment
}

// NumAtoms returns the atom count (the paper's f_atoms feature).
func (l *Ligand) NumAtoms() int { return len(l.Atoms) }

// NumFragments returns the rigid fragment count (the paper's f_fragments
// feature; one more than the rotamer count).
func (l *Ligand) NumFragments() int { return len(l.Fragments) }

// Centroid returns the mean atom position.
func (l *Ligand) Centroid() Vec3 {
	var c Vec3
	for _, a := range l.Atoms {
		c = c.Add(a.Pos)
	}
	return c.Scale(1 / float64(len(l.Atoms)))
}

const bondLength = 1.5 // ångström, a typical C-C bond

// GenLigand synthesizes a ligand with the requested number of atoms and
// fragments: a self-avoiding heavy-atom chain with fragment boundaries at
// evenly spaced rotatable bonds. Atoms carry alternating partial charges and
// carbon-like radii. Generation is deterministic in rng.
func GenLigand(rng *xrand.Rand, name string, atoms, fragments int) (*Ligand, error) {
	if atoms < 2 {
		return nil, fmt.Errorf("ligen: ligand needs at least 2 atoms, got %d", atoms)
	}
	if fragments < 1 || fragments > atoms {
		return nil, fmt.Errorf("ligen: fragments must be in [1,%d], got %d", atoms, fragments)
	}
	l := &Ligand{Name: name, Atoms: make([]Atom, atoms)}

	// Grow a chain with random but forward-biased bond directions so the
	// molecule is extended rather than collapsed.
	dir := Vec3{1, 0, 0}
	pos := Vec3{}
	for i := 0; i < atoms; i++ {
		l.Atoms[i] = Atom{
			Pos:    pos,
			Charge: 0.2 * math.Pow(-1, float64(i)) * (0.5 + rng.Float64()),
			Radius: 1.5 + 0.2*rng.Float64(),
		}
		jitter := Vec3{rng.Float64() - 0.5, rng.Float64() - 0.5, rng.Float64() - 0.5}
		dir = dir.Add(jitter.Scale(0.9)).Normalize()
		pos = pos.Add(dir.Scale(bondLength))
		if i > 0 {
			l.Bonds = append(l.Bonds, [2]int{i - 1, i})
		}
	}

	// Fragment boundaries: fragments-1 rotatable bonds at (approximately)
	// even chain positions; every atom downstream of the bond moves.
	bounds := make([]int, 0, fragments+1)
	for f := 0; f <= fragments; f++ {
		bounds = append(bounds, f*atoms/fragments)
	}
	for f := 0; f < fragments; f++ {
		lo, hi := bounds[f], bounds[f+1]
		if hi <= lo { // degenerate split when fragments ≈ atoms
			hi = lo + 1
		}
		frag := make([]int, 0, hi-lo)
		for i := lo; i < hi && i < atoms; i++ {
			frag = append(frag, i)
		}
		if len(frag) > 0 {
			l.Fragments = append(l.Fragments, frag)
		}
	}
	for f := 1; f < len(l.Fragments); f++ {
		pivot := l.Fragments[f][0]
		if pivot == 0 {
			continue
		}
		moving := make([]int, 0, atoms-pivot)
		for i := pivot; i < atoms; i++ {
			moving = append(moving, i)
		}
		l.Rotamers = append(l.Rotamers, Rotamer{A: pivot - 1, B: pivot, Moving: moving})
	}
	return l, nil
}

// GenLigandBranched synthesizes a ligand with side chains: a backbone chain
// carrying the rotatable bonds plus single-atom branches attached along it
// (branchFrac of the atoms become branches). Branch atoms belong to their
// backbone atom's fragment and move with it under rotamer rotations, so the
// rigid-fragment invariants hold exactly as for chain ligands.
func GenLigandBranched(rng *xrand.Rand, name string, atoms, fragments int, branchFrac float64) (*Ligand, error) {
	if branchFrac < 0 || branchFrac >= 1 {
		return nil, fmt.Errorf("ligen: branchFrac must be in [0,1), got %g", branchFrac)
	}
	branches := int(branchFrac * float64(atoms))
	backbone := atoms - branches
	if backbone < 2 || fragments > backbone {
		return nil, fmt.Errorf("ligen: %d atoms with branchFrac %g leaves a %d-atom backbone (need >= 2 and >= fragments=%d)",
			atoms, branchFrac, backbone, fragments)
	}
	// Generate the backbone with the chain generator, then graft branches.
	l, err := GenLigand(rng, name, backbone, fragments)
	if err != nil {
		return nil, err
	}
	// fragOf maps backbone atom -> fragment index.
	fragOf := make([]int, backbone)
	for fi, frag := range l.Fragments {
		for _, a := range frag {
			fragOf[a] = fi
		}
	}
	for b := 0; b < branches; b++ {
		host := 1 + (b*(backbone-2))/maxI(branches, 1) // spread along the chain
		dir := Vec3{rng.Float64() - 0.5, rng.Float64() - 0.5, rng.Float64() + 0.5}.Normalize()
		idx := len(l.Atoms)
		l.Atoms = append(l.Atoms, Atom{
			Pos:    l.Atoms[host].Pos.Add(dir.Scale(bondLength)),
			Charge: 0.15 * math.Pow(-1, float64(b)) * (0.5 + rng.Float64()),
			Radius: 1.4 + 0.2*rng.Float64(),
		})
		l.Bonds = append(l.Bonds, [2]int{host, idx})
		fi := fragOf[host]
		l.Fragments[fi] = append(l.Fragments[fi], idx)
		// The branch moves with every rotamer that moves its host.
		for ri := range l.Rotamers {
			if host >= l.Rotamers[ri].B {
				l.Rotamers[ri].Moving = append(l.Rotamers[ri].Moving, idx)
			}
		}
	}
	return l, nil
}

func maxI(a, b int) int {
	if a > b {
		return a
	}
	return b
}

// Library is a chemical library: the set of ligands of one virtual-screening
// campaign.
type Library struct {
	Ligands []*Ligand
}

// GenLibrary synthesizes n ligands with the given atoms/fragments structure.
// Each ligand draws from an independent split of rng, so the library content
// does not depend on generation order or concurrency.
func GenLibrary(rng *xrand.Rand, n, atoms, fragments int) (*Library, error) {
	if n < 1 {
		return nil, fmt.Errorf("ligen: library needs at least 1 ligand, got %d", n)
	}
	lib := &Library{Ligands: make([]*Ligand, n)}
	for i := 0; i < n; i++ {
		lr := rng.Split()
		l, err := GenLigand(lr, fmt.Sprintf("lig-%06d", i), atoms, fragments)
		if err != nil {
			return nil, err
		}
		lib.Ligands[i] = l
	}
	return lib, nil
}

// rotatePoint rotates p around the axis through a with unit direction u by
// angle theta (Rodrigues' formula) — the geometric core of LiGen's fragment
// optimization.
func rotatePoint(p, a, u Vec3, theta float64) Vec3 {
	v := p.Sub(a)
	cosT, sinT := math.Cos(theta), math.Sin(theta)
	term1 := v.Scale(cosT)
	term2 := u.Cross(v).Scale(sinT)
	term3 := u.Scale(u.Dot(v) * (1 - cosT))
	return a.Add(term1).Add(term2).Add(term3)
}
