package ligen

import (
	"fmt"
	"math"
	"sort"

	"dsenergy/internal/xrand"
)

// Params are LiGen's docking parameters (the Data row of Algorithm 2). The
// defaults are sized like a production virtual-screening campaign: many
// restarts per ligand so the pose search dominates the runtime, as the
// paper's complexity analysis (cost ∝ restarts · iterations · rotamers ·
// atoms) requires.
type Params struct {
	NumRestart    int // independent pose restarts per ligand
	NumIterations int // optimization sweeps per restart
	NumAngles     int // rotamer angles probed per optimize call
	MaxNumPoses   int // poses kept for the scoring phase
}

// DefaultParams returns campaign-scale parameters.
func DefaultParams() Params {
	return Params{NumRestart: 256, NumIterations: 4, NumAngles: 8, MaxNumPoses: 8}
}

// TestParams returns reduced parameters for fast CPU-reference runs in tests
// and examples.
func TestParams() Params {
	return Params{NumRestart: 4, NumIterations: 2, NumAngles: 4, MaxNumPoses: 2}
}

// Validate reports whether the parameters are usable.
func (p Params) Validate() error {
	if p.NumRestart < 1 || p.NumIterations < 1 || p.NumAngles < 1 || p.MaxNumPoses < 1 {
		return fmt.Errorf("ligen: all docking parameters must be >= 1: %+v", p)
	}
	return nil
}

// Pose is one candidate placement of a ligand inside the pocket.
type Pose struct {
	Coords []Vec3  // world-space atom positions
	Score  float64 // quick evaluation score (dock phase)
}

// clonePose deep-copies a pose's coordinates.
func clonePose(p Pose) Pose {
	c := make([]Vec3, len(p.Coords))
	copy(c, p.Coords)
	return Pose{Coords: c, Score: p.Score}
}

// initializePose builds restart i's starting pose: the ligand frame rotated
// by deterministic pseudo-random Euler angles and jittered around the pocket
// center (Algorithm 2 line 3).
func initializePose(l *Ligand, rng *xrand.Rand) Pose {
	ax, ay, az := 2*math.Pi*rng.Float64(), 2*math.Pi*rng.Float64(), 2*math.Pi*rng.Float64()
	sinA, cosA := math.Sin(ax), math.Cos(ax)
	sinB, cosB := math.Sin(ay), math.Cos(ay)
	sinC, cosC := math.Sin(az), math.Cos(az)
	jitter := Vec3{rng.Float64() - 0.5, rng.Float64() - 0.5, rng.Float64() - 0.5}.Scale(2)

	coords := make([]Vec3, len(l.Atoms))
	for i, a := range l.Atoms {
		p := a.Pos
		// Z-Y-X Euler rotation.
		p = Vec3{p[0]*cosC - p[1]*sinC, p[0]*sinC + p[1]*cosC, p[2]}
		p = Vec3{p[0]*cosB + p[2]*sinB, p[1], -p[0]*sinB + p[2]*cosB}
		p = Vec3{p[0], p[1]*cosA - p[2]*sinA, p[1]*sinA + p[2]*cosA}
		coords[i] = p.Add(jitter)
	}
	return Pose{Coords: coords}
}

// align translates the pose so its centroid coincides with the pocket center
// (Algorithm 2 line 4).
func align(pose Pose, target *Pocket) Pose {
	var c Vec3
	for _, p := range pose.Coords {
		c = c.Add(p)
	}
	c = c.Scale(1 / float64(len(pose.Coords)))
	shift := target.Center.Sub(c)
	for i := range pose.Coords {
		pose.Coords[i] = pose.Coords[i].Add(shift)
	}
	return pose
}

// quickEvaluate scores a subset of atoms against the affinity field — the
// inner-loop objective of the fragment optimization.
func quickEvaluate(coords []Vec3, atoms []int, target *Pocket) float64 {
	var s float64
	for _, i := range atoms {
		s += target.Affinity(coords[i])
	}
	return s
}

// optimize probes NumAngles rotations of the rotamer owning the fragment and
// keeps the best-scoring geometry (Algorithm 2 line 7).
func optimize(pose Pose, rot Rotamer, target *Pocket, nAngles int) Pose {
	axis := pose.Coords[rot.B].Sub(pose.Coords[rot.A]).Normalize()
	anchor := pose.Coords[rot.A]
	bestScore := quickEvaluate(pose.Coords, rot.Moving, target)
	bestTheta := 0.0
	scratch := make([]Vec3, len(rot.Moving))
	for a := 1; a < nAngles; a++ {
		theta := 2 * math.Pi * float64(a) / float64(nAngles)
		for m, idx := range rot.Moving {
			scratch[m] = rotatePoint(pose.Coords[idx], anchor, axis, theta)
		}
		var s float64
		for m := range rot.Moving {
			s += target.Affinity(scratch[m])
		}
		if s > bestScore {
			bestScore = s
			bestTheta = theta
		}
	}
	if bestTheta != 0 {
		for _, idx := range rot.Moving {
			pose.Coords[idx] = rotatePoint(pose.Coords[idx], anchor, axis, bestTheta)
		}
	}
	return pose
}

// evaluate computes the dock-phase score of a full pose: pocket affinity of
// every atom minus an intramolecular clash penalty (Algorithm 2 line 10).
func evaluate(pose Pose, l *Ligand, target *Pocket) Pose {
	s := quickEvaluate(pose.Coords, allAtomIndices(l), target)
	s -= clashPenalty(pose.Coords, l)
	pose.Score = s
	return pose
}

// clashPenalty penalizes non-bonded atom pairs closer than the sum of their
// radii. Bonded neighbours (chain distance 1) are exempt.
func clashPenalty(coords []Vec3, l *Ligand) float64 {
	var pen float64
	for i := 0; i < len(coords); i++ {
		for j := i + 2; j < len(coords); j++ {
			d := coords[i].Sub(coords[j]).Norm()
			min := 0.7 * (l.Atoms[i].Radius + l.Atoms[j].Radius)
			if d < min {
				pen += (min - d) * (min - d) * 10
			}
		}
	}
	return pen
}

// computeScore is the refined scoring-phase function (Algorithm 2 line 15):
// affinity plus electrostatic interaction and a soft van-der-Waals term.
func computeScore(pose Pose, l *Ligand, target *Pocket) float64 {
	var s float64
	for i, p := range pose.Coords {
		aff := target.Affinity(p)
		elec := l.Atoms[i].Charge * target.Potential(p)
		vdw := math.Exp(-p.Sub(target.Center).Norm() / (4 * l.Atoms[i].Radius))
		s += aff + 2*elec + 0.5*vdw
	}
	return s - clashPenalty(pose.Coords, l)
}

func allAtomIndices(l *Ligand) []int {
	idx := make([]int, len(l.Atoms))
	for i := range idx {
		idx[i] = i
	}
	return idx
}

// DockResult is the outcome of docking one ligand.
type DockResult struct {
	Score     float64 // best scoring-phase score (the ranking key)
	BestPose  Pose
	PosesKept int
}

// Dock runs Algorithm 2 for one ligand against the target. rng drives the
// pose restarts deterministically; pass an independent split per ligand.
func Dock(l *Ligand, target *Pocket, params Params, rng *xrand.Rand) (DockResult, error) {
	if err := params.Validate(); err != nil {
		return DockResult{}, err
	}
	if len(l.Atoms) == 0 {
		return DockResult{}, fmt.Errorf("ligen: ligand %s has no atoms", l.Name)
	}

	poses := make([]Pose, 0, params.NumRestart)
	for r := 0; r < params.NumRestart; r++ {
		pose := initializePose(l, rng)
		pose = align(pose, target)
		for n := 0; n < params.NumIterations; n++ {
			for _, rot := range l.Rotamers {
				pose = optimize(pose, rot, target, params.NumAngles)
			}
		}
		pose = evaluate(pose, l, target)
		poses = append(poses, pose)
	}

	// poses = clip(sort(poses), max_num_poses)
	sort.Slice(poses, func(i, j int) bool { return poses[i].Score > poses[j].Score })
	if len(poses) > params.MaxNumPoses {
		poses = poses[:params.MaxNumPoses]
	}

	best := DockResult{Score: math.Inf(-1), PosesKept: len(poses)}
	for _, pose := range poses {
		if s := computeScore(pose, l, target); s > best.Score {
			best.Score = s
			best.BestPose = clonePose(pose)
		}
	}
	return best, nil
}
