package ligen

import (
	"fmt"
	"math"

	"dsenergy/internal/gpusim"
	"dsenergy/internal/kernels"
	"dsenergy/internal/synergy"
)

// Input identifies one virtual-screening workload by the three parameters
// the paper's domain-specific LiGen model uses as features (Table 2):
// number of ligands, atoms per ligand, fragments per ligand.
type Input struct {
	Ligands   int
	Atoms     int
	Fragments int
}

// String renders the input as the paper labels it (atoms x fragments x ligands).
func (in Input) String() string {
	return fmt.Sprintf("%dx%dx%d", in.Atoms, in.Fragments, in.Ligands)
}

// Validate reports whether the input is usable.
func (in Input) Validate() error {
	if in.Ligands < 1 || in.Atoms < 2 || in.Fragments < 1 || in.Fragments > in.Atoms {
		return fmt.Errorf("ligen: invalid input %+v", in)
	}
	return nil
}

// Per-atom-evaluation instruction cost of the dock inner loop: one Rodrigues
// rotation plus one trilinear affinity sample and the clash check, as
// implemented by optimize in dock.go. GlobalAcc counts amortized post-L1
// traffic (the pocket grid and coordinate streams); the remaining locality
// is expressed through dockCacheReuse.
var dockEvalMix = kernels.InstructionMix{
	IntAdd: 10, IntMul: 6, IntBitwise: 2,
	FloatAdd: 33, FloatMul: 45, FloatDiv: 0.5, SpecialFn: 2,
	GlobalAcc: 4.5, LocalAcc: 8,
}

// dockSetupMix is the per-restart, per-atom cost of initialize_pose, align
// and evaluate.
var dockSetupMix = kernels.InstructionMix{
	IntAdd: 6, IntMul: 2,
	FloatAdd: 30, FloatMul: 40, FloatDiv: 1, SpecialFn: 4,
	GlobalAcc: 6, LocalAcc: 4,
}

// scoreAtomMix is the per-pose, per-atom cost of compute_score: affinity,
// electrostatics and the soft van-der-Waals term.
var scoreAtomMix = kernels.InstructionMix{
	IntAdd: 12, IntMul: 8,
	FloatAdd: 40, FloatMul: 60, FloatDiv: 4, SpecialFn: 3,
	GlobalAcc: 6, LocalAcc: 4,
}

const (
	// dockCacheReuse is the post-L1 hit fraction of the dock kernel while
	// its coordinate working set fits in the LLC.
	dockCacheReuse  = 0.93
	scoreCacheReuse = 0.80
	sortCacheReuse  = 0.50
	// ligandBatch is how many ligands LiGen packs into one kernel launch.
	ligandBatch = 2048
	// bytesPerAtomResident is the per-atom coordinate footprint kept
	// resident during docking (current + best pose, double precision).
	bytesPerAtomResident = 48
)

// Workload is a virtual-screening campaign as a GPU workload. It implements
// synergy.Workload.
type Workload struct {
	Input  Input
	Params Params
	// PocketBytes is the receptor grid footprint; zero selects the default
	// pocket size.
	PocketBytes float64
	// BatchOverride replaces the default per-launch ligand batch when
	// positive (used by the batching ablation).
	BatchOverride int
}

// NewWorkload validates and builds a workload with campaign-scale parameters.
func NewWorkload(in Input) (Workload, error) {
	if err := in.Validate(); err != nil {
		return Workload{}, err
	}
	n := DefaultPocketN
	return Workload{
		Input:       in,
		Params:      DefaultParams(),
		PocketBytes: float64(2 * n * n * n * 8),
	}, nil
}

// Name implements synergy.Workload.
func (w Workload) Name() string { return "ligen-" + w.Input.String() }

// evalsPerAtomThread returns the dock-loop atom evaluations executed by one
// atom thread: restarts × iterations × rotamers × probed angles, halved
// because on average half the atoms move per rotamer (the fragment split).
func (w Workload) evalsPerAtomThread() float64 {
	p := w.Params
	rotamers := float64(w.Input.Fragments - 1)
	if rotamers < 1 {
		rotamers = 1 // rigid ligands still run one alignment probe
	}
	return float64(p.NumRestart) * float64(p.NumIterations) * rotamers * float64(p.NumAngles) * 0.5
}

// Profiles returns the GPU kernels of the campaign: dock (pose search),
// score (refined scoring of the clipped pose set) and sortPoses (ranking).
func (w Workload) Profiles() []kernels.Profile {
	in, p := w.Input, w.Params
	lig := float64(in.Ligands)
	atoms := float64(in.Atoms)
	batchSize := float64(ligandBatch)
	if w.BatchOverride > 0 {
		batchSize = float64(w.BatchOverride)
	}
	batch := math.Min(lig, batchSize)
	launches := math.Ceil(lig / batchSize)

	dockMix := dockEvalMix.Scale(w.evalsPerAtomThread()).
		Add(dockSetupMix.Scale(float64(p.NumRestart) * 2))
	scoreMix := scoreAtomMix.Scale(float64(p.MaxNumPoses))
	sortMix := kernels.InstructionMix{
		IntAdd:     4 * float64(p.NumRestart) * math.Log2(float64(p.NumRestart)+1),
		IntBitwise: float64(p.NumRestart),
		GlobalAcc:  2 * float64(p.NumRestart),
	}

	coordWS := batch * atoms * bytesPerAtomResident
	return []kernels.Profile{
		{
			Name: "dock", Mix: dockMix,
			WorkItems: batch * atoms, Launches: launches,
			WorkingSetBytes: coordWS + w.PocketBytes,
			CacheReuse:      dockCacheReuse,
		},
		{
			Name: "score", Mix: scoreMix,
			WorkItems: batch * atoms, Launches: launches,
			WorkingSetBytes: batch*float64(p.MaxNumPoses)*atoms*24 + w.PocketBytes,
			CacheReuse:      scoreCacheReuse,
		},
		{
			Name: "sortPoses", Mix: sortMix,
			WorkItems: batch, Launches: launches,
			WorkingSetBytes: batch * float64(p.NumRestart) * 8,
			CacheReuse:      sortCacheReuse,
		},
	}
}

// RunOn implements synergy.Workload.
func (w Workload) RunOn(q *synergy.Queue) (timeS, energyJ float64, err error) {
	for _, p := range w.Profiles() {
		r, err := q.Submit(p)
		if err != nil {
			return 0, 0, err
		}
		timeS += r.TimeS
		energyJ += r.EnergyJ
	}
	return timeS, energyJ, nil
}

// AnalyticOn returns the noiseless model evaluation at the given frequency.
func (w Workload) AnalyticOn(dev *gpusim.Device, mhz int) (timeS, energyJ float64) {
	for _, p := range w.Profiles() {
		r := dev.Analytic(p, mhz)
		timeS += r.TimeS
		energyJ += r.EnergyJ
	}
	return timeS, energyJ
}

// AnalyticCurveOn evaluates the noiseless model at every frequency in freqs
// in one batch, amortizing one compiled-profile lookup per kernel over the
// whole list. timesS[i] and energiesJ[i] equal AnalyticOn(dev, freqs[i]) bit
// for bit: each frequency accumulates kernels in Profiles() order, exactly
// like the single-frequency path.
func (w Workload) AnalyticCurveOn(dev *gpusim.Device, freqs []int) (timesS, energiesJ []float64) {
	timesS = make([]float64, len(freqs))
	energiesJ = make([]float64, len(freqs))
	for _, p := range w.Profiles() {
		for i, b := range dev.AnalyzeCurve(p, freqs) {
			timesS[i] += b.TimeS
			energiesJ[i] += b.EnergyJ
		}
	}
	return timesS, energiesJ
}
