package ligen

import (
	"testing"

	"dsenergy/internal/xrand"
)

func BenchmarkDockSingleLigand(b *testing.B) {
	pocket, err := GenPocket(xrand.New(1), 24, 12)
	if err != nil {
		b.Fatal(err)
	}
	lig, err := GenLigand(xrand.New(2), "bench", 31, 4)
	if err != nil {
		b.Fatal(err)
	}
	params := TestParams()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Dock(lig, pocket, params, xrand.New(uint64(i))); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkScreenParallel(b *testing.B) {
	pocket, err := GenPocket(xrand.New(1), 24, 12)
	if err != nil {
		b.Fatal(err)
	}
	lib, err := GenLibrary(xrand.New(3), 16, 25, 4)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Screen(lib, pocket, TestParams(), 0, uint64(i)); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkWorkloadProfiles(b *testing.B) {
	w, err := NewWorkload(Input{Ligands: 10000, Atoms: 89, Fragments: 20})
	if err != nil {
		b.Fatal(err)
	}
	for i := 0; i < b.N; i++ {
		_ = w.Profiles()
	}
}
