package ligen

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"
)

// Serialization of ligands in a compact line-oriented format inspired by the
// SDF/MOL conventions drug-discovery pipelines exchange: a header with the
// counts, one line per atom, one line per bond, and one line per rotamer.
// The format is self-describing enough to round-trip every field the docking
// engine uses.

// WriteLigand serializes l to w.
func WriteLigand(w io.Writer, l *Ligand) error {
	bw := bufio.NewWriter(w)
	fmt.Fprintf(bw, "LIGAND %s\n", l.Name)
	fmt.Fprintf(bw, "COUNTS %d %d %d %d\n",
		len(l.Atoms), len(l.Bonds), len(l.Rotamers), len(l.Fragments))
	for _, a := range l.Atoms {
		fmt.Fprintf(bw, "ATOM %.17g %.17g %.17g %.17g %.17g\n",
			a.Pos[0], a.Pos[1], a.Pos[2], a.Charge, a.Radius)
	}
	for _, b := range l.Bonds {
		fmt.Fprintf(bw, "BOND %d %d\n", b[0], b[1])
	}
	for _, r := range l.Rotamers {
		fmt.Fprintf(bw, "ROT %d %d %s\n", r.A, r.B, joinInts(r.Moving))
	}
	for _, f := range l.Fragments {
		fmt.Fprintf(bw, "FRAG %s\n", joinInts(f))
	}
	return bw.Flush()
}

// ReadLigand parses a ligand serialized by WriteLigand.
func ReadLigand(r io.Reader) (*Ligand, error) {
	sc := bufio.NewScanner(r)
	l := &Ligand{}
	var nAtoms, nBonds, nRots, nFrags int
	line := 0
	for sc.Scan() {
		line++
		text := strings.TrimSpace(sc.Text())
		if text == "" {
			continue
		}
		fields := strings.Fields(text)
		switch fields[0] {
		case "LIGAND":
			if len(fields) >= 2 {
				l.Name = fields[1]
			}
		case "COUNTS":
			if len(fields) != 5 {
				return nil, fmt.Errorf("ligen: line %d: malformed COUNTS", line)
			}
			var err error
			if nAtoms, err = strconv.Atoi(fields[1]); err != nil {
				return nil, fmt.Errorf("ligen: line %d: %w", line, err)
			}
			if nBonds, err = strconv.Atoi(fields[2]); err != nil {
				return nil, fmt.Errorf("ligen: line %d: %w", line, err)
			}
			if nRots, err = strconv.Atoi(fields[3]); err != nil {
				return nil, fmt.Errorf("ligen: line %d: %w", line, err)
			}
			if nFrags, err = strconv.Atoi(fields[4]); err != nil {
				return nil, fmt.Errorf("ligen: line %d: %w", line, err)
			}
		case "ATOM":
			if len(fields) != 6 {
				return nil, fmt.Errorf("ligen: line %d: malformed ATOM", line)
			}
			vals, err := parseFloats(fields[1:])
			if err != nil {
				return nil, fmt.Errorf("ligen: line %d: %w", line, err)
			}
			l.Atoms = append(l.Atoms, Atom{
				Pos:    Vec3{vals[0], vals[1], vals[2]},
				Charge: vals[3],
				Radius: vals[4],
			})
		case "BOND":
			if len(fields) != 3 {
				return nil, fmt.Errorf("ligen: line %d: malformed BOND", line)
			}
			a, err1 := strconv.Atoi(fields[1])
			b, err2 := strconv.Atoi(fields[2])
			if err1 != nil || err2 != nil {
				return nil, fmt.Errorf("ligen: line %d: bad bond indices", line)
			}
			l.Bonds = append(l.Bonds, [2]int{a, b})
		case "ROT":
			if len(fields) < 4 {
				return nil, fmt.Errorf("ligen: line %d: malformed ROT", line)
			}
			a, err1 := strconv.Atoi(fields[1])
			b, err2 := strconv.Atoi(fields[2])
			moving, err3 := parseInts(fields[3:])
			if err1 != nil || err2 != nil || err3 != nil {
				return nil, fmt.Errorf("ligen: line %d: bad rotamer", line)
			}
			l.Rotamers = append(l.Rotamers, Rotamer{A: a, B: b, Moving: moving})
		case "FRAG":
			idx, err := parseInts(fields[1:])
			if err != nil {
				return nil, fmt.Errorf("ligen: line %d: bad fragment", line)
			}
			l.Fragments = append(l.Fragments, idx)
		default:
			return nil, fmt.Errorf("ligen: line %d: unknown record %q", line, fields[0])
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	if len(l.Atoms) != nAtoms || len(l.Bonds) != nBonds ||
		len(l.Rotamers) != nRots || len(l.Fragments) != nFrags {
		return nil, fmt.Errorf("ligen: record counts do not match COUNTS header")
	}
	if err := validateLigand(l); err != nil {
		return nil, err
	}
	return l, nil
}

// validateLigand checks structural integrity of a deserialized ligand.
func validateLigand(l *Ligand) error {
	n := len(l.Atoms)
	if n == 0 {
		return fmt.Errorf("ligen: ligand has no atoms")
	}
	for _, b := range l.Bonds {
		if b[0] < 0 || b[0] >= n || b[1] < 0 || b[1] >= n {
			return fmt.Errorf("ligen: bond %v out of range", b)
		}
	}
	for _, r := range l.Rotamers {
		if r.A < 0 || r.A >= n || r.B < 0 || r.B >= n {
			return fmt.Errorf("ligen: rotamer axis (%d,%d) out of range", r.A, r.B)
		}
		for _, m := range r.Moving {
			if m < 0 || m >= n {
				return fmt.Errorf("ligen: rotamer moving atom %d out of range", m)
			}
		}
	}
	for _, f := range l.Fragments {
		for _, a := range f {
			if a < 0 || a >= n {
				return fmt.Errorf("ligen: fragment atom %d out of range", a)
			}
		}
	}
	return nil
}

// WriteLibrary serializes a library as concatenated ligand records separated
// by blank lines.
func WriteLibrary(w io.Writer, lib *Library) error {
	for i, l := range lib.Ligands {
		if i > 0 {
			if _, err := io.WriteString(w, "\n"); err != nil {
				return err
			}
		}
		if err := WriteLigand(w, l); err != nil {
			return err
		}
	}
	return nil
}

func joinInts(xs []int) string {
	parts := make([]string, len(xs))
	for i, x := range xs {
		parts[i] = strconv.Itoa(x)
	}
	return strings.Join(parts, " ")
}

func parseInts(fields []string) ([]int, error) {
	out := make([]int, len(fields))
	for i, f := range fields {
		v, err := strconv.Atoi(f)
		if err != nil {
			return nil, err
		}
		out[i] = v
	}
	return out, nil
}

func parseFloats(fields []string) ([]float64, error) {
	out := make([]float64, len(fields))
	for i, f := range fields {
		v, err := strconv.ParseFloat(f, 64)
		if err != nil {
			return nil, err
		}
		out[i] = v
	}
	return out, nil
}
