package ligen

import (
	"fmt"
	"math"
)

// Structural analysis utilities for poses and molecules, used to inspect
// docking results (pose diversity, geometric sanity) the way screening
// pipelines post-process LiGen output.

// RMSD returns the root-mean-square deviation between two coordinate sets of
// equal length, without superposition (docking poses share the pocket frame,
// so direct RMSD is the conventional pose-similarity measure).
func RMSD(a, b []Vec3) (float64, error) {
	if len(a) != len(b) || len(a) == 0 {
		return 0, fmt.Errorf("ligen: RMSD needs equal non-empty coordinate sets (%d vs %d)", len(a), len(b))
	}
	var sum float64
	for i := range a {
		d := a[i].Sub(b[i])
		sum += d.Dot(d)
	}
	return math.Sqrt(sum / float64(len(a))), nil
}

// RadiusOfGyration returns the mass-uniform radius of gyration of a
// coordinate set — a compactness measure that distinguishes extended from
// collapsed conformations.
func RadiusOfGyration(coords []Vec3) float64 {
	if len(coords) == 0 {
		return 0
	}
	var c Vec3
	for _, p := range coords {
		c = c.Add(p)
	}
	c = c.Scale(1 / float64(len(coords)))
	var sum float64
	for _, p := range coords {
		d := p.Sub(c)
		sum += d.Dot(d)
	}
	return math.Sqrt(sum / float64(len(coords)))
}

// BondLengthStats verifies that a pose preserved the molecule's bond
// geometry (rigid-body and rotamer moves must not stretch bonds): it returns
// the min and max bonded distance across the pose.
func BondLengthStats(l *Ligand, coords []Vec3) (min, max float64, err error) {
	if len(coords) != len(l.Atoms) {
		return 0, 0, fmt.Errorf("ligen: pose has %d atoms, ligand %d", len(coords), len(l.Atoms))
	}
	if len(l.Bonds) == 0 {
		return 0, 0, fmt.Errorf("ligen: ligand has no bonds")
	}
	min, max = math.Inf(1), math.Inf(-1)
	for _, b := range l.Bonds {
		d := coords[b[0]].Sub(coords[b[1]]).Norm()
		if d < min {
			min = d
		}
		if d > max {
			max = d
		}
	}
	return min, max, nil
}

// PoseDiversity returns the mean pairwise RMSD of a pose set — high values
// mean the restarts explored distinct placements, low values mean the search
// collapsed to one basin.
func PoseDiversity(poses []Pose) (float64, error) {
	if len(poses) < 2 {
		return 0, fmt.Errorf("ligen: diversity needs >= 2 poses")
	}
	var sum float64
	var n int
	for i := 0; i < len(poses); i++ {
		for j := i + 1; j < len(poses); j++ {
			r, err := RMSD(poses[i].Coords, poses[j].Coords)
			if err != nil {
				return 0, err
			}
			sum += r
			n++
		}
	}
	return sum / float64(n), nil
}
