package ligen

import (
	"math"
	"testing"

	"dsenergy/internal/xrand"
)

func TestGenLigandStructure(t *testing.T) {
	rng := xrand.New(42)
	for _, tc := range []struct{ atoms, frags int }{
		{31, 4}, {63, 8}, {74, 16}, {89, 20}, {2, 1}, {10, 10},
	} {
		l, err := GenLigand(rng.Split(), "t", tc.atoms, tc.frags)
		if err != nil {
			t.Fatalf("GenLigand(%d,%d): %v", tc.atoms, tc.frags, err)
		}
		if l.NumAtoms() != tc.atoms {
			t.Errorf("atoms: got %d want %d", l.NumAtoms(), tc.atoms)
		}
		if l.NumFragments() != tc.frags {
			t.Errorf("fragments(%d,%d): got %d want %d", tc.atoms, tc.frags, l.NumFragments(), tc.frags)
		}
		if got, want := len(l.Rotamers), tc.frags-1; got != want {
			t.Errorf("rotamers(%d,%d): got %d want %d (fragments-1)", tc.atoms, tc.frags, got, want)
		}
		if got, want := len(l.Bonds), tc.atoms-1; got != want {
			t.Errorf("bonds: got %d want %d", got, want)
		}
		// Fragments must partition the atom set.
		seen := make([]bool, tc.atoms)
		for _, frag := range l.Fragments {
			for _, a := range frag {
				if seen[a] {
					t.Fatalf("atom %d in two fragments", a)
				}
				seen[a] = true
			}
		}
		for a, s := range seen {
			if !s {
				t.Fatalf("atom %d in no fragment", a)
			}
		}
		// Every rotamer's moving set is the downstream chain suffix.
		for _, r := range l.Rotamers {
			if r.B != r.A+1 {
				t.Errorf("rotamer axis not a bond: %d-%d", r.A, r.B)
			}
			if len(r.Moving) == 0 || r.Moving[0] != r.B {
				t.Errorf("rotamer moving set does not start at pivot")
			}
		}
	}
}

func TestGenLigandBondLengths(t *testing.T) {
	l, err := GenLigand(xrand.New(7), "t", 40, 5)
	if err != nil {
		t.Fatal(err)
	}
	for _, b := range l.Bonds {
		d := l.Atoms[b[0]].Pos.Sub(l.Atoms[b[1]].Pos).Norm()
		if !almostEq(d, bondLength, 1e-9) {
			t.Fatalf("bond %v length %g, want %g", b, d, bondLength)
		}
	}
}

func TestGenLigandRejectsBadInput(t *testing.T) {
	rng := xrand.New(1)
	if _, err := GenLigand(rng, "t", 1, 1); err == nil {
		t.Error("expected error for 1 atom")
	}
	if _, err := GenLigand(rng, "t", 10, 11); err == nil {
		t.Error("expected error for fragments > atoms")
	}
	if _, err := GenLigand(rng, "t", 10, 0); err == nil {
		t.Error("expected error for 0 fragments")
	}
}

func TestGenLigandDeterministic(t *testing.T) {
	a, _ := GenLigand(xrand.New(99), "t", 31, 4)
	b, _ := GenLigand(xrand.New(99), "t", 31, 4)
	for i := range a.Atoms {
		if a.Atoms[i] != b.Atoms[i] {
			t.Fatalf("atom %d differs between identically seeded generations", i)
		}
	}
}

func TestGenLibrary(t *testing.T) {
	lib, err := GenLibrary(xrand.New(5), 10, 31, 4)
	if err != nil {
		t.Fatal(err)
	}
	if len(lib.Ligands) != 10 {
		t.Fatalf("library size %d, want 10", len(lib.Ligands))
	}
	// Distinct ligands: first atoms of different molecules should differ.
	if lib.Ligands[0].Atoms[1].Pos == lib.Ligands[1].Atoms[1].Pos {
		t.Error("library ligands are identical; splits not independent")
	}
	if _, err := GenLibrary(xrand.New(5), 0, 31, 4); err == nil {
		t.Error("expected error for empty library")
	}
}

func TestRotatePointIsometry(t *testing.T) {
	// Rotation about an axis preserves distance to any anchor point on the
	// axis and maps the axis to itself.
	rng := xrand.New(11)
	for n := 0; n < 500; n++ {
		a := Vec3{rng.Float64(), rng.Float64(), rng.Float64()}
		u := Vec3{rng.Float64() - 0.5, rng.Float64() - 0.5, rng.Float64() - 0.5}.Normalize()
		p := Vec3{3 * rng.Float64(), 3 * rng.Float64(), 3 * rng.Float64()}
		theta := 2 * math.Pi * rng.Float64()
		q := rotatePoint(p, a, u, theta)
		if !almostEq(q.Sub(a).Norm(), p.Sub(a).Norm(), 1e-9) {
			t.Fatalf("rotation changed distance to anchor: %g vs %g",
				q.Sub(a).Norm(), p.Sub(a).Norm())
		}
		// The axial component is invariant.
		if !almostEq(q.Sub(a).Dot(u), p.Sub(a).Dot(u), 1e-9) {
			t.Fatalf("rotation changed axial component")
		}
	}
}

func TestRotatePointFullTurn(t *testing.T) {
	a := Vec3{1, 2, 3}
	u := Vec3{0, 0, 1}
	p := Vec3{4, 5, 6}
	q := rotatePoint(p, a, u, 2*math.Pi)
	for i := 0; i < 3; i++ {
		if !almostEq(q[i], p[i], 1e-9) {
			t.Fatalf("full turn moved the point: %v -> %v", p, q)
		}
	}
}

func TestVec3Ops(t *testing.T) {
	a := Vec3{1, 2, 3}
	b := Vec3{4, 5, 6}
	if a.Add(b) != (Vec3{5, 7, 9}) {
		t.Error("Add")
	}
	if b.Sub(a) != (Vec3{3, 3, 3}) {
		t.Error("Sub")
	}
	if a.Dot(b) != 32 {
		t.Error("Dot")
	}
	if a.Cross(b) != (Vec3{-3, 6, -3}) {
		t.Error("Cross")
	}
	if !almostEq(Vec3{3, 4, 0}.Norm(), 5, 1e-12) {
		t.Error("Norm")
	}
	if n := (Vec3{0, 0, 0}).Normalize(); n != (Vec3{0, 0, 0}) {
		t.Error("Normalize of zero vector should be zero")
	}
}

func almostEq(a, b, tol float64) bool {
	d := math.Abs(a - b)
	if d <= tol {
		return true
	}
	return d <= tol*math.Max(math.Abs(a), math.Abs(b))
}

func TestGenLigandBranchedStructure(t *testing.T) {
	l, err := GenLigandBranched(xrand.New(31), "b", 40, 5, 0.3)
	if err != nil {
		t.Fatal(err)
	}
	if l.NumAtoms() != 40 {
		t.Fatalf("atoms %d, want 40", l.NumAtoms())
	}
	if l.NumFragments() != 5 {
		t.Fatalf("fragments %d, want 5", l.NumFragments())
	}
	if len(l.Bonds) != 39 {
		t.Fatalf("bonds %d, want 39 (tree)", len(l.Bonds))
	}
	// Fragments still partition the atom set.
	seen := make([]bool, 40)
	for _, frag := range l.Fragments {
		for _, a := range frag {
			if seen[a] {
				t.Fatalf("atom %d in two fragments", a)
			}
			seen[a] = true
		}
	}
	for a, s := range seen {
		if !s {
			t.Fatalf("atom %d in no fragment", a)
		}
	}
	// Branch atoms must exist (degree-3 backbone atoms).
	deg := make([]int, 40)
	for _, b := range l.Bonds {
		deg[b[0]]++
		deg[b[1]]++
	}
	has3 := false
	for _, d := range deg {
		if d >= 3 {
			has3 = true
		}
	}
	if !has3 {
		t.Error("branched ligand has no branch points")
	}
}

func TestGenLigandBranchedRotamerClosure(t *testing.T) {
	// Every rotamer's moving set must be closed under bonds except across
	// its own axis: a moving atom's bonded neighbours are either moving or
	// the axis atom A. This is what makes rotation a rigid motion.
	l, err := GenLigandBranched(xrand.New(32), "b", 30, 4, 0.25)
	if err != nil {
		t.Fatal(err)
	}
	adj := map[int][]int{}
	for _, b := range l.Bonds {
		adj[b[0]] = append(adj[b[0]], b[1])
		adj[b[1]] = append(adj[b[1]], b[0])
	}
	for ri, r := range l.Rotamers {
		moving := map[int]bool{}
		for _, m := range r.Moving {
			moving[m] = true
		}
		for _, m := range r.Moving {
			for _, nb := range adj[m] {
				if !moving[nb] && nb != r.A {
					t.Fatalf("rotamer %d: moving atom %d bonded to static atom %d (not the axis)",
						ri, m, nb)
				}
			}
		}
	}
}

func TestGenLigandBranchedDocks(t *testing.T) {
	p, err := GenPocket(xrand.New(33), 20, 12)
	if err != nil {
		t.Fatal(err)
	}
	l, err := GenLigandBranched(xrand.New(34), "b", 25, 3, 0.2)
	if err != nil {
		t.Fatal(err)
	}
	r, err := Dock(l, p, TestParams(), xrand.New(35))
	if err != nil {
		t.Fatal(err)
	}
	// Docking must preserve the branched topology's bond lengths too.
	min, max, err := BondLengthStats(l, r.BestPose.Coords)
	if err != nil {
		t.Fatal(err)
	}
	if !almostEq(min, bondLength, 1e-6) || !almostEq(max, bondLength, 1e-6) {
		t.Errorf("branched docking distorted bonds: [%g, %g]", min, max)
	}
}

func TestGenLigandBranchedValidation(t *testing.T) {
	if _, err := GenLigandBranched(xrand.New(1), "b", 10, 2, 1.5); err == nil {
		t.Error("expected error for branchFrac >= 1")
	}
	if _, err := GenLigandBranched(xrand.New(1), "b", 4, 4, 0.5); err == nil {
		t.Error("expected error when backbone shorter than fragments")
	}
}
