package ligen

import (
	"bytes"
	"strings"
	"testing"

	"dsenergy/internal/xrand"
)

func TestLigandRoundTrip(t *testing.T) {
	orig, err := GenLigand(xrand.New(5), "round", 31, 4)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := WriteLigand(&buf, orig); err != nil {
		t.Fatal(err)
	}
	got, err := ReadLigand(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.Name != orig.Name {
		t.Errorf("name %q, want %q", got.Name, orig.Name)
	}
	if len(got.Atoms) != len(orig.Atoms) {
		t.Fatalf("atom count %d, want %d", len(got.Atoms), len(orig.Atoms))
	}
	for i := range orig.Atoms {
		a, b := orig.Atoms[i], got.Atoms[i]
		if a.Pos.Sub(b.Pos).Norm() > 1e-6 || !almostEq(a.Charge, b.Charge, 1e-6) ||
			!almostEq(a.Radius, b.Radius, 1e-6) {
			t.Fatalf("atom %d differs: %+v vs %+v", i, a, b)
		}
	}
	if len(got.Bonds) != len(orig.Bonds) || len(got.Rotamers) != len(orig.Rotamers) ||
		len(got.Fragments) != len(orig.Fragments) {
		t.Fatal("topology counts differ after round trip")
	}
	for i := range orig.Rotamers {
		a, b := orig.Rotamers[i], got.Rotamers[i]
		if a.A != b.A || a.B != b.B || len(a.Moving) != len(b.Moving) {
			t.Fatalf("rotamer %d differs", i)
		}
	}
}

func TestRoundTrippedLigandDocksIdentically(t *testing.T) {
	pocket := testPocket(t)
	orig, _ := GenLigand(xrand.New(6), "dockable", 20, 3)
	var buf bytes.Buffer
	if err := WriteLigand(&buf, orig); err != nil {
		t.Fatal(err)
	}
	restored, err := ReadLigand(&buf)
	if err != nil {
		t.Fatal(err)
	}
	r1, err := Dock(orig, pocket, TestParams(), xrand.New(9))
	if err != nil {
		t.Fatal(err)
	}
	r2, err := Dock(restored, pocket, TestParams(), xrand.New(9))
	if err != nil {
		t.Fatal(err)
	}
	if r1.Score != r2.Score {
		t.Errorf("scores differ after round trip: %g vs %g", r1.Score, r2.Score)
	}
}

func TestReadLigandRejectsMalformed(t *testing.T) {
	cases := map[string]string{
		"bad counts":       "LIGAND x\nCOUNTS a 0 0 0\n",
		"short counts":     "LIGAND x\nCOUNTS 1 0 0\n",
		"bad atom":         "LIGAND x\nCOUNTS 1 0 0 0\nATOM 1 2 3\n",
		"unknown record":   "LIGAND x\nCOUNTS 0 0 0 0\nWHAT 1\n",
		"count mismatch":   "LIGAND x\nCOUNTS 2 0 0 0\nATOM 0 0 0 0 1\n",
		"bond range":       "LIGAND x\nCOUNTS 1 1 0 0\nATOM 0 0 0 0 1\nBOND 0 5\n",
		"rotamer range":    "LIGAND x\nCOUNTS 1 0 1 0\nATOM 0 0 0 0 1\nROT 0 9 0\n",
		"fragment range":   "LIGAND x\nCOUNTS 1 0 0 1\nATOM 0 0 0 0 1\nFRAG 7\n",
		"no atoms at all":  "LIGAND x\nCOUNTS 0 0 0 0\n",
		"bad bond indices": "LIGAND x\nCOUNTS 1 1 0 0\nATOM 0 0 0 0 1\nBOND a b\n",
	}
	for name, text := range cases {
		if _, err := ReadLigand(strings.NewReader(text)); err == nil {
			t.Errorf("%s: expected parse error", name)
		}
	}
}

func TestWriteLibrary(t *testing.T) {
	lib, err := GenLibrary(xrand.New(7), 3, 10, 2)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := WriteLibrary(&buf, lib); err != nil {
		t.Fatal(err)
	}
	if got := strings.Count(buf.String(), "LIGAND "); got != 3 {
		t.Errorf("library serialization has %d ligand records, want 3", got)
	}
}

func TestRMSD(t *testing.T) {
	a := []Vec3{{0, 0, 0}, {1, 0, 0}}
	b := []Vec3{{0, 0, 0}, {1, 0, 0}}
	if r, err := RMSD(a, b); err != nil || r != 0 {
		t.Errorf("identical sets RMSD %g, err %v", r, err)
	}
	c := []Vec3{{0, 0, 2}, {1, 0, 2}}
	if r, _ := RMSD(a, c); !almostEq(r, 2, 1e-12) {
		t.Errorf("shifted set RMSD %g, want 2", r)
	}
	if _, err := RMSD(a, c[:1]); err == nil {
		t.Error("expected error for length mismatch")
	}
}

func TestRadiusOfGyration(t *testing.T) {
	// Two points at ±1 on x: centroid at origin, Rg = 1.
	coords := []Vec3{{-1, 0, 0}, {1, 0, 0}}
	if rg := RadiusOfGyration(coords); !almostEq(rg, 1, 1e-12) {
		t.Errorf("Rg %g, want 1", rg)
	}
	if rg := RadiusOfGyration(nil); rg != 0 {
		t.Errorf("Rg of empty set %g", rg)
	}
}

func TestBondLengthStatsDetectsStretch(t *testing.T) {
	l, _ := GenLigand(xrand.New(8), "t", 10, 2)
	coords := make([]Vec3, 10)
	for i := range coords {
		coords[i] = l.Atoms[i].Pos
	}
	min, max, err := BondLengthStats(l, coords)
	if err != nil {
		t.Fatal(err)
	}
	if !almostEq(min, bondLength, 1e-9) || !almostEq(max, bondLength, 1e-9) {
		t.Errorf("pristine pose bond range [%g, %g], want all %g", min, max, bondLength)
	}
	coords[9] = coords[9].Add(Vec3{10, 0, 0})
	_, max2, _ := BondLengthStats(l, coords)
	if max2 <= max {
		t.Error("stretched bond not detected")
	}
	if _, _, err := BondLengthStats(l, coords[:3]); err == nil {
		t.Error("expected error for wrong coordinate count")
	}
}

func TestDockedPosePreservesBondGeometry(t *testing.T) {
	// End-to-end: the docking engine must never distort the molecule.
	pocket := testPocket(t)
	l, _ := GenLigand(xrand.New(10), "t", 24, 4)
	r, err := Dock(l, pocket, TestParams(), xrand.New(11))
	if err != nil {
		t.Fatal(err)
	}
	min, max, err := BondLengthStats(l, r.BestPose.Coords)
	if err != nil {
		t.Fatal(err)
	}
	if !almostEq(min, bondLength, 1e-6) || !almostEq(max, bondLength, 1e-6) {
		t.Errorf("docking distorted bonds: range [%g, %g]", min, max)
	}
}

func TestPoseDiversity(t *testing.T) {
	a := Pose{Coords: []Vec3{{0, 0, 0}}}
	b := Pose{Coords: []Vec3{{3, 0, 0}}}
	d, err := PoseDiversity([]Pose{a, b})
	if err != nil {
		t.Fatal(err)
	}
	if !almostEq(d, 3, 1e-12) {
		t.Errorf("diversity %g, want 3", d)
	}
	if _, err := PoseDiversity([]Pose{a}); err == nil {
		t.Error("expected error for single pose")
	}
}

func TestPocketRoundTrip(t *testing.T) {
	orig := testPocket(t)
	var buf bytes.Buffer
	if err := WritePocket(&buf, orig); err != nil {
		t.Fatal(err)
	}
	got, err := ReadPocket(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.N != orig.N || got.Extent != orig.Extent || got.spacing != orig.spacing {
		t.Errorf("geometry changed: %+v", got)
	}
	for i := range orig.Aff {
		if got.Aff[i] != orig.Aff[i] || got.Elec[i] != orig.Elec[i] {
			t.Fatalf("field differs at %d", i)
		}
	}
	// A docking run against the restored pocket is identical.
	l, _ := GenLigand(xrand.New(51), "t", 20, 3)
	r1, err := Dock(l, orig, TestParams(), xrand.New(52))
	if err != nil {
		t.Fatal(err)
	}
	r2, err := Dock(l, got, TestParams(), xrand.New(52))
	if err != nil {
		t.Fatal(err)
	}
	if r1.Score != r2.Score {
		t.Errorf("docking differs against restored pocket: %g vs %g", r1.Score, r2.Score)
	}
}

func TestReadPocketRejectsGarbage(t *testing.T) {
	if _, err := ReadPocket(strings.NewReader("tiny")); err == nil {
		t.Error("expected error for truncated pocket")
	}
	bad := make([]byte, 64)
	if _, err := ReadPocket(bytes.NewReader(bad)); err == nil {
		t.Error("expected error for bad magic")
	}
	orig := testPocket(t)
	var buf bytes.Buffer
	if err := WritePocket(&buf, orig); err != nil {
		t.Fatal(err)
	}
	if _, err := ReadPocket(bytes.NewReader(buf.Bytes()[:buf.Len()/3])); err == nil {
		t.Error("expected error for truncated fields")
	}
}
