package cliutil

import (
	"strings"
	"testing"
)

func TestCheckJobs(t *testing.T) {
	for _, jobs := range []int{0, 1, 7, 1 << 20} {
		if err := CheckJobs("prog", jobs); err != nil {
			t.Errorf("CheckJobs(%d) = %v, want nil", jobs, err)
		}
	}
	err := CheckJobs("prog", -1)
	if err == nil {
		t.Fatal("CheckJobs(-1) accepted")
	}
	// The message carries the program name and the offending value so a
	// main() can print it verbatim as its usage error.
	for _, want := range []string{"prog", "-1"} {
		if !strings.Contains(err.Error(), want) {
			t.Errorf("error %q missing %q", err, want)
		}
	}
}
