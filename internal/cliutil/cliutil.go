// Package cliutil holds the flag plumbing the experiment CLIs share: the
// observability output flags (-metrics, -trace, -profile) and validation of
// the worker-count flag. Keeping it in one place is what keeps the five
// commands' flags and error conventions identical.
package cliutil

import (
	"flag"
	"fmt"
	"io"
	"os"

	"dsenergy/internal/obs"
)

// ObsFlags holds the observability output paths registered by RegisterObs.
type ObsFlags struct {
	MetricsPath string
	TracePath   string
	ProfilePath string
}

// RegisterObs registers -metrics/-trace/-profile on the default flag set.
// Call before flag.Parse.
func RegisterObs() *ObsFlags {
	f := &ObsFlags{}
	flag.StringVar(&f.MetricsPath, "metrics", "",
		"write the deterministic metric export (JSON) to this file; byte-identical across runs and -j values")
	flag.StringVar(&f.TracePath, "trace", "",
		"write the simulated-time span trace (text) to this file; byte-identical across runs and -j values")
	flag.StringVar(&f.ProfilePath, "profile", "",
		"write wall-clock phase timers and unstable metrics (text) to this file; not deterministic by design")
	return f
}

// Observer returns a fresh observer when any output was requested, and nil
// otherwise — nil keeps the whole observability layer on the no-op path, so
// an unobserved run is not merely "observed into a discarded sink".
func (f *ObsFlags) Observer() *obs.Observer {
	if f.MetricsPath == "" && f.TracePath == "" && f.ProfilePath == "" {
		return nil
	}
	return obs.NewObserver()
}

// Write dumps the requested exports from o. A nil observer writes nothing
// (no flags were set). Call once, after the command's work succeeded.
func (f *ObsFlags) Write(o *obs.Observer) error {
	if o == nil {
		return nil
	}
	outputs := []struct {
		path string
		gen  func(io.Writer) error
	}{
		{f.MetricsPath, o.WriteMetricsJSON},
		{f.TracePath, o.WriteTraceText},
		{f.ProfilePath, o.WriteProfileText},
	}
	for _, out := range outputs {
		if out.path == "" {
			continue
		}
		file, err := os.Create(out.path)
		if err != nil {
			return err
		}
		if err := out.gen(file); err != nil {
			file.Close()
			return err
		}
		if err := file.Close(); err != nil {
			return err
		}
	}
	return nil
}

// CheckJobs rejects a negative -j with a usage error. It returns the error
// instead of exiting so long-running callers (the advisor service) and tests
// can handle it; CLI mains translate it to exit status 2 themselves (the
// same convention flag.Parse uses for malformed flags). Zero and positive
// values are both valid (0 = GOMAXPROCS).
func CheckJobs(prog string, jobs int) error {
	if jobs < 0 {
		return fmt.Errorf("%s: invalid -j %d: worker count must be >= 0 (0 = GOMAXPROCS, 1 = serial)", prog, jobs)
	}
	return nil
}
