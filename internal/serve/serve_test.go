package serve

import (
	"bytes"
	"errors"
	"fmt"
	"strings"
	"testing"

	"dsenergy/internal/core"
	"dsenergy/internal/ml"
	"dsenergy/internal/obs"
)

// Test fixtures: a synthetic analytic workload — time = work/clock, energy
// grows with clock — trained into a real forest model pair, so the serving
// path exercises genuine persisted models without the full measurement
// pipeline.

var testFreqs = []int{800, 1000, 1200, 1380, 1500}

var testShapeFeatures = [][]float64{
	{1024, 8, 63},
	{2048, 16, 31},
	{4096, 8, 89},
	{8192, 8, 63},
	{16384, 8, 63},
}

func testDataset() *core.Dataset {
	ds := &core.Dataset{Schema: core.LiGenSchema(), Device: "v100", BaselineFreqMHz: 1380}
	for _, f := range testShapeFeatures {
		work := f[0] * f[1] * f[2] / 4e6
		for _, freq := range testFreqs {
			ds.Samples = append(ds.Samples, core.Sample{
				Features: f,
				FreqMHz:  freq,
				TimeS:    work * 1380 / float64(freq),
				EnergyJ:  work * (30 + float64(freq)/20),
			})
		}
	}
	return ds
}

// testPayload trains a forest pair on the synthetic dataset and returns its
// persisted form. Different seeds give distinct (but valid) versions.
func testPayload(t testing.TB, seed uint64) []byte {
	t.Helper()
	m, err := core.Train(testDataset(), ml.Spec{
		Algorithm: "forest",
		Params:    map[string]float64{"n_estimators": 10},
	}, seed)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := m.Save(&buf); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// testShapes is the request universe matching the training inputs.
func testShapes() []Shape {
	out := make([]Shape, len(testShapeFeatures))
	for i, f := range testShapeFeatures {
		out[i] = Shape{App: "ligen", Features: f, NominalS: f[0] * f[1] * f[2] / 4e6}
	}
	return out
}

func testConfig(t testing.TB, workers int, o *obs.Observer) Config {
	return Config{
		Shards: []ShardConfig{
			{
				Device: "v100-a",
				Freqs:  testFreqs,
				Models: map[string][]byte{"ligen": testPayload(t, 1)},
				Reloads: []Reload{
					{AtS: 2.0, App: "ligen", Payload: testPayload(t, 99)},
				},
				Shapes: testShapes(),
				Load:   Load{Mode: "open", Requests: 8000, MeanInterarrivalS: 0.0005, MalformedEvery: 500},
			},
			{
				Device: "v100-b",
				Freqs:  testFreqs,
				Models: map[string][]byte{"ligen": testPayload(t, 2)},
				Reloads: []Reload{
					// A truncated payload: must be rejected, old version keeps serving.
					{AtS: 1.0, App: "ligen", Payload: testPayload(t, 2)[:40]},
				},
				Shapes: testShapes(),
				Load:   Load{Mode: "closed", Clients: 6, RequestsPerClient: 800, MeanThinkS: 0.001},
			},
		},
		Seed:    2023,
		Workers: workers,
		Obs:     o,
	}
}

func renderReport(t *testing.T, cfg Config) (string, *Report) {
	t.Helper()
	rep, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := rep.WriteText(&buf); err != nil {
		t.Fatal(err)
	}
	return buf.String(), rep
}

func TestRunZeroLossWithReloads(t *testing.T) {
	_, rep := renderReport(t, testConfig(t, 1, nil))
	if rep.Submitted == 0 {
		t.Fatal("no requests submitted")
	}
	if rep.Completed+rep.Rejected != rep.Submitted {
		t.Errorf("lost requests: submitted=%d completed=%d rejected=%d",
			rep.Submitted, rep.Completed, rep.Rejected)
	}
	if rep.Reloads != 1 {
		t.Errorf("reloads published = %d, want 1", rep.Reloads)
	}
	if rep.ReloadsRejected != 1 {
		t.Errorf("reloads rejected = %d, want 1 (truncated payload)", rep.ReloadsRejected)
	}
	if rep.RejectedBadShape == 0 {
		t.Error("malformed requests were not rejected")
	}
	if rep.CacheHits == 0 || rep.Coalesced == 0 {
		t.Errorf("admission tier idle: hits=%d coalesced=%d", rep.CacheHits, rep.Coalesced)
	}
	if rep.Batches == 0 || rep.MeanBatchFlights <= 1 {
		t.Errorf("no batching: batches=%d mean=%.2f", rep.Batches, rep.MeanBatchFlights)
	}
	// Shard a hot-reloaded mid-load: both versions must have answered, and
	// nothing may be attributed to a version that was never published.
	vers := map[int]bool{}
	for _, v := range rep.PerVersion {
		if v.Device == "v100-a" {
			vers[v.Version] = true
		}
		if v.Version < 1 || v.Version > 2 {
			t.Errorf("response attributed to unpublished version %+v", v)
		}
	}
	if !vers[1] || !vers[2] {
		t.Errorf("expected responses from versions 1 and 2 on v100-a, got %+v", rep.PerVersion)
	}
	if rep.P99LatencyS < rep.P50LatencyS || rep.MaxLatencyS < rep.P99LatencyS {
		t.Errorf("latency percentiles out of order: %v", rep)
	}
}

func TestRunDeterministicAcrossRunsAndWorkers(t *testing.T) {
	base, _ := renderReport(t, testConfig(t, 1, nil))
	for _, w := range []int{1, 0, 7} {
		got, _ := renderReport(t, testConfig(t, w, nil))
		if got != base {
			t.Fatalf("report differs with %d workers:\n--- serial ---\n%s--- workers=%d ---\n%s",
				w, base, w, got)
		}
	}
}

func TestRunMetricsMatchReport(t *testing.T) {
	o := obs.NewObserver()
	_, rep := renderReport(t, testConfig(t, 0, o))
	var sub, done uint64
	for _, dev := range []string{"v100-a", "v100-b"} {
		sub += o.Metrics().Counter("serve_requests_total", obs.L("device", dev)).Value()
		done += o.Metrics().Counter("serve_responses_total", obs.L("device", dev)).Value()
	}
	if sub != uint64(rep.Submitted) || done != uint64(rep.Completed) {
		t.Errorf("metrics disagree with report: submitted %d vs %d, completed %d vs %d",
			sub, rep.Submitted, done, rep.Completed)
	}
	if o.Metrics().Histogram("serve_latency_s", nil, obs.L("device", "v100-a")).Count() == 0 {
		t.Error("latency histogram empty")
	}
}

func TestRunObserverDoesNotChangeReport(t *testing.T) {
	plain, _ := renderReport(t, testConfig(t, 0, nil))
	observed, _ := renderReport(t, testConfig(t, 0, obs.NewObserver()))
	if plain != observed {
		t.Error("attaching an observer changed the report bytes")
	}
}

func TestBatchedAdviceBitIdenticalToSingle(t *testing.T) {
	reg := NewRegistry("v100")
	if _, err := reg.Publish("ligen", testPayload(t, 7)); err != nil {
		t.Fatal(err)
	}
	e, ok := reg.Lookup("ligen")
	if !ok {
		t.Fatal("lookup failed")
	}
	curves, err := e.Model.PredictCurvesBatch(testShapeFeatures, testFreqs)
	if err != nil {
		t.Fatal(err)
	}
	for i, f := range testShapeFeatures {
		deadline := 2 * testShapes()[i].NominalS
		single, err := e.Advise(f, deadline, testFreqs)
		if err != nil {
			t.Fatal(err)
		}
		if batched := e.AdviseFromCurve(curves[i], deadline); batched != single {
			t.Errorf("input %d: batched advice %+v != single %+v", i, batched, single)
		}
	}
}

func TestMaxBatchClosesEarly(t *testing.T) {
	cfg := testConfig(t, 1, nil)
	cfg.MaxBatch = 2
	cfg.BatchWindowS = 10 // the window never expires first
	_, rep := renderReport(t, cfg)
	if rep.MaxBatchLen > 2 {
		t.Errorf("batch grew past MaxBatch: %d", rep.MaxBatchLen)
	}
	if rep.Completed+rep.Rejected != rep.Submitted {
		t.Errorf("lost requests under size-closed batching")
	}
}

func TestRunRejectsBadConfigs(t *testing.T) {
	base := testConfig(t, 1, nil)
	for name, mutate := range map[string]func(*Config){
		"no shards":     func(c *Config) { c.Shards = nil },
		"empty device":  func(c *Config) { c.Shards[0].Device = "" },
		"no freqs":      func(c *Config) { c.Shards[0].Freqs = nil },
		"no shapes":     func(c *Config) { c.Shards[0].Shapes = nil },
		"bad load mode": func(c *Config) { c.Shards[0].Load.Mode = "sideways" },
		"corrupt initial model": func(c *Config) {
			c.Shards[0].Models = map[string][]byte{"ligen": []byte(`{"schema":{}}`)}
		},
	} {
		cfg := testConfig(t, 1, nil)
		cfg.Shards = append([]ShardConfig(nil), base.Shards...)
		mutate(&cfg)
		if _, err := Run(cfg); err == nil {
			t.Errorf("%s: accepted", name)
		}
	}
}

func TestAdviseMeetsDeadlineOrEscalates(t *testing.T) {
	reg := NewRegistry("v100")
	if _, err := reg.Publish("ligen", testPayload(t, 7)); err != nil {
		t.Fatal(err)
	}
	feats := testShapeFeatures[2]
	nominal := feats[0] * feats[1] * feats[2] / 4e6

	// Loose deadline: the advisor should find a feasible clock and pick the
	// cheapest, not the fastest.
	loose, err := reg.Advise("ligen", feats, 10*nominal, testFreqs)
	if err != nil {
		t.Fatal(err)
	}
	if loose.Escalated {
		t.Errorf("loose deadline escalated: %+v", loose)
	}
	if loose.PredTimeS > 10*nominal {
		t.Errorf("recommendation predicted to miss its deadline: %+v", loose)
	}
	if loose.PredEnergyJ > loose.PredEnergyMaxJ {
		t.Errorf("recommendation predicted to cost more than maxfreq: %+v", loose)
	}

	// Impossible deadline: escalate to the fastest predicted clock.
	tight, err := reg.Advise("ligen", feats, nominal/1000, testFreqs)
	if err != nil {
		t.Fatal(err)
	}
	if !tight.Escalated {
		t.Errorf("impossible deadline did not escalate: %+v", tight)
	}
}

func TestRegistryAdviseErrors(t *testing.T) {
	reg := NewRegistry("v100")
	if _, err := reg.Advise("ligen", testShapeFeatures[0], 1, testFreqs); !errors.Is(err, ErrNoModel) {
		t.Errorf("empty registry: got %v, want ErrNoModel", err)
	}
	if _, err := reg.Publish("ligen", testPayload(t, 3)); err != nil {
		t.Fatal(err)
	}
	if _, err := reg.Advise("ligen", []float64{1, 2}, 1, testFreqs); !errors.Is(err, ErrBadRequest) {
		t.Errorf("short features: got %v, want ErrBadRequest", err)
	}
	if _, err := reg.Advise("ligen", testShapeFeatures[0], 1, nil); !errors.Is(err, ErrBadRequest) {
		t.Errorf("no freqs: got %v, want ErrBadRequest", err)
	}
	if _, err := reg.Advise("cronos", testShapeFeatures[0], 1, testFreqs); !errors.Is(err, ErrNoModel) {
		t.Errorf("unknown app: got %v, want ErrNoModel", err)
	}
}

func TestRegistryRejectsCorruptAndKeepsServing(t *testing.T) {
	reg := NewRegistry("v100")
	if _, err := reg.Publish("ligen", testPayload(t, 3)); err != nil {
		t.Fatal(err)
	}
	before, err := reg.Advise("ligen", testShapeFeatures[0], 1, testFreqs)
	if err != nil {
		t.Fatal(err)
	}

	// Every corrupt upload must fail with the typed error and leave the
	// serving version untouched.
	valid := testPayload(t, 3)
	corrupts := map[string][]byte{
		"truncated": valid[:len(valid)/2],
		"garbage":   []byte("not json"),
		"empty lasso time model": []byte(
			`{"schema":{"App":"ligen","Features":["a","b","c"]},"device":"v100",` +
				`"baseline_freq_mhz":1380,` +
				`"time_model":{"kind":"lasso","payload":{"alpha":1}},` +
				`"energy_model":{"kind":"lasso","payload":{"alpha":1}}}`),
	}
	for name, payload := range corrupts {
		if _, err := reg.Publish("ligen", payload); err == nil {
			t.Errorf("%s: corrupt payload published", name)
		} else if name == "empty lasso time model" && !errors.Is(err, ml.ErrCorruptModel) {
			t.Errorf("%s: error %v does not wrap ml.ErrCorruptModel", name, err)
		}
	}
	after, err := reg.Advise("ligen", testShapeFeatures[0], 1, testFreqs)
	if err != nil {
		t.Fatal(err)
	}
	if after != before {
		t.Errorf("rejected publishes perturbed the serving version: %+v vs %+v", after, before)
	}
	if after.Version != 1 {
		t.Errorf("version advanced past rejected publishes: %d", after.Version)
	}
}

func TestRegistryRejectsNormalizedModel(t *testing.T) {
	m, err := core.TrainNormalized(testDataset(), ml.Spec{
		Algorithm: "forest", Params: map[string]float64{"n_estimators": 5},
	}, 1)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := m.Save(&buf); err != nil {
		t.Fatal(err)
	}
	reg := NewRegistry("v100")
	if _, err := reg.Publish("ligen", buf.Bytes()); err == nil ||
		!strings.Contains(err.Error(), "normalized") {
		t.Errorf("normalized model published: %v", err)
	}
}

func TestRegistryVersioning(t *testing.T) {
	reg := NewRegistry("v100")
	for want := 1; want <= 3; want++ {
		ver, err := reg.Publish("ligen", testPayload(t, uint64(want)))
		if err != nil {
			t.Fatal(err)
		}
		if ver != want {
			t.Errorf("publish %d returned version %d", want, ver)
		}
	}
	if _, err := reg.Publish("cronos", testPayload(t, 9)); err != nil {
		t.Fatal(err)
	}
	if apps := reg.Apps(); len(apps) != 2 || apps[0] != "cronos" || apps[1] != "ligen" {
		t.Errorf("Apps() = %v", apps)
	}
	e, _ := reg.Lookup("cronos")
	if e.Version != 1 {
		t.Errorf("per-app version not independent: cronos at %d", e.Version)
	}
}

func TestLRU(t *testing.T) {
	c := newLRU(2)
	k := func(i int) string { return fmt.Sprintf("k%d", i) }
	c.put(k(1), Response{Version: 1})
	c.put(k(2), Response{Version: 2})
	if _, ok := c.get(k(1)); !ok {
		t.Fatal("k1 evicted early")
	}
	c.put(k(3), Response{Version: 3}) // k2 is now the LRU tail
	if _, ok := c.get(k(2)); ok {
		t.Error("k2 survived past capacity")
	}
	if _, ok := c.get(k(1)); !ok {
		t.Error("recently used k1 evicted")
	}
	if c.len() != 2 {
		t.Errorf("len = %d, want 2", c.len())
	}
	c.put(k(1), Response{Version: 9})
	if r, _ := c.get(k(1)); r.Version != 9 {
		t.Error("put did not update existing key")
	}
	if c.len() != 2 {
		t.Errorf("update changed len to %d", c.len())
	}
}
