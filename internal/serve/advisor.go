package serve

import (
	"dsenergy/internal/core"
	"dsenergy/internal/pareto"
)

// AdviseFromCurve turns one prediction curve (core.CurvePoint per candidate
// clock, in curve order) into an advisory response against the given
// deadline. The choice rule mirrors the scheduler's model policy: minimum
// predicted energy among candidates predicted to finish by the deadline,
// escalating to the fastest predicted clock when none does. It is the
// single decision function behind both Advise and the coalesced batch path,
// which is what makes batched and per-request answers bit-identical.
func (e *Entry) AdviseFromCurve(curve []core.CurvePoint, deadlineS float64) Response {
	best, escalated := chooseFreq(curve, deadlineS)
	resp := Response{
		App:            e.App,
		Device:         e.Device,
		Version:        e.Version,
		RecommendedMHz: curve[best].FreqMHz,
		PredTimeS:      curve[best].TimeS,
		PredEnergyJ:    curve[best].EnergyJ,
		Escalated:      escalated,
	}
	maxIdx := 0
	for i, c := range curve {
		if c.FreqMHz > curve[maxIdx].FreqMHz {
			maxIdx = i
		}
	}
	resp.PredEnergyMaxJ = curve[maxIdx].EnergyJ
	pts := make([]pareto.Point, len(curve))
	for i, c := range curve {
		pts[i] = pareto.Point{FreqMHz: c.FreqMHz, Speedup: c.Speedup, NormEnergy: c.NormEnergy}
	}
	for _, p := range pareto.Front(pts) {
		if p.FreqMHz == resp.RecommendedMHz {
			resp.OnPareto = true
			break
		}
	}
	return resp
}

// chooseFreq picks the curve index of the recommendation. Ties break to the
// earliest candidate in curve order (the lowest clock when the curve is
// ascending), making the choice deterministic for identical predictions.
func chooseFreq(curve []core.CurvePoint, deadlineS float64) (int, bool) {
	best, found := 0, false
	for i, c := range curve {
		if c.TimeS > deadlineS {
			continue
		}
		if !found || c.EnergyJ < curve[best].EnergyJ {
			best, found = i, true
		}
	}
	if found {
		return best, false
	}
	fastest := 0
	for i, c := range curve {
		if c.TimeS < curve[fastest].TimeS {
			fastest = i
		}
	}
	return fastest, true
}
