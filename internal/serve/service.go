package serve

import (
	"container/heap"
	"context"
	"fmt"
	"math"
	"sort"
	"strconv"

	"dsenergy/internal/core"
	"dsenergy/internal/obs"
	"dsenergy/internal/parallel"
	"dsenergy/internal/xrand"
)

// Run drives the configured load through every shard and merges the
// per-shard accounting into one Report. Shards are independent simulations
// on their own pre-split randomness, so the pool fan-out is byte-identical
// to the serial loop for any worker count.
func Run(cfg Config) (*Report, error) {
	cfg = cfg.withDefaults()
	if len(cfg.Shards) == 0 {
		return nil, fmt.Errorf("serve: no shards configured")
	}
	rngs := xrand.New(cfg.Seed).SplitN(len(cfg.Shards))
	children := cfg.Obs.ForkN(len(cfg.Shards))
	results, err := parallel.Map(context.Background(), len(cfg.Shards), cfg.Workers,
		func(_ context.Context, i int) (*shardResult, error) {
			return runShard(cfg, cfg.Shards[i], rngs[i], children[i])
		})
	if err != nil {
		return nil, err
	}
	cfg.Obs.AbsorbAll(children)
	return mergeResults(results), nil
}

// Event kinds of the shard's simulated-time loop.
const (
	evArrive = iota
	evBatchClose
	evBatchDone
	evReload
)

// event is one entry of the shard's event heap.
type event struct {
	timeS  float64
	seq    int // insertion order, the deterministic tie-break
	kind   int
	req    *request // evArrive
	batch  *batch   // evBatchClose, evBatchDone
	reload int      // index into ShardConfig.Reloads (evReload)
}

// eventHeap orders events by (time, seq).
type eventHeap []event

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	if h[i].timeS < h[j].timeS {
		return true
	}
	if h[j].timeS < h[i].timeS {
		return false
	}
	return h[i].seq < h[j].seq
}
func (h eventHeap) Swap(i, j int) { h[i], h[j] = h[j], h[i] }
func (h *eventHeap) Push(x any)   { *h = append(*h, x.(event)) }
func (h *eventHeap) Pop() any {
	old := *h
	n := len(old)
	x := old[n-1]
	*h = old[:n-1]
	return x
}

// request is one advisory query in flight through the shard.
type request struct {
	shape     Shape
	tier      float64
	deadlineS float64 // advisory compute deadline: tier x NominalS
	arriveS   float64
	malformed bool
	client    int // closed-loop client index; -1 for open loop
}

// flight is one single-flight computation: the first miss for a key creates
// it, later identical misses pile onto waiters, and everyone is answered
// from the one batched prediction.
type flight struct {
	key       string
	entry     *Entry // model version pinned at flight creation
	features  []float64
	deadlineS float64
	waiters   []*request
}

// batch is one coalescing window of flights bound for a PredictBatch block.
type batch struct {
	flights []*flight
	closed  bool
}

// client is one closed-loop load generator.
type client struct {
	rng    *xrand.Rand
	issued int
}

// versionKey attributes responses to one published model version.
type versionKey struct {
	App     string
	Device  string
	Version int
}

// shardResult is one shard's raw accounting, merged in shard order.
type shardResult struct {
	device                            string
	submitted, completed, rejected    int
	rejectedNoModel, rejectedBadShape int
	cacheHits, coalesced, misses      int
	batches, batchedFlights           int
	batchedRequests, maxBatchLen      int
	reloads, reloadsRejected          int
	escalations, onPareto             int
	predEnergyJ, predEnergyMaxJ       float64
	latencies                         []float64
	lastDoneS                         float64
	perVersion                        map[versionKey]int
}

// shard is the running state of one device's event loop.
type shard struct {
	cfg       Config
	sc        ShardConfig
	load      Load
	freqs     []int
	reg       *Registry
	cache     *lru
	pending   map[string]*flight
	open      *batch
	events    eventHeap
	seq       int
	rng       *xrand.Rand // open-loop arrivals and request content
	remaining int         // open-loop arrivals not yet scheduled
	clients   []*client
	reqs      int // requests generated, for the malformed cadence
	res       *shardResult

	// Instruments (nil-safe when no observer is attached).
	ctrSubmitted  *obs.Counter
	ctrCompleted  *obs.Counter
	ctrHits       *obs.Counter
	ctrCoalesced  *obs.Counter
	ctrBatches    *obs.Counter
	ctrRejNoModel *obs.Counter
	ctrRejShape   *obs.Counter
	ctrReloadOK   *obs.Counter
	ctrReloadRej  *obs.Counter
	histLatency   *obs.Histogram
	trace         *obs.Trace
}

func (s *shard) push(e event) {
	e.seq = s.seq
	s.seq++
	heap.Push(&s.events, e)
}

func runShard(cfg Config, sc ShardConfig, rng *xrand.Rand, o *obs.Observer) (*shardResult, error) {
	if sc.Device == "" {
		return nil, fmt.Errorf("serve: shard with empty device name")
	}
	if len(sc.Freqs) == 0 {
		return nil, fmt.Errorf("serve: shard %s has no candidate frequencies", sc.Device)
	}
	if len(sc.Shapes) == 0 {
		return nil, fmt.Errorf("serve: shard %s has no request shapes", sc.Device)
	}
	load := sc.Load.withDefaults()
	if load.Mode != "open" && load.Mode != "closed" {
		return nil, fmt.Errorf("serve: shard %s has unknown load mode %q", sc.Device, load.Mode)
	}
	if o != nil {
		defer o.Profile().Phase("serve.shard").Start()()
	}

	freqs := append([]int(nil), sc.Freqs...)
	sort.Ints(freqs)
	reg := NewRegistry(sc.Device)
	apps := make([]string, 0, len(sc.Models))
	for app := range sc.Models {
		apps = append(apps, app)
	}
	sort.Strings(apps)
	for _, app := range apps {
		if _, err := reg.Publish(app, sc.Models[app]); err != nil {
			return nil, fmt.Errorf("serve: shard %s initial publish: %w", sc.Device, err)
		}
	}

	m := o.Metrics()
	dev := obs.L("device", sc.Device)
	s := &shard{
		cfg:     cfg,
		sc:      sc,
		load:    load,
		freqs:   freqs,
		reg:     reg,
		cache:   newLRU(cfg.CacheCap),
		pending: map[string]*flight{},
		rng:     rng,
		res:     &shardResult{device: sc.Device, perVersion: map[versionKey]int{}},

		ctrSubmitted:  m.Counter("serve_requests_total", dev),
		ctrCompleted:  m.Counter("serve_responses_total", dev),
		ctrHits:       m.Counter("serve_cache_hits_total", dev),
		ctrCoalesced:  m.Counter("serve_coalesced_total", dev),
		ctrBatches:    m.Counter("serve_batches_total", dev),
		ctrRejNoModel: m.Counter("serve_rejected_total", dev, obs.L("reason", "no_model")),
		ctrRejShape:   m.Counter("serve_rejected_total", dev, obs.L("reason", "bad_shape")),
		ctrReloadOK:   m.Counter("serve_reloads_total", dev, obs.L("outcome", "published")),
		ctrReloadRej:  m.Counter("serve_reloads_total", dev, obs.L("outcome", "rejected")),
		histLatency: m.Histogram("serve_latency_s",
			[]float64{0.0005, 0.001, 0.002, 0.005, 0.01, 0.05}, dev),
		trace: o.Trace(),
	}

	for i := range sc.Reloads {
		s.push(event{timeS: sc.Reloads[i].AtS, kind: evReload, reload: i})
	}
	switch load.Mode {
	case "open":
		s.remaining = load.Requests
		s.scheduleArrival(0)
	case "closed":
		// Each client owns a pre-split stream: its think times and request
		// content depend only on its own draws and its response times.
		crngs := rng.Split().SplitN(load.Clients)
		s.clients = make([]*client, load.Clients)
		for i := range s.clients {
			s.clients[i] = &client{rng: crngs[i]}
			s.issueFromClient(0, i)
		}
	}

	for len(s.events) > 0 {
		e := heap.Pop(&s.events).(event)
		switch e.kind {
		case evArrive:
			s.handleArrive(e.timeS, e.req)
		case evBatchClose:
			if !e.batch.closed {
				s.closeBatch(e.timeS, e.batch)
			}
		case evBatchDone:
			if err := s.handleBatchDone(e.timeS, e.batch); err != nil {
				return nil, err
			}
		case evReload:
			s.handleReload(e.timeS, sc.Reloads[e.reload])
		}
	}
	if len(s.pending) != 0 || s.open != nil {
		return nil, fmt.Errorf("serve: shard %s drained with %d stranded flights", sc.Device, len(s.pending))
	}
	s.trace.Add("serve.shard", s.res.lastDoneS, dev,
		obs.L("requests", strconv.Itoa(s.res.submitted)))
	return s.res, nil
}

// scheduleArrival pushes the arrival of the next open-loop request, if any
// remain. At most one open-loop arrival is ever in the heap, so the shard's
// own rng serves the whole arrival process in order.
func (s *shard) scheduleArrival(nowS float64) {
	if s.remaining <= 0 {
		return
	}
	s.remaining--
	gap := -s.load.MeanInterarrivalS * math.Log(1-s.rng.Float64())
	t := nowS + gap
	s.push(event{timeS: t, kind: evArrive, req: s.makeRequest(s.rng, t, -1)})
}

// issueFromClient generates client i's next request at or after nowS.
func (s *shard) issueFromClient(nowS float64, i int) {
	c := s.clients[i]
	if c.issued >= s.load.RequestsPerClient {
		return
	}
	c.issued++
	gap := -s.load.MeanThinkS * math.Log(1-c.rng.Float64())
	t := nowS + gap
	s.push(event{timeS: t, kind: evArrive, req: s.makeRequest(c.rng, t, i)})
}

// makeRequest draws one request's content: a popularity-skewed shape (low
// indices dominate, which is what gives the LRU a working set) and a
// deadline tier.
func (s *shard) makeRequest(rng *xrand.Rand, arriveS float64, clientIdx int) *request {
	u := rng.Float64()
	idx := int(u * u * float64(len(s.sc.Shapes)))
	if idx >= len(s.sc.Shapes) {
		idx = len(s.sc.Shapes) - 1
	}
	shape := s.sc.Shapes[idx]
	tier := s.load.Tiers[rng.Intn(len(s.load.Tiers))]
	r := &request{
		shape:     shape,
		tier:      tier,
		deadlineS: tier * shape.NominalS,
		arriveS:   arriveS,
		client:    clientIdx,
	}
	s.reqs++
	if s.load.MalformedEvery > 0 && s.reqs%s.load.MalformedEvery == 0 {
		r.malformed = true
	}
	return r
}

// cacheKey canonicalizes a request against the model version that will
// answer it. Embedding the version makes hot-reload invalidation free.
func cacheKey(e *Entry, features []float64, deadlineS float64) string {
	return e.App + "|v" + strconv.Itoa(e.Version) + "|" + core.FeatureKey(features) +
		"|d" + strconv.FormatFloat(deadlineS, 'g', -1, 64)
}

func (s *shard) handleArrive(nowS float64, r *request) {
	if r.client < 0 {
		s.scheduleArrival(nowS)
	}
	s.res.submitted++
	s.ctrSubmitted.Inc()

	feats := r.shape.Features
	if r.malformed && len(feats) > 0 {
		feats = feats[:len(feats)-1]
	}
	e, ok := s.reg.Lookup(r.shape.App)
	if !ok {
		s.reject(nowS, r, true)
		return
	}
	if len(feats) != e.Model.FeatureDim() {
		s.reject(nowS, r, false)
		return
	}
	key := cacheKey(e, feats, r.deadlineS)
	if resp, ok := s.cache.get(key); ok {
		s.res.cacheHits++
		s.ctrHits.Inc()
		s.deliver(nowS+s.cfg.CacheHitS, r, resp)
		return
	}
	if fl, ok := s.pending[key]; ok {
		s.res.coalesced++
		s.ctrCoalesced.Inc()
		fl.waiters = append(fl.waiters, r)
		return
	}
	s.res.misses++
	fl := &flight{key: key, entry: e, features: feats, deadlineS: r.deadlineS, waiters: []*request{r}}
	s.pending[key] = fl
	if s.open == nil {
		s.open = &batch{}
		s.push(event{timeS: nowS + s.cfg.BatchWindowS, kind: evBatchClose, batch: s.open})
	}
	s.open.flights = append(s.open.flights, fl)
	if len(s.open.flights) >= s.cfg.MaxBatch {
		s.closeBatch(nowS, s.open)
	}
}

// reject answers a refused request on the short path: no prediction is made
// and no zero answer is fabricated, but the client still gets its response
// (an error) after the cache-hit cost.
func (s *shard) reject(nowS float64, r *request, noModel bool) {
	s.res.rejected++
	if noModel {
		s.res.rejectedNoModel++
		s.ctrRejNoModel.Inc()
	} else {
		s.res.rejectedBadShape++
		s.ctrRejShape.Inc()
	}
	doneS := nowS + s.cfg.CacheHitS
	if doneS > s.res.lastDoneS {
		s.res.lastDoneS = doneS
	}
	if r.client >= 0 {
		s.issueFromClient(doneS, r.client)
	}
}

// deliver records one answered request and, for a closed-loop client,
// triggers its next think cycle.
func (s *shard) deliver(doneS float64, r *request, resp Response) {
	lat := doneS - r.arriveS
	s.res.latencies = append(s.res.latencies, lat)
	s.histLatency.Observe(lat)
	if doneS > s.res.lastDoneS {
		s.res.lastDoneS = doneS
	}
	s.res.completed++
	s.ctrCompleted.Inc()
	s.res.perVersion[versionKey{resp.App, resp.Device, resp.Version}]++
	if resp.Escalated {
		s.res.escalations++
	}
	if resp.OnPareto {
		s.res.onPareto++
	}
	s.res.predEnergyJ += resp.PredEnergyJ
	s.res.predEnergyMaxJ += resp.PredEnergyMaxJ
	if r.client >= 0 {
		s.issueFromClient(doneS, r.client)
	}
}

// closeBatch seals the batch and schedules its compute completion.
func (s *shard) closeBatch(nowS float64, b *batch) {
	b.closed = true
	if b == s.open {
		s.open = nil
	}
	s.res.batches++
	s.ctrBatches.Inc()
	s.res.batchedFlights += len(b.flights)
	if len(b.flights) > s.res.maxBatchLen {
		s.res.maxBatchLen = len(b.flights)
	}
	computeS := s.cfg.BatchBaseS + s.cfg.BatchPerReqS*float64(len(b.flights))
	s.push(event{timeS: nowS + computeS, kind: evBatchDone, batch: b})
}

// handleBatchDone evaluates the batch — one PredictCurvesBatch block per
// pinned model version — and answers every waiter, including any that
// coalesced onto a flight while the batch was computing.
func (s *shard) handleBatchDone(nowS float64, b *batch) error {
	type group struct {
		entry   *Entry
		flights []*flight
	}
	var groups []*group
	byEntry := map[*Entry]*group{}
	for _, fl := range b.flights {
		g, ok := byEntry[fl.entry]
		if !ok {
			g = &group{entry: fl.entry}
			byEntry[fl.entry] = g
			groups = append(groups, g)
		}
		g.flights = append(g.flights, fl)
	}
	for _, g := range groups {
		inputs := make([][]float64, len(g.flights))
		for i, fl := range g.flights {
			inputs[i] = fl.features
		}
		curves, err := g.entry.Model.PredictCurvesBatch(inputs, s.freqs)
		if err != nil {
			return fmt.Errorf("serve: shard %s batch inference: %w", s.sc.Device, err)
		}
		for i, fl := range g.flights {
			resp := g.entry.AdviseFromCurve(curves[i], fl.deadlineS)
			delete(s.pending, fl.key)
			s.cache.put(fl.key, resp)
			s.res.batchedRequests += len(fl.waiters)
			for _, r := range fl.waiters {
				s.deliver(nowS, r, resp)
			}
		}
	}
	return nil
}

// handleReload offers a scheduled payload to the registry; a corrupt one is
// rejected and the serving version is untouched.
func (s *shard) handleReload(nowS float64, rl Reload) {
	dev := obs.L("device", s.sc.Device)
	ver, err := s.reg.Publish(rl.App, rl.Payload)
	if err != nil {
		s.res.reloadsRejected++
		s.ctrReloadRej.Inc()
		s.trace.Add("serve.reload.rejected", nowS, dev, obs.L("app", rl.App))
		return
	}
	s.res.reloads++
	s.ctrReloadOK.Inc()
	s.trace.Add("serve.reload", nowS, dev, obs.L("app", rl.App),
		obs.L("version", strconv.Itoa(ver)))
}
