package serve

import (
	"bytes"
	"fmt"
	"sort"
	"sync"
	"sync/atomic"

	"dsenergy/internal/core"
)

// Entry is one immutable published model version. Readers obtain an Entry
// from a single atomic snapshot load, so Version and Model are always a
// consistent pair — a response produced through an Entry is attributable to
// exactly that version even while a Publish races with it.
type Entry struct {
	App     string
	Device  string
	Version int
	Model   *core.Model
}

// Registry is the per-device model store with RCU-style hot-reload: the
// current app→Entry map hangs off one atomic pointer. Readers (Lookup,
// Advise) are lock-free and never block a writer; Publish validates the new
// payload, then installs a fresh copy-on-write map, so in-flight readers
// drain on the snapshot they loaded. Writers are serialized by a mutex.
type Registry struct {
	device string
	mu     sync.Mutex // serializes writers; readers never take it
	snap   atomic.Pointer[map[string]*Entry]
}

// NewRegistry returns an empty registry for one device.
func NewRegistry(device string) *Registry {
	r := &Registry{device: device}
	empty := map[string]*Entry{}
	r.snap.Store(&empty)
	return r
}

// Device returns the device name the registry serves.
func (r *Registry) Device() string { return r.device }

// Publish validates payload (a core.Model written by Save) and atomically
// installs it as the next version for app, returning the version number. A
// payload that fails to load — including every ml.ErrCorruptModel shape the
// decoder rejects — leaves the registry untouched: the previous version
// keeps serving.
func (r *Registry) Publish(app string, payload []byte) (int, error) {
	m, err := core.LoadModel(bytes.NewReader(payload))
	if err != nil {
		return 0, fmt.Errorf("serve: rejecting model %s/%s: %w", app, r.device, err)
	}
	if m.Normalized {
		return 0, fmt.Errorf("serve: model %s/%s is normalized; the advisor needs raw time/energy predictions", app, r.device)
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	old := *r.snap.Load()
	next := make(map[string]*Entry, len(old)+1)
	for k, v := range old {
		next[k] = v
	}
	ver := 1
	if e, ok := old[app]; ok {
		ver = e.Version + 1
	}
	next[app] = &Entry{App: app, Device: r.device, Version: ver, Model: m}
	r.snap.Store(&next)
	return ver, nil
}

// Lookup returns the current entry for app. The entry is immutable: callers
// may keep predicting through it across a concurrent Publish (old readers
// drain on their snapshot).
func (r *Registry) Lookup(app string) (*Entry, bool) {
	e, ok := (*r.snap.Load())[app]
	return e, ok
}

// Apps returns the published application names, sorted.
func (r *Registry) Apps() []string {
	snap := *r.snap.Load()
	out := make([]string, 0, len(snap))
	for app := range snap {
		out = append(out, app)
	}
	sort.Strings(out)
	return out
}

// Advise answers one advisory query against the current version for app:
// the recommended clock among freqs for a job of the given features and
// deadline. Mis-shaped requests are rejected with ErrBadRequest — never
// answered through Predict's silent zero fallback.
func (r *Registry) Advise(app string, features []float64, deadlineS float64, freqs []int) (Response, error) {
	e, ok := r.Lookup(app)
	if !ok {
		return Response{}, fmt.Errorf("%w: %s on %s", ErrNoModel, app, r.device)
	}
	return e.Advise(features, deadlineS, freqs)
}

// Advise evaluates one query against this pinned model version.
func (e *Entry) Advise(features []float64, deadlineS float64, freqs []int) (Response, error) {
	if len(freqs) == 0 {
		return Response{}, fmt.Errorf("%w: no candidate frequencies", ErrBadRequest)
	}
	if len(features) != e.Model.FeatureDim() {
		return Response{}, fmt.Errorf("%w: got %d features, %s schema wants %d",
			ErrBadRequest, len(features), e.App, e.Model.FeatureDim())
	}
	curves, err := e.Model.PredictCurvesBatch([][]float64{features}, freqs)
	if err != nil {
		return Response{}, err
	}
	return e.AdviseFromCurve(curves[0], deadlineS), nil
}
