package serve

import (
	"fmt"
	"io"
	"slices"
	"sort"
	"strings"
)

// VersionCount attributes completed responses to one published model
// version — the audit trail that every answer came from exactly one version.
type VersionCount struct {
	App       string
	Device    string
	Version   int
	Responses int
}

// Report is the SLO accounting of one service campaign. Every field is
// deterministic for a fixed Config: shards are merged in shard order and
// latencies are sorted before the percentiles are taken.
type Report struct {
	Shards int

	// Admission.
	Submitted        int
	Completed        int
	Rejected         int
	RejectedNoModel  int
	RejectedBadShape int

	// Request path.
	CacheHits int
	Coalesced int
	Misses    int

	// Batching.
	Batches          int
	MaxBatchLen      int
	MeanBatchFlights float64

	// Hot-reload.
	Reloads         int
	ReloadsRejected int

	// Advisory outcomes.
	Escalations    int
	OnPareto       int
	PredEnergyJ    float64
	PredEnergyMaxJ float64

	// Latency and throughput.
	P50LatencyS   float64
	P99LatencyS   float64
	MaxLatencyS   float64
	MakespanS     float64
	ThroughputRPS float64

	PerVersion []VersionCount
}

// CacheHitRate is the fraction of answered requests served from the LRU.
func (r *Report) CacheHitRate() float64 {
	if r.Completed == 0 {
		return 0
	}
	return float64(r.CacheHits) / float64(r.Completed)
}

// PredEnergySavedFrac is the predicted energy saving of the recommendations
// against always running at the fastest candidate clock.
func (r *Report) PredEnergySavedFrac() float64 {
	if r.PredEnergyMaxJ <= 0 {
		return 0
	}
	return 1 - r.PredEnergyJ/r.PredEnergyMaxJ
}

// percentile is the nearest-rank percentile of a sorted sample.
func percentile(sorted []float64, q float64) float64 {
	if len(sorted) == 0 {
		return 0
	}
	i := int(q*float64(len(sorted))+0.999999) - 1
	if i < 0 {
		i = 0
	}
	if i >= len(sorted) {
		i = len(sorted) - 1
	}
	return sorted[i]
}

// mergeResults folds the per-shard accounting, in shard order, into one
// report.
func mergeResults(results []*shardResult) *Report {
	r := &Report{Shards: len(results)}
	var lats []float64
	pv := map[versionKey]int{}
	for _, sr := range results {
		r.Submitted += sr.submitted
		r.Completed += sr.completed
		r.Rejected += sr.rejected
		r.RejectedNoModel += sr.rejectedNoModel
		r.RejectedBadShape += sr.rejectedBadShape
		r.CacheHits += sr.cacheHits
		r.Coalesced += sr.coalesced
		r.Misses += sr.misses
		r.Batches += sr.batches
		if sr.maxBatchLen > r.MaxBatchLen {
			r.MaxBatchLen = sr.maxBatchLen
		}
		r.Reloads += sr.reloads
		r.ReloadsRejected += sr.reloadsRejected
		r.Escalations += sr.escalations
		r.OnPareto += sr.onPareto
		r.PredEnergyJ += sr.predEnergyJ
		r.PredEnergyMaxJ += sr.predEnergyMaxJ
		if sr.lastDoneS > r.MakespanS {
			r.MakespanS = sr.lastDoneS
		}
		lats = append(lats, sr.latencies...)
		for k, n := range sr.perVersion {
			pv[k] += n
		}
	}
	var batchedFlights int
	for _, sr := range results {
		batchedFlights += sr.batchedFlights
	}
	if r.Batches > 0 {
		r.MeanBatchFlights = float64(batchedFlights) / float64(r.Batches)
	}
	sort.Float64s(lats)
	r.P50LatencyS = percentile(lats, 0.50)
	r.P99LatencyS = percentile(lats, 0.99)
	if n := len(lats); n > 0 {
		r.MaxLatencyS = lats[n-1]
	}
	if r.MakespanS > 0 {
		r.ThroughputRPS = float64(r.Completed) / r.MakespanS
	}
	r.PerVersion = make([]VersionCount, 0, len(pv))
	for k := range pv {
		r.PerVersion = append(r.PerVersion, VersionCount{
			App: k.App, Device: k.Device, Version: k.Version, Responses: pv[k],
		})
	}
	slices.SortFunc(r.PerVersion, func(a, b VersionCount) int {
		if c := strings.Compare(a.Device, b.Device); c != 0 {
			return c
		}
		if c := strings.Compare(a.App, b.App); c != 0 {
			return c
		}
		return a.Version - b.Version
	})
	return r
}

// WriteText renders the report deterministically.
func (r *Report) WriteText(w io.Writer) error {
	p := func(format string, args ...any) error {
		_, err := fmt.Fprintf(w, format, args...)
		return err
	}
	if err := p("shards=%d\n", r.Shards); err != nil {
		return err
	}
	if err := p("requests: submitted=%d completed=%d rejected=%d (no-model=%d bad-shape=%d)\n",
		r.Submitted, r.Completed, r.Rejected, r.RejectedNoModel, r.RejectedBadShape); err != nil {
		return err
	}
	if err := p("path: cache-hits=%d coalesced=%d misses=%d hit-rate=%.2f%%\n",
		r.CacheHits, r.Coalesced, r.Misses, 100*r.CacheHitRate()); err != nil {
		return err
	}
	if err := p("batching: batches=%d mean-flights=%.2f max-flights=%d\n",
		r.Batches, r.MeanBatchFlights, r.MaxBatchLen); err != nil {
		return err
	}
	if err := p("reloads: published=%d rejected=%d\n", r.Reloads, r.ReloadsRejected); err != nil {
		return err
	}
	if err := p("advice: on-pareto=%d escalated=%d pred-energy=%.1fJ vs-maxfreq=%.1fJ saved=%.2f%%\n",
		r.OnPareto, r.Escalations, r.PredEnergyJ, r.PredEnergyMaxJ,
		100*r.PredEnergySavedFrac()); err != nil {
		return err
	}
	if err := p("latency: p50=%.6fs p99=%.6fs max=%.6fs makespan=%.3fs throughput=%.0frps\n",
		r.P50LatencyS, r.P99LatencyS, r.MaxLatencyS, r.MakespanS, r.ThroughputRPS); err != nil {
		return err
	}
	for _, v := range r.PerVersion {
		if err := p("version %s/%s v%d responses=%d\n",
			v.Device, v.App, v.Version, v.Responses); err != nil {
			return err
		}
	}
	return nil
}
