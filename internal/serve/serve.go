// Package serve is the frequency-advisor service: the paper's trained
// time/energy predictors (§4) deployed as a long-running online system in
// the spirit of DSO's online GPU energy optimizer. A model registry keyed by
// (app, device) holds versioned domain-specific models loaded from their
// persisted form (core.LoadModel over internal/ml/persist.go) behind an
// RCU-style atomic pointer, so new versions hot-swap in while in-flight
// readers drain on the old one and a corrupt upload is rejected without
// touching the serving version. The request path answers advisory queries —
// "this input shape, deadline d: which clock, and what will it cost?" — by
// coalescing concurrent misses into Forest.PredictBatch blocks (a bounded
// batch window in simulated time) behind an LRU cache with single-flight
// miss semantics. A closed- and open-loop synthetic load generator drives
// the service to millions of requests per campaign, per-device shards fan
// out through internal/parallel, and p50/p99 latency plus throughput
// publish through internal/obs.
//
// Everything runs on simulated time and seeded randomness: a fixed Config
// produces a byte-identical Report for any worker count.
package serve

import (
	"errors"

	"dsenergy/internal/obs"
)

// Typed request-path errors. Callers branch with errors.Is; both mean the
// request was refused, never answered with a silent zero prediction.
var (
	// ErrNoModel reports that the registry has no published model for the
	// requested application on this device.
	ErrNoModel = errors.New("serve: no model published for app")
	// ErrBadRequest reports a request whose feature vector disagrees with
	// the serving model's schema width.
	ErrBadRequest = errors.New("serve: request shape disagrees with model schema")
)

// Response is one advisory answer: the recommended core clock for the
// request's deadline, the model's cost prediction at that clock, and the
// provenance (which model version answered).
type Response struct {
	App     string
	Device  string
	Version int
	// RecommendedMHz is the chosen clock: minimum predicted energy among
	// candidates predicted to meet the deadline, or the fastest predicted
	// clock when none does (Escalated).
	RecommendedMHz int
	PredTimeS      float64
	PredEnergyJ    float64
	// PredEnergyMaxJ is the predicted energy at the fastest candidate
	// clock — the max-frequency baseline the recommendation saves against.
	PredEnergyMaxJ float64
	// OnPareto reports whether the recommended clock sits on the predicted
	// speedup/normalized-energy Pareto front of the candidate set.
	OnPareto  bool
	Escalated bool
}

// Shape is one entry of a shard's request universe: an application input
// with its domain-specific features and the nominal f_max execution time
// deadlines are sized from (a property of the load, not of any model).
type Shape struct {
	App      string
	Features []float64
	NominalS float64
}

// Reload is a scheduled model publication: at AtS (simulated seconds) the
// payload is offered to the shard's registry. A corrupt payload is rejected
// and the previous version keeps serving.
type Reload struct {
	AtS     float64
	App     string
	Payload []byte
}

// Load configures a shard's synthetic request generator. The zero value of
// every field selects the documented default.
type Load struct {
	// Mode is "open" (exponential arrivals, fixed request count) or
	// "closed" (a fixed client population, each issuing its next request an
	// exponential think time after the previous response). Default "open".
	Mode string
	// Requests is the open-loop request count (default 50000).
	Requests int
	// MeanInterarrivalS is the open-loop mean gap (default 0.0005 — 2000
	// requests per simulated second per shard).
	MeanInterarrivalS float64
	// Clients is the closed-loop population size (default 8).
	Clients int
	// RequestsPerClient bounds each closed-loop client (default 1000).
	RequestsPerClient int
	// MeanThinkS is the closed-loop mean think time (default 0.002).
	MeanThinkS float64
	// Tiers are the deadline slack multipliers: a request's advisory
	// deadline is tier x shape.NominalS (default 2, 4, 8).
	Tiers []float64
	// MalformedEvery, when positive, truncates every Nth request's feature
	// vector — the mis-shaped client the admission check must reject.
	MalformedEvery int
}

func (l Load) withDefaults() Load {
	if l.Mode == "" {
		l.Mode = "open"
	}
	if l.Requests == 0 {
		l.Requests = 50000
	}
	if l.MeanInterarrivalS == 0 {
		l.MeanInterarrivalS = 0.0005
	}
	if l.Clients == 0 {
		l.Clients = 8
	}
	if l.RequestsPerClient == 0 {
		l.RequestsPerClient = 1000
	}
	if l.MeanThinkS == 0 {
		l.MeanThinkS = 0.002
	}
	if len(l.Tiers) == 0 {
		l.Tiers = []float64{2, 4, 8}
	}
	return l
}

// ShardConfig is one device's slice of the service: its initial models, its
// candidate clocks, its request universe, its load, and any scheduled
// reloads. Shards are independent — the unit internal/parallel fans out.
type ShardConfig struct {
	Device string
	// Freqs are the candidate core clocks (sorted ascending internally).
	Freqs []int
	// Models maps app name to a persisted core.Model payload (Model.Save
	// bytes) published as version 1 before the load starts.
	Models map[string][]byte
	// Reloads are scheduled mid-load publications.
	Reloads []Reload
	// Shapes is the request universe the load generator draws from.
	Shapes []Shape
	Load   Load
}

// Config drives one service campaign.
type Config struct {
	Shards []ShardConfig
	// BatchWindowS bounds how long a batch stays open collecting misses
	// (default 0.002 simulated seconds).
	BatchWindowS float64
	// MaxBatch closes a batch early at this many coalesced flights
	// (default 64).
	MaxBatch int
	// CacheCap bounds the per-shard LRU response cache (default 256
	// entries).
	CacheCap int
	// CacheHitS is the response time of a cache hit — and of a rejected
	// request, which takes the same short path (default 0.0002).
	CacheHitS float64
	// BatchBaseS + BatchPerReqS x flights is the batch compute time
	// (defaults 0.001 and 0.0001).
	BatchBaseS   float64
	BatchPerReqS float64
	// Seed drives every stochastic draw of the load.
	Seed uint64
	// Workers bounds the shard goroutines (0 = GOMAXPROCS, 1 = serial);
	// the report is byte-identical for every value.
	Workers int
	// Obs is an optional observability sink; nil disables instrumentation
	// without changing one byte of the report.
	Obs *obs.Observer
}

func (c Config) withDefaults() Config {
	if c.BatchWindowS == 0 {
		c.BatchWindowS = 0.002
	}
	if c.MaxBatch == 0 {
		c.MaxBatch = 64
	}
	if c.CacheCap == 0 {
		c.CacheCap = 256
	}
	if c.CacheHitS == 0 {
		c.CacheHitS = 0.0002
	}
	if c.BatchBaseS == 0 {
		c.BatchBaseS = 0.001
	}
	if c.BatchPerReqS == 0 {
		c.BatchPerReqS = 0.0001
	}
	return c
}
