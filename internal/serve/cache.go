package serve

import "container/list"

// lru is the per-shard admission cache: canonicalized request key →
// response. It is plain single-goroutine LRU (each shard owns one), so hit,
// miss and eviction order are fully determined by the request sequence.
// Keys embed the model version, so a hot-reload naturally invalidates: the
// first post-reload request for any input misses and recomputes, and stale
// versions age out through the LRU tail.
type lru struct {
	cap   int
	ll    *list.List // front = most recently used
	items map[string]*list.Element
}

type lruItem struct {
	key  string
	resp Response
}

func newLRU(capacity int) *lru {
	return &lru{cap: capacity, ll: list.New(), items: make(map[string]*list.Element, capacity)}
}

func (c *lru) get(key string) (Response, bool) {
	el, ok := c.items[key]
	if !ok {
		return Response{}, false
	}
	c.ll.MoveToFront(el)
	return el.Value.(*lruItem).resp, true
}

func (c *lru) put(key string, resp Response) {
	if el, ok := c.items[key]; ok {
		el.Value.(*lruItem).resp = resp
		c.ll.MoveToFront(el)
		return
	}
	c.items[key] = c.ll.PushFront(&lruItem{key: key, resp: resp})
	for c.ll.Len() > c.cap {
		tail := c.ll.Back()
		c.ll.Remove(tail)
		delete(c.items, tail.Value.(*lruItem).key)
	}
}

func (c *lru) len() int { return c.ll.Len() }
