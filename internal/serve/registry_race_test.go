package serve

import (
	"fmt"
	"runtime"
	"sync"
	"testing"
)

// TestRegistryHotReloadRace hammers the registry with concurrent Advise
// calls while the main goroutine swaps versions underneath them. Run under
// `go test -race`, this is the proof obligation of the RCU design:
//
//   - no torn reads: every response must be byte-for-byte the answer its
//     claimed version would give single-threaded, so a reader can never see
//     version N's number stapled to version M's model;
//   - monotonic visibility: a single reader never observes versions going
//     backwards across successive calls.
func TestRegistryHotReloadRace(t *testing.T) {
	const versions = 6
	payloads := make([][]byte, versions)
	for i := range payloads {
		payloads[i] = testPayload(t, uint64(100+i))
	}
	feats := testShapeFeatures[1]
	deadline := 2 * feats[0] * feats[1] * feats[2] / 4e6

	// Ground truth: replay the publish sequence single-threaded and record
	// the exact response each version gives to the probe query.
	expected := make(map[int]Response, versions)
	scratch := NewRegistry("v100")
	for _, p := range payloads {
		ver, err := scratch.Publish("ligen", p)
		if err != nil {
			t.Fatal(err)
		}
		resp, err := scratch.Advise("ligen", feats, deadline, testFreqs)
		if err != nil {
			t.Fatal(err)
		}
		if resp.Version != ver {
			t.Fatalf("single-threaded advise reported version %d after publishing %d", resp.Version, ver)
		}
		expected[ver] = resp
	}

	reg := NewRegistry("v100")
	if _, err := reg.Publish("ligen", payloads[0]); err != nil {
		t.Fatal(err)
	}

	const readers = 8
	const callsPerReader = 400
	var wg sync.WaitGroup
	errc := make(chan error, readers)
	for g := 0; g < readers; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			lastVer := 0
			for i := 0; i < callsPerReader; i++ {
				resp, err := reg.Advise("ligen", feats, deadline, testFreqs)
				if err != nil {
					errc <- err
					return
				}
				want, ok := expected[resp.Version]
				if !ok {
					errc <- fmt.Errorf("response claims unpublished version %d", resp.Version)
					return
				}
				if resp != want {
					errc <- fmt.Errorf("torn read at version %d: got %+v, want %+v", resp.Version, resp, want)
					return
				}
				if resp.Version < lastVer {
					errc <- fmt.Errorf("version went backwards: %d after %d", resp.Version, lastVer)
					return
				}
				lastVer = resp.Version
			}
			errc <- nil
		}()
	}

	// Swap versions while the readers run, yielding between publishes so the
	// swaps interleave with in-flight Advise calls.
	for _, p := range payloads[1:] {
		if _, err := reg.Publish("ligen", p); err != nil {
			t.Fatal(err)
		}
		runtime.Gosched()
	}
	wg.Wait()
	close(errc)
	for err := range errc {
		if err != nil {
			t.Error(err)
		}
	}

	// After the dust settles every reader must see the final version.
	final, err := reg.Advise("ligen", feats, deadline, testFreqs)
	if err != nil {
		t.Fatal(err)
	}
	if final.Version != versions {
		t.Errorf("final version = %d, want %d", final.Version, versions)
	}
}
