package serve

import "testing"

var benchMHz int // defeats dead-code elimination in BenchmarkAdvise

// BenchmarkServeCampaign drives the full two-shard campaign — open- and
// closed-loop load, a hot-reload and a rejected corrupt upload — per
// iteration, reporting service throughput as answered requests per second
// of wall time (model training is excluded from the timer).
func BenchmarkServeCampaign(b *testing.B) {
	cfg := testConfig(b, 0, nil)
	served := 0
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rep, err := Run(cfg)
		if err != nil {
			b.Fatal(err)
		}
		served += rep.Completed
	}
	b.ReportMetric(float64(served)/b.Elapsed().Seconds(), "req/s")
}

// BenchmarkAdvise measures one uncached advisory query end to end — lookup,
// batched curve prediction and the deadline decision — the service's
// cache-miss hot path.
func BenchmarkAdvise(b *testing.B) {
	reg := NewRegistry("v100")
	if _, err := reg.Publish("ligen", testPayload(b, 1)); err != nil {
		b.Fatal(err)
	}
	feats := testShapeFeatures[2]
	deadline := 2 * feats[0] * feats[1] * feats[2] / 4e6
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		resp, err := reg.Advise("ligen", feats, deadline, testFreqs)
		if err != nil {
			b.Fatal(err)
		}
		benchMHz = resp.RecommendedMHz
	}
}
