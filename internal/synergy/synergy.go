// Package synergy provides a portable energy-profiling and frequency-scaling
// API over simulated GPUs, reproducing the role of the SYnergy library the
// paper uses: a single vendor-neutral interface wrapping NVML (NVIDIA) and
// ROCm-SMI (AMD) that can enumerate devices, scale the core clock, submit
// kernels, and attribute energy to each submission — including per-kernel
// frequency scaling, the capability the paper's future work builds on.
package synergy

import (
	"fmt"
	"sync"

	"dsenergy/internal/gpusim"
	"dsenergy/internal/kernels"
)

// Platform owns the set of visible devices. It mirrors SYnergy's runtime,
// which discovers every GPU reachable through the vendor libraries.
type Platform struct {
	mu      sync.Mutex
	devices []*Queue
}

// NewPlatform builds a platform exposing one queue per spec, with device
// noise generators derived from seed so that independent platforms constructed
// with the same seed observe identical measurements.
func NewPlatform(seed uint64, specs ...gpusim.Spec) (*Platform, error) {
	p := &Platform{}
	for i, s := range specs {
		d, err := gpusim.New(s, seed+uint64(i)*0x51_7c_c1b7_2722_0a95)
		if err != nil {
			return nil, err
		}
		p.devices = append(p.devices, &Queue{dev: d})
	}
	return p, nil
}

// Queues returns the device queues in discovery order.
func (p *Platform) Queues() []*Queue {
	p.mu.Lock()
	defer p.mu.Unlock()
	out := make([]*Queue, len(p.devices))
	copy(out, p.devices)
	return out
}

// QueueByName returns the queue of the device with the given name.
func (p *Platform) QueueByName(name string) (*Queue, error) {
	p.mu.Lock()
	defer p.mu.Unlock()
	for _, q := range p.devices {
		if q.dev.Spec().Name == name {
			return q, nil
		}
	}
	return nil, fmt.Errorf("synergy: no device named %q", name)
}

// Event records one profiled kernel submission, in the style of SYnergy's
// per-kernel energy events.
type Event struct {
	Kernel  string
	FreqMHz int
	TimeS   float64
	EnergyJ float64
}

// Queue is an in-order execution queue bound to one device, with per-kernel
// energy attribution. Queue is safe for concurrent use; submissions are
// serialized, which models the single hardware queue the paper profiles.
type Queue struct {
	mu     sync.Mutex
	dev    *gpusim.Device
	events []Event
	// pinned, when non-zero, is the frequency applied to every submission
	// (the paper's per-application scaling mode).
	pinned int
}

// Device exposes the underlying simulated device (read-only use intended).
func (q *Queue) Device() *gpusim.Device { return q.dev }

// Spec returns the device description.
func (q *Queue) Spec() gpusim.Spec { return q.dev.Spec() }

// SupportedFreqsMHz returns the device's selectable core frequencies.
func (q *Queue) SupportedFreqsMHz() []int {
	fs := q.dev.Spec().CoreFreqsMHz
	out := make([]int, len(fs))
	copy(out, fs)
	return out
}

// SetCoreFreqMHz pins every subsequent submission to the given core clock.
func (q *Queue) SetCoreFreqMHz(mhz int) error {
	q.mu.Lock()
	defer q.mu.Unlock()
	if !q.dev.Spec().HasFreq(mhz) {
		return fmt.Errorf("synergy: %s: unsupported frequency %d MHz", q.dev.Spec().Name, mhz)
	}
	q.pinned = mhz
	return q.dev.SetCoreFreqMHz(mhz)
}

// ResetFrequency restores the vendor baseline (NVIDIA default clock or AMD
// auto performance level).
func (q *Queue) ResetFrequency() {
	q.mu.Lock()
	defer q.mu.Unlock()
	q.pinned = 0
	q.dev.ResetCoreFreq()
}

// BaselineFreqMHz returns the frequency used as the 1.0 speedup baseline.
func (q *Queue) BaselineFreqMHz() int { return q.dev.Spec().BaselineFreqMHz() }

// Submit runs the kernel profile at the queue's current frequency, records an
// energy event, and returns the observation.
func (q *Queue) Submit(p kernels.Profile) (gpusim.Result, error) {
	q.mu.Lock()
	defer q.mu.Unlock()
	r, err := q.dev.Run(p)
	if err != nil {
		return gpusim.Result{}, err
	}
	q.events = append(q.events, Event{
		Kernel: p.Name, FreqMHz: q.dev.CoreFreqMHz(),
		TimeS: r.TimeS, EnergyJ: r.EnergyJ,
	})
	return r, nil
}

// SubmitAt runs the kernel at an explicit per-kernel frequency without
// disturbing the queue's pinned clock — SYnergy's per-kernel scaling mode.
func (q *Queue) SubmitAt(p kernels.Profile, mhz int) (gpusim.Result, error) {
	q.mu.Lock()
	defer q.mu.Unlock()
	r, err := q.dev.RunAt(p, mhz)
	if err != nil {
		return gpusim.Result{}, err
	}
	q.events = append(q.events, Event{Kernel: p.Name, FreqMHz: mhz, TimeS: r.TimeS, EnergyJ: r.EnergyJ})
	return r, nil
}

// Events returns a copy of the recorded per-kernel energy events.
func (q *Queue) Events() []Event {
	q.mu.Lock()
	defer q.mu.Unlock()
	out := make([]Event, len(q.events))
	copy(out, q.events)
	return out
}

// DrainEvents returns the recorded events and clears the log.
func (q *Queue) DrainEvents() []Event {
	q.mu.Lock()
	defer q.mu.Unlock()
	out := q.events
	q.events = nil
	return out
}

// EnergyCounterJ exposes the device's cumulative energy counter.
func (q *Queue) EnergyCounterJ() float64 {
	q.mu.Lock()
	defer q.mu.Unlock()
	return q.dev.EnergyCounterJ()
}

// Measurement is an averaged observation of a workload at one frequency.
type Measurement struct {
	FreqMHz int
	TimeS   float64
	EnergyJ float64
}

// Workload is anything that can run on a queue and report aggregate time and
// energy — both applications implement it. The paper's training harness
// launches a workload repeatedly while sweeping the clock.
type Workload interface {
	// Name identifies the workload in reports.
	Name() string
	// RunOn executes the whole workload on q at q's current frequency and
	// returns total wall time and energy.
	RunOn(q *Queue) (timeS, energyJ float64, err error)
}

// MeasureAt runs w on q at the given frequency reps times and returns the
// mean observation, reproducing the paper's five-repetition protocol.
func MeasureAt(q *Queue, w Workload, mhz, reps int) (Measurement, error) {
	if reps <= 0 {
		reps = 1
	}
	if err := q.SetCoreFreqMHz(mhz); err != nil {
		return Measurement{}, err
	}
	defer q.ResetFrequency()
	var sumT, sumE float64
	for i := 0; i < reps; i++ {
		t, e, err := w.RunOn(q)
		if err != nil {
			return Measurement{}, fmt.Errorf("synergy: measuring %s at %d MHz: %w", w.Name(), mhz, err)
		}
		sumT += t
		sumE += e
	}
	n := float64(reps)
	return Measurement{FreqMHz: mhz, TimeS: sumT / n, EnergyJ: sumE / n}, nil
}

// Sweep measures w at every frequency in freqs (reps repetitions each) and
// returns the observations in the same order.
func Sweep(q *Queue, w Workload, freqs []int, reps int) ([]Measurement, error) {
	out := make([]Measurement, 0, len(freqs))
	for _, f := range freqs {
		m, err := MeasureAt(q, w, f, reps)
		if err != nil {
			return nil, err
		}
		out = append(out, m)
	}
	return out, nil
}
