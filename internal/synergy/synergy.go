// Package synergy provides a portable energy-profiling and frequency-scaling
// API over simulated GPUs, reproducing the role of the SYnergy library the
// paper uses: a single vendor-neutral interface wrapping NVML (NVIDIA) and
// ROCm-SMI (AMD) that can enumerate devices, scale the core clock, submit
// kernels, and attribute energy to each submission — including per-kernel
// frequency scaling, the capability the paper's future work builds on.
package synergy

import (
	"context"
	"fmt"
	"strconv"
	"sync"

	"dsenergy/internal/faults"
	"dsenergy/internal/gpusim"
	"dsenergy/internal/kernels"
	"dsenergy/internal/obs"
	"dsenergy/internal/parallel"
)

// Platform owns the set of visible devices. It mirrors SYnergy's runtime,
// which discovers every GPU reachable through the vendor libraries.
type Platform struct {
	mu      sync.Mutex
	devices []*Queue
}

// NewPlatform builds a platform exposing one queue per spec, with device
// noise generators derived from seed so that independent platforms constructed
// with the same seed observe identical measurements. Device names must be
// unique: QueueByName is the addressing scheme of everything above this
// layer, and a duplicate would make it silently ambiguous.
func NewPlatform(seed uint64, specs ...gpusim.Spec) (*Platform, error) {
	p := &Platform{}
	seen := make(map[string]bool, len(specs))
	for i, s := range specs {
		if seen[s.Name] {
			return nil, fmt.Errorf("synergy: duplicate device name %q (device %d); QueueByName would be ambiguous", s.Name, i)
		}
		seen[s.Name] = true
		d, err := gpusim.New(s, seed+uint64(i)*0x51_7c_c1b7_2722_0a95)
		if err != nil {
			return nil, err
		}
		p.devices = append(p.devices, &Queue{dev: d})
	}
	return p, nil
}

// SetObserver attaches an observability sink to every queue of the
// platform (nil detaches). Call before measurements start.
func (p *Platform) SetObserver(o *obs.Observer) {
	for _, q := range p.Queues() {
		q.SetObserver(o)
	}
}

// Queues returns the device queues in discovery order.
func (p *Platform) Queues() []*Queue {
	p.mu.Lock()
	defer p.mu.Unlock()
	out := make([]*Queue, len(p.devices))
	copy(out, p.devices)
	return out
}

// QueueByName returns the queue of the device with the given name.
func (p *Platform) QueueByName(name string) (*Queue, error) {
	p.mu.Lock()
	defer p.mu.Unlock()
	for _, q := range p.devices {
		if q.dev.Spec().Name == name {
			return q, nil
		}
	}
	return nil, fmt.Errorf("synergy: no device named %q", name)
}

// Event records one profiled kernel submission, in the style of SYnergy's
// per-kernel energy events. FreqMHz is the clock the submission actually ran
// at: with a thermal-throttle window active it is below the requested clock,
// so event logs (and everything trained on them) stay truthful under
// throttling.
type Event struct {
	Kernel  string
	FreqMHz int
	TimeS   float64
	EnergyJ float64
	// Faulted marks a submission aborted by an injected fault; TimeS and
	// EnergyJ then hold the partial cost burned before the abort.
	Faulted bool
}

// Queue is an in-order execution queue bound to one device, with per-kernel
// energy attribution. Queue is safe for concurrent use; submissions are
// serialized, which models the single hardware queue the paper profiles.
type Queue struct {
	mu     sync.Mutex
	dev    *gpusim.Device
	events []Event
	// pinned, when non-zero, is the frequency applied to every submission
	// (the paper's per-application scaling mode).
	pinned int
	// inj, when non-nil, is consulted before every submission and clock set
	// (fault injection); nil queues follow the exact fault-free code path.
	inj   *faults.DeviceInjector
	stats FaultStats
	// obsv carries the queue's trace stream (forked per sweep clone, absorbed
	// in task order); om holds the metric handles, resolved once in
	// SetObserver and shared by every clone. Both are no-ops when unset.
	obsv *obs.Observer
	om   queueObsHandles
}

// queueObsHandles are the pre-resolved metric handles of one device queue.
// The zero value (all-nil handles) disables every increment.
type queueObsHandles struct {
	transient    *obs.Counter
	permanent    *obs.Counter
	throttled    *obs.Counter
	clockRejects *obs.Counter
	measurements *obs.Counter
	wasted       *obs.Histogram
}

// wastedTimeBounds buckets the simulated seconds burned by aborted
// submissions (spanning microsecond kernels to multi-second workloads).
var wastedTimeBounds = []float64{1e-6, 1e-5, 1e-4, 1e-3, 1e-2, 0.1, 1, 10}

// SetObserver attaches an observability sink to the queue and its device:
// fault/throttle/clock-reject counters, a wasted-time histogram, and the
// trace stream sweep spans are recorded on. All derived totals are
// functions of the injector's pre-split fault streams, so they are
// deterministic and live in the stable tier. Call before the queue is used
// from worker goroutines; a nil observer detaches.
func (q *Queue) SetObserver(o *obs.Observer) {
	q.mu.Lock()
	defer q.mu.Unlock()
	q.obsv = o
	if o == nil {
		q.om = queueObsHandles{}
		q.dev.SetObserver(nil)
		return
	}
	m := o.Metrics()
	dl := obs.L("device", q.dev.Spec().Name)
	q.om = queueObsHandles{
		transient:    m.Counter("synergy_faults_transient_total", dl),
		permanent:    m.Counter("synergy_faults_permanent_total", dl),
		throttled:    m.Counter("synergy_throttled_submissions_total", dl),
		clockRejects: m.Counter("synergy_clock_rejects_total", dl),
		measurements: m.Counter("synergy_measurements_total", dl),
		wasted:       m.Histogram("synergy_wasted_time_seconds", wastedTimeBounds, dl),
	}
	q.dev.SetObserver(o)
}

// FaultStats aggregates the injected faults a queue has observed.
type FaultStats struct {
	Transient     int // retryable kernel faults
	Permanent     int // submissions failed on a dead device (first one included)
	Throttled     int // submissions run below the requested clock
	ClockRejects  int // rejected SetCoreFreq calls
	WastedTimeS   float64
	WastedEnergyJ float64
}

// Device exposes the underlying simulated device (read-only use intended).
func (q *Queue) Device() *gpusim.Device { return q.dev }

// Spec returns the device description.
func (q *Queue) Spec() gpusim.Spec { return q.dev.Spec() }

// SupportedFreqsMHz returns the device's selectable core frequencies.
func (q *Queue) SupportedFreqsMHz() []int {
	fs := q.dev.Spec().CoreFreqsMHz
	out := make([]int, len(fs))
	copy(out, fs)
	return out
}

// SetCoreFreqMHz pins every subsequent submission to the given core clock.
// With a fault injector attached the set can be rejected (flaky vendor
// library) or fail permanently (dead device); the previous clock is kept.
func (q *Queue) SetCoreFreqMHz(mhz int) error {
	q.mu.Lock()
	defer q.mu.Unlock()
	if !q.dev.Spec().HasFreq(mhz) {
		return fmt.Errorf("synergy: %s: unsupported frequency %d MHz", q.dev.Spec().Name, mhz)
	}
	if q.inj != nil {
		if err := q.inj.OnClockSet(); err != nil {
			q.stats.ClockRejects++
			q.om.clockRejects.Inc()
			return fmt.Errorf("synergy: %s: setting %d MHz: %w", q.dev.Spec().Name, mhz, err)
		}
	}
	q.pinned = mhz
	return q.dev.SetCoreFreqMHz(mhz)
}

// PinnedFreqMHz returns the currently pinned clock (0 when the queue runs at
// the vendor baseline). Cluster-wide frequency control uses it to roll back
// partially applied settings.
func (q *Queue) PinnedFreqMHz() int {
	q.mu.Lock()
	defer q.mu.Unlock()
	return q.pinned
}

// SetFaultInjector attaches a per-device fault injector consulted on every
// submission and clock set; nil detaches it. Queues without an injector
// follow the exact fault-free execution path, so attaching an empty fault
// plan is indistinguishable from never attaching one.
func (q *Queue) SetFaultInjector(inj *faults.DeviceInjector) {
	q.mu.Lock()
	defer q.mu.Unlock()
	q.inj = inj
}

// FaultStats returns the injected-fault counters of this queue.
func (q *Queue) FaultStats() FaultStats {
	q.mu.Lock()
	defer q.mu.Unlock()
	return q.stats
}

// ResetFrequency restores the vendor baseline (NVIDIA default clock or AMD
// auto performance level).
func (q *Queue) ResetFrequency() {
	q.mu.Lock()
	defer q.mu.Unlock()
	q.pinned = 0
	q.dev.ResetCoreFreq()
}

// BaselineFreqMHz returns the frequency used as the 1.0 speedup baseline.
func (q *Queue) BaselineFreqMHz() int { return q.dev.Spec().BaselineFreqMHz() }

// Submit runs the kernel profile at the queue's current frequency, records an
// energy event, and returns the observation.
func (q *Queue) Submit(p kernels.Profile) (gpusim.Result, error) {
	q.mu.Lock()
	defer q.mu.Unlock()
	if q.inj != nil {
		return q.submitInjected(p, q.dev.CoreFreqMHz())
	}
	r, err := q.dev.Run(p)
	if err != nil {
		return gpusim.Result{}, err
	}
	q.events = append(q.events, Event{
		Kernel: p.Name, FreqMHz: q.dev.CoreFreqMHz(),
		TimeS: r.TimeS, EnergyJ: r.EnergyJ,
	})
	return r, nil
}

// SubmitAt runs the kernel at an explicit per-kernel frequency without
// disturbing the queue's pinned clock — SYnergy's per-kernel scaling mode.
func (q *Queue) SubmitAt(p kernels.Profile, mhz int) (gpusim.Result, error) {
	q.mu.Lock()
	defer q.mu.Unlock()
	if q.inj != nil {
		if !q.dev.Spec().HasFreq(mhz) {
			return gpusim.Result{}, fmt.Errorf("synergy: %s: unsupported frequency %d MHz", q.dev.Spec().Name, mhz)
		}
		return q.submitInjected(p, mhz)
	}
	r, err := q.dev.RunAt(p, mhz)
	if err != nil {
		return gpusim.Result{}, err
	}
	q.events = append(q.events, Event{Kernel: p.Name, FreqMHz: mhz, TimeS: r.TimeS, EnergyJ: r.EnergyJ})
	return r, nil
}

// submitInjected is the fault-aware submission path: it consults the
// injector, applies any thermal-throttle cap to the effective clock, charges
// partially executed work on an abort, and logs a truthful event either way.
// Called with q.mu held.
func (q *Queue) submitInjected(p kernels.Profile, mhz int) (gpusim.Result, error) {
	dec := q.inj.OnSubmit()
	eff := mhz
	if dec.CapMHz > 0 && dec.CapMHz < eff {
		eff = q.dev.Spec().FloorFreqMHz(dec.CapMHz)
		q.stats.Throttled++
		q.om.throttled.Inc()
	}
	if dec.Err != nil {
		if faults.IsTransient(dec.Err) {
			q.stats.Transient++
			q.om.transient.Inc()
		} else {
			q.stats.Permanent++
			q.om.permanent.Inc()
		}
		// The aborted attempt still burned time and energy up to the fault
		// point. Charge the noiseless partial cost: it keeps the energy
		// counter truthful without consuming measurement-noise draws, so the
		// noise stream (and with it every later observation) is unaffected
		// by whether an abort happened before it.
		if err := p.Validate(); err != nil {
			return gpusim.Result{}, err
		}
		b := q.dev.Analytic(p, eff)
		wastedTimeS := b.TimeS * dec.Frac
		wastedEnergyJ := b.EnergyJ * dec.Frac
		q.dev.AddEnergyJ(wastedEnergyJ)
		q.stats.WastedTimeS += wastedTimeS
		q.stats.WastedEnergyJ += wastedEnergyJ
		q.om.wasted.Observe(wastedTimeS)
		q.events = append(q.events, Event{
			Kernel: p.Name, FreqMHz: eff,
			TimeS: wastedTimeS, EnergyJ: wastedEnergyJ, Faulted: true,
		})
		return gpusim.Result{}, fmt.Errorf("synergy: %s: %s: %w", q.dev.Spec().Name, p.Name, dec.Err)
	}
	r, err := q.dev.RunAt(p, eff)
	if err != nil {
		return gpusim.Result{}, err
	}
	q.events = append(q.events, Event{Kernel: p.Name, FreqMHz: eff, TimeS: r.TimeS, EnergyJ: r.EnergyJ})
	return r, nil
}

// Events returns a copy of the recorded per-kernel energy events.
func (q *Queue) Events() []Event {
	q.mu.Lock()
	defer q.mu.Unlock()
	out := make([]Event, len(q.events))
	copy(out, q.events)
	return out
}

// EventCount returns the number of events recorded so far. Together with
// EventsFrom it lets a caller attribute the cost of a span of submissions
// (e.g. one failed workload attempt) without draining the log.
func (q *Queue) EventCount() int {
	q.mu.Lock()
	defer q.mu.Unlock()
	return len(q.events)
}

// EventsFrom returns a copy of the events recorded at or after index from.
func (q *Queue) EventsFrom(from int) []Event {
	q.mu.Lock()
	defer q.mu.Unlock()
	if from < 0 {
		from = 0
	}
	if from >= len(q.events) {
		return nil
	}
	out := make([]Event, len(q.events)-from)
	copy(out, q.events[from:])
	return out
}

// DrainEvents returns the recorded events and clears the log.
func (q *Queue) DrainEvents() []Event {
	q.mu.Lock()
	defer q.mu.Unlock()
	out := q.events
	q.events = nil
	return out
}

// EnergyCounterJ exposes the device's cumulative energy counter.
func (q *Queue) EnergyCounterJ() float64 {
	q.mu.Lock()
	defer q.mu.Unlock()
	return q.dev.EnergyCounterJ()
}

// AnalyzeCurve evaluates the noiseless analytical model for profile p at
// every frequency in freqs in one batch — one compiled-profile lookup
// amortized over the whole list, each Breakdown bit-identical to a
// single-frequency AnalyzeAt. Unlike Submit it consumes no noise draws and
// records no events: it is the bulk read path for planners and tuners that
// want a whole frequency curve.
func (q *Queue) AnalyzeCurve(p kernels.Profile, freqs []int) []gpusim.Breakdown {
	q.mu.Lock()
	defer q.mu.Unlock()
	return q.dev.AnalyzeCurve(p, freqs)
}

// KernelProfiler is implemented by workloads that can enumerate their kernel
// profiles without running them (both applications can). Sweeps use it to
// publish each kernel's dense analytic curve once, up front, so parallel
// workers only ever take the lock-free cache read path.
type KernelProfiler interface {
	Profiles() []kernels.Profile
}

// warmAnalytic precompiles the analytic curves of w's kernels at freqs on
// the shared device cache. Purely an amortization: the model is a pure
// function, so warming changes no measurement, no noise draw and no event —
// it only moves the one-time compile+publish of each profile out of the
// measured (possibly parallel) region.
func (q *Queue) warmAnalytic(w Workload, freqs []int) {
	pr, ok := w.(KernelProfiler)
	if !ok {
		return
	}
	q.mu.Lock()
	defer q.mu.Unlock()
	for _, p := range pr.Profiles() {
		q.dev.AnalyzeCurve(p, freqs)
	}
}

// Measurement is an averaged observation of a workload at one frequency.
// FreqMHz is the requested clock; EffFreqMHz is the lowest clock any
// submission of the measurement actually ran at. The two differ only when a
// thermal-throttle window silently capped the device — reporting the
// effective clock keeps online tuners and model-training datasets from being
// polluted by capped probes mislabeled with the requested frequency.
type Measurement struct {
	FreqMHz    int
	EffFreqMHz int
	TimeS      float64
	EnergyJ    float64
}

// Throttled reports whether any submission of the measurement ran below the
// requested clock.
func (m Measurement) Throttled() bool { return m.EffFreqMHz != m.FreqMHz }

// Workload is anything that can run on a queue and report aggregate time and
// energy — both applications implement it. The paper's training harness
// launches a workload repeatedly while sweeping the clock.
type Workload interface {
	// Name identifies the workload in reports.
	Name() string
	// RunOn executes the whole workload on q at q's current frequency and
	// returns total wall time and energy.
	RunOn(q *Queue) (timeS, energyJ float64, err error)
}

// MeasureAt runs w on q at the given frequency reps times and returns the
// mean observation, reproducing the paper's five-repetition protocol.
func MeasureAt(q *Queue, w Workload, mhz, reps int) (Measurement, error) {
	if reps <= 0 {
		reps = 1
	}
	if err := q.SetCoreFreqMHz(mhz); err != nil {
		return Measurement{}, err
	}
	defer q.ResetFrequency()
	first := q.EventCount()
	var sumT, sumE float64
	for i := 0; i < reps; i++ {
		t, e, err := w.RunOn(q)
		if err != nil {
			return Measurement{}, fmt.Errorf("synergy: measuring %s at %d MHz: %w", w.Name(), mhz, err)
		}
		sumT += t
		sumE += e
	}
	// The effective clock is the lowest clock any submission ran at: equal
	// to the request on a healthy device, below it inside a throttle window.
	effMHz := mhz
	for _, ev := range q.EventsFrom(first) {
		if ev.FreqMHz < effMHz {
			effMHz = ev.FreqMHz
		}
	}
	n := float64(reps)
	// One span per measurement, on simulated time: the duration is the total
	// simulated seconds across the repetitions, so the trace is a pure
	// function of the measured workload, never of the host machine.
	q.obsv.Trace().Add("synergy.measure", sumT,
		obs.L("device", q.dev.Spec().Name),
		obs.L("workload", w.Name()),
		obs.L("freq_mhz", strconv.Itoa(mhz)),
		obs.L("reps", strconv.Itoa(reps)))
	q.om.measurements.Inc()
	return Measurement{FreqMHz: mhz, EffFreqMHz: effMHz, TimeS: sumT / n, EnergyJ: sumE / n}, nil
}

// sweepTask pairs one requested frequency with the private queue clone that
// will measure it.
type sweepTask struct {
	freq  int
	clone *Queue
}

// forkSweepTasks derives one private queue clone per frequency, in frequency
// order, under the parent's lock. Each clone gets a forked device (split
// noise stream, fresh energy counter, shared analytic cache) and — when fault
// injection is active — a forked per-device injector, so every frequency's
// stochastic state is fixed here, before any task reaches a worker pool.
// This is the pre-split step of the determinism contract: a clone's draws
// depend only on its position in freqs, never on scheduling.
func (q *Queue) forkSweepTasks(freqs []int) []sweepTask {
	q.mu.Lock()
	defer q.mu.Unlock()
	tasks := make([]sweepTask, len(freqs))
	for i, f := range freqs {
		// Metric handles are shared (order-invariant accumulation); the trace
		// is forked per clone and absorbed back in task order, exactly like
		// the RNG and fault streams.
		clone := &Queue{dev: q.dev.Fork(), pinned: q.pinned, obsv: q.obsv.Fork(), om: q.om}
		if q.inj != nil {
			clone.inj = q.inj.Fork()
		}
		tasks[i] = sweepTask{freq: f, clone: clone}
	}
	return tasks
}

// absorbSweep folds the clones' observable state back into q in task order:
// event logs concatenate, energy counters and fault statistics accumulate,
// and injector state merges. Because absorption is ordered by task index, the
// parent's state after a sweep is independent of how the pool scheduled it.
func (q *Queue) absorbSweep(tasks []sweepTask) {
	q.mu.Lock()
	defer q.mu.Unlock()
	for _, t := range tasks {
		c := t.clone
		q.events = append(q.events, c.events...)
		q.dev.AddEnergyJ(c.dev.EnergyCounterJ())
		q.stats.absorb(c.stats)
		if q.inj != nil && c.inj != nil {
			q.inj.Absorb(c.inj)
		}
		if q.obsv != nil && c.obsv != nil {
			q.obsv.Trace().Absorb(c.obsv.Trace())
		}
	}
}

// absorb accumulates another queue's fault counters into s.
func (s *FaultStats) absorb(o FaultStats) {
	s.Transient += o.Transient
	s.Permanent += o.Permanent
	s.Throttled += o.Throttled
	s.ClockRejects += o.ClockRejects
	s.WastedTimeS += o.WastedTimeS
	s.WastedEnergyJ += o.WastedEnergyJ
}

// sweep is the shared engine behind Sweep and ParallelSweep: fork one clone
// per frequency, measure every frequency on its own clone (serially or on a
// worker pool — the bytes are identical either way), then absorb the clones
// back in frequency order. On any error nothing is absorbed: the parent
// queue is left exactly as it was, so even failed sweeps are deterministic
// regardless of which tasks happened to run before cancellation.
func sweep(q *Queue, w Workload, freqs []int, reps, workers int) ([]Measurement, error) {
	q.warmAnalytic(w, freqs)
	tasks := q.forkSweepTasks(freqs)
	out := make([]Measurement, len(freqs))
	err := parallel.ForEachChunked(context.Background(), len(tasks), workers, 0, func(_ context.Context, lo, hi int) error {
		for i := lo; i < hi; i++ {
			m, err := MeasureAt(tasks[i].clone, w, tasks[i].freq, reps)
			if err != nil {
				return err
			}
			out[i] = m
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	q.absorbSweep(tasks)
	return out, nil
}

// Sweep measures w at every frequency in freqs (reps repetitions each) and
// returns the observations in the same order. Each frequency runs on a
// private clone of q forked in frequency order, so Sweep's output is defined
// purely by (queue state, workload, freqs, reps) — ParallelSweep produces the
// same bytes from the same inputs.
func Sweep(q *Queue, w Workload, freqs []int, reps int) ([]Measurement, error) {
	return sweep(q, w, freqs, reps, 1)
}

// ParallelSweep is Sweep on a bounded worker pool: workers <= 0 selects
// GOMAXPROCS, workers == 1 is exactly Sweep. The per-frequency clones are
// forked before the pool starts, so the measurements, the parent queue's
// event log, its energy counter and its fault statistics are byte-identical
// to the serial sweep for every worker count and schedule.
func ParallelSweep(q *Queue, w Workload, freqs []int, reps, workers int) ([]Measurement, error) {
	return sweep(q, w, freqs, reps, workers)
}

// forkWorkloadTasks pre-splits clones for a multi-workload sweep set: for
// each workload, in order, one clone per frequency. All forking happens here,
// before any measurement, so SweepSet's task pool can interleave workloads
// freely while drawing exactly the split sequence a sequence of Sweep calls
// would have drawn.
func forkWorkloadTasks(q *Queue, workloads int, freqs []int) [][]sweepTask {
	sets := make([][]sweepTask, workloads)
	for i := range sets {
		sets[i] = q.forkSweepTasks(freqs)
	}
	return sets
}

// SweepSet sweeps several workloads over the same frequency grid through one
// shared worker pool and returns per-workload measurement slices in input
// order. It is byte-identical to calling Sweep(q, w, freqs, reps) for each
// workload in order — the clones are forked workload-by-workload up front,
// and absorbed workload-by-workload afterwards — but exposes all
// len(workloads)×len(freqs) tasks to the pool at once, which is what makes
// dataset generation scale past the per-sweep task count.
func SweepSet(q *Queue, workloads []Workload, freqs []int, reps, workers int) ([][]Measurement, error) {
	for _, w := range workloads {
		q.warmAnalytic(w, freqs)
	}
	sets := forkWorkloadTasks(q, len(workloads), freqs)
	nf := len(freqs)
	out := make([][]Measurement, len(workloads))
	for i := range out {
		out[i] = make([]Measurement, nf)
	}
	err := parallel.ForEachChunked(context.Background(), len(workloads)*nf, workers, 0, func(_ context.Context, lo, hi int) error {
		for ti := lo; ti < hi; ti++ {
			wi, fi := ti/nf, ti%nf
			t := sets[wi][fi]
			m, err := MeasureAt(t.clone, workloads[wi], t.freq, reps)
			if err != nil {
				return err
			}
			out[wi][fi] = m
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	for _, set := range sets {
		q.absorbSweep(set)
	}
	return out, nil
}
