package synergy

import (
	"bytes"
	"strings"
	"testing"

	"dsenergy/internal/faults"
	"dsenergy/internal/obs"
)

// observedSweepPair is sweepPair with a fresh observer attached to each side.
func observedSweepPair(t *testing.T, plan *faults.Plan) (qa, qb *Queue, oa, ob *obs.Observer) {
	t.Helper()
	qa, qb = sweepPair(t, plan)
	oa, ob = obs.NewObserver(), obs.NewObserver()
	qa.SetObserver(oa)
	qb.SetObserver(ob)
	return qa, qb, oa, ob
}

func exportAll(t *testing.T, o *obs.Observer) (metrics, trace string) {
	t.Helper()
	var m, tr bytes.Buffer
	if err := o.WriteMetricsText(&m); err != nil {
		t.Fatal(err)
	}
	if err := o.WriteTraceText(&tr); err != nil {
		t.Fatal(err)
	}
	return m.String(), tr.String()
}

func TestSweepTraceIdenticalSerialVsParallel(t *testing.T) {
	qa, qb, oa, ob := observedSweepPair(t, nil)
	freqs := qa.SupportedFreqsMHz()
	if _, err := Sweep(qa, sweepWorkload{testProfile()}, freqs, 3); err != nil {
		t.Fatal(err)
	}
	if _, err := ParallelSweep(qb, sweepWorkload{testProfile()}, freqs, 3, 8); err != nil {
		t.Fatal(err)
	}
	requireQueuesIdentical(t, qa, qb, "observed sweep")
	ma, ta := exportAll(t, oa)
	mb, tb := exportAll(t, ob)
	if ma != mb {
		t.Errorf("metric exports diverged between serial and parallel sweep:\n%s\nvs\n%s", ma, mb)
	}
	if ta != tb {
		t.Errorf("trace exports diverged between serial and parallel sweep:\n%s\nvs\n%s", ta, tb)
	}
	if oa.Trace().Len() != len(freqs) {
		t.Errorf("trace has %d spans, want one per frequency (%d)", oa.Trace().Len(), len(freqs))
	}
	if !strings.Contains(ma, "synergy_measurements_total{device=NVIDIA V100}") {
		t.Errorf("measurement counter missing from export:\n%s", ma)
	}
}

func TestObserverDoesNotPerturbSweep(t *testing.T) {
	// Core acceptance criterion at this layer: an attached observer must not
	// change a single observable byte of the sweep.
	qa, qb := sweepPair(t, nil)
	qb.SetObserver(obs.NewObserver())
	freqs := qa.SupportedFreqsMHz()
	plain, err := Sweep(qa, sweepWorkload{testProfile()}, freqs, 3)
	if err != nil {
		t.Fatal(err)
	}
	observed, err := Sweep(qb, sweepWorkload{testProfile()}, freqs, 3)
	if err != nil {
		t.Fatal(err)
	}
	for i := range plain {
		if plain[i] != observed[i] {
			t.Fatalf("freq %d: observed sweep diverged: %+v vs %+v", freqs[i], plain[i], observed[i])
		}
	}
	requireQueuesIdentical(t, qa, qb, "observer on/off")
}

func TestFaultCountersMirroredDeterministically(t *testing.T) {
	plan := faults.Plan{
		Seed:      7,
		Throttles: []faults.Throttle{{Device: 0, FromSubmit: 1, ToSubmit: 3, CapMHz: 900}},
	}
	qa, qb, oa, ob := observedSweepPair(t, &plan)
	freqs := qa.SupportedFreqsMHz()
	if _, err := Sweep(qa, sweepWorkload{testProfile()}, freqs, 3); err != nil {
		t.Fatal(err)
	}
	if _, err := ParallelSweep(qb, sweepWorkload{testProfile()}, freqs, 3, 8); err != nil {
		t.Fatal(err)
	}
	st := qa.FaultStats()
	if st.Throttled == 0 {
		t.Fatal("fault plan was not exercised")
	}
	throttled := oa.Metrics().Counter("synergy_throttled_submissions_total", obs.L("device", "NVIDIA V100"))
	if got := throttled.Value(); got != uint64(st.Throttled) {
		t.Errorf("throttle counter = %d, FaultStats says %d", got, st.Throttled)
	}
	ma, _ := exportAll(t, oa)
	mb, _ := exportAll(t, ob)
	if ma != mb {
		t.Errorf("fault-counter exports schedule-dependent:\n%s\nvs\n%s", ma, mb)
	}
}

func TestFailedSweepLeavesTraceUntouched(t *testing.T) {
	// Absorb-nothing-on-error extends to observability: a failed sweep must
	// not leak partial spans into the parent's trace.
	plan := faults.Plan{
		Seed:     7,
		Failures: []faults.DeviceFailure{{Device: 0, AfterSubmits: 1}},
	}
	qa, _, oa, _ := observedSweepPair(t, &plan)
	freqs := qa.SupportedFreqsMHz()
	if _, err := ParallelSweep(qa, sweepWorkload{testProfile()}, freqs, 3, 8); err == nil {
		t.Fatal("sweep should fail on the scheduled device loss")
	}
	if n := oa.Trace().Len(); n != 0 {
		t.Errorf("failed sweep left %d spans on the parent trace", n)
	}
}
