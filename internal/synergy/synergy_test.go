package synergy

import (
	"fmt"
	"math"
	"reflect"
	"sync"
	"testing"

	"dsenergy/internal/faults"
	"dsenergy/internal/gpusim"
	"dsenergy/internal/kernels"
)

func testProfile() kernels.Profile {
	return kernels.Profile{
		Name: "k",
		Mix: kernels.InstructionMix{
			FloatAdd: 50, FloatMul: 50, IntAdd: 10, GlobalAcc: 4,
		},
		WorkItems: 1 << 16, Launches: 4,
		WorkingSetBytes: 1 << 20, CacheReuse: 0.8,
	}
}

func newTestPlatform(t *testing.T) *Platform {
	t.Helper()
	p, err := NewPlatform(5, gpusim.V100Spec(), gpusim.MI100Spec())
	if err != nil {
		t.Fatal(err)
	}
	return p
}

func TestPlatformDiscovery(t *testing.T) {
	p := newTestPlatform(t)
	qs := p.Queues()
	if len(qs) != 2 {
		t.Fatalf("want 2 devices, got %d", len(qs))
	}
	if qs[0].Spec().Name != "NVIDIA V100" || qs[1].Spec().Name != "AMD MI100" {
		t.Errorf("device order %q, %q", qs[0].Spec().Name, qs[1].Spec().Name)
	}
}

func TestQueueByName(t *testing.T) {
	p := newTestPlatform(t)
	q, err := p.QueueByName("AMD MI100")
	if err != nil {
		t.Fatal(err)
	}
	if q.Spec().Vendor != gpusim.AMD {
		t.Error("wrong device returned")
	}
	if _, err := p.QueueByName("H100"); err == nil {
		t.Error("expected error for unknown device")
	}
}

func TestSubmitRecordsEvents(t *testing.T) {
	p := newTestPlatform(t)
	q := p.Queues()[0]
	r, err := q.Submit(testProfile())
	if err != nil {
		t.Fatal(err)
	}
	if r.TimeS <= 0 || r.EnergyJ <= 0 {
		t.Fatalf("bad result %+v", r)
	}
	evs := q.Events()
	if len(evs) != 1 {
		t.Fatalf("want 1 event, got %d", len(evs))
	}
	if evs[0].Kernel != "k" || evs[0].FreqMHz != q.BaselineFreqMHz() {
		t.Errorf("event %+v", evs[0])
	}
	if got := q.DrainEvents(); len(got) != 1 {
		t.Errorf("drain returned %d events", len(got))
	}
	if got := q.Events(); len(got) != 0 {
		t.Errorf("events not cleared after drain: %d", len(got))
	}
}

func TestFrequencyPinning(t *testing.T) {
	p := newTestPlatform(t)
	q := p.Queues()[0]
	target := q.Spec().FMaxMHz()
	if err := q.SetCoreFreqMHz(target); err != nil {
		t.Fatal(err)
	}
	if _, err := q.Submit(testProfile()); err != nil {
		t.Fatal(err)
	}
	if evs := q.Events(); evs[len(evs)-1].FreqMHz != target {
		t.Errorf("submission ran at %d, want pinned %d", evs[len(evs)-1].FreqMHz, target)
	}
	q.ResetFrequency()
	if q.Device().CoreFreqMHz() != q.BaselineFreqMHz() {
		t.Error("reset did not restore baseline")
	}
	if err := q.SetCoreFreqMHz(42); err == nil {
		t.Error("expected error for unsupported frequency")
	}
}

func TestSubmitAtLeavesPinnedClock(t *testing.T) {
	p := newTestPlatform(t)
	q := p.Queues()[0]
	pin := q.Spec().NearestFreqMHz(1000)
	if err := q.SetCoreFreqMHz(pin); err != nil {
		t.Fatal(err)
	}
	other := q.Spec().FMaxMHz()
	if _, err := q.SubmitAt(testProfile(), other); err != nil {
		t.Fatal(err)
	}
	if q.Device().CoreFreqMHz() != pin {
		t.Errorf("per-kernel submission disturbed the pinned clock: %d", q.Device().CoreFreqMHz())
	}
	evs := q.Events()
	if evs[len(evs)-1].FreqMHz != other {
		t.Errorf("per-kernel event frequency %d, want %d", evs[len(evs)-1].FreqMHz, other)
	}
	if _, err := q.SubmitAt(testProfile(), 13); err == nil {
		t.Error("expected error for bad per-kernel frequency")
	}
}

// sweepWorkload adapts a profile for MeasureAt tests.
type sweepWorkload struct{ p kernels.Profile }

func (w sweepWorkload) Name() string { return w.p.Name }
func (w sweepWorkload) RunOn(q *Queue) (float64, float64, error) {
	r, err := q.Submit(w.p)
	return r.TimeS, r.EnergyJ, err
}

func TestMeasureAtAveragesReps(t *testing.T) {
	p := newTestPlatform(t)
	q := p.Queues()[0]
	w := sweepWorkload{testProfile()}
	m, err := MeasureAt(q, w, q.BaselineFreqMHz(), 5)
	if err != nil {
		t.Fatal(err)
	}
	if m.TimeS <= 0 || m.EnergyJ <= 0 {
		t.Fatalf("bad measurement %+v", m)
	}
	if len(q.Events()) != 5 {
		t.Errorf("5 repetitions should leave 5 events, got %d", len(q.Events()))
	}
	// The queue frequency is restored after measuring.
	if q.Device().CoreFreqMHz() != q.BaselineFreqMHz() {
		t.Error("MeasureAt leaked its pinned frequency")
	}
}

func TestMeasureAtBadFrequency(t *testing.T) {
	p := newTestPlatform(t)
	q := p.Queues()[0]
	if _, err := MeasureAt(q, sweepWorkload{testProfile()}, 31, 1); err == nil {
		t.Error("expected error for unsupported frequency")
	}
}

func TestSweepOrderMatchesRequest(t *testing.T) {
	p := newTestPlatform(t)
	q := p.Queues()[0]
	spec := q.Spec()
	freqs := []int{spec.FMaxMHz(), spec.BaselineFreqMHz(), spec.NearestFreqMHz(900)}
	ms, err := Sweep(q, sweepWorkload{testProfile()}, freqs, 2)
	if err != nil {
		t.Fatal(err)
	}
	if len(ms) != 3 {
		t.Fatalf("want 3 measurements, got %d", len(ms))
	}
	for i, m := range ms {
		if m.FreqMHz != freqs[i] {
			t.Errorf("measurement %d at %d, want %d", i, m.FreqMHz, freqs[i])
		}
	}
}

func TestPlatformsIdenticallySeededAgree(t *testing.T) {
	a := newTestPlatform(t)
	b := newTestPlatform(t)
	wa, _ := a.Queues()[0].Submit(testProfile())
	wb, _ := b.Queues()[0].Submit(testProfile())
	if wa != wb {
		t.Error("identically seeded platforms observed different measurements")
	}
}

func TestQueueConcurrentSubmissionsSafe(t *testing.T) {
	p := newTestPlatform(t)
	q := p.Queues()[0]
	var wg sync.WaitGroup
	for i := 0; i < 16; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			if _, err := q.Submit(testProfile()); err != nil {
				t.Error(err)
			}
		}()
	}
	wg.Wait()
	if got := len(q.Events()); got != 16 {
		t.Errorf("want 16 events, got %d", got)
	}
	// The energy counter equals the sum of all event energies.
	var sum float64
	for _, e := range q.Events() {
		sum += e.EnergyJ
	}
	if math.Abs(sum-q.EnergyCounterJ()) > 1e-9 {
		t.Errorf("counter %g != event sum %g", q.EnergyCounterJ(), sum)
	}
}

func TestSupportedFreqsIsCopy(t *testing.T) {
	p := newTestPlatform(t)
	q := p.Queues()[0]
	fs := q.SupportedFreqsMHz()
	fs[0] = -1
	if q.SupportedFreqsMHz()[0] == -1 {
		t.Error("SupportedFreqsMHz leaks internal slice")
	}
}

func TestPowerTraceReconstruction(t *testing.T) {
	events := []Event{
		{Kernel: "a", TimeS: 1.0, EnergyJ: 100}, // 100 W for 1 s
		{Kernel: "b", TimeS: 0.5, EnergyJ: 200}, // 400 W for 0.5 s
	}
	trace, err := PowerTrace(events, 0.25)
	if err != nil {
		t.Fatal(err)
	}
	if len(trace) != 6 {
		t.Fatalf("want 6 samples over 1.5 s at 0.25 s, got %d", len(trace))
	}
	for _, p := range trace[:4] {
		if p.PowerW != 100 || p.Kernel != "a" {
			t.Errorf("sample %+v, want kernel a at 100 W", p)
		}
	}
	for _, p := range trace[4:] {
		if p.PowerW != 400 || p.Kernel != "b" {
			t.Errorf("sample %+v, want kernel b at 400 W", p)
		}
	}
	// Trace integration approximates the true energy (300 J).
	if e := TraceEnergyJ(trace, 0.25); e < 250 || e > 350 {
		t.Errorf("trace energy %g, want ~300", e)
	}
}

func TestPowerTraceValidation(t *testing.T) {
	if _, err := PowerTrace(nil, 0.1); err == nil {
		t.Error("expected error for no events")
	}
	if _, err := PowerTrace([]Event{{TimeS: 1, EnergyJ: 1}}, 0); err == nil {
		t.Error("expected error for zero period")
	}
	if _, err := PowerTrace([]Event{{TimeS: -1, EnergyJ: 1}}, 0.1); err == nil {
		t.Error("expected error for negative duration")
	}
}

func TestPowerTraceShortRun(t *testing.T) {
	trace, err := PowerTrace([]Event{{Kernel: "k", TimeS: 1e-6, EnergyJ: 1e-4}}, 1.0)
	if err != nil {
		t.Fatal(err)
	}
	if len(trace) != 1 || trace[0].Kernel != "k" {
		t.Errorf("short run should emit one sample, got %+v", trace)
	}
}

func TestPowerTraceFromRealWorkload(t *testing.T) {
	p := newTestPlatform(t)
	q := p.Queues()[0]
	for i := 0; i < 3; i++ {
		if _, err := q.Submit(testProfile()); err != nil {
			t.Fatal(err)
		}
	}
	events := q.Events()
	var total float64
	for _, e := range events {
		total += e.TimeS
	}
	trace, err := PowerTrace(events, total/10)
	if err != nil {
		t.Fatal(err)
	}
	if len(trace) < 5 {
		t.Errorf("trace too sparse: %d samples", len(trace))
	}
	for _, pt := range trace {
		if pt.PowerW <= 0 {
			t.Errorf("non-positive power sample %+v", pt)
		}
	}
}

func TestNewPlatformRejectsDuplicateNames(t *testing.T) {
	if _, err := NewPlatform(5, gpusim.V100Spec(), gpusim.V100Spec()); err == nil {
		t.Fatal("expected error for duplicate device names")
	}
	// Renamed copies of the same spec are fine.
	a, b := gpusim.V100Spec(), gpusim.V100Spec()
	b.Name = "NVIDIA V100 #1"
	if _, err := NewPlatform(5, a, b); err != nil {
		t.Fatalf("distinct names must be accepted: %v", err)
	}
}

func TestSubmitUnderThrottleRunsAtEffectiveClock(t *testing.T) {
	p := newTestPlatform(t)
	q := p.Queues()[0]
	const capMHz = 900
	plan := faults.Plan{
		Seed:      3,
		Throttles: []faults.Throttle{{Device: 0, FromSubmit: 2, ToSubmit: 3, CapMHz: capMHz}},
	}
	inj, err := faults.NewInjector(plan, 1)
	if err != nil {
		t.Fatal(err)
	}
	q.SetFaultInjector(inj.Device(0))
	top := q.Spec().FMaxMHz()
	if _, err := q.SubmitAt(testProfile(), top); err != nil {
		t.Fatal(err)
	}
	if _, err := q.SubmitAt(testProfile(), top); err != nil {
		t.Fatal(err)
	}
	evs := q.Events()
	if len(evs) != 2 {
		t.Fatalf("want 2 events, got %d", len(evs))
	}
	if evs[0].FreqMHz != top {
		t.Errorf("submission outside the window ran at %d MHz, want %d", evs[0].FreqMHz, top)
	}
	want := q.Spec().FloorFreqMHz(capMHz)
	if evs[1].FreqMHz != want {
		t.Errorf("throttled submission ran at %d MHz, want %d", evs[1].FreqMHz, want)
	}
	if evs[1].TimeS <= evs[0].TimeS {
		t.Errorf("throttled run (%.6fs) should be slower than full-clock run (%.6fs)", evs[1].TimeS, evs[0].TimeS)
	}
	if st := q.FaultStats(); st.Throttled != 1 {
		t.Errorf("FaultStats.Throttled = %d, want 1", st.Throttled)
	}
}

func TestMeasureAtReportsEffectiveClock(t *testing.T) {
	p := newTestPlatform(t)
	q := p.Queues()[0]
	const capMHz = 900
	plan := faults.Plan{
		Seed:      3,
		Throttles: []faults.Throttle{{Device: 0, FromSubmit: 1, ToSubmit: 1 << 30, CapMHz: capMHz}},
	}
	inj, err := faults.NewInjector(plan, 1)
	if err != nil {
		t.Fatal(err)
	}
	q.SetFaultInjector(inj.Device(0))
	top := q.Spec().FMaxMHz()
	m, err := MeasureAt(q, sweepWorkload{testProfile()}, top, 2)
	if err != nil {
		t.Fatal(err)
	}
	if m.FreqMHz != top {
		t.Errorf("requested clock recorded as %d, want %d", m.FreqMHz, top)
	}
	if want := q.Spec().FloorFreqMHz(capMHz); m.EffFreqMHz != want {
		t.Errorf("EffFreqMHz = %d, want %d", m.EffFreqMHz, want)
	}
	if !m.Throttled() {
		t.Error("Throttled() must report true when the effective clock differs")
	}
}

func TestFaultedSubmitChargesPartialWork(t *testing.T) {
	p := newTestPlatform(t)
	q := p.Queues()[0]
	plan := faults.Plan{
		Seed:     3,
		Failures: []faults.DeviceFailure{{Device: 0, AfterSubmits: 1}},
	}
	inj, err := faults.NewInjector(plan, 1)
	if err != nil {
		t.Fatal(err)
	}
	q.SetFaultInjector(inj.Device(0))
	if _, err := q.Submit(testProfile()); err != nil {
		t.Fatal(err)
	}
	before := q.EnergyCounterJ()
	if _, err := q.Submit(testProfile()); err == nil {
		t.Fatal("expected the second submission to fail permanently")
	}
	evs := q.Events()
	if len(evs) != 2 || !evs[1].Faulted {
		t.Fatalf("aborted submission must log a Faulted event, got %+v", evs)
	}
	if evs[1].EnergyJ <= 0 {
		t.Error("aborted submission should charge partial energy")
	}
	if got := q.EnergyCounterJ() - before; math.Abs(got-evs[1].EnergyJ) > 1e-9 {
		t.Errorf("energy counter advanced %.6f J, event says %.6f J", got, evs[1].EnergyJ)
	}
	st := q.FaultStats()
	if st.Permanent != 1 || st.WastedEnergyJ <= 0 {
		t.Errorf("FaultStats = %+v, want Permanent=1 and wasted energy", st)
	}
}

// sweepPair builds two identically seeded single-device queues, optionally
// attaching a fresh injector for the same fault plan to each, so one side can
// run serially and the other in parallel.
func sweepPair(t *testing.T, plan *faults.Plan) (qa, qb *Queue) {
	t.Helper()
	build := func() *Queue {
		p, err := NewPlatform(11, gpusim.V100Spec())
		if err != nil {
			t.Fatal(err)
		}
		q := p.Queues()[0]
		if plan != nil {
			inj, err := faults.NewInjector(*plan, 1)
			if err != nil {
				t.Fatal(err)
			}
			q.SetFaultInjector(inj.Device(0))
		}
		return q
	}
	return build(), build()
}

// requireQueuesIdentical asserts every observable byte of the two queues
// agrees: event logs, energy counters and fault statistics.
func requireQueuesIdentical(t *testing.T, qa, qb *Queue, label string) {
	t.Helper()
	if !reflect.DeepEqual(qa.Events(), qb.Events()) {
		t.Errorf("%s: event logs diverged", label)
	}
	if !reflect.DeepEqual(qa.EnergyCounterJ(), qb.EnergyCounterJ()) {
		t.Errorf("%s: energy counters diverged: %v vs %v", label, qa.EnergyCounterJ(), qb.EnergyCounterJ())
	}
	if !reflect.DeepEqual(qa.FaultStats(), qb.FaultStats()) {
		t.Errorf("%s: fault stats diverged: %+v vs %+v", label, qa.FaultStats(), qb.FaultStats())
	}
}

func TestParallelSweepMatchesSweep(t *testing.T) {
	for _, workers := range []int{0, 2, 8} {
		qa, qb := sweepPair(t, nil)
		freqs := qa.SupportedFreqsMHz()
		serial, err := Sweep(qa, sweepWorkload{testProfile()}, freqs, 3)
		if err != nil {
			t.Fatal(err)
		}
		par, err := ParallelSweep(qb, sweepWorkload{testProfile()}, freqs, 3, workers)
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		if !reflect.DeepEqual(serial, par) {
			t.Errorf("workers=%d: measurements diverged from serial sweep", workers)
		}
		requireQueuesIdentical(t, qa, qb, fmt.Sprintf("workers=%d", workers))
	}
}

func TestParallelSweepMatchesSweepUnderActiveFaults(t *testing.T) {
	// A plan with live throttle windows: every partition of the sweep sees its
	// first two submissions capped, so fault handling, effective-clock
	// reporting and stats accumulation are all on the measured path.
	plan := faults.Plan{
		Seed:      7,
		Throttles: []faults.Throttle{{Device: 0, FromSubmit: 1, ToSubmit: 3, CapMHz: 900}},
	}
	qa, qb := sweepPair(t, &plan)
	freqs := qa.SupportedFreqsMHz()
	serial, err := Sweep(qa, sweepWorkload{testProfile()}, freqs, 3)
	if err != nil {
		t.Fatal(err)
	}
	par, err := ParallelSweep(qb, sweepWorkload{testProfile()}, freqs, 3, 8)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(serial, par) {
		t.Error("measurements diverged under an active fault plan")
	}
	if st := qb.FaultStats(); st.Throttled == 0 {
		t.Error("fault plan was not actually exercised (no throttled submissions)")
	}
	requireQueuesIdentical(t, qa, qb, "faulted sweep")
}

func TestSweepFailureLeavesQueueUntouched(t *testing.T) {
	// The device dies partway through every sweep partition (failure windows
	// are partition-relative, so AfterSubmits 1 kills the second repetition of
	// each frequency): serial and parallel must both fail, and neither may
	// leave partial events, energy or fault counters on the parent queue —
	// the error path is part of the determinism contract.
	plan := faults.Plan{
		Seed:     7,
		Failures: []faults.DeviceFailure{{Device: 0, AfterSubmits: 1}},
	}
	qa, qb := sweepPair(t, &plan)
	freqs := qa.SupportedFreqsMHz()
	if _, err := Sweep(qa, sweepWorkload{testProfile()}, freqs, 3); err == nil {
		t.Fatal("serial sweep should fail on the scheduled device loss")
	}
	if _, err := ParallelSweep(qb, sweepWorkload{testProfile()}, freqs, 3, 8); err == nil {
		t.Fatal("parallel sweep should fail on the scheduled device loss")
	}
	for label, q := range map[string]*Queue{"serial": qa, "parallel": qb} {
		if n := len(q.Events()); n != 0 {
			t.Errorf("%s: failed sweep left %d events on the parent queue", label, n)
		}
		if !reflect.DeepEqual(q.EnergyCounterJ(), 0.0) {
			t.Errorf("%s: failed sweep charged %v J to the parent queue", label, q.EnergyCounterJ())
		}
		if !reflect.DeepEqual(q.FaultStats(), FaultStats{}) {
			t.Errorf("%s: failed sweep left fault stats %+v", label, q.FaultStats())
		}
	}
}

func TestSweepSetMatchesSequentialSweeps(t *testing.T) {
	p2 := testProfile()
	p2.Name = "k2"
	p2.WorkItems = 1 << 14
	workloads := []Workload{sweepWorkload{testProfile()}, sweepWorkload{p2}}

	qa, qb := sweepPair(t, nil)
	freqs := qa.SupportedFreqsMHz()
	var want [][]Measurement
	for _, w := range workloads {
		ms, err := Sweep(qa, w, freqs, 2)
		if err != nil {
			t.Fatal(err)
		}
		want = append(want, ms)
	}
	got, err := SweepSet(qb, workloads, freqs, 2, 8)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(want, got) {
		t.Error("SweepSet measurements diverged from sequential Sweep calls")
	}
	requireQueuesIdentical(t, qa, qb, "sweep set")
}

func TestSweepCacheOnOffByteIdentical(t *testing.T) {
	// The compiled-profile cache is a pure evaluation shortcut: disabling it
	// must not perturb a single observable byte of a sweep — measurements,
	// event logs or energy counters — serially or under ParallelSweep.
	w := sweepWorkload{testProfile()}
	qa, qb := sweepPair(t, nil)
	qb.Device().DisableAnalyticCache()
	freqs := qa.SupportedFreqsMHz()
	on, err := Sweep(qa, w, freqs, 3)
	if err != nil {
		t.Fatal(err)
	}
	off, err := Sweep(qb, w, freqs, 3)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(on, off) {
		t.Error("serial sweep measurements diverged between cache on and off")
	}
	requireQueuesIdentical(t, qa, qb, "serial cache on/off")

	qc, qd := sweepPair(t, nil)
	qd.Device().DisableAnalyticCache()
	pOn, err := ParallelSweep(qc, w, freqs, 3, 4)
	if err != nil {
		t.Fatal(err)
	}
	pOff, err := ParallelSweep(qd, w, freqs, 3, 4)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(pOn, pOff) {
		t.Error("parallel sweep measurements diverged between cache on and off")
	}
	if !reflect.DeepEqual(on, pOff) {
		t.Error("cache-off parallel sweep diverged from cache-on serial sweep")
	}
	requireQueuesIdentical(t, qc, qd, "parallel cache on/off")
}

func TestQueueAnalyzeCurveMatchesDevice(t *testing.T) {
	p := newTestPlatform(t)
	q := p.Queues()[0]
	freqs := q.SupportedFreqsMHz()
	curve := q.AnalyzeCurve(testProfile(), freqs)
	if len(curve) != len(freqs) {
		t.Fatalf("curve length %d, want %d", len(curve), len(freqs))
	}
	for i, f := range freqs {
		if want := q.Device().AnalyzeAt(testProfile(), f); curve[i] != want {
			t.Errorf("curve[%d] (%d MHz) = %+v, want %+v", i, f, curve[i], want)
		}
	}
}
