package synergy

import "fmt"

// Power-trace reconstruction: real profiling stacks sample board power at a
// fixed rate while the application runs; this reconstructs the equivalent
// piecewise-constant trace from the queue's per-kernel energy events, so
// users can inspect where an application's energy goes over time.

// TracePoint is one sample of a reconstructed power trace.
type TracePoint struct {
	TimeS  float64 // sample timestamp from the start of the trace
	PowerW float64 // board power during the sample interval
	Kernel string  // kernel executing at the sample time ("" = gap)
}

// PowerTrace replays the events as a back-to-back execution timeline and
// samples it every dt seconds. Each event contributes its average power
// (energy/time) for its duration.
func PowerTrace(events []Event, dt float64) ([]TracePoint, error) {
	if dt <= 0 {
		return nil, fmt.Errorf("synergy: trace sample period must be positive, got %g", dt)
	}
	if len(events) == 0 {
		return nil, fmt.Errorf("synergy: no events to trace")
	}
	type span struct {
		start, end float64
		powerW     float64
		kernel     string
	}
	spans := make([]span, 0, len(events))
	var cursor float64
	for _, e := range events {
		if e.TimeS <= 0 {
			return nil, fmt.Errorf("synergy: event %q has non-positive duration", e.Kernel)
		}
		spans = append(spans, span{
			start: cursor, end: cursor + e.TimeS,
			powerW: e.EnergyJ / e.TimeS,
			kernel: e.Kernel,
		})
		cursor += e.TimeS
	}

	var out []TracePoint
	si := 0
	for ts := 0.0; ts < cursor; ts += dt {
		for si < len(spans) && spans[si].end <= ts {
			si++
		}
		if si >= len(spans) {
			break
		}
		out = append(out, TracePoint{TimeS: ts, PowerW: spans[si].powerW, Kernel: spans[si].kernel})
	}
	if len(out) == 0 {
		// The whole run is shorter than one sample period; emit one point.
		out = append(out, TracePoint{TimeS: 0, PowerW: spans[0].powerW, Kernel: spans[0].kernel})
	}
	return out, nil
}

// TraceEnergyJ integrates a trace back to joules (sample power x period),
// a consistency check for trace consumers.
func TraceEnergyJ(trace []TracePoint, dt float64) float64 {
	var sum float64
	for _, p := range trace {
		sum += p.PowerW * dt
	}
	return sum
}
