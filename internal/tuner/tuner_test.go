package tuner

import (
	"testing/quick"

	"dsenergy/internal/xrand"
	"testing"

	"dsenergy/internal/core"
	"dsenergy/internal/cronos"
	"dsenergy/internal/faults"
	"dsenergy/internal/gpusim"
	"dsenergy/internal/ligen"
	"dsenergy/internal/ml"
	"dsenergy/internal/synergy"
)

// syntheticCurve is a typical compute-leaning trade-off: speedup and energy
// both grow with frequency, with an interior energy minimum.
func syntheticCurve() []core.CurvePoint {
	return []core.CurvePoint{
		{FreqMHz: 800, Speedup: 0.70, NormEnergy: 0.95},
		{FreqMHz: 1000, Speedup: 0.82, NormEnergy: 0.88},
		{FreqMHz: 1200, Speedup: 0.93, NormEnergy: 0.92},
		{FreqMHz: 1297, Speedup: 1.00, NormEnergy: 1.00},
		{FreqMHz: 1450, Speedup: 1.10, NormEnergy: 1.15},
		{FreqMHz: 1597, Speedup: 1.20, NormEnergy: 1.35},
	}
}

func TestPolicySelections(t *testing.T) {
	curve := syntheticCurve()
	cases := []struct {
		policy Policy
		want   int
	}{
		{MaxPerformance{}, 1597},
		{MinEnergy{}, 1000},
		{EnergyTarget{Target: 0.92}, 1200}, // fastest point at or under 0.92
		{EnergyTarget{Target: 0.5}, 1000},  // unreachable -> min energy
		{PerfConstraint{MinSpeedup: 0.90}, 1200},
		{PerfConstraint{MinSpeedup: 2.0}, 1597}, // unreachable -> max perf
	}
	for _, c := range cases {
		if got := c.policy.Select(curve); got.FreqMHz != c.want {
			t.Errorf("%s selected %d MHz, want %d", c.policy.Name(), got.FreqMHz, c.want)
		}
	}
}

func TestEDPPoliciesOrdering(t *testing.T) {
	curve := syntheticCurve()
	edp := MinEDP{}.Select(curve)
	ed2p := MinED2P{}.Select(curve)
	// ED²P weights delay harder, so it never picks a slower clock than EDP.
	if ed2p.FreqMHz < edp.FreqMHz {
		t.Errorf("ED2P chose %d below EDP's %d", ed2p.FreqMHz, edp.FreqMHz)
	}
	// Both choices must minimize their own objective over the curve.
	for _, c := range curve {
		if c.NormEnergy/c.Speedup < edp.NormEnergy/edp.Speedup-1e-12 {
			t.Errorf("EDP choice %d not optimal", edp.FreqMHz)
		}
	}
}

func TestPolicyNames(t *testing.T) {
	for _, p := range []Policy{
		MaxPerformance{}, MinEnergy{}, EnergyTarget{Target: 0.9},
		PerfConstraint{MinSpeedup: 0.95}, MinEDP{}, MinED2P{},
	} {
		if p.Name() == "" {
			t.Errorf("%T has empty name", p)
		}
	}
}

func testQueueAndDataset(t *testing.T) (*synergy.Queue, *core.Dataset, []core.FeaturedWorkload, []int) {
	t.Helper()
	p, err := synergy.NewPlatform(9, gpusim.V100Spec())
	if err != nil {
		t.Fatal(err)
	}
	q := p.Queues()[0]
	var wls []core.FeaturedWorkload
	for _, g := range [][3]int{{20, 8, 8}, {40, 16, 16}, {80, 32, 32}, {160, 64, 64}} {
		w, err := cronos.NewWorkload(g[0], g[1], g[2], 4)
		if err != nil {
			t.Fatal(err)
		}
		wls = append(wls, core.FeaturedWorkload{
			Workload: w,
			Features: []float64{float64(g[0]), float64(g[1]), float64(g[2])},
		})
	}
	band := q.Spec().FreqsAbove(0.45)
	var freqs []int
	for i := 0; i < len(band); i += 10 {
		freqs = append(freqs, band[i])
	}
	freqs = append(freqs, q.BaselineFreqMHz(), q.Spec().FMaxMHz())
	freqs = dedupInts(freqs)
	ds, err := core.BuildDataset(q, core.CronosSchema(), wls, core.BuildConfig{Freqs: freqs, Reps: 2})
	if err != nil {
		t.Fatal(err)
	}
	return q, ds, wls, freqs
}

func forestSpec() ml.Spec {
	return ml.Spec{Algorithm: "forest", Params: map[string]float64{"n_estimators": 20}}
}

func TestTunerFreqFor(t *testing.T) {
	_, ds, _, freqs := testQueueAndDataset(t)
	model, err := core.TrainNormalized(ds, forestSpec(), 1)
	if err != nil {
		t.Fatal(err)
	}
	tn, err := New(model, PerfConstraint{MinSpeedup: 0.98})
	if err != nil {
		t.Fatal(err)
	}
	f, choice, err := tn.FreqFor([]float64{160, 64, 64}, freqs)
	if err != nil {
		t.Fatal(err)
	}
	if f != choice.FreqMHz {
		t.Fatal("frequency/choice mismatch")
	}
	// The large grid is memory bound: the policy must find energy savings
	// below the baseline clock without violating the constraint.
	if f >= ds.BaselineFreqMHz {
		t.Errorf("policy chose %d MHz, expected below baseline %d for a memory-bound input",
			f, ds.BaselineFreqMHz)
	}
	if choice.NormEnergy >= 1 {
		t.Errorf("chosen point saves no energy: %+v", choice)
	}
}

func TestTunerValidation(t *testing.T) {
	if _, err := New(nil, MinEnergy{}); err == nil {
		t.Error("expected error for nil model")
	}
	_, ds, _, _ := testQueueAndDataset(t)
	model, err := core.TrainNormalized(ds, forestSpec(), 1)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := New(model, nil); err == nil {
		t.Error("expected error for nil policy")
	}
	tn, _ := New(model, MinEnergy{})
	if _, _, err := tn.FreqFor([]float64{1, 2, 3}, nil); err == nil {
		t.Error("expected error for empty sweep")
	}
}

func TestPerKernelTraining(t *testing.T) {
	q, _, wls, freqs := testQueueAndDataset(t)
	pk, err := TrainPerKernel(q, core.CronosSchema(), wls,
		core.BuildConfig{Freqs: freqs, Reps: 2}, forestSpec(),
		PerfConstraint{MinSpeedup: 0.97}, 5)
	if err != nil {
		t.Fatal(err)
	}
	ks := pk.Kernels()
	if len(ks) != 4 {
		t.Fatalf("want 4 Cronos kernels, got %v", ks)
	}
	plan, err := pk.PlanFor([]float64{160, 64, 64})
	if err != nil {
		t.Fatal(err)
	}
	if len(plan.FreqByKernel) != 4 {
		t.Fatalf("plan covers %d kernels", len(plan.FreqByKernel))
	}
	for name, f := range plan.FreqByKernel {
		if !q.Spec().HasFreq(f) {
			t.Errorf("kernel %s planned at non-table frequency %d", name, f)
		}
	}
}

func TestPerKernelExecuteSavesEnergy(t *testing.T) {
	// The future-work claim: per-kernel scaling saves energy at bounded
	// performance loss, because memory-bound kernels (the whole Cronos
	// pipeline at large grids) can be down-clocked individually.
	q, _, wls, freqs := testQueueAndDataset(t)
	pk, err := TrainPerKernel(q, core.CronosSchema(), wls,
		core.BuildConfig{Freqs: freqs, Reps: 2}, forestSpec(),
		PerfConstraint{MinSpeedup: 0.95}, 5)
	if err != nil {
		t.Fatal(err)
	}
	plan, err := pk.PlanFor([]float64{160, 64, 64})
	if err != nil {
		t.Fatal(err)
	}
	w, _ := cronos.NewWorkload(160, 64, 64, 4)
	out, err := pk.Execute(q, w, plan, 3)
	if err != nil {
		t.Fatal(err)
	}
	if saving := out.EnergySaving(); saving < 0.05 {
		t.Errorf("per-kernel tuning saved %.1f%%, want >= 5%%", saving*100)
	}
	if sp := out.Speedup(); sp < 0.90 {
		t.Errorf("per-kernel tuning lost %.1f%% performance, want <= 10%%", (1-sp)*100)
	}
}

func TestPerKernelRejectsOpaqueWorkload(t *testing.T) {
	q, _, _, freqs := testQueueAndDataset(t)
	opaque := core.FeaturedWorkload{Workload: opaqueWorkload{}, Features: []float64{1, 1, 1}}
	_, err := TrainPerKernel(q, core.CronosSchema(), []core.FeaturedWorkload{opaque},
		core.BuildConfig{Freqs: freqs, Reps: 1}, forestSpec(), MinEnergy{}, 1)
	if err == nil {
		t.Error("expected error for workload without kernel profiles")
	}
}

func TestPerKernelPlansDifferAcrossKernels(t *testing.T) {
	// LiGen's kernels have different boundedness (dock compute-bound,
	// sortPoses memory-light): a min-EDP plan should not pick one uniform
	// clock for everything on a large input.
	p, err := synergy.NewPlatform(9, gpusim.V100Spec())
	if err != nil {
		t.Fatal(err)
	}
	q := p.Queues()[0]
	var wls []core.FeaturedWorkload
	for _, l := range []int{1024, 4096, 10000} {
		w, err := ligen.NewWorkload(ligen.Input{Ligands: l, Atoms: 89, Fragments: 20})
		if err != nil {
			t.Fatal(err)
		}
		wls = append(wls, core.FeaturedWorkload{
			Workload: w, Features: []float64{float64(l), 20, 89},
		})
	}
	band := q.Spec().FreqsAbove(0.45)
	var freqs []int
	for i := 0; i < len(band); i += 12 {
		freqs = append(freqs, band[i])
	}
	freqs = append(freqs, q.BaselineFreqMHz(), q.Spec().FMaxMHz())
	pk, err := TrainPerKernel(q, core.LiGenSchema(), wls,
		core.BuildConfig{Freqs: dedupInts(freqs), Reps: 2}, forestSpec(), MinEDP{}, 7)
	if err != nil {
		t.Fatal(err)
	}
	plan, err := pk.PlanFor([]float64{10000, 20, 89})
	if err != nil {
		t.Fatal(err)
	}
	uniq := map[int]bool{}
	for _, f := range plan.FreqByKernel {
		uniq[f] = true
	}
	if len(uniq) < 2 {
		t.Errorf("per-kernel plan degenerate (all kernels at one clock): %v", plan.FreqByKernel)
	}
}

type opaqueWorkload struct{}

func (opaqueWorkload) Name() string                                   { return "opaque" }
func (opaqueWorkload) RunOn(*synergy.Queue) (float64, float64, error) { return 1, 1, nil }

func dedupInts(fs []int) []int {
	seen := map[int]bool{}
	var out []int
	for _, f := range fs {
		if !seen[f] {
			seen[f] = true
			out = append(out, f)
		}
	}
	for i := 1; i < len(out); i++ {
		for j := i; j > 0 && out[j] < out[j-1]; j-- {
			out[j], out[j-1] = out[j-1], out[j]
		}
	}
	return out
}

func TestOnlineSearchFindsGoodConfiguration(t *testing.T) {
	q, ds, _, freqs := testQueueAndDataset(t)
	w, _ := cronos.NewWorkload(160, 64, 64, 4)
	policy := PerfConstraint{MinSpeedup: 0.97}

	res, err := OnlineSearch(q, w, freqs, 2, policy)
	if err != nil {
		t.Fatal(err)
	}
	if res.Measurements == 0 || len(res.Probed) == 0 {
		t.Fatal("online search measured nothing")
	}
	// The search must spend strictly fewer probes than exhaustive sweep
	// but land within a few percent of the oracle's energy.
	if res.Measurements >= len(freqs)*2 {
		t.Errorf("online search used %d measurements, sweep would be %d", res.Measurements, len(freqs)*2)
	}
	oracle, err := Oracle(ds, []float64{160, 64, 64}, policy)
	if err != nil {
		t.Fatal(err)
	}
	if res.Choice.NormEnergy > oracle.NormEnergy+0.05 {
		t.Errorf("online choice energy %.3f far from oracle %.3f", res.Choice.NormEnergy, oracle.NormEnergy)
	}
}

func TestOnlineSearchValidation(t *testing.T) {
	q, _, _, freqs := testQueueAndDataset(t)
	w, _ := cronos.NewWorkload(20, 8, 8, 2)
	if _, err := OnlineSearch(q, w, nil, 1, MinEnergy{}); err == nil {
		t.Error("expected error for empty table")
	}
	if _, err := OnlineSearch(q, w, freqs, 1, nil); err == nil {
		t.Error("expected error for nil policy")
	}
}

func TestOracleMatchesTruthOptimum(t *testing.T) {
	_, ds, _, _ := testQueueAndDataset(t)
	choice, err := Oracle(ds, []float64{160, 64, 64}, MinEnergy{})
	if err != nil {
		t.Fatal(err)
	}
	truth, err := ds.TrueCurves([]float64{160, 64, 64})
	if err != nil {
		t.Fatal(err)
	}
	for _, c := range truth {
		if c.NormEnergy < choice.NormEnergy {
			t.Fatalf("oracle missed a better point: %+v vs %+v", c, choice)
		}
	}
	if _, err := Oracle(ds, []float64{1, 2, 3}, MinEnergy{}); err == nil {
		t.Error("expected error for unknown input")
	}
}

func TestPoliciesSelectFromCurveProperty(t *testing.T) {
	// Property: every policy returns a member of the curve, and each
	// policy's choice is optimal for its own objective.
	f := func(seed uint16, n uint8) bool {
		rng := xrand.New(uint64(seed) + 1)
		size := int(n%20) + 2
		curve := make([]core.CurvePoint, size)
		for i := range curve {
			curve[i] = core.CurvePoint{
				FreqMHz:    600 + 10*i,
				Speedup:    0.5 + rng.Float64(),
				NormEnergy: 0.5 + rng.Float64(),
			}
		}
		member := func(p core.CurvePoint) bool {
			for _, c := range curve {
				if c == p {
					return true
				}
			}
			return false
		}
		mp := MaxPerformance{}.Select(curve)
		me := MinEnergy{}.Select(curve)
		edp := MinEDP{}.Select(curve)
		if !member(mp) || !member(me) || !member(edp) {
			return false
		}
		for _, c := range curve {
			if c.Speedup > mp.Speedup {
				return false
			}
			if c.NormEnergy < me.NormEnergy {
				return false
			}
			if c.NormEnergy/c.Speedup < edp.NormEnergy/edp.Speedup-1e-12 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestOnlineSearchFailsCleanlyOnDeviceFault(t *testing.T) {
	p, err := synergy.NewPlatform(9, gpusim.V100Spec())
	if err != nil {
		t.Fatal(err)
	}
	q := p.Queues()[0]
	// The device fails permanently after the baseline measurement (a 4-kernel
	// Cronos workload at reps=1), so the first probe hits a dead device.
	plan := faults.Plan{
		Seed:     1,
		Failures: []faults.DeviceFailure{{Device: 0, AfterSubmits: 5}},
	}
	inj, err := faults.NewInjector(plan, 1)
	if err != nil {
		t.Fatal(err)
	}
	q.SetFaultInjector(inj.Device(0))
	w, _ := cronos.NewWorkload(40, 16, 16, 4)
	freqs := q.Spec().FreqsAbove(0.6)
	res, err := OnlineSearch(q, w, freqs, 1, MinEnergy{})
	if err == nil {
		t.Fatal("expected mid-search device fault to surface as an error")
	}
	if !faults.IsPermanent(err) {
		t.Errorf("error should wrap the device fault, got: %v", err)
	}
	if res.Measurements != 0 || res.Choice.FreqMHz != 0 {
		t.Errorf("failed search must not return a half-built result: %+v", res)
	}
}

func TestOnlineSearchRecordsThrottledProbesAtEffectiveClock(t *testing.T) {
	p, err := synergy.NewPlatform(9, gpusim.V100Spec())
	if err != nil {
		t.Fatal(err)
	}
	q := p.Queues()[0]
	// A thermal-throttle window spanning the whole search caps the device
	// well below every table clock: whatever the search requests, the device
	// runs at the cap.
	const capMHz = 900
	plan := faults.Plan{
		Seed:      1,
		Throttles: []faults.Throttle{{Device: 0, FromSubmit: 1, ToSubmit: 1 << 30, CapMHz: capMHz}},
	}
	inj, err := faults.NewInjector(plan, 1)
	if err != nil {
		t.Fatal(err)
	}
	q.SetFaultInjector(inj.Device(0))
	w, _ := cronos.NewWorkload(40, 16, 16, 4)
	freqs := q.Spec().FreqsAbove(0.75) // all above the cap
	for _, f := range freqs {
		if f <= capMHz {
			t.Fatalf("test premise broken: table clock %d below cap %d", f, capMHz)
		}
	}
	res, err := OnlineSearch(q, w, freqs, 1, MinEnergy{})
	if err != nil {
		t.Fatal(err)
	}
	want := q.Spec().FloorFreqMHz(capMHz)
	if res.Choice.FreqMHz != want {
		t.Errorf("throttled search chose %d MHz, want effective clock %d", res.Choice.FreqMHz, want)
	}
	// The probe log still records the requested clocks — that is what the
	// governor asked for; only the measured points carry the effective clock.
	for _, f := range res.Probed {
		if f <= capMHz {
			t.Errorf("probe log contains effective clock %d, want requested clocks only", f)
		}
	}
}
