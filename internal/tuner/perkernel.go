package tuner

import (
	"fmt"
	"sort"

	"dsenergy/internal/core"
	"dsenergy/internal/kernels"
	"dsenergy/internal/ml"
	"dsenergy/internal/synergy"
)

// Profiler is a workload that exposes its kernel decomposition — both
// applications implement it. Per-kernel tuning needs the individual kernels
// because each one gets its own model and its own clock.
type Profiler interface {
	synergy.Workload
	Profiles() []kernels.Profile
}

// kernelWorkload wraps one kernel of an application as a standalone
// measurable workload.
type kernelWorkload struct {
	p kernels.Profile
}

func (w kernelWorkload) Name() string { return w.p.Name }

func (w kernelWorkload) RunOn(q *synergy.Queue) (float64, float64, error) {
	r, err := q.Submit(w.p)
	return r.TimeS, r.EnergyJ, err
}

// PerKernelTuner holds one domain-specific model per kernel of an
// application, so prediction — and therefore frequency selection — happens
// at kernel granularity, as SYnergy's per-kernel scaling requires.
type PerKernelTuner struct {
	Policy Policy
	models map[string]*core.Model
	freqs  []int
}

// TrainPerKernel measures every kernel of every featured workload separately
// across the frequency sweep and trains one normalized model per kernel
// name. All workloads must decompose into the same kernel set (they are
// instances of one application).
func TrainPerKernel(q *synergy.Queue, schema core.Schema, wls []core.FeaturedWorkload,
	cfg core.BuildConfig, spec ml.Spec, policy Policy, seed uint64) (*PerKernelTuner, error) {

	if policy == nil {
		return nil, fmt.Errorf("tuner: nil policy")
	}
	freqs := cfg.Freqs
	if freqs == nil {
		freqs = q.SupportedFreqsMHz()
	}

	// Group per-kernel datasets.
	datasets := map[string]*core.Dataset{}
	var kernelOrder []string
	for _, fw := range wls {
		prof, ok := fw.Workload.(Profiler)
		if !ok {
			return nil, fmt.Errorf("tuner: workload %s does not expose kernel profiles", fw.Workload.Name())
		}
		for _, kp := range prof.Profiles() {
			ds, ok := datasets[kp.Name]
			if !ok {
				ds = &core.Dataset{
					Schema:          schema,
					Device:          q.Spec().Name,
					BaselineFreqMHz: q.BaselineFreqMHz(),
				}
				datasets[kp.Name] = ds
				kernelOrder = append(kernelOrder, kp.Name)
			}
			ms, err := synergy.Sweep(q, kernelWorkload{kp}, freqs, cfg.Reps)
			if err != nil {
				return nil, fmt.Errorf("tuner: measuring kernel %s: %w", kp.Name, err)
			}
			for _, m := range ms {
				ds.Samples = append(ds.Samples, core.Sample{
					Features: append([]float64(nil), fw.Features...),
					FreqMHz:  m.FreqMHz,
					TimeS:    m.TimeS,
					EnergyJ:  m.EnergyJ,
				})
			}
		}
	}

	t := &PerKernelTuner{
		Policy: policy,
		models: make(map[string]*core.Model, len(datasets)),
		freqs:  append([]int(nil), freqs...),
	}
	sort.Ints(t.freqs)
	sort.Strings(kernelOrder)
	for i, name := range kernelOrder {
		m, err := core.TrainNormalized(datasets[name], spec, seed+uint64(i))
		if err != nil {
			return nil, fmt.Errorf("tuner: training kernel %s: %w", name, err)
		}
		t.models[name] = m
	}
	return t, nil
}

// Kernels returns the tuned kernel names, sorted.
func (t *PerKernelTuner) Kernels() []string {
	out := make([]string, 0, len(t.models))
	for name := range t.models {
		out = append(out, name)
	}
	sort.Strings(out)
	return out
}

// Plan is the per-kernel frequency assignment for one input.
type Plan struct {
	Features []float64
	// FreqByKernel maps each kernel name to its selected clock.
	FreqByKernel map[string]int
	// Predicted holds the policy's chosen point per kernel.
	Predicted map[string]core.CurvePoint
}

// PlanFor selects a frequency per kernel for the given input features.
func (t *PerKernelTuner) PlanFor(features []float64) (Plan, error) {
	if len(t.models) == 0 {
		return Plan{}, fmt.Errorf("tuner: no trained kernels")
	}
	plan := Plan{
		Features:     append([]float64(nil), features...),
		FreqByKernel: map[string]int{},
		Predicted:    map[string]core.CurvePoint{},
	}
	for name, m := range t.models {
		curve := m.PredictCurves(features, t.freqs)
		choice := t.Policy.Select(curve)
		plan.FreqByKernel[name] = choice.FreqMHz
		plan.Predicted[name] = choice
	}
	return plan, nil
}

// Outcome reports the measured effect of running a workload under a plan,
// compared with running everything at the baseline clock.
type Outcome struct {
	BaselineTimeS   float64
	BaselineEnergyJ float64
	TunedTimeS      float64
	TunedEnergyJ    float64
}

// Speedup is baseline time over tuned time.
func (o Outcome) Speedup() float64 { return o.BaselineTimeS / o.TunedTimeS }

// EnergySaving is the fractional energy reduction.
func (o Outcome) EnergySaving() float64 { return 1 - o.TunedEnergyJ/o.BaselineEnergyJ }

// Execute runs the workload twice on q — once entirely at the baseline
// clock, once with each kernel submitted at its planned clock (SYnergy's
// per-kernel mode) — and returns both observations.
func (t *PerKernelTuner) Execute(q *synergy.Queue, w Profiler, plan Plan, reps int) (Outcome, error) {
	if reps <= 0 {
		reps = 1
	}
	var o Outcome
	base := q.BaselineFreqMHz()
	for r := 0; r < reps; r++ {
		for _, kp := range w.Profiles() {
			res, err := q.SubmitAt(kp, base)
			if err != nil {
				return Outcome{}, err
			}
			o.BaselineTimeS += res.TimeS
			o.BaselineEnergyJ += res.EnergyJ

			f, ok := plan.FreqByKernel[kp.Name]
			if !ok {
				return Outcome{}, fmt.Errorf("tuner: plan has no frequency for kernel %s", kp.Name)
			}
			res, err = q.SubmitAt(kp, f)
			if err != nil {
				return Outcome{}, err
			}
			o.TunedTimeS += res.TimeS
			o.TunedEnergyJ += res.EnergyJ
		}
	}
	n := float64(reps)
	o.BaselineTimeS /= n
	o.BaselineEnergyJ /= n
	o.TunedTimeS /= n
	o.TunedEnergyJ /= n
	return o, nil
}
