package tuner

import (
	"fmt"
	"sort"

	"dsenergy/internal/core"
	"dsenergy/internal/synergy"
)

// Online frequency search: the runtime-tool alternative the paper's related
// work discusses (EAR, GEOPM): instead of predicting from a model, measure
// the application at a sequence of clocks and pick the best observed
// configuration. It always converges to (near-)oracle choices, but pays for
// every probe with real executions of the target application — the cost the
// model-driven approach eliminates.

// OnlineResult is the outcome of an online search.
type OnlineResult struct {
	// Choice is the selected frequency with its measured trade-off point.
	Choice core.CurvePoint
	// Measurements is the number of application executions spent
	// (repetitions included).
	Measurements int
	// Probed lists the visited frequencies in probe order.
	Probed []int
}

// OnlineSearch measures w on q at a shrinking set of clocks and returns the
// policy's best observed configuration. The search is a ternary/golden-style
// reduction over the frequency table driven by the policy's scalar
// preference, plus a final local refinement — a faithful stand-in for the
// iterative governors of runtime tools.
func OnlineSearch(q *synergy.Queue, w synergy.Workload, freqs []int, reps int, policy Policy) (OnlineResult, error) {
	if len(freqs) == 0 {
		return OnlineResult{}, fmt.Errorf("tuner: empty frequency table")
	}
	if policy == nil {
		return OnlineResult{}, fmt.Errorf("tuner: nil policy")
	}
	if reps <= 0 {
		reps = 1
	}
	table := append([]int(nil), freqs...)
	sort.Ints(table)

	var res OnlineResult
	base := q.BaselineFreqMHz()
	ref, err := synergy.MeasureAt(q, w, base, reps)
	if err != nil {
		return OnlineResult{}, err
	}
	res.Measurements += reps

	measured := map[int]core.CurvePoint{}
	probe := func(mhz int) (core.CurvePoint, error) {
		if p, ok := measured[mhz]; ok {
			return p, nil
		}
		m, err := synergy.MeasureAt(q, w, mhz, reps)
		if err != nil {
			return core.CurvePoint{}, err
		}
		res.Measurements += reps
		res.Probed = append(res.Probed, mhz)
		// Record the point at the clock the device actually ran, not the
		// requested one: under thermal throttling the two differ, and
		// attributing a capped measurement to the requested clock would
		// poison the history table a governor selects from.
		p := core.CurvePoint{
			FreqMHz:    m.EffFreqMHz,
			Speedup:    ref.TimeS / m.TimeS,
			NormEnergy: m.EnergyJ / ref.EnergyJ,
		}
		measured[mhz] = p
		return p, nil
	}

	// Interval reduction over table indices: probe lo, mid-left, mid-right,
	// hi; keep the half whose best point the policy prefers. The winner is
	// matched by window position rather than by frequency — a throttled
	// probe's effective clock need not appear in the table at all.
	lo, hi := 0, len(table)-1
	for hi-lo > 3 {
		m1 := lo + (hi-lo)/3
		m2 := hi - (hi-lo)/3
		window := make([]core.CurvePoint, 0, 4)
		for _, idx := range []int{lo, m1, m2, hi} {
			p, err := probe(table[idx])
			if err != nil {
				return OnlineResult{}, err
			}
			window = append(window, p)
		}
		best := policy.Select(window)
		pos := 0
		for i, p := range window {
			if p == best {
				pos = i
				break
			}
		}
		switch pos {
		case 0, 1:
			hi = m2
		default:
			lo = m1
		}
	}
	// Exhaustive refinement of the final window: probe whatever the interval
	// reduction has not visited yet, recording each point in `measured`.
	for idx := lo; idx <= hi; idx++ {
		if _, err := probe(table[idx]); err != nil {
			return OnlineResult{}, err
		}
	}
	// Include everything measured so far: the policy picks the global best
	// observation, as a real governor's history table would.
	all := make([]core.CurvePoint, 0, len(measured))
	for _, p := range measured {
		all = append(all, p)
	}
	sort.Slice(all, func(i, j int) bool { return all[i].FreqMHz < all[j].FreqMHz })
	res.Choice = policy.Select(all)
	return res, nil
}

// Oracle returns the policy's choice over the measured truth curves of one
// input — the best decision any tuner could make with perfect information.
func Oracle(ds *core.Dataset, input []float64, policy Policy) (core.CurvePoint, error) {
	truth, err := ds.TrueCurves(input)
	if err != nil {
		return core.CurvePoint{}, err
	}
	return policy.Select(truth), nil
}
