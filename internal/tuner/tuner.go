// Package tuner turns trained energy models into frequency decisions — the
// integration the paper's conclusion describes: "these models can be easily
// integrated into the SYnergy compilation toolchain ... we can use the
// energy target metric defined in SYnergy to select a specific frequency
// configuration that fits the defined energy target", including SYnergy's
// per-kernel frequency scaling, where each kernel of an application runs at
// its own model-selected clock.
//
// A Policy chooses one point of a predicted speedup/normalized-energy curve;
// a Tuner couples a domain-specific model with a policy; a PerKernelTuner
// holds one model per kernel and drives a queue with per-kernel clocks.
package tuner

import (
	"fmt"
	"math"
	"sort"

	"dsenergy/internal/core"
)

// Policy selects one frequency configuration from a predicted curve.
type Policy interface {
	// Name identifies the policy in reports.
	Name() string
	// Select returns the chosen point. The curve is non-empty and covers
	// the sweep in ascending frequency order.
	Select(curve []core.CurvePoint) core.CurvePoint
}

// MaxPerformance picks the highest predicted speedup (ties: lower energy).
type MaxPerformance struct{}

// Name implements Policy.
func (MaxPerformance) Name() string { return "max-performance" }

// Select implements Policy.
func (MaxPerformance) Select(curve []core.CurvePoint) core.CurvePoint {
	best := curve[0]
	for _, c := range curve[1:] {
		// Exact stored-value tie-break between curve points.
		if c.Speedup > best.Speedup ||
			(c.Speedup == best.Speedup && c.NormEnergy < best.NormEnergy) { //dsalint:ignore floateq
			best = c
		}
	}
	return best
}

// MinEnergy picks the lowest predicted normalized energy (ties: higher
// speedup).
type MinEnergy struct{}

// Name implements Policy.
func (MinEnergy) Name() string { return "min-energy" }

// Select implements Policy.
func (MinEnergy) Select(curve []core.CurvePoint) core.CurvePoint {
	best := curve[0]
	for _, c := range curve[1:] {
		// Exact stored-value tie-break between curve points.
		if c.NormEnergy < best.NormEnergy ||
			(c.NormEnergy == best.NormEnergy && c.Speedup > best.Speedup) { //dsalint:ignore floateq
			best = c
		}
	}
	return best
}

// EnergyTarget is SYnergy's energy-target metric: the fastest configuration
// whose predicted normalized energy does not exceed Target (e.g. 0.9 asks
// for at least a 10% energy reduction). When no point meets the target, the
// lowest-energy point is returned — the closest achievable.
type EnergyTarget struct {
	Target float64
}

// Name implements Policy.
func (p EnergyTarget) Name() string { return fmt.Sprintf("energy-target-%.2f", p.Target) }

// Select implements Policy.
func (p EnergyTarget) Select(curve []core.CurvePoint) core.CurvePoint {
	var best core.CurvePoint
	found := false
	for _, c := range curve {
		if c.NormEnergy <= p.Target && (!found || c.Speedup > best.Speedup) {
			best = c
			found = true
		}
	}
	if found {
		return best
	}
	return MinEnergy{}.Select(curve)
}

// PerfConstraint picks the lowest-energy configuration keeping at least
// MinSpeedup of the baseline performance — the "negligible loss" trade-off
// the paper's motivation highlights.
type PerfConstraint struct {
	MinSpeedup float64
}

// Name implements Policy.
func (p PerfConstraint) Name() string { return fmt.Sprintf("perf>=%.2f", p.MinSpeedup) }

// Select implements Policy.
func (p PerfConstraint) Select(curve []core.CurvePoint) core.CurvePoint {
	var best core.CurvePoint
	found := false
	for _, c := range curve {
		if c.Speedup >= p.MinSpeedup && (!found || c.NormEnergy < best.NormEnergy) {
			best = c
			found = true
		}
	}
	if found {
		return best
	}
	return MaxPerformance{}.Select(curve)
}

// MinEDP minimizes the energy-delay product E·t ∝ NormEnergy / Speedup.
type MinEDP struct{}

// Name implements Policy.
func (MinEDP) Name() string { return "min-edp" }

// Select implements Policy.
func (MinEDP) Select(curve []core.CurvePoint) core.CurvePoint {
	return minBy(curve, func(c core.CurvePoint) float64 {
		return c.NormEnergy / math.Max(c.Speedup, 1e-9)
	})
}

// MinED2P minimizes the energy-delay² product, weighting performance harder.
type MinED2P struct{}

// Name implements Policy.
func (MinED2P) Name() string { return "min-ed2p" }

// Select implements Policy.
func (MinED2P) Select(curve []core.CurvePoint) core.CurvePoint {
	return minBy(curve, func(c core.CurvePoint) float64 {
		s := math.Max(c.Speedup, 1e-9)
		return c.NormEnergy / (s * s)
	})
}

func minBy(curve []core.CurvePoint, key func(core.CurvePoint) float64) core.CurvePoint {
	best := curve[0]
	bk := key(best)
	for _, c := range curve[1:] {
		if k := key(c); k < bk {
			best, bk = c, k
		}
	}
	return best
}

// Tuner couples a domain-specific model with a selection policy.
type Tuner struct {
	Model  *core.Model
	Policy Policy
}

// New builds a tuner. Both arguments are required.
func New(model *core.Model, policy Policy) (*Tuner, error) {
	if model == nil {
		return nil, fmt.Errorf("tuner: nil model")
	}
	if policy == nil {
		return nil, fmt.Errorf("tuner: nil policy")
	}
	return &Tuner{Model: model, Policy: policy}, nil
}

// FreqFor predicts the curve for the given input features over freqs and
// returns the policy's chosen frequency with its predicted point.
func (t *Tuner) FreqFor(features []float64, freqs []int) (int, core.CurvePoint, error) {
	if len(freqs) == 0 {
		return 0, core.CurvePoint{}, fmt.Errorf("tuner: empty frequency sweep")
	}
	sorted := append([]int(nil), freqs...)
	sort.Ints(sorted)
	curve := t.Model.PredictCurves(features, sorted)
	choice := t.Policy.Select(curve)
	return choice.FreqMHz, choice, nil
}
