package ml

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
)

// Model persistence: trained regressors serialize to a self-describing JSON
// envelope, so a model trained from an expensive measurement campaign can be
// stored next to its dataset and reloaded without refitting.

// ErrCorruptModel is the typed error LoadRegressor wraps every shape-
// validation failure in: a payload that decodes as JSON but cannot have been
// written by SaveRegressor over a fitted model (empty coefficient vectors,
// disagreeing support-vector array lengths, out-of-range tree feature
// indices, an empty forest). Callers that hot-reload persisted models match
// it with errors.Is to reject the new version and keep serving the old one,
// instead of loading a model that panics or predicts garbage at first use.
var ErrCorruptModel = errors.New("ml: corrupt persisted model")

// envelope is the on-disk wrapper; Kind selects the payload.
type envelope struct {
	Kind    string          `json:"kind"`
	Payload json.RawMessage `json:"payload"`
}

type linearJSON struct {
	Coef      []float64 `json:"coef"`
	Intercept float64   `json:"intercept"`
}

type lassoJSON struct {
	Alpha     float64   `json:"alpha"`
	Coef      []float64 `json:"coef"`
	Intercept float64   `json:"intercept"`
}

type svrJSON struct {
	C       float64     `json:"c"`
	Epsilon float64     `json:"epsilon"`
	Gamma   float64     `json:"gamma"`
	X       [][]float64 `json:"x"`
	Beta    []float64   `json:"beta"`
	Mean    []float64   `json:"mean"`
	Scale   []float64   `json:"scale"`
	GammaF  float64     `json:"gamma_fitted"`
}

type nodeJSON struct {
	Leaf    bool      `json:"leaf"`
	Value   float64   `json:"value,omitempty"`
	Feature int       `json:"feature,omitempty"`
	Thresh  float64   `json:"thresh,omitempty"`
	Left    *nodeJSON `json:"left,omitempty"`
	Right   *nodeJSON `json:"right,omitempty"`
}

type treeJSON struct {
	MaxDepth int       `json:"max_depth"`
	MinLeaf  int       `json:"min_leaf"`
	D        int       `json:"d"`
	Root     *nodeJSON `json:"root"`
}

type forestJSON struct {
	Trees []treeJSON `json:"trees"`
}

// SaveRegressor writes a fitted regressor to w. Supported concrete types:
// *Linear, *Lasso, *SVR, *Tree, *Forest.
func SaveRegressor(w io.Writer, r Regressor) error {
	var env envelope
	var payload any
	switch m := r.(type) {
	case *Linear:
		env.Kind = "linear"
		payload = linearJSON{Coef: m.Coef, Intercept: m.Intercept}
	case *Lasso:
		env.Kind = "lasso"
		payload = lassoJSON{Alpha: m.Alpha, Coef: m.Coef, Intercept: m.Intercept}
	case *SVR:
		env.Kind = "svr"
		payload = svrJSON{
			C: m.C, Epsilon: m.Epsilon, Gamma: m.Gamma,
			X: m.x, Beta: m.beta, Mean: m.mean, Scale: m.scale, GammaF: m.gamma,
		}
	case *Tree:
		env.Kind = "tree"
		payload = encodeTree(m)
	case *Forest:
		env.Kind = "forest"
		fj := forestJSON{Trees: make([]treeJSON, len(m.trees))}
		for i, t := range m.trees {
			fj.Trees[i] = encodeTree(t)
		}
		payload = fj
	default:
		return fmt.Errorf("ml: cannot persist regressor type %T", r)
	}
	raw, err := json.Marshal(payload)
	if err != nil {
		return err
	}
	env.Payload = raw
	return json.NewEncoder(w).Encode(env)
}

// LoadRegressor reads a regressor written by SaveRegressor.
func LoadRegressor(r io.Reader) (Regressor, error) {
	var env envelope
	if err := json.NewDecoder(r).Decode(&env); err != nil {
		return nil, fmt.Errorf("ml: decoding model envelope: %w", err)
	}
	switch env.Kind {
	case "linear":
		var p linearJSON
		if err := json.Unmarshal(env.Payload, &p); err != nil {
			return nil, err
		}
		if len(p.Coef) == 0 {
			return nil, fmt.Errorf("%w: linear payload has no coefficients", ErrCorruptModel)
		}
		return &Linear{Coef: p.Coef, Intercept: p.Intercept}, nil
	case "lasso":
		var p lassoJSON
		if err := json.Unmarshal(env.Payload, &p); err != nil {
			return nil, err
		}
		if len(p.Coef) == 0 {
			return nil, fmt.Errorf("%w: lasso payload has no coefficients", ErrCorruptModel)
		}
		m := NewLasso(p.Alpha)
		m.Coef = p.Coef
		m.Intercept = p.Intercept
		return m, nil
	case "svr":
		var p svrJSON
		if err := json.Unmarshal(env.Payload, &p); err != nil {
			return nil, err
		}
		if err := validateSVR(p); err != nil {
			return nil, err
		}
		m := NewSVR(p.C, p.Epsilon, p.Gamma)
		m.x, m.beta, m.mean, m.scale, m.gamma = p.X, p.Beta, p.Mean, p.Scale, p.GammaF
		return m, nil
	case "tree":
		var p treeJSON
		if err := json.Unmarshal(env.Payload, &p); err != nil {
			return nil, err
		}
		return decodeTree(p)
	case "forest":
		var p forestJSON
		if err := json.Unmarshal(env.Payload, &p); err != nil {
			return nil, err
		}
		if len(p.Trees) == 0 {
			return nil, fmt.Errorf("%w: forest payload has no trees", ErrCorruptModel)
		}
		f := NewForest(ForestConfig{NumTrees: len(p.Trees)})
		f.trees = make([]*Tree, len(p.Trees))
		for i, tj := range p.Trees {
			t, err := decodeTree(tj)
			if err != nil {
				return nil, err
			}
			if i > 0 && t.d != f.trees[0].d {
				return nil, fmt.Errorf("%w: forest tree %d trained on %d features, tree 0 on %d",
					ErrCorruptModel, i, t.d, f.trees[0].d)
			}
			f.trees[i] = t
		}
		return f, nil
	default:
		return nil, fmt.Errorf("ml: unknown persisted model kind %q", env.Kind)
	}
}

// validateSVR checks the support-vector arrays agree on their dimensions: n
// support rows of one common width d, n dual coefficients, and d-wide
// standardization vectors. Any disagreement would index out of range (or
// silently mis-scale) at the first Predict.
func validateSVR(p svrJSON) error {
	n := len(p.X)
	if n == 0 {
		return fmt.Errorf("%w: svr payload has no support vectors", ErrCorruptModel)
	}
	d := len(p.X[0])
	if d == 0 {
		return fmt.Errorf("%w: svr support vectors are zero-width", ErrCorruptModel)
	}
	for i, row := range p.X {
		if len(row) != d {
			return fmt.Errorf("%w: svr support vector %d has %d features, want %d",
				ErrCorruptModel, i, len(row), d)
		}
	}
	if len(p.Beta) != n {
		return fmt.Errorf("%w: svr has %d support vectors but %d dual coefficients",
			ErrCorruptModel, n, len(p.Beta))
	}
	if len(p.Mean) != d || len(p.Scale) != d {
		return fmt.Errorf("%w: svr feature width %d disagrees with mean/scale lengths %d/%d",
			ErrCorruptModel, d, len(p.Mean), len(p.Scale))
	}
	return nil
}

// encodeTree renders the flat preorder node arrays back into the nested
// nodeJSON envelope, byte-identical to what the legacy pointer trees wrote.
func encodeTree(t *Tree) treeJSON {
	tj := treeJSON{MaxDepth: t.MaxDepth, MinLeaf: t.MinLeaf, D: t.d}
	if len(t.feature) > 0 {
		tj.Root = encodeNode(t, 0)
	}
	return tj
}

func encodeNode(t *Tree, i int32) *nodeJSON {
	if t.feature[i] < 0 {
		return &nodeJSON{Leaf: true, Value: t.value[i]}
	}
	return &nodeJSON{
		Feature: int(t.feature[i]), Thresh: t.thresh[i],
		Left: encodeNode(t, t.left[i]), Right: encodeNode(t, t.right[i]),
	}
}

func decodeTree(p treeJSON) (*Tree, error) {
	if p.D < 0 {
		return nil, fmt.Errorf("%w: tree has negative feature dimension %d", ErrCorruptModel, p.D)
	}
	t := NewTree(p.MaxDepth, p.MinLeaf)
	t.d = p.D
	if p.Root == nil {
		return t, nil
	}
	if err := decodeNode(t, p.Root, 0); err != nil {
		return nil, err
	}
	// Every split must route through a feature the tree was trained on:
	// an out-of-range index would read past the end of the prediction row.
	for _, f := range t.feature {
		if f >= int32(t.d) {
			return nil, fmt.Errorf("%w: tree split on feature %d but dimension is %d",
				ErrCorruptModel, f, t.d)
		}
	}
	return t, nil
}

// decodeNode appends the nested payload into the tree's SoA arrays in
// preorder (node, left subtree, right subtree) — the same layout fit
// produces, so loaded and freshly trained trees are indistinguishable.
func decodeNode(t *Tree, p *nodeJSON, depth int) error {
	if depth > 10000 {
		return fmt.Errorf("%w: persisted tree deeper than 10000 levels", ErrCorruptModel)
	}
	if p.Leaf {
		t.pushLeaf(p.Value)
		return nil
	}
	if p.Left == nil || p.Right == nil {
		return fmt.Errorf("%w: persisted split node missing a child", ErrCorruptModel)
	}
	if p.Feature < 0 {
		return fmt.Errorf("%w: persisted split node has negative feature index %d",
			ErrCorruptModel, p.Feature)
	}
	node := t.pushSplit(p.Feature, p.Thresh)
	t.left[node] = int32(len(t.feature))
	if err := decodeNode(t, p.Left, depth+1); err != nil {
		return err
	}
	t.right[node] = int32(len(t.feature))
	return decodeNode(t, p.Right, depth+1)
}
