package ml

import (
	"encoding/json"
	"fmt"
	"io"
)

// Model persistence: trained regressors serialize to a self-describing JSON
// envelope, so a model trained from an expensive measurement campaign can be
// stored next to its dataset and reloaded without refitting.

// envelope is the on-disk wrapper; Kind selects the payload.
type envelope struct {
	Kind    string          `json:"kind"`
	Payload json.RawMessage `json:"payload"`
}

type linearJSON struct {
	Coef      []float64 `json:"coef"`
	Intercept float64   `json:"intercept"`
}

type lassoJSON struct {
	Alpha     float64   `json:"alpha"`
	Coef      []float64 `json:"coef"`
	Intercept float64   `json:"intercept"`
}

type svrJSON struct {
	C       float64     `json:"c"`
	Epsilon float64     `json:"epsilon"`
	Gamma   float64     `json:"gamma"`
	X       [][]float64 `json:"x"`
	Beta    []float64   `json:"beta"`
	Mean    []float64   `json:"mean"`
	Scale   []float64   `json:"scale"`
	GammaF  float64     `json:"gamma_fitted"`
}

type nodeJSON struct {
	Leaf    bool      `json:"leaf"`
	Value   float64   `json:"value,omitempty"`
	Feature int       `json:"feature,omitempty"`
	Thresh  float64   `json:"thresh,omitempty"`
	Left    *nodeJSON `json:"left,omitempty"`
	Right   *nodeJSON `json:"right,omitempty"`
}

type treeJSON struct {
	MaxDepth int       `json:"max_depth"`
	MinLeaf  int       `json:"min_leaf"`
	D        int       `json:"d"`
	Root     *nodeJSON `json:"root"`
}

type forestJSON struct {
	Trees []treeJSON `json:"trees"`
}

// SaveRegressor writes a fitted regressor to w. Supported concrete types:
// *Linear, *Lasso, *SVR, *Tree, *Forest.
func SaveRegressor(w io.Writer, r Regressor) error {
	var env envelope
	var payload any
	switch m := r.(type) {
	case *Linear:
		env.Kind = "linear"
		payload = linearJSON{Coef: m.Coef, Intercept: m.Intercept}
	case *Lasso:
		env.Kind = "lasso"
		payload = lassoJSON{Alpha: m.Alpha, Coef: m.Coef, Intercept: m.Intercept}
	case *SVR:
		env.Kind = "svr"
		payload = svrJSON{
			C: m.C, Epsilon: m.Epsilon, Gamma: m.Gamma,
			X: m.x, Beta: m.beta, Mean: m.mean, Scale: m.scale, GammaF: m.gamma,
		}
	case *Tree:
		env.Kind = "tree"
		payload = encodeTree(m)
	case *Forest:
		env.Kind = "forest"
		fj := forestJSON{Trees: make([]treeJSON, len(m.trees))}
		for i, t := range m.trees {
			fj.Trees[i] = encodeTree(t)
		}
		payload = fj
	default:
		return fmt.Errorf("ml: cannot persist regressor type %T", r)
	}
	raw, err := json.Marshal(payload)
	if err != nil {
		return err
	}
	env.Payload = raw
	return json.NewEncoder(w).Encode(env)
}

// LoadRegressor reads a regressor written by SaveRegressor.
func LoadRegressor(r io.Reader) (Regressor, error) {
	var env envelope
	if err := json.NewDecoder(r).Decode(&env); err != nil {
		return nil, fmt.Errorf("ml: decoding model envelope: %w", err)
	}
	switch env.Kind {
	case "linear":
		var p linearJSON
		if err := json.Unmarshal(env.Payload, &p); err != nil {
			return nil, err
		}
		return &Linear{Coef: p.Coef, Intercept: p.Intercept}, nil
	case "lasso":
		var p lassoJSON
		if err := json.Unmarshal(env.Payload, &p); err != nil {
			return nil, err
		}
		m := NewLasso(p.Alpha)
		m.Coef = p.Coef
		m.Intercept = p.Intercept
		return m, nil
	case "svr":
		var p svrJSON
		if err := json.Unmarshal(env.Payload, &p); err != nil {
			return nil, err
		}
		m := NewSVR(p.C, p.Epsilon, p.Gamma)
		m.x, m.beta, m.mean, m.scale, m.gamma = p.X, p.Beta, p.Mean, p.Scale, p.GammaF
		return m, nil
	case "tree":
		var p treeJSON
		if err := json.Unmarshal(env.Payload, &p); err != nil {
			return nil, err
		}
		return decodeTree(p)
	case "forest":
		var p forestJSON
		if err := json.Unmarshal(env.Payload, &p); err != nil {
			return nil, err
		}
		f := NewForest(ForestConfig{NumTrees: len(p.Trees)})
		f.trees = make([]*Tree, len(p.Trees))
		for i, tj := range p.Trees {
			t, err := decodeTree(tj)
			if err != nil {
				return nil, err
			}
			f.trees[i] = t
		}
		return f, nil
	default:
		return nil, fmt.Errorf("ml: unknown persisted model kind %q", env.Kind)
	}
}

func encodeTree(t *Tree) treeJSON {
	return treeJSON{MaxDepth: t.MaxDepth, MinLeaf: t.MinLeaf, D: t.d, Root: encodeNode(t.root)}
}

func encodeNode(n *treeNode) *nodeJSON {
	if n == nil {
		return nil
	}
	if n.leaf {
		return &nodeJSON{Leaf: true, Value: n.value}
	}
	return &nodeJSON{
		Feature: n.feature, Thresh: n.thresh,
		Left: encodeNode(n.left), Right: encodeNode(n.right),
	}
}

func decodeTree(p treeJSON) (*Tree, error) {
	t := NewTree(p.MaxDepth, p.MinLeaf)
	t.d = p.D
	root, err := decodeNode(p.Root, 0)
	if err != nil {
		return nil, err
	}
	t.root = root
	return t, nil
}

func decodeNode(p *nodeJSON, depth int) (*treeNode, error) {
	if p == nil {
		return nil, nil
	}
	if depth > 10000 {
		return nil, fmt.Errorf("ml: persisted tree too deep (corrupt?)")
	}
	if p.Leaf {
		return &treeNode{leaf: true, value: p.Value}, nil
	}
	if p.Left == nil || p.Right == nil {
		return nil, fmt.Errorf("ml: persisted split node missing a child")
	}
	l, err := decodeNode(p.Left, depth+1)
	if err != nil {
		return nil, err
	}
	r, err := decodeNode(p.Right, depth+1)
	if err != nil {
		return nil, err
	}
	return &treeNode{feature: p.Feature, thresh: p.Thresh, left: l, right: r}, nil
}
