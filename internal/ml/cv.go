package ml

import (
	"fmt"
	"sort"

	"dsenergy/internal/xrand"
)

// KFoldMAPE estimates generalization MAPE with shuffled k-fold
// cross-validation: the spec is re-fit on each training fold and evaluated
// on the held-out fold; the mean MAPE across folds is returned.
func KFoldMAPE(spec Spec, X [][]float64, y []float64, k int, seed uint64) (float64, error) {
	n, _, err := checkXY(X, y)
	if err != nil {
		return 0, err
	}
	if k < 2 || k > n {
		return 0, fmt.Errorf("ml: k-fold needs 2 <= k <= n, got k=%d n=%d", k, n)
	}
	perm := xrand.New(seed).Perm(n)
	var total float64
	for fold := 0; fold < k; fold++ {
		lo, hi := fold*n/k, (fold+1)*n/k
		test := perm[lo:hi]
		inTest := make(map[int]bool, len(test))
		for _, i := range test {
			inTest[i] = true
		}
		var trX [][]float64
		var trY []float64
		for i := 0; i < n; i++ {
			if !inTest[i] {
				trX = append(trX, X[i])
				trY = append(trY, y[i])
			}
		}
		model, err := spec.New(seed + uint64(fold))
		if err != nil {
			return 0, err
		}
		if err := model.Fit(trX, trY); err != nil {
			return 0, err
		}
		var yt, yp []float64
		for _, i := range test {
			yt = append(yt, y[i])
			yp = append(yp, model.Predict(X[i]))
		}
		total += MAPE(yt, yp)
	}
	return total / float64(k), nil
}

// GroupSplit partitions a dataset by a group label — the paper's
// leave-one-input-out protocol, where every sample sharing the input feature
// vector forms a group and the whole group is held out together.
type GroupSplit struct {
	TrainIdx []int
	TestIdx  []int
	Group    string
}

// LeaveOneGroupOut returns one split per distinct group label, in sorted
// group order.
func LeaveOneGroupOut(groups []string) []GroupSplit {
	uniq := map[string][]int{}
	for i, g := range groups {
		uniq[g] = append(uniq[g], i)
	}
	names := make([]string, 0, len(uniq))
	for g := range uniq {
		names = append(names, g)
	}
	sort.Strings(names)

	splits := make([]GroupSplit, 0, len(names))
	for _, g := range names {
		s := GroupSplit{Group: g, TestIdx: uniq[g]}
		for i, gi := range groups {
			if gi != g {
				s.TrainIdx = append(s.TrainIdx, i)
			}
		}
		splits = append(splits, s)
	}
	return splits
}

// GridPoint is one hyper-parameter assignment evaluated by GridSearch.
type GridPoint struct {
	Params map[string]float64
	MAPE   float64
}

// GridSearch exhaustively evaluates the Cartesian product of the parameter
// grid with k-fold CV and returns every point (best first). This reproduces
// the paper's random-forest tuning over max_depth, n_estimators and
// max_features.
func GridSearch(base Spec, grid map[string][]float64, X [][]float64, y []float64, k int, seed uint64) ([]GridPoint, error) {
	names := make([]string, 0, len(grid))
	for name := range grid {
		names = append(names, name)
	}
	sort.Strings(names)

	var points []GridPoint
	var rec func(i int, cur map[string]float64) error
	rec = func(i int, cur map[string]float64) error {
		if i == len(names) {
			spec := Spec{Algorithm: base.Algorithm, Params: map[string]float64{}}
			for k, v := range base.Params {
				spec.Params[k] = v
			}
			for k, v := range cur {
				spec.Params[k] = v
			}
			m, err := KFoldMAPE(spec, X, y, k, seed)
			if err != nil {
				return err
			}
			pt := GridPoint{Params: map[string]float64{}, MAPE: m}
			for k, v := range cur {
				pt.Params[k] = v
			}
			points = append(points, pt)
			return nil
		}
		for _, v := range grid[names[i]] {
			cur[names[i]] = v
			if err := rec(i+1, cur); err != nil {
				return err
			}
		}
		delete(cur, names[i])
		return nil
	}
	if err := rec(0, map[string]float64{}); err != nil {
		return nil, err
	}
	sort.SliceStable(points, func(a, b int) bool { return points[a].MAPE < points[b].MAPE })
	return points, nil
}
