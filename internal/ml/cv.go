package ml

import (
	"context"
	"fmt"
	"sort"

	"dsenergy/internal/parallel"
	"dsenergy/internal/xrand"
)

// evalFold fits spec on every sample outside test and returns the MAPE on
// the held-out fold. scratch is an n-length membership marker owned by the
// caller: evalFold marks the test indices on entry and unmarks them before
// returning, so a serial caller reuses one allocation across all folds
// (replacing the per-fold map[int]bool this package used to build) while a
// parallel caller hands each chunk of folds its own slice.
func evalFold(spec Spec, X [][]float64, y []float64, test []int, scratch []bool, seed uint64) (float64, error) {
	stop := spec.Obs.Profile().Phase("ml.cv.fold").Start()
	defer stop()
	for _, i := range test {
		scratch[i] = true
	}
	defer func() {
		for _, i := range test {
			scratch[i] = false
		}
	}()
	var trX [][]float64
	var trY []float64
	for i := range X {
		if !scratch[i] {
			trX = append(trX, X[i])
			trY = append(trY, y[i])
		}
	}
	model, err := spec.New(seed)
	if err != nil {
		return 0, err
	}
	if err := model.Fit(trX, trY); err != nil {
		return 0, err
	}
	var yt, yp []float64
	for _, i := range test {
		yt = append(yt, y[i])
		yp = append(yp, model.Predict(X[i]))
	}
	spec.Obs.Metrics().Counter("ml_cv_folds_total").Inc()
	return MAPE(yt, yp), nil
}

// kfoldMAPE computes the shuffled k-fold MAPE on up to workers goroutines.
// Fold seeds (seed + fold) and the shuffle are fixed before any fold runs,
// and the per-fold MAPEs are summed in fold order, so the result is
// bit-identical for every worker count.
//
// perm optionally supplies the length-n shuffle; nil derives it from the
// seed as always. GridSearch computes Perm(n) once and shares it (read-only)
// across every grid point, since every point would derive the identical
// permutation from the same (n, seed) anyway.
func kfoldMAPE(spec Spec, X [][]float64, y []float64, k int, seed uint64, workers int, perm []int) (float64, error) {
	n, _, err := checkXY(X, y)
	if err != nil {
		return 0, err
	}
	if k < 2 || k > n {
		return 0, fmt.Errorf("ml: k-fold needs 2 <= k <= n, got k=%d n=%d", k, n)
	}
	if perm == nil {
		perm = xrand.New(seed).Perm(n)
	}
	var folds []float64
	if parallel.Workers(workers) == 1 {
		scratch := make([]bool, n)
		folds = make([]float64, k)
		for fold := 0; fold < k; fold++ {
			lo, hi := fold*n/k, (fold+1)*n/k
			folds[fold], err = evalFold(spec, X, y, perm[lo:hi], scratch, seed+uint64(fold))
			if err != nil {
				return 0, err
			}
		}
	} else {
		// Each chunk owns folds[lo:hi) and reuses one membership scratch
		// across its folds, the same amortization the serial path gets across
		// all k. Fold seeds depend on the fold index alone, so the chunk
		// decomposition cannot change the bytes.
		folds = make([]float64, k)
		err = parallel.ForEachChunked(context.Background(), k, workers, 0, func(_ context.Context, lo, hi int) error {
			scratch := make([]bool, n)
			for fold := lo; fold < hi; fold++ {
				flo, fhi := fold*n/k, (fold+1)*n/k
				m, ferr := evalFold(spec, X, y, perm[flo:fhi], scratch, seed+uint64(fold))
				if ferr != nil {
					return ferr
				}
				folds[fold] = m
			}
			return nil
		})
		if err != nil {
			return 0, err
		}
	}
	var total float64
	for _, m := range folds {
		total += m
	}
	return total / float64(k), nil
}

// KFoldMAPE estimates generalization MAPE with shuffled k-fold
// cross-validation: the spec is re-fit on each training fold and evaluated
// on the held-out fold; the mean MAPE across folds is returned.
func KFoldMAPE(spec Spec, X [][]float64, y []float64, k int, seed uint64) (float64, error) {
	return kfoldMAPE(spec, X, y, k, seed, 1, nil)
}

// KFoldMAPEParallel is KFoldMAPE with the folds trained on a worker pool
// (workers <= 0 selects GOMAXPROCS). Every fold's model seed derives from
// the fold index alone, so the estimate is bit-identical to KFoldMAPE.
func KFoldMAPEParallel(spec Spec, X [][]float64, y []float64, k int, seed uint64, workers int) (float64, error) {
	return kfoldMAPE(spec, X, y, k, seed, workers, nil)
}

// GroupSplit partitions a dataset by a group label — the paper's
// leave-one-input-out protocol, where every sample sharing the input feature
// vector forms a group and the whole group is held out together.
type GroupSplit struct {
	TrainIdx []int
	TestIdx  []int
	Group    string
}

// LeaveOneGroupOut returns one split per distinct group label, in sorted
// group order.
func LeaveOneGroupOut(groups []string) []GroupSplit {
	uniq := map[string][]int{}
	for i, g := range groups {
		uniq[g] = append(uniq[g], i)
	}
	names := make([]string, 0, len(uniq))
	for g := range uniq {
		names = append(names, g)
	}
	sort.Strings(names)

	splits := make([]GroupSplit, 0, len(names))
	for _, g := range names {
		s := GroupSplit{Group: g, TestIdx: uniq[g]}
		for i, gi := range groups {
			if gi != g {
				s.TrainIdx = append(s.TrainIdx, i)
			}
		}
		splits = append(splits, s)
	}
	return splits
}

// GridPoint is one hyper-parameter assignment evaluated by GridSearch.
type GridPoint struct {
	Params map[string]float64
	MAPE   float64
}

// enumerateGrid expands the Cartesian product of the parameter grid into one
// assignment per point, ordered lexicographically by sorted parameter name —
// a fixed enumeration the evaluation stage can fan out over.
func enumerateGrid(grid map[string][]float64) []map[string]float64 {
	names := make([]string, 0, len(grid))
	for name := range grid {
		names = append(names, name)
	}
	sort.Strings(names)

	var combos []map[string]float64
	var rec func(i int, cur map[string]float64)
	rec = func(i int, cur map[string]float64) {
		if i == len(names) {
			combo := make(map[string]float64, len(cur))
			for k, v := range cur {
				combo[k] = v
			}
			combos = append(combos, combo)
			return
		}
		for _, v := range grid[names[i]] {
			cur[names[i]] = v
			rec(i+1, cur)
		}
		delete(cur, names[i])
	}
	rec(0, map[string]float64{})
	return combos
}

// gridSearch evaluates every grid point with k-fold CV on up to workers
// goroutines. Each point's CV run depends only on (spec, seed), both fixed
// at enumeration time, and the final ranking is a stable sort over the fixed
// enumeration order, so the result is identical for every worker count.
func gridSearch(base Spec, grid map[string][]float64, X [][]float64, y []float64, k int, seed uint64, workers int) ([]GridPoint, error) {
	combos := enumerateGrid(grid)
	n, _, err := checkXY(X, y)
	if err != nil {
		return nil, err
	}
	// Every grid point runs k-fold CV on the same (n, seed), so they would
	// all derive the same shuffle; compute it once and share it read-only.
	perm := xrand.New(seed).Perm(n)
	gridPoints := base.Obs.Metrics().Counter("ml_grid_points_total")
	gridPhase := base.Obs.Profile().Phase("ml.grid.point")
	points := make([]GridPoint, len(combos))
	err = parallel.ForEachChunked(context.Background(), len(combos), workers, 0, func(_ context.Context, lo, hi int) error {
		for i := lo; i < hi; i++ {
			stop := gridPhase.Start()
			spec := Spec{Algorithm: base.Algorithm, Params: map[string]float64{}, Obs: base.Obs}
			for k, v := range base.Params {
				spec.Params[k] = v
			}
			for k, v := range combos[i] {
				spec.Params[k] = v
			}
			m, err := kfoldMAPE(spec, X, y, k, seed, 1, perm)
			stop()
			if err != nil {
				return err
			}
			gridPoints.Inc()
			points[i] = GridPoint{Params: combos[i], MAPE: m}
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	// Cold path: ranking a handful of grid points once per search.
	//dsalint:ignore sortslice
	sort.SliceStable(points, func(a, b int) bool { return points[a].MAPE < points[b].MAPE })
	return points, nil
}

// GridSearch exhaustively evaluates the Cartesian product of the parameter
// grid with k-fold CV and returns every point (best first). This reproduces
// the paper's random-forest tuning over max_depth, n_estimators and
// max_features.
func GridSearch(base Spec, grid map[string][]float64, X [][]float64, y []float64, k int, seed uint64) ([]GridPoint, error) {
	return gridSearch(base, grid, X, y, k, seed, 1)
}

// GridSearchParallel is GridSearch with the grid points evaluated on a
// worker pool (workers <= 0 selects GOMAXPROCS). The ranking is identical to
// the serial search for every worker count.
func GridSearchParallel(base Spec, grid map[string][]float64, X [][]float64, y []float64, k int, seed uint64, workers int) ([]GridPoint, error) {
	return gridSearch(base, grid, X, y, k, seed, workers)
}
