package ml

import (
	"fmt"
	"math"
)

// Lasso is L1-regularized linear regression trained by cyclic coordinate
// descent on standardized features (the scikit-learn formulation:
// minimize ‖y − Xw − b‖² / (2n) + α‖w‖₁).
//
// The solver uses the covariance-update form of coordinate descent: the Gram
// matrix XᵀX and correlations Xᵀy are precomputed once, after which every
// coordinate update costs O(d) instead of O(n). Zeroed coordinates are
// skipped under a certificate that proves their update would be exactly
// zero, so the sweeps concentrate on the active set without changing a
// single bit of the trajectory (locked by TestLassoActiveSetMatchesDense).
type Lasso struct {
	// Alpha is the L1 penalty weight.
	Alpha float64
	// MaxIter bounds the coordinate-descent sweeps.
	MaxIter int
	// Tol is the convergence threshold on the max coefficient change.
	Tol float64

	Coef      []float64
	Intercept float64

	mean, scale []float64

	// denseSweeps disables the active-set certificates so every sweep
	// evaluates every coordinate — the reference schedule the certificates
	// must match bit-for-bit. Tests only.
	denseSweeps bool
}

// NewLasso returns a Lasso model with penalty alpha and scikit-learn-like
// defaults (1000 sweeps, 1e-6 tolerance).
func NewLasso(alpha float64) *Lasso {
	return &Lasso{Alpha: alpha, MaxIter: 1000, Tol: 1e-6}
}

// Fit implements Regressor.
func (l *Lasso) Fit(X [][]float64, y []float64) error {
	n, d, err := checkXY(X, y)
	if err != nil {
		return err
	}
	if l.Alpha < 0 {
		return fmt.Errorf("ml: lasso alpha must be non-negative, got %g", l.Alpha)
	}

	// Standardize features into one flat column-major backing slice (column j
	// is xc[j*n : (j+1)*n]) and center the target. Column layout makes every
	// Gram entry below a streaming dot product over contiguous memory.
	l.mean = make([]float64, d)
	l.scale = make([]float64, d)
	xc := make([]float64, d*n)
	for j := 0; j < d; j++ {
		var m float64
		for i := 0; i < n; i++ {
			m += X[i][j]
		}
		m /= float64(n)
		var v float64
		for i := 0; i < n; i++ {
			dv := X[i][j] - m
			v += dv * dv
		}
		s := math.Sqrt(v / float64(n))
		if s == 0 {
			s = 1
		}
		l.mean[j], l.scale[j] = m, s
		col := xc[j*n : j*n+n]
		for i := 0; i < n; i++ {
			col[i] = (X[i][j] - m) / s
		}
	}
	var ymean float64
	for _, v := range y {
		ymean += v
	}
	ymean /= float64(n)
	yc := make([]float64, n)
	for i, v := range y {
		yc[i] = v - ymean
	}

	// Covariance precompute: G = XᵀX (d×d, symmetric) and xty = Xᵀ(y − ȳ),
	// each entry one pipelined dot over two contiguous columns. Every
	// coordinate update below then reads one d-length Gram row instead of an
	// n-length column.
	G := make([]float64, d*d)
	xty := make([]float64, d)
	for j := 0; j < d; j++ {
		colj := xc[j*n : j*n+n]
		xty[j] = dotUnrolled(colj, yc)
		for l2 := j; l2 < d; l2++ {
			v := dotUnrolled(colj, xc[l2*n:l2*n+n])
			G[j*d+l2] = v
			G[l2*d+j] = v
		}
	}

	w := make([]float64, d)

	// Column norms: with standardized features Σx² = n.
	colSq := float64(n)
	thresh := l.Alpha * float64(n)

	// Active-set certificates. A coordinate at zero whose correlation rho
	// has slack margin[j] = thresh − |rho| > 0 cannot activate while the
	// total |Δw| mass since certification stays under margin/max|G row|:
	// |Δrho_j| ≤ max_l|G_jl| · Σ|Δw_l|. Skipped updates are therefore
	// provably exact no-ops, and the sweep trajectory matches the dense
	// schedule bit-for-bit.
	margin := make([]float64, d)
	certTot := make([]float64, d)
	gmax := make([]float64, d)
	for j := 0; j < d; j++ {
		margin[j] = -1
		var g float64
		for _, v := range G[j*d : j*d+d] {
			if av := math.Abs(v); av > g {
				g = av
			}
		}
		gmax[j] = g
	}
	var totAbs float64

	for it := 0; it < l.MaxIter; it++ {
		var maxDelta float64
		for j := 0; j < d; j++ {
			if margin[j] >= 0 {
				drift := gmax[j] * (totAbs - certTot[j])
				if drift+drift*1e-9 <= margin[j] {
					continue // certified: the update is provably zero
				}
				margin[j] = -1
			}
			// rho = x_jᵀ r + w_j Σx² = xty_j − Σ_l G_jl w_l + w_j Σx².
			gRow := G[j*d : j*d+d]
			var dot float64
			for l2, wl := range w {
				dot += gRow[l2] * wl
			}
			rho := xty[j] - dot + w[j]*colSq
			newW := softThreshold(rho, thresh) / colSq
			delta := newW - w[j]
			if delta == 0 {
				if newW == 0 && !l.denseSweeps {
					if m := thresh - math.Abs(rho); m > 0 {
						margin[j] = m
						certTot[j] = totAbs
					}
				}
				continue
			}
			w[j] = newW
			totAbs += math.Abs(delta)
			if ad := math.Abs(delta); ad > maxDelta {
				maxDelta = ad
			}
		}
		if maxDelta < l.Tol {
			break
		}
	}

	// Translate back to the original feature scale.
	l.Coef = make([]float64, d)
	l.Intercept = ymean
	for j := 0; j < d; j++ {
		l.Coef[j] = w[j] / l.scale[j]
		l.Intercept -= l.Coef[j] * l.mean[j]
	}
	return nil
}

// Predict implements Regressor.
func (l *Lasso) Predict(x []float64) float64 {
	s := l.Intercept
	for j, c := range l.Coef {
		if j < len(x) {
			s += c * x[j]
		}
	}
	return s
}

// dotUnrolled computes a·b with four independent partial sums, folded in a
// fixed order — deterministic, and pipelined enough to stream two columns at
// close to load bandwidth.
func dotUnrolled(a, b []float64) float64 {
	n := len(a)
	b = b[:n]
	var s0, s1, s2, s3 float64
	i := 0
	for ; i+3 < n; i += 4 {
		s0 += a[i] * b[i]
		s1 += a[i+1] * b[i+1]
		s2 += a[i+2] * b[i+2]
		s3 += a[i+3] * b[i+3]
	}
	for ; i < n; i++ {
		s0 += a[i] * b[i]
	}
	return ((s0 + s1) + s2) + s3
}

// softThreshold is the proximal operator of the L1 norm.
func softThreshold(z, t float64) float64 {
	switch {
	case z > t:
		return z - t
	case z < -t:
		return z + t
	default:
		return 0
	}
}
