package ml

import (
	"fmt"
	"math"
)

// Lasso is L1-regularized linear regression trained by cyclic coordinate
// descent on standardized features (the scikit-learn formulation:
// minimize ‖y − Xw − b‖² / (2n) + α‖w‖₁).
type Lasso struct {
	// Alpha is the L1 penalty weight.
	Alpha float64
	// MaxIter bounds the coordinate-descent sweeps.
	MaxIter int
	// Tol is the convergence threshold on the max coefficient change.
	Tol float64

	Coef      []float64
	Intercept float64

	mean, scale []float64
}

// NewLasso returns a Lasso model with penalty alpha and scikit-learn-like
// defaults (1000 sweeps, 1e-6 tolerance).
func NewLasso(alpha float64) *Lasso {
	return &Lasso{Alpha: alpha, MaxIter: 1000, Tol: 1e-6}
}

// Fit implements Regressor.
func (l *Lasso) Fit(X [][]float64, y []float64) error {
	n, d, err := checkXY(X, y)
	if err != nil {
		return err
	}
	if l.Alpha < 0 {
		return fmt.Errorf("ml: lasso alpha must be non-negative, got %g", l.Alpha)
	}

	// Standardize features; center the target.
	l.mean = make([]float64, d)
	l.scale = make([]float64, d)
	xs := make([][]float64, n)
	for i := range xs {
		xs[i] = make([]float64, d)
	}
	for j := 0; j < d; j++ {
		var m float64
		for i := 0; i < n; i++ {
			m += X[i][j]
		}
		m /= float64(n)
		var v float64
		for i := 0; i < n; i++ {
			dv := X[i][j] - m
			v += dv * dv
		}
		s := math.Sqrt(v / float64(n))
		if s == 0 {
			s = 1
		}
		l.mean[j], l.scale[j] = m, s
		for i := 0; i < n; i++ {
			xs[i][j] = (X[i][j] - m) / s
		}
	}
	var ymean float64
	for _, v := range y {
		ymean += v
	}
	ymean /= float64(n)

	// Residual r = y - Xw (w starts at zero).
	r := make([]float64, n)
	for i := range r {
		r[i] = y[i] - ymean
	}
	w := make([]float64, d)

	// Column norms: with standardized features Σx² = n.
	colSq := float64(n)
	thresh := l.Alpha * float64(n)

	for it := 0; it < l.MaxIter; it++ {
		var maxDelta float64
		for j := 0; j < d; j++ {
			// rho = x_jᵀ r + w_j Σx²  (the partial residual correlation).
			var rho float64
			for i := 0; i < n; i++ {
				rho += xs[i][j] * r[i]
			}
			rho += w[j] * colSq
			newW := softThreshold(rho, thresh) / colSq
			if delta := newW - w[j]; delta != 0 {
				for i := 0; i < n; i++ {
					r[i] -= delta * xs[i][j]
				}
				if ad := math.Abs(delta); ad > maxDelta {
					maxDelta = ad
				}
				w[j] = newW
			}
		}
		if maxDelta < l.Tol {
			break
		}
	}

	// Translate back to the original feature scale.
	l.Coef = make([]float64, d)
	l.Intercept = ymean
	for j := 0; j < d; j++ {
		l.Coef[j] = w[j] / l.scale[j]
		l.Intercept -= l.Coef[j] * l.mean[j]
	}
	return nil
}

// Predict implements Regressor.
func (l *Lasso) Predict(x []float64) float64 {
	s := l.Intercept
	for j, c := range l.Coef {
		if j < len(x) {
			s += c * x[j]
		}
	}
	return s
}

// softThreshold is the proximal operator of the L1 norm.
func softThreshold(z, t float64) float64 {
	switch {
	case z > t:
		return z - t
	case z < -t:
		return z + t
	default:
		return 0
	}
}
