package ml

import (
	"fmt"
	"math"

	"dsenergy/internal/xrand"
)

// KMeans is Lloyd's algorithm with k-means++ seeding. The repository uses it
// to reproduce the clustering-based GPU performance/power methodology of Wu
// et al. (HPCA'15), the second general-purpose baseline family the paper's
// related work discusses: kernels are clustered by their feature vectors and
// each cluster carries a representative scaling curve.
type KMeans struct {
	// K is the cluster count.
	K int
	// MaxIter bounds Lloyd iterations.
	MaxIter int
	// Tol stops iteration when centroid movement falls below it.
	Tol float64

	Centroids [][]float64
	// Inertia is the final within-cluster sum of squared distances.
	Inertia float64
}

// NewKMeans returns a clusterer with scikit-learn-like defaults.
func NewKMeans(k int) *KMeans {
	return &KMeans{K: k, MaxIter: 300, Tol: 1e-9}
}

// Fit clusters the rows of X. Seeding and tie-breaking are deterministic in
// seed.
func (km *KMeans) Fit(X [][]float64, seed uint64) error {
	n := len(X)
	if n == 0 {
		return fmt.Errorf("ml: kmeans on empty data")
	}
	if km.K < 1 || km.K > n {
		return fmt.Errorf("ml: kmeans needs 1 <= k <= n, got k=%d n=%d", km.K, n)
	}
	d := len(X[0])
	for i, r := range X {
		if len(r) != d {
			return fmt.Errorf("ml: kmeans row %d has %d features, want %d", i, len(r), d)
		}
	}
	rng := xrand.New(seed)

	// k-means++ seeding.
	cents := make([][]float64, 0, km.K)
	cents = append(cents, append([]float64(nil), X[rng.Intn(n)]...))
	dist2 := make([]float64, n)
	for len(cents) < km.K {
		var total float64
		for i, x := range X {
			best := math.Inf(1)
			for _, c := range cents {
				if dd := sqDist(x, c); dd < best {
					best = dd
				}
			}
			dist2[i] = best
			total += best
		}
		if total == 0 {
			// All remaining points coincide with centroids; duplicate one.
			cents = append(cents, append([]float64(nil), X[rng.Intn(n)]...))
			continue
		}
		r := rng.Float64() * total
		acc := 0.0
		pick := n - 1
		for i, dd := range dist2 {
			acc += dd
			if acc >= r {
				pick = i
				break
			}
		}
		cents = append(cents, append([]float64(nil), X[pick]...))
	}

	assign := make([]int, n)
	counts := make([]int, km.K)
	for it := 0; it < km.MaxIter; it++ {
		// Assignment step.
		for i, x := range X {
			best, bi := math.Inf(1), 0
			for c, cent := range cents {
				if dd := sqDist(x, cent); dd < best {
					best, bi = dd, c
				}
			}
			assign[i] = bi
		}
		// Update step.
		next := make([][]float64, km.K)
		for c := range next {
			next[c] = make([]float64, d)
			counts[c] = 0
		}
		for i, x := range X {
			c := assign[i]
			counts[c]++
			for j, v := range x {
				next[c][j] += v
			}
		}
		var moved float64
		for c := range next {
			if counts[c] == 0 {
				// Re-seed empty clusters at the farthest point.
				far, fi := -1.0, 0
				for i, x := range X {
					if dd := sqDist(x, cents[assign[i]]); dd > far {
						far, fi = dd, i
					}
				}
				copy(next[c], X[fi])
			} else {
				inv := 1 / float64(counts[c])
				for j := range next[c] {
					next[c][j] *= inv
				}
			}
			moved += math.Sqrt(sqDist(next[c], cents[c]))
			cents[c] = next[c]
		}
		if moved < km.Tol {
			break
		}
	}

	km.Centroids = cents
	km.Inertia = 0
	for i, x := range X {
		km.Inertia += sqDist(x, cents[assign[i]])
	}
	return nil
}

// Predict returns the index of the nearest centroid.
func (km *KMeans) Predict(x []float64) int {
	best, bi := math.Inf(1), 0
	for c, cent := range km.Centroids {
		if dd := sqDist(x, cent); dd < best {
			best, bi = dd, c
		}
	}
	return bi
}

// Assignments returns the cluster index of every row of X.
func (km *KMeans) Assignments(X [][]float64) []int {
	out := make([]int, len(X))
	for i, x := range X {
		out[i] = km.Predict(x)
	}
	return out
}

func sqDist(a, b []float64) float64 {
	var s float64
	for i := range a {
		d := a[i] - b[i]
		s += d * d
	}
	return s
}
