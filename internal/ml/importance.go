package ml

import (
	"fmt"

	"dsenergy/internal/xrand"
)

// Model interpretation utilities: which features carry a trained model's
// predictive power. The paper's feature-selection argument (§4.2.1) — input
// characteristics matter, static features don't capture them — becomes
// checkable: the domain-specific forests must put weight on the input
// features, not just the frequency column.

// PermutationImportance measures each feature's contribution to a fitted
// regressor: the increase in MAPE on (X, y) after shuffling that feature's
// column, averaged over rounds. Larger is more important; ~0 means the model
// ignores the feature.
func PermutationImportance(r Regressor, X [][]float64, y []float64, rounds int, seed uint64) ([]float64, error) {
	n, d, err := checkXY(X, y)
	if err != nil {
		return nil, err
	}
	if rounds < 1 {
		rounds = 1
	}
	base := MAPE(y, PredictBatch(r, X))
	rng := xrand.New(seed)

	imp := make([]float64, d)
	col := make([]float64, n)
	work := cloneMatrix(X)
	for j := 0; j < d; j++ {
		var total float64
		for round := 0; round < rounds; round++ {
			for i := range col {
				col[i] = X[i][j]
			}
			rng.Shuffle(n, func(a, b int) { col[a], col[b] = col[b], col[a] })
			for i := range work {
				work[i][j] = col[i]
			}
			total += MAPE(y, PredictBatch(r, work)) - base
		}
		imp[j] = total / float64(rounds)
		// Restore the column.
		for i := range work {
			work[i][j] = X[i][j]
		}
	}
	return imp, nil
}

// ForestFeatureImportance returns impurity-based (Gini-style, here
// SSE-reduction) importances of a fitted forest, normalized to sum to 1.
func ForestFeatureImportance(f *Forest, numFeatures int) ([]float64, error) {
	if f == nil || len(f.trees) == 0 {
		return nil, fmt.Errorf("ml: importance of unfitted forest")
	}
	if numFeatures < 1 {
		return nil, fmt.Errorf("ml: non-positive feature count")
	}
	imp := make([]float64, numFeatures)
	for _, t := range f.trees {
		accumulateImportance(t, imp)
	}
	var total float64
	for _, v := range imp {
		total += v
	}
	if total > 0 {
		for j := range imp {
			imp[j] /= total
		}
	}
	return imp, nil
}

// accumulateImportance adds each split's weight to its feature. Gains are
// not stored on nodes, so the walk uses split counts as a proxy weighted by
// subtree size — deeper splits partition fewer samples. The flat node arrays
// are laid out in preorder, so an ascending index sweep visits splits in the
// same depth-first order (and accumulates in the same float order) as the
// legacy pointer walk.
func accumulateImportance(t *Tree, imp []float64) {
	counts := t.subtreeLeafCounts()
	for i, f := range t.feature {
		if f >= 0 && int(f) < len(imp) {
			// Weight a split by the size of the subtree it governs.
			imp[f] += float64(counts[i])
		}
	}
}
