package ml

import (
	"errors"
	"math"
	"strings"
	"testing"
)

// TestLoadRegressorRejectsCorruptShapes is the decode-time validation table:
// every payload below parses as JSON but could not have been written by
// SaveRegressor over a fitted model, and before validation each one loaded
// "successfully" only to panic or return garbage at the first Predict. All
// must now fail with ErrCorruptModel.
func TestLoadRegressorRejectsCorruptShapes(t *testing.T) {
	cases := []struct {
		name    string
		payload string
	}{
		{"linear nil coef", `{"kind":"linear","payload":{"intercept":1.5}}`},
		{"linear empty coef", `{"kind":"linear","payload":{"coef":[],"intercept":1.5}}`},
		{"lasso nil coef", `{"kind":"lasso","payload":{"alpha":0.1,"intercept":2}}`},
		{"lasso empty coef", `{"kind":"lasso","payload":{"alpha":0.1,"coef":[],"intercept":2}}`},
		{"svr no support vectors",
			`{"kind":"svr","payload":{"c":1,"epsilon":0.1,"x":[],"beta":[],"mean":[],"scale":[]}}`},
		{"svr zero-width support vectors",
			`{"kind":"svr","payload":{"c":1,"x":[[]],"beta":[0.5],"mean":[],"scale":[]}}`},
		{"svr ragged support vectors",
			`{"kind":"svr","payload":{"c":1,"x":[[1,2],[3]],"beta":[0.5,0.5],"mean":[0,0],"scale":[1,1]}}`},
		{"svr beta length mismatch",
			`{"kind":"svr","payload":{"c":1,"x":[[1,2],[3,4]],"beta":[0.5],"mean":[0,0],"scale":[1,1]}}`},
		{"svr mean length mismatch",
			`{"kind":"svr","payload":{"c":1,"x":[[1,2]],"beta":[0.5],"mean":[0],"scale":[1,1]}}`},
		{"svr scale length mismatch",
			`{"kind":"svr","payload":{"c":1,"x":[[1,2]],"beta":[0.5],"mean":[0,0],"scale":[1]}}`},
		{"tree negative dimension", `{"kind":"tree","payload":{"d":-1,"root":{"leaf":true,"value":3}}}`},
		{"tree split missing child",
			`{"kind":"tree","payload":{"d":2,"root":{"leaf":false,"feature":0,"thresh":1}}}`},
		{"tree negative split feature",
			`{"kind":"tree","payload":{"d":2,"root":{"feature":-3,"thresh":1,` +
				`"left":{"leaf":true,"value":1},"right":{"leaf":true,"value":2}}}}`},
		{"tree split feature out of range",
			`{"kind":"tree","payload":{"d":1,"root":{"feature":4,"thresh":1,` +
				`"left":{"leaf":true,"value":1},"right":{"leaf":true,"value":2}}}}`},
		{"forest no trees", `{"kind":"forest","payload":{"trees":[]}}`},
		{"forest disagreeing tree dimensions",
			`{"kind":"forest","payload":{"trees":[` +
				`{"d":2,"root":{"leaf":true,"value":1}},` +
				`{"d":3,"root":{"leaf":true,"value":1}}]}}`},
		{"forest corrupt member tree",
			`{"kind":"forest","payload":{"trees":[{"d":1,"root":{"leaf":false,"feature":0,"thresh":1}}]}}`},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			r, err := LoadRegressor(strings.NewReader(tc.payload))
			if err == nil {
				t.Fatalf("corrupt payload loaded successfully: %#v", r)
			}
			if !errors.Is(err, ErrCorruptModel) {
				t.Fatalf("error is not ErrCorruptModel: %v", err)
			}
		})
	}
}

// TestLoadRegressorTruncatedPayloads covers payloads cut off mid-stream: a
// JSON decode error, not a shape error, but still a load failure.
func TestLoadRegressorTruncatedPayloads(t *testing.T) {
	whole := `{"kind":"lasso","payload":{"alpha":0.1,"coef":[1,2,3],"intercept":2}}`
	for _, cut := range []int{1, len(whole) / 3, len(whole) - 2} {
		if _, err := LoadRegressor(strings.NewReader(whole[:cut])); err == nil {
			t.Errorf("payload truncated at %d bytes loaded successfully", cut)
		}
	}
}

// TestLoadRegressorAcceptsValidShapes pins the other side: validation must
// not reject anything SaveRegressor writes (the round-trip test covers the
// fitted path; this covers the minimal hand-written envelopes).
func TestLoadRegressorAcceptsValidShapes(t *testing.T) {
	for _, payload := range []string{
		`{"kind":"linear","payload":{"coef":[1,2],"intercept":1}}`,
		`{"kind":"lasso","payload":{"alpha":0.1,"coef":[0,1],"intercept":0}}`,
		`{"kind":"svr","payload":{"c":1,"epsilon":0.1,"x":[[1,2]],"beta":[0.5],"mean":[0,0],"scale":[1,1],"gamma_fitted":0.5}}`,
		`{"kind":"tree","payload":{"d":1,"root":{"leaf":true,"value":3}}}`,
		`{"kind":"tree","payload":{"d":0}}`, // unfitted tree round-trips
		`{"kind":"forest","payload":{"trees":[{"d":2,"root":{"leaf":true,"value":1}}]}}`,
	} {
		if _, err := LoadRegressor(strings.NewReader(payload)); err != nil {
			t.Errorf("valid payload rejected: %v\n%s", err, payload)
		}
	}
}

// TestCheckedPredictBatch locks the serving-side inference contract: every
// regressor family rejects mis-shaped rows with an error (never Predict's
// zero fallback), and on well-shaped rows each result is bit-identical to
// the per-row Predict.
func TestCheckedPredictBatch(t *testing.T) {
	X := [][]float64{{1, 2}, {2, 1}, {3, 3}, {4, 1}, {0, 5}, {2, 2}, {5, 0}, {1, 4}}
	y := []float64{3, 3, 6, 5, 5, 4, 5, 5}
	fit := func(r Regressor) Regressor {
		if err := r.Fit(X, y); err != nil {
			t.Fatal(err)
		}
		return r
	}
	models := map[string]Regressor{
		"linear": fit(NewLinear()),
		"lasso":  fit(NewLasso(0.01)),
		"svr":    fit(NewSVR(10, 0.01, 0)),
		"tree":   fit(NewTree(4, 1)),
		"forest": fit(NewForest(ForestConfig{NumTrees: 5, Seed: 7})),
	}
	for name, m := range models {
		t.Run(name, func(t *testing.T) {
			got, err := CheckedPredictBatch(m, X)
			if err != nil {
				t.Fatal(err)
			}
			for i, x := range X {
				if math.Float64bits(got[i]) != math.Float64bits(m.Predict(x)) {
					t.Errorf("row %d: batch %g != predict %g", i, got[i], m.Predict(x))
				}
			}
			if _, err := CheckedPredictBatch(m, [][]float64{{1}}); err == nil {
				t.Error("short row accepted")
			}
			if _, err := CheckedPredictBatch(m, [][]float64{{1, 2, 3}}); err == nil {
				t.Error("wide row accepted")
			}
		})
	}
	for name, m := range map[string]Regressor{
		"linear": NewLinear(), "lasso": NewLasso(0.1), "svr": NewSVR(1, 0.1, 0),
		"tree": NewTree(4, 1), "forest": NewForest(ForestConfig{NumTrees: 3}),
	} {
		if _, err := CheckedPredictBatch(m, X); err == nil {
			t.Errorf("%s: unfitted model accepted a batch", name)
		}
	}
}
