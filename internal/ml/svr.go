package ml

import (
	"fmt"
	"math"
)

// SVR is ε-insensitive support vector regression with an RBF kernel, trained
// by exact cyclic coordinate maximization of the dual in the β = α − α*
// formulation. The bias is folded into the kernel (K + 1), which removes the
// equality constraint and makes each coordinate update a closed-form
// soft-threshold followed by box clipping — the same fixed point SMO reaches.
type SVR struct {
	// C is the box constraint (regularization inverse).
	C float64
	// Epsilon is the insensitive-tube half width.
	Epsilon float64
	// Gamma is the RBF width (0 selects the "scale" heuristic
	// 1/(d·Var(X)) used by scikit-learn).
	Gamma float64
	// MaxIter bounds the coordinate sweeps.
	MaxIter int
	// Tol is the convergence threshold on the max β change.
	Tol float64

	x           [][]float64 // support data (all training rows)
	beta        []float64
	mean, scale []float64
	gamma       float64
}

// NewSVR returns an SVR with the given hyper-parameters and scikit-learn-like
// iteration defaults.
func NewSVR(c, epsilon, gamma float64) *SVR {
	return &SVR{C: c, Epsilon: epsilon, Gamma: gamma, MaxIter: 300, Tol: 1e-5}
}

// Fit implements Regressor.
func (s *SVR) Fit(X [][]float64, y []float64) error {
	n, d, err := checkXY(X, y)
	if err != nil {
		return err
	}
	if s.C <= 0 {
		return fmt.Errorf("ml: svr C must be positive, got %g", s.C)
	}
	if s.Epsilon < 0 {
		return fmt.Errorf("ml: svr epsilon must be non-negative, got %g", s.Epsilon)
	}

	// Standardize features (RBF kernels need comparable scales).
	s.mean = make([]float64, d)
	s.scale = make([]float64, d)
	for j := 0; j < d; j++ {
		var m float64
		for i := 0; i < n; i++ {
			m += X[i][j]
		}
		m /= float64(n)
		var v float64
		for i := 0; i < n; i++ {
			dv := X[i][j] - m
			v += dv * dv
		}
		sc := math.Sqrt(v / float64(n))
		if sc == 0 {
			sc = 1
		}
		s.mean[j], s.scale[j] = m, sc
	}
	s.x = make([][]float64, n)
	for i := 0; i < n; i++ {
		s.x[i] = make([]float64, d)
		for j := 0; j < d; j++ {
			s.x[i][j] = (X[i][j] - s.mean[j]) / s.scale[j]
		}
	}

	s.gamma = s.Gamma
	if s.gamma == 0 {
		// "scale": 1/(d·Var) with standardized features Var ≈ 1.
		s.gamma = 1 / float64(d)
	}

	// Precompute the kernel matrix (with +1 bias fold).
	k := make([][]float64, n)
	for i := range k {
		k[i] = make([]float64, n)
		for j := 0; j <= i; j++ {
			v := s.rbf(s.x[i], s.x[j]) + 1
			k[i][j] = v
			k[j][i] = v
		}
	}

	// f[i] = Σ_j β_j K_ij is the current prediction.
	s.beta = make([]float64, n)
	f := make([]float64, n)

	for it := 0; it < s.MaxIter; it++ {
		var maxDelta float64
		for i := 0; i < n; i++ {
			// Exact maximizer of the dual along β_i:
			// β_i ← clip( soft(y_i − f_i + β_i·K_ii, ε) / K_ii, ±C ).
			z := y[i] - f[i] + s.beta[i]*k[i][i]
			nb := softThreshold(z, s.Epsilon) / k[i][i]
			if nb > s.C {
				nb = s.C
			} else if nb < -s.C {
				nb = -s.C
			}
			if delta := nb - s.beta[i]; delta != 0 {
				for j := 0; j < n; j++ {
					f[j] += delta * k[i][j]
				}
				if ad := math.Abs(delta); ad > maxDelta {
					maxDelta = ad
				}
				s.beta[i] = nb
			}
		}
		if maxDelta < s.Tol {
			break
		}
	}
	return nil
}

// Predict implements Regressor.
func (s *SVR) Predict(x []float64) float64 {
	if len(s.x) == 0 {
		return 0
	}
	xs := make([]float64, len(s.mean))
	for j := range xs {
		v := 0.0
		if j < len(x) {
			v = x[j]
		}
		xs[j] = (v - s.mean[j]) / s.scale[j]
	}
	var out float64
	for i, b := range s.beta {
		if b == 0 {
			continue
		}
		out += b * (s.rbf(s.x[i], xs) + 1)
	}
	return out
}

// NumSupportVectors returns the count of nonzero dual coefficients.
func (s *SVR) NumSupportVectors() int {
	n := 0
	for _, b := range s.beta {
		if b != 0 {
			n++
		}
	}
	return n
}

// rbf evaluates exp(−γ‖a−b‖²).
func (s *SVR) rbf(a, b []float64) float64 {
	var d2 float64
	for j := range a {
		dv := a[j] - b[j]
		d2 += dv * dv
	}
	return math.Exp(-s.gamma * d2)
}
