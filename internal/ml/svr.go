package ml

import (
	"fmt"
	"math"
)

// SVR is ε-insensitive support vector regression with an RBF kernel, trained
// by exact cyclic coordinate maximization of the dual in the β = α − α*
// formulation. The bias is folded into the kernel (K + 1), which removes the
// equality constraint and makes each coordinate update a closed-form
// soft-threshold followed by box clipping — the same fixed point SMO reaches.
//
// The solver shrinks the working set as coordinates pin to the box bounds:
// a coordinate is skipped only while a conservative certificate proves its
// update would be exactly zero, and its prediction value is replayed from a
// chronological update log before it is ever read again, so the trained
// coefficients are bit-identical to the full cyclic sweep for every input —
// converged or MaxIter-bound alike (locked by
// TestSVRShrinkingMatchesReference).
type SVR struct {
	// C is the box constraint (regularization inverse).
	C float64
	// Epsilon is the insensitive-tube half width.
	Epsilon float64
	// Gamma is the RBF width (0 selects the "scale" heuristic
	// 1/(d·Var(X)) used by scikit-learn).
	Gamma float64
	// MaxIter bounds the coordinate sweeps.
	MaxIter int
	// Tol is the convergence threshold on the max β change.
	Tol float64

	x           [][]float64 // support data (all training rows)
	beta        []float64
	mean, scale []float64
	gamma       float64
}

// NewSVR returns an SVR with the given hyper-parameters and scikit-learn-like
// iteration defaults.
func NewSVR(c, epsilon, gamma float64) *SVR {
	return &SVR{C: c, Epsilon: epsilon, Gamma: gamma, MaxIter: 300, Tol: 1e-5}
}

// Fit implements Regressor.
func (s *SVR) Fit(X [][]float64, y []float64) error {
	n, d, err := checkXY(X, y)
	if err != nil {
		return err
	}
	if s.C <= 0 {
		return fmt.Errorf("ml: svr C must be positive, got %g", s.C)
	}
	if s.Epsilon < 0 {
		return fmt.Errorf("ml: svr epsilon must be non-negative, got %g", s.Epsilon)
	}

	// Standardize features (RBF kernels need comparable scales). The rows
	// share one flat backing array: one allocation instead of n, and the
	// kernel build streams them in order.
	s.mean = make([]float64, d)
	s.scale = make([]float64, d)
	for j := 0; j < d; j++ {
		var m float64
		for i := 0; i < n; i++ {
			m += X[i][j]
		}
		m /= float64(n)
		var v float64
		for i := 0; i < n; i++ {
			dv := X[i][j] - m
			v += dv * dv
		}
		sc := math.Sqrt(v / float64(n))
		if sc == 0 {
			sc = 1
		}
		s.mean[j], s.scale[j] = m, sc
	}
	xbuf := make([]float64, n*d)
	s.x = make([][]float64, n)
	for i := 0; i < n; i++ {
		s.x[i] = xbuf[i*d : i*d+d]
		for j := 0; j < d; j++ {
			s.x[i][j] = (X[i][j] - s.mean[j]) / s.scale[j]
		}
	}

	s.gamma = s.Gamma
	if s.gamma == 0 {
		// "scale": 1/(d·Var) with standardized features Var ≈ 1.
		s.gamma = 1 / float64(d)
	}

	// Precompute the kernel matrix (with +1 bias fold) into one row-major
	// backing slice: row i is kb[i*n : (i+1)*n], contiguous for the sweep's
	// streaming row reads.
	kb := make([]float64, n*n)
	for i := 0; i < n; i++ {
		xi := s.x[i]
		rowi := kb[i*n : i*n+n]
		for j := 0; j <= i; j++ {
			v := s.rbf(xi, s.x[j]) + 1
			rowi[j] = v
			kb[j*n+i] = v
		}
	}

	s.beta = make([]float64, n)
	s.solveDual(kb, y, n)
	return nil
}

// svrKMax bounds every kernel entry: exp(−γ‖·‖²) ∈ (0, 1] plus the bias fold
// gives K_ij ∈ (1, 2]. The shrinking certificates use it to bound how far a
// skipped coordinate's prediction can have drifted.
const svrKMax = 2.0

// solveDual runs the cyclic coordinate sweeps over the dual with working-set
// shrinking. The executed update sequence — and therefore s.beta — is
// bit-identical to the plain reference sweep:
//
//   - a coordinate is only skipped under a certificate proving its update
//     would be exactly zero: when β_i is pinned at a bound or at zero with
//     slack margin m, the optimality condition cannot flip while the total
//     |Δβ| mass since certification stays below m/K_max;
//   - f_i of a coordinate outside the broadcast set is reconstructed by
//     replaying the missed (index, delta) log entries in chronological
//     order — the exact additions, in the exact order, the eager reference
//     loop would have applied;
//   - the broadcast set shrinks to the uncertified coordinates and their
//     kernel columns are repacked into a compact matrix, so tail sweeps
//     stream |active|² instead of |active|·n kernel entries. The packed
//     entries are copies, and per-slot updates are independent, so the bits
//     cannot change.
//
// Certificates engage in proportion to how much slack the margins carry
// over the update mass still in flight, so heavily regularized or
// converging fits shrink hard while noisy MaxIter-bound fits degrade
// gracefully to the plain sweep — never below it.
func (s *SVR) solveDual(kb, y []float64, n int) {
	beta := s.beta
	f := make([]float64, n)

	// Shrinking state. margin[i] >= 0 certifies that coordinate i's update
	// is zero while svrKMax·(totAbs − certTot[i]) stays under it; inB[i]
	// marks membership in the eager broadcast set; cursor[i] is the log
	// position a non-broadcast coordinate has replayed up to.
	margin := make([]float64, n)
	certTot := make([]float64, n)
	cursor := make([]int, n)
	inB := make([]bool, n)
	for i := range margin {
		margin[i] = -1
		inB[i] = true
	}
	// The update log is append-only for the whole solve: truncating it
	// would force long dependent replay chains through every certified
	// coordinate, and its size is already bounded by MaxIter·n entries of
	// 12 bytes (a fraction of the n² kernel it rides alongside).
	logIdx := make([]int32, 0, 4*n)
	logDelta := make([]float64, 0, 4*n)
	var totAbs float64

	// Packed-kernel state: when packed, kcIdx lists the broadcast set in
	// ascending order, kc holds its compact m×m kernel, and kcPos maps a
	// coordinate to its packed row (−1 when outside).
	var (
		packed    bool
		kc        []float64
		kcIdx     []int32
		kcPos     []int
		pinned    int // certified count at the last repack
		sincePack int // sweeps since the last repack
	)

	replay := func(i int) {
		row := kb[i*n : i*n+n]
		fi := f[i]
		for t := cursor[i]; t < len(logIdx); t++ {
			fi += logDelta[t] * row[logIdx[t]]
		}
		f[i] = fi
		cursor[i] = len(logIdx)
	}

	repack := func(active []int32) {
		m := len(active)
		if kcPos == nil {
			kcPos = make([]int, n)
		}
		for i := range kcPos {
			kcPos[i] = -1
		}
		// Coordinates leaving the broadcast set are current up to now;
		// coordinates (re)joining must catch up before going eager.
		for _, i := range active {
			if !inB[i] {
				replay(int(i))
			}
		}
		for i := 0; i < n; i++ {
			if inB[i] {
				cursor[i] = len(logIdx)
			}
			inB[i] = false
		}
		if cap(kc) < m*m {
			kc = make([]float64, m*m)
		}
		kc = kc[:m*m]
		for p, i := range active {
			rowi := kb[int(i)*n : int(i)*n+n]
			kcRow := kc[p*m : p*m+m]
			for t, j := range active {
				kcRow[t] = rowi[j]
			}
			kcPos[i] = p
			inB[i] = true
		}
		kcIdx = append(kcIdx[:0], active...)
		packed = true
	}

	certSlack := func() float64 { return 1e-9 * (1 + totAbs) }

	// A certificate only pays for itself when it survives many sweeps: an
	// expiry replays the skipped updates as a dependent chain, which costs
	// more per entry than receiving them eagerly. Admit a certificate only
	// when its margin covers several sweeps of drift at the current update
	// mass (sweepMass tracks the Σ|Δβ| of the last completed sweep).
	const certHorizon = 8
	sweepMass := math.Inf(1)

	for it := 0; it < s.MaxIter; it++ {
		var maxDelta float64
		prevTot := totAbs
		promoted := false
		for i := 0; i < n; i++ {
			if margin[i] >= 0 {
				if svrKMax*(totAbs-certTot[i])+certSlack() <= margin[i] {
					continue // certified: the update is provably zero
				}
				margin[i] = -1 // certificate expired: re-evaluate
			}
			if !inB[i] {
				replay(i)
			}
			kii := kb[i*n+i]
			z := y[i] - f[i] + beta[i]*kii
			nb := softThreshold(z, s.Epsilon) / kii
			if nb > s.C {
				nb = s.C
			} else if nb < -s.C {
				nb = -s.C
			}
			delta := nb - beta[i]
			if delta == 0 {
				// Certify the zero update when slack exists: how far z sits
				// from the nearest boundary that would change nb.
				bound := s.C*kii + s.Epsilon
				var m float64
				switch {
				// nb was assigned exactly ±C by the clip (or exactly 0 by the
				// soft threshold), so these equalities are exact by
				// construction — a tolerance would mis-certify interior
				// coordinates.
				//dsalint:ignore floateq
				case nb == s.C:
					m = z - bound
				//dsalint:ignore floateq
				case nb == -s.C:
					m = -bound - z
				case nb == 0:
					m = s.Epsilon - math.Abs(z)
				}
				if m > svrKMax*certHorizon*sweepMass {
					margin[i] = m
					certTot[i] = totAbs
				}
				continue
			}
			// Broadcast the update to the eager set; everyone else picks it
			// up from the log on their next replay (including i itself when
			// it is outside the broadcast set).
			if packed {
				if p := kcPos[i]; p >= 0 {
					mm := len(kcIdx)
					axpyGather(delta, kc[p*mm:p*mm+mm], kcIdx, f)
				} else {
					axpyAt(delta, kb[i*n:i*n+n], kcIdx, f)
					promoted = true
				}
			} else {
				axpy(delta, kb[i*n:i*n+n], f)
			}
			logIdx = append(logIdx, int32(i))
			logDelta = append(logDelta, delta)
			totAbs += math.Abs(delta)
			beta[i] = nb
			if ad := math.Abs(delta); ad > maxDelta {
				maxDelta = ad
			}
		}
		if maxDelta < s.Tol {
			break
		}

		// Repack bookkeeping: count certified coordinates and rebuild the
		// broadcast set when it has drifted from the certificate state —
		// shrunk further (more certificates) or grown (a lazy coordinate
		// updated). The O(m²) rebuild is rate-limited to amortize against
		// the O(updates·m) sweeps between packs.
		sweepMass = totAbs - prevTot
		sincePack++
		cert := 0
		for i := 0; i < n; i++ {
			if margin[i] >= 0 {
				cert++
			}
		}
		needPack := false
		if !packed {
			needPack = cert >= n/8
		} else if sincePack >= 8 {
			needPack = promoted || cert >= pinned+n/32
		}
		if needPack && n-cert > 0 {
			active := make([]int32, 0, n-cert)
			for i := 0; i < n; i++ {
				if margin[i] < 0 {
					active = append(active, int32(i))
				}
			}
			repack(active)
			pinned = cert
			sincePack = 0
		}
	}
}

// axpy adds delta·k[j] into f[j] for every j. The slots are independent, so
// the 4-wide unrolling only reorders independent operations: the bits match
// the plain loop exactly.
func axpy(delta float64, k, f []float64) {
	n := len(f)
	k = k[:n]
	j := 0
	for ; j+3 < n; j += 4 {
		f0 := f[j] + delta*k[j]
		f1 := f[j+1] + delta*k[j+1]
		f2 := f[j+2] + delta*k[j+2]
		f3 := f[j+3] + delta*k[j+3]
		f[j], f[j+1], f[j+2], f[j+3] = f0, f1, f2, f3
	}
	for ; j < n; j++ {
		f[j] += delta * k[j]
	}
}

// axpyGather adds delta·krow[t] into f[idx[t]]: the packed-kernel broadcast,
// where krow is the compact row over the ascending index set idx. Distinct
// indices make the slots independent, so unrolling preserves the bits.
func axpyGather(delta float64, krow []float64, idx []int32, f []float64) {
	m := len(idx)
	krow = krow[:m]
	t := 0
	for ; t+3 < m; t += 4 {
		j0, j1, j2, j3 := idx[t], idx[t+1], idx[t+2], idx[t+3]
		f0 := f[j0] + delta*krow[t]
		f1 := f[j1] + delta*krow[t+1]
		f2 := f[j2] + delta*krow[t+2]
		f3 := f[j3] + delta*krow[t+3]
		f[j0], f[j1], f[j2], f[j3] = f0, f1, f2, f3
	}
	for ; t < m; t++ {
		j := idx[t]
		f[j] += delta * krow[t]
	}
}

// axpyAt adds delta·k[j] into f[j] for each j in idx — the broadcast of a
// coordinate that has no packed row yet, read from its full kernel row.
func axpyAt(delta float64, k []float64, idx []int32, f []float64) {
	for _, j := range idx {
		f[j] += delta * k[j]
	}
}

// Predict implements Regressor.
func (s *SVR) Predict(x []float64) float64 {
	if len(s.x) == 0 {
		return 0
	}
	xs := make([]float64, len(s.mean))
	for j := range xs {
		v := 0.0
		if j < len(x) {
			v = x[j]
		}
		xs[j] = (v - s.mean[j]) / s.scale[j]
	}
	var out float64
	for i, b := range s.beta {
		if b == 0 {
			continue
		}
		out += b * (s.rbf(s.x[i], xs) + 1)
	}
	return out
}

// NumSupportVectors returns the count of nonzero dual coefficients.
func (s *SVR) NumSupportVectors() int {
	n := 0
	for _, b := range s.beta {
		if b != 0 {
			n++
		}
	}
	return n
}

// rbf evaluates exp(−γ‖a−b‖²).
func (s *SVR) rbf(a, b []float64) float64 {
	var d2 float64
	for j := range a {
		dv := a[j] - b[j]
		d2 += dv * dv
	}
	return math.Exp(-s.gamma * d2)
}
