package ml

import (
	"bytes"
	"strings"
	"testing"

	"dsenergy/internal/obs"
	"dsenergy/internal/xrand"
)

func TestObserverDoesNotPerturbTraining(t *testing.T) {
	X, y := synthLinear(xrand.New(21), 120, 0.2)
	fit := func(o *obs.Observer) *Forest {
		m := NewForest(ForestConfig{NumTrees: 12, Seed: 7, Obs: o})
		if err := m.Fit(X, y); err != nil {
			t.Fatal(err)
		}
		return m
	}
	plain, observed := fit(nil), fit(obs.NewObserver())
	probe := []float64{3.3, 4.4}
	if pa, pb := plain.Predict(probe), observed.Predict(probe); pa != pb {
		t.Errorf("observer changed forest prediction: %g vs %g", pa, pb)
	}

	base, err := KFoldMAPE(Spec{Algorithm: "forest", Params: map[string]float64{"n_estimators": 8}}, X, y, 4, 1)
	if err != nil {
		t.Fatal(err)
	}
	got, err := KFoldMAPE(Spec{Algorithm: "forest", Params: map[string]float64{"n_estimators": 8}, Obs: obs.NewObserver()}, X, y, 4, 1)
	if err != nil {
		t.Fatal(err)
	}
	if base != got {
		t.Errorf("observer changed k-fold MAPE: %g vs %g", base, got)
	}
}

func TestTrainingCountersAreScheduleIndependent(t *testing.T) {
	X, y := synthLinear(xrand.New(22), 100, 0.1)
	counts := func(workers int) (uint64, uint64, string) {
		o := obs.NewObserver()
		spec := Spec{Algorithm: "forest", Params: map[string]float64{"n_estimators": 6}, Obs: o}
		if _, err := KFoldMAPEParallel(spec, X, y, 5, 1, workers); err != nil {
			t.Fatal(err)
		}
		var buf bytes.Buffer
		if err := o.WriteMetricsText(&buf); err != nil {
			t.Fatal(err)
		}
		m := o.Metrics()
		return m.Counter("ml_cv_folds_total").Value(), m.Counter("ml_trees_trained_total").Value(), buf.String()
	}
	f1, tr1, e1 := counts(1)
	f8, tr8, e8 := counts(8)
	if f1 != 5 || f8 != 5 {
		t.Errorf("fold counters = %d / %d, want 5", f1, f8)
	}
	if tr1 != 30 || tr8 != 30 {
		t.Errorf("tree counters = %d / %d, want 30 (5 folds x 6 trees)", tr1, tr8)
	}
	if e1 != e8 {
		t.Errorf("metric exports differ across worker counts:\n%s\nvs\n%s", e1, e8)
	}
}

func TestGridSearchRecordsPointsAndPhases(t *testing.T) {
	X, y := synthLinear(xrand.New(23), 80, 0.1)
	o := obs.NewObserver()
	base := Spec{Algorithm: "forest", Params: map[string]float64{"n_estimators": 4}, Obs: o}
	grid := map[string][]float64{"max_depth": {2, 4}, "min_samples_leaf": {1, 2}}
	if _, err := GridSearchParallel(base, grid, X, y, 3, 1, 4); err != nil {
		t.Fatal(err)
	}
	if got := o.Metrics().Counter("ml_grid_points_total").Value(); got != 4 {
		t.Errorf("grid point counter = %d, want 4", got)
	}
	var buf bytes.Buffer
	if err := o.WriteProfileText(&buf); err != nil {
		t.Fatal(err)
	}
	for _, phase := range []string{"ml.grid.point", "ml.cv.fold", "ml.forest.tree"} {
		if !strings.Contains(buf.String(), phase) {
			t.Errorf("profile dump missing phase %q:\n%s", phase, buf.String())
		}
	}
}
