package ml

import (
	"fmt"
	"math"
)

// mapeRelEps sets the near-zero guard of MAPE: targets whose magnitude is
// at most mapeRelEps times the largest target magnitude are skipped. The
// threshold is relative, so it adapts to the target scale (speedups near 1,
// energies in joules) while staying far below any physically meaningful
// value — for the repo's datasets it never excludes a real sample.
const mapeRelEps = 1e-12

// MAPE returns the mean absolute percentage error, the accuracy metric of
// the paper's Figure 13 (expressed as a fraction, not percent).
//
// Division by the true value makes the metric undefined at zero targets and
// explosive near them (a zero-energy corner config would turn one sample
// into an Inf/NaN or astronomically large score that swamps the mean). The
// policy here is skip, not epsilon-clamp: targets with |y| <= mapeRelEps ×
// max|y| are excluded from the mean, matching the spirit of scikit-learn's
// clamping without letting a degenerate sample dominate. All-zero targets
// yield 0 by convention.
func MAPE(yTrue, yPred []float64) float64 {
	var maxAbs float64
	for _, v := range yTrue {
		if a := math.Abs(v); a > maxAbs {
			maxAbs = a
		}
	}
	thresh := mapeRelEps * maxAbs
	var sum float64
	var n int
	for i := range yTrue {
		if math.Abs(yTrue[i]) <= thresh {
			continue
		}
		sum += math.Abs((yTrue[i] - yPred[i]) / yTrue[i])
		n++
	}
	if n == 0 {
		return 0
	}
	return sum / float64(n)
}

// MAE returns the mean absolute error.
func MAE(yTrue, yPred []float64) float64 {
	var sum float64
	for i := range yTrue {
		sum += math.Abs(yTrue[i] - yPred[i])
	}
	return sum / float64(len(yTrue))
}

// RMSE returns the root mean squared error.
func RMSE(yTrue, yPred []float64) float64 {
	var sum float64
	for i := range yTrue {
		d := yTrue[i] - yPred[i]
		sum += d * d
	}
	return math.Sqrt(sum / float64(len(yTrue)))
}

// R2 returns the coefficient of determination.
func R2(yTrue, yPred []float64) float64 {
	var mean float64
	for _, v := range yTrue {
		mean += v
	}
	mean /= float64(len(yTrue))
	var ssRes, ssTot float64
	for i := range yTrue {
		r := yTrue[i] - yPred[i]
		t := yTrue[i] - mean
		ssRes += r * r
		ssTot += t * t
	}
	if ssTot == 0 {
		if ssRes == 0 {
			return 1
		}
		return 0
	}
	return 1 - ssRes/ssTot
}

// Scores bundles the four metrics for one evaluation.
type Scores struct {
	MAPE, MAE, RMSE, R2 float64
}

// Evaluate computes all metrics of predictions against truth.
func Evaluate(yTrue, yPred []float64) (Scores, error) {
	if len(yTrue) != len(yPred) || len(yTrue) == 0 {
		return Scores{}, fmt.Errorf("ml: evaluate needs equal non-empty slices (%d vs %d)",
			len(yTrue), len(yPred))
	}
	return Scores{
		MAPE: MAPE(yTrue, yPred),
		MAE:  MAE(yTrue, yPred),
		RMSE: RMSE(yTrue, yPred),
		R2:   R2(yTrue, yPred),
	}, nil
}
