package ml

import (
	"bytes"
	"math"
	"reflect"
	"strings"
	"testing"
	"testing/quick"

	"dsenergy/internal/xrand"
)

// synthLinear builds y = 3 + 2x0 - x1 + noise.
func synthLinear(rng *xrand.Rand, n int, noise float64) ([][]float64, []float64) {
	X := make([][]float64, n)
	y := make([]float64, n)
	for i := 0; i < n; i++ {
		x0, x1 := 10*rng.Float64(), 10*rng.Float64()
		X[i] = []float64{x0, x1}
		y[i] = 3 + 2*x0 - x1 + noise*rng.Norm()
	}
	return X, y
}

func TestLinearRecoversExactCoefficients(t *testing.T) {
	X, y := synthLinear(xrand.New(1), 200, 0)
	m := NewLinear()
	if err := m.Fit(X, y); err != nil {
		t.Fatal(err)
	}
	if math.Abs(m.Intercept-3) > 1e-8 {
		t.Errorf("intercept %g, want 3", m.Intercept)
	}
	if math.Abs(m.Coef[0]-2) > 1e-8 || math.Abs(m.Coef[1]+1) > 1e-8 {
		t.Errorf("coefficients %v, want [2 -1]", m.Coef)
	}
}

func TestLinearHandlesNoisyData(t *testing.T) {
	X, y := synthLinear(xrand.New(2), 500, 0.1)
	m := NewLinear()
	if err := m.Fit(X, y); err != nil {
		t.Fatal(err)
	}
	if math.Abs(m.Coef[0]-2) > 0.05 {
		t.Errorf("noisy coefficient %g, want ~2", m.Coef[0])
	}
}

func TestLinearConstantColumn(t *testing.T) {
	// A constant feature column is rank-deficient against the intercept;
	// the solver must not blow up.
	X := [][]float64{{1, 5}, {2, 5}, {3, 5}, {4, 5}}
	y := []float64{2, 4, 6, 8}
	m := NewLinear()
	if err := m.Fit(X, y); err != nil {
		t.Fatal(err)
	}
	for i, x := range X {
		if p := m.Predict(x); math.Abs(p-y[i]) > 1e-6 {
			t.Errorf("prediction %d: %g, want %g", i, p, y[i])
		}
	}
}

func TestLinearRejectsBadShapes(t *testing.T) {
	m := NewLinear()
	if err := m.Fit(nil, nil); err == nil {
		t.Error("expected error for empty data")
	}
	if err := m.Fit([][]float64{{1}}, []float64{1, 2}); err == nil {
		t.Error("expected error for row/target mismatch")
	}
	if err := m.Fit([][]float64{{1, 2}, {1}}, []float64{1, 2}); err == nil {
		t.Error("expected error for ragged rows")
	}
	if err := m.Fit([][]float64{{1}}, []float64{1}); err == nil {
		t.Error("expected error for underdetermined system (1 row, 2 unknowns)")
	}
}

func TestQuickLinearInterpolatesTwoFeaturePlanes(t *testing.T) {
	// Property: for any plane y = a + b·x0 + c·x1 sampled without noise,
	// OLS reproduces the plane at unseen points.
	f := func(a, b, c int8) bool {
		av, bv, cv := float64(a), float64(b), float64(c)
		rng := xrand.New(uint64(int(a)+300) * 7919)
		X := make([][]float64, 40)
		y := make([]float64, 40)
		for i := range X {
			x0, x1 := rng.Float64()*4, rng.Float64()*4
			X[i] = []float64{x0, x1}
			y[i] = av + bv*x0 + cv*x1
		}
		m := NewLinear()
		if err := m.Fit(X, y); err != nil {
			return false
		}
		probe := []float64{1.234, 2.345}
		want := av + bv*probe[0] + cv*probe[1]
		return math.Abs(m.Predict(probe)-want) < 1e-6*(1+math.Abs(want))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestLassoShrinksIrrelevantFeature(t *testing.T) {
	// y depends only on x0; the noise feature's coefficient must be driven
	// to exactly zero by the L1 penalty.
	rng := xrand.New(3)
	X := make([][]float64, 300)
	y := make([]float64, 300)
	for i := range X {
		x0, junk := rng.Float64()*10, rng.Float64()*10
		X[i] = []float64{x0, junk}
		y[i] = 5 * x0
	}
	m := NewLasso(0.5)
	if err := m.Fit(X, y); err != nil {
		t.Fatal(err)
	}
	if m.Coef[1] != 0 {
		t.Errorf("irrelevant coefficient %g, want exactly 0", m.Coef[1])
	}
	if math.Abs(m.Coef[0]-5) > 0.5 {
		t.Errorf("relevant coefficient %g, want ~5", m.Coef[0])
	}
}

func TestLassoZeroAlphaMatchesOLS(t *testing.T) {
	X, y := synthLinear(xrand.New(4), 300, 0)
	ols := NewLinear()
	if err := ols.Fit(X, y); err != nil {
		t.Fatal(err)
	}
	lasso := NewLasso(0)
	if err := lasso.Fit(X, y); err != nil {
		t.Fatal(err)
	}
	for j := range ols.Coef {
		if math.Abs(ols.Coef[j]-lasso.Coef[j]) > 1e-4 {
			t.Errorf("coef %d: ols %g vs lasso(0) %g", j, ols.Coef[j], lasso.Coef[j])
		}
	}
}

func TestLassoRejectsNegativeAlpha(t *testing.T) {
	m := NewLasso(-1)
	if err := m.Fit([][]float64{{1}, {2}}, []float64{1, 2}); err == nil {
		t.Error("expected error for negative alpha")
	}
}

func TestSoftThreshold(t *testing.T) {
	cases := []struct{ z, t, want float64 }{
		{5, 2, 3}, {-5, 2, -3}, {1, 2, 0}, {-1, 2, 0}, {2, 2, 0},
	}
	for _, c := range cases {
		if got := softThreshold(c.z, c.t); got != c.want {
			t.Errorf("softThreshold(%g,%g) = %g, want %g", c.z, c.t, got, c.want)
		}
	}
}

func TestSVRFitsSmoothFunction(t *testing.T) {
	rng := xrand.New(5)
	X := make([][]float64, 150)
	y := make([]float64, 150)
	for i := range X {
		x := 4 * rng.Float64()
		X[i] = []float64{x}
		y[i] = math.Sin(x)
	}
	m := NewSVR(10, 0.01, 0)
	if err := m.Fit(X, y); err != nil {
		t.Fatal(err)
	}
	var worst float64
	for x := 0.2; x < 3.8; x += 0.2 {
		err := math.Abs(m.Predict([]float64{x}) - math.Sin(x))
		if err > worst {
			worst = err
		}
	}
	if worst > 0.1 {
		t.Errorf("SVR worst-case error %g on sin(x), want < 0.1", worst)
	}
	if sv := m.NumSupportVectors(); sv == 0 || sv > 150 {
		t.Errorf("implausible support-vector count %d", sv)
	}
}

func TestSVRRespectsBoxConstraint(t *testing.T) {
	rng := xrand.New(6)
	X := make([][]float64, 60)
	y := make([]float64, 60)
	for i := range X {
		X[i] = []float64{rng.Float64()}
		y[i] = 100 * rng.Float64() // wild targets force clipping
	}
	m := NewSVR(0.5, 0.01, 1)
	if err := m.Fit(X, y); err != nil {
		t.Fatal(err)
	}
	for i, b := range m.beta {
		if math.Abs(b) > 0.5+1e-12 {
			t.Fatalf("beta[%d] = %g violates |beta| <= C = 0.5", i, b)
		}
	}
}

func TestSVRParameterValidation(t *testing.T) {
	if err := NewSVR(0, 0.1, 1).Fit([][]float64{{1}, {2}}, []float64{1, 2}); err == nil {
		t.Error("expected error for C=0")
	}
	if err := NewSVR(1, -0.1, 1).Fit([][]float64{{1}, {2}}, []float64{1, 2}); err == nil {
		t.Error("expected error for negative epsilon")
	}
}

func TestTreeFitsPiecewiseConstant(t *testing.T) {
	X := [][]float64{{1}, {2}, {3}, {10}, {11}, {12}}
	y := []float64{5, 5, 5, -3, -3, -3}
	m := NewTree(0, 1)
	if err := m.Fit(X, y); err != nil {
		t.Fatal(err)
	}
	if p := m.Predict([]float64{2}); p != 5 {
		t.Errorf("left region prediction %g, want 5", p)
	}
	if p := m.Predict([]float64{11}); p != -3 {
		t.Errorf("right region prediction %g, want -3", p)
	}
	if m.Leaves() != 2 {
		t.Errorf("tree grew %d leaves for a 2-region target, want 2", m.Leaves())
	}
}

func TestTreeRespectsMaxDepth(t *testing.T) {
	rng := xrand.New(7)
	X := make([][]float64, 200)
	y := make([]float64, 200)
	for i := range X {
		X[i] = []float64{rng.Float64()}
		y[i] = rng.Float64()
	}
	m := NewTree(3, 1)
	if err := m.Fit(X, y); err != nil {
		t.Fatal(err)
	}
	if d := m.Depth(); d > 3 {
		t.Errorf("tree depth %d exceeds MaxDepth 3", d)
	}
}

func TestTreeRespectsMinLeaf(t *testing.T) {
	X := [][]float64{{1}, {2}, {3}, {4}}
	y := []float64{1, 2, 3, 4}
	m := NewTree(0, 2)
	if err := m.Fit(X, y); err != nil {
		t.Fatal(err)
	}
	if m.Leaves() > 2 {
		t.Errorf("MinLeaf=2 on 4 samples allows at most 2 leaves, got %d", m.Leaves())
	}
}

func TestTreePredictionWithinTargetRange(t *testing.T) {
	// Mean-value leaves can never extrapolate outside [min(y), max(y)].
	f := func(seed uint16) bool {
		rng := xrand.New(uint64(seed) + 1)
		n := 30 + rng.Intn(50)
		X := make([][]float64, n)
		y := make([]float64, n)
		lo, hi := math.Inf(1), math.Inf(-1)
		for i := range X {
			X[i] = []float64{rng.Float64() * 10, rng.Float64() * 10}
			y[i] = rng.Norm() * 5
			lo = math.Min(lo, y[i])
			hi = math.Max(hi, y[i])
		}
		m := NewTree(0, 1)
		if err := m.Fit(X, y); err != nil {
			return false
		}
		for probe := 0; probe < 20; probe++ {
			p := m.Predict([]float64{rng.Float64() * 20, rng.Float64() * 20})
			if p < lo-1e-9 || p > hi+1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

func TestForestBeatsMeanBaseline(t *testing.T) {
	rng := xrand.New(8)
	n := 400
	X := make([][]float64, n)
	y := make([]float64, n)
	for i := range X {
		a, b := rng.Float64()*4, rng.Float64()*4
		X[i] = []float64{a, b}
		y[i] = math.Sin(a)*math.Cos(b) + 0.05*rng.Norm()
	}
	m := NewForest(ForestConfig{NumTrees: 50, Seed: 1})
	if err := m.Fit(X[:300], y[:300]); err != nil {
		t.Fatal(err)
	}
	var meanY float64
	for _, v := range y[:300] {
		meanY += v
	}
	meanY /= 300

	var errModel, errBase float64
	for i := 300; i < n; i++ {
		errModel += math.Abs(m.Predict(X[i]) - y[i])
		errBase += math.Abs(meanY - y[i])
	}
	if errModel >= errBase*0.5 {
		t.Errorf("forest MAE %g not well below mean-baseline MAE %g", errModel/100, errBase/100)
	}
}

func TestForestDeterministicAcrossWorkers(t *testing.T) {
	X, y := synthLinear(xrand.New(9), 120, 0.2)
	fit := func(workers int) *Forest {
		m := NewForest(ForestConfig{NumTrees: 16, Seed: 42, Workers: workers})
		if err := m.Fit(X, y); err != nil {
			t.Fatal(err)
		}
		return m
	}
	a, b := fit(1), fit(8)
	probe := []float64{3.3, 4.4}
	if pa, pb := a.Predict(probe), b.Predict(probe); pa != pb {
		t.Errorf("forest prediction differs across worker counts: %g vs %g", pa, pb)
	}
}

func TestForestMaxFeaturesSubsampling(t *testing.T) {
	X, y := synthLinear(xrand.New(10), 100, 0.1)
	m := NewForest(ForestConfig{NumTrees: 10, MaxFeatures: 1, Seed: 3})
	if err := m.Fit(X, y); err != nil {
		t.Fatal(err)
	}
	if m.NumTrees() != 10 {
		t.Errorf("trained %d trees, want 10", m.NumTrees())
	}
}

func TestMetrics(t *testing.T) {
	yt := []float64{1, 2, 4}
	yp := []float64{1, 1, 5}
	if got := MAE(yt, yp); !almostEqf(got, 2.0/3.0, 1e-12) {
		t.Errorf("MAE %g", got)
	}
	if got := RMSE(yt, yp); !almostEqf(got, math.Sqrt(2.0/3.0), 1e-12) {
		t.Errorf("RMSE %g", got)
	}
	wantMAPE := (0 + 0.5 + 0.25) / 3
	if got := MAPE(yt, yp); !almostEqf(got, wantMAPE, 1e-12) {
		t.Errorf("MAPE %g want %g", got, wantMAPE)
	}
	if got := R2(yt, yt); got != 1 {
		t.Errorf("R2 of perfect prediction %g, want 1", got)
	}
	if got := R2(yt, []float64{7, 7, 7}); got >= 0.5 {
		t.Errorf("R2 of constant wrong prediction %g, want low", got)
	}
}

func TestMAPESkipsZeroTargets(t *testing.T) {
	if got := MAPE([]float64{0, 2}, []float64{5, 3}); !almostEqf(got, 0.5, 1e-12) {
		t.Errorf("MAPE with zero target %g, want 0.5", got)
	}
}

func TestMAPENearZeroGuard(t *testing.T) {
	cases := []struct {
		name         string
		yTrue, yPred []float64
		want         float64
	}{
		// A denormal-scale target must not blow the mean up to ~1e300.
		{"near-zero skipped", []float64{1e-300, 2}, []float64{5, 3}, 0.5},
		// Targets at the threshold boundary are skipped; above it they count.
		{"relative threshold", []float64{1e-13, 1}, []float64{7, 1.1}, 0.1},
		{"all zero", []float64{0, 0}, []float64{1, 2}, 0},
		// Negative targets are judged by magnitude, not sign.
		{"negative target kept", []float64{-2, 2}, []float64{-3, 3}, 0.5},
	}
	for _, c := range cases {
		got := MAPE(c.yTrue, c.yPred)
		if math.IsNaN(got) || math.IsInf(got, 0) {
			t.Errorf("%s: MAPE = %g, must be finite", c.name, got)
			continue
		}
		if !almostEqf(got, c.want, 1e-9) {
			t.Errorf("%s: MAPE = %g, want %g", c.name, got, c.want)
		}
	}
}

func TestEvaluateValidation(t *testing.T) {
	if _, err := Evaluate([]float64{1}, []float64{1, 2}); err == nil {
		t.Error("expected error for length mismatch")
	}
}

func TestKFoldMAPE(t *testing.T) {
	X, y := synthLinear(xrand.New(11), 200, 0.05)
	m, err := KFoldMAPE(Spec{Algorithm: "linear"}, X, y, 5, 1)
	if err != nil {
		t.Fatal(err)
	}
	if m < 0 || m > 0.2 {
		t.Errorf("k-fold MAPE %g out of plausible range for a near-linear target", m)
	}
	if _, err := KFoldMAPE(Spec{Algorithm: "linear"}, X, y, 1, 1); err == nil {
		t.Error("expected error for k=1")
	}
}

func TestLeaveOneGroupOut(t *testing.T) {
	groups := []string{"a", "b", "a", "c", "b"}
	splits := LeaveOneGroupOut(groups)
	if len(splits) != 3 {
		t.Fatalf("want 3 splits, got %d", len(splits))
	}
	// Splits are sorted; group "a" holds out rows 0 and 2.
	if splits[0].Group != "a" || len(splits[0].TestIdx) != 2 {
		t.Errorf("split 0 = %+v, want group a with 2 test rows", splits[0])
	}
	for _, s := range splits {
		if len(s.TrainIdx)+len(s.TestIdx) != len(groups) {
			t.Errorf("split %s does not partition the dataset", s.Group)
		}
	}
}

func TestGridSearchFindsBetterDepth(t *testing.T) {
	rng := xrand.New(12)
	X := make([][]float64, 150)
	y := make([]float64, 150)
	for i := range X {
		x := rng.Float64() * 10
		X[i] = []float64{x}
		y[i] = math.Floor(x) // step function: deeper trees win
	}
	pts, err := GridSearch(Spec{Algorithm: "forest", Params: map[string]float64{"n_estimators": 10}},
		map[string][]float64{"max_depth": {1, 8}}, X, y, 3, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(pts) != 2 {
		t.Fatalf("want 2 grid points, got %d", len(pts))
	}
	if pts[0].Params["max_depth"] != 8 {
		t.Errorf("grid search picked depth %g, want 8 for a step target", pts[0].Params["max_depth"])
	}
}

func TestSpecNewUnknownAlgorithm(t *testing.T) {
	if _, err := (Spec{Algorithm: "nope"}).New(1); err == nil {
		t.Error("expected error for unknown algorithm")
	}
}

func TestDefaultSpecsConstructible(t *testing.T) {
	for _, s := range DefaultSpecs() {
		if _, err := s.New(1); err != nil {
			t.Errorf("spec %q: %v", s.Algorithm, err)
		}
	}
}

func almostEqf(a, b, tol float64) bool { return math.Abs(a-b) <= tol }

func TestPersistRoundTripAllKinds(t *testing.T) {
	X, y := synthLinear(xrand.New(21), 150, 0.1)
	probe := []float64{4.2, 6.6}
	models := []Regressor{}

	lin := NewLinear()
	if err := lin.Fit(X, y); err != nil {
		t.Fatal(err)
	}
	models = append(models, lin)

	lasso := NewLasso(0.01)
	if err := lasso.Fit(X, y); err != nil {
		t.Fatal(err)
	}
	models = append(models, lasso)

	svr := NewSVR(10, 0.05, 0)
	if err := svr.Fit(X[:80], y[:80]); err != nil {
		t.Fatal(err)
	}
	models = append(models, svr)

	tree := NewTree(6, 2)
	if err := tree.Fit(X, y); err != nil {
		t.Fatal(err)
	}
	models = append(models, tree)

	forest := NewForest(ForestConfig{NumTrees: 12, Seed: 3})
	if err := forest.Fit(X, y); err != nil {
		t.Fatal(err)
	}
	models = append(models, forest)

	for _, m := range models {
		var buf bytes.Buffer
		if err := SaveRegressor(&buf, m); err != nil {
			t.Fatalf("%T: save: %v", m, err)
		}
		got, err := LoadRegressor(&buf)
		if err != nil {
			t.Fatalf("%T: load: %v", m, err)
		}
		if want, have := m.Predict(probe), got.Predict(probe); want != have {
			t.Errorf("%T: prediction changed after round trip: %g vs %g", m, want, have)
		}
	}
}

func TestLoadRegressorRejectsGarbage(t *testing.T) {
	if _, err := LoadRegressor(strings.NewReader("not json")); err == nil {
		t.Error("expected error for non-JSON input")
	}
	if _, err := LoadRegressor(strings.NewReader(`{"kind":"alien","payload":{}}`)); err == nil {
		t.Error("expected error for unknown kind")
	}
	if _, err := LoadRegressor(strings.NewReader(
		`{"kind":"forest","payload":{"trees":[{"root":{"leaf":false}}]}}`)); err == nil {
		t.Error("expected error for split node without children")
	}
}

func TestSaveRegressorRejectsUnknownType(t *testing.T) {
	var buf bytes.Buffer
	if err := SaveRegressor(&buf, fakeRegressor{}); err == nil {
		t.Error("expected error for unsupported regressor type")
	}
}

type fakeRegressor struct{}

func (fakeRegressor) Fit([][]float64, []float64) error { return nil }
func (fakeRegressor) Predict([]float64) float64        { return 0 }

func TestForestOOBEstimate(t *testing.T) {
	X, y := synthLinear(xrand.New(31), 400, 0.2)
	m := NewForest(ForestConfig{NumTrees: 40, Seed: 2, ComputeOOB: true})
	if err := m.Fit(X, y); err != nil {
		t.Fatal(err)
	}
	oob, n := m.OOBMAPE()
	if n < 350 {
		t.Errorf("OOB covered only %d/400 samples", n)
	}
	if oob <= 0 || oob > 0.5 {
		t.Errorf("implausible OOB MAPE %g", oob)
	}
	// OOB (generalization) error must exceed in-sample error.
	inSample := MAPE(y, PredictBatch(m, X))
	if oob <= inSample {
		t.Errorf("OOB %g not above in-sample %g", oob, inSample)
	}
	// Off by default.
	m2 := NewForest(ForestConfig{NumTrees: 5, Seed: 2})
	if err := m2.Fit(X, y); err != nil {
		t.Fatal(err)
	}
	if _, n := m2.OOBMAPE(); n != 0 {
		t.Errorf("OOB computed without ComputeOOB: n=%d", n)
	}
}

func TestKFoldMAPEParallelMatchesSerial(t *testing.T) {
	X, y := synthLinear(xrand.New(21), 120, 0.05)
	spec := Spec{Algorithm: "forest", Params: map[string]float64{"n_estimators": 10}}
	serial, err := KFoldMAPE(spec, X, y, 5, 9)
	if err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{0, 2, 8} {
		par, err := KFoldMAPEParallel(spec, X, y, 5, 9, workers)
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		if !reflect.DeepEqual(serial, par) {
			t.Errorf("workers=%d: parallel k-fold %v != serial %v", workers, par, serial)
		}
	}
}

func TestGridSearchParallelMatchesSerial(t *testing.T) {
	X, y := synthLinear(xrand.New(22), 80, 0.05)
	base := Spec{Algorithm: "forest", Params: map[string]float64{"n_estimators": 8}}
	grid := map[string][]float64{
		"max_depth":    {2, 6},
		"max_features": {0, 2},
	}
	serial, err := GridSearch(base, grid, X, y, 4, 5)
	if err != nil {
		t.Fatal(err)
	}
	par, err := GridSearchParallel(base, grid, X, y, 4, 5, 8)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(serial, par) {
		t.Errorf("parallel grid search diverged:\nserial   %+v\nparallel %+v", serial, par)
	}
}

func TestKFoldParallelPropagatesFoldError(t *testing.T) {
	X, y := synthLinear(xrand.New(23), 40, 0.05)
	if _, err := KFoldMAPEParallel(Spec{Algorithm: "no-such-algo"}, X, y, 4, 1, 4); err == nil {
		t.Fatal("expected constructor error to propagate from parallel folds")
	}
}

// TestTreePredictRowWidths pins the documented width semantics of the flat
// tree: rows narrower than the training dimension cannot be routed and
// return 0 (the legacy engine silently sent them right at every missing
// feature — an accident of the `feature < len(x)` guard); extra trailing
// features are ignored; PredictBatch is the checked counterpart that
// rejects any width mismatch instead.
func TestTreePredictRowWidths(t *testing.T) {
	X, y := synthLinear(xrand.New(31), 80, 0.05)
	tree := NewTree(4, 1)
	if err := tree.Fit(X, y); err != nil {
		t.Fatal(err)
	}
	if got := tree.Predict([]float64{X[0][0]}); got != 0 {
		t.Errorf("short row predicted %g, want the documented 0", got)
	}
	full := tree.Predict(X[0])
	if got := tree.Predict(append(append([]float64(nil), X[0]...), 99)); got != full {
		t.Errorf("extra trailing feature changed prediction: %g != %g", got, full)
	}
	if _, err := tree.PredictBatch([][]float64{{1}}); err == nil {
		t.Error("PredictBatch accepted a short row")
	}
	if _, err := tree.PredictBatch([][]float64{append(append([]float64(nil), X[0]...), 99)}); err == nil {
		t.Error("PredictBatch accepted an over-wide row")
	}
	out, err := tree.PredictBatch(X[:5])
	if err != nil {
		t.Fatal(err)
	}
	for i, x := range X[:5] {
		if out[i] != tree.Predict(x) {
			t.Errorf("batch row %d diverged from Predict", i)
		}
	}
	if _, err := NewTree(0, 1).PredictBatch(X[:1]); err == nil {
		t.Error("PredictBatch on an unfitted tree did not error")
	}
}

// TestForestPredictBatchMatchesPredict pins the block-oriented inference
// path: each batch element is bit-identical to the per-row Predict, width
// mismatches error, and the package-level PredictBatch helper takes the
// same fast path for forests.
func TestForestPredictBatchMatchesPredict(t *testing.T) {
	X, y := synthLinear(xrand.New(32), 100, 0.1)
	f := NewForest(ForestConfig{NumTrees: 15, Seed: 5})
	if err := f.Fit(X, y); err != nil {
		t.Fatal(err)
	}
	out, err := f.PredictBatch(X)
	if err != nil {
		t.Fatal(err)
	}
	for i, x := range X {
		if out[i] != f.Predict(x) {
			t.Fatalf("batch row %d = %g, Predict = %g", i, out[i], f.Predict(x))
		}
	}
	if !reflect.DeepEqual(PredictBatch(f, X), out) {
		t.Error("package-level PredictBatch diverged from Forest.PredictBatch")
	}
	if _, err := f.PredictBatch([][]float64{{1, 2, 3}}); err == nil {
		t.Error("PredictBatch accepted a mis-sized row")
	}
	if _, err := NewForest(ForestConfig{}).PredictBatch(X[:1]); err == nil {
		t.Error("PredictBatch on an unfitted forest did not error")
	}
}

// TestGridSearchSharedPermMatchesKFold pins the shuffle hoist: GridSearch
// computes one Perm(n) and shares it across grid points, which must leave
// every point's MAPE exactly equal to an independent KFoldMAPE run of the
// same spec (which derives the identical permutation from (n, seed)).
func TestGridSearchSharedPermMatchesKFold(t *testing.T) {
	X, y := synthLinear(xrand.New(33), 90, 0.05)
	base := Spec{Algorithm: "forest", Params: map[string]float64{"n_estimators": 6}}
	grid := map[string][]float64{"max_depth": {2, 5}, "min_samples_leaf": {1, 3}}
	pts, err := GridSearch(base, grid, X, y, 3, 17)
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range pts {
		spec := Spec{Algorithm: base.Algorithm, Params: map[string]float64{}}
		for k, v := range base.Params {
			spec.Params[k] = v
		}
		for k, v := range p.Params {
			spec.Params[k] = v
		}
		direct, err := KFoldMAPE(spec, X, y, 3, 17)
		if err != nil {
			t.Fatal(err)
		}
		if p.MAPE != direct {
			t.Errorf("grid point %v MAPE %v != direct k-fold %v", p.Params, p.MAPE, direct)
		}
	}
}
