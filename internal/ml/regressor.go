// Package ml is a from-scratch machine-learning library covering what the
// paper uses from scikit-learn: linear regression, Lasso, ε-SVR with an RBF
// kernel, random-forest regression, grid-search hyper-parameter tuning,
// k-fold and leave-one-group-out cross-validation, and the MAPE/MAE/RMSE/R²
// metrics. Everything is stdlib-only and deterministic (seeded generators).
package ml

import (
	"fmt"

	"dsenergy/internal/obs"
)

// Regressor is a trainable scalar regression model.
type Regressor interface {
	// Fit trains on rows X with targets y. Implementations must not retain
	// the caller's slices.
	Fit(X [][]float64, y []float64) error
	// Predict returns the model output for one feature row.
	Predict(x []float64) float64
}

// PredictBatch applies r to every row of X. Forests take the block-oriented
// fast path (tree-major traversal over the flat node arrays); every other
// regressor falls back to a per-row Predict loop. Either way out[i] is
// bit-identical to r.Predict(X[i]).
func PredictBatch(r Regressor, X [][]float64) []float64 {
	out := make([]float64, len(X))
	if f, ok := r.(*Forest); ok {
		f.predictBatchInto(X, out)
		return out
	}
	for i, x := range X {
		out[i] = r.Predict(x)
	}
	return out
}

// CheckedPredictBatch is the serving-side counterpart of PredictBatch: it
// applies r to every row of X but rejects mis-shaped rows with an error
// instead of falling back to Predict's documented zero answer. Forests and
// trees take their width-checked PredictBatch fast paths; the parametric
// models are checked against their fitted dimension (coefficient width for
// linear/lasso, standardization width for SVR). Row i of the result is
// bit-identical to r.Predict(X[i]).
func CheckedPredictBatch(r Regressor, X [][]float64) ([]float64, error) {
	var d int
	switch m := r.(type) {
	case *Forest:
		return m.PredictBatch(X)
	case *Tree:
		return m.PredictBatch(X)
	case *Linear:
		if len(m.Coef) == 0 {
			return nil, errUnfitted("linear")
		}
		d = len(m.Coef)
	case *Lasso:
		if len(m.Coef) == 0 {
			return nil, errUnfitted("lasso")
		}
		d = len(m.Coef)
	case *SVR:
		if len(m.mean) == 0 {
			return nil, errUnfitted("svr")
		}
		d = len(m.mean)
	default:
		return nil, fmt.Errorf("ml: cannot width-check regressor type %T", r)
	}
	if err := checkRowWidths(X, d); err != nil {
		return nil, err
	}
	out := make([]float64, len(X))
	for i, x := range X {
		out[i] = r.Predict(x)
	}
	return out, nil
}

// Spec names a regression algorithm plus its hyper-parameters, so training
// pipelines and the grid search can construct models declaratively.
type Spec struct {
	// Algorithm is one of "linear", "lasso", "svr", "forest".
	Algorithm string
	// Params holds algorithm-specific hyper-parameters; missing keys take
	// the algorithm defaults (matching scikit-learn's defaults where the
	// paper relies on them).
	Params map[string]float64
	// Obs is an optional observability sink: training counts phase timers
	// (per-tree, per-fold, per-grid-point) and stable work counters against
	// it. Nil disables instrumentation; attaching an observer never changes
	// a training result.
	Obs *obs.Observer
}

// param returns the named parameter or def.
func (s Spec) param(name string, def float64) float64 {
	if v, ok := s.Params[name]; ok {
		return v
	}
	return def
}

// New constructs the regressor described by the spec. The seed feeds
// stochastic algorithms (the forest's bootstrap); deterministic algorithms
// ignore it.
func (s Spec) New(seed uint64) (Regressor, error) {
	switch s.Algorithm {
	case "linear":
		return NewLinear(), nil
	case "lasso":
		return NewLasso(s.param("alpha", 1.0)), nil
	case "svr":
		return NewSVR(
			s.param("C", 1.0),
			s.param("epsilon", 0.1),
			s.param("gamma", 0), // 0 = scale heuristic
		), nil
	case "forest":
		return NewForest(ForestConfig{
			NumTrees:    int(s.param("n_estimators", 100)),
			MaxDepth:    int(s.param("max_depth", 0)),
			MaxFeatures: int(s.param("max_features", 0)),
			MinLeaf:     int(s.param("min_samples_leaf", 1)),
			Seed:        seed,
			Obs:         s.Obs,
		}), nil
	default:
		return nil, fmt.Errorf("ml: unknown algorithm %q", s.Algorithm)
	}
}

// DefaultSpecs returns the four algorithm families the paper compares in
// §5.2.1, with defaults.
func DefaultSpecs() []Spec {
	return []Spec{
		{Algorithm: "linear"},
		{Algorithm: "lasso", Params: map[string]float64{"alpha": 0.01}},
		{Algorithm: "svr", Params: map[string]float64{"C": 10, "epsilon": 0.01}},
		{Algorithm: "forest"},
	}
}

// checkXY validates a training set shape.
func checkXY(X [][]float64, y []float64) (rows, cols int, err error) {
	if len(X) == 0 || len(y) == 0 {
		return 0, 0, fmt.Errorf("ml: empty training set")
	}
	if len(X) != len(y) {
		return 0, 0, fmt.Errorf("ml: %d rows but %d targets", len(X), len(y))
	}
	cols = len(X[0])
	if cols == 0 {
		return 0, 0, fmt.Errorf("ml: zero-width feature rows")
	}
	for i, r := range X {
		if len(r) != cols {
			return 0, 0, fmt.Errorf("ml: row %d has %d features, want %d", i, len(r), cols)
		}
	}
	return len(X), cols, nil
}

// cloneMatrix deep-copies X.
func cloneMatrix(X [][]float64) [][]float64 {
	out := make([][]float64, len(X))
	for i, r := range X {
		out[i] = append([]float64(nil), r...)
	}
	return out
}
