package ml

import "testing"

// TestSolverFitAllocationGuard pins the allocation counts of the Lasso and
// SVR fits. Both solvers front-load their allocations — flat feature
// buffers, the Gram/kernel matrix, the shrinking bookkeeping — and the sweep
// loops themselves must run allocation-free, so the per-fit count is a small
// constant independent of the iteration count. A per-sweep or per-update
// allocation sneaking into a hot loop multiplies by MaxIter·n and trips the
// bound at once.
func TestSolverFitAllocationGuard(t *testing.T) {
	X, y := benchDataWide(300, 8)

	t.Run("lasso", func(t *testing.T) {
		m := NewLasso(0.01)
		avg := testing.AllocsPerRun(3, func() {
			if err := m.Fit(X, y); err != nil {
				t.Fatal(err)
			}
		})
		if avg > 16 {
			t.Fatalf("Lasso.Fit allocates %.1f objects per fit, want <= 16", avg)
		}
	})

	t.Run("svr", func(t *testing.T) {
		m := NewSVR(10, 0.01, 0)
		avg := testing.AllocsPerRun(3, func() {
			if err := m.Fit(X, y); err != nil {
				t.Fatal(err)
			}
		})
		// Fixed setup allocations plus the bounded growth of the update log
		// and the packed-kernel buffers.
		if avg > 64 {
			t.Fatalf("SVR.Fit allocates %.1f objects per fit, want <= 64", avg)
		}
	})
}
