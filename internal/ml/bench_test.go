package ml

import (
	"math"
	"testing"

	"dsenergy/internal/xrand"
)

func benchData(n int) ([][]float64, []float64) {
	rng := xrand.New(42)
	X := make([][]float64, n)
	y := make([]float64, n)
	for i := range X {
		a, b, c, f := rng.Float64()*10, rng.Float64()*10, rng.Float64()*10, rng.Float64()*1600
		X[i] = []float64{a, b, c, f}
		y[i] = math.Sin(a) + 0.3*b - 0.1*c + f/1600 + 0.02*rng.Norm()
	}
	return X, y
}

func BenchmarkLinearFit(b *testing.B) {
	X, y := benchData(2000)
	for i := 0; i < b.N; i++ {
		m := NewLinear()
		if err := m.Fit(X, y); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkLassoFit(b *testing.B) {
	X, y := benchData(2000)
	for i := 0; i < b.N; i++ {
		m := NewLasso(0.01)
		if err := m.Fit(X, y); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkSVRFit(b *testing.B) {
	X, y := benchData(300) // kernel methods are quadratic; keep modest
	for i := 0; i < b.N; i++ {
		m := NewSVR(10, 0.01, 0)
		if err := m.Fit(X, y); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkForestFit(b *testing.B) {
	X, y := benchData(2000)
	for i := 0; i < b.N; i++ {
		m := NewForest(ForestConfig{NumTrees: 25, Seed: 1})
		if err := m.Fit(X, y); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkForestPredict(b *testing.B) {
	X, y := benchData(2000)
	m := NewForest(ForestConfig{NumTrees: 50, Seed: 1})
	if err := m.Fit(X, y); err != nil {
		b.Fatal(err)
	}
	probe := []float64{5, 5, 5, 1300}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = m.Predict(probe)
	}
}
