package ml

import (
	"math"
	"testing"

	"dsenergy/internal/xrand"
)

func benchData(n int) ([][]float64, []float64) {
	rng := xrand.New(42)
	X := make([][]float64, n)
	y := make([]float64, n)
	for i := range X {
		a, b, c, f := rng.Float64()*10, rng.Float64()*10, rng.Float64()*10, rng.Float64()*1600
		X[i] = []float64{a, b, c, f}
		y[i] = math.Sin(a) + 0.3*b - 0.1*c + f/1600 + 0.02*rng.Norm()
	}
	return X, y
}

// benchDataWide builds an n×d design with d-1 continuous columns plus one
// discrete frequency-style column (cross-row ties, like the real datasets).
func benchDataWide(n, d int) ([][]float64, []float64) {
	rng := xrand.New(4242)
	levels := []float64{800, 1000, 1200, 1400, 1600}
	X := make([][]float64, n)
	y := make([]float64, n)
	for i := range X {
		row := make([]float64, d)
		var s float64
		for j := 0; j < d-1; j++ {
			row[j] = rng.Float64() * 10
			if j%3 == 0 {
				s += math.Sin(row[j])
			} else {
				s += 0.1 * float64(j) * row[j]
			}
		}
		row[d-1] = levels[rng.Intn(len(levels))]
		X[i] = row
		y[i] = s + row[d-1]/1600 + 0.02*rng.Norm()
	}
	return X, y
}

func BenchmarkLinearFit(b *testing.B) {
	X, y := benchData(2000)
	for i := 0; i < b.N; i++ {
		m := NewLinear()
		if err := m.Fit(X, y); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkLassoFit(b *testing.B) {
	X, y := benchData(2000)
	for i := 0; i < b.N; i++ {
		m := NewLasso(0.01)
		if err := m.Fit(X, y); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkSVRFit(b *testing.B) {
	X, y := benchData(300) // kernel methods are quadratic; keep modest
	for i := 0; i < b.N; i++ {
		m := NewSVR(10, 0.01, 0)
		if err := m.Fit(X, y); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkForestFit(b *testing.B) {
	X, y := benchData(2000)
	for i := 0; i < b.N; i++ {
		m := NewForest(ForestConfig{NumTrees: 25, Seed: 1})
		if err := m.Fit(X, y); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkTreeFit is the single-tree training hot path: one CART fit on a
// 2000×8 design with a discrete column.
func BenchmarkTreeFit(b *testing.B) {
	X, y := benchDataWide(2000, 8)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m := NewTree(0, 1)
		if err := m.Fit(X, y); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkForestFitLarge is the acceptance configuration for the training
// engine: n=1000, d=16, 100 trees, serial (Workers=1) so it measures the
// per-core engine rather than the worker pool.
func BenchmarkForestFitLarge(b *testing.B) {
	X, y := benchDataWide(1000, 16)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m := NewForest(ForestConfig{NumTrees: 100, Seed: 1, Workers: 1})
		if err := m.Fit(X, y); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkForestPredictBatch measures bulk inference: 2000 rows through a
// 50-tree forest per iteration.
func BenchmarkForestPredictBatch(b *testing.B) {
	X, y := benchDataWide(2000, 8)
	m := NewForest(ForestConfig{NumTrees: 50, Seed: 1})
	if err := m.Fit(X, y); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = PredictBatch(m, X)
	}
}

func BenchmarkForestPredict(b *testing.B) {
	X, y := benchData(2000)
	m := NewForest(ForestConfig{NumTrees: 50, Seed: 1})
	if err := m.Fit(X, y); err != nil {
		b.Fatal(err)
	}
	probe := []float64{5, 5, 5, 1300}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = m.Predict(probe)
	}
}

// BenchmarkLassoFitWide is the active-set acceptance shape: a 2000×16 design
// where the L1 penalty zeroes most coordinates, so sweeps over the full
// coordinate range waste work the active set can skip.
func BenchmarkLassoFitWide(b *testing.B) {
	X, y := benchDataWide(2000, 16)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m := NewLasso(0.01)
		if err := m.Fit(X, y); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkSVRFitLarge is the shrinking acceptance shape: n=600 doubles the
// kernel matrix rows of BenchmarkSVRFit, so bound-clipped coordinates
// dominate the dual sweeps.
func BenchmarkSVRFitLarge(b *testing.B) {
	X, y := benchDataWide(600, 8)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m := NewSVR(10, 0.01, 0)
		if err := m.Fit(X, y); err != nil {
			b.Fatal(err)
		}
	}
}
