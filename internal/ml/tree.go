package ml

import (
	"math"
	"sort"
)

// Tree is a CART regression tree: axis-aligned splits chosen by maximal
// variance reduction, mean-value leaves.
type Tree struct {
	// MaxDepth limits tree depth (0 = unbounded, scikit-learn's default).
	MaxDepth int
	// MinLeaf is the minimum samples per leaf.
	MinLeaf int
	// Features restricts the candidate split features (nil = all) — used
	// by the random forest's per-node feature subsampling through
	// featurePicker.
	featurePicker func(d int) []int

	root *treeNode
	d    int
}

type treeNode struct {
	feature int
	thresh  float64
	left    *treeNode
	right   *treeNode
	value   float64
	leaf    bool
}

// NewTree returns a regression tree with the given limits.
func NewTree(maxDepth, minLeaf int) *Tree {
	if minLeaf < 1 {
		minLeaf = 1
	}
	return &Tree{MaxDepth: maxDepth, MinLeaf: minLeaf}
}

// Fit implements Regressor.
func (t *Tree) Fit(X [][]float64, y []float64) error {
	n, d, err := checkXY(X, y)
	if err != nil {
		return err
	}
	t.d = d
	idx := make([]int, n)
	for i := range idx {
		idx[i] = i
	}
	t.root = t.build(X, y, idx, 0)
	return nil
}

// build grows the tree on the sample subset idx.
func (t *Tree) build(X [][]float64, y []float64, idx []int, depth int) *treeNode {
	mean := meanOf(y, idx)
	if len(idx) < 2*t.MinLeaf || (t.MaxDepth > 0 && depth >= t.MaxDepth) || pureTargets(y, idx) {
		return &treeNode{leaf: true, value: mean}
	}

	feats := t.candidateFeatures()
	bestFeat, bestThresh, bestGain := -1, 0.0, 0.0
	parentSSE := sseOf(y, idx, mean)

	sorted := make([]int, len(idx))
	for _, f := range feats {
		copy(sorted, idx)
		sort.Slice(sorted, func(a, b int) bool { return X[sorted[a]][f] < X[sorted[b]][f] })

		// Prefix scan: evaluate every split position with running sums.
		var sumL, sumSqL float64
		sumR, sumSqR := sums(y, sorted)
		for i := 0; i < len(sorted)-1; i++ {
			v := y[sorted[i]]
			sumL += v
			sumSqL += v * v
			sumR -= v
			sumSqR -= v * v
			// Can't split between equal feature values (exact stored-value
			// identity of adjacent sorted entries, not a tolerance check).
			//dsalint:ignore floateq
			if X[sorted[i]][f] == X[sorted[i+1]][f] {
				continue
			}
			nl, nr := i+1, len(sorted)-i-1
			if nl < t.MinLeaf || nr < t.MinLeaf {
				continue
			}
			sseL := sumSqL - sumL*sumL/float64(nl)
			sseR := sumSqR - sumR*sumR/float64(nr)
			gain := parentSSE - sseL - sseR
			if gain > bestGain {
				bestGain = gain
				bestFeat = f
				bestThresh = 0.5 * (X[sorted[i]][f] + X[sorted[i+1]][f])
			}
		}
	}
	if bestFeat < 0 || bestGain <= 1e-12 {
		return &treeNode{leaf: true, value: mean}
	}

	var li, ri []int
	for _, i := range idx {
		if X[i][bestFeat] <= bestThresh {
			li = append(li, i)
		} else {
			ri = append(ri, i)
		}
	}
	return &treeNode{
		feature: bestFeat,
		thresh:  bestThresh,
		left:    t.build(X, y, li, depth+1),
		right:   t.build(X, y, ri, depth+1),
	}
}

// candidateFeatures returns the features considered at this node.
func (t *Tree) candidateFeatures() []int {
	if t.featurePicker != nil {
		return t.featurePicker(t.d)
	}
	all := make([]int, t.d)
	for i := range all {
		all[i] = i
	}
	return all
}

// Predict implements Regressor.
func (t *Tree) Predict(x []float64) float64 {
	n := t.root
	if n == nil {
		return 0
	}
	for !n.leaf {
		if n.feature < len(x) && x[n.feature] <= n.thresh {
			n = n.left
		} else {
			n = n.right
		}
	}
	return n.value
}

// Depth returns the fitted tree's depth (0 for a stump).
func (t *Tree) Depth() int { return nodeDepth(t.root) }

// Leaves returns the fitted leaf count.
func (t *Tree) Leaves() int { return nodeLeaves(t.root) }

func nodeDepth(n *treeNode) int {
	if n == nil || n.leaf {
		return 0
	}
	l, r := nodeDepth(n.left), nodeDepth(n.right)
	if l > r {
		return l + 1
	}
	return r + 1
}

func nodeLeaves(n *treeNode) int {
	if n == nil {
		return 0
	}
	if n.leaf {
		return 1
	}
	return nodeLeaves(n.left) + nodeLeaves(n.right)
}

func meanOf(y []float64, idx []int) float64 {
	var s float64
	for _, i := range idx {
		s += y[i]
	}
	return s / float64(len(idx))
}

func sseOf(y []float64, idx []int, mean float64) float64 {
	var s float64
	for _, i := range idx {
		d := y[i] - mean
		s += d * d
	}
	return s
}

func sums(y []float64, idx []int) (sum, sumSq float64) {
	for _, i := range idx {
		sum += y[i]
		sumSq += y[i] * y[i]
	}
	return sum, sumSq
}

func pureTargets(y []float64, idx []int) bool {
	first := y[idx[0]]
	for _, i := range idx[1:] {
		if math.Abs(y[i]-first) > 1e-15 {
			return false
		}
	}
	return true
}
