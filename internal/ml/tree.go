package ml

import (
	"math"
	"slices"
	"sync"
)

// Tree is a CART regression tree: axis-aligned splits chosen by maximal
// variance reduction, mean-value leaves.
//
// Training uses a column-major pre-sorted split finder (the exact greedy
// algorithm of XGBoost and scikit-learn's presort path): every candidate
// feature column is argsorted once per tree, and each node re-derives its
// per-feature order by a stable in-place partition of the parent's index
// arrays, so per-node split finding costs O(d·n) instead of the
// O(d·n log n) a per-node sort pays. The fitted tree is stored as flat
// structure-of-arrays node vectors in preorder (node, left subtree, right
// subtree), which Predict walks without pointer chasing.
type Tree struct {
	// MaxDepth limits tree depth (0 = unbounded, scikit-learn's default).
	MaxDepth int
	// MinLeaf is the minimum samples per leaf.
	MinLeaf int
	// featurePicker restricts the candidate split features (nil = all) —
	// used by the random forest's per-node feature subsampling.
	featurePicker func(d int) []int

	d int

	// Flat SoA node storage in preorder; children always have larger
	// indices than their parent. feature[i] < 0 marks a leaf whose mean
	// target is value[i]; split nodes carry (feature, thresh, left, right).
	feature []int32
	thresh  []float64
	left    []int32
	right   []int32
	value   []float64
}

// NewTree returns a regression tree with the given limits.
func NewTree(maxDepth, minLeaf int) *Tree {
	if minLeaf < 1 {
		minLeaf = 1
	}
	return &Tree{MaxDepth: maxDepth, MinLeaf: minLeaf}
}

// treeWorkspace owns every growth-time buffer so fitting one tree performs
// no per-node allocations: the column-major feature copy, the per-feature
// argsort index arrays, the row list mirroring the legacy recursion's
// original-order index slice, and the partition scratch. Workspaces are
// pooled (getWorkspace/putWorkspace) and resized monotonically.
type treeWorkspace struct {
	n, d int
	// cols[f][i] is feature f of sample i; colData is the shared backing.
	cols    [][]float64
	colData []float64
	// sorted[f] lists sample indices ordered by (cols[f][·], index); every
	// node owns a contiguous segment of each array.
	sorted     [][]int32
	sortedData []int32
	y          []float64
	// rows lists each node segment's samples in original row order — the
	// exact order the legacy engine accumulated means and SSEs in, so leaf
	// values stay bit-identical.
	rows     []int32
	tmp      []int32
	goesLeft []bool
	allFeats []int
}

var wsPool = sync.Pool{New: func() any { return new(treeWorkspace) }}

func getWorkspace() *treeWorkspace  { return wsPool.Get().(*treeWorkspace) }
func putWorkspace(w *treeWorkspace) { wsPool.Put(w) }

// reset sizes the workspace for an n×d problem, reusing prior capacity.
func (w *treeWorkspace) reset(n, d int) {
	w.n, w.d = n, d
	if cap(w.colData) < n*d {
		w.colData = make([]float64, n*d)
		w.sortedData = make([]int32, n*d)
	}
	w.colData = w.colData[:n*d]
	w.sortedData = w.sortedData[:n*d]
	if cap(w.cols) < d {
		w.cols = make([][]float64, d)
		w.sorted = make([][]int32, d)
	}
	w.cols = w.cols[:d]
	w.sorted = w.sorted[:d]
	for f := 0; f < d; f++ {
		w.cols[f] = w.colData[f*n : (f+1)*n]
		w.sorted[f] = w.sortedData[f*n : (f+1)*n]
	}
	if cap(w.y) < n {
		w.y = make([]float64, n)
		w.rows = make([]int32, n)
		w.tmp = make([]int32, 0, n)
		w.goesLeft = make([]bool, n)
	}
	w.y = w.y[:n]
	w.rows = w.rows[:n]
	w.goesLeft = w.goesLeft[:n]
	if cap(w.allFeats) < d {
		w.allFeats = make([]int, d)
	}
	w.allFeats = w.allFeats[:d]
	for f := range w.allFeats {
		w.allFeats[f] = f
	}
}

// Fit implements Regressor.
func (t *Tree) Fit(X [][]float64, y []float64) error {
	n, d, err := checkXY(X, y)
	if err != nil {
		return err
	}
	ws := getWorkspace()
	defer putWorkspace(ws)
	ws.reset(n, d)
	for i, row := range X {
		for f, v := range row {
			ws.cols[f][i] = v
		}
		ws.y[i] = y[i]
	}
	t.fit(ws)
	return nil
}

// fit grows the tree from a loaded workspace (cols and y filled).
func (t *Tree) fit(ws *treeWorkspace) {
	t.d = ws.d
	for i := range ws.rows {
		ws.rows[i] = int32(i)
	}
	for f := 0; f < ws.d; f++ {
		keys := ws.cols[f]
		idx := ws.sorted[f]
		for i := range idx {
			idx[i] = int32(i)
		}
		// Total order (value, then index): ties cannot reorder across runs,
		// so the result is unique — stable by construction.
		slices.SortFunc(idx, func(a, b int32) int {
			ka, kb := keys[a], keys[b]
			if ka < kb {
				return -1
			}
			if ka > kb {
				return 1
			}
			return int(a - b)
		})
	}
	// MinLeaf >= 1 bounds the tree at 2n-1 nodes; reserving that up front
	// makes every pushLeaf/pushSplit append allocation-free.
	maxNodes := 2*ws.n - 1
	t.feature = make([]int32, 0, maxNodes)
	t.thresh = make([]float64, 0, maxNodes)
	t.left = make([]int32, 0, maxNodes)
	t.right = make([]int32, 0, maxNodes)
	t.value = make([]float64, 0, maxNodes)
	t.grow(ws, 0, ws.n, 0)
}

func (t *Tree) pushLeaf(mean float64) int32 {
	i := int32(len(t.feature))
	t.feature = append(t.feature, -1)
	t.thresh = append(t.thresh, 0)
	t.left = append(t.left, -1)
	t.right = append(t.right, -1)
	t.value = append(t.value, mean)
	return i
}

func (t *Tree) pushSplit(feature int, thresh float64) int32 {
	i := int32(len(t.feature))
	t.feature = append(t.feature, int32(feature))
	t.thresh = append(t.thresh, thresh)
	t.left = append(t.left, -1)
	t.right = append(t.right, -1)
	t.value = append(t.value, 0)
	return i
}

// grow builds the subtree over segment [lo, hi) of the workspace index
// arrays and returns its root node index. The scan preserves the legacy
// engine's selection semantics exactly: splits are only evaluated between
// strictly distinct adjacent sorted values, gains compare with strict >, and
// candidate features are probed in picker order.
func (t *Tree) grow(ws *treeWorkspace, lo, hi, depth int) int32 {
	m := hi - lo
	rows := ws.rows[lo:hi]
	mean := meanRows(ws.y, rows)
	if m < 2*t.MinLeaf || (t.MaxDepth > 0 && depth >= t.MaxDepth) || pureRows(ws.y, rows) {
		return t.pushLeaf(mean)
	}

	feats := ws.allFeats
	if t.featurePicker != nil {
		feats = t.featurePicker(t.d)
	}
	bestFeat, bestThresh, bestGain := -1, 0.0, 0.0
	parentSSE := sseRows(ws.y, rows, mean)

	for _, f := range feats {
		seg := ws.sorted[f][lo:hi]
		keys := ws.cols[f]

		// Prefix scan: evaluate every split position with running sums.
		var sumL, sumSqL float64
		sumR, sumSqR := sumsRows(ws.y, seg)
		for i := 0; i < m-1; i++ {
			v := ws.y[seg[i]]
			sumL += v
			sumSqL += v * v
			sumR -= v
			sumSqR -= v * v
			// Can't split between equal feature values (exact stored-value
			// identity of adjacent sorted entries, not a tolerance check).
			//dsalint:ignore floateq
			if keys[seg[i]] == keys[seg[i+1]] {
				continue
			}
			nl, nr := i+1, m-i-1
			if nl < t.MinLeaf || nr < t.MinLeaf {
				continue
			}
			sseL := sumSqL - sumL*sumL/float64(nl)
			sseR := sumSqR - sumR*sumR/float64(nr)
			gain := parentSSE - sseL - sseR
			if gain > bestGain {
				bestGain = gain
				bestFeat = f
				bestThresh = 0.5 * (keys[seg[i]] + keys[seg[i+1]])
			}
		}
	}
	if bestFeat < 0 || bestGain <= 1e-12 {
		return t.pushLeaf(mean)
	}

	// Stable in-place partition of every per-feature segment (and the row
	// list) around the chosen split: left block keeps its relative order,
	// then the right block, so each child segment is already sorted.
	keys := ws.cols[bestFeat]
	nl := 0
	for _, r := range rows {
		gl := keys[r] <= bestThresh
		ws.goesLeft[r] = gl
		if gl {
			nl++
		}
	}
	stablePartition(rows, ws.goesLeft, ws.tmp)
	for f := 0; f < ws.d; f++ {
		stablePartition(ws.sorted[f][lo:hi], ws.goesLeft, ws.tmp)
	}

	node := t.pushSplit(bestFeat, bestThresh)
	t.left[node] = t.grow(ws, lo, lo+nl, depth+1)
	t.right[node] = t.grow(ws, lo+nl, hi, depth+1)
	return node
}

// stablePartition reorders seg so rows flagged goesLeft come first, both
// blocks keeping their relative order. tmp must have capacity >= len(seg);
// the right block is staged there and copied back, so nothing allocates.
func stablePartition(seg []int32, goesLeft []bool, tmp []int32) {
	k := 0
	rest := tmp[:0]
	for _, r := range seg {
		if goesLeft[r] {
			seg[k] = r
			k++
		} else {
			rest = append(rest, r)
		}
	}
	copy(seg[k:], rest)
}

// Predict implements Regressor. A row narrower than the training dimension
// cannot be routed through the tree; Predict returns 0 for it (use
// PredictBatch for an explicit error). Extra trailing features are ignored.
func (t *Tree) Predict(x []float64) float64 {
	if len(t.feature) == 0 || len(x) < t.d {
		return 0
	}
	i := int32(0)
	for {
		f := t.feature[i]
		if f < 0 {
			return t.value[i]
		}
		if x[f] <= t.thresh[i] {
			i = t.left[i]
		} else {
			i = t.right[i]
		}
	}
}

// PredictBatch applies the fitted tree to every row of X, rejecting rows
// whose width differs from the training dimension — the checked counterpart
// of Predict's documented zero fallback.
func (t *Tree) PredictBatch(X [][]float64) ([]float64, error) {
	if len(t.feature) == 0 {
		return nil, errUnfitted("tree")
	}
	if err := checkRowWidths(X, t.d); err != nil {
		return nil, err
	}
	out := make([]float64, len(X))
	for i, x := range X {
		out[i] = t.Predict(x)
	}
	return out, nil
}

// Depth returns the fitted tree's depth (0 for a stump).
func (t *Tree) Depth() int {
	if len(t.feature) == 0 {
		return 0
	}
	return t.depthAt(0)
}

func (t *Tree) depthAt(i int32) int {
	if t.feature[i] < 0 {
		return 0
	}
	l, r := t.depthAt(t.left[i]), t.depthAt(t.right[i])
	if l > r {
		return l + 1
	}
	return r + 1
}

// Leaves returns the fitted leaf count.
func (t *Tree) Leaves() int {
	var n int
	for _, f := range t.feature {
		if f < 0 {
			n++
		}
	}
	return n
}

// subtreeLeafCounts returns, for every node, the number of leaves under it.
// Children follow their parent in the preorder layout, so one reverse sweep
// suffices.
func (t *Tree) subtreeLeafCounts() []int32 {
	counts := make([]int32, len(t.feature))
	for i := len(t.feature) - 1; i >= 0; i-- {
		if t.feature[i] < 0 {
			counts[i] = 1
		} else {
			counts[i] = counts[t.left[i]] + counts[t.right[i]]
		}
	}
	return counts
}

func meanRows(y []float64, rows []int32) float64 {
	var s float64
	for _, i := range rows {
		s += y[i]
	}
	return s / float64(len(rows))
}

func sseRows(y []float64, rows []int32, mean float64) float64 {
	var s float64
	for _, i := range rows {
		d := y[i] - mean
		s += d * d
	}
	return s
}

func sumsRows(y []float64, rows []int32) (sum, sumSq float64) {
	for _, i := range rows {
		sum += y[i]
		sumSq += y[i] * y[i]
	}
	return sum, sumSq
}

func pureRows(y []float64, rows []int32) bool {
	first := y[rows[0]]
	for _, i := range rows[1:] {
		if math.Abs(y[i]-first) > 1e-15 {
			return false
		}
	}
	return true
}
