package ml

import (
	"context"
	"fmt"
	"runtime"

	"dsenergy/internal/obs"
	"dsenergy/internal/parallel"
	"dsenergy/internal/xrand"
)

// ForestConfig configures a random-forest regressor. Zero values select the
// scikit-learn defaults the paper relies on ("the default parameter performs
// better for both the speedup and energy models").
type ForestConfig struct {
	// NumTrees is n_estimators (default 100).
	NumTrees int
	// MaxDepth is the per-tree depth limit (0 = unbounded).
	MaxDepth int
	// MaxFeatures is the number of features probed per split
	// (0 = all features, scikit-learn's regression default).
	MaxFeatures int
	// MinLeaf is min_samples_leaf (default 1).
	MinLeaf int
	// Workers bounds the training goroutines (0 = GOMAXPROCS).
	Workers int
	// Seed drives bootstrap and feature sampling.
	Seed uint64
	// ComputeOOB enables the out-of-bag generalization estimate (see
	// OOBMAPE), at the cost of predicting every training sample once.
	ComputeOOB bool
	// Obs is an optional observability sink for per-tree training timers
	// and counters. Nil disables instrumentation.
	Obs *obs.Observer
}

// Forest is a bagged ensemble of CART regression trees with per-node feature
// subsampling — the model the paper selects for both the speedup and the
// normalized-energy domain-specific models. Trees are flat SoA structures
// (see Tree); bulk inference should go through PredictBatch, which walks the
// ensemble tree-by-tree so each tree's node arrays stay cache-resident
// across the whole row block.
type Forest struct {
	cfg     ForestConfig
	trees   []*Tree
	oobMAPE float64
	oobN    int
}

// NewForest returns an untrained forest.
func NewForest(cfg ForestConfig) *Forest {
	if cfg.NumTrees <= 0 {
		cfg.NumTrees = 100
	}
	if cfg.MinLeaf <= 0 {
		cfg.MinLeaf = 1
	}
	if cfg.Workers <= 0 {
		cfg.Workers = runtime.GOMAXPROCS(0)
	}
	return &Forest{cfg: cfg}
}

// Fit implements Regressor: trees are trained concurrently, each with an
// independent generator split derived from the forest seed and the tree
// index, so results do not depend on scheduling. Each training task draws a
// pooled workspace, gathers its bootstrap sample straight into the
// workspace's column-major buffers from a shared transposed copy of X, and
// grows the tree without per-node allocations.
func (f *Forest) Fit(X [][]float64, y []float64) error {
	n, d, err := checkXY(X, y)
	if err != nil {
		return err
	}
	// Own the data: the OOB pass and the transposed training copy reference
	// these, never the caller's slices.
	Xc := cloneMatrix(X)
	yc := append([]float64(nil), y...)
	// One column-major copy shared (read-only) by every bootstrap gather:
	// filling a tree's feature column walks one contiguous source column.
	colData := make([]float64, n*d)
	cols := make([][]float64, d)
	for ff := 0; ff < d; ff++ {
		cols[ff] = colData[ff*n : (ff+1)*n]
	}
	for i, row := range Xc {
		for ff, v := range row {
			cols[ff][i] = v
		}
	}

	f.trees = make([]*Tree, f.cfg.NumTrees)
	var inBag [][]bool
	if f.cfg.ComputeOOB {
		inBag = make([][]bool, f.cfg.NumTrees)
	}
	// Resolve handles once: the counter total (trees trained) is the same for
	// every schedule, so it is stable-tier; the phase timer is wall clock and
	// lives in the profile dump only.
	treesTrained := f.cfg.Obs.Metrics().Counter("ml_trees_trained_total")
	treePhase := f.cfg.Obs.Profile().Phase("ml.forest.tree")
	err = parallel.ForEach(context.Background(), f.cfg.NumTrees, f.cfg.Workers, func(_ context.Context, ti int) error {
		stop := treePhase.Start()
		defer stop()
		// The tree's generator derives from the forest seed and the tree
		// index alone — no pre-split needed, scheduling cannot touch it.
		rng := xrand.New(f.cfg.Seed ^ (uint64(ti)+1)*0xd1342543de82ef95)
		ws := getWorkspace()
		defer putWorkspace(ws)
		ws.reset(n, d)
		// Bootstrap sample with replacement: draw the row multiset first
		// (same generator order as ever), then gather column by column.
		boot := ws.tmp[:n]
		var bag []bool
		if inBag != nil {
			bag = make([]bool, n)
		}
		for i := 0; i < n; i++ {
			j := rng.Intn(n)
			boot[i] = int32(j)
			if bag != nil {
				bag[j] = true
			}
		}
		if inBag != nil {
			inBag[ti] = bag
		}
		for ff := 0; ff < d; ff++ {
			src, dst := cols[ff], ws.cols[ff]
			for i, j := range boot {
				dst[i] = src[j]
			}
		}
		for i, j := range boot {
			ws.y[i] = yc[j]
		}
		tree := NewTree(f.cfg.MaxDepth, f.cfg.MinLeaf)
		if mf := f.cfg.MaxFeatures; mf > 0 && mf < d {
			tree.featurePicker = func(dd int) []int {
				perm := rng.Perm(dd)
				return perm[:mf]
			}
		}
		tree.fit(ws)
		f.trees[ti] = tree
		treesTrained.Inc()
		return nil
	})
	if err != nil {
		return err
	}

	if f.cfg.ComputeOOB {
		// For every sample, average the predictions of the trees whose
		// bootstrap excluded it — an unbiased generalization estimate. The
		// traversal is tree-major (each tree's flat nodes stay hot across
		// all of its out-of-bag rows) but accumulates per sample in tree
		// order, the exact summation order of the per-sample formulation.
		sum := make([]float64, n)
		cnt := make([]int, n)
		for ti, t := range f.trees {
			bag := inBag[ti]
			for i := 0; i < n; i++ {
				if !bag[i] {
					sum[i] += t.Predict(Xc[i])
					cnt[i]++
				}
			}
		}
		var yt, yp []float64
		for i := 0; i < n; i++ {
			if cnt[i] > 0 {
				yt = append(yt, yc[i])
				yp = append(yp, sum[i]/float64(cnt[i]))
			}
		}
		f.oobN = len(yt)
		if len(yt) > 0 {
			f.oobMAPE = MAPE(yt, yp)
		}
	}
	return nil
}

// OOBMAPE returns the out-of-bag MAPE estimate and the number of samples it
// covers (0 when ComputeOOB was off).
func (f *Forest) OOBMAPE() (float64, int) { return f.oobMAPE, f.oobN }

// Predict implements Regressor (ensemble mean).
func (f *Forest) Predict(x []float64) float64 {
	if len(f.trees) == 0 {
		return 0
	}
	var s float64
	for _, t := range f.trees {
		s += t.Predict(x)
	}
	return s / float64(len(f.trees))
}

// PredictBatch is the block-oriented inference fast path: it applies the
// ensemble to every row of X, traversing tree-by-tree so each flat tree is
// walked while its node arrays are cache-resident. Row i's result is
// bit-identical to Predict(X[i]). Unlike Predict's zero fallback, rows whose
// width differs from the training dimension are rejected with an error.
func (f *Forest) PredictBatch(X [][]float64) ([]float64, error) {
	if len(f.trees) == 0 {
		return nil, errUnfitted("forest")
	}
	if err := checkRowWidths(X, f.trees[0].d); err != nil {
		return nil, err
	}
	out := make([]float64, len(X))
	f.predictBatchInto(X, out)
	return out, nil
}

// predictBatchInto accumulates the ensemble mean for every row into out,
// tree-major. Per row the summation order (tree 0, 1, ..., then one divide)
// matches Predict exactly.
func (f *Forest) predictBatchInto(X [][]float64, out []float64) {
	for i := range out {
		out[i] = 0
	}
	if len(f.trees) == 0 {
		return
	}
	for _, t := range f.trees {
		for i, x := range X {
			out[i] += t.Predict(x)
		}
	}
	inv := float64(len(f.trees))
	for i := range out {
		out[i] /= inv
	}
}

// NumTrees returns the fitted ensemble size.
func (f *Forest) NumTrees() int { return len(f.trees) }

func errUnfitted(kind string) error {
	return fmt.Errorf("ml: predict on unfitted %s", kind)
}

// checkRowWidths validates a prediction block's shape against the model
// dimension.
func checkRowWidths(X [][]float64, d int) error {
	for i, x := range X {
		if len(x) != d {
			return fmt.Errorf("ml: prediction row %d has %d features, model expects %d", i, len(x), d)
		}
	}
	return nil
}
