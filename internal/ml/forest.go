package ml

import (
	"context"
	"fmt"
	"runtime"

	"dsenergy/internal/obs"
	"dsenergy/internal/parallel"
	"dsenergy/internal/xrand"
)

// ForestConfig configures a random-forest regressor. Zero values select the
// scikit-learn defaults the paper relies on ("the default parameter performs
// better for both the speedup and energy models").
type ForestConfig struct {
	// NumTrees is n_estimators (default 100).
	NumTrees int
	// MaxDepth is the per-tree depth limit (0 = unbounded).
	MaxDepth int
	// MaxFeatures is the number of features probed per split
	// (0 = all features, scikit-learn's regression default).
	MaxFeatures int
	// MinLeaf is min_samples_leaf (default 1).
	MinLeaf int
	// Workers bounds the training goroutines (0 = GOMAXPROCS).
	Workers int
	// Seed drives bootstrap and feature sampling.
	Seed uint64
	// ComputeOOB enables the out-of-bag generalization estimate (see
	// OOBMAPE), at the cost of predicting every training sample once.
	ComputeOOB bool
	// Obs is an optional observability sink for per-tree training timers
	// and counters. Nil disables instrumentation.
	Obs *obs.Observer
}

// Forest is a bagged ensemble of CART regression trees with per-node feature
// subsampling — the model the paper selects for both the speedup and the
// normalized-energy domain-specific models.
type Forest struct {
	cfg     ForestConfig
	trees   []*Tree
	oobMAPE float64
	oobN    int
}

// NewForest returns an untrained forest.
func NewForest(cfg ForestConfig) *Forest {
	if cfg.NumTrees <= 0 {
		cfg.NumTrees = 100
	}
	if cfg.MinLeaf <= 0 {
		cfg.MinLeaf = 1
	}
	if cfg.Workers <= 0 {
		cfg.Workers = runtime.GOMAXPROCS(0)
	}
	return &Forest{cfg: cfg}
}

// Fit implements Regressor: trees are trained concurrently, each with an
// independent generator split derived from the forest seed and the tree
// index, so results do not depend on scheduling.
func (f *Forest) Fit(X [][]float64, y []float64) error {
	n, d, err := checkXY(X, y)
	if err != nil {
		return err
	}
	// Own the data: bootstrap index slices reference these copies.
	Xc := cloneMatrix(X)
	yc := append([]float64(nil), y...)

	f.trees = make([]*Tree, f.cfg.NumTrees)
	var inBag [][]bool
	if f.cfg.ComputeOOB {
		inBag = make([][]bool, f.cfg.NumTrees)
	}
	// Resolve handles once: the counter total (trees trained) is the same for
	// every schedule, so it is stable-tier; the phase timer is wall clock and
	// lives in the profile dump only.
	treesTrained := f.cfg.Obs.Metrics().Counter("ml_trees_trained_total")
	treePhase := f.cfg.Obs.Profile().Phase("ml.forest.tree")
	err = parallel.ForEach(context.Background(), f.cfg.NumTrees, f.cfg.Workers, func(_ context.Context, ti int) error {
		stop := treePhase.Start()
		defer stop()
		// The tree's generator derives from the forest seed and the tree
		// index alone — no pre-split needed, scheduling cannot touch it.
		rng := xrand.New(f.cfg.Seed ^ (uint64(ti)+1)*0xd1342543de82ef95)
		// Bootstrap sample with replacement.
		bx := make([][]float64, n)
		by := make([]float64, n)
		var bag []bool
		if inBag != nil {
			bag = make([]bool, n)
		}
		for i := 0; i < n; i++ {
			j := rng.Intn(n)
			bx[i] = Xc[j]
			by[i] = yc[j]
			if bag != nil {
				bag[j] = true
			}
		}
		if inBag != nil {
			inBag[ti] = bag
		}
		tree := NewTree(f.cfg.MaxDepth, f.cfg.MinLeaf)
		if mf := f.cfg.MaxFeatures; mf > 0 && mf < d {
			tree.featurePicker = func(dd int) []int {
				perm := rng.Perm(dd)
				return perm[:mf]
			}
		}
		if err := tree.Fit(bx, by); err != nil {
			return fmt.Errorf("ml: forest tree %d: %w", ti, err)
		}
		f.trees[ti] = tree
		treesTrained.Inc()
		return nil
	})
	if err != nil {
		return err
	}

	if f.cfg.ComputeOOB {
		// For every sample, average the predictions of the trees whose
		// bootstrap excluded it — an unbiased generalization estimate.
		var yt, yp []float64
		for i := 0; i < n; i++ {
			var sum float64
			var cnt int
			for ti, t := range f.trees {
				if !inBag[ti][i] {
					sum += t.Predict(Xc[i])
					cnt++
				}
			}
			if cnt > 0 {
				yt = append(yt, yc[i])
				yp = append(yp, sum/float64(cnt))
			}
		}
		f.oobN = len(yt)
		if len(yt) > 0 {
			f.oobMAPE = MAPE(yt, yp)
		}
	}
	return nil
}

// OOBMAPE returns the out-of-bag MAPE estimate and the number of samples it
// covers (0 when ComputeOOB was off).
func (f *Forest) OOBMAPE() (float64, int) { return f.oobMAPE, f.oobN }

// Predict implements Regressor (ensemble mean).
func (f *Forest) Predict(x []float64) float64 {
	if len(f.trees) == 0 {
		return 0
	}
	var s float64
	for _, t := range f.trees {
		s += t.Predict(x)
	}
	return s / float64(len(f.trees))
}

// NumTrees returns the fitted ensemble size.
func (f *Forest) NumTrees() int { return len(f.trees) }
