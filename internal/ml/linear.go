package ml

import (
	"fmt"
	"math"
)

// Linear is ordinary least squares with an intercept, solved by Householder
// QR factorization of the design matrix — numerically stable without forming
// the normal equations.
type Linear struct {
	// Coef holds the fitted weights; Intercept the bias term.
	Coef      []float64
	Intercept float64
}

// NewLinear returns an untrained OLS model.
func NewLinear() *Linear { return &Linear{} }

// Fit implements Regressor.
func (l *Linear) Fit(X [][]float64, y []float64) error {
	n, d, err := checkXY(X, y)
	if err != nil {
		return err
	}
	// Design matrix with a leading 1s column for the intercept.
	a := make([][]float64, n)
	for i := range a {
		a[i] = make([]float64, d+1)
		a[i][0] = 1
		copy(a[i][1:], X[i])
	}
	b := append([]float64(nil), y...)
	w, err := qrSolve(a, b)
	if err != nil {
		return fmt.Errorf("ml: linear fit: %w", err)
	}
	l.Intercept = w[0]
	l.Coef = w[1:]
	return nil
}

// Predict implements Regressor.
func (l *Linear) Predict(x []float64) float64 {
	s := l.Intercept
	for j, c := range l.Coef {
		if j < len(x) {
			s += c * x[j]
		}
	}
	return s
}

// qrSolve solves the least-squares problem min ‖a·w − b‖₂ with Householder
// QR in the classic JAMA formulation: the reflectors overwrite a's lower
// trapezoid and are applied to b on the fly; R's diagonal is kept separately.
// a and b are destroyed. A rank-deficient column yields a zero weight for
// that column.
func qrSolve(a [][]float64, b []float64) ([]float64, error) {
	n := len(a)
	if n == 0 {
		return nil, fmt.Errorf("empty system")
	}
	d := len(a[0])
	if n < d {
		return nil, fmt.Errorf("underdetermined system: %d rows, %d cols", n, d)
	}

	// Original column norms set the rank tolerance: a pivot that collapses
	// to a tiny fraction of its column's original size is numerically
	// dependent on earlier columns (e.g. exactly collinear features), and
	// dividing by it would manufacture enormous cancelling coefficients.
	colNorm := make([]float64, d)
	for k := 0; k < d; k++ {
		var nrm float64
		for i := 0; i < n; i++ {
			nrm = math.Hypot(nrm, a[i][k])
		}
		colNorm[k] = nrm
	}

	rdiag := make([]float64, d)
	for k := 0; k < d; k++ {
		var nrm float64
		for i := k; i < n; i++ {
			nrm = math.Hypot(nrm, a[i][k])
		}
		if nrm <= 1e-10*colNorm[k] {
			rdiag[k] = 0
			// Zero the dependent column so it cannot perturb later
			// reflectors through round-off.
			for i := k; i < n; i++ {
				a[i][k] = 0
			}
			continue
		}
		if a[k][k] < 0 {
			nrm = -nrm
		}
		for i := k; i < n; i++ {
			a[i][k] /= nrm
		}
		a[k][k] += 1
		// Apply the reflector to the remaining columns and to b.
		for j := k + 1; j < d; j++ {
			var s float64
			for i := k; i < n; i++ {
				s += a[i][k] * a[i][j]
			}
			s = -s / a[k][k]
			for i := k; i < n; i++ {
				a[i][j] += s * a[i][k]
			}
		}
		var s float64
		for i := k; i < n; i++ {
			s += a[i][k] * b[i]
		}
		s = -s / a[k][k]
		for i := k; i < n; i++ {
			b[i] += s * a[i][k]
		}
		rdiag[k] = -nrm
	}

	// Back substitution on R w = Qᵀb.
	w := make([]float64, d)
	for i := d - 1; i >= 0; i-- {
		if rdiag[i] == 0 {
			w[i] = 0
			continue
		}
		s := b[i]
		for j := i + 1; j < d; j++ {
			s -= a[i][j] * w[j]
		}
		w[i] = s / rdiag[i]
	}
	return w, nil
}
