package ml

import (
	"math"
	"reflect"
	"testing"
)

// referenceSVRBetas is a verbatim port of the pre-shrinking SVR dual solver:
// a dense [][]float64 kernel and plain cyclic sweeps with eager f updates
// and no working-set skipping. The production solver's certificates and
// lazy-replay bookkeeping must reproduce this trajectory bit-for-bit.
func referenceSVRBetas(c, epsilon, gamma float64, maxIter int, tol float64, X [][]float64, y []float64) []float64 {
	n, d := len(X), len(X[0])
	mean := make([]float64, d)
	scale := make([]float64, d)
	for j := 0; j < d; j++ {
		var m float64
		for i := 0; i < n; i++ {
			m += X[i][j]
		}
		m /= float64(n)
		var v float64
		for i := 0; i < n; i++ {
			dv := X[i][j] - m
			v += dv * dv
		}
		s := math.Sqrt(v / float64(n))
		if s == 0 {
			s = 1
		}
		mean[j], scale[j] = m, s
	}
	xs := make([][]float64, n)
	for i := range xs {
		xs[i] = make([]float64, d)
		for j := 0; j < d; j++ {
			xs[i][j] = (X[i][j] - mean[j]) / scale[j]
		}
	}
	g := gamma
	if g == 0 {
		g = 1 / float64(d)
	}
	rbf := func(a, b []float64) float64 {
		var d2 float64
		for j := range a {
			dv := a[j] - b[j]
			d2 += dv * dv
		}
		return math.Exp(-g * d2)
	}
	k := make([][]float64, n)
	for i := range k {
		k[i] = make([]float64, n)
	}
	for i := 0; i < n; i++ {
		for j := 0; j <= i; j++ {
			v := rbf(xs[i], xs[j]) + 1
			k[i][j], k[j][i] = v, v
		}
	}
	beta := make([]float64, n)
	f := make([]float64, n)
	for it := 0; it < maxIter; it++ {
		var maxDelta float64
		for i := 0; i < n; i++ {
			z := y[i] - f[i] + beta[i]*k[i][i]
			nb := softThreshold(z, epsilon) / k[i][i]
			if nb > c {
				nb = c
			} else if nb < -c {
				nb = -c
			}
			if delta := nb - beta[i]; delta != 0 {
				for j := 0; j < n; j++ {
					f[j] += delta * k[i][j]
				}
				beta[i] = nb
				if ad := math.Abs(delta); ad > maxDelta {
					maxDelta = ad
				}
			}
		}
		if maxDelta < tol {
			break
		}
	}
	return beta
}

// TestSVRShrinkingMatchesReference locks the shrinking solver to the plain
// cyclic reference: identical dual coefficients, bit for bit, on converging
// fits, MaxIter-bound fits, and box constraints tight enough to pin a large
// fraction of the coordinates at ±C (the regime where certificates, lazy
// replay and kernel repacking all engage).
func TestSVRShrinkingMatchesReference(t *testing.T) {
	smoothX, smoothY := benchData(120)
	largeX, largeY := benchData(300)
	wideX, wideY := benchDataWide(250, 8)
	cases := []struct {
		name      string
		c, eps, g float64
		X         [][]float64
		y         []float64
	}{
		{"converging-default", 10, 0.05, 0, smoothX, smoothY},
		{"bench-shape-maxiter", 10, 0.01, 0, largeX, largeY},
		{"tight-box-heavy-pinning", 0.05, 0.01, 0, largeX, largeY},
		{"wide-discrete-freq", 1, 0.02, 0.2, wideX, wideY},
		{"zero-epsilon", 2, 0, 0, smoothX, smoothY},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			m := NewSVR(tc.c, tc.eps, tc.g)
			if err := m.Fit(tc.X, tc.y); err != nil {
				t.Fatal(err)
			}
			want := referenceSVRBetas(tc.c, tc.eps, tc.g, m.MaxIter, m.Tol, tc.X, tc.y)
			if len(m.beta) != len(want) {
				t.Fatalf("beta length %d, want %d", len(m.beta), len(want))
			}
			mismatch := 0
			for i := range want {
				if m.beta[i] != want[i] {
					if mismatch < 5 {
						t.Errorf("beta[%d] = %v, reference %v (diff %g)", i, m.beta[i], want[i], m.beta[i]-want[i])
					}
					mismatch++
				}
			}
			if mismatch > 0 {
				t.Fatalf("%d/%d coefficients diverge from the reference trajectory", mismatch, len(want))
			}
		})
	}
}

// TestLassoActiveSetMatchesDense locks the zero-coordinate certificates to
// the dense schedule: with the skipping disabled every sweep evaluates every
// coordinate, and the certified solver must land on exactly the same
// coefficients — a skipped update has to be a provable no-op, not an
// approximation.
func TestLassoActiveSetMatchesDense(t *testing.T) {
	nX, nY := benchData(500)
	wX, wY := benchDataWide(400, 16)
	cases := []struct {
		name  string
		alpha float64
		X     [][]float64
		y     []float64
	}{
		{"narrow-light-penalty", 0.01, nX, nY},
		{"narrow-heavy-penalty", 0.5, nX, nY},
		{"wide-light-penalty", 0.01, wX, wY},
		{"wide-heavy-penalty", 0.3, wX, wY},
		{"zero-alpha", 0, nX, nY},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			fast := NewLasso(tc.alpha)
			if err := fast.Fit(tc.X, tc.y); err != nil {
				t.Fatal(err)
			}
			dense := NewLasso(tc.alpha)
			dense.denseSweeps = true
			if err := dense.Fit(tc.X, tc.y); err != nil {
				t.Fatal(err)
			}
			if !reflect.DeepEqual(fast.Coef, dense.Coef) {
				t.Fatalf("active-set coefficients diverge from dense sweeps:\n fast  %v\n dense %v", fast.Coef, dense.Coef)
			}
			if fast.Intercept != dense.Intercept {
				t.Fatalf("intercept %v != dense %v", fast.Intercept, dense.Intercept)
			}
		})
	}
}

// TestSolverFitIsDeterministic refits both regressors on identical inputs
// and requires identical coefficient bits — the solvers are pure functions
// of their inputs, with no schedule- or map-order dependence.
func TestSolverFitIsDeterministic(t *testing.T) {
	X, y := benchDataWide(300, 8)
	a, b := NewSVR(5, 0.02, 0), NewSVR(5, 0.02, 0)
	if err := a.Fit(X, y); err != nil {
		t.Fatal(err)
	}
	if err := b.Fit(X, y); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(a.beta, b.beta) {
		t.Fatal("svr: repeated fits disagree")
	}
	la, lb := NewLasso(0.05), NewLasso(0.05)
	if err := la.Fit(X, y); err != nil {
		t.Fatal(err)
	}
	if err := lb.Fit(X, y); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(la.Coef, lb.Coef) || la.Intercept != lb.Intercept {
		t.Fatal("lasso: repeated fits disagree")
	}
}
