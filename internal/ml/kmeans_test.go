package ml

import (
	"math"
	"testing"

	"dsenergy/internal/xrand"
)

// threeBlobs builds well-separated Gaussian clusters.
func threeBlobs(rng *xrand.Rand, per int) ([][]float64, []int) {
	centers := [][]float64{{0, 0}, {10, 0}, {0, 10}}
	var X [][]float64
	var labels []int
	for c, cent := range centers {
		for i := 0; i < per; i++ {
			X = append(X, []float64{
				cent[0] + 0.5*rng.Norm(),
				cent[1] + 0.5*rng.Norm(),
			})
			labels = append(labels, c)
		}
	}
	return X, labels
}

func TestKMeansRecoversBlobs(t *testing.T) {
	X, labels := threeBlobs(xrand.New(1), 50)
	km := NewKMeans(3)
	if err := km.Fit(X, 7); err != nil {
		t.Fatal(err)
	}
	// Every true cluster must map to exactly one predicted cluster.
	assign := km.Assignments(X)
	mapping := map[int]map[int]int{}
	for i := range X {
		if mapping[labels[i]] == nil {
			mapping[labels[i]] = map[int]int{}
		}
		mapping[labels[i]][assign[i]]++
	}
	used := map[int]bool{}
	for truth, preds := range mapping {
		best, bc := -1, -1
		for p, c := range preds {
			if c > bc {
				best, bc = p, c
			}
		}
		if float64(bc) < 0.95*50 {
			t.Errorf("cluster %d fragmented: %v", truth, preds)
		}
		if used[best] {
			t.Errorf("two true clusters map to predicted cluster %d", best)
		}
		used[best] = true
	}
}

func TestKMeansInertiaDecreasesWithK(t *testing.T) {
	X, _ := threeBlobs(xrand.New(2), 40)
	var prev float64 = math.Inf(1)
	for _, k := range []int{1, 2, 3} {
		km := NewKMeans(k)
		if err := km.Fit(X, 3); err != nil {
			t.Fatal(err)
		}
		if km.Inertia > prev {
			t.Errorf("inertia increased from k-1 to k=%d: %g > %g", k, km.Inertia, prev)
		}
		prev = km.Inertia
	}
}

func TestKMeansValidation(t *testing.T) {
	if err := NewKMeans(2).Fit(nil, 1); err == nil {
		t.Error("expected error for empty data")
	}
	if err := NewKMeans(5).Fit([][]float64{{1}, {2}}, 1); err == nil {
		t.Error("expected error for k > n")
	}
	if err := NewKMeans(0).Fit([][]float64{{1}}, 1); err == nil {
		t.Error("expected error for k = 0")
	}
	if err := NewKMeans(1).Fit([][]float64{{1, 2}, {1}}, 1); err == nil {
		t.Error("expected error for ragged rows")
	}
}

func TestKMeansDeterministic(t *testing.T) {
	X, _ := threeBlobs(xrand.New(4), 30)
	a, b := NewKMeans(3), NewKMeans(3)
	if err := a.Fit(X, 11); err != nil {
		t.Fatal(err)
	}
	if err := b.Fit(X, 11); err != nil {
		t.Fatal(err)
	}
	if a.Inertia != b.Inertia {
		t.Errorf("identically seeded fits differ: %g vs %g", a.Inertia, b.Inertia)
	}
}

func TestKMeansDuplicatePoints(t *testing.T) {
	X := [][]float64{{1, 1}, {1, 1}, {1, 1}, {5, 5}}
	km := NewKMeans(2)
	if err := km.Fit(X, 1); err != nil {
		t.Fatal(err)
	}
	if km.Inertia > 1e-9 {
		t.Errorf("two distinct locations, two clusters: inertia %g, want 0", km.Inertia)
	}
}

func TestPermutationImportanceFindsRelevantFeature(t *testing.T) {
	rng := xrand.New(5)
	n := 300
	X := make([][]float64, n)
	y := make([]float64, n)
	for i := range X {
		rel, junk := rng.Float64()*10, rng.Float64()*10
		X[i] = []float64{rel, junk}
		y[i] = 3 * rel
	}
	m := NewForest(ForestConfig{NumTrees: 25, Seed: 1})
	if err := m.Fit(X, y); err != nil {
		t.Fatal(err)
	}
	imp, err := PermutationImportance(m, X, y, 3, 9)
	if err != nil {
		t.Fatal(err)
	}
	if imp[0] <= 10*math.Max(imp[1], 1e-9) && imp[0] <= imp[1]+0.05 {
		t.Errorf("relevant feature importance %g not dominating junk %g", imp[0], imp[1])
	}
}

func TestForestFeatureImportance(t *testing.T) {
	rng := xrand.New(6)
	n := 300
	X := make([][]float64, n)
	y := make([]float64, n)
	for i := range X {
		rel, junk := rng.Float64()*10, rng.Float64()
		X[i] = []float64{rel, junk}
		y[i] = math.Floor(rel)
	}
	m := NewForest(ForestConfig{NumTrees: 20, Seed: 2})
	if err := m.Fit(X, y); err != nil {
		t.Fatal(err)
	}
	imp, err := ForestFeatureImportance(m, 2)
	if err != nil {
		t.Fatal(err)
	}
	var sum float64
	for _, v := range imp {
		sum += v
	}
	if math.Abs(sum-1) > 1e-9 {
		t.Errorf("importances sum to %g, want 1", sum)
	}
	if imp[0] < imp[1] {
		t.Errorf("relevant feature importance %g below junk %g", imp[0], imp[1])
	}
	if _, err := ForestFeatureImportance(NewForest(ForestConfig{}), 2); err == nil {
		t.Error("expected error for unfitted forest")
	}
}
