// Package cronos implements a three-dimensional finite-volume solver for the
// equations of ideal magnetohydrodynamics, reproducing the structure of the
// Cronos code the paper characterizes (Kissmann et al., ApJS 236:53):
//
//	while currentTime <= endTime:
//	    for substep in 0..2:
//	        cflBuf, changeBuf = computeChanges(grid)   // 13-point stencil
//	        cfl = reduce(cflBuf, max)                  // parallel reduction
//	        grid = integrateTime(grid, changeBuf, substep)
//	        grid = applyBoundary(grid)
//	    timeDelta = adjustTimestepDelta(timeDelta, cfl)
//
// The solver uses MUSCL reconstruction with a minmod limiter and HLL fluxes,
// which needs two neighbour cells per direction — the 13-point stencil the
// paper describes — and a three-stage strong-stability-preserving Runge-Kutta
// integrator, matching Algorithm 1's three substeps. computeChanges and
// integrateTime are parallelized over contiguous slabs with a goroutine pool;
// each slab writes its CFL/flux partial result to its own slot and the slots
// are folded in slab order after the join, so the max-reduction is
// deterministic for every worker count. The sweeps themselves run over a
// structure-of-arrays primitive mirror in cache-blocked pencil tiles (see
// sweep.go).
package cronos

import "fmt"

// NVars is the number of conserved variables per cell: density, three
// momentum components, total energy, and three magnetic field components.
const NVars = 8

// Conserved variable indices.
const (
	IRho = iota // mass density
	IMx         // x momentum
	IMy         // y momentum
	IMz         // z momentum
	IEn         // total energy density
	IBx         // magnetic field x
	IBy         // magnetic field y
	IBz         // magnetic field z
)

// Ghost is the halo width required by the 13-point stencil (two upwind and
// two downwind cells per direction).
const Ghost = 2

// Grid holds the conserved state on a regular Cartesian mesh with ghost
// layers, stored as structure-of-arrays for stencil-friendly access.
type Grid struct {
	NX, NY, NZ int     // interior cells per dimension
	DX, DY, DZ float64 // cell sizes
	// U[v][idx] is conserved variable v at flattened cell idx, ghosts
	// included; use Idx for addressing.
	U [NVars][]float64

	sx, sy, sz int // strides including ghosts
}

// NewGrid allocates a grid of nx×ny×nz interior cells spanning a unit-length
// domain in x (dy, dz scale with the aspect ratio of the cell counts).
func NewGrid(nx, ny, nz int) (*Grid, error) {
	if nx < 1 || ny < 1 || nz < 1 {
		return nil, fmt.Errorf("cronos: grid dimensions must be positive, got %dx%dx%d", nx, ny, nz)
	}
	g := &Grid{
		NX: nx, NY: ny, NZ: nz,
		DX: 1.0 / float64(nx), DY: 1.0 / float64(nx), DZ: 1.0 / float64(nx),
		sx: nx + 2*Ghost, sy: ny + 2*Ghost, sz: nz + 2*Ghost,
	}
	n := g.sx * g.sy * g.sz
	for v := 0; v < NVars; v++ {
		g.U[v] = make([]float64, n)
	}
	return g, nil
}

// Cells returns the number of interior cells.
func (g *Grid) Cells() int { return g.NX * g.NY * g.NZ }

// Idx flattens interior coordinates (i,j,k) in [0,NX)×[0,NY)×[0,NZ) —
// ghost cells are addressed with negative or ≥N coordinates.
func (g *Grid) Idx(i, j, k int) int {
	return ((k+Ghost)*g.sy+(j+Ghost))*g.sx + (i + Ghost)
}

// At returns conserved variable v at interior coordinates (i,j,k).
func (g *Grid) At(v, i, j, k int) float64 { return g.U[v][g.Idx(i, j, k)] }

// Set assigns conserved variable v at interior coordinates (i,j,k).
func (g *Grid) Set(v, i, j, k int, val float64) { g.U[v][g.Idx(i, j, k)] = val }

// Clone returns a deep copy of the grid (used by the RK stages).
func (g *Grid) Clone() *Grid {
	c := &Grid{NX: g.NX, NY: g.NY, NZ: g.NZ, DX: g.DX, DY: g.DY, DZ: g.DZ,
		sx: g.sx, sy: g.sy, sz: g.sz}
	for v := 0; v < NVars; v++ {
		c.U[v] = make([]float64, len(g.U[v]))
		copy(c.U[v], g.U[v])
	}
	return c
}

// CopyFrom copies o's state into g. The grids must have identical shape.
func (g *Grid) CopyFrom(o *Grid) {
	for v := 0; v < NVars; v++ {
		copy(g.U[v], o.U[v])
	}
}

// TotalMass integrates density over the interior (a conservation invariant
// under periodic boundaries).
func (g *Grid) TotalMass() float64 {
	var sum float64
	for k := 0; k < g.NZ; k++ {
		for j := 0; j < g.NY; j++ {
			row := g.Idx(0, j, k)
			for i := 0; i < g.NX; i++ {
				sum += g.U[IRho][row+i]
			}
		}
	}
	return sum * g.DX * g.DY * g.DZ
}

// TotalEnergy integrates total energy density over the interior.
func (g *Grid) TotalEnergy() float64 {
	var sum float64
	for k := 0; k < g.NZ; k++ {
		for j := 0; j < g.NY; j++ {
			row := g.Idx(0, j, k)
			for i := 0; i < g.NX; i++ {
				sum += g.U[IEn][row+i]
			}
		}
	}
	return sum * g.DX * g.DY * g.DZ
}

// Boundary selects the boundary condition applied by ApplyBoundary.
type Boundary int

const (
	// Periodic wraps the domain in every direction.
	Periodic Boundary = iota
	// Outflow copies the outermost interior cell into the ghost layers
	// (zero-gradient).
	Outflow
)

// ApplyBoundary fills the ghost layers. Following Algorithm 1 it touches only
// the outermost surfaces of the grid, in parallel over variables.
func (g *Grid) ApplyBoundary(b Boundary) {
	for v := 0; v < NVars; v++ {
		g.applyBoundaryVar(v, b)
	}
}

func (g *Grid) applyBoundaryVar(v int, b Boundary) {
	u := g.U[v]
	// X direction.
	for k := -Ghost; k < g.NZ+Ghost; k++ {
		for j := -Ghost; j < g.NY+Ghost; j++ {
			for l := 1; l <= Ghost; l++ {
				var lo, hi float64
				switch b {
				case Periodic:
					lo = u[g.Idx(g.NX-l, j, k)]
					hi = u[g.Idx(l-1, j, k)]
				default:
					lo = u[g.Idx(0, j, k)]
					hi = u[g.Idx(g.NX-1, j, k)]
				}
				u[g.Idx(-l, j, k)] = lo
				u[g.Idx(g.NX+l-1, j, k)] = hi
			}
		}
	}
	// Y direction.
	for k := -Ghost; k < g.NZ+Ghost; k++ {
		for i := -Ghost; i < g.NX+Ghost; i++ {
			for l := 1; l <= Ghost; l++ {
				var lo, hi float64
				switch b {
				case Periodic:
					lo = u[g.Idx(i, g.NY-l, k)]
					hi = u[g.Idx(i, l-1, k)]
				default:
					lo = u[g.Idx(i, 0, k)]
					hi = u[g.Idx(i, g.NY-1, k)]
				}
				u[g.Idx(i, -l, k)] = lo
				u[g.Idx(i, g.NY+l-1, k)] = hi
			}
		}
	}
	// Z direction.
	for j := -Ghost; j < g.NY+Ghost; j++ {
		for i := -Ghost; i < g.NX+Ghost; i++ {
			for l := 1; l <= Ghost; l++ {
				var lo, hi float64
				switch b {
				case Periodic:
					lo = u[g.Idx(i, j, g.NZ-l)]
					hi = u[g.Idx(i, j, l-1)]
				default:
					lo = u[g.Idx(i, j, 0)]
					hi = u[g.Idx(i, j, g.NZ-1)]
				}
				u[g.Idx(i, j, -l)] = lo
				u[g.Idx(i, j, g.NZ+l-1)] = hi
			}
		}
	}
}
