package cronos

import (
	"bytes"
	"strings"
	"testing"
)

func TestCheckpointRoundTrip(t *testing.T) {
	s := newTestSolver(t, 12, 8, 6, 2)
	InitBlastWave(s.Grid, 0.1, 10, 0.2)
	s.Grid.ApplyBoundary(Periodic)
	for i := 0; i < 4; i++ {
		s.Step()
	}

	var buf bytes.Buffer
	if err := s.WriteCheckpoint(&buf); err != nil {
		t.Fatal(err)
	}
	restored, err := ReadCheckpoint(&buf, 2)
	if err != nil {
		t.Fatal(err)
	}
	if restored.Time != s.Time || restored.DT != s.DT || restored.StepsRun != s.StepsRun {
		t.Errorf("time state differs: %+v vs t=%g dt=%g steps=%d",
			restored.Time, s.Time, s.DT, s.StepsRun)
	}
	for v := 0; v < NVars; v++ {
		for i := range s.Grid.U[v] {
			if restored.Grid.U[v][i] != s.Grid.U[v][i] {
				t.Fatalf("variable %d differs at %d after restore", v, i)
			}
		}
	}
}

func TestCheckpointContinuationMatchesUninterrupted(t *testing.T) {
	// Running 8 steps straight must equal running 4, checkpointing,
	// restoring, and running 4 more — bit for bit.
	run := func() *Solver {
		s := newTestSolver(t, 10, 6, 8, 3)
		InitBlastWave(s.Grid, 0.1, 10, 0.2)
		s.Grid.ApplyBoundary(Periodic)
		return s
	}
	straight := run()
	for i := 0; i < 8; i++ {
		straight.Step()
	}

	split := run()
	for i := 0; i < 4; i++ {
		split.Step()
	}
	var buf bytes.Buffer
	if err := split.WriteCheckpoint(&buf); err != nil {
		t.Fatal(err)
	}
	resumed, err := ReadCheckpoint(&buf, 3)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 4; i++ {
		resumed.Step()
	}

	if resumed.Time != straight.Time {
		t.Fatalf("times diverge: %g vs %g", resumed.Time, straight.Time)
	}
	for v := 0; v < NVars; v++ {
		for i := range straight.Grid.U[v] {
			if resumed.Grid.U[v][i] != straight.Grid.U[v][i] {
				t.Fatalf("state diverges after restart: var %d idx %d", v, i)
			}
		}
	}
}

func TestCheckpointRejectsGarbage(t *testing.T) {
	if _, err := ReadCheckpoint(strings.NewReader("short"), 1); err == nil {
		t.Error("expected error for truncated checkpoint")
	}
	// Valid-length but wrong magic.
	bad := make([]byte, 64)
	if _, err := ReadCheckpoint(bytes.NewReader(bad), 1); err == nil {
		t.Error("expected error for bad magic")
	}
	// Truncated payload: valid header, missing data.
	s := newTestSolver(t, 4, 4, 4, 1)
	InitUniform(s.Grid, 1, 1, [3]float64{0, 0, 0})
	var buf bytes.Buffer
	if err := s.WriteCheckpoint(&buf); err != nil {
		t.Fatal(err)
	}
	trunc := buf.Bytes()[:buf.Len()/2]
	if _, err := ReadCheckpoint(bytes.NewReader(trunc), 1); err == nil {
		t.Error("expected error for truncated payload")
	}
}
