package cronos

import (
	"testing"

	"dsenergy/internal/gpusim"
	"dsenergy/internal/synergy"
)

func TestFluxEvalCrossCheck(t *testing.T) {
	// The analytic workload profile assumes the solver performs
	// ExpectedFluxEvalsPerStep HLL evaluations per timestep; verify against
	// the instrumented reference solver.
	s := newTestSolver(t, 10, 6, 8, 3)
	InitBlastWave(s.Grid, 0.1, 10, 0.2)
	s.Grid.ApplyBoundary(Periodic)
	steps := 4
	for i := 0; i < steps; i++ {
		s.Step()
	}
	w, err := NewWorkload(10, 6, 8, steps)
	if err != nil {
		t.Fatal(err)
	}
	want := w.ExpectedFluxEvalsPerStep() * int64(steps)
	if s.FluxEvals != want {
		t.Errorf("instrumented flux evals %d, analytic expectation %d", s.FluxEvals, want)
	}
}

func TestWorkloadValidation(t *testing.T) {
	if _, err := NewWorkload(0, 4, 4, 1); err == nil {
		t.Error("expected error for zero dimension")
	}
	if _, err := NewWorkload(4, 4, 4, 0); err == nil {
		t.Error("expected error for zero steps")
	}
}

func TestWorkloadProfilesValid(t *testing.T) {
	w, err := NewWorkload(20, 8, 8, 10)
	if err != nil {
		t.Fatal(err)
	}
	ps := w.Profiles()
	if len(ps) != 4 {
		t.Fatalf("want 4 kernels per Algorithm 1, got %d", len(ps))
	}
	for _, p := range ps {
		if err := p.Validate(); err != nil {
			t.Errorf("kernel %s: %v", p.Name, err)
		}
		if p.Launches != float64(3*10) {
			t.Errorf("kernel %s: launches %g, want 30 (3 substeps x 10 steps)", p.Name, p.Launches)
		}
	}
}

func TestWorkloadMemoryBoundAtLargeGrid(t *testing.T) {
	// The paper's central Cronos observation (Figures 4-5): at large grids
	// the stencil is memory bound, so raising the clock above the default
	// buys almost nothing while lowering it saves energy.
	dev := mustV100(t)
	w, _ := NewWorkload(160, 64, 64, 4)
	def := dev.Spec().BaselineFreqMHz()
	fmax := dev.Spec().FMaxMHz()

	tDef, eDef := w.AnalyticOn(dev, def)
	tMax, eMax := w.AnalyticOn(dev, fmax)
	speedup := tDef / tMax
	if speedup > 1.05 {
		t.Errorf("large grid should be memory bound: speedup at fmax = %.3f, want <= 1.05", speedup)
	}
	if eMax <= eDef {
		t.Errorf("up-clocking a memory-bound kernel should cost energy: %g -> %g J", eDef, eMax)
	}

	// Down-clocking to ~60%% of default must save noticeable energy at
	// small speedup loss.
	low := dev.Spec().NearestFreqMHz(def * 6 / 10)
	tLow, eLow := w.AnalyticOn(dev, low)
	if loss := tLow/tDef - 1; loss > 0.10 {
		t.Errorf("down-clock speedup loss %.1f%%, want <= 10%%", loss*100)
	}
	if saving := 1 - eLow/eDef; saving < 0.08 {
		t.Errorf("down-clock energy saving %.1f%%, want >= 8%%", saving*100)
	}
}

func TestWorkloadSmallGridLaunchBound(t *testing.T) {
	// Small grids (10x4x4) are dominated by launch overhead: the frequency
	// sensitivity of runtime is weak in both directions (Figure 4a).
	dev := mustV100(t)
	w, _ := NewWorkload(10, 4, 4, 4)
	def := dev.Spec().BaselineFreqMHz()
	tDef, _ := w.AnalyticOn(dev, def)
	tMax, _ := w.AnalyticOn(dev, dev.Spec().FMaxMHz())
	if sp := tDef / tMax; sp > 1.12 {
		t.Errorf("small grid speedup at fmax = %.3f, want modest (<= 1.12)", sp)
	}
}

func TestWorkloadRunOnQueue(t *testing.T) {
	p, err := synergy.NewPlatform(7, gpusim.V100Spec())
	if err != nil {
		t.Fatal(err)
	}
	q := p.Queues()[0]
	w, _ := NewWorkload(20, 8, 8, 2)
	timeS, energyJ, err := w.RunOn(q)
	if err != nil {
		t.Fatal(err)
	}
	if timeS <= 0 || energyJ <= 0 {
		t.Fatalf("non-positive observation: t=%g e=%g", timeS, energyJ)
	}
	evs := q.Events()
	if len(evs) != 4 {
		t.Errorf("want 4 kernel events, got %d", len(evs))
	}
}

// mustV100 builds a V100 device, failing the test on error.
func mustV100(t *testing.T) *gpusim.Device {
	t.Helper()
	d, err := gpusim.New(gpusim.V100Spec(), 1)
	if err != nil {
		t.Fatal(err)
	}
	return d
}
