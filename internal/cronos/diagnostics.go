package cronos

import (
	"fmt"
	"io"
	"math"
)

// Diagnostics for validating and inspecting solver state. The scheme is a
// cell-centered finite-volume method without constrained transport, so ∇·B
// is not maintained at machine zero; MaxDivB exposes the discrete divergence
// so tests and users can verify it stays bounded on the timescales simulated
// here (the production Cronos code uses a constrained-transport variant for
// long-horizon runs).

// MaxDivB returns the largest absolute central-difference divergence of the
// magnetic field over the interior.
func (g *Grid) MaxDivB() float64 {
	var max float64
	for k := 0; k < g.NZ; k++ {
		for j := 0; j < g.NY; j++ {
			for i := 0; i < g.NX; i++ {
				div := (g.At(IBx, i+1, j, k)-g.At(IBx, i-1, j, k))/(2*g.DX) +
					(g.At(IBy, i, j+1, k)-g.At(IBy, i, j-1, k))/(2*g.DY) +
					(g.At(IBz, i, j, k+1)-g.At(IBz, i, j, k-1))/(2*g.DZ)
				if a := math.Abs(div); a > max {
					max = a
				}
			}
		}
	}
	return max
}

// Extrema holds the range of one conserved variable over the interior.
type Extrema struct {
	Min, Max float64
}

// VarExtrema returns the interior range of conserved variable v.
func (g *Grid) VarExtrema(v int) Extrema {
	e := Extrema{Min: math.Inf(1), Max: math.Inf(-1)}
	for k := 0; k < g.NZ; k++ {
		for j := 0; j < g.NY; j++ {
			row := g.Idx(0, j, k)
			for i := 0; i < g.NX; i++ {
				x := g.U[v][row+i]
				if x < e.Min {
					e.Min = x
				}
				if x > e.Max {
					e.Max = x
				}
			}
		}
	}
	return e
}

// KineticEnergy integrates ½ρv² over the interior.
func (g *Grid) KineticEnergy() float64 {
	var sum float64
	for k := 0; k < g.NZ; k++ {
		for j := 0; j < g.NY; j++ {
			row := g.Idx(0, j, k)
			for i := 0; i < g.NX; i++ {
				rho := g.U[IRho][row+i]
				if rho <= 0 {
					continue
				}
				mx, my, mz := g.U[IMx][row+i], g.U[IMy][row+i], g.U[IMz][row+i]
				sum += 0.5 * (mx*mx + my*my + mz*mz) / rho
			}
		}
	}
	return sum * g.DX * g.DY * g.DZ
}

// MagneticEnergy integrates ½B² over the interior.
func (g *Grid) MagneticEnergy() float64 {
	var sum float64
	for k := 0; k < g.NZ; k++ {
		for j := 0; j < g.NY; j++ {
			row := g.Idx(0, j, k)
			for i := 0; i < g.NX; i++ {
				bx, by, bz := g.U[IBx][row+i], g.U[IBy][row+i], g.U[IBz][row+i]
				sum += 0.5 * (bx*bx + by*by + bz*bz)
			}
		}
	}
	return sum * g.DX * g.DY * g.DZ
}

// IsFinite reports whether every interior value of every variable is finite
// — the cheap sanity check long runs assert between checkpoints.
func (g *Grid) IsFinite() bool {
	for v := 0; v < NVars; v++ {
		for k := 0; k < g.NZ; k++ {
			for j := 0; j < g.NY; j++ {
				row := g.Idx(0, j, k)
				for i := 0; i < g.NX; i++ {
					x := g.U[v][row+i]
					if math.IsNaN(x) || math.IsInf(x, 0) {
						return false
					}
				}
			}
		}
	}
	return true
}

// WriteSliceCSV writes the z=k plane of conserved variable v as CSV rows
// (y-major), a simple snapshot format for external plotting.
func (g *Grid) WriteSliceCSV(w io.Writer, v, k int) error {
	if v < 0 || v >= NVars {
		return fmt.Errorf("cronos: variable index %d out of range", v)
	}
	if k < 0 || k >= g.NZ {
		return fmt.Errorf("cronos: z index %d out of range", k)
	}
	for j := 0; j < g.NY; j++ {
		for i := 0; i < g.NX; i++ {
			if i > 0 {
				if _, err := io.WriteString(w, ","); err != nil {
					return err
				}
			}
			if _, err := fmt.Fprintf(w, "%.8g", g.At(v, i, j, k)); err != nil {
				return err
			}
		}
		if _, err := io.WriteString(w, "\n"); err != nil {
			return err
		}
	}
	return nil
}

// Profile1D extracts conserved variable v along x at the given (j,k) row —
// the standard way to compare shock-tube solutions against references.
func (g *Grid) Profile1D(v, j, k int) []float64 {
	out := make([]float64, g.NX)
	for i := 0; i < g.NX; i++ {
		out[i] = g.At(v, i, j, k)
	}
	return out
}
