package cronos

import "testing"

// TestStepAllocationGuard pins the steady-state allocation count of the hot
// path. After the first step warms the workspaces, a Step must not allocate
// beyond the fixed per-dispatch overhead of the worker fan-out (goroutine
// bookkeeping in parallel.ForEach); any per-cell or per-plane allocation
// creeping into the sweep multiplies by the step count and shows up here
// immediately.
func TestStepAllocationGuard(t *testing.T) {
	for _, tc := range []struct {
		name    string
		workers int
		max     float64
	}{
		{"serial", 1, 16},
		{"parallel", 0, 32},
	} {
		t.Run(tc.name, func(t *testing.T) {
			s, err := NewSolver(Config{NX: 32, NY: 32, NZ: 32, Boundary: Periodic, Workers: tc.workers})
			if err != nil {
				t.Fatal(err)
			}
			InitBlastWave(s.Grid, 0.1, 10, 0.2)
			s.Grid.ApplyBoundary(Periodic)
			s.Step() // warm up workspaces
			avg := testing.AllocsPerRun(3, func() { s.Step() })
			if avg > tc.max {
				t.Fatalf("Step allocates %.1f objects per call, want <= %.0f", avg, tc.max)
			}
		})
	}
}
