package cronos

import (
	"math"
	"testing"
)

func newTestSolver(t *testing.T, nx, ny, nz, workers int) *Solver {
	t.Helper()
	s, err := NewSolver(Config{NX: nx, NY: ny, NZ: nz, Boundary: Periodic, Workers: workers})
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func TestUniformStateIsSteady(t *testing.T) {
	s := newTestSolver(t, 12, 8, 6, 2)
	InitUniform(s.Grid, 1.3, 0.7, [3]float64{0.3, -0.2, 0.1})
	before := s.Grid.Clone()
	if err := s.Run(0.05, 10); err != nil {
		t.Fatal(err)
	}
	if s.StepsRun == 0 {
		t.Fatal("solver took no steps")
	}
	for v := 0; v < NVars; v++ {
		for k := 0; k < s.Grid.NZ; k++ {
			for j := 0; j < s.Grid.NY; j++ {
				for i := 0; i < s.Grid.NX; i++ {
					got := s.Grid.At(v, i, j, k)
					want := before.At(v, i, j, k)
					if !almostEqual(got, want, 1e-11) {
						t.Fatalf("uniform state drifted: var %d cell (%d,%d,%d): %g -> %g",
							v, i, j, k, want, got)
					}
				}
			}
		}
	}
}

func TestBlastWaveConservation(t *testing.T) {
	s := newTestSolver(t, 16, 16, 16, 4)
	InitBlastWave(s.Grid, 0.1, 10, 0.2)
	s.Grid.ApplyBoundary(Periodic)
	mass0 := s.Grid.TotalMass()
	en0 := s.Grid.TotalEnergy()
	if err := s.Run(0.02, 20); err != nil {
		t.Fatal(err)
	}
	if s.StepsRun < 2 {
		t.Fatalf("expected multiple steps, ran %d", s.StepsRun)
	}
	// Finite-volume update with periodic boundaries conserves mass and
	// total energy to round-off.
	if m := s.Grid.TotalMass(); !almostEqual(m, mass0, 1e-10) {
		t.Errorf("mass not conserved: %g -> %g", mass0, m)
	}
	if e := s.Grid.TotalEnergy(); !almostEqual(e, en0, 1e-10) {
		t.Errorf("energy not conserved: %g -> %g", en0, e)
	}
}

func TestBlastWaveDevelopsFlow(t *testing.T) {
	s := newTestSolver(t, 16, 16, 16, 2)
	InitBlastWave(s.Grid, 0.1, 10, 0.2)
	if err := s.Run(0.05, 30); err != nil {
		t.Fatal(err)
	}
	var maxMom float64
	for k := 0; k < 16; k++ {
		for j := 0; j < 16; j++ {
			for i := 0; i < 16; i++ {
				m := math.Abs(s.Grid.At(IMx, i, j, k))
				if m > maxMom {
					maxMom = m
				}
			}
		}
	}
	if maxMom < 1e-3 {
		t.Errorf("blast wave produced no outflow momentum (max |mx| = %g)", maxMom)
	}
}

func TestBlastWaveMirrorSymmetry(t *testing.T) {
	// The blast is centered, the field lies in the x-y plane, so the
	// density must stay mirror-symmetric in z.
	s := newTestSolver(t, 8, 8, 8, 3)
	InitBlastWave(s.Grid, 0.1, 10, 0.25)
	if err := s.Run(0.03, 12); err != nil {
		t.Fatal(err)
	}
	n := s.Grid.NZ
	for k := 0; k < n/2; k++ {
		for j := 0; j < n; j++ {
			for i := 0; i < n; i++ {
				a := s.Grid.At(IRho, i, j, k)
				b := s.Grid.At(IRho, i, j, n-1-k)
				if !almostEqual(a, b, 1e-8) {
					t.Fatalf("z-mirror symmetry broken at (%d,%d,%d): %g vs %g", i, j, k, a, b)
				}
			}
		}
	}
}

func TestAlfvenWaveStable(t *testing.T) {
	s := newTestSolver(t, 32, 4, 4, 2)
	InitAlfvenWave(s.Grid, 0.1)
	mass0 := s.Grid.TotalMass()
	if err := s.Run(0.3, 200); err != nil {
		t.Fatal(err)
	}
	if !almostEqual(s.Grid.TotalMass(), mass0, 1e-10) {
		t.Errorf("Alfvén wave run lost mass")
	}
	// The transverse field must survive (dissipation < 100%): the wave is
	// smooth and the scheme second order.
	var byAmp float64
	for i := 0; i < 32; i++ {
		byAmp = math.Max(byAmp, math.Abs(s.Grid.At(IBy, i, 1, 1)))
	}
	if byAmp < 0.02 {
		t.Errorf("Alfvén wave over-damped: max |By| = %g, want > 0.02", byAmp)
	}
}

func TestWorkerCountDoesNotChangeResult(t *testing.T) {
	run := func(workers int) *Grid {
		s := newTestSolver(t, 10, 6, 8, workers)
		InitBlastWave(s.Grid, 0.1, 10, 0.2)
		if err := s.Run(0.02, 8); err != nil {
			t.Fatal(err)
		}
		return s.Grid
	}
	g1 := run(1)
	g8 := run(8)
	for v := 0; v < NVars; v++ {
		for i := range g1.U[v] {
			if g1.U[v][i] != g8.U[v][i] {
				t.Fatalf("var %d idx %d differs between 1 and 8 workers: %g vs %g",
					v, i, g1.U[v][i], g8.U[v][i])
			}
		}
	}
}

func TestTimestepAdjustsToCFL(t *testing.T) {
	s := newTestSolver(t, 8, 8, 8, 2)
	InitBlastWave(s.Grid, 0.1, 10, 0.2)
	s.Grid.ApplyBoundary(Periodic)
	s.Step()
	if s.CFLMax <= 0 {
		t.Fatal("CFL reduction returned non-positive value")
	}
	if s.DT <= 0 {
		t.Fatal("adjusted timestep non-positive")
	}
	// The next dt honours the Courant number against the measured CFL,
	// up to the 10% growth limiter.
	if s.DT > 0.4/s.CFLMax*1.0001 {
		t.Errorf("dt %g violates CFL bound %g", s.DT, 0.4/s.CFLMax)
	}
}

func TestRunStopsAtEndTime(t *testing.T) {
	s := newTestSolver(t, 8, 4, 4, 1)
	InitUniform(s.Grid, 1, 1, [3]float64{0, 0, 0})
	if err := s.Run(0.01, 0); err != nil {
		t.Fatal(err)
	}
	if !almostEqual(s.Time, 0.01, 1e-12) {
		t.Errorf("run overshot end time: %g", s.Time)
	}
}

func TestOutflowBoundaryFillsGhosts(t *testing.T) {
	g, err := NewGrid(4, 4, 4)
	if err != nil {
		t.Fatal(err)
	}
	InitUniform(g, 2, 1, [3]float64{1, 0, 0})
	g.Set(IRho, 0, 1, 1, 7) // marker at low-x face
	g.ApplyBoundary(Outflow)
	if got := g.U[IRho][g.Idx(-1, 1, 1)]; got != 7 {
		t.Errorf("outflow ghost (-1,1,1) = %g, want copied 7", got)
	}
	if got := g.U[IRho][g.Idx(-2, 1, 1)]; got != 7 {
		t.Errorf("outflow ghost (-2,1,1) = %g, want copied 7", got)
	}
}

func TestPeriodicBoundaryWraps(t *testing.T) {
	g, err := NewGrid(4, 4, 4)
	if err != nil {
		t.Fatal(err)
	}
	InitUniform(g, 1, 1, [3]float64{0, 0, 0})
	g.Set(IRho, 3, 2, 2, 9) // high-x interior cell
	g.ApplyBoundary(Periodic)
	if got := g.U[IRho][g.Idx(-1, 2, 2)]; got != 9 {
		t.Errorf("periodic ghost (-1,2,2) = %g, want wrapped 9", got)
	}
}

func TestNewSolverRejectsBadGrid(t *testing.T) {
	if _, err := NewSolver(Config{NX: 0, NY: 4, NZ: 4}); err == nil {
		t.Error("expected error for zero-sized grid")
	}
}

func TestGridIdxAddressing(t *testing.T) {
	g, err := NewGrid(3, 5, 7)
	if err != nil {
		t.Fatal(err)
	}
	seen := map[int]bool{}
	for k := -Ghost; k < g.NZ+Ghost; k++ {
		for j := -Ghost; j < g.NY+Ghost; j++ {
			for i := -Ghost; i < g.NX+Ghost; i++ {
				idx := g.Idx(i, j, k)
				if idx < 0 || idx >= len(g.U[0]) {
					t.Fatalf("Idx(%d,%d,%d) = %d out of range", i, j, k, idx)
				}
				if seen[idx] {
					t.Fatalf("Idx(%d,%d,%d) = %d collides", i, j, k, idx)
				}
				seen[idx] = true
			}
		}
	}
	if len(seen) != len(g.U[0]) {
		t.Errorf("addressing covered %d of %d slots", len(seen), len(g.U[0]))
	}
}
