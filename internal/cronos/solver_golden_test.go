package cronos

import (
	"crypto/sha256"
	"encoding/binary"
	"fmt"
	"math"
	"testing"
)

// The hashes below were generated from the pre-tiling solver (per-pencil
// allocation, channel+mutex CFL reduction, per-substep changes clear) at the
// commit before the cache-blocked rewrite. The tiled SoA engine must
// reproduce them bit-for-bit: the refactor is a memory-layout change only,
// with every float operation kept in the reference order.
const (
	goldenBlastPeriodic = "33560b598ff546b7bd49d63ac6c13467af4686c80e7e05ca4b3541f5ddf0d054"
	goldenAlfvenVanLeer = "70cf12908c41073842924667deee5cc94053bd4b823e54c98d9500df54d489f0"
	goldenBlastOutflow  = "7a88010b29c77893abed000f458e2633dbb450f775e2f12c5560e98389730553"
)

// stateHash digests the full ghosted conserved state plus DT and Time.
func stateHash(s *Solver) string {
	h := sha256.New()
	var buf [8]byte
	for v := 0; v < NVars; v++ {
		for _, x := range s.Grid.U[v] {
			binary.LittleEndian.PutUint64(buf[:], math.Float64bits(x))
			h.Write(buf[:])
		}
	}
	binary.LittleEndian.PutUint64(buf[:], math.Float64bits(s.DT))
	h.Write(buf[:])
	binary.LittleEndian.PutUint64(buf[:], math.Float64bits(s.Time))
	h.Write(buf[:])
	return fmt.Sprintf("%x", h.Sum(nil))
}

func TestGoldenBlastPeriodic(t *testing.T) {
	s, err := NewSolver(Config{NX: 16, NY: 12, NZ: 10, Boundary: Periodic, Workers: 3})
	if err != nil {
		t.Fatal(err)
	}
	InitBlastWave(s.Grid, 0.1, 10, 0.2)
	s.Grid.ApplyBoundary(Periodic)
	for i := 0; i < 6; i++ {
		s.Step()
	}
	if got := stateHash(s); got != goldenBlastPeriodic {
		t.Fatalf("blast/periodic state drifted from pre-tiling solver:\n got %s\nwant %s", got, goldenBlastPeriodic)
	}
}

func TestGoldenAlfvenVanLeer(t *testing.T) {
	s, err := NewSolver(Config{NX: 12, NY: 10, NZ: 8, Boundary: Periodic, Workers: 2, Limiter: LimiterVanLeer})
	if err != nil {
		t.Fatal(err)
	}
	InitAlfvenWave(s.Grid, 0.1)
	s.Grid.ApplyBoundary(Periodic)
	for i := 0; i < 5; i++ {
		s.Step()
	}
	if got := stateHash(s); got != goldenAlfvenVanLeer {
		t.Fatalf("alfven/vanLeer state drifted from pre-tiling solver:\n got %s\nwant %s", got, goldenAlfvenVanLeer)
	}
}

func TestGoldenBlastOutflow(t *testing.T) {
	s, err := NewSolver(Config{NX: 10, NY: 8, NZ: 6, Boundary: Outflow, Workers: 4})
	if err != nil {
		t.Fatal(err)
	}
	InitBlastWave(s.Grid, 0.1, 10, 0.25)
	s.Grid.ApplyBoundary(Outflow)
	for i := 0; i < 4; i++ {
		s.Step()
	}
	if got := stateHash(s); got != goldenBlastOutflow {
		t.Fatalf("blast/outflow state drifted from pre-tiling solver:\n got %s\nwant %s", got, goldenBlastOutflow)
	}
}

// TestTileWidthInvariance locks the tiling contract: TileWidth tunes cache
// behaviour only, so every width — degenerate single-pencil tiles, widths
// that do not divide NX, and widths larger than NX — must produce the exact
// reference bits for every worker count.
func TestTileWidthInvariance(t *testing.T) {
	run := func(workers, tileWidth int) string {
		s, err := NewSolver(Config{
			NX: 14, NY: 11, NZ: 9, Boundary: Periodic,
			Workers: workers, TileWidth: tileWidth,
		})
		if err != nil {
			t.Fatal(err)
		}
		InitBlastWave(s.Grid, 0.1, 10, 0.2)
		s.Grid.ApplyBoundary(Periodic)
		for i := 0; i < 4; i++ {
			s.Step()
		}
		return stateHash(s)
	}
	want := run(1, 1)
	for _, workers := range []int{1, 2, 5} {
		for _, tw := range []int{1, 3, 16, 64} {
			if got := run(workers, tw); got != want {
				t.Errorf("workers=%d tileWidth=%d: state %s differs from workers=1 tileWidth=1 reference %s",
					workers, tw, got, want)
			}
		}
	}
}
