package cronos

import (
	"math"
	"testing"
)

func TestAdvectionTranslatesProfile(t *testing.T) {
	s, err := NewScalarSolver(AdvectionLaw{V: [3]float64{1, 0, 0}}, 64, 4, 4, Periodic)
	if err != nil {
		t.Fatal(err)
	}
	s.Init(func(x, _, _ float64) float64 { return math.Sin(2 * math.Pi * x) })
	// After one period (t=1) the profile returns to its start.
	if err := s.Run(1.0, 0); err != nil {
		t.Fatal(err)
	}
	var l1 float64
	for i := 0; i < 64; i++ {
		x := (float64(i) + 0.5) * s.DX
		l1 += math.Abs(s.At(i, 1, 1) - math.Sin(2*math.Pi*x))
	}
	l1 /= 64
	if l1 > 0.05 {
		t.Errorf("advection L1 error after one period %g, want < 0.05", l1)
	}
}

func TestAdvectionConservation(t *testing.T) {
	s, err := NewScalarSolver(AdvectionLaw{V: [3]float64{0.7, 0.3, -0.2}}, 16, 16, 16, Periodic)
	if err != nil {
		t.Fatal(err)
	}
	s.Init(func(x, y, z float64) float64 { return 1 + 0.3*math.Sin(2*math.Pi*x)*math.Cos(2*math.Pi*y) })
	total0 := s.Total()
	if err := s.Run(0.2, 0); err != nil {
		t.Fatal(err)
	}
	if !almostEqual(s.Total(), total0, 1e-11) {
		t.Errorf("conserved quantity drifted: %g -> %g", total0, s.Total())
	}
}

func TestBurgersFormsShock(t *testing.T) {
	s, err := NewScalarSolver(BurgersLaw{}, 128, 1, 1, Periodic)
	if err != nil {
		t.Fatal(err)
	}
	s.Init(func(x, _, _ float64) float64 { return 1 + 0.5*math.Sin(2*math.Pi*x) })
	// Smooth data steepens; run past the shock-formation time ~1/π.
	if err := s.Run(0.5, 0); err != nil {
		t.Fatal(err)
	}
	// The solution must stay bounded by its initial range (maximum
	// principle for scalar laws) and develop a steep gradient.
	maxGrad := 0.0
	for i := 0; i < 128; i++ {
		u := s.At(i, 0, 0)
		if u < 0.5-1e-6 || u > 1.5+1e-6 {
			t.Fatalf("maximum principle violated: u=%g at %d", u, i)
		}
		next := s.At((i+1)%128, 0, 0)
		if g := math.Abs(next-u) / s.DX; g > maxGrad {
			maxGrad = g
		}
	}
	if maxGrad < 10 {
		t.Errorf("no shock formed: max gradient %g", maxGrad)
	}
}

func TestBurgersShockSpeed(t *testing.T) {
	// Riemann problem uL=1, uR=0: the shock travels at (uL+uR)/2 = 0.5.
	s, err := NewScalarSolver(BurgersLaw{}, 128, 1, 1, Outflow)
	if err != nil {
		t.Fatal(err)
	}
	s.Init(func(x, _, _ float64) float64 {
		if x < 0.25 {
			return 1
		}
		return 0
	})
	endTime := 0.5
	if err := s.Run(endTime, 0); err != nil {
		t.Fatal(err)
	}
	// Find the shock location (u crosses 0.5).
	shockX := -1.0
	for i := 0; i < 127; i++ {
		if s.At(i, 0, 0) >= 0.5 && s.At(i+1, 0, 0) < 0.5 {
			shockX = (float64(i) + 1.0) * s.DX
			break
		}
	}
	want := 0.25 + 0.5*endTime
	if shockX < 0 || math.Abs(shockX-want) > 0.05 {
		t.Errorf("shock at x=%g, want ~%g", shockX, want)
	}
}

func TestScalarSolverDeterministicAcrossWorkers(t *testing.T) {
	run := func(workers int) []float64 {
		s, err := NewScalarSolver(AdvectionLaw{V: [3]float64{0.5, 0.5, 0.5}}, 12, 12, 12, Periodic)
		if err != nil {
			t.Fatal(err)
		}
		s.Workers = workers
		s.Init(func(x, y, z float64) float64 { return math.Sin(2 * math.Pi * (x + y + z)) })
		if err := s.Run(0.05, 0); err != nil {
			t.Fatal(err)
		}
		return append([]float64(nil), s.u...)
	}
	a, b := run(1), run(8)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("scalar state differs between 1 and 8 workers at %d", i)
		}
	}
}

func TestScalarSolverValidation(t *testing.T) {
	if _, err := NewScalarSolver(nil, 8, 8, 8, Periodic); err == nil {
		t.Error("expected error for nil law")
	}
	if _, err := NewScalarSolver(BurgersLaw{}, 0, 8, 8, Periodic); err == nil {
		t.Error("expected error for zero dimension")
	}
}

// rotatedAdvection is a user-defined law exercising the public interface:
// advection along a diagonal with direction-dependent flux.
type rotatedAdvection struct{}

func (rotatedAdvection) Flux(u float64, dir int) float64 {
	v := [3]float64{0.4, -0.3, 0.2}
	return v[dir] * u
}
func (rotatedAdvection) MaxSpeed(_ float64, dir int) float64 {
	v := [3]float64{0.4, 0.3, 0.2}
	return v[dir]
}

func TestUserProvidedLaw(t *testing.T) {
	s, err := NewScalarSolver(rotatedAdvection{}, 12, 12, 12, Periodic)
	if err != nil {
		t.Fatal(err)
	}
	s.Init(func(x, y, z float64) float64 { return math.Cos(2 * math.Pi * x) })
	total0 := s.Total()
	if err := s.Run(0.1, 0); err != nil {
		t.Fatal(err)
	}
	if !almostEqual(s.Total(), total0, 1e-11) {
		t.Errorf("user law not conservative: %g -> %g", total0, s.Total())
	}
	if s.StepsRun == 0 {
		t.Error("no steps taken")
	}
}
