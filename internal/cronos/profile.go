package cronos

import (
	"fmt"

	"dsenergy/internal/gpusim"
	"dsenergy/internal/kernels"
	"dsenergy/internal/synergy"
)

// Per-cell instruction costs of the four kernels of Algorithm 1, derived from
// the reference solver in this package: three directional MUSCL+HLL sweeps
// per computeChanges (≈1 flux per cell per direction), three primitive
// conversions, and the per-cell CFL estimate. The numbers are cross-checked
// against the solver's instrumented flux counts in profile_test.go.
var (
	// computeChangesMix is the per-cell cost of the 13-point stencil kernel.
	computeChangesMix = kernels.InstructionMix{
		IntAdd: 60, IntMul: 25, IntBitwise: 5,
		FloatAdd: 500, FloatMul: 500, FloatDiv: 30, SpecialFn: 18,
		// Raw (cache-oblivious) accesses: three sweeps reading a 5-cell
		// neighbourhood of 8 doubles plus the change and CFL writes.
		GlobalAcc: 258, LocalAcc: 40,
	}
	// computeChangesReuse is the fraction of raw accesses served on chip
	// when the working set fits: with perfect neighbourhood caching the
	// kernel streams 8 reads + 8 writes + 1 CFL store per cell (264 B of
	// 1032 B raw → reuse 0.744).
	computeChangesReuse = 0.744

	// reduceMix is the per-element cost of the parallel max-reduction.
	reduceMix = kernels.InstructionMix{
		IntAdd: 4, IntBitwise: 2, FloatAdd: 1, GlobalAcc: 2, LocalAcc: 4,
	}

	// integrateMix is the per-cell cost of the RK substep update: streaming
	// u0, u and the changes, writing u (64 words), with 4 flops per variable.
	integrateMix = kernels.InstructionMix{
		IntAdd: 6, FloatAdd: 16, FloatMul: 16, GlobalAcc: 64,
	}

	// boundaryMix is the per-ghost-cell cost of the halo exchange.
	boundaryMix = kernels.InstructionMix{
		IntAdd: 10, IntMul: 4, GlobalAcc: 32,
	}
)

// bytesPerCellResident is the per-cell footprint streamed by computeChanges
// (8 state reads + 8 change writes + 1 CFL) used as its working set.
const bytesPerCellResident = 17 * 8

// Workload describes a Cronos simulation as a GPU workload: the grid size
// and the number of timesteps to advance. It implements synergy.Workload, so
// the measurement harness can sweep it across frequencies.
type Workload struct {
	NX, NY, NZ int
	Steps      int
}

// NewWorkload validates and builds a workload.
func NewWorkload(nx, ny, nz, steps int) (Workload, error) {
	if nx < 1 || ny < 1 || nz < 1 || steps < 1 {
		return Workload{}, fmt.Errorf("cronos: invalid workload %dx%dx%d steps=%d", nx, ny, nz, steps)
	}
	return Workload{NX: nx, NY: ny, NZ: nz, Steps: steps}, nil
}

// Name implements synergy.Workload.
func (w Workload) Name() string {
	return fmt.Sprintf("cronos-%dx%dx%d", w.NX, w.NY, w.NZ)
}

// Cells returns the interior cell count.
func (w Workload) Cells() float64 { return float64(w.NX) * float64(w.NY) * float64(w.NZ) }

// surfaceCells returns the ghost-layer volume touched by applyBoundary.
func (w Workload) surfaceCells() float64 {
	nx, ny, nz := float64(w.NX), float64(w.NY), float64(w.NZ)
	return 2 * Ghost * (nx*ny + ny*nz + nx*nz)
}

// Profiles returns the GPU kernel profiles of one full run: the four kernels
// of Algorithm 1, each launched three times per step (one per RK substep).
func (w Workload) Profiles() []kernels.Profile {
	cells := w.Cells()
	launches := float64(3 * w.Steps)
	ws := cells * bytesPerCellResident
	return []kernels.Profile{
		{
			Name: "computeChanges", Mix: computeChangesMix,
			WorkItems: cells, Launches: launches,
			WorkingSetBytes: ws, CacheReuse: computeChangesReuse,
		},
		{
			Name: "reduceCFL", Mix: reduceMix,
			WorkItems: cells, Launches: launches,
			WorkingSetBytes: cells * 8, CacheReuse: 0,
		},
		{
			Name: "integrateTime", Mix: integrateMix,
			WorkItems: cells, Launches: launches,
			WorkingSetBytes: cells * 32 * 8, CacheReuse: 0,
		},
		{
			Name: "applyBoundary", Mix: boundaryMix,
			WorkItems: w.surfaceCells(), Launches: launches,
			WorkingSetBytes: w.surfaceCells() * 16 * 8, CacheReuse: 0,
		},
	}
}

// RunOn implements synergy.Workload: it submits the run's kernel profiles to
// the queue at its current frequency and returns aggregate time and energy.
func (w Workload) RunOn(q *synergy.Queue) (timeS, energyJ float64, err error) {
	for _, p := range w.Profiles() {
		r, err := q.Submit(p)
		if err != nil {
			return 0, 0, err
		}
		timeS += r.TimeS
		energyJ += r.EnergyJ
	}
	return timeS, energyJ, nil
}

// AnalyticOn returns the noiseless model evaluation of the workload on dev at
// the given core frequency — used by white-box tests and calibration.
func (w Workload) AnalyticOn(dev *gpusim.Device, mhz int) (timeS, energyJ float64) {
	for _, p := range w.Profiles() {
		r := dev.Analytic(p, mhz)
		timeS += r.TimeS
		energyJ += r.EnergyJ
	}
	return timeS, energyJ
}

// AnalyticCurveOn evaluates the noiseless model at every frequency in freqs
// in one batch, amortizing one compiled-profile lookup per kernel over the
// whole list. timesS[i] and energiesJ[i] equal AnalyticOn(dev, freqs[i]) bit
// for bit: each frequency accumulates kernels in Profiles() order, exactly
// like the single-frequency path.
func (w Workload) AnalyticCurveOn(dev *gpusim.Device, freqs []int) (timesS, energiesJ []float64) {
	timesS = make([]float64, len(freqs))
	energiesJ = make([]float64, len(freqs))
	for _, p := range w.Profiles() {
		for i, b := range dev.AnalyzeCurve(p, freqs) {
			timesS[i] += b.TimeS
			energiesJ[i] += b.EnergyJ
		}
	}
	return timesS, energiesJ
}

// ExpectedFluxEvalsPerStep returns the HLL flux evaluations the reference
// solver performs per full timestep (three substeps × three directional
// sweeps with one extra face per pencil), used to cross-check the analytic
// per-cell costs against the instrumented solver.
func (w Workload) ExpectedFluxEvalsPerStep() int64 {
	nx, ny, nz := int64(w.NX), int64(w.NY), int64(w.NZ)
	perSubstep := (nx+1)*ny*nz + nx*(ny+1)*nz + nx*ny*(nz+1)
	return 3 * perSubstep
}
