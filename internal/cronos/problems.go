package cronos

import "math"

// InitUniform fills the grid with a homogeneous state at rest: density rho,
// pressure p, and a uniform magnetic field b. A uniform state is an exact
// steady solution, which the tests use to verify that fluxes cancel.
func InitUniform(g *Grid, rho, p float64, b [3]float64) {
	w := prim{rho: rho, p: p, bx: b[0], by: b[1], bz: b[2]}
	c := toCons(&w)
	fillAll(g, c)
}

// InitBlastWave sets up the classic magnetized blast-wave problem: ambient
// gas at (rho, pAmbient) with an over-pressured sphere of radius r in the
// domain center and a uniform oblique field. It is the workload used for the
// paper-style energy characterization runs.
func InitBlastWave(g *Grid, pAmbient, pBlast, r float64) {
	amb := toCons(&prim{rho: 1, p: pAmbient, bx: 1 / math.Sqrt2, by: 1 / math.Sqrt2})
	hot := toCons(&prim{rho: 1, p: pBlast, bx: 1 / math.Sqrt2, by: 1 / math.Sqrt2})
	cx, cy, cz := 0.5, 0.5*float64(g.NY)*g.DY, 0.5*float64(g.NZ)*g.DZ
	for k := 0; k < g.NZ; k++ {
		z := (float64(k) + 0.5) * g.DZ
		for j := 0; j < g.NY; j++ {
			y := (float64(j) + 0.5) * g.DY
			for i := 0; i < g.NX; i++ {
				x := (float64(i) + 0.5) * g.DX
				d := math.Sqrt((x-cx)*(x-cx) + (y-cy)*(y-cy) + (z-cz)*(z-cz))
				c := amb
				if d < r {
					c = hot
				}
				setCell(g, i, j, k, c)
			}
		}
	}
}

// InitAlfvenWave initializes a travelling circularly polarized Alfvén wave
// along x — a smooth exact solution of ideal MHD used to verify that the
// scheme propagates MHD waves and remains stable.
func InitAlfvenWave(g *Grid, amplitude float64) {
	b0 := 1.0
	rho := 1.0
	va := b0 / math.Sqrt(rho) // Alfvén speed
	for k := 0; k < g.NZ; k++ {
		for j := 0; j < g.NY; j++ {
			for i := 0; i < g.NX; i++ {
				x := (float64(i) + 0.5) * g.DX
				ph := 2 * math.Pi * x
				w := prim{
					rho: rho,
					p:   0.1,
					vx:  0,
					vy:  -amplitude * va * math.Cos(ph),
					vz:  -amplitude * va * math.Sin(ph),
					bx:  b0,
					by:  amplitude * b0 * math.Cos(ph),
					bz:  amplitude * b0 * math.Sin(ph),
				}
				setCell(g, i, j, k, toCons(&w))
			}
		}
	}
}

// InitShearFlow initializes a smooth sinusoidal shear flow, a gentle dynamic
// setup for long characterization runs that never steepens into strong shocks.
func InitShearFlow(g *Grid, mach float64) {
	for k := 0; k < g.NZ; k++ {
		for j := 0; j < g.NY; j++ {
			y := (float64(j) + 0.5) * g.DY
			for i := 0; i < g.NX; i++ {
				w := prim{
					rho: 1,
					p:   1 / Gamma, // sound speed 1
					vx:  mach * math.Sin(2*math.Pi*y/(float64(g.NY)*g.DY)),
					bx:  0.2,
				}
				setCell(g, i, j, k, toCons(&w))
			}
		}
	}
}

// InitBrioWu initializes the Brio & Wu (1988) MHD shock tube along x: the
// canonical 1-D validation problem whose solution develops a fast
// rarefaction, compound wave, contact discontinuity, slow shock and fast
// rarefaction. Use Outflow boundaries and run to t ≈ 0.1 (with the standard
// γ = 2 the reference solution applies; with the solver's γ = 5/3 the wave
// pattern is qualitatively identical).
func InitBrioWu(g *Grid) {
	left := toCons(&prim{rho: 1, p: 1, bx: 0.75, by: 1})
	right := toCons(&prim{rho: 0.125, p: 0.1, bx: 0.75, by: -1})
	for k := 0; k < g.NZ; k++ {
		for j := 0; j < g.NY; j++ {
			for i := 0; i < g.NX; i++ {
				c := left
				if i >= g.NX/2 {
					c = right
				}
				setCell(g, i, j, k, c)
			}
		}
	}
}

// InitOrszagTang initializes the Orszag-Tang vortex in the x-y plane, the
// classic 2-D MHD turbulence benchmark: smooth initial vortical flow and
// field that steepen into interacting shocks. Periodic boundaries.
func InitOrszagTang(g *Grid) {
	b0 := 1.0 / math.Sqrt(4*math.Pi)
	lx := float64(g.NX) * g.DX
	ly := float64(g.NY) * g.DY
	for k := 0; k < g.NZ; k++ {
		for j := 0; j < g.NY; j++ {
			y := (float64(j) + 0.5) * g.DY
			for i := 0; i < g.NX; i++ {
				x := (float64(i) + 0.5) * g.DX
				w := prim{
					rho: Gamma * Gamma / (4 * math.Pi),
					p:   Gamma / (4 * math.Pi),
					vx:  -math.Sin(2 * math.Pi * y / ly),
					vy:  math.Sin(2 * math.Pi * x / lx),
					bx:  -b0 * math.Sin(2*math.Pi*y/ly),
					by:  b0 * math.Sin(4*math.Pi*x/lx),
				}
				setCell(g, i, j, k, toCons(&w))
			}
		}
	}
}

func fillAll(g *Grid, c cons) {
	arr := consArray(c)
	for v := 0; v < NVars; v++ {
		u := g.U[v]
		for i := range u {
			u[i] = arr[v]
		}
	}
}

func setCell(g *Grid, i, j, k int, c cons) {
	arr := consArray(c)
	idx := g.Idx(i, j, k)
	for v := 0; v < NVars; v++ {
		g.U[v][idx] = arr[v]
	}
}
