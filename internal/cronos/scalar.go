package cronos

import (
	"fmt"
	"math"
	"runtime"
	"sync"
)

// User-provided conservation laws: the paper notes that Cronos "allows the
// solver to be used for other conservation laws that can be provided by the
// user". This file implements that capability for scalar laws
// ∂u/∂t + ∇·F(u) = 0 on the same 3-D mesh, with the same building blocks as
// the MHD solver: MUSCL/minmod reconstruction, a local Lax-Friedrichs
// numerical flux, SSP-RK3 substeps, CFL-driven timesteps, and goroutine slab
// parallelism.

// ScalarLaw is a user-provided scalar conservation law: the physical flux
// per direction and the characteristic speed bounding it.
type ScalarLaw interface {
	// Flux returns F_d(u) for direction d (0=x, 1=y, 2=z).
	Flux(u float64, dir int) float64
	// MaxSpeed returns an upper bound on |F_d'(u)| for the CFL condition
	// and the Lax-Friedrichs dissipation.
	MaxSpeed(u float64, dir int) float64
}

// AdvectionLaw is linear advection with velocity V — the canonical smoke
// test (exact solution: translation).
type AdvectionLaw struct {
	V [3]float64
}

// Flux implements ScalarLaw.
func (l AdvectionLaw) Flux(u float64, dir int) float64 { return l.V[dir] * u }

// MaxSpeed implements ScalarLaw.
func (l AdvectionLaw) MaxSpeed(_ float64, dir int) float64 { return math.Abs(l.V[dir]) }

// BurgersLaw is the inviscid Burgers equation along x (F = u²/2), the
// canonical nonlinear law that steepens smooth data into shocks.
type BurgersLaw struct{}

// Flux implements ScalarLaw.
func (BurgersLaw) Flux(u float64, dir int) float64 {
	if dir == 0 {
		return 0.5 * u * u
	}
	return 0
}

// MaxSpeed implements ScalarLaw.
func (BurgersLaw) MaxSpeed(u float64, dir int) float64 {
	if dir == 0 {
		return math.Abs(u)
	}
	return 0
}

// ScalarSolver advances a user-provided scalar conservation law.
type ScalarSolver struct {
	Law        ScalarLaw
	NX, NY, NZ int
	DX, DY, DZ float64
	Boundary   Boundary
	CFL        float64
	Workers    int

	Time     float64
	DT       float64
	StepsRun int

	u       []float64 // state with ghosts
	u0      []float64
	changes []float64
	sx, sy  int
}

// NewScalarSolver builds a solver on an nx×ny×nz unit-x-length mesh.
func NewScalarSolver(law ScalarLaw, nx, ny, nz int, b Boundary) (*ScalarSolver, error) {
	if law == nil {
		return nil, fmt.Errorf("cronos: nil conservation law")
	}
	if nx < 1 || ny < 1 || nz < 1 {
		return nil, fmt.Errorf("cronos: invalid scalar grid %dx%dx%d", nx, ny, nz)
	}
	sx, sy, sz := nx+2*Ghost, ny+2*Ghost, nz+2*Ghost
	n := sx * sy * sz
	return &ScalarSolver{
		Law: law, NX: nx, NY: ny, NZ: nz,
		DX: 1.0 / float64(nx), DY: 1.0 / float64(nx), DZ: 1.0 / float64(nx),
		Boundary: b, CFL: 0.4, Workers: runtime.GOMAXPROCS(0),
		DT: 1e-4,
		u:  make([]float64, n), u0: make([]float64, n), changes: make([]float64, n),
		sx: sx, sy: sy,
	}, nil
}

// Idx flattens interior coordinates (ghosts via negative/overflow indices).
func (s *ScalarSolver) Idx(i, j, k int) int {
	return ((k+Ghost)*s.sy+(j+Ghost))*s.sx + (i + Ghost)
}

// At returns the state at interior coordinates.
func (s *ScalarSolver) At(i, j, k int) float64 { return s.u[s.Idx(i, j, k)] }

// Set assigns the state at interior coordinates.
func (s *ScalarSolver) Set(i, j, k int, v float64) { s.u[s.Idx(i, j, k)] = v }

// Init fills the state from a function of cell-center coordinates.
func (s *ScalarSolver) Init(f func(x, y, z float64) float64) {
	for k := 0; k < s.NZ; k++ {
		z := (float64(k) + 0.5) * s.DZ
		for j := 0; j < s.NY; j++ {
			y := (float64(j) + 0.5) * s.DY
			for i := 0; i < s.NX; i++ {
				x := (float64(i) + 0.5) * s.DX
				s.Set(i, j, k, f(x, y, z))
			}
		}
	}
	s.applyBoundary()
}

// Total integrates the conserved quantity over the interior.
func (s *ScalarSolver) Total() float64 {
	var sum float64
	for k := 0; k < s.NZ; k++ {
		for j := 0; j < s.NY; j++ {
			row := s.Idx(0, j, k)
			for i := 0; i < s.NX; i++ {
				sum += s.u[row+i]
			}
		}
	}
	return sum * s.DX * s.DY * s.DZ
}

func (s *ScalarSolver) applyBoundary() {
	for k := -Ghost; k < s.NZ+Ghost; k++ {
		for j := -Ghost; j < s.NY+Ghost; j++ {
			for l := 1; l <= Ghost; l++ {
				if s.Boundary == Periodic {
					s.u[s.Idx(-l, j, k)] = s.u[s.Idx(s.NX-l, j, k)]
					s.u[s.Idx(s.NX+l-1, j, k)] = s.u[s.Idx(l-1, j, k)]
				} else {
					s.u[s.Idx(-l, j, k)] = s.u[s.Idx(0, j, k)]
					s.u[s.Idx(s.NX+l-1, j, k)] = s.u[s.Idx(s.NX-1, j, k)]
				}
			}
		}
	}
	for k := -Ghost; k < s.NZ+Ghost; k++ {
		for i := -Ghost; i < s.NX+Ghost; i++ {
			for l := 1; l <= Ghost; l++ {
				if s.Boundary == Periodic {
					s.u[s.Idx(i, -l, k)] = s.u[s.Idx(i, s.NY-l, k)]
					s.u[s.Idx(i, s.NY+l-1, k)] = s.u[s.Idx(i, l-1, k)]
				} else {
					s.u[s.Idx(i, -l, k)] = s.u[s.Idx(i, 0, k)]
					s.u[s.Idx(i, s.NY+l-1, k)] = s.u[s.Idx(i, s.NY-1, k)]
				}
			}
		}
	}
	for j := -Ghost; j < s.NY+Ghost; j++ {
		for i := -Ghost; i < s.NX+Ghost; i++ {
			for l := 1; l <= Ghost; l++ {
				if s.Boundary == Periodic {
					s.u[s.Idx(i, j, -l)] = s.u[s.Idx(i, j, s.NZ-l)]
					s.u[s.Idx(i, j, s.NZ+l-1)] = s.u[s.Idx(i, j, l-1)]
				} else {
					s.u[s.Idx(i, j, -l)] = s.u[s.Idx(i, j, 0)]
					s.u[s.Idx(i, j, s.NZ+l-1)] = s.u[s.Idx(i, j, s.NZ-1)]
				}
			}
		}
	}
}

// computeChanges evaluates -∇·F into changes and returns the global CFL
// value, parallel over z-slabs.
func (s *ScalarSolver) computeChanges() float64 {
	for i := range s.changes {
		s.changes[i] = 0
	}
	w := s.Workers
	if w > s.NZ {
		w = s.NZ
	}
	if w < 1 {
		w = 1
	}
	cflCh := make(chan float64, w)
	var wg sync.WaitGroup
	chunk := (s.NZ + w - 1) / w
	sent := 0
	for lo := 0; lo < s.NZ; lo += chunk {
		hi := lo + chunk
		if hi > s.NZ {
			hi = s.NZ
		}
		wg.Add(1)
		sent++
		go func(lo, hi int) {
			defer wg.Done()
			cflCh <- s.slabChanges(lo, hi)
		}(lo, hi)
	}
	wg.Wait()
	var cfl float64
	for i := 0; i < sent; i++ {
		if v := <-cflCh; v > cfl {
			cfl = v
		}
	}
	return cfl
}

// slabChanges processes z-planes [kLo,kHi); x/y faces are plane-local and
// z faces only read (never write) the neighbour planes, so slabs are
// data-race free.
func (s *ScalarSolver) slabChanges(kLo, kHi int) float64 {
	var cfl float64
	dxs := [3]float64{s.DX, s.DY, s.DZ}
	for k := kLo; k < kHi; k++ {
		for j := 0; j < s.NY; j++ {
			for i := 0; i < s.NX; i++ {
				idx := s.Idx(i, j, k)
				u := s.u[idx]
				var c float64
				for d := 0; d < 3; d++ {
					c += s.Law.MaxSpeed(u, d) / dxs[d]
				}
				if c > cfl {
					cfl = c
				}
				// Flux difference per direction with LLF fluxes at both
				// faces of this cell.
				for d := 0; d < 3; d++ {
					fp := s.faceFlux(i, j, k, d, +1)
					fm := s.faceFlux(i, j, k, d, -1)
					s.changes[idx] -= (fp - fm) / dxs[d]
				}
			}
		}
	}
	return cfl
}

// neighbor returns the state offset by o cells along dir from (i,j,k).
func (s *ScalarSolver) neighbor(i, j, k, dir, o int) float64 {
	switch dir {
	case 0:
		return s.u[s.Idx(i+o, j, k)]
	case 1:
		return s.u[s.Idx(i, j+o, k)]
	default:
		return s.u[s.Idx(i, j, k+o)]
	}
}

// faceFlux computes the local Lax-Friedrichs flux at the +side/-side face of
// cell (i,j,k) along dir, with minmod-limited MUSCL reconstruction.
func (s *ScalarSolver) faceFlux(i, j, k, dir, side int) float64 {
	// Face between cell c (left) and c+1 (right) along dir; for side=-1 the
	// face between c-1 and c.
	base := 0
	if side < 0 {
		base = -1
	}
	um1 := s.neighbor(i, j, k, dir, base-1)
	u0 := s.neighbor(i, j, k, dir, base)
	u1 := s.neighbor(i, j, k, dir, base+1)
	u2 := s.neighbor(i, j, k, dir, base+2)
	left := u0 + 0.5*minmod(u0-um1, u1-u0)
	right := u1 - 0.5*minmod(u1-u0, u2-u1)
	a := math.Max(s.Law.MaxSpeed(left, dir), s.Law.MaxSpeed(right, dir))
	return 0.5*(s.Law.Flux(left, dir)+s.Law.Flux(right, dir)) - 0.5*a*(right-left)
}

// Step advances one SSP-RK3 timestep.
func (s *ScalarSolver) Step() {
	copy(s.u0, s.u)
	var cflMax float64
	coeffs := [3][3]float64{{1, 0, 1}, {0.75, 0.25, 0.25}, {1.0 / 3.0, 2.0 / 3.0, 2.0 / 3.0}}
	for sub := 0; sub < 3; sub++ {
		cfl := s.computeChanges()
		if cfl > cflMax {
			cflMax = cfl
		}
		a0, a1, b := coeffs[sub][0], coeffs[sub][1], coeffs[sub][2]
		for idx := range s.u {
			s.u[idx] = a0*s.u0[idx] + a1*s.u[idx] + b*s.DT*s.changes[idx]
		}
		s.applyBoundary()
	}
	s.Time += s.DT
	s.StepsRun++
	if cflMax > 0 {
		next := s.CFL / cflMax
		if next > 1.1*s.DT && s.StepsRun > 1 {
			next = 1.1 * s.DT
		}
		s.DT = next
	}
}

// Run advances until endTime (or maxSteps when positive).
func (s *ScalarSolver) Run(endTime float64, maxSteps int) error {
	for s.Time < endTime {
		if maxSteps > 0 && s.StepsRun >= maxSteps {
			break
		}
		if s.Time+s.DT > endTime {
			s.DT = endTime - s.Time
		}
		s.Step()
		for _, v := range s.u {
			if math.IsNaN(v) || math.IsInf(v, 0) {
				return fmt.Errorf("cronos: scalar solver diverged at t=%g", s.Time)
			}
		}
	}
	return nil
}
