package cronos

import (
	"bytes"
	"math"
	"strings"
	"testing"
)

// TestBrioWuShockTube validates the solver against the canonical 1-D MHD
// Riemann problem: the solution must keep the correct far-field states, stay
// monotone outside the wave fan, and develop the characteristic intermediate
// structure (density between the two initial values, transverse field
// reversal smoothed into the fan).
func TestBrioWuShockTube(t *testing.T) {
	s, err := NewSolver(Config{NX: 128, NY: 4, NZ: 4, Boundary: Outflow, Workers: 4})
	if err != nil {
		t.Fatal(err)
	}
	InitBrioWu(s.Grid)
	if err := s.Run(0.08, 400); err != nil {
		t.Fatal(err)
	}
	if !s.Grid.IsFinite() {
		t.Fatal("non-finite state")
	}

	rho := s.Grid.Profile1D(IRho, 1, 1)
	// Far fields keep the initial states.
	if !almostEqual(rho[2], 1.0, 5e-3) {
		t.Errorf("left far-field density %g, want ~1", rho[2])
	}
	if !almostEqual(rho[len(rho)-3], 0.125, 5e-2) {
		t.Errorf("right far-field density %g, want ~0.125", rho[len(rho)-3])
	}
	// All densities in the physically admissible band between the states
	// (the compound wave stays within [0.125, 1] for this tube).
	for i, r := range rho {
		if r < 0.1 || r > 1.05 {
			t.Fatalf("density %g at cell %d outside admissible band", r, i)
		}
	}
	// A wave fan has developed: density is no longer a step function.
	mid := rho[len(rho)/2]
	if mid > 0.95 || mid < 0.15 {
		t.Errorf("no intermediate structure at the midpoint: rho = %g", mid)
	}
	// The transverse field transitions from +1 to -1 through the fan.
	by := s.Grid.Profile1D(IBy, 1, 1)
	if by[2] < 0.9 || by[len(by)-3] > -0.9 {
		t.Errorf("transverse field far-fields wrong: %g, %g", by[2], by[len(by)-3])
	}
}

// TestOrszagTangVortex validates the 2-D benchmark: the smooth vortex must
// steepen without blowing up, transfer kinetic to magnetic energy, and stay
// conservative under periodic boundaries.
func TestOrszagTangVortex(t *testing.T) {
	s, err := NewSolver(Config{NX: 48, NY: 48, NZ: 1, Boundary: Periodic, Workers: 4})
	if err != nil {
		t.Fatal(err)
	}
	InitOrszagTang(s.Grid)
	s.Grid.ApplyBoundary(Periodic)
	mass0 := s.Grid.TotalMass()
	en0 := s.Grid.TotalEnergy()
	kin0 := s.Grid.KineticEnergy()

	if err := s.Run(0.2, 400); err != nil {
		t.Fatal(err)
	}
	if !s.Grid.IsFinite() {
		t.Fatal("vortex blew up")
	}
	if !almostEqual(s.Grid.TotalMass(), mass0, 1e-10) {
		t.Errorf("mass drift: %g -> %g", mass0, s.Grid.TotalMass())
	}
	if !almostEqual(s.Grid.TotalEnergy(), en0, 1e-10) {
		t.Errorf("total energy drift: %g -> %g", en0, s.Grid.TotalEnergy())
	}
	// The vortex decays: kinetic energy must drop (shock dissipation).
	if kin := s.Grid.KineticEnergy(); kin >= kin0 {
		t.Errorf("kinetic energy did not decay: %g -> %g", kin0, kin)
	}
}

func TestDivBBoundedOnBlastWave(t *testing.T) {
	s, err := NewSolver(Config{NX: 16, NY: 16, NZ: 16, Boundary: Periodic, Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	InitBlastWave(s.Grid, 0.1, 10, 0.2)
	s.Grid.ApplyBoundary(Periodic)
	if div0 := s.Grid.MaxDivB(); div0 > 1e-10 {
		t.Fatalf("initial field not divergence free: %g", div0)
	}
	if err := s.Run(0.03, 20); err != nil {
		t.Fatal(err)
	}
	// Without constrained transport divB grows from truncation error, but
	// it must stay far below the field magnitude on these timescales.
	if div := s.Grid.MaxDivB(); div > 5 {
		t.Errorf("divB grew unreasonably: %g", div)
	}
}

func TestEnergyPartitions(t *testing.T) {
	g, err := NewGrid(8, 8, 8)
	if err != nil {
		t.Fatal(err)
	}
	InitUniform(g, 2, 1, [3]float64{0.5, 0, 0})
	// Uniform state at rest: kinetic zero, magnetic = ½B²·V.
	if ke := g.KineticEnergy(); ke != 0 {
		t.Errorf("kinetic energy %g, want 0", ke)
	}
	wantMag := 0.5 * 0.25 * float64(8*8*8) * g.DX * g.DY * g.DZ
	if me := g.MagneticEnergy(); !almostEqual(me, wantMag, 1e-12) {
		t.Errorf("magnetic energy %g, want %g", me, wantMag)
	}
}

func TestVarExtrema(t *testing.T) {
	g, _ := NewGrid(4, 4, 4)
	InitUniform(g, 3, 1, [3]float64{0, 0, 0})
	g.Set(IRho, 1, 1, 1, 9)
	e := g.VarExtrema(IRho)
	if e.Min != 3 || e.Max != 9 {
		t.Errorf("extrema %+v, want {3 9}", e)
	}
}

func TestIsFiniteDetectsNaN(t *testing.T) {
	g, _ := NewGrid(4, 4, 4)
	InitUniform(g, 1, 1, [3]float64{0, 0, 0})
	if !g.IsFinite() {
		t.Fatal("uniform grid reported non-finite")
	}
	g.Set(IEn, 2, 2, 2, math.NaN())
	if g.IsFinite() {
		t.Error("NaN not detected")
	}
}

func TestWriteSliceCSV(t *testing.T) {
	g, _ := NewGrid(3, 2, 2)
	InitUniform(g, 1.5, 1, [3]float64{0, 0, 0})
	var buf bytes.Buffer
	if err := g.WriteSliceCSV(&buf, IRho, 0); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) != 2 {
		t.Fatalf("want 2 rows, got %d", len(lines))
	}
	if lines[0] != "1.5,1.5,1.5" {
		t.Errorf("row %q", lines[0])
	}
	if err := g.WriteSliceCSV(&buf, 99, 0); err == nil {
		t.Error("expected error for bad variable index")
	}
	if err := g.WriteSliceCSV(&buf, IRho, 9); err == nil {
		t.Error("expected error for bad plane index")
	}
}

func TestProfile1D(t *testing.T) {
	g, _ := NewGrid(5, 3, 3)
	for i := 0; i < 5; i++ {
		g.Set(IRho, i, 1, 1, float64(i))
	}
	p := g.Profile1D(IRho, 1, 1)
	for i, v := range p {
		if v != float64(i) {
			t.Fatalf("profile[%d] = %g", i, v)
		}
	}
}

// alfvenError runs the travelling Alfvén wave on an nx-cell grid to t=0.25
// and returns the L1 error of By against the exact solution (the wave
// returns shifted by va·t with va = 1).
func alfvenError(t *testing.T, nx int) float64 {
	t.Helper()
	s, err := NewSolver(Config{NX: nx, NY: 4, NZ: 4, Boundary: Periodic, Workers: 4})
	if err != nil {
		t.Fatal(err)
	}
	amp := 0.05
	InitAlfvenWave(s.Grid, amp)
	endTime := 0.25
	if err := s.Run(endTime, 0); err != nil {
		t.Fatal(err)
	}
	va := 1.0 // b0/sqrt(rho) with b0 = rho = 1
	var sum float64
	for i := 0; i < nx; i++ {
		x := (float64(i) + 0.5) * s.Grid.DX
		exact := amp * math.Cos(2*math.Pi*(x-va*endTime))
		sum += math.Abs(s.Grid.At(IBy, i, 1, 1) - exact)
	}
	return sum / float64(nx)
}

// TestAlfvenWaveConvergence verifies grid convergence: halving the cell size
// must shrink the error by a clear factor (the MUSCL/minmod scheme sits
// between first and second order on smooth extrema).
func TestAlfvenWaveConvergence(t *testing.T) {
	if testing.Short() {
		t.Skip("convergence study is slow")
	}
	e16 := alfvenError(t, 16)
	e32 := alfvenError(t, 32)
	e64 := alfvenError(t, 64)
	t.Logf("Alfvén L1 errors: N=16 %.3e, N=32 %.3e, N=64 %.3e (ratios %.2f, %.2f)",
		e16, e32, e64, e16/e32, e32/e64)
	if e32 >= e16 || e64 >= e32 {
		t.Fatalf("error not decreasing with resolution: %g, %g, %g", e16, e32, e64)
	}
	if e16/e32 < 1.5 || e32/e64 < 1.5 {
		t.Errorf("convergence rate too low: ratios %.2f, %.2f (want >= 1.5)",
			e16/e32, e32/e64)
	}
}

// alfvenErrorWithLimiter is alfvenError with a selectable limiter.
func alfvenErrorWithLimiter(t *testing.T, nx int, lim Limiter) float64 {
	t.Helper()
	s, err := NewSolver(Config{NX: nx, NY: 4, NZ: 4, Boundary: Periodic, Workers: 4, Limiter: lim})
	if err != nil {
		t.Fatal(err)
	}
	amp := 0.05
	InitAlfvenWave(s.Grid, amp)
	endTime := 0.25
	if err := s.Run(endTime, 0); err != nil {
		t.Fatal(err)
	}
	var sum float64
	for i := 0; i < nx; i++ {
		x := (float64(i) + 0.5) * s.Grid.DX
		exact := amp * math.Cos(2*math.Pi*(x-endTime))
		sum += math.Abs(s.Grid.At(IBy, i, 1, 1) - exact)
	}
	return sum / float64(nx)
}

// TestVanLeerLessDissipativeThanMinmod validates the limiter option: on a
// smooth wave the van Leer reconstruction must beat minmod's error, while
// staying stable on the blast-wave shock problem.
func TestVanLeerLessDissipativeThanMinmod(t *testing.T) {
	eMinmod := alfvenErrorWithLimiter(t, 32, LimiterMinmod)
	eVanLeer := alfvenErrorWithLimiter(t, 32, LimiterVanLeer)
	t.Logf("Alfvén L1 error at N=32: minmod %.3e, van Leer %.3e", eMinmod, eVanLeer)
	if eVanLeer >= eMinmod {
		t.Errorf("van Leer error %g not below minmod %g on smooth flow", eVanLeer, eMinmod)
	}

	// Shock robustness: the blast wave must stay finite and conservative.
	s, err := NewSolver(Config{NX: 16, NY: 16, NZ: 16, Boundary: Periodic, Workers: 4, Limiter: LimiterVanLeer})
	if err != nil {
		t.Fatal(err)
	}
	InitBlastWave(s.Grid, 0.1, 10, 0.2)
	s.Grid.ApplyBoundary(Periodic)
	mass0 := s.Grid.TotalMass()
	if err := s.Run(0.03, 20); err != nil {
		t.Fatal(err)
	}
	if !s.Grid.IsFinite() {
		t.Fatal("van Leer blast wave diverged")
	}
	if !almostEqual(s.Grid.TotalMass(), mass0, 1e-10) {
		t.Error("van Leer run lost mass")
	}
}

func TestLimiterProperties(t *testing.T) {
	// Both limiters: zero on sign disagreement, bounded by 2x the smaller
	// argument (TVD region), symmetric.
	for _, lim := range []func(a, b float64) float64{minmod, vanLeer} {
		for _, c := range [][2]float64{{1, 2}, {2, 1}, {-1, -3}, {1, -1}, {0, 5}, {3, 3}} {
			v := lim(c[0], c[1])
			if c[0]*c[1] <= 0 && v != 0 {
				t.Errorf("limiter nonzero on sign change: lim(%g,%g)=%g", c[0], c[1], v)
			}
			small := math.Min(math.Abs(c[0]), math.Abs(c[1]))
			if math.Abs(v) > 2*small+1e-12 {
				t.Errorf("limiter outside TVD bound: lim(%g,%g)=%g", c[0], c[1], v)
			}
			if v2 := lim(c[1], c[0]); v2 != v {
				t.Errorf("limiter not symmetric at (%g,%g)", c[0], c[1])
			}
		}
	}
}
