package cronos

import "math"

// Gamma is the adiabatic index of the ideal gas (monatomic, 5/3), the value
// used by Cronos' astrophysical setups.
const Gamma = 5.0 / 3.0

// floorRho and floorP guard against unphysical states produced by truncation
// error in near-vacuum regions.
const (
	floorRho = 1e-10
	floorP   = 1e-12
)

// prim holds the primitive-variable view of one cell: density, velocity,
// gas pressure and magnetic field.
type prim struct {
	rho        float64
	vx, vy, vz float64
	p          float64
	bx, by, bz float64
}

// cons holds the conserved variables of one cell.
type cons struct {
	rho        float64
	mx, my, mz float64
	en         float64
	bx, by, bz float64
}

// toPrim converts conserved to primitive variables with positivity floors.
func toPrim(c cons) prim {
	rho := c.rho
	if rho < floorRho {
		rho = floorRho
	}
	vx, vy, vz := c.mx/rho, c.my/rho, c.mz/rho
	kin := 0.5 * rho * (vx*vx + vy*vy + vz*vz)
	mag := 0.5 * (c.bx*c.bx + c.by*c.by + c.bz*c.bz)
	p := (Gamma - 1) * (c.en - kin - mag)
	if p < floorP {
		p = floorP
	}
	return prim{rho: rho, vx: vx, vy: vy, vz: vz, p: p, bx: c.bx, by: c.by, bz: c.bz}
}

// toCons converts primitive to conserved variables. The hot paths pass the
// state by pointer to avoid copying the 64-byte struct per call.
func toCons(w *prim) cons {
	kin := 0.5 * w.rho * (w.vx*w.vx + w.vy*w.vy + w.vz*w.vz)
	mag := 0.5 * (w.bx*w.bx + w.by*w.by + w.bz*w.bz)
	return cons{
		rho: w.rho,
		mx:  w.rho * w.vx, my: w.rho * w.vy, mz: w.rho * w.vz,
		en: w.p/(Gamma-1) + kin + mag,
		bx: w.bx, by: w.by, bz: w.bz,
	}
}

// fastSpeed returns the fast magnetosonic speed along direction dir (0=x,
// 1=y, 2=z) for primitive state w — the signal speed entering both the HLL
// flux and the CFL condition.
func fastSpeed(w *prim, dir int) float64 {
	a2 := Gamma * w.p / w.rho
	b2 := (w.bx*w.bx + w.by*w.by + w.bz*w.bz) / w.rho
	var bd float64
	switch dir {
	case 0:
		bd = w.bx
	case 1:
		bd = w.by
	default:
		bd = w.bz
	}
	bd2 := bd * bd / w.rho
	s := a2 + b2
	disc := s*s - 4*a2*bd2
	if disc < 0 {
		disc = 0
	}
	return math.Sqrt(0.5 * (s + math.Sqrt(disc)))
}

// fastSpeed3 returns the fast magnetosonic speed along all three directions
// at once, sharing the sound-speed and Alfvén terms that fastSpeed recomputes
// per call. Every per-direction operation keeps fastSpeed's order, so each
// component is bit-identical to the corresponding fastSpeed(w, dir) —
// verified by TestFastSpeed3MatchesFastSpeed.
func fastSpeed3(w *prim) (cfx, cfy, cfz float64) {
	a2 := Gamma * w.p / w.rho
	b2 := (w.bx*w.bx + w.by*w.by + w.bz*w.bz) / w.rho
	s := a2 + b2
	f := func(bd float64) float64 {
		bd2 := bd * bd / w.rho
		disc := s*s - 4*a2*bd2
		if disc < 0 {
			disc = 0
		}
		return math.Sqrt(0.5 * (s + math.Sqrt(disc)))
	}
	return f(w.bx), f(w.by), f(w.bz)
}

// velAlong returns the velocity component of w along dir.
func velAlong(w prim, dir int) float64 {
	switch dir {
	case 0:
		return w.vx
	case 1:
		return w.vy
	default:
		return w.vz
	}
}

// physFlux computes the ideal-MHD flux vector of state w along direction dir.
func physFlux(w prim, dir int) [NVars]float64 {
	c := toCons(&w)
	var f [NVars]float64
	physFluxCons(&w, &c, dir, &f)
	return f
}

// physFluxCons is physFlux with the conserved view of w supplied by the
// caller, so hll converts each side exactly once and shares the result with
// its intermediate-state term. The per-direction cases are the fully
// unrolled form of the reference's d-loops (`f[IMx+d] = m[d]*vn - b[d]*bn`
// then `f[IMx+dir] += ptot`, mirrored for the induction terms) with every
// arithmetic expression kept in the reference order.
func physFluxCons(w *prim, c *cons, dir int, f *[NVars]float64) {
	ptot := w.p + 0.5*(w.bx*w.bx+w.by*w.by+w.bz*w.bz)
	vDotB := w.vx*w.bx + w.vy*w.by + w.vz*w.bz

	switch dir {
	case 0:
		vn, bn := w.vx, w.bx
		f[IRho] = c.rho * vn
		f[IMx] = c.mx*vn - w.bx*bn + ptot
		f[IMy] = c.my*vn - w.by*bn
		f[IMz] = c.mz*vn - w.bz*bn
		f[IEn] = (c.en+ptot)*vn - bn*vDotB
		f[IBx] = 0 // normal field is advected by the constrained update
		f[IBy] = w.by*vn - w.vy*bn
		f[IBz] = w.bz*vn - w.vz*bn
	case 1:
		vn, bn := w.vy, w.by
		f[IRho] = c.rho * vn
		f[IMx] = c.mx*vn - w.bx*bn
		f[IMy] = c.my*vn - w.by*bn + ptot
		f[IMz] = c.mz*vn - w.bz*bn
		f[IEn] = (c.en+ptot)*vn - bn*vDotB
		f[IBx] = w.bx*vn - w.vx*bn
		f[IBy] = 0
		f[IBz] = w.bz*vn - w.vz*bn
	default:
		vn, bn := w.vz, w.bz
		f[IRho] = c.rho * vn
		f[IMx] = c.mx*vn - w.bx*bn
		f[IMy] = c.my*vn - w.by*bn
		f[IMz] = c.mz*vn - w.bz*bn + ptot
		f[IEn] = (c.en+ptot)*vn - bn*vDotB
		f[IBx] = w.bx*vn - w.vx*bn
		f[IBy] = w.by*vn - w.vy*bn
		f[IBz] = 0
	}
}

// hll computes the HLL approximate Riemann flux between left and right
// states along dir. It is the test-facing wrapper over hllInto, which the
// sweeps call to write each face flux in place.
func hll(l, r *prim, dir int) [NVars]float64 {
	var f [NVars]float64
	hllInto(l, r, dir, &f)
	return f
}

// hllInto writes the HLL flux between left and right states along dir into
// *out. The intermediate state is written out component-by-component in the
// conserved-variable order of the reference's consArray loop, with the
// wave-speed product hoisted — multiplication associativity in the
// reference expression (`sl*sr*(ur[v]-ul[v])`) already grouped it as
// (sl·sr)·diff, so the hoist is a pure CSE and the bits are unchanged.
func hllInto(l, r *prim, dir int, out *[NVars]float64) {
	cl := fastSpeed(l, dir)
	cr := fastSpeed(r, dir)
	var vl, vr float64
	switch dir {
	case 0:
		vl, vr = l.vx, r.vx
	case 1:
		vl, vr = l.vy, r.vy
	default:
		vl, vr = l.vz, r.vz
	}
	sl := math.Min(vl-cl, vr-cr)
	sr := math.Max(vl+cl, vr+cr)

	ucl := toCons(l)
	physFluxCons(l, &ucl, dir, out)
	if sl >= 0 {
		return
	}
	fl := *out
	ucr := toCons(r)
	physFluxCons(r, &ucr, dir, out)
	if sr <= 0 {
		return
	}
	fr := *out
	inv := 1 / (sr - sl)
	ss := sl * sr
	out[IRho] = (sr*fl[IRho] - sl*fr[IRho] + ss*(ucr.rho-ucl.rho)) * inv
	out[IMx] = (sr*fl[IMx] - sl*fr[IMx] + ss*(ucr.mx-ucl.mx)) * inv
	out[IMy] = (sr*fl[IMy] - sl*fr[IMy] + ss*(ucr.my-ucl.my)) * inv
	out[IMz] = (sr*fl[IMz] - sl*fr[IMz] + ss*(ucr.mz-ucl.mz)) * inv
	out[IEn] = (sr*fl[IEn] - sl*fr[IEn] + ss*(ucr.en-ucl.en)) * inv
	out[IBx] = (sr*fl[IBx] - sl*fr[IBx] + ss*(ucr.bx-ucl.bx)) * inv
	out[IBy] = (sr*fl[IBy] - sl*fr[IBy] + ss*(ucr.by-ucl.by)) * inv
	out[IBz] = (sr*fl[IBz] - sl*fr[IBz] + ss*(ucr.bz-ucl.bz)) * inv
}

func consArray(c cons) [NVars]float64 {
	return [NVars]float64{c.rho, c.mx, c.my, c.mz, c.en, c.bx, c.by, c.bz}
}

// minmod is the default slope limiter of the MUSCL reconstruction: the most
// dissipative TVD choice, maximally robust at shocks.
func minmod(a, b float64) float64 {
	if a*b <= 0 {
		return 0
	}
	if math.Abs(a) < math.Abs(b) {
		return a
	}
	return b
}

// vanLeer is the harmonic-mean limiter: less dissipative than minmod on
// smooth flow while remaining TVD — the trade-off Cronos exposes through its
// reconstruction options.
func vanLeer(a, b float64) float64 {
	if a*b <= 0 {
		return 0
	}
	return 2 * a * b / (a + b)
}

// Limiter selects the MUSCL slope limiter.
type Limiter int

const (
	// LimiterMinmod is the robust default.
	LimiterMinmod Limiter = iota
	// LimiterVanLeer is sharper on smooth solutions.
	LimiterVanLeer
)

// limiterFunc returns the slope function for the selection.
func (l Limiter) limiterFunc() func(a, b float64) float64 {
	if l == LimiterVanLeer {
		return vanLeer
	}
	return minmod
}
