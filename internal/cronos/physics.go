package cronos

import "math"

// Gamma is the adiabatic index of the ideal gas (monatomic, 5/3), the value
// used by Cronos' astrophysical setups.
const Gamma = 5.0 / 3.0

// floorRho and floorP guard against unphysical states produced by truncation
// error in near-vacuum regions.
const (
	floorRho = 1e-10
	floorP   = 1e-12
)

// prim holds the primitive-variable view of one cell: density, velocity,
// gas pressure and magnetic field.
type prim struct {
	rho        float64
	vx, vy, vz float64
	p          float64
	bx, by, bz float64
}

// cons holds the conserved variables of one cell.
type cons struct {
	rho        float64
	mx, my, mz float64
	en         float64
	bx, by, bz float64
}

// toPrim converts conserved to primitive variables with positivity floors.
func toPrim(c cons) prim {
	rho := c.rho
	if rho < floorRho {
		rho = floorRho
	}
	vx, vy, vz := c.mx/rho, c.my/rho, c.mz/rho
	kin := 0.5 * rho * (vx*vx + vy*vy + vz*vz)
	mag := 0.5 * (c.bx*c.bx + c.by*c.by + c.bz*c.bz)
	p := (Gamma - 1) * (c.en - kin - mag)
	if p < floorP {
		p = floorP
	}
	return prim{rho: rho, vx: vx, vy: vy, vz: vz, p: p, bx: c.bx, by: c.by, bz: c.bz}
}

// toCons converts primitive to conserved variables.
func toCons(w prim) cons {
	kin := 0.5 * w.rho * (w.vx*w.vx + w.vy*w.vy + w.vz*w.vz)
	mag := 0.5 * (w.bx*w.bx + w.by*w.by + w.bz*w.bz)
	return cons{
		rho: w.rho,
		mx:  w.rho * w.vx, my: w.rho * w.vy, mz: w.rho * w.vz,
		en: w.p/(Gamma-1) + kin + mag,
		bx: w.bx, by: w.by, bz: w.bz,
	}
}

// fastSpeed returns the fast magnetosonic speed along direction dir (0=x,
// 1=y, 2=z) for primitive state w — the signal speed entering both the HLL
// flux and the CFL condition.
func fastSpeed(w prim, dir int) float64 {
	a2 := Gamma * w.p / w.rho
	b2 := (w.bx*w.bx + w.by*w.by + w.bz*w.bz) / w.rho
	var bd float64
	switch dir {
	case 0:
		bd = w.bx
	case 1:
		bd = w.by
	default:
		bd = w.bz
	}
	bd2 := bd * bd / w.rho
	s := a2 + b2
	disc := s*s - 4*a2*bd2
	if disc < 0 {
		disc = 0
	}
	return math.Sqrt(0.5 * (s + math.Sqrt(disc)))
}

// velAlong returns the velocity component of w along dir.
func velAlong(w prim, dir int) float64 {
	switch dir {
	case 0:
		return w.vx
	case 1:
		return w.vy
	default:
		return w.vz
	}
}

// physFlux computes the ideal-MHD flux vector of state w along direction dir.
func physFlux(w prim, dir int) [NVars]float64 {
	c := toCons(w)
	ptot := w.p + 0.5*(w.bx*w.bx+w.by*w.by+w.bz*w.bz)
	v := [3]float64{w.vx, w.vy, w.vz}
	b := [3]float64{w.bx, w.by, w.bz}
	m := [3]float64{c.mx, c.my, c.mz}
	vn, bn := v[dir], b[dir]

	var f [NVars]float64
	f[IRho] = c.rho * vn
	for d := 0; d < 3; d++ {
		f[IMx+d] = m[d]*vn - b[d]*bn
	}
	f[IMx+dir] += ptot
	vDotB := v[0]*b[0] + v[1]*b[1] + v[2]*b[2]
	f[IEn] = (c.en+ptot)*vn - bn*vDotB
	for d := 0; d < 3; d++ {
		f[IBx+d] = b[d]*vn - v[d]*bn
	}
	f[IBx+dir] = 0 // normal field is advected by the constrained update
	return f
}

// hll computes the HLL approximate Riemann flux between left and right
// states along dir.
func hll(l, r prim, dir int) [NVars]float64 {
	cl := fastSpeed(l, dir)
	cr := fastSpeed(r, dir)
	vl := velAlong(l, dir)
	vr := velAlong(r, dir)
	sl := math.Min(vl-cl, vr-cr)
	sr := math.Max(vl+cl, vr+cr)

	fl := physFlux(l, dir)
	if sl >= 0 {
		return fl
	}
	fr := physFlux(r, dir)
	if sr <= 0 {
		return fr
	}
	ul := consArray(toCons(l))
	ur := consArray(toCons(r))
	var f [NVars]float64
	inv := 1 / (sr - sl)
	for v := 0; v < NVars; v++ {
		f[v] = (sr*fl[v] - sl*fr[v] + sl*sr*(ur[v]-ul[v])) * inv
	}
	return f
}

func consArray(c cons) [NVars]float64 {
	return [NVars]float64{c.rho, c.mx, c.my, c.mz, c.en, c.bx, c.by, c.bz}
}

// minmod is the default slope limiter of the MUSCL reconstruction: the most
// dissipative TVD choice, maximally robust at shocks.
func minmod(a, b float64) float64 {
	if a*b <= 0 {
		return 0
	}
	if math.Abs(a) < math.Abs(b) {
		return a
	}
	return b
}

// vanLeer is the harmonic-mean limiter: less dissipative than minmod on
// smooth flow while remaining TVD — the trade-off Cronos exposes through its
// reconstruction options.
func vanLeer(a, b float64) float64 {
	if a*b <= 0 {
		return 0
	}
	return 2 * a * b / (a + b)
}

// Limiter selects the MUSCL slope limiter.
type Limiter int

const (
	// LimiterMinmod is the robust default.
	LimiterMinmod Limiter = iota
	// LimiterVanLeer is sharper on smooth solutions.
	LimiterVanLeer
)

// limiterFunc returns the slope function for the selection.
func (l Limiter) limiterFunc() func(a, b float64) float64 {
	if l == LimiterVanLeer {
		return vanLeer
	}
	return minmod
}
