package cronos

import (
	"encoding/binary"
	"fmt"
	"io"
	"math"
)

// Checkpoint / restart: production MHD campaigns run for days, so the solver
// state must survive process boundaries. The format is a fixed little-endian
// header (magic, version, dimensions, time, dt, steps) followed by the raw
// conserved-variable arrays including ghost layers.

const (
	checkpointMagic   = 0x43524f4e4f533031 // "CRONOS01"
	checkpointVersion = 1
)

type checkpointHeader struct {
	Magic      uint64
	Version    uint32
	NX, NY, NZ uint32
	Time       float64
	DT         float64
	StepsRun   uint64
	Boundary   uint32
	_          uint32 // padding for 8-byte alignment
}

// WriteCheckpoint serializes the solver state.
func (s *Solver) WriteCheckpoint(w io.Writer) error {
	h := checkpointHeader{
		Magic: checkpointMagic, Version: checkpointVersion,
		NX: uint32(s.Grid.NX), NY: uint32(s.Grid.NY), NZ: uint32(s.Grid.NZ),
		Time: s.Time, DT: s.DT, StepsRun: uint64(s.StepsRun),
		Boundary: uint32(s.cfg.Boundary),
	}
	if err := binary.Write(w, binary.LittleEndian, &h); err != nil {
		return fmt.Errorf("cronos: writing checkpoint header: %w", err)
	}
	for v := 0; v < NVars; v++ {
		if err := binary.Write(w, binary.LittleEndian, s.Grid.U[v]); err != nil {
			return fmt.Errorf("cronos: writing variable %d: %w", v, err)
		}
	}
	return nil
}

// ReadCheckpoint reconstructs a solver from a checkpoint. The restored
// solver continues exactly where the writer stopped (same dt, time, steps).
func ReadCheckpoint(r io.Reader, workers int) (*Solver, error) {
	var h checkpointHeader
	if err := binary.Read(r, binary.LittleEndian, &h); err != nil {
		return nil, fmt.Errorf("cronos: reading checkpoint header: %w", err)
	}
	if h.Magic != checkpointMagic {
		return nil, fmt.Errorf("cronos: not a checkpoint (bad magic %#x)", h.Magic)
	}
	if h.Version != checkpointVersion {
		return nil, fmt.Errorf("cronos: unsupported checkpoint version %d", h.Version)
	}
	if h.NX == 0 || h.NY == 0 || h.NZ == 0 ||
		h.NX > 1<<20 || h.NY > 1<<20 || h.NZ > 1<<20 {
		return nil, fmt.Errorf("cronos: implausible checkpoint dimensions %dx%dx%d", h.NX, h.NY, h.NZ)
	}
	if math.IsNaN(h.Time) || math.IsNaN(h.DT) || h.DT <= 0 {
		return nil, fmt.Errorf("cronos: corrupt checkpoint time state")
	}

	s, err := NewSolver(Config{
		NX: int(h.NX), NY: int(h.NY), NZ: int(h.NZ),
		Boundary: Boundary(h.Boundary),
		Workers:  workers,
	})
	if err != nil {
		return nil, err
	}
	for v := 0; v < NVars; v++ {
		if err := binary.Read(r, binary.LittleEndian, s.Grid.U[v]); err != nil {
			return nil, fmt.Errorf("cronos: reading variable %d: %w", v, err)
		}
	}
	if !s.Grid.IsFinite() {
		return nil, fmt.Errorf("cronos: checkpoint contains non-finite state")
	}
	s.Time = h.Time
	s.DT = h.DT
	s.StepsRun = int(h.StepsRun)
	return s, nil
}
