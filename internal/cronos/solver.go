package cronos

import (
	"fmt"
	"math"
	"runtime"
	"sync"
)

// defaultTileWidth is the pencil-tile width of the Y and Z sweeps: how many
// pencils are gathered into one contiguous workspace tile before their fluxes
// are evaluated and scattered back. Tiles turn the strided column/stack
// gathers of those sweeps into streaming row-major reads and writes. The
// value is a cache trade-off, not a correctness parameter — every width
// produces byte-identical results (locked by TestTileWidthInvariance).
const defaultTileWidth = 16

// Config configures a solver run.
type Config struct {
	NX, NY, NZ int
	Boundary   Boundary
	// CFLNumber is the Courant number (0 selects the default 0.4).
	CFLNumber float64
	// Workers is the goroutine-pool width (0 selects GOMAXPROCS).
	Workers int
	// InitialDT bounds the first timestep before a CFL value exists.
	InitialDT float64
	// Limiter selects the MUSCL slope limiter (default minmod).
	Limiter Limiter
	// TileWidth is the pencil-tile width of the Y/Z sweeps (0 selects the
	// default). Any positive value produces byte-identical results; the
	// width only tunes cache behaviour.
	TileWidth int
}

// Solver advances an MHD state following Algorithm 1 of the paper.
type Solver struct {
	Grid     *Grid
	cfg      Config
	Time     float64
	DT       float64
	StepsRun int
	// CFLMax is the most recent global CFL reduction result.
	CFLMax float64
	// FluxEvals counts HLL flux evaluations, for profile cross-checks.
	FluxEvals int64

	changes *Grid  // dU/dt buffer; ghost entries stay zero for its lifetime
	u0      *Grid  // RK stage-0 snapshot
	prims   []prim // per-substep primitive mirror of the ghosted grid
	ws      []*sweepWorkspace
	parts   []slabPartial
	lim     func(a, b float64) float64
}

// NewSolver builds a solver with an allocated grid; call an initializer from
// problems.go (or fill Grid manually) before Run.
func NewSolver(cfg Config) (*Solver, error) {
	g, err := NewGrid(cfg.NX, cfg.NY, cfg.NZ)
	if err != nil {
		return nil, err
	}
	if cfg.CFLNumber == 0 {
		cfg.CFLNumber = 0.4
	}
	if cfg.Workers <= 0 {
		cfg.Workers = runtime.GOMAXPROCS(0)
	}
	if cfg.InitialDT == 0 {
		cfg.InitialDT = 1e-4
	}
	if cfg.TileWidth <= 0 {
		cfg.TileWidth = defaultTileWidth
	}
	maxDim := maxInt(cfg.NX, maxInt(cfg.NY, cfg.NZ))
	ws := make([]*sweepWorkspace, cfg.Workers)
	for i := range ws {
		ws[i] = newSweepWorkspace(maxDim, cfg.TileWidth)
	}
	return &Solver{
		Grid: g,
		cfg:  cfg,
		DT:   cfg.InitialDT,
		// changes is allocated zeroed and its ghost entries are never
		// written again: the X sweep overwrites every interior cell each
		// substep, so no per-substep clear is needed.
		changes: g.Clone(),
		u0:      g.Clone(),
		prims:   make([]prim, len(g.U[0])),
		ws:      ws,
		parts:   make([]slabPartial, cfg.Workers),
		lim:     cfg.Limiter.limiterFunc(),
	}, nil
}

// Workers returns the configured pool width.
func (s *Solver) Workers() int { return s.cfg.Workers }

// parallelFor splits [0,n) across the worker pool and waits for completion.
func (s *Solver) parallelFor(n int, body func(lo, hi int)) {
	w := s.cfg.Workers
	if w > n {
		w = n
	}
	if w <= 1 {
		body(0, n)
		return
	}
	var wg sync.WaitGroup
	chunk := (n + w - 1) / w
	for lo := 0; lo < n; lo += chunk {
		hi := lo + chunk
		if hi > n {
			hi = n
		}
		wg.Add(1)
		go func(lo, hi int) {
			defer wg.Done()
			body(lo, hi)
		}(lo, hi)
	}
	wg.Wait()
}

// forEachSlab statically partitions [0,n) into at most Workers contiguous
// slabs and runs body(slab, lo, hi) for each, in parallel when more than one
// slab exists. It returns the slab count so callers can fold the per-slab
// partial results (s.parts, s.ws) in slab order — the deterministic
// replacement for the old channel-based reduction.
func (s *Solver) forEachSlab(n int, body func(slab, lo, hi int)) int {
	w := s.cfg.Workers
	if w > n {
		w = n
	}
	if w <= 1 {
		body(0, 0, n)
		return 1
	}
	chunk := (n + w - 1) / w
	slabs := (n + chunk - 1) / chunk
	var wg sync.WaitGroup
	for slab := 0; slab < slabs; slab++ {
		lo := slab * chunk
		hi := lo + chunk
		if hi > n {
			hi = n
		}
		wg.Add(1)
		go func(slab, lo, hi int) {
			defer wg.Done()
			body(slab, lo, hi)
		}(slab, lo, hi)
	}
	wg.Wait()
	return slabs
}

// computeChanges evaluates dU/dt into s.changes from the state in g and
// returns the global CFL value (max over cells of sum_d (|v_d|+c_f,d)/dx_d),
// per Algorithm 1 lines 8-9. Each slab writes its CFL/flux-count partial to
// its own slot in s.parts and the slots are absorbed in slab order after the
// join, so the reduction is deterministic for every worker count.
func (s *Solver) computeChanges(g *Grid) float64 {
	s.refreshPrims(g)

	// X and Y sweeps parallelize over z-slabs; each slab owns its faces.
	slabs := s.forEachSlab(g.NZ, func(slab, kLo, kHi int) {
		cfl, fx := s.sweepXY(g, s.ws[slab], kLo, kHi)
		s.parts[slab] = slabPartial{cfl: cfl, fluxes: fx}
	})
	var cflXY float64
	var fluxes int64
	for i := 0; i < slabs; i++ {
		if s.parts[i].cfl > cflXY {
			cflXY = s.parts[i].cfl
		}
		fluxes += s.parts[i].fluxes
	}

	// Z sweep parallelizes over y-slabs; faces along z stay row-local. It
	// contributes no CFL (the x-sweep already reduces the full 3-D value).
	slabs = s.forEachSlab(g.NY, func(slab, jLo, jHi int) {
		fx := s.sweepZ(g, s.ws[slab], jLo, jHi)
		s.parts[slab] = slabPartial{fluxes: fx}
	})
	for i := 0; i < slabs; i++ {
		fluxes += s.parts[i].fluxes
	}

	s.FluxEvals += fluxes
	return cflXY
}

// integrateTime applies one SSP-RK3 substep, per Algorithm 1 line 10: the
// grid is combined with the stage-0 snapshot and dt·L(u) with the classic
// Shu-Osher coefficients.
func (s *Solver) integrateTime(substep int) {
	var a0, a1, b float64
	switch substep {
	case 0:
		a0, a1, b = 1, 0, 1
	case 1:
		a0, a1, b = 0.75, 0.25, 0.25
	default:
		a0, a1, b = 1.0/3.0, 2.0/3.0, 2.0/3.0
	}
	g := s.Grid
	dt := s.DT
	n := len(g.U[0])
	s.parallelFor(n, func(lo, hi int) {
		for v := 0; v < NVars; v++ {
			u, u0, ch := g.U[v], s.u0.U[v], s.changes.U[v]
			for i := lo; i < hi; i++ {
				u[i] = a0*u0[i] + a1*u[i] + b*dt*ch[i]
			}
		}
	})
}

// Step advances one full timestep (three substeps, CFL reduction, boundary
// refresh and timestep adjustment), following Algorithm 1 lines 4-14.
func (s *Solver) Step() {
	s.u0.CopyFrom(s.Grid)
	var cfl float64
	for substep := 0; substep < 3; substep++ {
		c := s.computeChanges(s.Grid)
		if c > cfl {
			cfl = c
		}
		s.integrateTime(substep)
		s.Grid.ApplyBoundary(s.cfg.Boundary)
	}
	s.CFLMax = cfl
	s.Time += s.DT
	s.StepsRun++
	s.adjustTimestepDelta(cfl)
}

// adjustTimestepDelta sets the next dt from the CFL reduction, limiting
// growth to 10% per step as Cronos does for stability.
func (s *Solver) adjustTimestepDelta(cfl float64) {
	if cfl <= 0 {
		return
	}
	want := s.cfg.CFLNumber / cfl
	if want > 1.1*s.DT && s.StepsRun > 1 {
		want = 1.1 * s.DT
	}
	s.DT = want
}

// Run advances until endTime is reached or maxSteps steps have been taken
// (maxSteps <= 0 means no step limit).
func (s *Solver) Run(endTime float64, maxSteps int) error {
	if s.Grid == nil {
		return fmt.Errorf("cronos: solver has no grid")
	}
	s.Grid.ApplyBoundary(s.cfg.Boundary)
	for s.Time < endTime {
		if maxSteps > 0 && s.StepsRun >= maxSteps {
			break
		}
		if s.Time+s.DT > endTime {
			s.DT = endTime - s.Time
		}
		s.Step()
		if math.IsNaN(s.CFLMax) || math.IsInf(s.CFLMax, 0) {
			return fmt.Errorf("cronos: solver diverged at t=%g (step %d)", s.Time, s.StepsRun)
		}
	}
	return nil
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}
