package cronos

import (
	"fmt"
	"math"
	"runtime"
	"sync"
)

// Config configures a solver run.
type Config struct {
	NX, NY, NZ int
	Boundary   Boundary
	// CFLNumber is the Courant number (0 selects the default 0.4).
	CFLNumber float64
	// Workers is the goroutine-pool width (0 selects GOMAXPROCS).
	Workers int
	// InitialDT bounds the first timestep before a CFL value exists.
	InitialDT float64
	// Limiter selects the MUSCL slope limiter (default minmod).
	Limiter Limiter
}

// Solver advances an MHD state following Algorithm 1 of the paper.
type Solver struct {
	Grid     *Grid
	cfg      Config
	Time     float64
	DT       float64
	StepsRun int
	// CFLMax is the most recent global CFL reduction result.
	CFLMax float64
	// FluxEvals counts HLL flux evaluations, for profile cross-checks.
	FluxEvals int64

	changes *Grid // dU/dt buffer
	stage   *Grid // RK scratch
	u0      *Grid // RK stage-0 snapshot
	lim     func(a, b float64) float64
}

// NewSolver builds a solver with an allocated grid; call an initializer from
// problems.go (or fill Grid manually) before Run.
func NewSolver(cfg Config) (*Solver, error) {
	g, err := NewGrid(cfg.NX, cfg.NY, cfg.NZ)
	if err != nil {
		return nil, err
	}
	if cfg.CFLNumber == 0 {
		cfg.CFLNumber = 0.4
	}
	if cfg.Workers <= 0 {
		cfg.Workers = runtime.GOMAXPROCS(0)
	}
	if cfg.InitialDT == 0 {
		cfg.InitialDT = 1e-4
	}
	return &Solver{
		Grid:    g,
		cfg:     cfg,
		DT:      cfg.InitialDT,
		changes: g.Clone(),
		stage:   g.Clone(),
		u0:      g.Clone(),
		lim:     cfg.Limiter.limiterFunc(),
	}, nil
}

// Workers returns the configured pool width.
func (s *Solver) Workers() int { return s.cfg.Workers }

// parallelFor splits [0,n) across the worker pool and waits for completion.
func (s *Solver) parallelFor(n int, body func(lo, hi int)) {
	w := s.cfg.Workers
	if w > n {
		w = n
	}
	if w <= 1 {
		body(0, n)
		return
	}
	var wg sync.WaitGroup
	chunk := (n + w - 1) / w
	for lo := 0; lo < n; lo += chunk {
		hi := lo + chunk
		if hi > n {
			hi = n
		}
		wg.Add(1)
		go func(lo, hi int) {
			defer wg.Done()
			body(lo, hi)
		}(lo, hi)
	}
	wg.Wait()
}

// computeChanges evaluates dU/dt into s.changes from the state in g and
// returns the global CFL value (max over cells of sum_d (|v_d|+c_f,d)/dx_d),
// reduced in parallel through a channel, per Algorithm 1 lines 8-9.
func (s *Solver) computeChanges(g *Grid) float64 {
	for v := 0; v < NVars; v++ {
		ch := s.changes.U[v]
		for i := range ch {
			ch[i] = 0
		}
	}

	nWorkers := s.cfg.Workers
	cflCh := make(chan float64, nWorkers)
	var fluxes int64
	var mu sync.Mutex

	// X and Y sweeps parallelize over z-planes; each plane owns its faces.
	s.parallelForCollect(g.NZ, cflCh, &fluxes, &mu, func(kLo, kHi int) (float64, int64) {
		return s.sweepXY(g, kLo, kHi)
	})
	cflXY := drainMax(cflCh, cap(cflCh))

	// Z sweep parallelizes over y-rows; faces along z stay row-local.
	cflCh2 := make(chan float64, nWorkers)
	s.parallelForCollect(g.NY, cflCh2, &fluxes, &mu, func(jLo, jHi int) (float64, int64) {
		return s.sweepZ(g, jLo, jHi)
	})
	// sweepZ contributes no CFL (the x-sweep already reduces the full 3-D
	// value), so the channel is drained purely to release its senders.
	drainMax(cflCh2, cap(cflCh2))

	s.FluxEvals += fluxes
	return cflXY
}

// parallelForCollect runs body over chunks of [0,n), sending each chunk's CFL
// contribution to cflCh and accumulating flux counts.
func (s *Solver) parallelForCollect(n int, cflCh chan float64, fluxes *int64, mu *sync.Mutex, body func(lo, hi int) (float64, int64)) {
	w := cap(cflCh)
	if w > n {
		w = n
	}
	if w <= 1 {
		c, fx := body(0, n)
		cflCh <- c
		mu.Lock()
		*fluxes += fx
		mu.Unlock()
		for i := 1; i < cap(cflCh); i++ {
			cflCh <- 0
		}
		return
	}
	var wg sync.WaitGroup
	chunk := (n + w - 1) / w
	sent := 0
	for lo := 0; lo < n; lo += chunk {
		hi := lo + chunk
		if hi > n {
			hi = n
		}
		wg.Add(1)
		sent++
		go func(lo, hi int) {
			defer wg.Done()
			c, fx := body(lo, hi)
			cflCh <- c
			mu.Lock()
			*fluxes += fx
			mu.Unlock()
		}(lo, hi)
	}
	wg.Wait()
	for i := sent; i < cap(cflCh); i++ {
		cflCh <- 0
	}
}

func drainMax(ch chan float64, n int) float64 {
	m := 0.0
	for i := 0; i < n; i++ {
		if v := <-ch; v > m {
			m = v
		}
	}
	return m
}

// sweepXY computes x- and y-direction flux differences (and the full 3-D CFL
// value) for z-planes [kLo,kHi).
func (s *Solver) sweepXY(g *Grid, kLo, kHi int) (cflMax float64, fluxes int64) {
	nx, ny := g.NX, g.NY
	// Pencil buffers: primitive states with two ghosts on each side.
	wbuf := make([]prim, maxInt(nx, ny)+2*Ghost)
	fl := make([][NVars]float64, maxInt(nx, ny)+1)

	for k := kLo; k < kHi; k++ {
		// --- X sweep (also accumulates the CFL reduction input) ---
		for j := 0; j < ny; j++ {
			for i := -Ghost; i < nx+Ghost; i++ {
				wbuf[i+Ghost] = s.cellPrim(g, i, j, k)
			}
			for i := 0; i < nx; i++ {
				w := wbuf[i+Ghost]
				c := (math.Abs(w.vx)+fastSpeed(w, 0))/g.DX +
					(math.Abs(w.vy)+fastSpeed(w, 1))/g.DY +
					(math.Abs(w.vz)+fastSpeed(w, 2))/g.DZ
				if c > cflMax {
					cflMax = c
				}
			}
			fluxes += s.pencilFlux(wbuf, fl, nx, 0)
			inv := 1 / g.DX
			for i := 0; i < nx; i++ {
				idx := g.Idx(i, j, k)
				for v := 0; v < NVars; v++ {
					s.changes.U[v][idx] -= (fl[i+1][v] - fl[i][v]) * inv
				}
			}
		}
		// --- Y sweep ---
		for i := 0; i < nx; i++ {
			for j := -Ghost; j < ny+Ghost; j++ {
				wbuf[j+Ghost] = s.cellPrim(g, i, j, k)
			}
			fluxes += s.pencilFlux(wbuf, fl, ny, 1)
			inv := 1 / g.DY
			for j := 0; j < ny; j++ {
				idx := g.Idx(i, j, k)
				for v := 0; v < NVars; v++ {
					s.changes.U[v][idx] -= (fl[j+1][v] - fl[j][v]) * inv
				}
			}
		}
	}
	return cflMax, fluxes
}

// sweepZ computes z-direction flux differences for y-rows [jLo,jHi).
func (s *Solver) sweepZ(g *Grid, jLo, jHi int) (cflMax float64, fluxes int64) {
	nx, nz := g.NX, g.NZ
	wbuf := make([]prim, nz+2*Ghost)
	fl := make([][NVars]float64, nz+1)
	for j := jLo; j < jHi; j++ {
		for i := 0; i < nx; i++ {
			for k := -Ghost; k < nz+Ghost; k++ {
				wbuf[k+Ghost] = s.cellPrim(g, i, j, k)
			}
			fluxes += s.pencilFlux(wbuf, fl, nz, 2)
			inv := 1 / g.DZ
			for k := 0; k < nz; k++ {
				idx := g.Idx(i, j, k)
				for v := 0; v < NVars; v++ {
					s.changes.U[v][idx] -= (fl[k+1][v] - fl[k][v]) * inv
				}
			}
		}
	}
	return 0, fluxes
}

// cellPrim loads the primitive state of cell (i,j,k) from g.
func (s *Solver) cellPrim(g *Grid, i, j, k int) prim {
	idx := g.Idx(i, j, k)
	return toPrim(cons{
		rho: g.U[IRho][idx],
		mx:  g.U[IMx][idx], my: g.U[IMy][idx], mz: g.U[IMz][idx],
		en: g.U[IEn][idx],
		bx: g.U[IBx][idx], by: g.U[IBy][idx], bz: g.U[IBz][idx],
	})
}

// pencilFlux fills fl[0..n] with MUSCL+HLL face fluxes along dir for a pencil
// of n interior cells whose primitive states (with two ghosts per side) are
// in w. Face f sits between cells f-1 and f. Returns the flux-evaluation
// count.
func (s *Solver) pencilFlux(w []prim, fl [][NVars]float64, n, dir int) int64 {
	for f := 0; f <= n; f++ {
		// Cells are offset by Ghost in w.
		lm1, l, r, rp1 := w[f], w[f+1], w[f+2], w[f+3] // f-2, f-1, f, f+1
		left := reconstruct(lm1, l, r, +1, s.lim)
		right := reconstruct(l, r, rp1, -1, s.lim)
		fl[f] = hll(left, right, dir)
	}
	return int64(n + 1)
}

// reconstruct extrapolates the primitive state of the middle cell to its
// face (side=+1 right face, side=-1 left face) with limited slopes.
func reconstruct(lo, mid, hi prim, side float64, lim func(a, b float64) float64) prim {
	h := 0.5 * side
	w := prim{
		rho: mid.rho + h*lim(mid.rho-lo.rho, hi.rho-mid.rho),
		vx:  mid.vx + h*lim(mid.vx-lo.vx, hi.vx-mid.vx),
		vy:  mid.vy + h*lim(mid.vy-lo.vy, hi.vy-mid.vy),
		vz:  mid.vz + h*lim(mid.vz-lo.vz, hi.vz-mid.vz),
		p:   mid.p + h*lim(mid.p-lo.p, hi.p-mid.p),
		bx:  mid.bx + h*lim(mid.bx-lo.bx, hi.bx-mid.bx),
		by:  mid.by + h*lim(mid.by-lo.by, hi.by-mid.by),
		bz:  mid.bz + h*lim(mid.bz-lo.bz, hi.bz-mid.bz),
	}
	if w.rho < floorRho {
		w.rho = floorRho
	}
	if w.p < floorP {
		w.p = floorP
	}
	return w
}

// integrateTime applies one SSP-RK3 substep, per Algorithm 1 line 10: the
// grid is combined with the stage-0 snapshot and dt·L(u) with the classic
// Shu-Osher coefficients.
func (s *Solver) integrateTime(substep int) {
	var a0, a1, b float64
	switch substep {
	case 0:
		a0, a1, b = 1, 0, 1
	case 1:
		a0, a1, b = 0.75, 0.25, 0.25
	default:
		a0, a1, b = 1.0/3.0, 2.0/3.0, 2.0/3.0
	}
	g := s.Grid
	dt := s.DT
	n := len(g.U[0])
	s.parallelFor(n, func(lo, hi int) {
		for v := 0; v < NVars; v++ {
			u, u0, ch := g.U[v], s.u0.U[v], s.changes.U[v]
			for i := lo; i < hi; i++ {
				u[i] = a0*u0[i] + a1*u[i] + b*dt*ch[i]
			}
		}
	})
}

// Step advances one full timestep (three substeps, CFL reduction, boundary
// refresh and timestep adjustment), following Algorithm 1 lines 4-14.
func (s *Solver) Step() {
	s.u0.CopyFrom(s.Grid)
	var cfl float64
	for substep := 0; substep < 3; substep++ {
		c := s.computeChanges(s.Grid)
		if c > cfl {
			cfl = c
		}
		s.integrateTime(substep)
		s.Grid.ApplyBoundary(s.cfg.Boundary)
	}
	s.CFLMax = cfl
	s.Time += s.DT
	s.StepsRun++
	s.adjustTimestepDelta(cfl)
}

// adjustTimestepDelta sets the next dt from the CFL reduction, limiting
// growth to 10% per step as Cronos does for stability.
func (s *Solver) adjustTimestepDelta(cfl float64) {
	if cfl <= 0 {
		return
	}
	want := s.cfg.CFLNumber / cfl
	if want > 1.1*s.DT && s.StepsRun > 1 {
		want = 1.1 * s.DT
	}
	s.DT = want
}

// Run advances until endTime is reached or maxSteps steps have been taken
// (maxSteps <= 0 means no step limit).
func (s *Solver) Run(endTime float64, maxSteps int) error {
	if s.Grid == nil {
		return fmt.Errorf("cronos: solver has no grid")
	}
	s.Grid.ApplyBoundary(s.cfg.Boundary)
	for s.Time < endTime {
		if maxSteps > 0 && s.StepsRun >= maxSteps {
			break
		}
		if s.Time+s.DT > endTime {
			s.DT = endTime - s.Time
		}
		s.Step()
		if math.IsNaN(s.CFLMax) || math.IsInf(s.CFLMax, 0) {
			return fmt.Errorf("cronos: solver diverged at t=%g (step %d)", s.Time, s.StepsRun)
		}
	}
	return nil
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}
