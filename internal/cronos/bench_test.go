package cronos

import "testing"

// Step-benchmark grid for the MHD solver hot path. Two problem sizes bracket
// the cache behaviour of the 13-point stencil:
//
//   - small  (32×32×32):  one z-plane of SoA state fits comfortably on chip,
//     so the sweep is compute-bound;
//   - medium (64×64×64):  a z-plane spills the last-level cache on small
//     parts, which is where pencil tiling earns its keep.
//
// Each size runs serial (Workers=1, the per-core engine) and parallel
// (Workers=0 → GOMAXPROCS, the slab fan-out). scripts/bench.sh freezes the
// pre-tiling numbers of this grid as the legacy baseline in BENCH_cronos.json.
func benchSolverStep(b *testing.B, nx, ny, nz, workers int) {
	b.Helper()
	s, err := NewSolver(Config{NX: nx, NY: ny, NZ: nz, Boundary: Periodic, Workers: workers})
	if err != nil {
		b.Fatal(err)
	}
	InitBlastWave(s.Grid, 0.1, 10, 0.2)
	s.Grid.ApplyBoundary(Periodic)
	s.Step() // warm up workspaces so steady-state allocations are measured
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.Step()
	}
	cellsPerStep := float64(s.Grid.Cells() * 3) // 3 RK substeps
	b.ReportMetric(cellsPerStep*float64(b.N)/b.Elapsed().Seconds(), "cell-updates/s")
}

func BenchmarkSolverStepSmallSerial(b *testing.B)    { benchSolverStep(b, 32, 32, 32, 1) }
func BenchmarkSolverStepSmallParallel(b *testing.B)  { benchSolverStep(b, 32, 32, 32, 0) }
func BenchmarkSolverStepMediumSerial(b *testing.B)   { benchSolverStep(b, 64, 64, 64, 1) }
func BenchmarkSolverStepMediumParallel(b *testing.B) { benchSolverStep(b, 64, 64, 64, 0) }

func BenchmarkWorkloadProfiles(b *testing.B) {
	w, err := NewWorkload(160, 64, 64, 20)
	if err != nil {
		b.Fatal(err)
	}
	for i := 0; i < b.N; i++ {
		_ = w.Profiles()
	}
}
