package cronos

import "testing"

func benchSolver(b *testing.B, nx, ny, nz, workers int) {
	b.Helper()
	s, err := NewSolver(Config{NX: nx, NY: ny, NZ: nz, Boundary: Periodic, Workers: workers})
	if err != nil {
		b.Fatal(err)
	}
	InitBlastWave(s.Grid, 0.1, 10, 0.2)
	s.Grid.ApplyBoundary(Periodic)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.Step()
	}
	cellsPerStep := float64(s.Grid.Cells() * 3) // 3 RK substeps
	b.ReportMetric(cellsPerStep*float64(b.N)/b.Elapsed().Seconds(), "cell-updates/s")
}

func BenchmarkSolverStep32Serial(b *testing.B)   { benchSolver(b, 32, 32, 32, 1) }
func BenchmarkSolverStep32Parallel(b *testing.B) { benchSolver(b, 32, 32, 32, 0) }
func BenchmarkSolverStep64Parallel(b *testing.B) { benchSolver(b, 64, 32, 32, 0) }

func BenchmarkWorkloadProfiles(b *testing.B) {
	w, err := NewWorkload(160, 64, 64, 20)
	if err != nil {
		b.Fatal(err)
	}
	for i := 0; i < b.N; i++ {
		_ = w.Profiles()
	}
}
