package cronos

import (
	"math"
	"testing"
	"testing/quick"

	"dsenergy/internal/xrand"
)

func almostEqual(a, b, tol float64) bool {
	d := math.Abs(a - b)
	if d <= tol {
		return true
	}
	m := math.Max(math.Abs(a), math.Abs(b))
	return d <= tol*m
}

// randomPhysicalPrim draws a physically admissible primitive state.
func randomPhysicalPrim(rng *xrand.Rand) prim {
	return prim{
		rho: 0.1 + 10*rng.Float64(),
		vx:  2 * (rng.Float64() - 0.5),
		vy:  2 * (rng.Float64() - 0.5),
		vz:  2 * (rng.Float64() - 0.5),
		p:   0.01 + 5*rng.Float64(),
		bx:  2 * (rng.Float64() - 0.5),
		by:  2 * (rng.Float64() - 0.5),
		bz:  2 * (rng.Float64() - 0.5),
	}
}

func TestPrimConsRoundTrip(t *testing.T) {
	rng := xrand.New(1)
	for n := 0; n < 1000; n++ {
		w := randomPhysicalPrim(rng)
		got := toPrim(toCons(&w))
		for name, pair := range map[string][2]float64{
			"rho": {w.rho, got.rho}, "vx": {w.vx, got.vx}, "vy": {w.vy, got.vy},
			"vz": {w.vz, got.vz}, "p": {w.p, got.p},
			"bx": {w.bx, got.bx}, "by": {w.by, got.by}, "bz": {w.bz, got.bz},
		} {
			if !almostEqual(pair[0], pair[1], 1e-12) {
				t.Fatalf("round trip %s: want %g got %g (state %+v)", name, pair[0], pair[1], w)
			}
		}
	}
}

func TestToPrimAppliesFloors(t *testing.T) {
	// Negative density and internal energy must be floored, not propagated.
	w := toPrim(cons{rho: -1, en: -5})
	if w.rho < floorRho {
		t.Errorf("density floor not applied: %g", w.rho)
	}
	if w.p < floorP {
		t.Errorf("pressure floor not applied: %g", w.p)
	}
}

func TestFastSpeedExceedsSoundAndAlfven(t *testing.T) {
	rng := xrand.New(2)
	for n := 0; n < 500; n++ {
		w := randomPhysicalPrim(rng)
		a := math.Sqrt(Gamma * w.p / w.rho)
		for dir := 0; dir < 3; dir++ {
			cf := fastSpeed(&w, dir)
			if cf+1e-12 < a {
				t.Fatalf("fast speed %g below sound speed %g (dir %d, %+v)", cf, a, dir, w)
			}
			bd := [3]float64{w.bx, w.by, w.bz}[dir]
			ca := math.Abs(bd) / math.Sqrt(w.rho)
			if cf+1e-9 < ca {
				t.Fatalf("fast speed %g below Alfvén speed %g (dir %d)", cf, ca, dir)
			}
		}
	}
}

func TestFastSpeedHydroLimit(t *testing.T) {
	// With no magnetic field the fast speed must reduce to the sound speed.
	w := prim{rho: 2, p: 3}
	want := math.Sqrt(Gamma * w.p / w.rho)
	for dir := 0; dir < 3; dir++ {
		if got := fastSpeed(&w, dir); !almostEqual(got, want, 1e-12) {
			t.Errorf("dir %d: fast speed %g, want sound speed %g", dir, got, want)
		}
	}
}

func TestHLLConsistency(t *testing.T) {
	// The HLL flux of identical left/right states must equal the physical
	// flux — the consistency condition of any approximate Riemann solver.
	rng := xrand.New(3)
	for n := 0; n < 500; n++ {
		w := randomPhysicalPrim(rng)
		for dir := 0; dir < 3; dir++ {
			got := hll(&w, &w, dir)
			want := physFlux(w, dir)
			for v := 0; v < NVars; v++ {
				if !almostEqual(got[v], want[v], 1e-10) {
					t.Fatalf("hll(w,w) dir %d var %d: got %g want %g", dir, v, got[v], want[v])
				}
			}
		}
	}
}

func TestHLLSupersonicUpwinding(t *testing.T) {
	// A strongly right-moving flow must take the left flux exactly.
	l := prim{rho: 1, vx: 50, p: 1, bx: 0.1}
	r := prim{rho: 2, vx: 50, p: 2, bx: 0.1}
	got := hll(&l, &r, 0)
	want := physFlux(l, 0)
	for v := 0; v < NVars; v++ {
		if !almostEqual(got[v], want[v], 1e-12) {
			t.Fatalf("supersonic upwinding var %d: got %g want %g", v, got[v], want[v])
		}
	}
}

func TestMinmodProperties(t *testing.T) {
	f := func(a, b float64) bool {
		if math.IsNaN(a) || math.IsNaN(b) || math.IsInf(a, 0) || math.IsInf(b, 0) {
			return true
		}
		m := minmod(a, b)
		// Zero on sign disagreement.
		if a*b <= 0 && m != 0 {
			return false
		}
		// Magnitude bounded by both arguments.
		if math.Abs(m) > math.Abs(a)+1e-300 || math.Abs(m) > math.Abs(b)+1e-300 {
			return false
		}
		// Symmetry.
		return minmod(a, b) == minmod(b, a)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Error(err)
	}
}

func TestReconstructPreservesConstantState(t *testing.T) {
	w := prim{rho: 1.5, vx: 0.3, vy: -0.2, vz: 0.1, p: 0.8, bx: 0.4, by: -0.3, bz: 0.2}
	for _, side := range []float64{+1, -1} {
		got := reconstruct(w, w, w, side, minmod)
		if got != w {
			t.Errorf("constant-state reconstruction changed the state: %+v -> %+v", w, got)
		}
	}
}

func TestPhysFluxMassComponent(t *testing.T) {
	// The mass flux along dir is rho·v_dir by definition.
	rng := xrand.New(4)
	for n := 0; n < 200; n++ {
		w := randomPhysicalPrim(rng)
		for dir := 0; dir < 3; dir++ {
			f := physFlux(w, dir)
			want := w.rho * velAlong(w, dir)
			if !almostEqual(f[IRho], want, 1e-12) {
				t.Fatalf("mass flux dir %d: got %g want %g", dir, f[IRho], want)
			}
			if f[IBx+dir] != 0 {
				t.Fatalf("normal field flux dir %d nonzero: %g", dir, f[IBx+dir])
			}
		}
	}
}

func TestFastSpeed3MatchesFastSpeed(t *testing.T) {
	// fastSpeed3 shares the sound/Alfvén subterms across directions; each
	// component must still be bit-identical to the per-direction fastSpeed.
	rng := xrand.New(5)
	for n := 0; n < 500; n++ {
		w := randomPhysicalPrim(rng)
		cfx, cfy, cfz := fastSpeed3(&w)
		for dir, got := range [3]float64{cfx, cfy, cfz} {
			if want := fastSpeed(&w, dir); got != want {
				t.Fatalf("fastSpeed3 dir %d: got %x want %x", dir, got, want)
			}
		}
	}
}

func TestFaceStatesMatchReconstruct(t *testing.T) {
	// The slope-shared face-state pair must reproduce the reference per-face
	// reconstruction bit-for-bit, for both limiters.
	rng := xrand.New(6)
	for _, lim := range []func(a, b float64) float64{minmod, vanLeer} {
		for n := 0; n < 500; n++ {
			lo := randomPhysicalPrim(rng)
			mid := randomPhysicalPrim(rng)
			hi := randomPhysicalPrim(rng)
			var plus, minus prim
			faceStates(&lo, &mid, &hi, &plus, &minus, lim)
			if want := reconstruct(lo, mid, hi, +1, lim); plus != want {
				t.Fatalf("plus state differs from reconstruct(+1): %+v vs %+v", plus, want)
			}
			if want := reconstruct(lo, mid, hi, -1, lim); minus != want {
				t.Fatalf("minus state differs from reconstruct(-1): %+v vs %+v", minus, want)
			}
			var mp, mm prim
			faceStatesMinmod(&lo, &mid, &hi, &mp, &mm)
			if want := reconstruct(lo, mid, hi, +1, minmod); mp != want {
				t.Fatalf("minmod plus state differs from reconstruct(+1)")
			}
			if want := reconstruct(lo, mid, hi, -1, minmod); mm != want {
				t.Fatalf("minmod minus state differs from reconstruct(-1)")
			}
		}
	}
}
