package cronos

import "math"

// This file holds the cache-blocked sweep engine behind computeChanges.
//
// The sweeps consume a flat primitive-variable mirror of the grid (s.prims,
// one prim struct per ghosted cell) that is refreshed once per substep, so
// each cell pays for exactly one toPrim conversion instead of one per sweep
// direction. The X sweep reads its pencils directly out of the mirror — they
// are contiguous there, so there is no gather at all; the Y and Z sweeps
// gather TileWidth strided pencils at a time into a contiguous workspace tile
// (turning the column/stack walks into streaming plane reads), evaluate each
// pencil's fluxes in place, and scatter the flux differences back
// plane-by-plane. Reconstruction is slope-shared: each cell's limited slopes
// are computed once and reused by both adjacent faces, halving the limiter
// work of the per-face reference. Every restructuring preserves the float
// operation order of the reference solver, so results are byte-identical for
// every tile width and worker count (locked by the golden tests in
// solver_golden_test.go).

// refreshPrims converts the full ghosted grid to primitive variables once per
// substep. Each cell is an independent pure conversion, so the plane-slab
// parallelization cannot affect the stored values.
func (s *Solver) refreshPrims(g *Grid) {
	plane := g.sy * g.sx
	pr := s.prims
	s.parallelFor(g.sz, func(lo, hi int) {
		for idx := lo * plane; idx < hi*plane; idx++ {
			pr[idx] = toPrim(cons{
				rho: g.U[IRho][idx],
				mx:  g.U[IMx][idx], my: g.U[IMy][idx], mz: g.U[IMz][idx],
				en: g.U[IEn][idx],
				bx: g.U[IBx][idx], by: g.U[IBy][idx], bz: g.U[IBz][idx],
			})
		}
	})
}

// sweepWorkspace holds one worker's reusable tile and face-state buffers,
// sized once in NewSolver so the steady-state step makes no allocations.
type sweepWorkspace struct {
	flux     [][NVars]float64 // single-pencil face fluxes (maxDim+1)
	tile     []prim           // TileWidth gathered pencils, pencil-major
	tileFlux [][NVars]float64 // TileWidth pencils' face fluxes, pencil-major
	plus     []prim           // right-face reconstructed states, per cell
	minus    []prim           // left-face reconstructed states, per cell
}

func newSweepWorkspace(maxDim, tileWidth int) *sweepWorkspace {
	return &sweepWorkspace{
		flux:     make([][NVars]float64, maxDim+1),
		tile:     make([]prim, tileWidth*(maxDim+2*Ghost)),
		tileFlux: make([][NVars]float64, tileWidth*(maxDim+1)),
		plus:     make([]prim, maxDim+2*Ghost),
		minus:    make([]prim, maxDim+2*Ghost),
	}
}

// slabPartial is one slab's contribution to the computeChanges reduction,
// written to the slab's own slot in s.parts and absorbed in slab order.
type slabPartial struct {
	cfl    float64
	fluxes int64
}

// sweepXY computes x- and y-direction flux differences (and the full 3-D CFL
// value) for z-planes [kLo,kHi) using worker-local workspace ws.
func (s *Solver) sweepXY(g *Grid, ws *sweepWorkspace, kLo, kHi int) (cflMax float64, fluxes int64) {
	nx, ny := g.NX, g.NY
	pr := s.prims
	tw := s.cfg.TileWidth
	phx := nx + 2*Ghost // ghosted x-pencil length
	phy := ny + 2*Ghost // ghosted y-pencil length
	fhy := ny + 1       // y-pencil face count

	for k := kLo; k < kHi; k++ {
		// --- X sweep (also accumulates the CFL reduction input). Pencils
		// along x are contiguous in the primitive mirror, so they are read
		// in place with no gather. ---
		for j := 0; j < ny; j++ {
			base := g.Idx(-Ghost, j, k)
			wb := pr[base : base+phx]
			for i := 0; i < nx; i++ {
				w := &wb[i+Ghost]
				cfx, cfy, cfz := fastSpeed3(w)
				c := (math.Abs(w.vx)+cfx)/g.DX +
					(math.Abs(w.vy)+cfy)/g.DY +
					(math.Abs(w.vz)+cfz)/g.DZ
				if c > cflMax {
					cflMax = c
				}
			}
			fluxes += s.pencilFlux(ws, wb, ws.flux, nx, 0)
			inv := 1 / g.DX
			row := g.Idx(0, j, k)
			fl := ws.flux
			for v := 0; v < NVars; v++ {
				ch := s.changes.U[v]
				for i := 0; i < nx; i++ {
					// First write of this substep: `0 - x` (not `-x`)
					// reproduces the reference's zero-then-subtract bits,
					// including the sign of zero.
					ch[row+i] = 0 - (fl[i+1][v]-fl[i][v])*inv
				}
			}
		}

		// --- Y sweep, tiled: gather up to tw strided column-pencils into a
		// contiguous tile plane-by-plane, flux each pencil, scatter back
		// plane-by-plane. ---
		for i0 := 0; i0 < nx; i0 += tw {
			ib := tw
			if i0+ib > nx {
				ib = nx - i0
			}
			tile := ws.tile
			for jj := 0; jj < phy; jj++ {
				src := g.Idx(i0, jj-Ghost, k)
				for t := 0; t < ib; t++ {
					tile[t*phy+jj] = pr[src+t]
				}
			}
			for t := 0; t < ib; t++ {
				fluxes += s.pencilFlux(ws, tile[t*phy:t*phy+phy], ws.tileFlux[t*fhy:t*fhy+fhy], ny, 1)
			}
			inv := 1 / g.DY
			tfl := ws.tileFlux
			for v := 0; v < NVars; v++ {
				ch := s.changes.U[v]
				for jj := 0; jj < ny; jj++ {
					dst := g.Idx(i0, jj, k)
					for t := 0; t < ib; t++ {
						ch[dst+t] -= (tfl[t*fhy+jj+1][v] - tfl[t*fhy+jj][v]) * inv
					}
				}
			}
		}
	}
	return cflMax, fluxes
}

// sweepZ computes z-direction flux differences for y-rows [jLo,jHi) using
// worker-local workspace ws. It contributes no CFL value — the x sweep
// already reduces the full three-direction sum.
func (s *Solver) sweepZ(g *Grid, ws *sweepWorkspace, jLo, jHi int) (fluxes int64) {
	nx, nz := g.NX, g.NZ
	pr := s.prims
	tw := s.cfg.TileWidth
	phz := nz + 2*Ghost
	fhz := nz + 1

	for j := jLo; j < jHi; j++ {
		for i0 := 0; i0 < nx; i0 += tw {
			ib := tw
			if i0+ib > nx {
				ib = nx - i0
			}
			tile := ws.tile
			for kk := 0; kk < phz; kk++ {
				src := g.Idx(i0, j, kk-Ghost)
				for t := 0; t < ib; t++ {
					tile[t*phz+kk] = pr[src+t]
				}
			}
			for t := 0; t < ib; t++ {
				fluxes += s.pencilFlux(ws, tile[t*phz:t*phz+phz], ws.tileFlux[t*fhz:t*fhz+fhz], nz, 2)
			}
			inv := 1 / g.DZ
			tfl := ws.tileFlux
			for v := 0; v < NVars; v++ {
				ch := s.changes.U[v]
				for kk := 0; kk < nz; kk++ {
					dst := g.Idx(i0, j, kk)
					for t := 0; t < ib; t++ {
						ch[dst+t] -= (tfl[t*fhz+kk+1][v] - tfl[t*fhz+kk][v]) * inv
					}
				}
			}
		}
	}
	return fluxes
}

// pencilFlux fills fl[0..n] with MUSCL+HLL face fluxes along dir for a pencil
// of n interior cells whose primitive states (with two ghosts per side) are
// in w. Face f sits between cells f-1 and f. Returns the flux-evaluation
// count.
//
// Reconstruction is slope-shared: the limited slopes of cell c serve both its
// left-face state (minus) and right-face state (plus), so each slope is
// computed once instead of twice as in the per-face reference — with the
// same operands in the same order, the states are bit-identical. The default
// minmod limiter additionally gets a direct-call specialization so the
// limiter inlines into the slope loop instead of going through the
// func-value indirection eight times per cell.
func (s *Solver) pencilFlux(ws *sweepWorkspace, w []prim, fl [][NVars]float64, n, dir int) int64 {
	plus, minus := ws.plus, ws.minus
	if s.cfg.Limiter == LimiterMinmod {
		for c := 1; c <= n+2; c++ {
			faceStatesMinmod(&w[c-1], &w[c], &w[c+1], &plus[c], &minus[c])
		}
	} else {
		lim := s.lim
		for c := 1; c <= n+2; c++ {
			faceStates(&w[c-1], &w[c], &w[c+1], &plus[c], &minus[c], lim)
		}
	}
	// The left state of face f is the right-face extrapolation of cell f+1;
	// the right state is the left-face extrapolation of cell f+2 (cells are
	// offset by Ghost in w).
	for f := 0; f <= n; f++ {
		hllInto(&plus[f+1], &minus[f+2], dir, &fl[f])
	}
	return int64(n + 1)
}

// faceStates extrapolates cell mid to its right face (*plus, side=+1 in the
// reference reconstruct) and left face (*minus, side=-1) with limited slopes
// computed once and shared by both faces.
func faceStates(lo, mid, hi, plus, minus *prim, lim func(a, b float64) float64) {
	srho := lim(mid.rho-lo.rho, hi.rho-mid.rho)
	svx := lim(mid.vx-lo.vx, hi.vx-mid.vx)
	svy := lim(mid.vy-lo.vy, hi.vy-mid.vy)
	svz := lim(mid.vz-lo.vz, hi.vz-mid.vz)
	sp := lim(mid.p-lo.p, hi.p-mid.p)
	sbx := lim(mid.bx-lo.bx, hi.bx-mid.bx)
	sby := lim(mid.by-lo.by, hi.by-mid.by)
	sbz := lim(mid.bz-lo.bz, hi.bz-mid.bz)
	setFaceStates(mid, plus, minus, srho, svx, svy, svz, sp, sbx, sby, sbz)
}

// faceStatesMinmod is faceStates with the minmod limiter called directly;
// minmod is pure, so the values are identical to the generic path.
func faceStatesMinmod(lo, mid, hi, plus, minus *prim) {
	srho := minmod(mid.rho-lo.rho, hi.rho-mid.rho)
	svx := minmod(mid.vx-lo.vx, hi.vx-mid.vx)
	svy := minmod(mid.vy-lo.vy, hi.vy-mid.vy)
	svz := minmod(mid.vz-lo.vz, hi.vz-mid.vz)
	sp := minmod(mid.p-lo.p, hi.p-mid.p)
	sbx := minmod(mid.bx-lo.bx, hi.bx-mid.bx)
	sby := minmod(mid.by-lo.by, hi.by-mid.by)
	sbz := minmod(mid.bz-lo.bz, hi.bz-mid.bz)
	setFaceStates(mid, plus, minus, srho, svx, svy, svz, sp, sbx, sby, sbz)
}

func setFaceStates(mid, plus, minus *prim, srho, svx, svy, svz, sp, sbx, sby, sbz float64) {
	// mid + 0.5*s and mid + (-0.5)*s match the reference's mid + h*lim(...)
	// with h = ±0.5 bit-for-bit (negation commutes exactly with both the
	// multiply and the add).
	*plus = prim{
		rho: mid.rho + 0.5*srho,
		vx:  mid.vx + 0.5*svx,
		vy:  mid.vy + 0.5*svy,
		vz:  mid.vz + 0.5*svz,
		p:   mid.p + 0.5*sp,
		bx:  mid.bx + 0.5*sbx,
		by:  mid.by + 0.5*sby,
		bz:  mid.bz + 0.5*sbz,
	}
	if plus.rho < floorRho {
		plus.rho = floorRho
	}
	if plus.p < floorP {
		plus.p = floorP
	}
	*minus = prim{
		rho: mid.rho - 0.5*srho,
		vx:  mid.vx - 0.5*svx,
		vy:  mid.vy - 0.5*svy,
		vz:  mid.vz - 0.5*svz,
		p:   mid.p - 0.5*sp,
		bx:  mid.bx - 0.5*sbx,
		by:  mid.by - 0.5*sby,
		bz:  mid.bz - 0.5*sbz,
	}
	if minus.rho < floorRho {
		minus.rho = floorRho
	}
	if minus.p < floorP {
		minus.p = floorP
	}
}

// reconstruct extrapolates the primitive state of the middle cell to its
// face (side=+1 right face, side=-1 left face) with limited slopes. It is
// the reference form of the slope-shared faceStates pair, kept for the
// physics tests that pin the reconstruction behaviour.
func reconstruct(lo, mid, hi prim, side float64, lim func(a, b float64) float64) prim {
	h := 0.5 * side
	w := prim{
		rho: mid.rho + h*lim(mid.rho-lo.rho, hi.rho-mid.rho),
		vx:  mid.vx + h*lim(mid.vx-lo.vx, hi.vx-mid.vx),
		vy:  mid.vy + h*lim(mid.vy-lo.vy, hi.vy-mid.vy),
		vz:  mid.vz + h*lim(mid.vz-lo.vz, hi.vz-mid.vz),
		p:   mid.p + h*lim(mid.p-lo.p, hi.p-mid.p),
		bx:  mid.bx + h*lim(mid.bx-lo.bx, hi.bx-mid.bx),
		by:  mid.by + h*lim(mid.by-lo.by, hi.by-mid.by),
		bz:  mid.bz + h*lim(mid.bz-lo.bz, hi.bz-mid.bz),
	}
	if w.rho < floorRho {
		w.rho = floorRho
	}
	if w.p < floorP {
		w.p = floorP
	}
	return w
}
