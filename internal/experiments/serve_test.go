package experiments

import (
	"bytes"
	"strings"
	"testing"
)

// serveTestConfig is a reduced serving campaign: quick-fidelity models and a
// 10k-request budget per shard, enough to cross both reload instants.
func serveTestConfig() Config {
	cfg := QuickConfig()
	cfg.ServeRequests = 10000
	return cfg
}

func TestRenderServeChecksPass(t *testing.T) {
	var buf bytes.Buffer
	failed, err := serveTestConfig().RenderServe(&buf)
	if err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if failed > 0 {
		t.Fatalf("%d serving checks failed:\n%s", failed, out)
	}
	if !strings.Contains(out, "CHECK ok") || strings.Contains(out, "CHECK FAIL") {
		t.Fatalf("unexpected check rendering:\n%s", out)
	}
	// The campaign must exercise both reload paths and both loop modes.
	for _, want := range []string{
		"reloads: published=1 rejected=1",
		"version v100-a/ligen v1",
		"version v100-a/ligen v2",
		"version mi100-a/cronos v1",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("report missing %q:\n%s", want, out)
		}
	}
}

func TestServeCampaignJobsInvariance(t *testing.T) {
	render := func(jobs int) string {
		cfg := serveTestConfig()
		cfg.ServeRequests = 4000
		cfg.Jobs = jobs
		var buf bytes.Buffer
		if _, err := cfg.RenderServe(&buf); err != nil {
			t.Fatal(err)
		}
		return buf.String()
	}
	serial := render(1)
	for _, jobs := range []int{0, 5} {
		if got := render(jobs); got != serial {
			t.Fatalf("Jobs=%d render diverged from serial:\n--- serial ---\n%s--- got ---\n%s",
				jobs, serial, got)
		}
	}
}
