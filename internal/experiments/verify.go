package experiments

import (
	"fmt"
	"io"
)

// ShapeCheck is one verifiable claim of the reproduction: a qualitative
// property of the paper's results that must hold in the simulated regeneration
// (who wins, roughly by what factor, where crossovers fall).
type ShapeCheck struct {
	ID      string
	Claim   string
	Pass    bool
	Details string
}

// VerifyShapes regenerates the minimum set of experiments needed to check
// every headline claim and returns one ShapeCheck per claim. It is the
// machine-checkable counterpart of EXPERIMENTS.md.
func (c Config) VerifyShapes() ([]ShapeCheck, error) {
	var checks []ShapeCheck
	add := func(id, claim string, pass bool, format string, args ...any) {
		checks = append(checks, ShapeCheck{
			ID: id, Claim: claim, Pass: pass, Details: fmt.Sprintf(format, args...),
		})
	}

	// --- Figure 1: application characters -------------------------------
	fig1, err := c.Fig1()
	if err != nil {
		return nil, err
	}
	ligenTop := lastPoint(fig1.Series[0])
	cronosTop := lastPoint(fig1.Series[1])
	add("fig1-ligen-compute", "LiGen gains speedup from up-clocking",
		ligenTop.Speedup > 1.10, "speedup at f_max = %.3f", ligenTop.Speedup)
	add("fig1-cronos-memory", "Cronos gains no speedup but pays energy at f_max",
		cronosTop.Speedup < 1.06 && cronosTop.NormEnergy > 1.15,
		"speedup %.3f, energy %.3f at f_max", cronosTop.Speedup, cronosTop.NormEnergy)

	// --- Figure 2: LiGen input dependence --------------------------------
	fig2, err := c.Fig2()
	if err != nil {
		return nil, err
	}
	smallMin := minEnergy(fig2.Series[0])
	largeMin := minEnergy(fig2.Series[1])
	add("fig2-input-flip", "down-clock savings exist for large LiGen inputs but not small",
		smallMin >= 0.97 && largeMin < 0.97,
		"min normalized energy: small %.3f, large %.3f", smallMin, largeMin)

	// --- Figure 4: Cronos grid scaling -----------------------------------
	fig4, err := c.Fig4()
	if err != nil {
		return nil, err
	}
	add("fig4-grid-savings", "larger Cronos grids save more energy from down-clocking",
		minEnergy(fig4.Series[1]) < minEnergy(fig4.Series[0]),
		"min normalized energy: small %.3f, large %.3f",
		minEnergy(fig4.Series[0]), minEnergy(fig4.Series[1]))

	// --- Figure 5: AMD auto baseline --------------------------------------
	fig5, err := c.Fig5()
	if err != nil {
		return nil, err
	}
	amdBest := 0.0
	for _, s := range fig5.Series {
		for _, p := range s.Points {
			if p.Speedup > amdBest {
				amdBest = p.Speedup
			}
		}
	}
	add("fig5-amd-auto", "no fixed clock beats the AMD auto level by more than ~10%",
		amdBest <= 1.10, "best fixed-clock speedup over auto = %.3f", amdBest)

	// --- Figures 6/8: monotone input scaling -----------------------------
	fig6, err := c.Fig6()
	if err != nil {
		return nil, err
	}
	mono := true
	var prev float64
	for _, s := range fig6.Series[4:] { // 89-atom panel, fragments ascending
		e := baselineEnergy(s)
		if e <= prev {
			mono = false
		}
		prev = e
	}
	add("fig6-fragment-scaling", "LiGen energy grows with the fragment count",
		mono, "89-atom panel baseline energies ascending: %v", mono)

	// --- Figure 13: the headline accuracy claim --------------------------
	fig13, err := c.Fig13()
	if err != nil {
		return nil, err
	}
	sp, en := fig13.MeanRatios()
	add("fig13-headline", "domain-specific error is much lower than general-purpose (paper: >=10x)",
		sp >= 5 && en >= 2, "aggregate GP/DS ratios: speedup %.1fx, energy %.1fx", sp, en)
	worstDS := 0.0
	for _, b := range append(append([]AccuracyBar(nil), fig13.Cronos...), fig13.LiGen...) {
		if b.DSSpeedup > worstDS {
			worstDS = b.DSSpeedup
		}
		if b.DSNormEnergy > worstDS {
			worstDS = b.DSNormEnergy
		}
	}
	// The interpolation floor depends on how densely the input grid is
	// sampled; sparse quick/test configs hold out relatively more extreme
	// inputs, so they get a looser bound.
	dsBound := 0.05
	if len(c.LiGenInputs) < 24 {
		dsBound = 0.10
	}
	add("fig13-ds-accuracy", "domain-specific MAPE stays in the few-percent regime (paper: 0.4-2.2%)",
		worstDS <= dsBound, "worst per-input DS MAPE = %.4f (bound %.2f)", worstDS, dsBound)

	// --- Figure 14: Pareto prediction -------------------------------------
	fig14, err := c.Fig14()
	if err != nil {
		return nil, err
	}
	ligenPanel := fig14[0]
	// Allow one-point slack plus 10% on coarse sweeps: front sizes are
	// integer-quantized, and the paper's comparison is about the trend.
	slack := 1 + len(ligenPanel.GP.Freqs)/10
	add("fig14-ds-explores", "the DS model predicts at least as many LiGen Pareto points as GP",
		len(ligenPanel.DS.Freqs) >= len(ligenPanel.GP.Freqs)-slack,
		"DS %d frequencies vs GP %d (slack %d)",
		len(ligenPanel.DS.Freqs), len(ligenPanel.GP.Freqs), slack)
	cronosPanel := fig14[1]
	add("fig14-ds-closer", "the DS model's achieved points track the Cronos front at least as closely",
		cronosPanel.DS.FrontDistance <= cronosPanel.GP.FrontDistance*1.5+1e-9,
		"front distance: DS %.4f vs GP %.4f",
		cronosPanel.DS.FrontDistance, cronosPanel.GP.FrontDistance)

	// --- §5.2.1: the forest wins ------------------------------------------
	cmp, err := c.CompareRegressors()
	if err != nil {
		return nil, err
	}
	forestWins := true
	details := ""
	for _, app := range cmp {
		var forest, best float64 = -1, 1e18
		for _, s := range app.Scores {
			m := (s.MeanSpeedupMAPE + s.MeanNormEnergyMAPE) / 2
			if s.Spec.Algorithm == "forest" {
				forest = m
			}
			if m < best {
				best = m
			}
		}
		if forest > best*1.10+1e-12 {
			forestWins = false
		}
		details += fmt.Sprintf("%s: forest %.4f best %.4f; ", app.App, forest, best)
	}
	add("regressors-forest", "the random forest achieves the best (or tied) accuracy",
		forestWins, "%s", details)

	// --- §7 future work -----------------------------------------------------
	pk, err := c.FutureWorkPerKernel()
	if err != nil {
		return nil, err
	}
	add("perkernel-saving", "per-kernel scaling saves energy at negligible slowdown",
		pk.Outcome.EnergySaving() >= 0.05 && pk.Outcome.Speedup() >= 0.95,
		"saving %.1f%%, speedup %.3f", pk.Outcome.EnergySaving()*100, pk.Outcome.Speedup())

	return checks, nil
}

// RenderShapeChecks prints the verification table and returns the number of
// failed checks.
func RenderShapeChecks(w io.Writer, checks []ShapeCheck) int {
	failed := 0
	fmt.Fprintln(w, "== reproduction shape checks ==")
	for _, c := range checks {
		status := "PASS"
		if !c.Pass {
			status = "FAIL"
			failed++
		}
		fmt.Fprintf(w, "[%s] %-22s %s\n        %s\n", status, c.ID, c.Claim, c.Details)
	}
	fmt.Fprintf(w, "%d/%d checks passed\n", len(checks)-failed, len(checks))
	return failed
}

func lastPoint(s Series) CharPoint { return s.Points[len(s.Points)-1] }

func minEnergy(s Series) float64 {
	m := s.Points[0].NormEnergy
	for _, p := range s.Points {
		if p.NormEnergy < m {
			m = p.NormEnergy
		}
	}
	return m
}

func baselineEnergy(s Series) float64 {
	for _, p := range s.Points {
		if p.Speedup == 1 && p.NormEnergy == 1 {
			return p.EnergyJ
		}
	}
	return s.Points[0].EnergyJ
}
