package experiments

import (
	"context"
	"fmt"

	"dsenergy/internal/core"
	"dsenergy/internal/cronos"
	"dsenergy/internal/gpmodel"
	"dsenergy/internal/kernels"
	"dsenergy/internal/ligen"
	"dsenergy/internal/ml"
	"dsenergy/internal/parallel"
	"dsenergy/internal/pareto"
	"dsenergy/internal/synergy"
)

// ForestSpec is the paper's selected model: a random forest with default
// hyper-parameters (§5.2.1), sized by the config and attached to the
// config's observer for training counters and phase timers.
func (c Config) ForestSpec() ml.Spec {
	return ml.Spec{
		Algorithm: "forest",
		Params:    map[string]float64{"n_estimators": float64(c.Trees)},
		Obs:       c.Obs,
	}
}

// forestSpec is the internal alias used by the generators.
func (c Config) forestSpec() ml.Spec { return c.ForestSpec() }

// BuildCronosDataset measures the Cronos grid ladder on q (training phase of
// Figure 11) and returns the dataset plus the measured workloads.
func (c Config) BuildCronosDataset(q *synergy.Queue) (*core.Dataset, []core.FeaturedWorkload, error) {
	var wls []core.FeaturedWorkload
	for _, g := range PaperGrids() {
		w, err := c.cronosWorkload(g)
		if err != nil {
			return nil, nil, err
		}
		wls = append(wls, core.FeaturedWorkload{
			Workload: w,
			Features: []float64{float64(g[0]), float64(g[1]), float64(g[2])},
		})
	}
	ds, err := core.BuildDataset(q, core.CronosSchema(), wls, core.BuildConfig{
		Freqs: c.sweepFreqs(q.Spec()), Reps: c.Reps, Workers: c.Jobs,
	})
	return ds, wls, err
}

// BuildLiGenDataset measures the LiGen input grid on q.
func (c Config) BuildLiGenDataset(q *synergy.Queue) (*core.Dataset, []core.FeaturedWorkload, error) {
	var wls []core.FeaturedWorkload
	for _, in := range c.LiGenInputs {
		w, err := ligen.NewWorkload(in)
		if err != nil {
			return nil, nil, err
		}
		wls = append(wls, core.FeaturedWorkload{
			Workload: w,
			Features: []float64{float64(in.Ligands), float64(in.Fragments), float64(in.Atoms)},
		})
	}
	ds, err := core.BuildDataset(q, core.LiGenSchema(), wls, core.BuildConfig{
		Freqs: c.sweepFreqs(q.Spec()), Reps: c.Reps, Workers: c.Jobs,
	})
	return ds, wls, err
}

// TrainGP trains the general-purpose baseline on q's micro-benchmark sweep.
func (c Config) TrainGP(q *synergy.Queue) (*gpmodel.Model, error) {
	return gpmodel.Train(q, gpmodel.TrainConfig{
		Freqs: c.sweepFreqs(q.Spec()),
		Reps:  c.Reps,
		Spec:  c.forestSpec(),
		Seed:  c.Seed + 77,
	})
}

// gpCurveMAPE scores the general-purpose model against the dataset truth for
// one input, given the application's static mix.
func gpCurveMAPE(ds *core.Dataset, gp *gpmodel.Model, mix kernels.InstructionMix, input []float64) (core.InputAccuracy, error) {
	truth, err := ds.TrueCurves(input)
	if err != nil {
		return core.InputAccuracy{}, err
	}
	freqs := make([]int, len(truth))
	for i, t := range truth {
		freqs[i] = t.FreqMHz
	}
	curves := gp.PredictCurves(mix, freqs)
	conv := make([]core.CurvePoint, len(curves))
	for i, p := range curves {
		conv[i] = core.CurvePoint{FreqMHz: p.FreqMHz, Speedup: p.Speedup, NormEnergy: p.NormEnergy}
	}
	return core.CurveMAPE(ds, input, conv)
}

// AccuracyBar is one input's bar pair of Figure 13: domain-specific vs
// general-purpose MAPE.
type AccuracyBar struct {
	Label                      string
	DSSpeedup, GPSpeedup       float64
	DSNormEnergy, GPNormEnergy float64
}

// Fig13Result is the full accuracy comparison of Figure 13.
type Fig13Result struct {
	Cronos []AccuracyBar // panels a (speedup) and b (energy), one bar per grid
	LiGen  []AccuracyBar // panels c and d, one bar per displayed input
}

// MeanRatios returns the average GP/DS error ratios (speedup, energy) across
// all bars — the paper's "ten times lower error" claim.
func (r Fig13Result) MeanRatios() (speedupRatio, energyRatio float64) {
	var ds, gs, de, ge float64
	all := append(append([]AccuracyBar(nil), r.Cronos...), r.LiGen...)
	for _, b := range all {
		ds += b.DSSpeedup
		gs += b.GPSpeedup
		de += b.DSNormEnergy
		ge += b.GPNormEnergy
	}
	return gs / ds, ge / de
}

// Fig13 regenerates Figure 13: leave-one-input-out accuracy of the
// domain-specific models against the general-purpose model, for both
// applications on the V100.
func (c Config) Fig13() (Fig13Result, error) {
	p, err := c.platform()
	if err != nil {
		return Fig13Result{}, err
	}
	q := p.Queues()[0] // V100, as in §5.1

	gp, err := c.TrainGP(q)
	if err != nil {
		return Fig13Result{}, err
	}

	var out Fig13Result

	// --- Cronos (panels a, b) ---
	cds, cwls, err := c.BuildCronosDataset(q)
	if err != nil {
		return Fig13Result{}, err
	}
	cAccs, err := core.LeaveOneInputOutParallel(cds, c.forestSpec(), c.Seed+1, c.Jobs)
	if err != nil {
		return Fig13Result{}, err
	}
	for i, a := range cAccs {
		w := cwls[i].Workload.(cronos.Workload)
		mix := gpmodel.AppStaticFeatures(w.Profiles())
		g, err := gpCurveMAPE(cds, gp, mix, a.Input)
		if err != nil {
			return Fig13Result{}, err
		}
		out.Cronos = append(out.Cronos, AccuracyBar{
			Label:     a.Label,
			DSSpeedup: a.SpeedupMAPE, GPSpeedup: g.SpeedupMAPE,
			DSNormEnergy: a.NormEnergyMAPE, GPNormEnergy: g.NormEnergyMAPE,
		})
	}

	// --- LiGen (panels c, d) ---
	lds, _, err := c.BuildLiGenDataset(q)
	if err != nil {
		return Fig13Result{}, err
	}
	display := c.fig13Display(lds)
	// Each displayed input retrains its own held-out model — independent
	// work, fanned out on the config's worker pool.
	out.LiGen, err = parallel.Map(context.Background(), len(display), c.Jobs, func(_ context.Context, i int) (AccuracyBar, error) {
		in := display[i]
		features := []float64{float64(in.Ligands), float64(in.Fragments), float64(in.Atoms)}
		a, err := core.EvalHeldOut(lds, c.forestSpec(), c.Seed+2, features)
		if err != nil {
			return AccuracyBar{}, err
		}
		w, err := ligen.NewWorkload(in)
		if err != nil {
			return AccuracyBar{}, err
		}
		mix := gpmodel.AppStaticFeatures(w.Profiles())
		g, err := gpCurveMAPE(lds, gp, mix, features)
		if err != nil {
			return AccuracyBar{}, err
		}
		return AccuracyBar{
			// The paper labels LiGen inputs atoms x fragments x ligands.
			Label:     fmt.Sprintf("%dx%dx%d", in.Atoms, in.Fragments, in.Ligands),
			DSSpeedup: a.SpeedupMAPE, GPSpeedup: g.SpeedupMAPE,
			DSNormEnergy: a.NormEnergyMAPE, GPNormEnergy: g.NormEnergyMAPE,
		}, nil
	})
	if err != nil {
		return Fig13Result{}, err
	}
	return out, nil
}

// fig13Display returns the LiGen inputs shown in Figure 13c/d that exist in
// the dataset (all of them under the paper config; a subset under quick
// configs).
func (c Config) fig13Display(ds *core.Dataset) []ligen.Input {
	have := map[string]bool{}
	for _, in := range ds.Inputs() {
		have[core.FeatureKey(in)] = true
	}
	var out []ligen.Input
	for _, in := range Fig13LiGenDisplay() {
		key := core.FeatureKey([]float64{float64(in.Ligands), float64(in.Fragments), float64(in.Atoms)})
		if have[key] {
			out = append(out, in)
		}
	}
	if len(out) == 0 {
		// Quick configs without the display subset: take up to 12 inputs.
		for i, in := range c.LiGenInputs {
			if i >= 12 {
				break
			}
			out = append(out, in)
		}
	}
	return out
}

// Fig14Panel is one panel of Figure 14: the true Pareto set of one input and
// the sets predicted by both models, with the paper's two quality metrics
// (exact frequency matches and closeness of the achieved points to the true
// front).
type Fig14Panel struct {
	App        string
	InputLabel string
	TrueFront  []pareto.Point
	DS, GP     PredictedSet
}

// PredictedSet is one model's predicted Pareto set evaluated against truth.
type PredictedSet struct {
	Freqs []int
	// Achieved holds the measured (speedup, normalized energy) of the
	// predicted frequencies — what you would really get by running them.
	Achieved []pareto.Point
	// ExactMatches counts predicted frequencies on the true Pareto set.
	ExactMatches int
	// FrontDistance is the mean distance of the achieved points to the
	// true front.
	FrontDistance float64
}

// Fig14 regenerates Figure 14: predicted Pareto sets for LiGen (10000x89x20)
// and Cronos (160x64x64) on the V100, with the domain-specific model trained
// leave-one-input-out so the evaluated input is unseen.
func (c Config) Fig14() ([]Fig14Panel, error) {
	p, err := c.platform()
	if err != nil {
		return nil, err
	}
	q := p.Queues()[0]
	gp, err := c.TrainGP(q)
	if err != nil {
		return nil, err
	}

	var panels []Fig14Panel

	// --- LiGen panel ---
	lds, _, err := c.BuildLiGenDataset(q)
	if err != nil {
		return nil, err
	}
	lin := ligen.Input{Ligands: 10000, Atoms: 89, Fragments: 20}
	lw, err := ligen.NewWorkload(lin)
	if err != nil {
		return nil, err
	}
	lp, err := c.paretoPanel(lds, gp, "LiGen", fmt.Sprintf("%dx%dx%d", lin.Atoms, lin.Fragments, lin.Ligands),
		[]float64{float64(lin.Ligands), float64(lin.Fragments), float64(lin.Atoms)},
		gpmodel.AppStaticFeatures(lw.Profiles()))
	if err != nil {
		return nil, err
	}
	panels = append(panels, lp)

	// --- Cronos panel ---
	cds, _, err := c.BuildCronosDataset(q)
	if err != nil {
		return nil, err
	}
	cw, err := c.cronosWorkload([3]int{160, 64, 64})
	if err != nil {
		return nil, err
	}
	cp, err := c.paretoPanel(cds, gp, "Cronos", "160x64x64",
		[]float64{160, 64, 64}, gpmodel.AppStaticFeatures(cw.Profiles()))
	if err != nil {
		return nil, err
	}
	panels = append(panels, cp)
	return panels, nil
}

// paretoPanel evaluates both models' predicted Pareto sets for one input.
func (c Config) paretoPanel(ds *core.Dataset, gp *gpmodel.Model, app, label string,
	features []float64, mix kernels.InstructionMix) (Fig14Panel, error) {

	truth, err := ds.TrueCurves(features)
	if err != nil {
		return Fig14Panel{}, err
	}
	trueFront, err := ds.TruePareto(features)
	if err != nil {
		return Fig14Panel{}, err
	}
	freqs := make([]int, len(truth))
	byFreq := map[int]core.CurvePoint{}
	for i, t := range truth {
		freqs[i] = t.FreqMHz
		byFreq[t.FreqMHz] = t
	}

	// Domain-specific model trained without the evaluated input.
	dsModel, err := core.TrainHeldOut(ds, c.forestSpec(), c.Seed+3, features)
	if err != nil {
		return Fig14Panel{}, err
	}
	dsFront := dsModel.PredictPareto(features, freqs)
	gpFront := gp.PredictPareto(mix, freqs)

	eval := func(front []pareto.Point) PredictedSet {
		set := PredictedSet{Freqs: pareto.Frequencies(front)}
		for _, f := range set.Freqs {
			t := byFreq[f]
			set.Achieved = append(set.Achieved, pareto.Point{
				FreqMHz: f, Speedup: t.Speedup, NormEnergy: t.NormEnergy,
			})
		}
		set.ExactMatches = pareto.ExactMatches(set.Freqs, pareto.Frequencies(trueFront))
		set.FrontDistance = pareto.MeanFrontDistance(set.Achieved, trueFront)
		return set
	}
	return Fig14Panel{
		App: app, InputLabel: label,
		TrueFront: trueFront,
		DS:        eval(dsFront),
		GP:        eval(gpFront),
	}, nil
}

// AlgorithmComparison reproduces §5.2.1's regressor selection on both
// applications' datasets.
type AlgorithmComparison struct {
	App    string
	Scores []core.AlgorithmScore
}

// CompareRegressors evaluates Linear, Lasso, SVR-RBF and Random Forest with
// the leave-one-input-out protocol on both applications.
//
// The kernel-based SVR is quadratic in the sample count, so the comparison
// caps its dataset (sweep stride >= 4, at most 24 LiGen inputs) — the
// algorithm ranking is insensitive to the sweep density, and the paper's
// protocol allows training on "a part of the frequency configurations".
func (c Config) CompareRegressors() ([]AlgorithmComparison, error) {
	if c.FreqStride < 4 {
		c.FreqStride = 4
	}
	if len(c.LiGenInputs) > 24 {
		thinned := make([]ligen.Input, 0, 24)
		step := len(c.LiGenInputs) / 24
		for i := 0; i < len(c.LiGenInputs) && len(thinned) < 24; i += step {
			thinned = append(thinned, c.LiGenInputs[i])
		}
		c.LiGenInputs = thinned
	}
	p, err := c.platform()
	if err != nil {
		return nil, err
	}
	q := p.Queues()[0]
	specs := []ml.Spec{
		{Algorithm: "linear"},
		{Algorithm: "lasso", Params: map[string]float64{"alpha": 0.001}},
		{Algorithm: "svr", Params: map[string]float64{"C": 10, "epsilon": 0.005}},
		c.forestSpec(),
	}

	var out []AlgorithmComparison
	cds, _, err := c.BuildCronosDataset(q)
	if err != nil {
		return nil, err
	}
	cs, err := core.CompareAlgorithmsParallel(cds, specs, c.Seed+5, c.Jobs)
	if err != nil {
		return nil, err
	}
	out = append(out, AlgorithmComparison{App: "Cronos", Scores: cs})

	lds, _, err := c.BuildLiGenDataset(q)
	if err != nil {
		return nil, err
	}
	ls, err := core.CompareAlgorithmsParallel(lds, specs, c.Seed+6, c.Jobs)
	if err != nil {
		return nil, err
	}
	out = append(out, AlgorithmComparison{App: "LiGen", Scores: ls})
	return out, nil
}

// dedupFloats returns the distinct values in order of first appearance.
func dedupFloats(vals ...float64) []float64 {
	seen := map[float64]bool{}
	var out []float64
	for _, v := range vals {
		if !seen[v] {
			seen[v] = true
			out = append(out, v)
		}
	}
	return out
}

// GridSearchResult is the random-forest hyper-parameter surface of §5.2.1.
type GridSearchResult struct {
	App    string
	Target string // "speedup" or "norm_energy"
	Points []ml.GridPoint
}

// GridSearchRF runs the paper's grid search (max_depth, n_estimators,
// max_features) on the Cronos dataset for both prediction targets.
func (c Config) GridSearchRF() ([]GridSearchResult, error) {
	p, err := c.platform()
	if err != nil {
		return nil, err
	}
	q := p.Queues()[0]
	ds, _, err := c.BuildCronosDataset(q)
	if err != nil {
		return nil, err
	}
	X, ySp, yNe, err := core.NormalizedXY(ds)
	if err != nil {
		return nil, err
	}
	grid := map[string][]float64{
		"max_depth":    {0, 6, 12},
		"n_estimators": dedupFloats(25, float64(c.Trees)),
		"max_features": {0, 2},
	}
	base := ml.Spec{Algorithm: "forest", Obs: c.Obs}
	var out []GridSearchResult
	for _, tgt := range []struct {
		name string
		y    []float64
	}{{"speedup", ySp}, {"norm_energy", yNe}} {
		pts, err := ml.GridSearchParallel(base, grid, X, tgt.y, 4, c.Seed+9, c.Jobs)
		if err != nil {
			return nil, err
		}
		out = append(out, GridSearchResult{App: "Cronos", Target: tgt.name, Points: pts})
	}
	return out, nil
}
