package experiments

import (
	"context"
	"fmt"

	"dsenergy/internal/cronos"
	"dsenergy/internal/ligen"
	"dsenergy/internal/parallel"
	"dsenergy/internal/pareto"
	"dsenergy/internal/synergy"
)

// CharPoint is one frequency configuration's outcome in a characterization
// sweep: raw and baseline-normalized.
type CharPoint struct {
	FreqMHz    int
	TimeS      float64
	EnergyJ    float64
	Speedup    float64
	NormEnergy float64
	OnPareto   bool
}

// Series is one labelled sweep (one workload on one device).
type Series struct {
	Label  string
	Device string
	Points []CharPoint
	// ParetoFreqs lists the Pareto-optimal frequencies of the sweep.
	ParetoFreqs []int
}

// Figure is a regenerated characterization figure.
type Figure struct {
	ID     string
	Title  string
	Series []Series
	Notes  []string
}

// seriesJob names one characterization series to measure: a workload on a
// device index, with its display label.
type seriesJob struct {
	devIdx int
	w      synergy.Workload
	label  string
}

// sweepSeriesSet measures a figure's series on the config's worker pool.
// Every series runs on its own identically seeded platform, so each depends
// only on (config, job) — never on the other series or on scheduling — and
// within a series the frequency sweep itself fans out through ParallelSweep.
// Series are normalized to their own baseline measurement, so the private
// platforms change nothing physical; they are what makes the fan-out
// deterministic. Observer forks follow the same discipline: one child per
// series, pre-split in job order, absorbed after every series succeeded.
func (c Config) sweepSeriesSet(jobs []seriesJob) ([]Series, error) {
	forks := c.Obs.ForkN(len(jobs))
	out, err := parallel.Map(context.Background(), len(jobs), c.Jobs, func(_ context.Context, i int) (Series, error) {
		sc := c
		sc.Obs = forks[i]
		p, err := sc.platform()
		if err != nil {
			return Series{}, err
		}
		return sc.sweepSeries(p.Queues()[jobs[i].devIdx], jobs[i].w, jobs[i].label)
	})
	if err != nil {
		return nil, err
	}
	c.Obs.AbsorbAll(forks)
	return out, nil
}

// sweepSeries measures w on q across the config's sweep and builds the
// normalized series with its Pareto front.
func (c Config) sweepSeries(q *synergy.Queue, w synergy.Workload, label string) (Series, error) {
	freqs := c.sweepFreqs(q.Spec())
	ms, err := synergy.ParallelSweep(q, w, freqs, c.Reps, c.Jobs)
	if err != nil {
		return Series{}, err
	}
	base := q.BaselineFreqMHz()
	var ref *synergy.Measurement
	for i := range ms {
		if ms[i].FreqMHz == base {
			ref = &ms[i]
			break
		}
	}
	if ref == nil {
		return Series{}, fmt.Errorf("experiments: baseline %d MHz missing from sweep", base)
	}
	s := Series{Label: label, Device: q.Spec().Name}
	pts := make([]pareto.Point, 0, len(ms))
	for _, m := range ms {
		p := CharPoint{
			FreqMHz: m.FreqMHz, TimeS: m.TimeS, EnergyJ: m.EnergyJ,
			Speedup:    ref.TimeS / m.TimeS,
			NormEnergy: m.EnergyJ / ref.EnergyJ,
		}
		s.Points = append(s.Points, p)
		pts = append(pts, pareto.Point{FreqMHz: m.FreqMHz, Speedup: p.Speedup, NormEnergy: p.NormEnergy})
	}
	front := pareto.Front(pts)
	onFront := map[int]bool{}
	for _, p := range front {
		onFront[p.FreqMHz] = true
		s.ParetoFreqs = append(s.ParetoFreqs, p.FreqMHz)
	}
	for i := range s.Points {
		s.Points[i].OnPareto = onFront[s.Points[i].FreqMHz]
	}
	return s, nil
}

// cronosWorkload builds the Cronos workload for a grid under this config.
func (c Config) cronosWorkload(g [3]int) (cronos.Workload, error) {
	return cronos.NewWorkload(g[0], g[1], g[2], c.CronosSteps)
}

// Fig1 regenerates Figure 1: LiGen and Cronos multi-objective
// characterization on the V100 with Pareto fronts.
func (c Config) Fig1() (Figure, error) {
	lw, err := ligen.NewWorkload(ligen.Input{Ligands: 4096, Atoms: 63, Fragments: 8})
	if err != nil {
		return Figure{}, err
	}
	cw, err := c.cronosWorkload([3]int{80, 32, 32})
	if err != nil {
		return Figure{}, err
	}
	series, err := c.sweepSeriesSet([]seriesJob{
		{devIdx: 0, w: lw, label: "LiGen"}, // V100
		{devIdx: 0, w: cw, label: "Cronos"},
	})
	if err != nil {
		return Figure{}, err
	}
	return Figure{
		ID:     "fig1",
		Title:  "LiGen and Cronos multi-objective characterization (V100)",
		Series: series,
	}, nil
}

// Fig2 regenerates Figure 2: LiGen small vs large input on the V100.
func (c Config) Fig2() (Figure, error) {
	return c.ligenPanels("fig2",
		"LiGen characterization with small (2x89x8) and large (10000x89x20) inputs (V100)",
		0, []ligen.Input{
			{Ligands: 2, Atoms: 89, Fragments: 8},
			{Ligands: 10000, Atoms: 89, Fragments: 20},
		}, []string{"small (2 lig x 89 at x 8 fr)", "large (10000 lig x 89 at x 20 fr)"})
}

// Fig3 regenerates Figure 3: Cronos small vs large input on the V100.
func (c Config) Fig3() (Figure, error) {
	return c.cronosPanels("fig3",
		"Cronos characterization with input sizes 20x8x8 and 160x64x64 (V100)",
		0, [][3]int{{20, 8, 8}, {160, 64, 64}})
}

// Fig4 regenerates Figure 4: Cronos 10x4x4 vs 160x64x64 on the V100.
func (c Config) Fig4() (Figure, error) {
	return c.cronosPanels("fig4",
		"Cronos characterization with small (10x4x4) and large (160x64x64) grids (V100)",
		0, [][3]int{{10, 4, 4}, {160, 64, 64}})
}

// Fig5 regenerates Figure 5: the same grids on the AMD MI100 (auto
// performance level baseline).
func (c Config) Fig5() (Figure, error) {
	return c.cronosPanels("fig5",
		"Cronos characterization with small (10x4x4) and large (160x64x64) grids (MI100)",
		1, [][3]int{{10, 4, 4}, {160, 64, 64}})
}

func (c Config) cronosPanels(id, title string, devIdx int, grids [][3]int) (Figure, error) {
	jobs := make([]seriesJob, 0, len(grids))
	for _, g := range grids {
		w, err := c.cronosWorkload(g)
		if err != nil {
			return Figure{}, err
		}
		jobs = append(jobs, seriesJob{devIdx: devIdx, w: w, label: fmt.Sprintf("%dx%dx%d", g[0], g[1], g[2])})
	}
	series, err := c.sweepSeriesSet(jobs)
	if err != nil {
		return Figure{}, err
	}
	return Figure{ID: id, Title: title, Series: series}, nil
}

func (c Config) ligenPanels(id, title string, devIdx int, inputs []ligen.Input, labels []string) (Figure, error) {
	jobs := make([]seriesJob, 0, len(inputs))
	for i, in := range inputs {
		w, err := ligen.NewWorkload(in)
		if err != nil {
			return Figure{}, err
		}
		label := in.String()
		if labels != nil {
			label = labels[i]
		}
		jobs = append(jobs, seriesJob{devIdx: devIdx, w: w, label: label})
	}
	series, err := c.sweepSeriesSet(jobs)
	if err != nil {
		return Figure{}, err
	}
	return Figure{ID: id, Title: title, Series: series}, nil
}

// Fig6 regenerates Figure 6: LiGen raw energy/time on the V100, 100000
// ligands, panels for 31 and 89 atoms, one series per fragment count.
func (c Config) Fig6() (Figure, error) { return c.ligenScaling("fig6", 0, true) }

// Fig7 regenerates Figure 7: the fragment-scaling panels on the MI100.
func (c Config) Fig7() (Figure, error) { return c.ligenScaling("fig7", 1, true) }

// Fig8 regenerates Figure 8: LiGen on the V100 with fixed fragments (4, 20)
// scaling atoms (31, 63, 74, 89).
func (c Config) Fig8() (Figure, error) { return c.ligenScaling("fig8", 0, false) }

// Fig9 regenerates Figure 9: the atom-scaling panels on the MI100.
func (c Config) Fig9() (Figure, error) { return c.ligenScaling("fig9", 1, false) }

// ligenScaling builds the raw energy-vs-time scaling figures. byFragment
// selects Figure 6/7 (fixed atoms, series per fragment count); otherwise
// Figure 8/9 (fixed fragments, series per atom count).
func (c Config) ligenScaling(id string, devIdx int, byFragment bool) (Figure, error) {
	p, err := c.platform()
	if err != nil {
		return Figure{}, err
	}
	devName := p.Queues()[devIdx].Spec().Name
	const ligands = 100000
	fig := Figure{ID: id, Notes: []string{"raw joules vs seconds (not normalized), 100000 ligands"}}
	var jobs []seriesJob
	addJob := func(atoms, frags int, label string) error {
		w, err := ligen.NewWorkload(ligen.Input{Ligands: ligands, Atoms: atoms, Fragments: frags})
		if err != nil {
			return err
		}
		jobs = append(jobs, seriesJob{devIdx: devIdx, w: w, label: label})
		return nil
	}
	if byFragment {
		fig.Title = fmt.Sprintf("LiGen energy/time scaling fragments on %s", devName)
		for _, atoms := range []int{31, 89} {
			for _, frags := range []int{4, 8, 16, 20} {
				if err := addJob(atoms, frags, fmt.Sprintf("%d atoms, %d frags", atoms, frags)); err != nil {
					return Figure{}, err
				}
			}
		}
	} else {
		fig.Title = fmt.Sprintf("LiGen energy/time scaling atoms on %s", devName)
		for _, frags := range []int{4, 20} {
			for _, atoms := range []int{31, 63, 74, 89} {
				if err := addJob(atoms, frags, fmt.Sprintf("%d frags, %d atoms", frags, atoms)); err != nil {
					return Figure{}, err
				}
			}
		}
	}
	fig.Series, err = c.sweepSeriesSet(jobs)
	if err != nil {
		return Figure{}, err
	}
	return fig, nil
}

// Fig10 regenerates Figure 10: LiGen small (256x31x4) vs large (10000x89x20)
// inputs on both devices, with Pareto fronts.
func (c Config) Fig10() (Figure, error) {
	inputs := []ligen.Input{
		{Ligands: 256, Atoms: 31, Fragments: 4},
		{Ligands: 10000, Atoms: 89, Fragments: 20},
	}
	var jobs []seriesJob
	for devIdx := 0; devIdx < 2; devIdx++ {
		for _, in := range inputs {
			w, err := ligen.NewWorkload(in)
			if err != nil {
				return Figure{}, err
			}
			jobs = append(jobs, seriesJob{devIdx: devIdx, w: w, label: in.String()})
		}
	}
	series, err := c.sweepSeriesSet(jobs)
	if err != nil {
		return Figure{}, err
	}
	return Figure{
		ID:     "fig10",
		Title:  "LiGen characterization, small and large inputs, V100 and MI100",
		Series: series,
	}, nil
}
