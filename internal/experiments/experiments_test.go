package experiments

import (
	"bytes"
	"strings"
	"testing"

	"dsenergy/internal/ligen"
	"dsenergy/internal/pareto"
)

// testConfig is even lighter than QuickConfig, for unit-test latency.
func testConfig() Config {
	c := QuickConfig()
	c.FreqStride = 12
	c.Trees = 15
	c.CronosSteps = 4
	c.LiGenInputs = []ligen.Input{
		{Ligands: 2, Atoms: 31, Fragments: 4},
		{Ligands: 256, Atoms: 31, Fragments: 4},
		{Ligands: 10000, Atoms: 31, Fragments: 4},
		{Ligands: 256, Atoms: 89, Fragments: 4},
		{Ligands: 256, Atoms: 31, Fragments: 20},
		{Ligands: 10000, Atoms: 89, Fragments: 20},
	}
	return c
}

func seriesByLabel(t *testing.T, f Figure, label string) Series {
	t.Helper()
	for _, s := range f.Series {
		if s.Label == label {
			return s
		}
	}
	t.Fatalf("figure %s has no series %q", f.ID, label)
	return Series{}
}

func baselinePoint(t *testing.T, s Series) CharPoint {
	t.Helper()
	for _, p := range s.Points {
		if p.Speedup == 1 && p.NormEnergy == 1 {
			return p
		}
	}
	// The baseline is the point with speedup exactly 1 by construction.
	for _, p := range s.Points {
		if p.Speedup == 1 {
			return p
		}
	}
	t.Fatal("series has no baseline point")
	return CharPoint{}
}

func TestFig1Structure(t *testing.T) {
	fig, err := testConfig().Fig1()
	if err != nil {
		t.Fatal(err)
	}
	if len(fig.Series) != 2 {
		t.Fatalf("fig1 wants LiGen+Cronos series, got %d", len(fig.Series))
	}
	for _, s := range fig.Series {
		if len(s.Points) == 0 || len(s.ParetoFreqs) == 0 {
			t.Errorf("series %s empty", s.Label)
		}
		bp := baselinePoint(t, s)
		if bp.FreqMHz == 0 {
			t.Errorf("series %s lacks baseline", s.Label)
		}
	}
	// LiGen is compute-leaning: its top-frequency point beats baseline.
	ls := seriesByLabel(t, fig, "LiGen")
	top := ls.Points[len(ls.Points)-1]
	if top.Speedup <= 1.05 {
		t.Errorf("fig1 LiGen speedup at fmax %.3f, want > 1.05", top.Speedup)
	}
	// Cronos is memory-bound: no meaningful speedup from up-clocking.
	cs := seriesByLabel(t, fig, "Cronos")
	ctop := cs.Points[len(cs.Points)-1]
	if ctop.Speedup > 1.06 {
		t.Errorf("fig1 Cronos speedup at fmax %.3f, want ~1", ctop.Speedup)
	}
	if ctop.NormEnergy < 1.1 {
		t.Errorf("fig1 Cronos energy at fmax %.3f, want clearly above 1", ctop.NormEnergy)
	}
}

func TestFig2SmallVsLarge(t *testing.T) {
	fig, err := testConfig().Fig2()
	if err != nil {
		t.Fatal(err)
	}
	small, large := fig.Series[0], fig.Series[1]
	// Small input: minimum normalized energy near or above 1 (no savings
	// from down-clocking, Figure 2a).
	minE := func(s Series) float64 {
		m := s.Points[0].NormEnergy
		for _, p := range s.Points {
			if p.NormEnergy < m {
				m = p.NormEnergy
			}
		}
		return m
	}
	if m := minE(small); m < 0.97 {
		t.Errorf("fig2 small input min normalized energy %.3f, want >= 0.97", m)
	}
	// Large input: down-clocking saves energy (Figure 2b).
	if m := minE(large); m > 0.97 {
		t.Errorf("fig2 large input min normalized energy %.3f, want < 0.97", m)
	}
}

func TestFig4CronosSavingsGrowWithGrid(t *testing.T) {
	fig, err := testConfig().Fig4()
	if err != nil {
		t.Fatal(err)
	}
	minE := func(s Series) float64 {
		m := s.Points[0].NormEnergy
		for _, p := range s.Points {
			if p.NormEnergy < m {
				m = p.NormEnergy
			}
		}
		return m
	}
	small := minE(fig.Series[0])
	large := minE(fig.Series[1])
	if large >= small {
		t.Errorf("fig4: large grid should save more energy (small min %.3f, large min %.3f)", small, large)
	}
}

func TestFig5AMDAutoNearBest(t *testing.T) {
	fig, err := testConfig().Fig5()
	if err != nil {
		t.Fatal(err)
	}
	for _, s := range fig.Series {
		if s.Device != "AMD MI100" {
			t.Fatalf("fig5 on %s, want MI100", s.Device)
		}
		var best float64
		for _, p := range s.Points {
			if p.Speedup > best {
				best = p.Speedup
			}
		}
		if best > 1.10 {
			t.Errorf("fig5 %s: a fixed clock beats AMD auto by %.1f%%, want <= 10%%", s.Label, (best-1)*100)
		}
	}
}

func TestFig6MonotoneInFragments(t *testing.T) {
	fig, err := testConfig().Fig6()
	if err != nil {
		t.Fatal(err)
	}
	if len(fig.Series) != 8 {
		t.Fatalf("fig6 wants 2 atoms x 4 fragment series, got %d", len(fig.Series))
	}
	// Within the 89-atom panel, energy at the baseline grows with fragments.
	var prev float64
	for _, s := range fig.Series[4:] { // 89-atom series, frags 4,8,16,20
		bp := baselinePoint(t, s)
		if bp.EnergyJ <= prev {
			t.Errorf("fig6 series %s energy %.1f J not increasing in fragments", s.Label, bp.EnergyJ)
		}
		prev = bp.EnergyJ
	}
}

func TestFig8MonotoneInAtoms(t *testing.T) {
	fig, err := testConfig().Fig8()
	if err != nil {
		t.Fatal(err)
	}
	var prev float64
	for _, s := range fig.Series[:4] { // 4-fragment panel, atoms 31..89
		bp := baselinePoint(t, s)
		if bp.TimeS <= prev {
			t.Errorf("fig8 series %s time %.3f s not increasing in atoms", s.Label, bp.TimeS)
		}
		prev = bp.TimeS
	}
}

func TestFig10FourPanels(t *testing.T) {
	fig, err := testConfig().Fig10()
	if err != nil {
		t.Fatal(err)
	}
	if len(fig.Series) != 4 {
		t.Fatalf("fig10 wants 4 panels, got %d", len(fig.Series))
	}
	devices := map[string]int{}
	for _, s := range fig.Series {
		devices[s.Device]++
	}
	if devices["NVIDIA V100"] != 2 || devices["AMD MI100"] != 2 {
		t.Errorf("fig10 device split %v", devices)
	}
}

func TestFig13DomainSpecificWins(t *testing.T) {
	r, err := testConfig().Fig13()
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Cronos) != 5 {
		t.Fatalf("fig13 wants 5 Cronos bars, got %d", len(r.Cronos))
	}
	if len(r.LiGen) == 0 {
		t.Fatal("fig13 has no LiGen bars")
	}
	for _, b := range r.Cronos {
		if b.DSSpeedup >= b.GPSpeedup {
			t.Errorf("Cronos %s: DS speedup MAPE %.4f not below GP %.4f", b.Label, b.DSSpeedup, b.GPSpeedup)
		}
	}
	sp, en := r.MeanRatios()
	t.Logf("fig13 mean GP/DS ratios: speedup %.1fx, energy %.1fx", sp, en)
	if sp < 3 {
		t.Errorf("speedup error ratio %.1fx, want >= 3x at test scale", sp)
	}
	if en < 1.5 {
		t.Errorf("energy error ratio %.1fx, want >= 1.5x at test scale", en)
	}
}

func TestFig14Panels(t *testing.T) {
	panels, err := testConfig().Fig14()
	if err != nil {
		t.Fatal(err)
	}
	if len(panels) != 2 {
		t.Fatalf("fig14 wants LiGen+Cronos panels, got %d", len(panels))
	}
	for _, p := range panels {
		if len(p.TrueFront) == 0 {
			t.Errorf("%s: empty true front", p.App)
		}
		if len(p.DS.Freqs) == 0 || len(p.GP.Freqs) == 0 {
			t.Errorf("%s: empty predicted set", p.App)
		}
		if p.DS.FrontDistance < 0 || p.GP.FrontDistance < 0 {
			t.Errorf("%s: negative front distance", p.App)
		}
		// The domain-specific prediction should track the true front at
		// least as closely as the general-purpose one, with slack for the
		// coarse test sweep.
		if p.DS.FrontDistance > p.GP.FrontDistance*2+0.05 {
			t.Errorf("%s: DS front distance %.4f much worse than GP %.4f",
				p.App, p.DS.FrontDistance, p.GP.FrontDistance)
		}
	}
}

func TestCompareRegressorsForestWins(t *testing.T) {
	cfg := testConfig()
	cmps, err := cfg.CompareRegressors()
	if err != nil {
		t.Fatal(err)
	}
	if len(cmps) != 2 {
		t.Fatalf("want 2 apps, got %d", len(cmps))
	}
	for _, c := range cmps {
		var forest, bestOther float64 = -1, 1e9
		for _, s := range c.Scores {
			m := (s.MeanSpeedupMAPE + s.MeanNormEnergyMAPE) / 2
			if s.Spec.Algorithm == "forest" {
				forest = m
			} else if m < bestOther {
				bestOther = m
			}
		}
		t.Logf("%s: forest %.4f, best other %.4f", c.App, forest, bestOther)
		if forest < 0 {
			t.Fatalf("%s: forest missing from comparison", c.App)
		}
		// The paper selects the forest; it must be at least competitive.
		if forest > bestOther*1.5 {
			t.Errorf("%s: forest %.4f much worse than best alternative %.4f", c.App, forest, bestOther)
		}
	}
}

func TestAblationRoofline(t *testing.T) {
	r, err := testConfig().AblationRoofline()
	if err != nil {
		t.Fatal(err)
	}
	// Compute-only model shows speedup from up-clocking where the roofline
	// model shows none, and misses the down-clock saving magnitude.
	if r.ComputeOnlySpeedup <= r.RooflineSpeedup {
		t.Errorf("compute-only speedup %.3f should exceed roofline %.3f",
			r.ComputeOnlySpeedup, r.RooflineSpeedup)
	}
	if r.RooflineSaving <= 0.05 {
		t.Errorf("roofline down-clock saving %.3f, want > 5%%", r.RooflineSaving)
	}
}

func TestAblationFeatures(t *testing.T) {
	r, err := testConfig().AblationFeatures()
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("with inputs %.4f, static-only %.4f", r.WithInputsMeanMAPE, r.StaticOnlyMeanMAPE)
	if r.StaticOnlyMeanMAPE <= r.WithInputsMeanMAPE {
		t.Errorf("removing input features should hurt: with %.4f, without %.4f",
			r.WithInputsMeanMAPE, r.StaticOnlyMeanMAPE)
	}
}

func TestAblationBatching(t *testing.T) {
	r, err := testConfig().AblationBatching()
	if err != nil {
		t.Fatal(err)
	}
	if len(r.BatchSizes) != len(r.Savings) || len(r.BatchSizes) == 0 {
		t.Fatalf("malformed batching result %+v", r)
	}
}

func TestRenderersProduceOutput(t *testing.T) {
	cfg := testConfig()
	var buf bytes.Buffer
	fig, err := cfg.Fig3()
	if err != nil {
		t.Fatal(err)
	}
	RenderFigure(&buf, fig)
	if !strings.Contains(buf.String(), "pareto-optimal frequencies") {
		t.Error("figure renderer missing Pareto line")
	}
	buf.Reset()
	RenderTable1(&buf)
	if !strings.Contains(buf.String(), "f_gl_access") {
		t.Error("table1 renderer missing feature")
	}
	buf.Reset()
	RenderTable2(&buf)
	if !strings.Contains(buf.String(), "f_ligands") {
		t.Error("table2 renderer missing feature")
	}
}

func TestSweepFreqsIncludesBaselineAndTop(t *testing.T) {
	cfg := testConfig()
	p, err := cfg.platform()
	if err != nil {
		t.Fatal(err)
	}
	for _, q := range p.Queues() {
		fs := cfg.sweepFreqs(q.Spec())
		hasBase, hasTop := false, false
		for _, f := range fs {
			if f == q.BaselineFreqMHz() {
				hasBase = true
			}
			if f == q.Spec().FMaxMHz() {
				hasTop = true
			}
		}
		if !hasBase || !hasTop {
			t.Errorf("%s sweep missing baseline or top: %v", q.Spec().Name, fs)
		}
		for i := 1; i < len(fs); i++ {
			if fs[i] <= fs[i-1] {
				t.Errorf("%s sweep not ascending at %d", q.Spec().Name, i)
			}
		}
	}
}

func TestPaperInputLists(t *testing.T) {
	if got := len(PaperGrids()); got != 5 {
		t.Errorf("paper grids %d, want 5", got)
	}
	if got := len(PaperLiGenInputs()); got != 6*4*4 {
		t.Errorf("paper LiGen inputs %d, want 96", got)
	}
	if got := len(Fig13LiGenDisplay()); got != 12 {
		t.Errorf("fig13 display inputs %d, want 12", got)
	}
}

func TestAblationBaselinesOrdering(t *testing.T) {
	r, err := testConfig().AblationBaselines()
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("DS %.4f, GP-regression %.4f, GP-clustered %.4f",
		r.DomainSpecificMAPE, r.GPRegressionMAPE, r.GPClusteredMAPE)
	if r.DomainSpecificMAPE >= r.GPRegressionMAPE {
		t.Errorf("domain-specific %.4f not below GP regression %.4f",
			r.DomainSpecificMAPE, r.GPRegressionMAPE)
	}
	if r.DomainSpecificMAPE >= r.GPClusteredMAPE {
		t.Errorf("domain-specific %.4f not below GP clustered %.4f",
			r.DomainSpecificMAPE, r.GPClusteredMAPE)
	}
}

func TestCSVRenderers(t *testing.T) {
	cfg := testConfig()
	fig, err := cfg.Fig4()
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := RenderFigureCSV(&buf, fig); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	wantRows := 1 + len(fig.Series[0].Points) + len(fig.Series[1].Points)
	if len(lines) != wantRows {
		t.Errorf("csv rows %d, want %d", len(lines), wantRows)
	}
	if !strings.HasPrefix(lines[0], "figure,series,device,freq_mhz") {
		t.Errorf("csv header %q", lines[0])
	}

	r13 := Fig13Result{Cronos: []AccuracyBar{{Label: "10x4x4", DSSpeedup: 0.01, GPSpeedup: 0.1}}}
	buf.Reset()
	if err := RenderFig13CSV(&buf, r13); err != nil {
		t.Fatal(err)
	}
	if got := strings.Count(buf.String(), "\n"); got != 5 { // header + 4 rows
		t.Errorf("fig13 csv line count %d, want 5", got)
	}
}

func TestFutureWorkPerKernel(t *testing.T) {
	r, err := testConfig().FutureWorkPerKernel()
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Plan) != 4 {
		t.Fatalf("plan covers %d kernels, want 4", len(r.Plan))
	}
	if saving := r.Outcome.EnergySaving(); saving < 0.05 {
		t.Errorf("per-kernel saving %.1f%%, want >= 5%%", saving*100)
	}
	if sp := r.Outcome.Speedup(); sp < 0.95 {
		t.Errorf("per-kernel slowdown %.1f%%, want <= 5%%", (1-sp)*100)
	}
}

func TestFig13AndFig14Renderers(t *testing.T) {
	r := Fig13Result{
		Cronos: []AccuracyBar{{Label: "10x4x4", DSSpeedup: 0.01, GPSpeedup: 0.1,
			DSNormEnergy: 0.01, GPNormEnergy: 0.04}},
		LiGen: []AccuracyBar{{Label: "31x4x256", DSSpeedup: 0.005, GPSpeedup: 0.2,
			DSNormEnergy: 0.003, GPNormEnergy: 0.15}},
	}
	var buf bytes.Buffer
	RenderFig13(&buf, r)
	out := buf.String()
	for _, want := range []string{"Cronos speedup", "LiGen normalized energy",
		"aggregate GP/DS error ratio", "10.0x"} {
		if !strings.Contains(out, want) {
			t.Errorf("fig13 rendering missing %q", want)
		}
	}

	panels := []Fig14Panel{{
		App: "LiGen", InputLabel: "89x20x10000",
		TrueFront: []pareto.Point{{FreqMHz: 1597, Speedup: 1.2, NormEnergy: 1.35}},
		DS: PredictedSet{Freqs: []int{1597}, ExactMatches: 1, FrontDistance: 0.001,
			Achieved: []pareto.Point{{FreqMHz: 1597, Speedup: 1.2, NormEnergy: 1.35}}},
		GP: PredictedSet{Freqs: []int{1590}, ExactMatches: 0, FrontDistance: 0.02},
	}}
	buf.Reset()
	RenderFig14(&buf, panels)
	out = buf.String()
	for _, want := range []string{"LiGen (89x20x10000)", "1 exact matches", "0 exact matches"} {
		if !strings.Contains(out, want) {
			t.Errorf("fig14 rendering missing %q", want)
		}
	}
}

func TestStrongScaling(t *testing.T) {
	lr, cr, err := testConfig().StrongScaling([]int{1, 2, 4, 8})
	if err != nil {
		t.Fatal(err)
	}
	if len(lr) != 4 || len(cr) != 4 {
		t.Fatalf("row counts %d/%d, want 4/4", len(lr), len(cr))
	}
	// Wall time decreases with devices for both apps.
	for i := 1; i < 4; i++ {
		if lr[i].TimeS >= lr[i-1].TimeS {
			t.Errorf("LiGen time not decreasing at %d devices", lr[i].Devices)
		}
	}
	// LiGen scales better than Cronos at 8 devices (halo overhead).
	if lr[3].Efficiency <= cr[3].Efficiency {
		t.Errorf("screening efficiency %.2f should exceed stencil %.2f",
			lr[3].Efficiency, cr[3].Efficiency)
	}
	if lr[3].Efficiency < 0.8 {
		t.Errorf("LiGen 8-device efficiency %.2f, want >= 0.8", lr[3].Efficiency)
	}
}

func TestCompareTuners(t *testing.T) {
	r, err := testConfig().CompareTuners()
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("oracle %.4f | model %.4f (0 runs) | online %.4f (%d runs)",
		r.OracleEnergy, r.ModelEnergy, r.OnlineEnergy, r.OnlineMeasurements)
	// The model-driven tuner spends no application executions.
	if r.ModelMeasurements != 0 {
		t.Errorf("model tuner spent %d measurements", r.ModelMeasurements)
	}
	// Both tuners should land within a few percent of the oracle's energy.
	if r.ModelEnergy > r.OracleEnergy+0.06 {
		t.Errorf("model regret too large: %.4f vs oracle %.4f", r.ModelEnergy, r.OracleEnergy)
	}
	if r.OnlineEnergy > r.OracleEnergy+0.06 {
		t.Errorf("online regret too large: %.4f vs oracle %.4f", r.OnlineEnergy, r.OracleEnergy)
	}
	// The online tuner pays with real executions.
	if r.OnlineMeasurements <= 0 {
		t.Error("online tuner reported no measurement cost")
	}
	var buf bytes.Buffer
	RenderTuningComparison(&buf, r)
	if !strings.Contains(buf.String(), "model-driven") {
		t.Error("renderer missing model row")
	}
}

func TestVerifyShapesAllPass(t *testing.T) {
	checks, err := testConfig().VerifyShapes()
	if err != nil {
		t.Fatal(err)
	}
	if len(checks) < 10 {
		t.Fatalf("only %d shape checks, want >= 10", len(checks))
	}
	var buf bytes.Buffer
	failed := RenderShapeChecks(&buf, checks)
	if failed != 0 {
		t.Errorf("%d shape checks failed:\n%s", failed, buf.String())
	}
}

func TestFig7And9MI100Shapes(t *testing.T) {
	cfg := testConfig()
	fig7, err := cfg.Fig7()
	if err != nil {
		t.Fatal(err)
	}
	fig9, err := cfg.Fig9()
	if err != nil {
		t.Fatal(err)
	}
	for _, fig := range []Figure{fig7, fig9} {
		for _, s := range fig.Series {
			if s.Device != "AMD MI100" {
				t.Fatalf("%s series on %s, want MI100", fig.ID, s.Device)
			}
		}
	}
	// Fig 7 vs Fig 6: MI100 is slower and hotter on the same inputs.
	fig6, err := cfg.Fig6()
	if err != nil {
		t.Fatal(err)
	}
	b6 := baselinePoint(t, fig6.Series[0])
	b7 := baselinePoint(t, fig7.Series[0])
	if b7.TimeS <= b6.TimeS || b7.EnergyJ <= b6.EnergyJ {
		t.Errorf("MI100 (%.3gs/%.3gJ) not above V100 (%.3gs/%.3gJ)",
			b7.TimeS, b7.EnergyJ, b6.TimeS, b6.EnergyJ)
	}
	// Fig 9: atom scaling is monotone on MI100 too.
	var prev float64
	for _, s := range fig9.Series[:4] {
		bp := baselinePoint(t, s)
		if bp.TimeS <= prev {
			t.Errorf("fig9 series %s time not increasing in atoms", s.Label)
		}
		prev = bp.TimeS
	}
}

func TestResilienceStudy(t *testing.T) {
	rows, err := testConfig().Resilience()
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 {
		t.Fatalf("want 2 rows, got %d", len(rows))
	}
	for _, r := range rows {
		if r.FaultFree.Retries != 0 || r.FaultFree.Failovers != 0 || r.FaultFree.WastedEnergyJ != 0 {
			t.Errorf("%s: fault-free run reports recovery costs: %+v", r.App, r.FaultFree)
		}
		if r.Faulty.Failovers != 1 || r.Faulty.SurvivingDevices != 3 {
			t.Errorf("%s: failovers/surviving = %d/%d, want 1/3", r.App, r.Faulty.Failovers, r.Faulty.SurvivingDevices)
		}
		// Wall time always suffers. Energy may go either way: the thermal
		// throttle runs a device at a lower, more efficient clock, which can
		// outweigh the wasted re-executed work — the same time/energy
		// trade-off the frequency studies measure, arrived at by accident.
		if r.TimeOverhead() <= 0 {
			t.Errorf("%s: surviving faults must cost wall time, got %+.2f%%", r.App, r.TimeOverhead()*100)
		}
		if r.Faulty.WastedEnergyJ <= 0 {
			t.Errorf("%s: faulty run reports no wasted energy", r.App)
		}
	}
	var buf bytes.Buffer
	if err := testConfig().RenderResilience(&buf); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"resilience", "ligen", "cronos", "failovers", "checkpoint"} {
		if !bytes.Contains(buf.Bytes(), []byte(want)) {
			t.Errorf("render output missing %q:\n%s", want, buf.String())
		}
	}
}
