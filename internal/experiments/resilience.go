package experiments

import (
	"context"
	"fmt"
	"io"

	"dsenergy/internal/cluster"
	"dsenergy/internal/faults"
	"dsenergy/internal/gpusim"
	"dsenergy/internal/ligen"
	"dsenergy/internal/obs"
	"dsenergy/internal/parallel"
)

// ResilienceRow compares one application's fault-free and fault-injected run
// on the same cluster configuration.
type ResilienceRow struct {
	App       string
	FaultFree cluster.Result
	Faulty    cluster.Result
}

// TimeOverhead is the wall-time cost of surviving the fault plan, relative
// to the fault-free run.
func (r ResilienceRow) TimeOverhead() float64 {
	if r.FaultFree.TimeS <= 0 {
		return 0
	}
	return r.Faulty.TimeS/r.FaultFree.TimeS - 1
}

// EnergyOverhead is the energy cost of surviving the fault plan.
func (r ResilienceRow) EnergyOverhead() float64 {
	if r.FaultFree.EnergyJ <= 0 {
		return 0
	}
	return r.Faulty.EnergyJ/r.FaultFree.EnergyJ - 1
}

// Resilience runs both applications on a 4-device V100 cluster twice — once
// fault-free and once under a seeded fault plan with transient kernel
// faults, a thermal-throttle window and one permanent mid-campaign device
// loss — and reports the measured cost of surviving: extra wall time, extra
// energy, and where it went (retries, backoff, checkpoints, wasted work).
// This extends the paper's time/energy trade-off to the failure conditions
// any campaign at EXSCALATE scale actually runs under.
func (c Config) Resilience() ([]ResilienceRow, error) {
	const devices = 4
	in := ligen.Input{Ligands: 16384, Atoms: 63, Fragments: 8}
	grid := [3]int{160, 64, 64}
	// Device 2 dies early enough to hit both campaigns (a LiGen shard is 3
	// submissions, a Cronos step is 4); device 0 spends a stretch of each
	// campaign thermally throttled.
	plan := faults.Plan{
		Seed:          c.Seed + 1,
		TransientProb: 0.01,
		Failures:      []faults.DeviceFailure{{Device: 2, AfterSubmits: 9}},
		Throttles:     []faults.Throttle{{Device: 0, FromSubmit: 4, ToSubmit: 12, CapMHz: 1005}},
	}

	// Each campaign gets a fresh identically seeded cluster, so the device
	// loss hits every campaign at the same point and the four runs (two apps
	// × clean/faulty) are independent — they fan out on the config's pool.
	runOne := func(app string, p faults.Plan, o *obs.Observer) (cluster.Result, error) {
		cl, err := cluster.New(c.Seed, gpusim.V100Spec(), devices, cluster.DefaultInterconnect())
		if err != nil {
			return cluster.Result{}, err
		}
		if err := cl.SetFaultPlan(p, cluster.DefaultResilienceConfig()); err != nil {
			return cluster.Result{}, err
		}
		cl.SetObserver(o)
		if app == "ligen" {
			return cl.ScreenLiGen(in)
		}
		return cl.RunCronos(grid[0], grid[1], grid[2], c.CronosSteps)
	}
	campaigns := []struct {
		app  string
		plan faults.Plan
	}{
		{"ligen", faults.Plan{}}, {"cronos", faults.Plan{}},
		{"ligen", plan}, {"cronos", plan},
	}
	forks := c.Obs.ForkN(len(campaigns))
	results, err := parallel.Map(context.Background(), len(campaigns), c.Jobs, func(_ context.Context, i int) (cluster.Result, error) {
		return runOne(campaigns[i].app, campaigns[i].plan, forks[i])
	})
	if err != nil {
		return nil, err
	}
	c.Obs.AbsorbAll(forks)
	return []ResilienceRow{
		{App: "ligen", FaultFree: results[0], Faulty: results[2]},
		{App: "cronos", FaultFree: results[1], Faulty: results[3]},
	}, nil
}

// RenderResilience runs and prints the resilience study.
func (c Config) RenderResilience(w io.Writer) error {
	rows, err := c.Resilience()
	if err != nil {
		return err
	}
	fmt.Fprintln(w, "== resilience: cost of surviving faults (4x V100) ==")
	for _, r := range rows {
		fmt.Fprintf(w, "%s:\n", r.App)
		fmt.Fprintf(w, "   fault-free: %.3f s, %.1f J\n", r.FaultFree.TimeS, r.FaultFree.EnergyJ)
		fmt.Fprintf(w, "   faulty:     %.3f s, %.1f J  (%+.1f%% time, %+.1f%% energy)\n",
			r.Faulty.TimeS, r.Faulty.EnergyJ, r.TimeOverhead()*100, r.EnergyOverhead()*100)
		fmt.Fprintf(w, "   recovery:   %d retries, %d failovers, %d/%d devices survived\n",
			r.Faulty.Retries, r.Faulty.Failovers, r.Faulty.SurvivingDevices, len(r.Faulty.PerDevice))
		fmt.Fprintf(w, "   overheads:  wasted %.3f s / %.1f J, backoff %.3f s, checkpoint %.3f s\n",
			r.Faulty.WastedTimeS, r.Faulty.WastedEnergyJ, r.Faulty.BackoffTimeS, r.Faulty.CheckpointTimeS)
	}
	return nil
}
