package experiments

import (
	"fmt"
	"io"

	"dsenergy/internal/core"
	"dsenergy/internal/cronos"
	"dsenergy/internal/tuner"
)

// TuningComparison quantifies the deployment trade-off between the paper's
// model-driven frequency selection and the online-search governors of the
// related work (EAR/GEOPM style): for held-out inputs, how close does each
// approach get to the oracle decision, and how many application executions
// does it spend to decide?
type TuningComparison struct {
	InputLabel string
	// Energy at the chosen clock (normalized to the baseline), per tuner.
	OracleEnergy float64
	ModelEnergy  float64
	OnlineEnergy float64
	// Performance kept (speedup vs baseline) at the chosen clock.
	OracleSpeedup float64
	ModelSpeedup  float64
	OnlineSpeedup float64
	// Decision cost in application executions.
	ModelMeasurements  int // always 0: the model predicts
	OnlineMeasurements int
}

// CompareTuners runs the comparison on the Cronos grid ladder with a
// performance-constraint policy, evaluating the largest grid held out from
// model training.
func (c Config) CompareTuners() (TuningComparison, error) {
	p, err := c.platform()
	if err != nil {
		return TuningComparison{}, err
	}
	q := p.Queues()[0]
	ds, _, err := c.BuildCronosDataset(q)
	if err != nil {
		return TuningComparison{}, err
	}
	policy := tuner.PerfConstraint{MinSpeedup: 0.98}
	held := []float64{160, 64, 64}
	out := TuningComparison{InputLabel: core.FeatureKey(held)}

	// Oracle: perfect information.
	oracle, err := tuner.Oracle(ds, held, policy)
	if err != nil {
		return TuningComparison{}, err
	}
	out.OracleEnergy, out.OracleSpeedup = oracle.NormEnergy, oracle.Speedup

	// Model-driven: trained without the evaluated input, zero deploy-time
	// measurements. The chosen clock is scored against the truth.
	model, err := core.TrainHeldOut(ds, c.forestSpec(), c.Seed+41, held)
	if err != nil {
		return TuningComparison{}, err
	}
	tn, err := tuner.New(model, policy)
	if err != nil {
		return TuningComparison{}, err
	}
	truth, err := ds.TrueCurves(held)
	if err != nil {
		return TuningComparison{}, err
	}
	freqs := make([]int, len(truth))
	truthBy := map[int]core.CurvePoint{}
	for i, t := range truth {
		freqs[i] = t.FreqMHz
		truthBy[t.FreqMHz] = t
	}
	choiceFreq, _, err := tn.FreqFor(held, freqs)
	if err != nil {
		return TuningComparison{}, err
	}
	achieved := truthBy[choiceFreq]
	out.ModelEnergy, out.ModelSpeedup = achieved.NormEnergy, achieved.Speedup

	// Online search: measures the real application to decide.
	w, err := cronos.NewWorkload(160, 64, 64, c.CronosSteps)
	if err != nil {
		return TuningComparison{}, err
	}
	res, err := tuner.OnlineSearch(q, w, freqs, c.Reps, policy)
	if err != nil {
		return TuningComparison{}, err
	}
	onlineAchieved := truthBy[res.Choice.FreqMHz]
	out.OnlineEnergy, out.OnlineSpeedup = onlineAchieved.NormEnergy, onlineAchieved.Speedup
	out.OnlineMeasurements = res.Measurements
	return out, nil
}

// RenderTuningComparison prints the tuner comparison.
func RenderTuningComparison(w io.Writer, r TuningComparison) {
	fmt.Fprintf(w, "== tuner comparison (Cronos %s, perf >= 0.98 policy) ==\n", r.InputLabel)
	fmt.Fprintf(w, "%-14s %12s %10s %14s\n", "tuner", "norm energy", "speedup", "app executions")
	fmt.Fprintf(w, "%-14s %12.4f %10.4f %14d\n", "oracle", r.OracleEnergy, r.OracleSpeedup, 0)
	fmt.Fprintf(w, "%-14s %12.4f %10.4f %14d\n", "model-driven", r.ModelEnergy, r.ModelSpeedup, r.ModelMeasurements)
	fmt.Fprintf(w, "%-14s %12.4f %10.4f %14d\n", "online-search", r.OnlineEnergy, r.OnlineSpeedup, r.OnlineMeasurements)
}
