package experiments

import (
	"bytes"
	"reflect"
	"testing"
)

// TestJobsInvarianceFig1 pins the tentpole contract at the figure level: a
// characterization figure's bytes do not depend on the worker count. Jobs=1
// is the fully serial reference; Jobs=0 saturates GOMAXPROCS; Jobs=7 forces
// a worker count that divides nothing evenly.
func TestJobsInvarianceFig1(t *testing.T) {
	render := func(jobs int) ([]byte, Figure) {
		c := testConfig()
		c.Jobs = jobs
		fig, err := c.Fig1()
		if err != nil {
			t.Fatalf("Jobs=%d: %v", jobs, err)
		}
		var buf bytes.Buffer
		RenderFigure(&buf, fig)
		return buf.Bytes(), fig
	}
	refBytes, refFig := render(1)
	for _, jobs := range []int{0, 7} {
		gotBytes, gotFig := render(jobs)
		if !reflect.DeepEqual(refFig, gotFig) {
			t.Errorf("Fig1 with Jobs=%d differs from serial figure", jobs)
		}
		if !bytes.Equal(refBytes, gotBytes) {
			t.Errorf("rendered Fig1 bytes with Jobs=%d differ from serial render", jobs)
		}
	}
}

// TestJobsInvarianceResilience covers the cluster fan-out: the four fault
// campaigns produce the same rows whether they run serially or concurrently.
func TestJobsInvarianceResilience(t *testing.T) {
	run := func(jobs int) []ResilienceRow {
		c := testConfig()
		c.Jobs = jobs
		rows, err := c.Resilience()
		if err != nil {
			t.Fatalf("Jobs=%d: %v", jobs, err)
		}
		return rows
	}
	ref := run(1)
	if got := run(0); !reflect.DeepEqual(ref, got) {
		t.Error("Resilience rows with Jobs=0 differ from serial run")
	}
}
