package experiments

import (
	"bytes"
	"fmt"
	"io"
	"math"

	"dsenergy/internal/core"
	"dsenergy/internal/cronos"
	"dsenergy/internal/gpusim"
	"dsenergy/internal/ligen"
	"dsenergy/internal/sched"
	"dsenergy/internal/serve"
	"dsenergy/internal/synergy"
)

// serveMaxCandidates bounds the advisory clock menu: an online service does
// not sweep the full DVFS band per query, it ranks a subsample.
const serveMaxCandidates = 16

// serveRequests is the per-shard request budget (default 500k; four shards
// give the campaign its two-million-request load).
func (c Config) serveRequests() int {
	if c.ServeRequests > 0 {
		return c.ServeRequests
	}
	return 500_000
}

// serveFreqs subsamples a device sweep down to the advisory candidate menu,
// walking from f_max so the fastest clock always stays on it.
func (c Config) serveFreqs(spec gpusim.Spec) []int {
	full := c.sweepFreqs(spec)
	if len(full) <= serveMaxCandidates {
		return full
	}
	stride := (len(full) + serveMaxCandidates - 1) / serveMaxCandidates
	var picked []int
	for i := len(full) - 1; i >= 0; i -= stride {
		picked = append(picked, full[i])
	}
	// Reverse into ascending order.
	for i, j := 0, len(picked)-1; i < j; i, j = i+1, j-1 {
		picked[i], picked[j] = picked[j], picked[i]
	}
	return picked
}

// serveShapes is the request universe of one device: every ladder size of
// both applications, with nominal times from the noiseless analytic model at
// f_max (the same reference GenerateStream sizes deadlines from).
func serveShapes(spec gpusim.Spec) ([]serve.Shape, error) {
	dev, err := gpusim.New(spec, 0)
	if err != nil {
		return nil, err
	}
	fmax := spec.FMaxMHz()
	var shapes []serve.Shape
	for _, in := range sched.LiGenSizeLadder() {
		j := sched.Job{App: sched.AppLiGen, LiGen: in}
		w, err := ligen.NewWorkload(in)
		if err != nil {
			return nil, err
		}
		t, _ := w.AnalyticOn(dev, fmax)
		shapes = append(shapes, serve.Shape{App: "ligen", Features: j.Features(), NominalS: t})
	}
	for _, sz := range sched.CronosSizeLadder() {
		j := sched.Job{App: sched.AppCronos, Grid: sz.Grid, Steps: sz.Steps}
		w, err := cronos.NewWorkload(sz.Grid[0], sz.Grid[1], sz.Grid[2], sz.Steps)
		if err != nil {
			return nil, err
		}
		t, _ := w.AnalyticOn(dev, fmax)
		shapes = append(shapes, serve.Shape{App: "cronos", Features: j.Features(), NominalS: t})
	}
	return shapes, nil
}

// serveModel measures and trains one (app, device) predictor pair on the
// serving candidate clocks and returns its persisted form — the bytes a
// deployment would ship to the advisor, exercising the full save/load path.
func (c Config) serveModel(q *synergy.Queue, app string, freqs []int, seed uint64) ([]byte, error) {
	var (
		schema core.Schema
		wls    []core.FeaturedWorkload
	)
	switch app {
	case "ligen":
		schema = core.LiGenSchema()
		for _, in := range sched.LiGenSizeLadder() {
			j := sched.Job{App: sched.AppLiGen, LiGen: in}
			w, err := j.Workload()
			if err != nil {
				return nil, err
			}
			wls = append(wls, core.FeaturedWorkload{Workload: w, Features: j.Features()})
		}
	case "cronos":
		schema = core.CronosSchema()
		for _, sz := range sched.CronosSizeLadder() {
			j := sched.Job{App: sched.AppCronos, Grid: sz.Grid, Steps: sz.Steps}
			w, err := j.Workload()
			if err != nil {
				return nil, err
			}
			wls = append(wls, core.FeaturedWorkload{Workload: w, Features: j.Features()})
		}
	default:
		return nil, fmt.Errorf("experiments: unknown serving app %q", app)
	}
	ds, err := core.BuildDataset(q, schema, wls, core.BuildConfig{
		Freqs: freqs, Reps: c.Reps, Workers: c.Jobs,
	})
	if err != nil {
		return nil, err
	}
	m, err := core.Train(ds, c.forestSpec(), seed)
	if err != nil {
		return nil, err
	}
	var buf bytes.Buffer
	if err := m.Save(&buf); err != nil {
		return nil, err
	}
	return buf.Bytes(), nil
}

// ServeCampaign builds the serving campaign: four advisor shards over two
// silicons (V100, MI100), each serving LiGen and Cronos models trained on
// that silicon. One V100 shard hot-reloads a retrained LiGen v2 mid-load;
// one MI100 shard receives a corrupt (truncated) upload that must be
// rejected while serving continues. The load mixes open- and closed-loop
// generators, plus malformed requests and an unmodeled app on one shard to
// exercise the admission rejections.
func (c Config) ServeCampaign() (serve.Config, error) {
	p, err := c.platform()
	if err != nil {
		return serve.Config{}, err
	}
	qs := p.Queues()
	v100, mi100 := qs[0], qs[1]

	vFreqs := c.serveFreqs(v100.Spec())
	mFreqs := c.serveFreqs(mi100.Spec())

	vLigen, err := c.serveModel(v100, "ligen", vFreqs, c.Seed+61)
	if err != nil {
		return serve.Config{}, err
	}
	vCronos, err := c.serveModel(v100, "cronos", vFreqs, c.Seed+62)
	if err != nil {
		return serve.Config{}, err
	}
	// The v2 reload: the same measurements retrained under a different seed,
	// a genuinely distinct forest for the same (app, device).
	vLigen2, err := c.serveModel(v100, "ligen", vFreqs, c.Seed+63)
	if err != nil {
		return serve.Config{}, err
	}
	mLigen, err := c.serveModel(mi100, "ligen", mFreqs, c.Seed+64)
	if err != nil {
		return serve.Config{}, err
	}
	mCronos, err := c.serveModel(mi100, "cronos", mFreqs, c.Seed+65)
	if err != nil {
		return serve.Config{}, err
	}

	vShapes, err := serveShapes(v100.Spec())
	if err != nil {
		return serve.Config{}, err
	}
	mShapes, err := serveShapes(mi100.Spec())
	if err != nil {
		return serve.Config{}, err
	}
	// The unmodeled app: requests the no-model rejection path must absorb.
	mShapesGhost := append(append([]serve.Shape(nil), mShapes...),
		serve.Shape{App: "dock6", Features: []float64{64, 8, 8}, NominalS: 0.05})

	n := c.serveRequests()
	perClient := n / 16
	if perClient < 1 {
		perClient = 1
	}
	// Reload instants scale with the open-loop makespan (mean interarrival
	// 0.5 ms × n requests) so the swaps land mid-load at every budget.
	quarterS := 0.0005 * float64(n) * 0.25
	return serve.Config{
		Shards: []serve.ShardConfig{
			{
				Device: "v100-a",
				Freqs:  vFreqs,
				Models: map[string][]byte{"ligen": vLigen, "cronos": vCronos},
				Reloads: []serve.Reload{
					{AtS: quarterS, App: "ligen", Payload: vLigen2},
				},
				Shapes: vShapes,
				Load:   serve.Load{Mode: "open", Requests: n, MeanInterarrivalS: 0.0005},
			},
			{
				Device: "v100-b",
				Freqs:  vFreqs,
				Models: map[string][]byte{"ligen": vLigen, "cronos": vCronos},
				Shapes: vShapes,
				Load: serve.Load{Mode: "closed", Clients: 16,
					RequestsPerClient: perClient, MeanThinkS: 0.002},
			},
			{
				Device: "mi100-a",
				Freqs:  mFreqs,
				Models: map[string][]byte{"ligen": mLigen, "cronos": mCronos},
				Reloads: []serve.Reload{
					// A torn upload: must be rejected, v1 keeps serving.
					{AtS: quarterS / 2, App: "cronos", Payload: mCronos[:len(mCronos)/3]},
				},
				Shapes: mShapesGhost,
				Load: serve.Load{Mode: "open", Requests: n,
					MeanInterarrivalS: 0.0005, MalformedEvery: 1000},
			},
			{
				Device: "mi100-b",
				Freqs:  mFreqs,
				Models: map[string][]byte{"ligen": mLigen, "cronos": mCronos},
				Shapes: mShapes,
				Load: serve.Load{Mode: "closed", Clients: 16,
					RequestsPerClient: perClient, MeanThinkS: 0.002},
			},
		},
		Seed:    c.Seed + 66,
		Workers: c.Jobs,
		Obs:     c.Obs,
	}, nil
}

// Serve runs the frequency-advisor serving campaign.
func (c Config) Serve() (*serve.Report, error) {
	cfg, err := c.ServeCampaign()
	if err != nil {
		return nil, err
	}
	return serve.Run(cfg)
}

// sameResponse compares two advisory responses bit-for-bit: integer and
// boolean fields directly, float fields through their IEEE-754 words.
func sameResponse(a, b serve.Response) bool {
	return a.App == b.App && a.Device == b.Device && a.Version == b.Version &&
		a.RecommendedMHz == b.RecommendedMHz &&
		a.OnPareto == b.OnPareto && a.Escalated == b.Escalated &&
		math.Float64bits(a.PredTimeS) == math.Float64bits(b.PredTimeS) &&
		math.Float64bits(a.PredEnergyJ) == math.Float64bits(b.PredEnergyJ) &&
		math.Float64bits(a.PredEnergyMaxJ) == math.Float64bits(b.PredEnergyMaxJ)
}

// serveProbeBatchIdentity replays every shape of one shard through both
// inference paths — a lone Advise per request versus one coalesced
// PredictCurvesBatch block — and reports how many disagree in any bit.
func serveProbeBatchIdentity(sc serve.ShardConfig) (probes, mismatches int, err error) {
	reg := serve.NewRegistry(sc.Device)
	for _, app := range []string{"ligen", "cronos"} {
		if payload, ok := sc.Models[app]; ok {
			if _, err := reg.Publish(app, payload); err != nil {
				return 0, 0, err
			}
		}
	}
	byApp := map[string][]serve.Shape{}
	for _, sh := range sc.Shapes {
		byApp[sh.App] = append(byApp[sh.App], sh)
	}
	for _, app := range []string{"ligen", "cronos"} {
		shapes := byApp[app]
		if len(shapes) == 0 {
			continue
		}
		e, ok := reg.Lookup(app)
		if !ok {
			continue
		}
		inputs := make([][]float64, len(shapes))
		for i, sh := range shapes {
			inputs[i] = sh.Features
		}
		curves, err := e.Model.PredictCurvesBatch(inputs, sc.Freqs)
		if err != nil {
			return probes, mismatches, err
		}
		for i, sh := range shapes {
			for _, tier := range []float64{2, 4, 8} {
				deadline := tier * sh.NominalS
				single, err := e.Advise(sh.Features, deadline, sc.Freqs)
				if err != nil {
					return probes, mismatches, err
				}
				batched := e.AdviseFromCurve(curves[i], deadline)
				probes++
				if !sameResponse(single, batched) {
					mismatches++
				}
			}
		}
	}
	return probes, mismatches, nil
}

// RenderServe runs and prints the serving campaign, closing with CHECK lines
// asserting the acceptance claims: zero lost requests under hot-reload,
// batched inference bit-identical to per-request advice, every response
// attributed to exactly one published version (with both versions of the
// reloaded model answering), the corrupt upload rejected without dropping
// the shard, and the admission tier actually absorbing load. It returns the
// number of failed checks.
func (c Config) RenderServe(w io.Writer) (int, error) {
	cfg, err := c.ServeCampaign()
	if err != nil {
		return 0, err
	}
	rep, err := serve.Run(cfg)
	if err != nil {
		return 0, err
	}
	fmt.Fprintln(w, "== frequency-advisor service: 4 shards, LiGen+Cronos on V100/MI100 ==")
	if err := rep.WriteText(w); err != nil {
		return 0, err
	}
	failed := 0
	check := func(ok bool, format string, args ...any) {
		verdict := "CHECK ok:   "
		if !ok {
			verdict = "CHECK FAIL: "
			failed++
		}
		fmt.Fprintf(w, verdict+format+"\n", args...)
	}

	n := c.serveRequests()
	perClient := n / 16
	if perClient < 1 {
		perClient = 1
	}
	wantSubmitted := 2*n + 2*16*perClient
	check(rep.Submitted == wantSubmitted,
		"load: %d requests submitted (budget %d/shard, expected %d)",
		rep.Submitted, n, wantSubmitted)
	check(rep.Completed+rep.Rejected == rep.Submitted,
		"zero loss: completed %d + rejected %d == submitted %d",
		rep.Completed, rep.Rejected, rep.Submitted)

	probes, mismatches := 0, 0
	for _, sc := range cfg.Shards {
		p, m, err := serveProbeBatchIdentity(sc)
		if err != nil {
			return failed, err
		}
		probes += p
		mismatches += m
	}
	check(probes > 0 && mismatches == 0,
		"batching: coalesced inference bit-identical to per-request advice (%d probes, %d mismatches)",
		probes, mismatches)

	attributed := 0
	versions := map[string]map[int]bool{}
	for _, v := range rep.PerVersion {
		attributed += v.Responses
		key := v.Device + "/" + v.App
		if versions[key] == nil {
			versions[key] = map[int]bool{}
		}
		versions[key][v.Version] = true
	}
	check(attributed == rep.Completed,
		"attribution: every response maps to exactly one model version (%d == %d)",
		attributed, rep.Completed)
	check(rep.Reloads == 1 && len(versions["v100-a/ligen"]) == 2,
		"hot-reload: v100-a/ligen swapped mid-load, both versions answered (published=%d, versions=%d)",
		rep.Reloads, len(versions["v100-a/ligen"]))
	check(rep.ReloadsRejected == 1 && len(versions["mi100-a/cronos"]) == 1,
		"hot-reload: corrupt mi100-a/cronos upload rejected, v1 kept serving (rejected=%d, versions=%d)",
		rep.ReloadsRejected, len(versions["mi100-a/cronos"]))
	check(rep.RejectedBadShape > 0 && rep.RejectedNoModel > 0,
		"admission: malformed (%d) and unmodeled (%d) requests rejected, not dropped",
		rep.RejectedBadShape, rep.RejectedNoModel)
	check(rep.CacheHitRate() > 0.90,
		"cache: %.2f%% of answers served from the LRU", 100*rep.CacheHitRate())
	check(rep.Coalesced > 0 && rep.MeanBatchFlights > 1,
		"coalescing: %d duplicate in-flight queries merged, %.2f flights per batch",
		rep.Coalesced, rep.MeanBatchFlights)
	check(rep.PredEnergySavedFrac() > 0,
		"advice: recommendations predict %.2f%% energy saving vs always-f_max",
		100*rep.PredEnergySavedFrac())
	check(rep.OnPareto*2 > rep.Completed,
		"advice: %d of %d recommendations lie on the predicted Pareto front",
		rep.OnPareto, rep.Completed)
	check(rep.P50LatencyS <= rep.P99LatencyS && rep.P99LatencyS <= rep.MaxLatencyS &&
		rep.ThroughputRPS > 0,
		"latency: p50 %.6fs <= p99 %.6fs <= max %.6fs at %.0f req/s",
		rep.P50LatencyS, rep.P99LatencyS, rep.MaxLatencyS, rep.ThroughputRPS)
	return failed, nil
}
