package experiments

import (
	"bytes"
	"reflect"
	"strings"
	"testing"

	"dsenergy/internal/obs"
)

// exportAll returns the two deterministic exports (metrics text, trace text).
func exportAll(t *testing.T, o *obs.Observer) (string, string) {
	t.Helper()
	var m, tr bytes.Buffer
	if err := o.WriteMetricsText(&m); err != nil {
		t.Fatal(err)
	}
	if err := o.WriteTraceText(&tr); err != nil {
		t.Fatal(err)
	}
	return m.String(), tr.String()
}

// TestObserverDoesNotPerturbFigures pins the layer's core promise at the
// generator level: attaching an observer changes no result byte.
func TestObserverDoesNotPerturbFigures(t *testing.T) {
	plainCfg := testConfig()
	plain, err := plainCfg.Fig1()
	if err != nil {
		t.Fatal(err)
	}
	obsCfg := testConfig()
	obsCfg.Obs = obs.NewObserver()
	observed, err := obsCfg.Fig1()
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(plain, observed) {
		t.Error("observer changed Fig1")
	}
}

// TestObserverExportsJobsInvariant is the determinism regression for the
// exports themselves: the metric and trace dumps are byte-identical across
// worker counts and across repeated runs.
func TestObserverExportsJobsInvariant(t *testing.T) {
	run := func(jobs int) (string, string) {
		c := testConfig()
		c.Jobs = jobs
		c.Obs = obs.NewObserver()
		if _, err := c.Fig1(); err != nil {
			t.Fatalf("Jobs=%d: %v", jobs, err)
		}
		if _, err := c.Resilience(); err != nil {
			t.Fatalf("Jobs=%d: %v", jobs, err)
		}
		return exportAll(t, c.Obs)
	}
	mRef, tRef := run(1)
	if mRef == "" || tRef == "" {
		t.Fatal("exports are empty — instrumentation not wired")
	}
	if !strings.Contains(tRef, "synergy.measure") {
		t.Errorf("trace missing sweep spans:\n%.400s", tRef)
	}
	if !strings.Contains(mRef, "synergy_measurements_total") {
		t.Errorf("metrics missing measurement counters:\n%.400s", mRef)
	}
	for _, jobs := range []int{0, 7} {
		m, tr := run(jobs)
		if m != mRef {
			t.Errorf("metric export with Jobs=%d differs from serial export", jobs)
		}
		if tr != tRef {
			t.Errorf("trace export with Jobs=%d differs from serial export", jobs)
		}
	}
	// Repeatability: same config, fresh observer, same bytes.
	m2, t2 := run(1)
	if m2 != mRef || t2 != tRef {
		t.Error("exports differ across identical repeated runs")
	}
}
