package experiments

import (
	"context"
	"fmt"
	"io"

	"dsenergy/internal/cluster"
	"dsenergy/internal/core"
	"dsenergy/internal/faults"
	"dsenergy/internal/gpusim"
	"dsenergy/internal/obs"
	"dsenergy/internal/parallel"
	"dsenergy/internal/sched"
)

// ScheduleRun is one (fault plan, policy) cell of the scheduling campaign.
type ScheduleRun struct {
	Plan   string // "fault-free" or "fault-storm"
	Policy sched.Policy
	Report *sched.Report
}

// scheduleModels trains the raw per-application predictors the scheduler
// consumes, sweeping exactly the stream's size ladders at the campaign's
// candidate clocks on a fresh single-V100 platform.
func (c Config) scheduleModels(freqs []int) (*sched.ModelSet, error) {
	p, err := c.platform()
	if err != nil {
		return nil, err
	}
	q := p.Queues()[0] // the V100; the cluster below runs the same silicon

	var ligenWLs []core.FeaturedWorkload
	for _, in := range sched.LiGenSizeLadder() {
		w, err := sched.Job{App: sched.AppLiGen, LiGen: in}.Workload()
		if err != nil {
			return nil, err
		}
		ligenWLs = append(ligenWLs, core.FeaturedWorkload{
			Workload: w,
			Features: []float64{float64(in.Ligands), float64(in.Atoms), float64(in.Fragments)},
		})
	}
	var cronosWLs []core.FeaturedWorkload
	for _, sz := range sched.CronosSizeLadder() {
		w, err := sched.Job{App: sched.AppCronos, Grid: sz.Grid, Steps: sz.Steps}.Workload()
		if err != nil {
			return nil, err
		}
		cronosWLs = append(cronosWLs, core.FeaturedWorkload{
			Workload: w,
			Features: []float64{float64(sz.Grid[0]), float64(sz.Grid[1]), float64(sz.Grid[2])},
		})
	}

	bc := core.BuildConfig{Freqs: freqs, Reps: c.Reps, Workers: c.Jobs}
	lds, err := core.BuildDataset(q, core.LiGenSchema(), ligenWLs, bc)
	if err != nil {
		return nil, err
	}
	cds, err := core.BuildDataset(q, core.CronosSchema(), cronosWLs, bc)
	if err != nil {
		return nil, err
	}
	lm, err := core.Train(lds, c.forestSpec(), c.Seed+42)
	if err != nil {
		return nil, err
	}
	cm, err := core.Train(cds, c.forestSpec(), c.Seed+43)
	if err != nil {
		return nil, err
	}
	return &sched.ModelSet{LiGen: lm, Cronos: cm}, nil
}

// scheduleStormPlan is the campaign's aggressive fault plan: a permanent
// device loss mid-campaign, two staggered thermal-throttle windows, plus
// background transient kernel faults and clock-set rejections.
func (c Config) scheduleStormPlan() faults.Plan {
	return faults.Plan{
		Seed:            c.Seed + 44,
		TransientProb:   0.02,
		ClockRejectProb: 0.01,
		Failures:        []faults.DeviceFailure{{Device: 2, AfterSubmits: 40}},
		Throttles: []faults.Throttle{
			{Device: 0, FromSubmit: 10, ToSubmit: 35, CapMHz: 1005},
			{Device: 1, FromSubmit: 20, ToSubmit: 45, CapMHz: 937},
		},
	}
}

// scheduleJobs returns the campaign's stream length (default 96).
func (c Config) scheduleJobs() int {
	if c.ScheduleJobs > 0 {
		return c.ScheduleJobs
	}
	return 96
}

// Schedule runs the deadline-aware scheduling campaign: one seeded
// multi-tenant stream of LiGen screens and Cronos runs, executed on a
// 4-device V100 cluster under each frequency policy (model-driven,
// max-frequency, static baseline clock), fault-free and under the fault
// storm. The six runs fan out on the config's pool; every run gets a fresh
// identically-seeded cluster and the shared read-only models, so the result
// is byte-identical for every Jobs value.
func (c Config) Schedule() ([]ScheduleRun, error) {
	const devices = 4
	spec := gpusim.V100Spec()
	freqs := c.sweepFreqs(spec)
	models, err := c.scheduleModels(freqs)
	if err != nil {
		return nil, err
	}
	jobs, err := sched.GenerateStream(sched.StreamConfig{
		Seed: c.Seed + 45,
		Jobs: c.scheduleJobs(),
	}, spec)
	if err != nil {
		return nil, err
	}
	storm := c.scheduleStormPlan()

	runOne := func(plan faults.Plan, policy sched.Policy, o *obs.Observer) (*sched.Report, error) {
		cl, err := cluster.New(c.Seed, spec, devices, cluster.DefaultInterconnect())
		if err != nil {
			return nil, err
		}
		if err := cl.SetFaultPlan(plan, cluster.DefaultResilienceConfig()); err != nil {
			return nil, err
		}
		cl.SetObserver(o)
		s, err := sched.New(cl, sched.Config{
			Policy: policy,
			Freqs:  freqs,
			Models: models,
			Obs:    o,
		})
		if err != nil {
			return nil, err
		}
		return s.Run(jobs)
	}

	cells := []ScheduleRun{
		{Plan: "fault-free", Policy: sched.PolicyModel},
		{Plan: "fault-free", Policy: sched.PolicyMaxFreq},
		{Plan: "fault-free", Policy: sched.PolicyStatic},
		{Plan: "fault-storm", Policy: sched.PolicyModel},
		{Plan: "fault-storm", Policy: sched.PolicyMaxFreq},
		{Plan: "fault-storm", Policy: sched.PolicyStatic},
	}
	forks := c.Obs.ForkN(len(cells))
	reports, err := parallel.Map(context.Background(), len(cells), c.Jobs, func(_ context.Context, i int) (*sched.Report, error) {
		plan := faults.Plan{}
		if cells[i].Plan == "fault-storm" {
			plan = storm
		}
		return runOne(plan, cells[i].Policy, forks[i])
	})
	if err != nil {
		return nil, err
	}
	c.Obs.AbsorbAll(forks)
	for i := range cells {
		cells[i].Report = reports[i]
	}
	return cells, nil
}

// RenderSchedule runs and prints the scheduling campaign, closing with CHECK
// lines asserting the acceptance claims: under both plans the model-driven
// policy spends less total energy than the max-frequency and static
// baselines at an equal-or-lower SLO miss rate while completing at least as
// many jobs, and the storm actually exercised the robustness machinery. It
// returns the number of failed checks.
func (c Config) RenderSchedule(w io.Writer) (int, error) {
	runs, err := c.Schedule()
	if err != nil {
		return 0, err
	}
	fmt.Fprintln(w, "== deadline-aware scheduling: model-driven frequency policy vs baselines (4x V100) ==")
	byPlan := map[string]map[sched.Policy]*sched.Report{}
	for _, r := range runs {
		if byPlan[r.Plan] == nil {
			byPlan[r.Plan] = map[sched.Policy]*sched.Report{}
		}
		byPlan[r.Plan][r.Policy] = r.Report
	}
	failed := 0
	check := func(ok bool, format string, args ...any) {
		verdict := "CHECK ok:   "
		if !ok {
			verdict = "CHECK FAIL: "
			failed++
		}
		fmt.Fprintf(w, verdict+format+"\n", args...)
	}
	for _, plan := range []string{"fault-free", "fault-storm"} {
		fmt.Fprintf(w, "\n-- plan: %s --\n", plan)
		for _, policy := range []sched.Policy{sched.PolicyModel, sched.PolicyMaxFreq, sched.PolicyStatic} {
			r := byPlan[plan][policy]
			fmt.Fprintf(w, "[%s]\n", policy)
			if err := r.WriteText(w); err != nil {
				return failed, err
			}
		}
		model := byPlan[plan][sched.PolicyModel]
		for _, base := range []sched.Policy{sched.PolicyMaxFreq, sched.PolicyStatic} {
			b := byPlan[plan][base]
			check(model.TotalEnergyJ < b.TotalEnergyJ,
				"%s: model total energy %.1f J < %s %.1f J (%.1f%% saved)",
				plan, model.TotalEnergyJ, base, b.TotalEnergyJ,
				100*(1-model.TotalEnergyJ/b.TotalEnergyJ))
			check(model.MissRate() <= b.MissRate(),
				"%s: model miss rate %.2f%% <= %s %.2f%%",
				plan, 100*model.MissRate(), base, 100*b.MissRate())
			check(model.Completed >= b.Completed,
				"%s: model completed %d >= %s %d",
				plan, model.Completed, base, b.Completed)
		}
	}
	storm := byPlan["fault-storm"][sched.PolicyModel]
	check(storm.Failovers >= 1 && storm.SurvivingDevices == storm.Devices-1,
		"fault-storm: device loss survived (failovers=%d, surviving=%d/%d)",
		storm.Failovers, storm.SurvivingDevices, storm.Devices)
	check(storm.ThrottledRuns > 0 && storm.Retunes > 0,
		"fault-storm: throttle observed and re-tuned (throttled-runs=%d, retunes=%d)",
		storm.ThrottledRuns, storm.Retunes)
	check(storm.Retries > 0,
		"fault-storm: transient faults retried (retries=%d)", storm.Retries)
	return failed, nil
}
