package experiments

import (
	"encoding/csv"
	"fmt"
	"io"
	"strconv"

	"dsenergy/internal/kernels"
	"dsenergy/internal/pareto"
)

// RenderFigure prints a characterization figure as labelled series tables,
// one row per frequency configuration — the data behind the paper's scatter
// plots, with Pareto-front members marked.
func RenderFigure(w io.Writer, f Figure) {
	fmt.Fprintf(w, "== %s: %s ==\n", f.ID, f.Title)
	for _, n := range f.Notes {
		fmt.Fprintf(w, "   note: %s\n", n)
	}
	for _, s := range f.Series {
		fmt.Fprintf(w, "-- %s [%s] --\n", s.Label, s.Device)
		fmt.Fprintf(w, "%10s %12s %12s %10s %10s %7s\n",
			"freq(MHz)", "time(s)", "energy(J)", "speedup", "normE", "pareto")
		for _, p := range s.Points {
			mark := ""
			if p.OnPareto {
				mark = "*"
			}
			fmt.Fprintf(w, "%10d %12.6f %12.3f %10.4f %10.4f %7s\n",
				p.FreqMHz, p.TimeS, p.EnergyJ, p.Speedup, p.NormEnergy, mark)
		}
		fmt.Fprintf(w, "   pareto-optimal frequencies: %v\n", s.ParetoFreqs)
	}
}

// RenderFigureCSV writes a characterization figure in long CSV format for
// external plotting: one row per (series, frequency) with raw and normalized
// values and the Pareto marker.
func RenderFigureCSV(w io.Writer, f Figure) error {
	cw := csv.NewWriter(w)
	header := []string{"figure", "series", "device", "freq_mhz", "time_s", "energy_j",
		"speedup", "norm_energy", "pareto"}
	if err := cw.Write(header); err != nil {
		return err
	}
	for _, s := range f.Series {
		for _, p := range s.Points {
			row := []string{
				f.ID, s.Label, s.Device,
				strconv.Itoa(p.FreqMHz),
				strconv.FormatFloat(p.TimeS, 'g', -1, 64),
				strconv.FormatFloat(p.EnergyJ, 'g', -1, 64),
				strconv.FormatFloat(p.Speedup, 'g', -1, 64),
				strconv.FormatFloat(p.NormEnergy, 'g', -1, 64),
				strconv.FormatBool(p.OnPareto),
			}
			if err := cw.Write(row); err != nil {
				return err
			}
		}
	}
	cw.Flush()
	return cw.Error()
}

// RenderFig13CSV writes the accuracy comparison in long CSV format: one row
// per (application, input, target, model).
func RenderFig13CSV(w io.Writer, r Fig13Result) error {
	cw := csv.NewWriter(w)
	if err := cw.Write([]string{"app", "input", "target", "model", "mape"}); err != nil {
		return err
	}
	emit := func(app string, bars []AccuracyBar) error {
		for _, b := range bars {
			rows := [][]string{
				{app, b.Label, "speedup", "domain-specific", strconv.FormatFloat(b.DSSpeedup, 'g', -1, 64)},
				{app, b.Label, "speedup", "general-purpose", strconv.FormatFloat(b.GPSpeedup, 'g', -1, 64)},
				{app, b.Label, "norm_energy", "domain-specific", strconv.FormatFloat(b.DSNormEnergy, 'g', -1, 64)},
				{app, b.Label, "norm_energy", "general-purpose", strconv.FormatFloat(b.GPNormEnergy, 'g', -1, 64)},
			}
			for _, row := range rows {
				if err := cw.Write(row); err != nil {
					return err
				}
			}
		}
		return nil
	}
	if err := emit("cronos", r.Cronos); err != nil {
		return err
	}
	if err := emit("ligen", r.LiGen); err != nil {
		return err
	}
	cw.Flush()
	return cw.Error()
}

// RenderFig13 prints the accuracy comparison as the four bar groups of
// Figure 13 plus the aggregate GP/DS error ratios.
func RenderFig13(w io.Writer, r Fig13Result) {
	panel := func(title string, bars []AccuracyBar, energy bool) {
		fmt.Fprintf(w, "-- %s --\n", title)
		fmt.Fprintf(w, "%-16s %16s %16s %8s\n", "input", "general-purpose", "domain-specific", "ratio")
		for _, b := range bars {
			dsv, gpv := b.DSSpeedup, b.GPSpeedup
			if energy {
				dsv, gpv = b.DSNormEnergy, b.GPNormEnergy
			}
			ratio := 0.0
			if dsv > 0 {
				ratio = gpv / dsv
			}
			fmt.Fprintf(w, "%-16s %16.4f %16.4f %7.1fx\n", b.Label, gpv, dsv, ratio)
		}
	}
	fmt.Fprintln(w, "== fig13: model accuracy comparison (MAPE, leave-one-input-out) ==")
	panel("a) Cronos speedup prediction error", r.Cronos, false)
	panel("b) Cronos normalized energy prediction error", r.Cronos, true)
	panel("c) LiGen speedup prediction error", r.LiGen, false)
	panel("d) LiGen normalized energy prediction error", r.LiGen, true)
	sp, en := r.MeanRatios()
	fmt.Fprintf(w, "aggregate GP/DS error ratio: speedup %.1fx, normalized energy %.1fx\n", sp, en)
}

// RenderFig14 prints the predicted-Pareto-set comparison panels.
func RenderFig14(w io.Writer, panels []Fig14Panel) {
	fmt.Fprintln(w, "== fig14: predicted Pareto sets vs true Pareto set ==")
	for _, p := range panels {
		fmt.Fprintf(w, "-- %s (%s) --\n", p.App, p.InputLabel)
		fmt.Fprintf(w, "true Pareto front (%d points):\n", len(p.TrueFront))
		renderFront(w, p.TrueFront)
		for _, m := range []struct {
			name string
			set  PredictedSet
		}{{"domain-specific", p.DS}, {"general-purpose", p.GP}} {
			fmt.Fprintf(w, "%s prediction: %d frequencies, %d exact matches, mean front distance %.4f\n",
				m.name, len(m.set.Freqs), m.set.ExactMatches, m.set.FrontDistance)
			renderFront(w, m.set.Achieved)
		}
	}
}

func renderFront(w io.Writer, pts []pareto.Point) {
	for _, p := range pts {
		fmt.Fprintf(w, "    %5d MHz  speedup %.4f  normE %.4f\n", p.FreqMHz, p.Speedup, p.NormEnergy)
	}
}

// RenderAlgorithmComparison prints the §5.2.1 regressor selection table.
func RenderAlgorithmComparison(w io.Writer, cmps []AlgorithmComparison) {
	fmt.Fprintln(w, "== regressor comparison (mean leave-one-input-out MAPE) ==")
	for _, c := range cmps {
		fmt.Fprintf(w, "-- %s --\n", c.App)
		fmt.Fprintf(w, "%-10s %14s %14s\n", "algorithm", "speedup MAPE", "energy MAPE")
		for _, s := range c.Scores {
			fmt.Fprintf(w, "%-10s %14.4f %14.4f\n", s.Spec.Algorithm, s.MeanSpeedupMAPE, s.MeanNormEnergyMAPE)
		}
	}
}

// RenderGridSearch prints the random-forest hyper-parameter surfaces.
func RenderGridSearch(w io.Writer, results []GridSearchResult) {
	fmt.Fprintln(w, "== random-forest grid search (k-fold MAPE; 0 = scikit-learn default) ==")
	for _, r := range results {
		fmt.Fprintf(w, "-- %s / %s --\n", r.App, r.Target)
		for _, p := range r.Points {
			fmt.Fprintf(w, "   max_depth=%-4g n_estimators=%-4g max_features=%-4g  MAPE %.4f\n",
				p.Params["max_depth"], p.Params["n_estimators"], p.Params["max_features"], p.MAPE)
		}
	}
}

// RenderTable1 prints the general-purpose model's static features (Table 1).
func RenderTable1(w io.Writer) {
	fmt.Fprintln(w, "== table1: general-purpose model features ==")
	desc := map[string]string{
		"f_int_add":    "integer additions and subtractions",
		"f_int_mul":    "integer multiplications",
		"f_int_div":    "integer divisions",
		"f_int_bw":     "integer bitwise operations",
		"f_float_add":  "floating point additions and subtractions",
		"f_float_mul":  "floating point multiplications",
		"f_float_div":  "floating point divisions",
		"f_sf":         "special functions",
		"f_gl_access":  "global memory accesses",
		"f_loc_access": "local memory accesses",
	}
	for _, name := range kernels.FeatureNames {
		fmt.Fprintf(w, "%-14s %s\n", name, desc[name])
	}
}

// RenderTable2 prints the domain-specific feature sets (Table 2).
func RenderTable2(w io.Writer) {
	fmt.Fprintln(w, "== table2: domain-specific model features ==")
	fmt.Fprintf(w, "%-10s %s\n", "Cronos", "f_grid_x, f_grid_y, f_grid_z")
	fmt.Fprintf(w, "%-10s %s\n", "LiGen", "f_ligands, f_fragments, f_atoms")
}
