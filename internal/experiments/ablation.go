package experiments

import (
	"context"
	"fmt"
	"io"

	"dsenergy/internal/cluster"
	"dsenergy/internal/core"
	"dsenergy/internal/gpmodel"
	"dsenergy/internal/gpusim"
	"dsenergy/internal/kernels"
	"dsenergy/internal/ligen"
	"dsenergy/internal/ml"
	"dsenergy/internal/obs"
	"dsenergy/internal/parallel"
	"dsenergy/internal/synergy"
	"dsenergy/internal/tuner"
)

// Ablation results quantify the design choices DESIGN.md §5 calls out.

// AblationRooflineResult compares the full roofline execution model against
// a compute-only variant (memory roof removed by inflating bandwidth): the
// compute-only model cannot produce the memory-bound plateau that makes
// Cronos down-clocking free.
type AblationRooflineResult struct {
	// Speedup at f_max relative to the default clock for the large Cronos
	// grid under each execution model.
	RooflineSpeedup    float64
	ComputeOnlySpeedup float64
	// Energy saving (fraction) when down-clocking to ~60% of the default.
	RooflineSaving    float64
	ComputeOnlySaving float64
}

// AblationRoofline runs the comparison on the large Cronos grid.
func (c Config) AblationRoofline() (AblationRooflineResult, error) {
	w, err := c.cronosWorkload([3]int{160, 64, 64})
	if err != nil {
		return AblationRooflineResult{}, err
	}
	eval := func(spec gpusim.Spec) (speedup, saving float64, err error) {
		dev, err := gpusim.New(spec, c.Seed)
		if err != nil {
			return 0, 0, err
		}
		dev.SetObserver(c.Obs)
		def := spec.BaselineFreqMHz()
		low := spec.NearestFreqMHz(def * 6 / 10)
		// One batched curve per kernel instead of three single-frequency
		// passes; values are bit-identical to per-frequency AnalyticOn.
		ts, es := w.AnalyticCurveOn(dev, []int{def, spec.FMaxMHz(), low})
		return ts[0] / ts[1], 1 - es[2]/es[0], nil
	}
	full := gpusim.V100Spec()
	computeOnly := gpusim.V100Spec()
	computeOnly.PeakBWGBs *= 1e6 // memory roof never binds
	var r AblationRooflineResult
	if r.RooflineSpeedup, r.RooflineSaving, err = eval(full); err != nil {
		return AblationRooflineResult{}, err
	}
	if r.ComputeOnlySpeedup, r.ComputeOnlySaving, err = eval(computeOnly); err != nil {
		return AblationRooflineResult{}, err
	}
	return r, nil
}

// AblationFeaturesResult isolates the paper's central design choice: giving
// the model the input features. The "static-only" variant trains the same
// pipeline with a constant feature vector, so it degenerates to one curve
// for all inputs — the general-purpose model's failure mode.
type AblationFeaturesResult struct {
	WithInputsMeanMAPE float64 // mean of speedup+energy MAPE over inputs
	StaticOnlyMeanMAPE float64
}

// AblationFeatures runs leave-one-input-out on the LiGen dataset with and
// without input features. The protocol retrains two forests per input, so
// large configurations are capped at 24 inputs (a deterministic subset) —
// the with/without contrast is what matters, and both arms see the same cap.
func (c Config) AblationFeatures() (AblationFeaturesResult, error) {
	if len(c.LiGenInputs) > 24 {
		thinned := make([]ligen.Input, 0, 24)
		step := len(c.LiGenInputs) / 24
		for i := 0; i < len(c.LiGenInputs) && len(thinned) < 24; i += step {
			thinned = append(thinned, c.LiGenInputs[i])
		}
		c.LiGenInputs = thinned
	}
	p, err := c.platform()
	if err != nil {
		return AblationFeaturesResult{}, err
	}
	q := p.Queues()[0]
	ds, _, err := c.BuildLiGenDataset(q)
	if err != nil {
		return AblationFeaturesResult{}, err
	}
	withAccs, err := core.LeaveOneInputOutParallel(ds, c.forestSpec(), c.Seed+11, c.Jobs)
	if err != nil {
		return AblationFeaturesResult{}, err
	}

	// Static-only: same samples, feature vector forced constant, but the
	// held-out grouping still follows the true inputs so the evaluation
	// protocol is identical. Training on the blinded dataset and scoring
	// against the true per-input curves measures what a model without
	// input features can express.
	var r AblationFeaturesResult
	for _, a := range withAccs {
		r.WithInputsMeanMAPE += (a.SpeedupMAPE + a.NormEnergyMAPE) / 2
	}
	r.WithInputsMeanMAPE /= float64(len(withAccs))

	// Each held-out input retrains a blinded forest — independent folds,
	// fanned out on the config's worker pool and summed in input order.
	inputs := ds.Inputs()
	staticMAPEs, err := parallel.Map(context.Background(), len(inputs), c.Jobs, func(_ context.Context, i int) (float64, error) {
		held := inputs[i]
		blind := blindDataset(ds, held)
		m, err := core.TrainNormalized(blind, c.forestSpec(), c.Seed+12)
		if err != nil {
			return 0, err
		}
		// Score the blinded model's single curve against this input's truth.
		truth, err := ds.TrueCurves(held)
		if err != nil {
			return 0, err
		}
		freqs := make([]int, len(truth))
		for i, t := range truth {
			freqs[i] = t.FreqMHz
		}
		pred := m.PredictCurves(make([]float64, len(held)), freqs)
		var ts, tn, ps, pn []float64
		for i := range truth {
			ts = append(ts, truth[i].Speedup)
			tn = append(tn, truth[i].NormEnergy)
			ps = append(ps, pred[i].Speedup)
			pn = append(pn, pred[i].NormEnergy)
		}
		return (ml.MAPE(ts, ps) + ml.MAPE(tn, pn)) / 2, nil
	})
	if err != nil {
		return AblationFeaturesResult{}, err
	}
	var staticSum float64
	for _, m := range staticMAPEs {
		staticSum += m
	}
	r.StaticOnlyMeanMAPE = staticSum / float64(len(inputs))
	return r, nil
}

// blindDataset drops the held-out input and zeroes every feature vector.
func blindDataset(ds *core.Dataset, held []float64) *core.Dataset {
	key := core.FeatureKey(held)
	blind := &core.Dataset{
		Schema:          ds.Schema,
		Device:          ds.Device,
		BaselineFreqMHz: ds.BaselineFreqMHz,
	}
	for _, s := range ds.Samples {
		if core.FeatureKey(s.Features) == key {
			continue
		}
		blind.Samples = append(blind.Samples, core.Sample{
			Features: make([]float64, len(s.Features)),
			FreqMHz:  s.FreqMHz,
			TimeS:    s.TimeS,
			EnergyJ:  s.EnergyJ,
		})
	}
	return blind
}

// AblationNoiseResult quantifies the paper's five-repetition protocol.
type AblationNoiseResult struct {
	Reps1MeanMAPE float64
	Reps5MeanMAPE float64
}

// AblationNoise compares domain-specific accuracy with 1 vs 5 measurement
// repetitions on the Cronos dataset.
func (c Config) AblationNoise() (AblationNoiseResult, error) {
	run := func(reps int, o *obs.Observer) (float64, error) {
		cfg := c
		cfg.Reps = reps
		cfg.Obs = o
		p, err := cfg.platform()
		if err != nil {
			return 0, err
		}
		ds, _, err := cfg.BuildCronosDataset(p.Queues()[0])
		if err != nil {
			return 0, err
		}
		accs, err := core.LeaveOneInputOut(ds, cfg.forestSpec(), cfg.Seed+13)
		if err != nil {
			return 0, err
		}
		var sum float64
		for _, a := range accs {
			sum += (a.SpeedupMAPE + a.NormEnergyMAPE) / 2
		}
		return sum / float64(len(accs)), nil
	}
	// The two arms build independent platforms from the same seed — run them
	// concurrently on the config's pool, each on its own observer fork.
	repCounts := []int{1, 5}
	forks := c.Obs.ForkN(len(repCounts))
	mapes, err := parallel.Map(context.Background(), len(repCounts), c.Jobs, func(_ context.Context, i int) (float64, error) {
		return run(repCounts[i], forks[i])
	})
	if err != nil {
		return AblationNoiseResult{}, err
	}
	c.Obs.AbsorbAll(forks)
	return AblationNoiseResult{Reps1MeanMAPE: mapes[0], Reps5MeanMAPE: mapes[1]}, nil
}

// AblationBatchingResult probes the LiGen kernel-batching design: how the
// per-launch ligand batch influences the energy behaviour of large inputs
// (§3.2.2 discusses utilization effects of packing ligands per kernel).
type AblationBatchingResult struct {
	// Rows pair a batch size with the large-input energy saving achievable
	// by down-clocking 25% below the default.
	BatchSizes []int
	Savings    []float64
}

// AblationBatching sweeps the LiGen launch batch size.
func (c Config) AblationBatching() (AblationBatchingResult, error) {
	dev, err := gpusim.New(gpusim.V100Spec(), c.Seed)
	if err != nil {
		return AblationBatchingResult{}, err
	}
	dev.SetObserver(c.Obs)
	spec := dev.Spec()
	def := spec.BaselineFreqMHz()
	low := spec.NearestFreqMHz(def * 3 / 4)
	batches := []int{256, 1024, 2048, 8192}
	savings, err := parallel.Map(context.Background(), len(batches), c.Jobs, func(_ context.Context, i int) (float64, error) {
		w, err := ligen.NewWorkload(ligen.Input{Ligands: 10000, Atoms: 89, Fragments: 20})
		if err != nil {
			return 0, err
		}
		w.Params.NumRestart = ligen.DefaultParams().NumRestart
		wb := w
		wb.BatchOverride = batches[i]
		_, es := wb.AnalyticCurveOn(dev, []int{def, low})
		return 1 - es[1]/es[0], nil
	})
	if err != nil {
		return AblationBatchingResult{}, err
	}
	return AblationBatchingResult{BatchSizes: batches, Savings: savings}, nil
}

// AblationBaselinesResult compares three model families on the Cronos
// dataset: the domain-specific forest, the regression-based general-purpose
// model (Fan et al.), and the clustering-based general-purpose model (Wu et
// al., the related-work alternative). Mean of speedup+energy MAPE across
// inputs.
type AblationBaselinesResult struct {
	DomainSpecificMAPE float64
	GPRegressionMAPE   float64
	GPClusteredMAPE    float64
}

// AblationBaselines runs the three-way comparison.
func (c Config) AblationBaselines() (AblationBaselinesResult, error) {
	p, err := c.platform()
	if err != nil {
		return AblationBaselinesResult{}, err
	}
	q := p.Queues()[0]
	ds, wls, err := c.BuildCronosDataset(q)
	if err != nil {
		return AblationBaselinesResult{}, err
	}
	var r AblationBaselinesResult

	dsAccs, err := core.LeaveOneInputOutParallel(ds, c.forestSpec(), c.Seed+21, c.Jobs)
	if err != nil {
		return AblationBaselinesResult{}, err
	}
	for _, a := range dsAccs {
		r.DomainSpecificMAPE += (a.SpeedupMAPE + a.NormEnergyMAPE) / 2
	}
	r.DomainSpecificMAPE /= float64(len(dsAccs))

	gp, err := c.TrainGP(q)
	if err != nil {
		return AblationBaselinesResult{}, err
	}
	cl, err := gpmodel.TrainClustered(q, gpmodel.TrainConfig{
		Freqs: c.sweepFreqs(q.Spec()), Reps: c.Reps, Seed: c.Seed + 22,
	}, 8)
	if err != nil {
		return AblationBaselinesResult{}, err
	}

	inputs := ds.Inputs()
	for i, input := range inputs {
		w := wls[i].Workload.(interface{ Profiles() []kernels.Profile })
		mix := gpmodel.AppStaticFeatures(w.Profiles())

		g, err := gpCurveMAPE(ds, gp, mix, input)
		if err != nil {
			return AblationBaselinesResult{}, err
		}
		r.GPRegressionMAPE += (g.SpeedupMAPE + g.NormEnergyMAPE) / 2

		truth, err := ds.TrueCurves(input)
		if err != nil {
			return AblationBaselinesResult{}, err
		}
		freqs := make([]int, len(truth))
		for j, t := range truth {
			freqs[j] = t.FreqMHz
		}
		clCurves, err := cl.PredictCurves(mix, freqs)
		if err != nil {
			return AblationBaselinesResult{}, err
		}
		conv := make([]core.CurvePoint, len(clCurves))
		for j, p := range clCurves {
			conv[j] = core.CurvePoint{FreqMHz: p.FreqMHz, Speedup: p.Speedup, NormEnergy: p.NormEnergy}
		}
		ca, err := core.CurveMAPE(ds, input, conv)
		if err != nil {
			return AblationBaselinesResult{}, err
		}
		r.GPClusteredMAPE += (ca.SpeedupMAPE + ca.NormEnergyMAPE) / 2
	}
	r.GPRegressionMAPE /= float64(len(inputs))
	r.GPClusteredMAPE /= float64(len(inputs))
	return r, nil
}

// PerKernelResult measures the paper's §7 future work: per-kernel frequency
// scaling on the large Cronos grid under a tight performance constraint.
type PerKernelResult struct {
	Plan    map[string]int // selected clock per kernel
	Outcome tuner.Outcome
}

// FutureWorkPerKernel trains per-kernel models on the Cronos ladder and
// executes the per-kernel plan for the 160x64x64 input.
func (c Config) FutureWorkPerKernel() (PerKernelResult, error) {
	p, err := c.platform()
	if err != nil {
		return PerKernelResult{}, err
	}
	q := p.Queues()[0]
	var wls []core.FeaturedWorkload
	for _, g := range PaperGrids()[1:] { // 20x8x8 and up
		w, err := c.cronosWorkload(g)
		if err != nil {
			return PerKernelResult{}, err
		}
		wls = append(wls, core.FeaturedWorkload{
			Workload: w,
			Features: []float64{float64(g[0]), float64(g[1]), float64(g[2])},
		})
	}
	pk, err := tuner.TrainPerKernel(q, core.CronosSchema(), wls,
		core.BuildConfig{Freqs: c.sweepFreqs(q.Spec()), Reps: c.Reps},
		c.forestSpec(), tuner.PerfConstraint{MinSpeedup: 0.99}, c.Seed+31)
	if err != nil {
		return PerKernelResult{}, err
	}
	plan, err := pk.PlanFor([]float64{160, 64, 64})
	if err != nil {
		return PerKernelResult{}, err
	}
	w, err := c.cronosWorkload([3]int{160, 64, 64})
	if err != nil {
		return PerKernelResult{}, err
	}
	out, err := pk.Execute(q, w, plan, c.Reps)
	if err != nil {
		return PerKernelResult{}, err
	}
	return PerKernelResult{Plan: plan.FreqByKernel, Outcome: out}, nil
}

// ScalingRow is one point of the strong-scaling study.
type ScalingRow struct {
	Devices    int
	TimeS      float64
	EnergyJ    float64
	Efficiency float64
}

// StrongScaling measures distributed strong scaling for both applications
// (LiGen screening shards, Cronos z-slab decomposition with halo exchange)
// on V100 clusters of growing size — the Celerity/multi-node context the
// paper's applications come from.
func (c Config) StrongScaling(devices []int) (ligenRows, cronosRows []ScalingRow, err error) {
	in := ligen.Input{Ligands: 16384, Atoms: 63, Fragments: 8}
	grid := [3]int{160, 64, 64}

	// Every cluster size builds its own identically seeded cluster, so the
	// points are independent and fan out on the config's pool; efficiencies
	// need the single-device baseline and are derived afterwards, in order.
	type scalePoint struct{ ligen, cronos cluster.Result }
	forks := c.Obs.ForkN(len(devices))
	points, err := parallel.Map(context.Background(), len(devices), c.Jobs, func(_ context.Context, i int) (scalePoint, error) {
		cl, err := cluster.New(c.Seed, gpusim.V100Spec(), devices[i], cluster.DefaultInterconnect())
		if err != nil {
			return scalePoint{}, err
		}
		cl.SetObserver(forks[i])
		lr, err := cl.ScreenLiGen(in)
		if err != nil {
			return scalePoint{}, err
		}
		cr, err := cl.RunCronos(grid[0], grid[1], grid[2], c.CronosSteps)
		if err != nil {
			return scalePoint{}, err
		}
		return scalePoint{ligen: lr, cronos: cr}, nil
	})
	if err != nil {
		return nil, nil, err
	}
	c.Obs.AbsorbAll(forks)
	var ligenBase, cronosBase float64
	for i, n := range devices {
		lr, cr := points[i].ligen, points[i].cronos
		if n == devices[0] && n == 1 {
			ligenBase, cronosBase = lr.TimeS, cr.TimeS
		}
		lrow := ScalingRow{Devices: n, TimeS: lr.TimeS, EnergyJ: lr.EnergyJ}
		crow := ScalingRow{Devices: n, TimeS: cr.TimeS, EnergyJ: cr.EnergyJ}
		if ligenBase > 0 {
			lrow.Efficiency = lr.Efficiency(ligenBase, n)
			crow.Efficiency = cr.Efficiency(cronosBase, n)
		}
		ligenRows = append(ligenRows, lrow)
		cronosRows = append(cronosRows, crow)
	}
	return ligenRows, cronosRows, nil
}

// RenderAblations runs and prints every ablation.
func (c Config) RenderAblations(w io.Writer) error {
	fmt.Fprintln(w, "== ablations ==")
	rf, err := c.AblationRoofline()
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "roofline vs compute-only (Cronos 160x64x64):\n")
	fmt.Fprintf(w, "   speedup@fmax: roofline %.3f, compute-only %.3f\n", rf.RooflineSpeedup, rf.ComputeOnlySpeedup)
	fmt.Fprintf(w, "   down-clock saving: roofline %.1f%%, compute-only %.1f%%\n",
		rf.RooflineSaving*100, rf.ComputeOnlySaving*100)

	ft, err := c.AblationFeatures()
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "input features vs static-only (LiGen): with %.4f, static-only %.4f MAPE\n",
		ft.WithInputsMeanMAPE, ft.StaticOnlyMeanMAPE)

	nz, err := c.AblationNoise()
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "measurement repetitions (Cronos): 1 rep %.4f, 5 reps %.4f MAPE\n",
		nz.Reps1MeanMAPE, nz.Reps5MeanMAPE)

	bt, err := c.AblationBatching()
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "LiGen launch batch vs down-clock saving:")
	for i := range bt.BatchSizes {
		fmt.Fprintf(w, "  %d->%.1f%%", bt.BatchSizes[i], bt.Savings[i]*100)
	}
	fmt.Fprintln(w)

	bl, err := c.AblationBaselines()
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "model families (Cronos, mean MAPE): domain-specific %.4f, GP regression %.4f, GP clustered %.4f\n",
		bl.DomainSpecificMAPE, bl.GPRegressionMAPE, bl.GPClusteredMAPE)
	return nil
}

var _ synergy.Workload = ligen.Workload{} // ablations rely on this contract
