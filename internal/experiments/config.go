// Package experiments regenerates every table and figure of the paper's
// evaluation: the multi-objective characterizations (Figures 1-10), the
// feature tables (Tables 1-2), the model-accuracy comparison (Figure 13),
// the predicted-Pareto-set comparison (Figure 14), the regressor comparison
// and grid search of §5.2.1, and the ablation studies listed in DESIGN.md.
//
// Each generator returns a typed result that the renderers print as the
// rows/series the paper plots. Everything is deterministic in the config
// seed.
package experiments

import (
	"dsenergy/internal/gpusim"
	"dsenergy/internal/ligen"
	"dsenergy/internal/obs"
	"dsenergy/internal/synergy"
)

// Config controls experiment fidelity. DefaultConfig reproduces the paper's
// protocol; QuickConfig trades sweep density and forest size for runtime and
// is what the unit tests and testing.B benchmarks use.
type Config struct {
	// Seed drives every stochastic component.
	Seed uint64
	// FreqStride subsamples the frequency band (1 = every frequency, as in
	// the paper's V100 sweep).
	FreqStride int
	// BandFrac restricts sweeps to frequencies >= BandFrac · f_max — the
	// "part of the frequency configurations" of §4.2.2; clocks below the
	// memory-latency floor are never Pareto-relevant.
	BandFrac float64
	// Reps is the repetitions per measurement (the paper uses 5).
	Reps int
	// CronosSteps is the simulated timestep count per Cronos run.
	CronosSteps int
	// Trees is the random-forest size (scikit-learn default: 100).
	Trees int
	// LiGenInputs is the dataset input grid for the LiGen models.
	LiGenInputs []ligen.Input
	// ScheduleJobs is the scheduling campaign's stream length (0 selects 96).
	ScheduleJobs int
	// ServeRequests is the serving campaign's per-shard request budget
	// (0 selects 500000; four shards make the default a two-million-request
	// load).
	ServeRequests int
	// Jobs bounds the worker goroutines of every generator (0 = GOMAXPROCS,
	// 1 = fully serial). Results are byte-identical for every value: all
	// parallelism goes through the deterministic engine in internal/parallel,
	// with per-task randomness pre-split before any worker starts.
	Jobs int
	// Obs is an optional observability sink (see internal/obs): every
	// platform, cluster and model the generators build is attached to it.
	// Nil disables instrumentation; attaching an observer never changes a
	// generator's result, and the metric/trace exports are byte-identical
	// for every Jobs value.
	Obs *obs.Observer
}

// DefaultConfig is the paper-fidelity configuration.
func DefaultConfig() Config {
	return Config{
		Seed:        2023,
		FreqStride:  1,
		BandFrac:    0.40,
		Reps:        5,
		CronosSteps: 20,
		Trees:       100,
		LiGenInputs: PaperLiGenInputs(),
	}
}

// QuickConfig is the reduced-fidelity configuration for tests and benches.
func QuickConfig() Config {
	return Config{
		Seed:        2023,
		FreqStride:  8,
		BandFrac:    0.40,
		Reps:        2,
		CronosSteps: 8,
		Trees:       25,
		LiGenInputs: QuickLiGenInputs(),
	}
}

// PaperGrids is the Cronos input ladder of §5.1.
func PaperGrids() [][3]int {
	return [][3]int{{10, 4, 4}, {20, 8, 8}, {40, 16, 16}, {80, 32, 32}, {160, 64, 64}}
}

// PaperLiGenInputs is the full experiment grid of §5.1:
// (l, a, f) ∈ {2,16,1024,4096,10000} × {31,63,71,89} × {4,8,16,20}.
// 256 ligands is added to the ladder because Figures 10 and 13 evaluate it
// even though §5.1's tuple omits it (an inconsistency in the paper).
func PaperLiGenInputs() []ligen.Input {
	var out []ligen.Input
	for _, l := range []int{2, 16, 256, 1024, 4096, 10000} {
		for _, a := range []int{31, 63, 71, 89} {
			for _, f := range []int{4, 8, 16, 20} {
				out = append(out, ligen.Input{Ligands: l, Atoms: a, Fragments: f})
			}
		}
	}
	return out
}

// QuickLiGenInputs is a 24-input subset spanning the same ranges.
func QuickLiGenInputs() []ligen.Input {
	var out []ligen.Input
	for _, l := range []int{2, 1024, 10000} {
		for _, a := range []int{31, 89} {
			for _, f := range []int{4, 8, 16, 20} {
				out = append(out, ligen.Input{Ligands: l, Atoms: a, Fragments: f})
			}
		}
	}
	return out
}

// Fig13LiGenDisplay is the 12-configuration subset Figure 13c/d displays
// (atoms x fragments x ligands).
func Fig13LiGenDisplay() []ligen.Input {
	var out []ligen.Input
	for _, a := range []int{31, 89} {
		for _, f := range []int{4, 20} {
			for _, l := range []int{256, 4096, 10000} {
				out = append(out, ligen.Input{Ligands: l, Atoms: a, Fragments: f})
			}
		}
	}
	return out
}

// Platform builds the simulated testbed (one V100, one MI100) seeded from
// the config, attached to the config's observer.
func (c Config) Platform() (*synergy.Platform, error) {
	p, err := synergy.NewPlatform(c.Seed, gpusim.V100Spec(), gpusim.MI100Spec())
	if err != nil {
		return nil, err
	}
	p.SetObserver(c.Obs)
	return p, nil
}

// platform is the internal alias used by the generators.
func (c Config) platform() (*synergy.Platform, error) { return c.Platform() }

// sweepFreqs returns the frequency sweep for a device under this config,
// always including the baseline frequency.
func (c Config) sweepFreqs(spec gpusim.Spec) []int {
	band := spec.FreqsAbove(c.BandFrac)
	stride := c.FreqStride
	if stride < 1 {
		stride = 1
	}
	var out []int
	for i := 0; i < len(band); i += stride {
		out = append(out, band[i])
	}
	if out[len(out)-1] != band[len(band)-1] {
		out = append(out, band[len(band)-1])
	}
	base := spec.BaselineFreqMHz()
	for _, f := range out {
		if f == base {
			return out
		}
	}
	// Insert the baseline in sorted position.
	for i, f := range out {
		if f > base {
			return append(out[:i:i], append([]int{base}, out[i:]...)...)
		}
	}
	return append(out, base)
}
