// Package sched is a deterministic, discrete-event, deadline-aware
// multi-tenant scheduler over the resilient cluster. It closes the loop the
// paper leaves open: the trained domain-specific models (internal/core)
// predict time and energy per frequency, and the scheduler spends those
// predictions online — per job, against a deadline, on a cluster where
// devices die, throttle and reject clock sets (internal/faults).
//
// The design follows Ilager et al. (arXiv:2004.08177): jobs arrive with
// deadlines, the learned energy model picks the per-job GPU frequency, and
// the policy is evaluated against max-frequency and static-clock baselines
// on deadline misses and total energy. The robustness machinery is the
// point:
//
//   - admission control rejects jobs whose predicted completion cannot meet
//     the deadline on any surviving device, and bounds each tenant's queue
//     (backpressure instead of unbounded growth);
//   - dispatch is earliest-deadline-first; when no candidate clock meets the
//     deadline the job escalates to the fastest effective clock, and a job
//     that would miss on a throttled or backlogged device defers to a device
//     predicted to meet it (the migration path);
//   - transient kernel faults retry with capped exponential backoff under a
//     per-job retry budget and a busy-time timeout budget;
//   - a permanent device loss marks the device dead, requeues the in-flight
//     job to the survivors and re-admits all queued work against the reduced
//     capacity (graceful degradation, down to the last device);
//   - a thermal-throttle window observed on a device (EffFreqMHz below the
//     commanded clock) re-tunes later decisions on that device to the capped
//     speed until a run at full speed clears the cap.
//
// Everything runs on simulated time in one goroutine: events are ordered by
// (time, sequence), every stochastic draw comes from the per-device seeded
// streams the queues already own, and the SLO report is byte-identical
// across runs and worker counts.
package sched

import (
	"container/heap"
	"fmt"
	"slices"
	"strconv"

	"dsenergy/internal/cluster"
	"dsenergy/internal/faults"
	"dsenergy/internal/obs"
	"dsenergy/internal/synergy"
)

// Config parameterizes a scheduler run. Zero fields select the documented
// defaults.
type Config struct {
	// Policy selects the frequency-choice strategy (default PolicyModel).
	Policy Policy
	// StaticFreqMHz is PolicyStatic's pinned clock (default the first
	// device's baseline frequency).
	StaticFreqMHz int
	// Freqs are the candidate clocks, ascending (required, non-empty; every
	// entry must be supported by the devices). The models are consulted at
	// exactly these clocks.
	Freqs []int
	// Models are the trained per-application predictors (required — every
	// policy shares the model-driven admission control).
	Models *ModelSet
	// MaxQueuedPerTenant bounds each tenant's waiting queue; arrivals over
	// the bound are rejected (default 16).
	MaxQueuedPerTenant int
	// MaxRetries is the per-job transient-fault retry budget (default 3).
	MaxRetries int
	// BackoffBaseS/BackoffFactor/BackoffCapS shape the capped exponential
	// retry backoff (defaults 0.01 s, 2, 0.1 s). Backoff occupies the device
	// at idle power.
	BackoffBaseS  float64
	BackoffFactor float64
	BackoffCapS   float64
	// TimeoutFactor caps a job's cumulative busy time (attempts + backoff)
	// at TimeoutFactor x its nominal f_max time; exceeding it abandons the
	// job (default 16).
	TimeoutFactor float64
	// SlackGuardFrac is the fraction of a job's remaining slack PolicyModel
	// reserves as a guard band when choosing a clock: the predicted
	// completion must land that far before the deadline, absorbing
	// prediction error and retry backoff (default 0.25; negative disables
	// the guard). Baseline policies ignore it — their clock is fixed.
	SlackGuardFrac float64
	// QueueGuardFrac widens PolicyModel's guard band by this much per job
	// waiting in the ready queue at decision time (default 0.05; negative
	// disables). A slow clock under backlog delays every queued job behind
	// it, so the policy races toward the fastest clock exactly when work is
	// waiting and spends its slack on down-clocking only into spare
	// capacity. The combined guard saturates below 1.
	QueueGuardFrac float64
	// MaxStretch bounds how far PolicyModel may stretch a job past its
	// fastest effective clock: candidates predicted slower than MaxStretch
	// x the fastest candidate's time are excluded (default 1.6; negative
	// disables; values in (0,1) are rejected). Dispatch is non-preemptive,
	// so an unbounded down-clock turns one cheap job into a long blockade
	// for whatever arrives behind it.
	MaxStretch float64
	// CapProbeEvery makes every Nth run commanded at or below a device's
	// observed thermal cap probe at the fastest candidate clock instead
	// (default 8; negative disables). A policy that keeps commanding under
	// the cap would otherwise never observe the throttle window ending and
	// would re-tune conservatively forever; policies that command above the
	// cap probe implicitly and never trigger this.
	CapProbeEvery int
	// Obs is an optional observability sink: scheduler counters and one
	// span per job outcome, all on simulated time.
	Obs *obs.Observer
}

func (c Config) withDefaults(baselineMHz int) Config {
	if c.StaticFreqMHz == 0 {
		c.StaticFreqMHz = baselineMHz
	}
	if c.MaxQueuedPerTenant == 0 {
		c.MaxQueuedPerTenant = 16
	}
	if c.MaxRetries == 0 {
		c.MaxRetries = 3
	}
	if c.BackoffBaseS == 0 {
		c.BackoffBaseS = 0.01
	}
	if c.BackoffFactor == 0 {
		c.BackoffFactor = 2
	}
	if c.BackoffCapS == 0 {
		c.BackoffCapS = 0.1
	}
	if c.TimeoutFactor == 0 {
		c.TimeoutFactor = 16
	}
	if c.SlackGuardFrac == 0 {
		c.SlackGuardFrac = 0.25
	}
	if c.SlackGuardFrac < 0 {
		c.SlackGuardFrac = 0
	}
	if c.QueueGuardFrac == 0 {
		c.QueueGuardFrac = 0.05
	}
	if c.QueueGuardFrac < 0 {
		c.QueueGuardFrac = 0
	}
	if c.MaxStretch == 0 {
		c.MaxStretch = 1.6
	}
	if c.MaxStretch < 0 {
		c.MaxStretch = 0
	}
	if c.CapProbeEvery == 0 {
		c.CapProbeEvery = 8
	}
	if c.CapProbeEvery < 0 {
		c.CapProbeEvery = 0
	}
	return c
}

// event kinds of the discrete-event loop.
const (
	evArrival = iota
	evFree
	evRequeue
)

// event is one entry of the simulated-time event heap.
type event struct {
	timeS float64
	seq   int // insertion order, the deterministic tie-break
	kind  int
	job   int // job index (evArrival, evRequeue)
	dev   int // device index (evFree)
}

// eventHeap orders events by (time, seq).
type eventHeap []event

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	if h[i].timeS < h[j].timeS {
		return true
	}
	if h[j].timeS < h[i].timeS {
		return false
	}
	return h[i].seq < h[j].seq
}
func (h eventHeap) Swap(i, j int)               { h[i], h[j] = h[j], h[i] }
func (h *eventHeap) Push(x any)                 { *h = append(*h, x.(event)) }
func (h *eventHeap) Pop() any                   { old := *h; n := len(old); x := old[n-1]; *h = old[:n-1]; return x }
func (h *eventHeap) push(e event, s *Scheduler) { e.seq = s.seq; s.seq++; heap.Push(h, e) }

// jobState tracks one admitted job through the scheduler.
type jobState struct {
	job      Job
	curve    []prediction
	retries  int     // transient retries consumed (per-job budget)
	busyS    float64 // cumulative busy time across attempts and devices
	requeues int     // failover requeues survived
	deferred bool    // declined at least one idle device on deadline grounds
	lastDev  int     // device of the last attempt (-1 before the first)
}

// schedObsHandles are the scheduler's pre-resolved metric handles; the zero
// value disables every increment.
type schedObsHandles struct {
	admitted  *obs.Counter
	rejected  *obs.Counter
	completed *obs.Counter
	missed    *obs.Counter
	failed    *obs.Counter
	shed      *obs.Counter
	retries   *obs.Counter
	failovers *obs.Counter
	requeues  *obs.Counter
	retunes   *obs.Counter
	escalated *obs.Counter
}

// Scheduler executes job streams on a resilient cluster. Build one per
// campaign with New; Run consumes it (the underlying queues accumulate
// state, so a fresh campaign needs a fresh cluster).
type Scheduler struct {
	cfg    Config
	cl     *cluster.Cluster
	queues []*synergy.Queue
	idleW  float64

	seq    int
	events eventHeap
	ready  []*jobState // EDF order: (deadline, job ID)

	// pendingRequeue holds jobs knocked off a dead device, consumed FIFO by
	// their evRequeue events (events and pushes share one order).
	pendingRequeue []*jobState

	freeAtS    []float64 // per-device time of last scheduled completion
	busyDev    []bool    // device currently executing
	busyS      []float64 // per-device occupied time (attempts + backoff)
	deathS     []float64 // per-device death time (dead devices only)
	capMHz     []int     // observed thermal cap (0 = none)
	cappedRuns []int     // consecutive runs commanded at/below the cap

	queuedByTenant map[string]int
	rep            *Report
	obsv           *obs.Observer
	om             schedObsHandles
}

// New builds a scheduler over the cluster. The cluster's fault plan (if any)
// must already be attached via SetFaultPlan.
func New(cl *cluster.Cluster, cfg Config) (*Scheduler, error) {
	queues := cl.Queues()
	if len(queues) == 0 {
		return nil, fmt.Errorf("sched: empty cluster")
	}
	if len(cfg.Freqs) == 0 {
		return nil, fmt.Errorf("sched: no candidate frequencies")
	}
	if !slices.IsSorted(cfg.Freqs) {
		return nil, fmt.Errorf("sched: candidate frequencies must be ascending")
	}
	if cfg.Models == nil {
		return nil, fmt.Errorf("sched: Models is required (admission control is model-driven)")
	}
	spec := queues[0].Spec()
	for _, f := range cfg.Freqs {
		if !spec.HasFreq(f) {
			return nil, fmt.Errorf("sched: device %s does not support %d MHz", spec.Name, f)
		}
	}
	cfg = cfg.withDefaults(queues[0].BaselineFreqMHz())
	if cfg.Policy == PolicyStatic && !slices.Contains(cfg.Freqs, cfg.StaticFreqMHz) {
		return nil, fmt.Errorf("sched: static clock %d MHz is not a candidate frequency", cfg.StaticFreqMHz)
	}
	if cfg.SlackGuardFrac >= 1 {
		return nil, fmt.Errorf("sched: SlackGuardFrac %g must be below 1", cfg.SlackGuardFrac)
	}
	if cfg.MaxStretch > 0 && cfg.MaxStretch < 1 {
		return nil, fmt.Errorf("sched: MaxStretch %g must be at least 1 (or negative to disable)", cfg.MaxStretch)
	}
	s := &Scheduler{
		cfg:            cfg,
		cl:             cl,
		queues:         queues,
		idleW:          spec.IdleW,
		freeAtS:        make([]float64, len(queues)),
		busyDev:        make([]bool, len(queues)),
		busyS:          make([]float64, len(queues)),
		deathS:         make([]float64, len(queues)),
		capMHz:         make([]int, len(queues)),
		cappedRuns:     make([]int, len(queues)),
		queuedByTenant: make(map[string]int),
		obsv:           cfg.Obs,
	}
	if cfg.Obs != nil {
		m := cfg.Obs.Metrics()
		pl := obs.L("policy", cfg.Policy.String())
		s.om = schedObsHandles{
			admitted:  m.Counter("sched_admitted_total", pl),
			rejected:  m.Counter("sched_rejected_total", pl),
			completed: m.Counter("sched_completed_total", pl),
			missed:    m.Counter("sched_deadline_miss_total", pl),
			failed:    m.Counter("sched_failed_total", pl),
			shed:      m.Counter("sched_shed_total", pl),
			retries:   m.Counter("sched_retries_total", pl),
			failovers: m.Counter("sched_failovers_total", pl),
			requeues:  m.Counter("sched_requeued_total", pl),
			retunes:   m.Counter("sched_throttle_retunes_total", pl),
			escalated: m.Counter("sched_escalations_total", pl),
		}
	}
	return s, nil
}

// guard is PolicyModel's effective slack-guard fraction when `waiting`
// other jobs sit in the ready queue.
func (s *Scheduler) guard(waiting int) float64 {
	g := s.cfg.SlackGuardFrac + s.cfg.QueueGuardFrac*float64(waiting)
	if g > 0.9 {
		g = 0.9
	}
	return g
}

// alive reports whether any device survives.
func (s *Scheduler) alive() bool {
	for i := range s.queues {
		if !s.dead(i) {
			return true
		}
	}
	return false
}

func (s *Scheduler) dead(i int) bool { return s.deathS[i] > 0 }

// Run executes the job stream to completion and returns the SLO report.
// Jobs may be in any order; they are admitted at their arrival times.
func (s *Scheduler) Run(jobs []Job) (*Report, error) {
	if s.rep != nil {
		return nil, fmt.Errorf("sched: scheduler already ran; build a fresh one per campaign")
	}
	s.rep = newReport(s.cfg, len(s.queues))
	states := make([]*jobState, len(jobs))
	order := make([]int, len(jobs))
	for i := range order {
		order[i] = i
	}
	// Admit in (arrival, ID) order whatever the caller's slice order.
	slices.SortFunc(order, func(a, b int) int {
		if jobs[a].ArrivalS < jobs[b].ArrivalS {
			return -1
		}
		if jobs[b].ArrivalS < jobs[a].ArrivalS {
			return 1
		}
		return jobs[a].ID - jobs[b].ID
	})
	for _, i := range order {
		states[i] = &jobState{job: jobs[i], lastDev: -1}
		s.events.push(event{timeS: jobs[i].ArrivalS, kind: evArrival, job: i}, s)
	}

	var now float64
	for s.events.Len() > 0 {
		e := heap.Pop(&s.events).(event)
		now = e.timeS
		switch e.kind {
		case evArrival:
			if err := s.admit(states[e.job], now); err != nil {
				return nil, err
			}
		case evFree:
			s.busyDev[e.dev] = false
			if err := s.dispatchIdle(now); err != nil {
				return nil, err
			}
		case evRequeue:
			js := s.pendingRequeue[0]
			s.pendingRequeue = s.pendingRequeue[1:]
			s.enqueue(js)
			s.reAdmit(now)
			if err := s.dispatchIdle(now); err != nil {
				return nil, err
			}
		}
		if now > s.rep.MakespanS {
			s.rep.MakespanS = now
		}
	}
	s.finish()
	return s.rep, nil
}

// admit runs admission control for an arriving job and enqueues or rejects
// it.
func (s *Scheduler) admit(js *jobState, now float64) error {
	t := js.job.Tenant
	s.rep.tenant(t).Submitted++
	if !s.alive() {
		s.reject(js, "no-devices")
		return nil
	}
	if s.queuedByTenant[t] >= s.cfg.MaxQueuedPerTenant {
		s.reject(js, "queue-full")
		return nil
	}
	curve, err := s.cfg.Models.curves(js.job, s.cfg.Freqs)
	if err != nil {
		return err
	}
	js.curve = make([]prediction, len(curve))
	for i, c := range curve {
		js.curve[i] = prediction{FreqMHz: c.FreqMHz, TimeS: c.TimeS, EnergyJ: c.EnergyJ}
	}
	if !s.feasible(js, now) {
		s.reject(js, "infeasible")
		return nil
	}
	s.rep.Admitted++
	s.rep.tenant(t).Admitted++
	s.om.admitted.Inc()
	s.enqueue(js)
	return s.dispatchIdle(now)
}

// minEffTimeS is the fastest predicted execution time on a device with the
// given observed cap.
func minEffTimeS(curve []prediction, capMHz int) float64 {
	best := -1.0
	for _, p := range curve {
		t := p.TimeS
		if capMHz > 0 && p.FreqMHz > capMHz {
			continue // the governor will not deliver this clock
		}
		if best < 0 || t < best {
			best = t
		}
	}
	if best < 0 {
		// Cap below the whole candidate grid: the slowest candidate is the
		// closest available estimate.
		best = curve[0].TimeS
	}
	return best
}

// feasible reports whether some surviving device is predicted to complete
// the job by its deadline, starting now on an unloaded device (the
// predicted-completion admission test). Backlog is deliberately not
// modeled: admission answers "could the surviving hardware deliver this at
// all?", which keeps the test independent of the frequency policy (the
// models are shared), while transient overload is handled by EDF dispatch,
// escalation and the per-tenant queue bounds. Capacity loss and observed
// thermal caps do tighten the test — that is the failover re-admission
// path.
func (s *Scheduler) feasible(js *jobState, now float64) bool {
	for d := range s.queues {
		if s.dead(d) {
			continue
		}
		if now+minEffTimeS(js.curve, s.capMHz[d]) <= js.job.DeadlineS {
			return true
		}
	}
	return false
}

// enqueue inserts the job into the ready queue in EDF (deadline, ID) order.
func (s *Scheduler) enqueue(js *jobState) {
	i, _ := slices.BinarySearchFunc(s.ready, js, func(a, b *jobState) int {
		if a.job.DeadlineS < b.job.DeadlineS {
			return -1
		}
		if b.job.DeadlineS < a.job.DeadlineS {
			return 1
		}
		return a.job.ID - b.job.ID
	})
	s.ready = slices.Insert(s.ready, i, js)
	s.queuedByTenant[js.job.Tenant]++
}

// unqueue removes the i-th ready job.
func (s *Scheduler) unqueue(i int) *jobState {
	js := s.ready[i]
	s.ready = slices.Delete(s.ready, i, i+1)
	s.queuedByTenant[js.job.Tenant]--
	return js
}

// reAdmit re-runs the feasibility test over the whole ready queue against
// the surviving capacity, shedding jobs that no longer fit — the failover
// re-planning step. Runs on every requeue event (i.e. after a device loss).
func (s *Scheduler) reAdmit(now float64) {
	for i := 0; i < len(s.ready); {
		if !s.alive() || !s.feasible(s.ready[i], now) {
			s.shed(s.unqueue(i))
			continue
		}
		i++
	}
}

// dispatchIdle assigns ready jobs to idle devices until no assignment is
// possible. Idle devices are considered least-recently-freed first (ties by
// index), which spreads a light stream across the cluster instead of
// funnelling it onto device 0; jobs are taken in EDF order. A job predicted
// to miss its deadline on this device defers when another surviving device
// is predicted to do strictly better — the migration path — unless no such
// device exists.
func (s *Scheduler) dispatchIdle(now float64) error {
	for {
		idle := make([]int, 0, len(s.queues))
		for d := range s.queues {
			if !s.dead(d) && !s.busyDev[d] && s.freeAtS[d] <= now {
				idle = append(idle, d)
			}
		}
		slices.SortFunc(idle, func(a, b int) int {
			if s.freeAtS[a] < s.freeAtS[b] {
				return -1
			}
			if s.freeAtS[b] < s.freeAtS[a] {
				return 1
			}
			return a - b
		})
		dispatched := false
		for _, d := range idle {
			if s.busyDev[d] {
				continue
			}
			ji := s.pickJob(d, now)
			if ji < 0 {
				continue
			}
			js := s.unqueue(ji)
			if err := s.execute(js, d, now); err != nil {
				return err
			}
			dispatched = true
		}
		if !dispatched {
			return nil
		}
	}
}

// pickJob selects the ready-queue index to run on idle device d, or -1.
func (s *Scheduler) pickJob(d int, now float64) int {
	for i, js := range s.ready {
		p, _ := decide(s.cfg, js.curve, js.job.DeadlineS, now, s.capMHz[d], s.guard(len(s.ready)-1))
		lateHere := now + p.TimeS - js.job.DeadlineS
		if lateHere <= 0 {
			return i
		}
		// Predicted miss on d: defer if any other surviving device is
		// predicted to do strictly better at its own earliest start.
		better := false
		for o := range s.queues {
			if o == d || s.dead(o) {
				continue
			}
			start := now
			if s.freeAtS[o] > start {
				start = s.freeAtS[o]
			}
			po, _ := decide(s.cfg, js.curve, js.job.DeadlineS, start, s.capMHz[o], s.guard(len(s.ready)-1))
			if start+po.TimeS-js.job.DeadlineS < lateHere {
				better = true
				break
			}
		}
		if better {
			if !js.deferred {
				js.deferred = true
				s.rep.Deferrals++
			}
			continue // leave in queue for the better device
		}
		return i
	}
	return -1
}

// execute runs the job on device d starting at simulated time start,
// applying the retry/backoff/timeout budgets and the failover path. It
// schedules the device's next free event (or the job's requeue on a device
// loss).
func (s *Scheduler) execute(js *jobState, d int, start float64) error {
	p, escalated := decide(s.cfg, js.curve, js.job.DeadlineS, start, s.capMHz[d], s.guard(len(s.ready)))
	if escalated {
		s.rep.Escalations++
		s.om.escalated.Inc()
	}
	if s.capMHz[d] > 0 {
		s.rep.Retunes++
		s.om.retunes.Inc()
	}
	if js.lastDev >= 0 && js.lastDev != d {
		s.rep.Migrations++
	}
	js.lastDev = d
	s.busyDev[d] = true

	q := s.queues[d]
	w, err := js.job.Workload()
	if err != nil {
		return err
	}
	commanded := p.FreqMHz
	if s.cfg.CapProbeEvery > 0 && s.capMHz[d] > 0 && commanded <= s.capMHz[d] {
		s.cappedRuns[d]++
		if s.cappedRuns[d] >= s.cfg.CapProbeEvery {
			// Probe above the cap: a clean run clears it, a throttled run
			// re-confirms it — either way the cap tracks the window again.
			s.cappedRuns[d] = 0
			commanded = s.cfg.Freqs[len(s.cfg.Freqs)-1]
			s.rep.CapProbes++
		}
	}
	// The BackoffCapS term keeps the budget meaningful for jobs whose
	// nominal time is smaller than a single retry backoff.
	budgetS := s.cfg.TimeoutFactor * (js.job.NominalS + s.cfg.BackoffCapS)

	var busy, energy float64 // this dispatch's device occupancy and energy
	for attempt := 0; ; attempt++ {
		if err := q.SetCoreFreqMHz(commanded); err != nil {
			switch {
			case faults.IsPermanent(err):
				s.failover(js, d, start+busy)
				return nil
			case faults.IsClockRejected(err):
				// Flaky vendor library: run at the queue's current clock and
				// count it; the event log stays truthful either way.
				s.rep.ClockRejects++
			default:
				return err
			}
		}
		first := q.EventCount()
		t, e, err := w.RunOn(q)
		if err == nil {
			busy += t
			energy += e
			s.observeClock(d, commanded, first)
			s.complete(js, d, start, start+busy, p, energy)
			return nil
		}

		// The failed attempt still burned its partial cost.
		var wasteT, wasteE float64
		for _, ev := range q.EventsFrom(first) {
			wasteT += ev.TimeS
			wasteE += ev.EnergyJ
		}
		busy += wasteT
		js.busyS += wasteT
		s.rep.WastedTimeS += wasteT
		s.rep.WastedEnergyJ += wasteE
		energy += wasteE

		switch {
		case faults.IsPermanent(err):
			s.busyS[d] += busy
			s.failover(js, d, start+busy)
			return nil
		case faults.IsTransient(err):
			if js.retries >= s.cfg.MaxRetries {
				s.fail(js, d, start, busy, "retry budget exhausted")
				return nil
			}
			js.retries++
			s.rep.Retries++
			s.om.retries.Inc()
			delay := s.cfg.BackoffBaseS * pow(s.cfg.BackoffFactor, attempt)
			if delay > s.cfg.BackoffCapS {
				delay = s.cfg.BackoffCapS
			}
			busy += delay
			js.busyS += delay
			s.rep.BackoffTimeS += delay
			energy += delay * s.idleW
			s.rep.backoffEnergyJ += delay * s.idleW
			if js.busyS > budgetS {
				s.fail(js, d, start, busy, "timeout budget exhausted")
				return nil
			}
		default:
			return err
		}
	}
}

// pow is a small integer-exponent power (math.Pow's semantics are overkill
// for backoff growth).
func pow(base float64, n int) float64 {
	out := 1.0
	for i := 0; i < n; i++ {
		out *= base
	}
	return out
}

// observeClock compares the clocks the submissions actually ran at against
// the commanded clock and updates the device's observed thermal cap: a run
// below the command sets the cap (later decisions on this device re-tune to
// it), a full-speed run above the recorded cap clears it.
func (s *Scheduler) observeClock(d, commanded, firstEvent int) {
	minF := commanded
	for _, ev := range s.queues[d].EventsFrom(firstEvent) {
		if ev.FreqMHz < minF {
			minF = ev.FreqMHz
		}
	}
	if minF < commanded {
		s.capMHz[d] = minF
		s.rep.ThrottledRuns++
	} else if s.capMHz[d] != 0 && commanded > s.capMHz[d] {
		s.capMHz[d] = 0
		s.cappedRuns[d] = 0
	}
}

// complete finalizes a successful dispatch.
func (s *Scheduler) complete(js *jobState, d int, start, end float64, p prediction, energyJ float64) {
	s.busyS[d] += end - start
	s.freeAtS[d] = end
	s.events.push(event{timeS: end, kind: evFree, dev: d}, s)

	late := end - js.job.DeadlineS
	if late < 0 {
		late = 0
	}
	s.rep.Completed++
	s.om.completed.Inc()
	ts := s.rep.tenant(js.job.Tenant)
	ts.Completed++
	ts.EnergyJ += energyJ
	s.rep.latenesses = append(s.rep.latenesses, late)
	if late > 0 {
		s.rep.Missed++
		s.om.missed.Inc()
		ts.Missed++
		if late > ts.MaxLatenessS {
			ts.MaxLatenessS = late
		}
	}
	s.obsv.Trace().Add("sched.job", end-start,
		obs.L("app", js.job.App.String()),
		obs.L("device", strconv.Itoa(d)),
		obs.L("freq_mhz", strconv.Itoa(p.FreqMHz)),
		obs.L("late", boolLabel(late > 0)),
		obs.L("tenant", js.job.Tenant))
}

// fail abandons a job after exhausted budgets; the device stays usable.
func (s *Scheduler) fail(js *jobState, d int, start, busy float64, reason string) {
	s.busyS[d] += busy
	s.freeAtS[d] = start + busy
	s.events.push(event{timeS: start + busy, kind: evFree, dev: d}, s)
	s.rep.Failed++
	s.om.failed.Inc()
	s.rep.tenant(js.job.Tenant).Failed++
	s.obsv.Trace().Add("sched.fail", busy,
		obs.L("app", js.job.App.String()),
		obs.L("device", strconv.Itoa(d)),
		obs.L("reason", reason),
		obs.L("tenant", js.job.Tenant))
}

// failover handles a permanent device loss observed while serving js: the
// device is marked dead (cluster-wide), the job is requeued to the
// survivors, and the requeue event triggers re-admission of all queued work.
func (s *Scheduler) failover(js *jobState, d int, at float64) {
	s.deathS[d] = at
	s.cl.MarkDead(d)
	s.rep.Failovers++
	s.om.failovers.Inc()
	js.requeues++
	s.rep.Requeues++
	s.om.requeues.Inc()
	s.obsv.Trace().Add("sched.failover", 0,
		obs.L("device", strconv.Itoa(d)),
		obs.L("tenant", js.job.Tenant))
	if !s.alive() {
		// Nothing left to run on: the in-flight job and the whole queue are
		// shed.
		s.shed(js)
		for len(s.ready) > 0 {
			s.shed(s.unqueue(0))
		}
		return
	}
	s.pendingRequeue = append(s.pendingRequeue, js)
	s.events.push(event{timeS: at, kind: evRequeue}, s)
}

// shed drops an admitted job that no longer fits the surviving capacity.
func (s *Scheduler) shed(js *jobState) {
	s.rep.Shed++
	s.om.shed.Inc()
	s.rep.tenant(js.job.Tenant).Shed++
	s.obsv.Trace().Add("sched.shed", 0,
		obs.L("app", js.job.App.String()),
		obs.L("tenant", js.job.Tenant))
}

// reject refuses an arriving job at admission.
func (s *Scheduler) reject(js *jobState, reason string) {
	s.rep.Rejected++
	s.om.rejected.Inc()
	ts := s.rep.tenant(js.job.Tenant)
	switch reason {
	case "queue-full":
		s.rep.RejectedQueueFull++
		ts.RejectedQueueFull++
	case "infeasible":
		s.rep.RejectedInfeasible++
		ts.RejectedInfeasible++
	default:
		s.rep.RejectedNoDevices++
		ts.RejectedNoDevices++
	}
	s.obsv.Trace().Add("sched.reject", 0,
		obs.L("app", js.job.App.String()),
		obs.L("reason", reason),
		obs.L("tenant", js.job.Tenant))
}

// finish closes the books: energy split into active (from the device
// counters, waste included), backoff and idle tiers, and the lateness
// percentiles.
func (s *Scheduler) finish() {
	r := s.rep
	for d, q := range s.queues {
		r.ActiveEnergyJ += q.EnergyCounterJ()
		horizon := r.MakespanS
		if s.dead(d) {
			horizon = s.deathS[d]
		} else {
			r.SurvivingDevices++
		}
		if idle := horizon - s.busyS[d]; idle > 0 {
			r.IdleEnergyJ += idle * s.idleW
		}
		r.BusyTimeS += s.busyS[d]
	}
	// Backoff burned idle power on an occupied device; it was charged into
	// backoffEnergyJ during execution and is reported inside ActiveEnergyJ.
	r.ActiveEnergyJ += r.backoffEnergyJ
	r.TotalEnergyJ = r.ActiveEnergyJ + r.IdleEnergyJ
	r.finalize()
}

func boolLabel(b bool) string {
	if b {
		return "1"
	}
	return "0"
}
