package sched

import (
	"testing"

	"dsenergy/internal/faults"
	"dsenergy/internal/gpusim"
)

var benchFreq int // defeats dead-code elimination in BenchmarkDecide

// BenchmarkScheduleStream drives the full admit-decide-dispatch-complete loop
// over a 96-job mixed stream on a fresh fault-free 4-device cluster per
// iteration, reporting scheduler throughput as admitted jobs per second of
// wall time (the cluster build is excluded from the timer).
func BenchmarkScheduleStream(b *testing.B) {
	models := testModels(b)
	freqs := testFreqs(b)
	jobs, err := GenerateStream(StreamConfig{Seed: 40, Jobs: 96}, gpusim.V100Spec())
	if err != nil {
		b.Fatal(err)
	}
	admitted := 0
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		cl := testCluster(b, 41, 4, faults.Plan{})
		b.StartTimer()
		s, err := New(cl, Config{Freqs: freqs, Models: models})
		if err != nil {
			b.Fatal(err)
		}
		r, err := s.Run(jobs)
		if err != nil {
			b.Fatal(err)
		}
		admitted += r.Admitted
	}
	b.ReportMetric(float64(admitted)/b.Elapsed().Seconds(), "jobs/s")
}

// BenchmarkDecide measures one frequency decision over a realistic candidate
// curve — the scheduler's per-dispatch hot path.
func BenchmarkDecide(b *testing.B) {
	models := testModels(b)
	freqs := testFreqs(b)
	jobs, err := GenerateStream(StreamConfig{Seed: 42, Jobs: 1}, gpusim.V100Spec())
	if err != nil {
		b.Fatal(err)
	}
	points, err := models.curves(jobs[0], freqs)
	if err != nil {
		b.Fatal(err)
	}
	curve := make([]prediction, len(points))
	for i, p := range points {
		curve[i] = prediction{FreqMHz: p.FreqMHz, TimeS: p.TimeS, EnergyJ: p.EnergyJ}
	}
	cfg := Config{}.withDefaults(gpusim.V100Spec().BaselineFreqMHz())
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p, _ := decide(cfg, curve, jobs[0].DeadlineS, 0, 0, 0.25)
		benchFreq = p.FreqMHz
	}
}
