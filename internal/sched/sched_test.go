package sched

import (
	"bytes"
	"math"
	"slices"
	"sync"
	"testing"

	"dsenergy/internal/cluster"
	"dsenergy/internal/core"
	"dsenergy/internal/faults"
	"dsenergy/internal/gpusim"
	"dsenergy/internal/ml"
	"dsenergy/internal/synergy"
)

// testFreqs is a small candidate-clock grid for the V100: a strided slice of
// the upper band plus the baseline and f_max.
func testFreqs(t testing.TB) []int {
	t.Helper()
	spec := gpusim.V100Spec()
	band := spec.FreqsAbove(0.40)
	var freqs []int
	for i := 0; i < len(band); i += 16 {
		freqs = append(freqs, band[i])
	}
	for _, f := range []int{spec.BaselineFreqMHz(), spec.FMaxMHz()} {
		if !slices.Contains(freqs, f) {
			freqs = append(freqs, f)
		}
	}
	slices.Sort(freqs)
	return freqs
}

var (
	modelsOnce sync.Once
	modelsSet  *ModelSet
	modelsErr  error
)

// testModels trains one small raw forest per application on the stream's
// size ladders, shared across the package's tests (training dominates the
// suite's runtime otherwise).
func testModels(t testing.TB) *ModelSet {
	t.Helper()
	modelsOnce.Do(func() {
		p, err := synergy.NewPlatform(1, gpusim.V100Spec())
		if err != nil {
			modelsErr = err
			return
		}
		q := p.Queues()[0]
		freqs := testFreqs(t)
		spec := ml.Spec{Algorithm: "forest", Params: map[string]float64{"n_estimators": 5}}

		var ligenWLs []core.FeaturedWorkload
		for _, in := range LiGenSizeLadder() {
			w, err := Job{App: AppLiGen, LiGen: in}.Workload()
			if err != nil {
				modelsErr = err
				return
			}
			ligenWLs = append(ligenWLs, core.FeaturedWorkload{
				Workload: w,
				Features: []float64{float64(in.Ligands), float64(in.Atoms), float64(in.Fragments)},
			})
		}
		var cronosWLs []core.FeaturedWorkload
		for _, sz := range CronosSizeLadder() {
			w, err := Job{App: AppCronos, Grid: sz.Grid, Steps: sz.Steps}.Workload()
			if err != nil {
				modelsErr = err
				return
			}
			cronosWLs = append(cronosWLs, core.FeaturedWorkload{
				Workload: w,
				Features: []float64{float64(sz.Grid[0]), float64(sz.Grid[1]), float64(sz.Grid[2])},
			})
		}
		bc := core.BuildConfig{Freqs: freqs, Reps: 1}
		lds, err := core.BuildDataset(q, core.LiGenSchema(), ligenWLs, bc)
		if err != nil {
			modelsErr = err
			return
		}
		cds, err := core.BuildDataset(q, core.CronosSchema(), cronosWLs, bc)
		if err != nil {
			modelsErr = err
			return
		}
		lm, err := core.Train(lds, spec, 2)
		if err != nil {
			modelsErr = err
			return
		}
		cm, err := core.Train(cds, spec, 3)
		if err != nil {
			modelsErr = err
			return
		}
		modelsSet = &ModelSet{LiGen: lm, Cronos: cm}
	})
	if modelsErr != nil {
		t.Fatal(modelsErr)
	}
	return modelsSet
}

// testCluster builds a fresh n-device V100 cluster with the given fault plan.
func testCluster(t testing.TB, seed uint64, n int, plan faults.Plan) *cluster.Cluster {
	t.Helper()
	c, err := cluster.New(seed, gpusim.V100Spec(), n, cluster.DefaultInterconnect())
	if err != nil {
		t.Fatal(err)
	}
	if err := c.SetFaultPlan(plan, cluster.DefaultResilienceConfig()); err != nil {
		t.Fatal(err)
	}
	return c
}

func testScheduler(t testing.TB, cl *cluster.Cluster, cfg Config) *Scheduler {
	t.Helper()
	if cfg.Freqs == nil {
		cfg.Freqs = testFreqs(t)
	}
	if cfg.Models == nil {
		cfg.Models = testModels(t)
	}
	s, err := New(cl, cfg)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func TestGenerateStreamSeedDeterminism(t *testing.T) {
	spec := gpusim.V100Spec()
	a, err := GenerateStream(StreamConfig{Seed: 9, Jobs: 32}, spec)
	if err != nil {
		t.Fatal(err)
	}
	b, err := GenerateStream(StreamConfig{Seed: 9, Jobs: 32}, spec)
	if err != nil {
		t.Fatal(err)
	}
	if !slices.Equal(a, b) {
		t.Fatal("identically seeded streams differ")
	}
	c, err := GenerateStream(StreamConfig{Seed: 10, Jobs: 32}, spec)
	if err != nil {
		t.Fatal(err)
	}
	if slices.Equal(a, c) {
		t.Fatal("differently seeded streams are identical; draws are not seeded")
	}
}

func TestGenerateStreamShape(t *testing.T) {
	spec := gpusim.V100Spec()
	jobs, err := GenerateStream(StreamConfig{Seed: 4, Jobs: 64}, spec)
	if err != nil {
		t.Fatal(err)
	}
	if len(jobs) != 64 {
		t.Fatalf("got %d jobs, want 64", len(jobs))
	}
	tenants := DefaultTenants()
	var prev float64
	for i, j := range jobs {
		if j.ID != i {
			t.Fatalf("job %d has ID %d", i, j.ID)
		}
		if j.ArrivalS < prev {
			t.Fatalf("job %d arrives at %g before predecessor %g", i, j.ArrivalS, prev)
		}
		prev = j.ArrivalS
		if j.NominalS <= 0 {
			t.Fatalf("job %d has non-positive nominal time %g", i, j.NominalS)
		}
		// Deadline slack respects both the multiplier range and the floor.
		slack := j.SlackS()
		if slack < 1.0-1e-12 {
			t.Fatalf("job %d slack %gs is below the default 1s floor", i, slack)
		}
		if slack > 8*j.NominalS+1e-9 && slack > 1.0+1e-9 {
			t.Fatalf("job %d slack %gs exceeds both SlackMax x nominal %g and the floor", i, slack, 8*j.NominalS)
		}
		if !slices.Contains(tenants, j.Tenant) {
			t.Fatalf("job %d has unknown tenant %q", i, j.Tenant)
		}
		if len(j.Features()) != 3 {
			t.Fatalf("job %d has %d features, want 3", i, len(j.Features()))
		}
	}
}

func TestGenerateStreamRejectsBadConfig(t *testing.T) {
	spec := gpusim.V100Spec()
	bad := []StreamConfig{
		{Seed: 1, Jobs: -1},
		{Seed: 1, SlackMin: 5, SlackMax: 2},
		{Seed: 1, SlackMin: -1},
		{Seed: 1, LiGenFrac: 1.5},
	}
	for i, cfg := range bad {
		if _, err := GenerateStream(cfg, spec); err == nil {
			t.Errorf("config %d: expected error, got none", i)
		}
	}
}

func TestNewRejectsBadConfig(t *testing.T) {
	cl := testCluster(t, 1, 2, faults.Plan{})
	models := testModels(t)
	freqs := testFreqs(t)
	bad := []struct {
		name string
		cfg  Config
	}{
		{"no freqs", Config{Models: models}},
		{"unsorted freqs", Config{Models: models, Freqs: []int{1597, 1297}}},
		{"nil models", Config{Freqs: freqs}},
		{"unsupported freq", Config{Models: models, Freqs: []int{123}}},
		{"static not a candidate", Config{Models: models, Freqs: freqs, Policy: PolicyStatic, StaticFreqMHz: freqs[0] + 1}},
		{"guard too large", Config{Models: models, Freqs: freqs, SlackGuardFrac: 1.5}},
		{"stretch below 1", Config{Models: models, Freqs: freqs, MaxStretch: 0.5}},
	}
	for _, tc := range bad {
		if _, err := New(cl, tc.cfg); err == nil {
			t.Errorf("%s: expected error, got none", tc.name)
		}
	}
}

func TestSchedulerRunsOnlyOnce(t *testing.T) {
	s := testScheduler(t, testCluster(t, 1, 2, faults.Plan{}), Config{})
	jobs, err := GenerateStream(StreamConfig{Seed: 5, Jobs: 4}, gpusim.V100Spec())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.Run(jobs); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Run(jobs); err == nil {
		t.Fatal("second Run on the same scheduler must error")
	}
}

// TestFaultFreeRunAccounting checks the report's conservation laws on a
// fault-free run: every submitted job is admitted or rejected, every admitted
// job completes (no faults, generous deadlines), and the energy and tenant
// tables add up.
func TestFaultFreeRunAccounting(t *testing.T) {
	jobs, err := GenerateStream(StreamConfig{Seed: 6, Jobs: 48}, gpusim.V100Spec())
	if err != nil {
		t.Fatal(err)
	}
	s := testScheduler(t, testCluster(t, 2, 4, faults.Plan{}), Config{})
	r, err := s.Run(jobs)
	if err != nil {
		t.Fatal(err)
	}
	if r.Submitted != 48 || r.Submitted != r.Admitted+r.Rejected {
		t.Fatalf("submitted=%d admitted=%d rejected=%d", r.Submitted, r.Admitted, r.Rejected)
	}
	if r.Completed+r.Failed+r.Shed != r.Admitted {
		t.Fatalf("admitted %d jobs but accounted %d", r.Admitted, r.Completed+r.Failed+r.Shed)
	}
	if r.Failed != 0 || r.Shed != 0 || r.Failovers != 0 || r.Retries != 0 {
		t.Fatalf("fault-free run reports faults: %+v", r)
	}
	if r.SurvivingDevices != 4 {
		t.Fatalf("surviving=%d, want 4", r.SurvivingDevices)
	}
	if r.TotalEnergyJ <= 0 || math.Abs(r.TotalEnergyJ-(r.ActiveEnergyJ+r.IdleEnergyJ)) > 1e-9 {
		t.Fatalf("energy accounting broken: total=%g active=%g idle=%g", r.TotalEnergyJ, r.ActiveEnergyJ, r.IdleEnergyJ)
	}
	if r.MakespanS <= 0 || r.BusyTimeS <= 0 {
		t.Fatalf("time accounting broken: makespan=%g busy=%g", r.MakespanS, r.BusyTimeS)
	}
	var tenantCompleted, tenantSubmitted int
	var tenantEnergy float64
	for _, ts := range r.Tenants {
		tenantCompleted += ts.Completed
		tenantSubmitted += ts.Submitted
		tenantEnergy += ts.EnergyJ
	}
	if tenantCompleted != r.Completed || tenantSubmitted != r.Submitted {
		t.Fatalf("tenant table does not add up: completed %d/%d submitted %d/%d",
			tenantCompleted, r.Completed, tenantSubmitted, r.Submitted)
	}
	if tenantEnergy <= 0 || tenantEnergy > r.ActiveEnergyJ+1e-9 {
		t.Fatalf("tenant energy %g vs active %g", tenantEnergy, r.ActiveEnergyJ)
	}
}

// TestPerTenantQueueBound floods one tenant past its queue bound and expects
// backpressure rejections, not unbounded growth.
func TestPerTenantQueueBound(t *testing.T) {
	var jobs []Job
	for i := 0; i < 6; i++ {
		jobs = append(jobs, Job{
			ID: i, Tenant: "flood", App: AppLiGen,
			LiGen:    ligenSizes[len(ligenSizes)-1],
			NominalS: 0.6, DeadlineS: 100,
		})
	}
	s := testScheduler(t, testCluster(t, 3, 2, faults.Plan{}), Config{MaxQueuedPerTenant: 1})
	r, err := s.Run(jobs)
	if err != nil {
		t.Fatal(err)
	}
	// Two jobs dispatch immediately, one queues, the rest bounce.
	if r.RejectedQueueFull != 3 {
		t.Fatalf("queue-full rejections = %d, want 3 (report: %+v)", r.RejectedQueueFull, r)
	}
	if r.Completed != 3 {
		t.Fatalf("completed = %d, want 3", r.Completed)
	}
	if got := r.Tenants[0].RejectedQueueFull; got != 3 {
		t.Fatalf("tenant queue-full rejections = %d, want 3", got)
	}
}

// TestInfeasibleDeadlineRejected: a deadline no clock can meet is rejected at
// admission instead of being accepted and missed.
func TestInfeasibleDeadlineRejected(t *testing.T) {
	jobs := []Job{{
		ID: 0, Tenant: "t", App: AppLiGen,
		LiGen:    ligenSizes[len(ligenSizes)-1],
		NominalS: 0.6, ArrivalS: 0, DeadlineS: 0.001,
	}}
	s := testScheduler(t, testCluster(t, 4, 2, faults.Plan{}), Config{})
	r, err := s.Run(jobs)
	if err != nil {
		t.Fatal(err)
	}
	if r.RejectedInfeasible != 1 || r.Admitted != 0 {
		t.Fatalf("infeasible=%d admitted=%d, want 1/0", r.RejectedInfeasible, r.Admitted)
	}
}

// TestFailoverRequeuesAndDegrades kills one device mid-campaign: the
// scheduler must mark the loss, requeue the in-flight job and finish the
// whole stream on the survivor.
func TestFailoverRequeuesAndDegrades(t *testing.T) {
	jobs, err := GenerateStream(StreamConfig{Seed: 7, Jobs: 16}, gpusim.V100Spec())
	if err != nil {
		t.Fatal(err)
	}
	plan := faults.Plan{Seed: 2, Failures: []faults.DeviceFailure{{Device: 0, AfterSubmits: 4}}}
	s := testScheduler(t, testCluster(t, 5, 2, plan), Config{})
	r, err := s.Run(jobs)
	if err != nil {
		t.Fatal(err)
	}
	if r.Failovers != 1 || r.SurvivingDevices != 1 {
		t.Fatalf("failovers=%d surviving=%d, want 1/1", r.Failovers, r.SurvivingDevices)
	}
	if r.Requeues != 1 || r.Migrations < 1 {
		t.Fatalf("requeues=%d migrations=%d, want 1/>=1", r.Requeues, r.Migrations)
	}
	if r.Completed+r.Failed+r.Shed != r.Admitted {
		t.Fatalf("admitted %d jobs but accounted %d", r.Admitted, r.Completed+r.Failed+r.Shed)
	}
	if r.Completed == 0 {
		t.Fatal("nothing completed after failover")
	}
}

// TestAllDevicesLostShedsWork kills every device: in-flight and queued work
// is shed (counted against the SLO), later arrivals bounce with no-devices,
// and Run still terminates cleanly.
func TestAllDevicesLostShedsWork(t *testing.T) {
	var jobs []Job
	for i := 0; i < 6; i++ {
		jobs = append(jobs, Job{
			ID: i, Tenant: "t", App: AppLiGen,
			LiGen:    ligenSizes[len(ligenSizes)-1],
			NominalS: 0.6, ArrivalS: float64(i) * 0.01, DeadlineS: 100,
		})
	}
	jobs = append(jobs, Job{
		ID: 6, Tenant: "t", App: AppLiGen, LiGen: ligenSizes[0],
		NominalS: 0.05, ArrivalS: 50, DeadlineS: 100,
	})
	plan := faults.Plan{Seed: 8, Failures: []faults.DeviceFailure{
		{Device: 0, AfterSubmits: 1},
		{Device: 1, AfterSubmits: 2},
	}}
	s := testScheduler(t, testCluster(t, 6, 2, plan), Config{})
	r, err := s.Run(jobs)
	if err != nil {
		t.Fatal(err)
	}
	if r.Failovers != 2 || r.SurvivingDevices != 0 {
		t.Fatalf("failovers=%d surviving=%d, want 2/0", r.Failovers, r.SurvivingDevices)
	}
	if r.Shed == 0 {
		t.Fatal("no work shed although every device died with work queued")
	}
	if r.RejectedNoDevices == 0 {
		t.Fatal("arrivals after total capacity loss must bounce with no-devices")
	}
	if r.Completed+r.Failed+r.Shed != r.Admitted {
		t.Fatalf("admitted %d jobs but accounted %d", r.Admitted, r.Completed+r.Failed+r.Shed)
	}
	if r.MissRate() == 0 {
		t.Fatal("shed work must count against the SLO miss rate")
	}
}

// TestThrottleObservedAndRetuned runs a single throttled device: the
// scheduler must observe the effective clock dropping below the command and
// re-tune subsequent decisions against the cap.
func TestThrottleObservedAndRetuned(t *testing.T) {
	jobs, err := GenerateStream(StreamConfig{Seed: 12, Jobs: 12}, gpusim.V100Spec())
	if err != nil {
		t.Fatal(err)
	}
	plan := faults.Plan{Seed: 13, Throttles: []faults.Throttle{
		{Device: 0, FromSubmit: 1, ToSubmit: 1000, CapMHz: 1005},
	}}
	s := testScheduler(t, testCluster(t, 7, 1, plan), Config{Policy: PolicyMaxFreq})
	r, err := s.Run(jobs)
	if err != nil {
		t.Fatal(err)
	}
	if r.ThrottledRuns == 0 {
		t.Fatal("throttle window never observed")
	}
	if r.Retunes == 0 {
		t.Fatal("observed cap never re-tuned a decision")
	}
}

// TestRetryBudgetExhaustionFailsJob forces every submission to fault: the
// job must be abandoned after the retry budget, charged as wasted work, and
// the device stays usable.
func TestRetryBudgetExhaustionFailsJob(t *testing.T) {
	jobs := []Job{{
		ID: 0, Tenant: "t", App: AppLiGen, LiGen: ligenSizes[0],
		NominalS: 0.05, DeadlineS: 100,
	}}
	plan := faults.Plan{Seed: 14, TransientProb: 1.0}
	s := testScheduler(t, testCluster(t, 8, 1, plan), Config{})
	r, err := s.Run(jobs)
	if err != nil {
		t.Fatal(err)
	}
	if r.Failed != 1 || r.Completed != 0 {
		t.Fatalf("failed=%d completed=%d, want 1/0", r.Failed, r.Completed)
	}
	if r.Retries == 0 || r.WastedTimeS <= 0 || r.WastedEnergyJ <= 0 {
		t.Fatalf("retry accounting broken: retries=%d wastedT=%g wastedE=%g",
			r.Retries, r.WastedTimeS, r.WastedEnergyJ)
	}
	if r.MissRate() != 1 {
		t.Fatalf("a failed job must miss its SLO; miss rate = %g", r.MissRate())
	}
}

// TestSchedulerReportIsDeterministic: identical streams, clusters and plans
// must produce byte-identical SLO reports, faults included.
func TestSchedulerReportIsDeterministic(t *testing.T) {
	jobs, err := GenerateStream(StreamConfig{Seed: 20, Jobs: 24}, gpusim.V100Spec())
	if err != nil {
		t.Fatal(err)
	}
	plan := faults.Plan{
		Seed:          21,
		TransientProb: 0.05,
		Failures:      []faults.DeviceFailure{{Device: 1, AfterSubmits: 6}},
		Throttles:     []faults.Throttle{{Device: 0, FromSubmit: 2, ToSubmit: 20, CapMHz: 1005}},
	}
	run := func() []byte {
		s := testScheduler(t, testCluster(t, 22, 2, plan), Config{})
		r, err := s.Run(jobs)
		if err != nil {
			t.Fatal(err)
		}
		var buf bytes.Buffer
		if err := r.WriteText(&buf); err != nil {
			t.Fatal(err)
		}
		return buf.Bytes()
	}
	first, second := run(), run()
	if !bytes.Equal(first, second) {
		t.Fatalf("identically seeded scheduler runs diverged\n--- first ---\n%s\n--- second ---\n%s", first, second)
	}
}

// TestPolicyOrdering: on the same fault-free stream the model policy must
// spend no more energy than max-frequency while admitting the same jobs
// (admission is policy-independent by construction).
func TestPolicyOrdering(t *testing.T) {
	jobs, err := GenerateStream(StreamConfig{Seed: 30, Jobs: 32}, gpusim.V100Spec())
	if err != nil {
		t.Fatal(err)
	}
	run := func(p Policy) *Report {
		s := testScheduler(t, testCluster(t, 31, 2, faults.Plan{}), Config{Policy: p})
		r, err := s.Run(jobs)
		if err != nil {
			t.Fatal(err)
		}
		return r
	}
	model, maxf := run(PolicyModel), run(PolicyMaxFreq)
	if model.Admitted != maxf.Admitted || model.Rejected != maxf.Rejected {
		t.Fatalf("admission depends on policy: model %d/%d vs maxfreq %d/%d",
			model.Admitted, model.Rejected, maxf.Admitted, maxf.Rejected)
	}
	if model.ActiveEnergyJ >= maxf.ActiveEnergyJ {
		t.Fatalf("model active energy %g not below maxfreq %g", model.ActiveEnergyJ, maxf.ActiveEnergyJ)
	}
}

// ---- decide() unit tests on a synthetic curve ----

// testCurve is ascending in frequency; energy dips at the middle clock.
var testCurve = []prediction{
	{FreqMHz: 800, TimeS: 2.0, EnergyJ: 90},
	{FreqMHz: 1200, TimeS: 1.2, EnergyJ: 80},
	{FreqMHz: 1600, TimeS: 1.0, EnergyJ: 120},
}

func decideCfg() Config {
	return Config{Policy: PolicyModel, StaticFreqMHz: 1200, MaxStretch: -1}.withDefaults(1200)
}

func TestDecideMaxFreqPicksFastest(t *testing.T) {
	cfg := decideCfg()
	cfg.Policy = PolicyMaxFreq
	p, esc := decide(cfg, testCurve, 10, 0, 0, 0)
	if p.FreqMHz != 1600 || esc {
		t.Fatalf("got %+v escalated=%v", p, esc)
	}
}

func TestDecideStaticPinsClock(t *testing.T) {
	cfg := decideCfg()
	cfg.Policy = PolicyStatic
	p, esc := decide(cfg, testCurve, 10, 0, 0, 0)
	if p.FreqMHz != 1200 || esc {
		t.Fatalf("got %+v escalated=%v", p, esc)
	}
}

func TestDecideModelMinimizesEnergyUnderDeadline(t *testing.T) {
	// Plenty of slack, no guard: the cheapest clock that fits wins.
	p, esc := decide(decideCfg(), testCurve, 10, 0, 0, 0)
	if p.FreqMHz != 1200 || esc {
		t.Fatalf("got %+v escalated=%v, want 1200 MHz (cheapest feasible)", p, esc)
	}
	// Slack 2.0s with guard 0: the 800 MHz clock fits exactly and is NOT
	// cheapest; 1200 MHz still wins on energy.
	p, _ = decide(decideCfg(), testCurve, 2.0, 0, 0, 0)
	if p.FreqMHz != 1200 {
		t.Fatalf("got %d MHz, want 1200", p.FreqMHz)
	}
}

func TestDecideGuardReservesSlack(t *testing.T) {
	// Deadline 1.3s: ungated, 1200 MHz (1.2s) fits. A 0.25 guard shrinks
	// the budget to 0.975s, so only 1600 MHz... which also misses — the
	// decision escalates to the fastest clock.
	p, esc := decide(decideCfg(), testCurve, 1.3, 0, 0, 0.25)
	if p.FreqMHz != 1600 || !esc {
		t.Fatalf("got %+v escalated=%v, want escalation to 1600", p, esc)
	}
	// Deadline 1.5s with the same guard: budget 1.125s admits 1600 only.
	p, esc = decide(decideCfg(), testCurve, 1.5, 0, 0, 0.25)
	if p.FreqMHz != 1600 || esc {
		t.Fatalf("got %+v escalated=%v, want 1600 without escalation", p, esc)
	}
}

func TestDecideEscalatesWhenDeadlineUnmeetable(t *testing.T) {
	p, esc := decide(decideCfg(), testCurve, 0.5, 0, 0, 0)
	if !esc || p.FreqMHz != 1600 {
		t.Fatalf("got %+v escalated=%v, want escalation to fastest", p, esc)
	}
}

func TestDecideCapSubstitutesEffectiveSpeed(t *testing.T) {
	// Cap at 1200: the 1600 candidate is predicted at the capped clock's
	// time and energy, so it can never look better than 1200 itself.
	p, _ := decide(decideCfg(), testCurve, 10, 0, 1200, 0)
	if p.FreqMHz != 1200 {
		t.Fatalf("got %d MHz, want 1200 under cap", p.FreqMHz)
	}
	// Deadline only the uncapped 1600 could meet: under the cap nothing
	// fits, the decision escalates at capped speed.
	p, esc := decide(decideCfg(), testCurve, 1.1, 0, 1200, 0)
	if !esc {
		t.Fatalf("got %+v, want escalation under cap", p)
	}
	if p.TimeS != 1.2 {
		t.Fatalf("escalated prediction %g s, want the capped 1.2 s", p.TimeS)
	}
}

func TestDecideStretchCapBoundsBlocking(t *testing.T) {
	cfg := decideCfg()
	cfg.MaxStretch = 1.5
	// 800 MHz (2.0s) is 2x the fastest candidate (1.0s) — excluded even
	// with infinite slack; 1200 MHz (1.2x) stays eligible.
	p, esc := decide(cfg, testCurve, 1000, 0, 0, 0)
	if p.FreqMHz != 1200 || esc {
		t.Fatalf("got %+v escalated=%v, want 1200 within stretch", p, esc)
	}
	cheap := []prediction{
		{FreqMHz: 800, TimeS: 2.0, EnergyJ: 10},
		{FreqMHz: 1600, TimeS: 1.0, EnergyJ: 120},
	}
	p, _ = decide(cfg, cheap, 1000, 0, 0, 0)
	if p.FreqMHz != 1600 {
		t.Fatalf("got %d MHz; the 800 MHz bargain must be excluded by MaxStretch", p.FreqMHz)
	}
}

func TestReportMissRateCountsFailuresAndSheds(t *testing.T) {
	r := &Report{Admitted: 10, Missed: 1, Failed: 2, Shed: 3}
	if got := r.MissRate(); got != 0.6 {
		t.Fatalf("miss rate %g, want 0.6", got)
	}
	if (&Report{}).MissRate() != 0 {
		t.Fatal("empty report must have zero miss rate")
	}
}

func TestPercentileNearestRank(t *testing.T) {
	sorted := []float64{1, 2, 3, 4}
	cases := []struct{ q, want float64 }{
		{0.50, 2}, {0.99, 4}, {0.25, 1}, {1.0, 4},
	}
	for _, c := range cases {
		if got := percentile(sorted, c.q); got != c.want {
			t.Errorf("p%g = %g, want %g", 100*c.q, got, c.want)
		}
	}
	if percentile(nil, 0.5) != 0 {
		t.Error("empty sample must yield 0")
	}
}
