package sched

import (
	"fmt"
	"io"
	"slices"
	"sort"
)

// TenantSLO is one tenant's slice of the SLO accounting.
type TenantSLO struct {
	Tenant             string
	Submitted          int
	Admitted           int
	RejectedQueueFull  int
	RejectedInfeasible int
	RejectedNoDevices  int
	Completed          int
	Missed             int
	Failed             int
	Shed               int
	EnergyJ            float64
	MaxLatenessS       float64
}

// Report is the SLO accounting of one scheduler run: what was admitted, what
// completed and how late, what every recovery mechanism cost, and where the
// energy went. All fields are deterministic for a fixed cluster seed, fault
// plan and job stream.
type Report struct {
	Policy        string
	StaticFreqMHz int
	Devices       int

	// Admission.
	Submitted          int
	Admitted           int
	Rejected           int
	RejectedQueueFull  int
	RejectedInfeasible int
	RejectedNoDevices  int

	// Outcomes.
	Completed int
	Missed    int // completed after the deadline
	Failed    int // abandoned (retry or timeout budget exhausted)
	Shed      int // admitted, then dropped during failover re-admission

	// Lateness of completed jobs (zero when on time).
	P50LatenessS float64
	P99LatenessS float64
	MaxLatenessS float64

	// Robustness event counts.
	Retries       int // transient-fault retries
	Failovers     int // permanent device losses observed
	Requeues      int // in-flight jobs requeued off a dead device
	Migrations    int // jobs whose next attempt ran on a different device
	Deferrals     int // jobs that declined an idle device on deadline grounds
	Escalations   int // decisions forced to the fastest clock to chase a deadline
	ThrottledRuns int // runs observed below the commanded clock
	Retunes       int // decisions re-tuned against an observed thermal cap
	CapProbes     int // capped decisions overridden to probe above the cap
	ClockRejects  int // clock-set rejections absorbed

	// Cost accounting.
	MakespanS        float64
	BusyTimeS        float64 // summed device occupancy (attempts + backoff)
	WastedTimeS      float64 // device time burned on aborted attempts
	WastedEnergyJ    float64
	BackoffTimeS     float64
	ActiveEnergyJ    float64 // device counters (waste included) + backoff idle burn
	IdleEnergyJ      float64 // idle power over un-occupied device time to makespan
	TotalEnergyJ     float64
	SurvivingDevices int

	Tenants []TenantSLO // sorted by tenant name, filled by finalize

	tenants        map[string]*TenantSLO
	latenesses     []float64
	backoffEnergyJ float64
}

func newReport(cfg Config, devices int) *Report {
	return &Report{
		Policy:        cfg.Policy.String(),
		StaticFreqMHz: cfg.StaticFreqMHz,
		Devices:       devices,
		tenants:       make(map[string]*TenantSLO),
	}
}

// tenant returns (creating on first use) the tenant's accounting row.
func (r *Report) tenant(name string) *TenantSLO {
	t := r.tenants[name]
	if t == nil {
		t = &TenantSLO{Tenant: name}
		r.tenants[name] = t
	}
	return t
}

// MissRate is the fraction of admitted work that violated its SLO: completed
// late, abandoned, or shed during failover. A job the scheduler accepted and
// never delivered missed its deadline by definition, so failures and sheds
// count as misses — otherwise a policy could look better by dropping work.
func (r *Report) MissRate() float64 {
	if r.Admitted == 0 {
		return 0
	}
	return float64(r.Missed+r.Failed+r.Shed) / float64(r.Admitted)
}

// percentile is the nearest-rank percentile of a sorted sample.
func percentile(sorted []float64, q float64) float64 {
	if len(sorted) == 0 {
		return 0
	}
	i := int(q*float64(len(sorted))+0.999999) - 1
	if i < 0 {
		i = 0
	}
	if i >= len(sorted) {
		i = len(sorted) - 1
	}
	return sorted[i]
}

// finalize freezes the derived fields: totals, lateness percentiles and the
// sorted tenant table.
func (r *Report) finalize() {
	r.Submitted = r.Admitted + r.Rejected
	slices.Sort(r.latenesses)
	r.P50LatenessS = percentile(r.latenesses, 0.50)
	r.P99LatenessS = percentile(r.latenesses, 0.99)
	if n := len(r.latenesses); n > 0 {
		r.MaxLatenessS = r.latenesses[n-1]
	}
	names := make([]string, 0, len(r.tenants))
	for name := range r.tenants {
		names = append(names, name)
	}
	sort.Strings(names)
	r.Tenants = r.Tenants[:0]
	for _, name := range names {
		r.Tenants = append(r.Tenants, *r.tenants[name])
	}
}

// WriteText renders the report deterministically.
func (r *Report) WriteText(w io.Writer) error {
	p := func(format string, args ...any) error {
		_, err := fmt.Fprintf(w, format, args...)
		return err
	}
	if err := p("policy=%s static=%dMHz devices=%d surviving=%d\n",
		r.Policy, r.StaticFreqMHz, r.Devices, r.SurvivingDevices); err != nil {
		return err
	}
	if err := p("jobs: submitted=%d admitted=%d completed=%d failed=%d shed=%d\n",
		r.Submitted, r.Admitted, r.Completed, r.Failed, r.Shed); err != nil {
		return err
	}
	if err := p("rejections: queue-full=%d infeasible=%d no-devices=%d\n",
		r.RejectedQueueFull, r.RejectedInfeasible, r.RejectedNoDevices); err != nil {
		return err
	}
	if err := p("slo: miss-rate=%.2f%% deadline-misses=%d p50-lateness=%.3fs p99-lateness=%.3fs max-lateness=%.3fs\n",
		100*r.MissRate(), r.Missed, r.P50LatenessS, r.P99LatenessS, r.MaxLatenessS); err != nil {
		return err
	}
	if err := p("energy: total=%.1fJ active=%.1fJ idle=%.1fJ wasted=%.1fJ\n",
		r.TotalEnergyJ, r.ActiveEnergyJ, r.IdleEnergyJ, r.WastedEnergyJ); err != nil {
		return err
	}
	if err := p("time: makespan=%.3fs busy=%.3fs wasted=%.3fs backoff=%.3fs\n",
		r.MakespanS, r.BusyTimeS, r.WastedTimeS, r.BackoffTimeS); err != nil {
		return err
	}
	if err := p("robustness: retries=%d failovers=%d requeues=%d migrations=%d deferrals=%d escalations=%d throttled-runs=%d retunes=%d cap-probes=%d clock-rejects=%d\n",
		r.Retries, r.Failovers, r.Requeues, r.Migrations, r.Deferrals,
		r.Escalations, r.ThrottledRuns, r.Retunes, r.CapProbes, r.ClockRejects); err != nil {
		return err
	}
	for _, t := range r.Tenants {
		if err := p("tenant %-10s submitted=%-3d admitted=%-3d completed=%-3d missed=%-2d failed=%-2d shed=%-2d rejected=%-2d energy=%.1fJ max-lateness=%.3fs\n",
			t.Tenant, t.Submitted, t.Admitted, t.Completed, t.Missed, t.Failed, t.Shed,
			t.RejectedQueueFull+t.RejectedInfeasible+t.RejectedNoDevices,
			t.EnergyJ, t.MaxLatenessS); err != nil {
			return err
		}
	}
	return nil
}
