package sched

import (
	"fmt"

	"dsenergy/internal/core"
)

// Policy selects the per-job core frequency. Every policy shares the same
// admission control, dispatch order and resilience machinery — the clock
// choice is the only degree of freedom, which is what makes the SLO report a
// clean comparison of frequency-selection strategies (Ilager et al.'s
// framing: the learned energy model against max-frequency and static
// baselines).
type Policy int

const (
	// PolicyModel picks, per job, the frequency with the lowest predicted
	// energy among those predicted to meet the deadline (escalating to the
	// fastest clock when none does).
	PolicyModel Policy = iota
	// PolicyMaxFreq always runs at the device's fastest candidate clock.
	PolicyMaxFreq
	// PolicyStatic pins every job to one fixed clock (Config.StaticFreqMHz).
	PolicyStatic
)

// String returns the policy name.
func (p Policy) String() string {
	switch p {
	case PolicyModel:
		return "model"
	case PolicyMaxFreq:
		return "maxfreq"
	case PolicyStatic:
		return "static"
	default:
		return fmt.Sprintf("Policy(%d)", int(p))
	}
}

// ModelSet bundles the trained per-application domain-specific models (raw
// mode: absolute time and energy), the predictors every scheduling decision
// consults.
type ModelSet struct {
	LiGen  *core.Model
	Cronos *core.Model
}

// curves evaluates the per-frequency prediction curve of one job in a single
// PredictBatch block per regressor.
func (ms *ModelSet) curves(j Job, freqs []int) ([]core.CurvePoint, error) {
	var m *core.Model
	switch j.App {
	case AppLiGen:
		m = ms.LiGen
	case AppCronos:
		m = ms.Cronos
	}
	if m == nil {
		return nil, fmt.Errorf("sched: no model for app %s", j.App)
	}
	if m.Normalized {
		return nil, fmt.Errorf("sched: app %s model is normalized; the scheduler needs raw time/energy predictions", j.App)
	}
	return m.PredictCurves(j.Features(), freqs), nil
}

// prediction is one candidate decision: run the job at FreqMHz, expecting
// TimeS and EnergyJ.
type prediction struct {
	FreqMHz int
	TimeS   float64
	EnergyJ float64
}

// decide picks the frequency for a job from its cached prediction curve.
// startS is when the job would begin on the candidate device; capMHz, when
// non-zero, is the device's observed thermal cap: candidate clocks above it
// are predicted at the capped speed (the throttle-aware re-tune), which
// removes any incentive to command a clock the governor will not deliver.
// guardFrac is the fraction of the remaining slack PolicyModel keeps in
// reserve: its candidates must be predicted to finish by
// startS + (1-guardFrac)·(deadlineS-startS), so noise, backoff and induced
// queueing eat the guard band before they eat the deadline; cfg.MaxStretch
// additionally excludes candidates predicted slower than that multiple of
// the fastest effective candidate (blocking control). The returned
// escalated flag reports that no candidate met the (guarded) deadline and
// the fastest effective clock was chosen instead.
func decide(cfg Config, curve []prediction, deadlineS, startS float64, capMHz int, guardFrac float64) (prediction, bool) {
	eff := func(p prediction) prediction {
		if capMHz > 0 && p.FreqMHz > capMHz {
			// The governor will deliver at most capMHz: predict the capped
			// clock's time/energy, keep the commanded frequency.
			for i := len(curve) - 1; i >= 0; i-- {
				if curve[i].FreqMHz <= capMHz {
					return prediction{FreqMHz: p.FreqMHz, TimeS: curve[i].TimeS, EnergyJ: curve[i].EnergyJ}
				}
			}
			// Cap below the whole grid: the slowest candidate is the best
			// stand-in the curve can offer.
			return prediction{FreqMHz: p.FreqMHz, TimeS: curve[0].TimeS, EnergyJ: curve[0].EnergyJ}
		}
		return p
	}

	switch cfg.Policy {
	case PolicyMaxFreq:
		return eff(curve[len(curve)-1]), false
	case PolicyStatic:
		for _, p := range curve {
			if p.FreqMHz == cfg.StaticFreqMHz {
				return eff(p), false
			}
		}
		return eff(curve[len(curve)-1]), false
	}

	// PolicyModel: minimum predicted energy subject to the predicted
	// completion meeting the guarded deadline, at the effective (cap-aware)
	// speed, within the stretch bound.
	budgetS := (1 - guardFrac) * (deadlineS - startS)
	fastestS := eff(curve[len(curve)-1]).TimeS
	for _, p := range curve {
		if e := eff(p); e.TimeS < fastestS {
			fastestS = e.TimeS
		}
	}
	var best prediction
	found := false
	for _, p := range curve {
		e := eff(p)
		if e.TimeS > budgetS {
			continue
		}
		if cfg.MaxStretch > 0 && e.TimeS > cfg.MaxStretch*fastestS {
			continue
		}
		if !found || e.EnergyJ < best.EnergyJ {
			best, found = e, true
		}
	}
	if found {
		return best, false
	}
	// No candidate meets the deadline: escalate to the fastest effective
	// clock to minimize the miss.
	fastest := curve[len(curve)-1]
	e := eff(fastest)
	for _, p := range curve {
		if c := eff(p); c.TimeS < e.TimeS {
			e = c
		}
	}
	return e, true
}
