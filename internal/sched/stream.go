package sched

import (
	"fmt"
	"math"
	"slices"

	"dsenergy/internal/cronos"
	"dsenergy/internal/gpusim"
	"dsenergy/internal/ligen"
	"dsenergy/internal/synergy"
	"dsenergy/internal/xrand"
)

// App identifies which of the paper's two applications a job runs.
type App int

const (
	// AppLiGen is a virtual-screening campaign slice (drug discovery).
	AppLiGen App = iota
	// AppCronos is an MHD simulation run (magnetohydrodynamics).
	AppCronos
)

// String returns the application name.
func (a App) String() string {
	switch a {
	case AppLiGen:
		return "ligen"
	case AppCronos:
		return "cronos"
	default:
		return fmt.Sprintf("App(%d)", int(a))
	}
}

// Job is one unit of tenant work: an application run with an arrival time, a
// size (the domain-specific input the paper's models are trained on), and a
// completion deadline. NominalS is the noiseless f_max execution time the
// deadline was sized from; it gives every job a model-independent notion of
// "how long this should take", so deadline tightness is a property of the
// stream, not of any predictor.
type Job struct {
	ID     int
	Tenant string
	App    App

	// LiGen is the library shape (AppLiGen jobs).
	LiGen ligen.Input
	// Grid and Steps describe the simulation (AppCronos jobs).
	Grid  [3]int
	Steps int

	ArrivalS  float64
	DeadlineS float64
	NominalS  float64
}

// Features returns the domain-specific model input of the job (Table 2): the
// library shape for LiGen, the grid dimensions for Cronos.
func (j Job) Features() []float64 {
	if j.App == AppLiGen {
		return []float64{float64(j.LiGen.Ligands), float64(j.LiGen.Atoms), float64(j.LiGen.Fragments)}
	}
	return []float64{float64(j.Grid[0]), float64(j.Grid[1]), float64(j.Grid[2])}
}

// Workload builds the executable workload of the job.
func (j Job) Workload() (synergy.Workload, error) {
	if j.App == AppLiGen {
		return ligen.NewWorkload(j.LiGen)
	}
	return cronos.NewWorkload(j.Grid[0], j.Grid[1], j.Grid[2], j.Steps)
}

// SlackS is the deadline slack the stream generator granted beyond arrival.
func (j Job) SlackS() float64 { return j.DeadlineS - j.ArrivalS }

// StreamConfig controls the seeded multi-tenant job stream. The zero value of
// every field selects the documented default.
type StreamConfig struct {
	// Seed drives every draw of the stream (sizes, arrivals, slacks).
	Seed uint64
	// Jobs is the total job count (default 96).
	Jobs int
	// Tenants are the tenant names jobs are attributed to round-robin-ishly
	// by weighted draw (default the three campaign owners below).
	Tenants []string
	// LiGenFrac is the probability a job is a LiGen screen (default 0.55,
	// the mixed-stream balance; the rest are Cronos runs).
	LiGenFrac float64
	// MeanInterarrivalS scales the exponential interarrival gaps, in
	// simulated seconds (default 0.08 — roughly 65% utilization of a
	// 4-device cluster at the ladders' mean nominal time, so queues form
	// without saturating).
	MeanInterarrivalS float64
	// SlackMin/SlackMax bound the uniform deadline slack multiplier applied
	// to the job's nominal f_max time (defaults 3 and 8): deadline =
	// arrival + max(slack · nominal, SlackFloorS). Values below ~1.5 make
	// deadlines unmeetable behind any queue; the defaults leave room for
	// down-clocking without making every deadline trivial.
	SlackMin, SlackMax float64
	// SlackFloorS is the minimum absolute deadline slack in simulated
	// seconds (default 1.0; negative disables). Without a floor, the
	// smallest jobs carry millisecond-scale deadlines no non-preemptive
	// scheduler can honor behind a single in-flight job — an SLO no
	// operator would sign.
	SlackFloorS float64
}

// DefaultTenants are the stream's campaign owners.
func DefaultTenants() []string { return []string{"chem-eu", "exscalate", "mhd-lab"} }

func (c StreamConfig) withDefaults() StreamConfig {
	if c.Jobs == 0 {
		c.Jobs = 96
	}
	if len(c.Tenants) == 0 {
		c.Tenants = DefaultTenants()
	}
	if c.LiGenFrac == 0 {
		c.LiGenFrac = 0.55
	}
	if c.MeanInterarrivalS == 0 {
		c.MeanInterarrivalS = 0.08
	}
	if c.SlackMin == 0 {
		c.SlackMin = 3
	}
	if c.SlackMax == 0 {
		c.SlackMax = 8
	}
	if c.SlackFloorS == 0 {
		c.SlackFloorS = 1.0
	}
	if c.SlackFloorS < 0 {
		c.SlackFloorS = 0
	}
	return c
}

// ligenSizes is the LiGen job-size ladder (library shapes drawn uniformly),
// spanning ~0.04-0.64 s of nominal f_max time per screen.
var ligenSizes = []ligen.Input{
	{Ligands: 1024, Atoms: 63, Fragments: 8},
	{Ligands: 2048, Atoms: 31, Fragments: 16},
	{Ligands: 4096, Atoms: 89, Fragments: 8},
	{Ligands: 8192, Atoms: 63, Fragments: 8},
	{Ligands: 16384, Atoms: 63, Fragments: 8},
}

// CronosSize is one rung of the Cronos job-size ladder.
type CronosSize struct {
	Grid  [3]int
	Steps int
}

// cronosSizes is the Cronos job-size ladder. Steps is a fixed function of
// the grid, so the model schema's three grid features determine the job cost
// in training and stream alike.
var cronosSizes = []CronosSize{
	{[3]int{128, 64, 64}, 8},
	{[3]int{160, 64, 64}, 10},
	{[3]int{192, 96, 96}, 10},
	{[3]int{256, 128, 128}, 12},
}

// LiGenSizeLadder returns the stream's LiGen shapes — the inputs a scheduler
// deployment trains its LiGen model on.
func LiGenSizeLadder() []ligen.Input { return slices.Clone(ligenSizes) }

// CronosSizeLadder returns the stream's Cronos sizes — the inputs a
// scheduler deployment trains its Cronos model on.
func CronosSizeLadder() []CronosSize { return slices.Clone(cronosSizes) }

// GenerateStream draws a deterministic mixed job stream against a reference
// device spec: arrivals are exponential, sizes come from the two ladders
// above, tenants are drawn uniformly, and each job's deadline is its arrival
// plus a uniform slack multiple of its noiseless f_max execution time on the
// reference device. Identical configs produce identical streams.
func GenerateStream(cfg StreamConfig, ref gpusim.Spec) ([]Job, error) {
	cfg = cfg.withDefaults()
	if cfg.Jobs < 1 {
		return nil, fmt.Errorf("sched: stream needs at least 1 job, got %d", cfg.Jobs)
	}
	if cfg.SlackMin <= 0 || cfg.SlackMax < cfg.SlackMin {
		return nil, fmt.Errorf("sched: bad slack range [%g,%g]", cfg.SlackMin, cfg.SlackMax)
	}
	if cfg.LiGenFrac < 0 || cfg.LiGenFrac > 1 {
		return nil, fmt.Errorf("sched: LiGenFrac %g out of [0,1]", cfg.LiGenFrac)
	}
	// The reference device evaluates noiseless nominal times; its seed is
	// irrelevant (Analytic never touches the noise stream) but must be fixed.
	dev, err := gpusim.New(ref, 0)
	if err != nil {
		return nil, err
	}
	fmax := ref.FMaxMHz()

	rng := xrand.New(cfg.Seed)
	jobs := make([]Job, 0, cfg.Jobs)
	var clock float64
	for i := 0; i < cfg.Jobs; i++ {
		// Exponential interarrival gap: -mean · ln(1-U).
		clock += -cfg.MeanInterarrivalS * math.Log(1-rng.Float64())
		j := Job{
			ID:       i,
			Tenant:   cfg.Tenants[rng.Intn(len(cfg.Tenants))],
			ArrivalS: clock,
		}
		if rng.Float64() < cfg.LiGenFrac {
			j.App = AppLiGen
			j.LiGen = ligenSizes[rng.Intn(len(ligenSizes))]
			w, err := ligen.NewWorkload(j.LiGen)
			if err != nil {
				return nil, err
			}
			j.NominalS, _ = w.AnalyticOn(dev, fmax)
		} else {
			j.App = AppCronos
			sz := cronosSizes[rng.Intn(len(cronosSizes))]
			j.Grid, j.Steps = sz.Grid, sz.Steps
			w, err := cronos.NewWorkload(sz.Grid[0], sz.Grid[1], sz.Grid[2], sz.Steps)
			if err != nil {
				return nil, err
			}
			j.NominalS, _ = w.AnalyticOn(dev, fmax)
		}
		slack := cfg.SlackMin + (cfg.SlackMax-cfg.SlackMin)*rng.Float64()
		slackS := slack * j.NominalS
		if slackS < cfg.SlackFloorS {
			slackS = cfg.SlackFloorS
		}
		j.DeadlineS = j.ArrivalS + slackS
		jobs = append(jobs, j)
	}
	return jobs, nil
}
