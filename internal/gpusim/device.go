// Package gpusim is an analytical simulator of DVFS-capable GPUs.
//
// It stands in for the paper's physical testbed (NVIDIA V100 and AMD MI100
// driven through NVML / ROCm-SMI): a device exposes a table of core
// frequencies, accepts kernel profiles (see internal/kernels) and returns
// execution time and energy computed from a roofline execution model coupled
// with a CMOS power model. The simulator reproduces the functional
// relationships the paper's characterization rests on:
//
//   - compute-bound kernels: time ∝ 1/f, so up-clocking buys speedup at a
//     super-linear energy cost (P ∝ V²f with V rising with f);
//   - memory-bound kernels: time is flat in the core frequency, so
//     down-clocking saves energy at near-zero performance loss;
//   - small launches under-utilize the device, shifting kernels toward the
//     latency/compute regime and diluting active power with idle power.
//
// All randomness (measurement noise) is drawn from a seeded generator, so
// simulated experiments are reproducible.
package gpusim

import (
	"fmt"
	"sort"

	"dsenergy/internal/kernels"
	"dsenergy/internal/obs"
	"dsenergy/internal/xrand"
)

// Vendor distinguishes the frequency-control conventions of the simulated
// device. NVIDIA devices expose an explicit default application clock; AMD
// devices default to an automatic performance level (the paper uses the
// frequency chosen by the "auto" governor as the AMD baseline).
type Vendor int

const (
	// NVIDIA marks devices with an explicit default core clock.
	NVIDIA Vendor = iota
	// AMD marks devices whose baseline is the automatic performance level.
	AMD
)

// String returns the vendor name.
func (v Vendor) String() string {
	switch v {
	case NVIDIA:
		return "NVIDIA"
	case AMD:
		return "AMD"
	default:
		return fmt.Sprintf("Vendor(%d)", int(v))
	}
}

// Spec is the full static description of a simulated device: geometry,
// frequency table, memory system and power-model coefficients. All power
// coefficients are in watts (per the unit noted on each field); frequencies
// are in MHz.
type Spec struct {
	Name   string
	Vendor Vendor

	// Compute geometry.
	NumCU      int     // streaming multiprocessors / compute units
	LanesPerCU int     // FP32 lanes per CU
	ComputeEff float64 // achieved fraction of peak issue rate (code quality)

	// Occupancy model.
	ConcurrentItems float64 // work items resident at full occupancy
	BWSaturateItems float64 // work items needed to saturate DRAM bandwidth

	// Frequency control.
	CoreFreqsMHz   []int // ascending table of selectable core frequencies
	DefaultFreqMHz int   // NVIDIA default application clock (0 for AMD)
	AutoFreqMHz    int   // AMD auto performance level (0 for NVIDIA)
	MemFreqMHz     int   // fixed memory clock

	// Memory system.
	PeakBWGBs float64 // peak DRAM bandwidth at MemFreqMHz
	MemEff    float64 // achieved fraction of peak bandwidth
	LLCBytes  float64 // last-level cache capacity
	// BWKnee is the fraction of f_max below which the core can no longer
	// keep the memory system saturated; below it achieved bandwidth decays
	// smoothly (exponent BWKneeExp).
	BWKnee    float64
	BWKneeExp float64

	// Voltage/frequency curve: V(f) = VMin for f <= VKnee·f_max, rising as
	// VMin + (VMax-VMin)·x^VExp above the knee, with x the normalized
	// position between the knee and f_max.
	VMin, VMax float64
	VKnee      float64
	VExp       float64

	// Power model (watts).
	IdleW        float64 // constant board power
	LeakCoeffW   float64 // leakage: LeakCoeffW · V²
	DynCoeffW    float64 // dynamic: DynCoeffW · NumCU · V² · f[GHz] · activity
	ClockCoeffW  float64 // clock tree / uncore: ClockCoeffW · V² · f[GHz] while busy
	MemCoeffWGBs float64 // memory: MemCoeffWGBs · achieved GB/s

	// BWMinUtil is the bandwidth-utilization floor: even a single resident
	// wave keeps a small fraction of DRAM bandwidth busy through its
	// outstanding misses (0 selects the default of 0.02).
	BWMinUtil float64

	// Thermal model (steady state): the die temperature under sustained
	// power P is TAmbientC + ThermalResKW·P. When it would exceed
	// TThrottleC, the governor reduces the clock exactly like a power cap
	// at (TThrottleC−TAmbientC)/ThermalResKW watts. A zero TThrottleC
	// disables thermal throttling.
	ThermalResKW float64 // K per watt
	TAmbientC    float64
	TThrottleC   float64

	// Kernel launch overhead: LaunchFixedS + LaunchCycles/f per launch.
	LaunchFixedS float64
	LaunchCycles float64
}

// Validate reports whether the spec is internally consistent.
func (s Spec) Validate() error {
	switch {
	case s.NumCU <= 0 || s.LanesPerCU <= 0:
		return fmt.Errorf("gpusim: %s: non-positive compute geometry", s.Name)
	case len(s.CoreFreqsMHz) < 2:
		return fmt.Errorf("gpusim: %s: frequency table too small", s.Name)
	case !sort.IntsAreSorted(s.CoreFreqsMHz):
		return fmt.Errorf("gpusim: %s: frequency table not ascending", s.Name)
	case s.ComputeEff <= 0 || s.ComputeEff > 1:
		return fmt.Errorf("gpusim: %s: ComputeEff out of (0,1]", s.Name)
	case s.MemEff <= 0 || s.MemEff > 1:
		return fmt.Errorf("gpusim: %s: MemEff out of (0,1]", s.Name)
	case s.VMin <= 0 || s.VMax < s.VMin:
		return fmt.Errorf("gpusim: %s: bad voltage range", s.Name)
	case s.Vendor == NVIDIA && s.DefaultFreqMHz == 0:
		return fmt.Errorf("gpusim: %s: NVIDIA device needs DefaultFreqMHz", s.Name)
	case s.Vendor == AMD && s.AutoFreqMHz == 0:
		return fmt.Errorf("gpusim: %s: AMD device needs AutoFreqMHz", s.Name)
	}
	// sort.IntsAreSorted accepts adjacent duplicates, but the menu must be
	// strictly ascending: the analytic cache keys dense curve slots by menu
	// position, and a repeated clock would alias two slots to one frequency.
	for i := 1; i < len(s.CoreFreqsMHz); i++ {
		if s.CoreFreqsMHz[i] == s.CoreFreqsMHz[i-1] {
			return &DuplicateFreqError{Device: s.Name, MHz: s.CoreFreqsMHz[i]}
		}
	}
	return nil
}

// DuplicateFreqError reports a core-frequency table with a repeated entry.
type DuplicateFreqError struct {
	Device string // spec name
	MHz    int    // the duplicated clock
}

func (e *DuplicateFreqError) Error() string {
	return fmt.Sprintf("gpusim: %s: duplicate core frequency %d MHz in table", e.Device, e.MHz)
}

// FMaxMHz returns the highest selectable core frequency.
func (s Spec) FMaxMHz() int { return s.CoreFreqsMHz[len(s.CoreFreqsMHz)-1] }

// FMinMHz returns the lowest selectable core frequency.
func (s Spec) FMinMHz() int { return s.CoreFreqsMHz[0] }

// BaselineFreqMHz returns the frequency used as the speedup/energy baseline:
// the default application clock on NVIDIA, the auto performance level on AMD.
func (s Spec) BaselineFreqMHz() int {
	if s.Vendor == AMD {
		return s.AutoFreqMHz
	}
	return s.DefaultFreqMHz
}

// NearestFreqMHz returns the table frequency closest to mhz.
func (s Spec) NearestFreqMHz(mhz int) int {
	i := sort.SearchInts(s.CoreFreqsMHz, mhz)
	if i == 0 {
		return s.CoreFreqsMHz[0]
	}
	if i == len(s.CoreFreqsMHz) {
		return s.FMaxMHz()
	}
	lo, hi := s.CoreFreqsMHz[i-1], s.CoreFreqsMHz[i]
	if mhz-lo <= hi-mhz {
		return lo
	}
	return hi
}

// FreqsAbove returns the table frequencies at or above frac·f_max. The
// modeling experiments sweep this band (the paper trains on "each (or a
// part) of the frequency configurations"; clocks below the memory-latency
// floor are never Pareto-relevant on either device).
func (s Spec) FreqsAbove(frac float64) []int {
	min := frac * float64(s.FMaxMHz())
	var out []int
	for _, f := range s.CoreFreqsMHz {
		if float64(f) >= min {
			out = append(out, f)
		}
	}
	return out
}

// FloorFreqMHz returns the highest table frequency at or below mhz, or the
// lowest table frequency when mhz is below the whole table — a governor
// enforcing a cap cannot stop the clock entirely.
func (s Spec) FloorFreqMHz(mhz int) int {
	i := sort.SearchInts(s.CoreFreqsMHz, mhz+1)
	if i == 0 {
		return s.CoreFreqsMHz[0]
	}
	return s.CoreFreqsMHz[i-1]
}

// HasFreq reports whether mhz is a selectable core frequency.
func (s Spec) HasFreq(mhz int) bool {
	i := sort.SearchInts(s.CoreFreqsMHz, mhz)
	return i < len(s.CoreFreqsMHz) && s.CoreFreqsMHz[i] == mhz
}

// Device is a simulated GPU. It carries the current core frequency, an
// energy counter in the style of NVML's totalEnergyConsumption, and a private
// noise generator. Device is not safe for concurrent use; callers that share
// one device across goroutines must serialize access (the synergy layer does).
type Device struct {
	spec        Spec
	coreFreqMHz int
	powerCapW   float64
	energyJ     float64
	noise       *NoiseModel
	// rng is the noise stream behind the noise model, retained so Fork can
	// split it deterministically.
	rng *xrand.Rand
	// tables caches the frequency-dependent model terms over the clock menu
	// (built once in New, immutable, shared by forks); cache memoizes
	// compiled profiles and their dense menu curves. Both are safe to share
	// across every fork of this device: the analytic model is a pure
	// function of (spec, profile, frequency), so cached values are
	// bit-identical to recomputed ones.
	tables *freqTables
	cache  *analyticCache
	// lastProfile/lastEntry memoize the most recent cache entry served to
	// this device (sweeps touch one kernel across the whole menu, so the
	// memo turns the common lookup into a struct compare). Private per
	// device — never shared with forks' future lookups racing — and safe to
	// seed from the parent at Fork: entries are immutable and live forever.
	lastProfile kernels.Profile
	lastEntry   *profileEntry
	// Observability handles (nil when no observer is attached; all no-ops
	// then). Resolved once in SetObserver and shared by forks — counter
	// accumulation is order-invariant, so sharing cannot perturb exports.
	launches *obs.Counter
	dvfs     *obs.Counter
}

// New constructs a device from spec with the measurement-noise model seeded
// by seed. The core clock starts at the vendor baseline.
func New(spec Spec, seed uint64) (*Device, error) {
	if err := spec.Validate(); err != nil {
		return nil, err
	}
	d := &Device{
		spec:  spec,
		rng:   xrand.New(seed),
		cache: newAnalyticCache(),
	}
	d.tables = newFreqTables(&d.spec)
	d.noise = NewNoiseModel(DefaultNoiseSigma, d.rng)
	d.coreFreqMHz = spec.BaselineFreqMHz()
	return d, nil
}

// Fork derives a child device for one task of a pre-split parallel
// execution: same spec, clock and power cap, a fresh energy counter, a noise
// stream split off the parent's (so the child's draws are deterministic in
// the fork order, not in the schedule), and the parent's shared analytic
// cache. Forking advances the parent's noise stream by exactly one draw,
// like any other stream split.
func (d *Device) Fork() *Device {
	child := &Device{
		spec:        d.spec,
		coreFreqMHz: d.coreFreqMHz,
		powerCapW:   d.powerCapW,
		rng:         d.rng.Split(),
		tables:      d.tables,
		cache:       d.cache,
		lastProfile: d.lastProfile,
		lastEntry:   d.lastEntry,
		launches:    d.launches,
		dvfs:        d.dvfs,
	}
	child.noise = NewNoiseModel(d.noise.Sigma, child.rng)
	return child
}

// SetObserver attaches an observability sink to the device: kernel-launch
// and DVFS-transition counters plus the shared analytic cache's hit/miss
// counters (unstable tier — parallel forks can race on a miss, so those
// totals depend on scheduling). Call before the device is used from worker
// goroutines; forks inherit the parent's handles. A nil observer detaches.
func (d *Device) SetObserver(o *obs.Observer) {
	m := o.Metrics()
	d.launches = m.Counter("gpusim_kernel_launches_total", obs.L("device", d.spec.Name))
	d.dvfs = m.Counter("gpusim_dvfs_transitions_total", obs.L("device", d.spec.Name))
	if d.cache != nil {
		d.cache.setObserver(m, d.spec.Name)
	}
}

// Spec returns the device description.
func (d *Device) Spec() Spec { return d.spec }

// CoreFreqMHz returns the currently selected core frequency.
func (d *Device) CoreFreqMHz() int { return d.coreFreqMHz }

// SetCoreFreqMHz selects a core frequency from the device table. Frequencies
// not in the table are rejected, mirroring NVML semantics.
func (d *Device) SetCoreFreqMHz(mhz int) error {
	if !d.spec.HasFreq(mhz) {
		return fmt.Errorf("gpusim: %s: frequency %d MHz not in table (range %d-%d)",
			d.spec.Name, mhz, d.spec.FMinMHz(), d.spec.FMaxMHz())
	}
	if mhz != d.coreFreqMHz {
		d.dvfs.Inc()
	}
	d.coreFreqMHz = mhz
	return nil
}

// ResetCoreFreq restores the vendor baseline clock.
func (d *Device) ResetCoreFreq() {
	if base := d.spec.BaselineFreqMHz(); base != d.coreFreqMHz {
		d.dvfs.Inc()
		d.coreFreqMHz = base
	}
}

// SetPowerCapW sets a board power limit in the style of NVML's power
// management limit / ROCm-SMI's power cap: when a kernel's steady-state
// power at the selected clock would exceed the cap, the device throttles to
// the highest table frequency that satisfies it. A cap of 0 disables
// limiting. Negative caps are rejected.
func (d *Device) SetPowerCapW(watts float64) error {
	if watts < 0 {
		return fmt.Errorf("gpusim: %s: negative power cap %g W", d.spec.Name, watts)
	}
	d.powerCapW = watts
	return nil
}

// PowerCapW returns the current power limit (0 = unlimited).
func (d *Device) PowerCapW() float64 { return d.powerCapW }

// effectiveCapW combines the explicit power cap with the thermal ceiling
// (the sustained power at which the die reaches the throttle temperature).
func (d *Device) effectiveCapW() float64 {
	cap := d.powerCapW
	s := d.spec
	if s.TThrottleC > 0 && s.ThermalResKW > 0 {
		thermal := (s.TThrottleC - s.TAmbientC) / s.ThermalResKW
		if thermal > 0 && (cap == 0 || thermal < cap) {
			cap = thermal
		}
	}
	return cap
}

// SteadyTempC returns the steady-state die temperature for the profile at
// the given clock (ambient when no thermal model is configured).
func (d *Device) SteadyTempC(p kernels.Profile, mhz int) float64 {
	if d.spec.ThermalResKW <= 0 {
		return d.spec.TAmbientC
	}
	return d.spec.TAmbientC + d.spec.ThermalResKW*d.AnalyzeAt(p, mhz).TotalPowerW
}

// throttledFreq returns the frequency the power/thermal governor actually
// runs p at: the requested clock, or the highest clock whose predicted power
// fits the effective cap. If even the lowest clock exceeds the cap, the
// lowest clock is used (matching real governors, which cannot stop the clock
// entirely).
func (d *Device) throttledFreq(p kernels.Profile, mhz int) int {
	cap := d.effectiveCapW()
	if cap == 0 {
		return mhz
	}
	if d.AnalyzeAt(p, mhz).TotalPowerW <= cap {
		return mhz
	}
	freqs := d.spec.CoreFreqsMHz
	i := sort.SearchInts(freqs, mhz)
	if i >= len(freqs) {
		i = len(freqs) - 1
	}
	if d.cache != nil {
		// The downclock walk scans the profile's dense compiled curve in
		// place: one snapshot read for the whole descent instead of a cache
		// lookup per candidate clock.
		e := d.entryFor(&p)
		for ; i > 0; i-- {
			if e.curve[i].TotalPowerW <= cap {
				return freqs[i]
			}
		}
		return freqs[0]
	}
	for ; i > 0; i-- {
		if d.AnalyzeAt(p, freqs[i]).TotalPowerW <= cap {
			return freqs[i]
		}
	}
	return freqs[0]
}

// EnergyCounterJ returns the cumulative energy consumed by all kernels run on
// this device, in joules. The synergy layer reads it before and after a
// submission to attribute energy to kernels.
func (d *Device) EnergyCounterJ() float64 { return d.energyJ }

// AddEnergyJ advances the cumulative energy counter by the given joules.
// The synergy layer uses it to charge the partial execution of submissions
// aborted by an injected fault: the work is wasted, but the board still
// burned the energy and real counters would show it.
func (d *Device) AddEnergyJ(energyJ float64) { d.energyJ += energyJ }

// Result is the outcome of executing a kernel profile.
type Result struct {
	TimeS     float64 // wall-clock execution time
	EnergyJ   float64 // energy attributed to the execution
	AvgPowerW float64 // EnergyJ / TimeS
}

// Run executes the profile at the current core frequency (possibly
// throttled by the power cap) with measurement noise applied, advances the
// energy counter, and returns the observation.
func (d *Device) Run(p kernels.Profile) (Result, error) {
	if err := p.Validate(); err != nil {
		return Result{}, err
	}
	r := d.Analytic(p, d.throttledFreq(p, d.coreFreqMHz))
	r = d.noise.Perturb(r)
	d.energyJ += r.EnergyJ
	d.launches.Inc()
	return r, nil
}

// RunAt is Run at an explicit frequency; the device clock is left unchanged.
func (d *Device) RunAt(p kernels.Profile, mhz int) (Result, error) {
	if !d.spec.HasFreq(mhz) {
		return Result{}, fmt.Errorf("gpusim: %s: frequency %d MHz not in table", d.spec.Name, mhz)
	}
	if err := p.Validate(); err != nil {
		return Result{}, err
	}
	r := d.Analytic(p, d.throttledFreq(p, mhz))
	r = d.noise.Perturb(r)
	d.energyJ += r.EnergyJ
	d.launches.Inc()
	return r, nil
}

// SetNoiseSigma replaces the relative noise level (0 disables noise).
func (d *Device) SetNoiseSigma(sigma float64) { d.noise.Sigma = sigma }
