package gpusim

import (
	"bytes"
	"strings"
	"testing"

	"dsenergy/internal/obs"
)

func TestNewErrorPathReachableWithoutCrash(t *testing.T) {
	// Library code must return construction errors, never panic (the old
	// MustNew escape hatch is gone).
	bad := V100Spec()
	bad.NumCU = 0
	if _, err := New(bad, 1); err == nil {
		t.Fatal("invalid spec must be rejected with an error")
	}
}

func TestDeviceObserverCounters(t *testing.T) {
	o := obs.NewObserver()
	d := mustNew(t, V100Spec(), 1)
	d.SetObserver(o)
	p := computeBound()

	if _, err := d.Run(p); err != nil {
		t.Fatal(err)
	}
	if _, err := d.RunAt(p, 1297); err != nil {
		t.Fatal(err)
	}
	launches := o.Metrics().Counter("gpusim_kernel_launches_total", obs.L("device", d.Spec().Name))
	if got := launches.Value(); got != 2 {
		t.Fatalf("launch counter = %d, want 2", got)
	}

	dvfs := o.Metrics().Counter("gpusim_dvfs_transitions_total", obs.L("device", d.Spec().Name))
	fmax := d.Spec().FMaxMHz()
	if err := d.SetCoreFreqMHz(fmax); err != nil {
		t.Fatal(err)
	}
	if err := d.SetCoreFreqMHz(fmax); err != nil { // no-op re-set: not a transition
		t.Fatal(err)
	}
	d.ResetCoreFreq()
	d.ResetCoreFreq() // already at baseline: not a transition
	if got := dvfs.Value(); got != 2 {
		t.Fatalf("dvfs counter = %d, want 2 (set + reset)", got)
	}
}

func TestForkSharesObserverHandles(t *testing.T) {
	o := obs.NewObserver()
	d := mustNew(t, V100Spec(), 1)
	d.SetObserver(o)
	p := computeBound()
	child := d.Fork()
	if _, err := child.Run(p); err != nil {
		t.Fatal(err)
	}
	if _, err := d.Run(p); err != nil {
		t.Fatal(err)
	}
	launches := o.Metrics().Counter("gpusim_kernel_launches_total", obs.L("device", d.Spec().Name))
	if got := launches.Value(); got != 2 {
		t.Fatalf("fork must share the parent's launch counter: got %d, want 2", got)
	}
}

func TestCacheCountersAreUnstableTier(t *testing.T) {
	o := obs.NewObserver()
	d := mustNew(t, V100Spec(), 1)
	d.SetObserver(o)
	p := computeBound()
	d.AnalyzeAt(p, 1297) // miss
	d.AnalyzeAt(p, 1297) // hit
	var det bytes.Buffer
	if err := o.WriteMetricsText(&det); err != nil {
		t.Fatal(err)
	}
	if strings.Contains(det.String(), "analytic_cache") {
		t.Fatalf("cache counters must not appear in the deterministic export:\n%s", det.String())
	}
	var prof bytes.Buffer
	if err := o.WriteProfileText(&prof); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{
		"gpusim_analytic_cache_hits_total{device=NVIDIA V100} 1",
		"gpusim_analytic_cache_misses_total{device=NVIDIA V100} 1",
	} {
		if !strings.Contains(prof.String(), want) {
			t.Fatalf("profile dump missing %q:\n%s", want, prof.String())
		}
	}
}

func TestObserverDoesNotPerturbResults(t *testing.T) {
	// The core determinism contract at the device level: identical seeds
	// with and without an observer produce bit-identical observations.
	plain := mustNew(t, V100Spec(), 9)
	observed := mustNew(t, V100Spec(), 9)
	observed.SetObserver(obs.NewObserver())
	p := memoryBound()
	for i := 0; i < 5; i++ {
		a, err := plain.Run(p)
		if err != nil {
			t.Fatal(err)
		}
		b, err := observed.Run(p)
		if err != nil {
			t.Fatal(err)
		}
		if a != b {
			t.Fatalf("rep %d: observed run diverged: %+v vs %+v", i, a, b)
		}
	}
}
