package gpusim

// Preset device specifications mirroring the paper's testbed. The parameter
// values are drawn from public datasheets (geometry, clocks, bandwidth) and
// from published DVFS characterizations (voltage curves, power splits); they
// are calibrated so the simulated characterization reproduces the *shape* of
// the paper's figures, not the authors' absolute readings.

// V100Spec describes the NVIDIA Tesla V100 (SXM2, 32 GB HBM2) used for the
// paper's model training: one memory frequency (1107 MHz) and 196 core
// frequencies between 135 and 1597 MHz.
func V100Spec() Spec {
	return Spec{
		Name:   "NVIDIA V100",
		Vendor: NVIDIA,

		NumCU:      80,
		LanesPerCU: 64,
		ComputeEff: 0.74,

		ConcurrentItems: 80 * 2048,
		BWSaturateItems: 80 * 256,

		CoreFreqsMHz:   freqTable(135, 1597, 196),
		DefaultFreqMHz: nearestIn(freqTable(135, 1597, 196), 1297),
		MemFreqMHz:     1107,

		PeakBWGBs: 900,
		MemEff:    0.78,
		LLCBytes:  6 << 20,
		BWKnee:    0.36,
		BWKneeExp: 0.45,

		ThermalResKW: 0.15,
		TAmbientC:    30,
		TThrottleC:   88,

		VMin:  0.712,
		VMax:  1.093,
		VKnee: 0.50,
		VExp:  2.20,

		IdleW:        38,
		LeakCoeffW:   28,
		DynCoeffW:    1.30,
		ClockCoeffW:  20,
		MemCoeffWGBs: 0.075,
		BWMinUtil:    0.02,

		LaunchFixedS: 4e-6,
		LaunchCycles: 1600,
	}
}

// MI100Spec describes the AMD Instinct MI100. AMD exposes no default clock;
// the baseline is the frequency picked by the automatic performance level,
// which under load sits near the top of the range.
func MI100Spec() Spec {
	return Spec{
		Name:   "AMD MI100",
		Vendor: AMD,

		NumCU:      120,
		LanesPerCU: 64,
		// The paper's SYCL port is less tuned for CDNA than for Volta;
		// LiGen and Cronos both run slower and hotter on the MI100
		// (Figures 7 and 9), which the lower achieved issue rate captures.
		ComputeEff: 0.28,

		ConcurrentItems: 120 * 2560,
		BWSaturateItems: 120 * 256,

		CoreFreqsMHz: freqTable(300, 1502, 151),
		AutoFreqMHz:  nearestIn(freqTable(300, 1502, 151), 1402),
		MemFreqMHz:   1200,

		PeakBWGBs: 1229,
		MemEff:    0.60,
		LLCBytes:  8 << 20,
		BWKnee:    0.38,
		BWKneeExp: 0.50,

		ThermalResKW: 0.14,
		TAmbientC:    30,
		TThrottleC:   90,

		VMin:  0.75,
		VMax:  1.15,
		VKnee: 0.47,
		VExp:  2.00,

		IdleW:        45,
		LeakCoeffW:   30,
		DynCoeffW:    0.95,
		ClockCoeffW:  24,
		MemCoeffWGBs: 0.080,
		BWMinUtil:    0.02,

		LaunchFixedS: 6e-6,
		LaunchCycles: 2200,
	}
}

// A100Spec describes an NVIDIA A100 (SXM4, 40 GB HBM2e) — not part of the
// paper's testbed, but included to exercise the methodology's claimed
// architecture independence: the modeling pipeline only needs the device's
// frequency table and baseline clock.
func A100Spec() Spec {
	return Spec{
		Name:   "NVIDIA A100",
		Vendor: NVIDIA,

		NumCU:      108,
		LanesPerCU: 64,
		ComputeEff: 0.78,

		ConcurrentItems: 108 * 2048,
		BWSaturateItems: 108 * 256,

		CoreFreqsMHz:   freqTable(210, 1410, 81),
		DefaultFreqMHz: nearestIn(freqTable(210, 1410, 81), 1095),
		MemFreqMHz:     1215,

		PeakBWGBs: 1555,
		MemEff:    0.82,
		LLCBytes:  40 << 20,
		BWKnee:    0.34,
		BWKneeExp: 0.45,

		ThermalResKW: 0.13,
		TAmbientC:    30,
		TThrottleC:   90,

		VMin:  0.70,
		VMax:  1.05,
		VKnee: 0.52,
		VExp:  2.1,

		IdleW:        48,
		LeakCoeffW:   32,
		DynCoeffW:    1.45,
		ClockCoeffW:  26,
		MemCoeffWGBs: 0.06,
		BWMinUtil:    0.02,

		LaunchFixedS: 3.5e-6,
		LaunchCycles: 1500,
	}
}

// Specs returns the preset testbed, in the order the paper introduces it.
func Specs() []Spec { return []Spec{V100Spec(), MI100Spec()} }

// AllSpecs returns every preset, including devices beyond the paper's
// testbed.
func AllSpecs() []Spec { return []Spec{V100Spec(), MI100Spec(), A100Spec()} }

// SpecByName returns the preset with the given name, or false.
func SpecByName(name string) (Spec, bool) {
	for _, s := range AllSpecs() {
		if s.Name == name {
			return s, true
		}
	}
	return Spec{}, false
}

// freqTable returns n evenly spaced integer frequencies from lo to hi MHz
// inclusive, ascending and deduplicated.
func freqTable(lo, hi, n int) []int {
	if n < 2 {
		return []int{lo}
	}
	out := make([]int, 0, n)
	step := float64(hi-lo) / float64(n-1)
	prev := lo - 1
	for i := 0; i < n; i++ {
		f := lo + int(float64(i)*step+0.5)
		if f > hi {
			f = hi
		}
		if f != prev {
			out = append(out, f)
			prev = f
		}
	}
	return out
}

// nearestIn returns the element of table closest to mhz.
func nearestIn(table []int, mhz int) int {
	best, bestd := table[0], abs(table[0]-mhz)
	for _, f := range table[1:] {
		if d := abs(f - mhz); d < bestd {
			best, bestd = f, d
		}
	}
	return best
}

func abs(x int) int {
	if x < 0 {
		return -x
	}
	return x
}
