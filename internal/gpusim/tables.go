package gpusim

import "sort"

// freqTables caches the frequency-dependent model terms over a device's
// clock menu, indexed by menu position. Built once in New from the validated
// spec, immutable afterwards, and shared by every Fork of the device — the
// menu is fixed for the device's lifetime, so the table never invalidates.
type freqTables struct {
	menu    []int       // ascending clock menu (aliases Spec.CoreFreqsMHz)
	terms   []freqTerms // terms[i] = freqTermsAt(menu[i])
	fminMHz int
	// byOffset direct-addresses mhz-fminMHz to a menu index (-1 off-menu),
	// making the hot-path index lookup one bounds check and one load. nil
	// when the menu spans too many MHz to justify the table; menuIndex then
	// falls back to binary search.
	byOffset []int32
}

// maxDirectSpanMHz bounds the direct-address index: real clock menus span a
// couple thousand MHz (a few KiB of int32), but the spec surface accepts
// arbitrary tables and a degenerate menu like {1, 10_000_000} must not
// allocate megabytes per device.
const maxDirectSpanMHz = 1 << 16

func newFreqTables(s *Spec) *freqTables {
	t := &freqTables{
		menu:    s.CoreFreqsMHz,
		terms:   make([]freqTerms, len(s.CoreFreqsMHz)),
		fminMHz: s.FMinMHz(),
	}
	for i, f := range s.CoreFreqsMHz {
		t.terms[i] = s.freqTermsAt(f)
	}
	if span := s.FMaxMHz() - t.fminMHz + 1; span <= maxDirectSpanMHz {
		t.byOffset = make([]int32, span)
		for i := range t.byOffset {
			t.byOffset[i] = -1
		}
		for i, f := range s.CoreFreqsMHz {
			t.byOffset[f-t.fminMHz] = int32(i)
		}
	}
	return t
}

// menuIndex returns the clock-menu position of mhz, or ok=false when mhz is
// not a selectable frequency.
func (t *freqTables) menuIndex(mhz int) (int, bool) {
	if t.byOffset != nil {
		off := mhz - t.fminMHz
		if off < 0 || off >= len(t.byOffset) {
			return 0, false
		}
		i := t.byOffset[off]
		if i < 0 {
			return 0, false
		}
		return int(i), true
	}
	i := sort.SearchInts(t.menu, mhz)
	if i < len(t.menu) && t.menu[i] == mhz {
		return i, true
	}
	return 0, false
}
