package gpusim

import (
	"errors"
	"testing"

	"dsenergy/internal/kernels"
)

func TestValidateRejectsDuplicateFreqs(t *testing.T) {
	cases := []struct {
		name  string
		freqs []int
		dup   int
	}{
		{"adjacent at start", []int{135, 135, 500, 1597}, 135},
		{"adjacent in middle", []int{135, 500, 500, 1597}, 500},
		{"adjacent at end", []int{135, 500, 1597, 1597}, 1597},
	}
	for _, c := range cases {
		s := V100Spec()
		s.CoreFreqsMHz = c.freqs
		s.DefaultFreqMHz = 135
		err := s.Validate()
		if err == nil {
			t.Errorf("%s: duplicate table %v must be rejected", c.name, c.freqs)
			continue
		}
		var dup *DuplicateFreqError
		if !errors.As(err, &dup) {
			t.Errorf("%s: error %v is not a *DuplicateFreqError", c.name, err)
			continue
		}
		if dup.MHz != c.dup || dup.Device != s.Name {
			t.Errorf("%s: got (%q, %d MHz), want (%q, %d MHz)", c.name, dup.Device, dup.MHz, s.Name, c.dup)
		}
	}
	if err := V100Spec().Validate(); err != nil {
		t.Fatalf("strictly ascending preset must stay valid: %v", err)
	}
}

// offMenuProbes returns frequencies that are not on the spec's clock menu:
// below the table, between two entries, and above the table.
func offMenuProbes(tb testing.TB, s Spec) []int {
	tb.Helper()
	probes := []int{s.FMinMHz() - 3, s.CoreFreqsMHz[len(s.CoreFreqsMHz)/2] + 1, s.FMaxMHz() + 50}
	for _, f := range probes {
		if s.HasFreq(f) {
			tb.Fatalf("probe %d unexpectedly on the menu", f)
		}
	}
	return probes
}

func TestAnalyzeAtOffMenuMatchesDirectEvaluation(t *testing.T) {
	// Off-menu clocks (NearestFreq interpolation call sites probe these)
	// must take the direct-evaluation fallback and produce exactly what a
	// cacheless device computes.
	cached := mustNew(t, V100Spec(), 1)
	direct := mustNew(t, V100Spec(), 1)
	direct.DisableAnalyticCache()
	for _, p := range []kernels.Profile{computeBound(), memoryBound()} {
		for _, f := range offMenuProbes(t, cached.Spec()) {
			if got, want := cached.AnalyzeAt(p, f), direct.AnalyzeAt(p, f); got != want {
				t.Errorf("%s at off-menu %d MHz: cached %+v != direct %+v", p.Name, f, got, want)
			}
		}
	}
}

func TestDisableAnalyticCacheFallbackMatchesCached(t *testing.T) {
	cached := mustNew(t, V100Spec(), 1)
	direct := mustNew(t, V100Spec(), 1)
	direct.DisableAnalyticCache()
	p := memoryBound()
	for _, f := range cached.Spec().CoreFreqsMHz {
		if got, want := direct.AnalyzeAt(p, f), cached.AnalyzeAt(p, f); got != want {
			t.Fatalf("at %d MHz: direct %+v != cached %+v", f, got, want)
		}
	}
	if h, m := direct.AnalyticCacheStats(); h != 0 || m != 0 {
		t.Fatalf("detached cache must report zero stats, got %d/%d", h, m)
	}
}

func TestAnalyzeCurveMatchesAnalyzeAt(t *testing.T) {
	d := mustNew(t, V100Spec(), 1)
	direct := mustNew(t, V100Spec(), 1)
	direct.DisableAnalyticCache()
	// Full menu plus off-menu probes in one batch, on both the cached and
	// the cacheless implementation.
	freqs := append(append([]int(nil), d.Spec().CoreFreqsMHz...), offMenuProbes(t, d.Spec())...)
	for _, p := range []kernels.Profile{computeBound(), memoryBound()} {
		for name, dev := range map[string]*Device{"cached": d, "direct": direct} {
			curve := dev.AnalyzeCurve(p, freqs)
			if len(curve) != len(freqs) {
				t.Fatalf("%s: curve length %d, want %d", name, len(curve), len(freqs))
			}
			for i, f := range freqs {
				if want := dev.AnalyzeAt(p, f); curve[i] != want {
					t.Errorf("%s: %s curve[%d] (%d MHz) = %+v, want %+v", name, p.Name, i, f, curve[i], want)
				}
			}
		}
	}
	if got := d.AnalyzeCurve(computeBound(), nil); len(got) != 0 {
		t.Fatalf("empty frequency list must yield an empty curve, got %d entries", len(got))
	}
}

func TestForkSharesCompiledCurves(t *testing.T) {
	d := mustNew(t, V100Spec(), 1)
	p := computeBound()
	d.AnalyzeAt(p, 1297) // compile + publish on the parent
	child := d.Fork()
	child.AnalyzeAt(p, d.Spec().FMaxMHz())
	hits, misses := d.AnalyticCacheStats()
	if misses != 1 {
		t.Fatalf("misses = %d, want 1 (one compile shared by parent and fork)", misses)
	}
	if hits != 1 {
		t.Fatalf("hits = %d, want 1 (fork served from the parent's snapshot)", hits)
	}
}

func TestPowerCapThrottleSameWithCacheDisabled(t *testing.T) {
	// The throttle governor walks the dense compiled curve when the cache is
	// attached and falls back to pointwise evaluation otherwise; both walks
	// must pick the same clock and hence the same observation stream.
	run := func(disable bool) Result {
		d := mustNew(t, V100Spec(), 7)
		if disable {
			d.DisableAnalyticCache()
		}
		if err := d.SetPowerCapW(180); err != nil {
			t.Fatal(err)
		}
		if err := d.SetCoreFreqMHz(d.Spec().FMaxMHz()); err != nil {
			t.Fatal(err)
		}
		r, err := d.Run(computeBound())
		if err != nil {
			t.Fatal(err)
		}
		return r
	}
	if with, without := run(false), run(true); with != without {
		t.Fatalf("capped run diverged: cached %+v != direct %+v", with, without)
	}
}

func TestAnalyzeAtAllocationFree(t *testing.T) {
	d := mustNew(t, V100Spec(), 1)
	p := computeBound()
	d.AnalyzeAt(p, 1297) // warm: compile + publish happen once, outside the guard
	if allocs := testing.AllocsPerRun(100, func() { d.AnalyzeAt(p, 1297) }); allocs != 0 {
		t.Errorf("cached AnalyzeAt allocates %.1f/op, want 0", allocs)
	}
	off := d.Spec().FMaxMHz() + 50
	if allocs := testing.AllocsPerRun(100, func() { d.AnalyzeAt(p, off) }); allocs != 0 {
		t.Errorf("off-menu AnalyzeAt allocates %.1f/op, want 0", allocs)
	}
	direct := mustNew(t, V100Spec(), 1)
	direct.DisableAnalyticCache()
	if allocs := testing.AllocsPerRun(100, func() { direct.AnalyzeAt(p, 1297) }); allocs != 0 {
		t.Errorf("uncached AnalyzeAt allocates %.1f/op, want 0", allocs)
	}
}

func TestAnalyzeCurveSingleAllocation(t *testing.T) {
	d := mustNew(t, V100Spec(), 1)
	p := computeBound()
	freqs := d.Spec().CoreFreqsMHz
	d.AnalyzeCurve(p, freqs)
	if allocs := testing.AllocsPerRun(20, func() { d.AnalyzeCurve(p, freqs) }); allocs != 1 {
		t.Errorf("cached AnalyzeCurve allocates %.1f/op, want 1 (the result slice)", allocs)
	}
}

func BenchmarkAnalyzeCurve(b *testing.B) {
	// Full V100 clock menu per op; compare against len(menu) AnalyzeAt calls.
	b.Run("cached", func(b *testing.B) {
		d := mustNew(b, V100Spec(), 1)
		p := computeBound()
		freqs := d.Spec().CoreFreqsMHz
		d.AnalyzeCurve(p, freqs)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			_ = d.AnalyzeCurve(p, freqs)
		}
		b.ReportMetric(float64(b.Elapsed().Nanoseconds())/float64(b.N)/float64(len(freqs)), "ns/point")
	})
	b.Run("uncached", func(b *testing.B) {
		d := mustNew(b, V100Spec(), 1)
		d.DisableAnalyticCache()
		p := computeBound()
		freqs := d.Spec().CoreFreqsMHz
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			_ = d.AnalyzeCurve(p, freqs)
		}
		b.ReportMetric(float64(b.Elapsed().Nanoseconds())/float64(b.N)/float64(len(freqs)), "ns/point")
	})
}
