package gpusim

import (
	"math"
	"testing"
	"testing/quick"

	"dsenergy/internal/kernels"
)

// mustNew builds a device from a known-good spec, failing the test on error.
func mustNew(tb testing.TB, spec Spec, seed uint64) *Device {
	tb.Helper()
	d, err := New(spec, seed)
	if err != nil {
		tb.Fatal(err)
	}
	return d
}

// computeBound is a kernel profile that saturates the ALUs with negligible
// memory traffic.
func computeBound() kernels.Profile {
	return kernels.Profile{
		Name: "compute",
		Mix: kernels.InstructionMix{
			FloatAdd: 200, FloatMul: 200, IntAdd: 20, GlobalAcc: 1,
		},
		WorkItems: 1 << 20, Launches: 8,
		WorkingSetBytes: 1 << 20, CacheReuse: 0.9,
	}
}

// memoryBound is a streaming kernel with minimal arithmetic.
func memoryBound() kernels.Profile {
	return kernels.Profile{
		Name: "stream",
		Mix: kernels.InstructionMix{
			FloatAdd: 2, IntAdd: 4, GlobalAcc: 48,
		},
		WorkItems: 1 << 20, Launches: 8,
		WorkingSetBytes: 512 << 20, CacheReuse: 0,
	}
}

func TestPresetSpecsValid(t *testing.T) {
	for _, s := range Specs() {
		if err := s.Validate(); err != nil {
			t.Errorf("%s: %v", s.Name, err)
		}
	}
}

func TestV100FrequencyTable(t *testing.T) {
	s := V100Spec()
	if got := len(s.CoreFreqsMHz); got != 196 {
		t.Errorf("V100 frequency count %d, want 196 (as in the paper)", got)
	}
	if s.FMinMHz() != 135 || s.FMaxMHz() != 1597 {
		t.Errorf("V100 range %d-%d, want 135-1597", s.FMinMHz(), s.FMaxMHz())
	}
	if s.MemFreqMHz != 1107 {
		t.Errorf("V100 memory clock %d, want 1107", s.MemFreqMHz)
	}
	if !s.HasFreq(s.DefaultFreqMHz) {
		t.Error("default frequency not in table")
	}
}

func TestSpecValidationErrors(t *testing.T) {
	base := V100Spec()
	cases := []struct {
		name string
		mut  func(*Spec)
	}{
		{"no CUs", func(s *Spec) { s.NumCU = 0 }},
		{"short table", func(s *Spec) { s.CoreFreqsMHz = []int{100} }},
		{"unsorted table", func(s *Spec) { s.CoreFreqsMHz = []int{200, 100, 300} }},
		{"bad eff", func(s *Spec) { s.ComputeEff = 1.5 }},
		{"bad voltage", func(s *Spec) { s.VMax = 0.1 }},
		{"nvidia no default", func(s *Spec) { s.DefaultFreqMHz = 0 }},
	}
	for _, c := range cases {
		s := base
		c.mut(&s)
		if err := s.Validate(); err == nil {
			t.Errorf("%s: expected validation error", c.name)
		}
	}
	amd := MI100Spec()
	amd.AutoFreqMHz = 0
	if err := amd.Validate(); err == nil {
		t.Error("AMD spec without auto frequency should be invalid")
	}
}

func TestNearestFreq(t *testing.T) {
	s := V100Spec()
	for _, f := range []int{0, 135, 800, 1297, 1597, 5000} {
		n := s.NearestFreqMHz(f)
		if !s.HasFreq(n) {
			t.Errorf("nearest(%d) = %d not in table", f, n)
		}
	}
	if n := s.NearestFreqMHz(0); n != 135 {
		t.Errorf("nearest(0) = %d, want 135", n)
	}
	if n := s.NearestFreqMHz(9999); n != 1597 {
		t.Errorf("nearest(9999) = %d, want 1597", n)
	}
}

func TestFreqsAbove(t *testing.T) {
	s := V100Spec()
	band := s.FreqsAbove(0.5)
	min := 0.5 * float64(s.FMaxMHz())
	for _, f := range band {
		if float64(f) < min {
			t.Errorf("band frequency %d below %.0f", f, min)
		}
	}
	if band[len(band)-1] != s.FMaxMHz() {
		t.Error("band misses f_max")
	}
}

func TestVoltageCurveMonotone(t *testing.T) {
	s := V100Spec()
	prev := 0.0
	for _, f := range s.CoreFreqsMHz {
		v := s.voltageAt(f)
		if v < s.VMin-1e-12 || v > s.VMax+1e-12 {
			t.Fatalf("voltage %g at %d MHz out of [%g,%g]", v, f, s.VMin, s.VMax)
		}
		if v < prev {
			t.Fatalf("voltage curve not monotone at %d MHz", f)
		}
		prev = v
	}
	if got := s.voltageAt(s.FMaxMHz()); math.Abs(got-s.VMax) > 1e-9 {
		t.Errorf("voltage at f_max %g, want VMax %g", got, s.VMax)
	}
}

func TestComputeBoundTimeScalesInverseFreq(t *testing.T) {
	d := mustNew(t, V100Spec(), 1)
	p := computeBound()
	t1 := d.Analytic(p, 800).TimeS
	t2 := d.Analytic(p, 1597).TimeS
	ratio := t1 / t2
	want := 1597.0 / 800.0
	if math.Abs(ratio-want) > 0.1*want {
		t.Errorf("compute-bound time ratio %g, want ~%g", ratio, want)
	}
}

func TestMemoryBoundTimeFlat(t *testing.T) {
	d := mustNew(t, V100Spec(), 1)
	p := memoryBound()
	t1 := d.Analytic(p, 800).TimeS
	t2 := d.Analytic(p, 1597).TimeS
	if rel := math.Abs(t1-t2) / t2; rel > 0.05 {
		t.Errorf("memory-bound time varies %.1f%% across 800-1597 MHz, want flat", rel*100)
	}
}

func TestPowerIncreasesWithFrequency(t *testing.T) {
	d := mustNew(t, V100Spec(), 1)
	p := computeBound()
	prev := 0.0
	for _, f := range []int{800, 1000, 1200, 1400, 1597} {
		pw := d.Analytic(p, f).AvgPowerW
		if pw <= prev {
			t.Fatalf("power not increasing at %d MHz: %g <= %g", f, pw, prev)
		}
		prev = pw
	}
}

func TestEnergyBowlExistsForComputeBound(t *testing.T) {
	// Compute-bound energy over frequency is a bowl: very low clocks pay
	// idle energy, very high clocks pay V²f — the minimum is interior.
	d := mustNew(t, V100Spec(), 1)
	p := computeBound()
	s := d.Spec()
	eMin, fMin := math.Inf(1), 0
	for _, f := range s.CoreFreqsMHz {
		e := d.Analytic(p, f).EnergyJ
		if e < eMin {
			eMin, fMin = e, f
		}
	}
	if fMin == s.FMinMHz() || fMin == s.FMaxMHz() {
		t.Errorf("energy minimum at range edge (%d MHz); want interior bowl", fMin)
	}
}

func TestOccupancyLowersPower(t *testing.T) {
	d := mustNew(t, V100Spec(), 1)
	big := computeBound()
	small := big
	small.WorkItems = 512
	pBig := d.Analytic(big, 1297).AvgPowerW
	pSmall := d.Analytic(small, 1297).AvgPowerW
	if pSmall >= pBig {
		t.Errorf("under-utilized launch power %g not below saturated %g", pSmall, pBig)
	}
}

func TestCacheSpillIncreasesTime(t *testing.T) {
	d := mustNew(t, V100Spec(), 1)
	fits := memoryBound()
	fits.CacheReuse = 0.9
	fits.WorkingSetBytes = 1 << 20
	spills := fits
	spills.WorkingSetBytes = 512 << 20
	tFits := d.Analytic(fits, 1297).TimeS
	tSpills := d.Analytic(spills, 1297).TimeS
	if tSpills <= tFits {
		t.Errorf("spilled working set time %g not above cache-resident %g", tSpills, tFits)
	}
}

func TestLaunchOverheadAdds(t *testing.T) {
	d := mustNew(t, V100Spec(), 1)
	one := computeBound()
	one.Launches = 1
	many := one
	many.Launches = 100
	t1 := d.Analytic(one, 1297).TimeS
	t100 := d.Analytic(many, 1297).TimeS
	if math.Abs(t100-100*t1)/(100*t1) > 1e-9 {
		t.Errorf("launch scaling: %g vs 100x%g", t100, t1)
	}
}

func TestBreakdownConsistency(t *testing.T) {
	d := mustNew(t, V100Spec(), 1)
	for _, p := range []kernels.Profile{computeBound(), memoryBound()} {
		b := d.AnalyzeAt(p, 1297)
		if math.Abs(b.EnergyJ-b.TotalPowerW*b.TimeS) > 1e-9*b.EnergyJ {
			t.Errorf("%s: energy %g != power*time %g", p.Name, b.EnergyJ, b.TotalPowerW*b.TimeS)
		}
		sum := b.IdleW + b.LeakW + b.DynW + b.MemW
		if math.Abs(sum-b.TotalPowerW) > 1e-9 {
			t.Errorf("%s: power components %g != total %g", p.Name, sum, b.TotalPowerW)
		}
		if b.MemBound != (b.MemTimeS > b.ComputeTimeS) {
			t.Errorf("%s: MemBound flag inconsistent", p.Name)
		}
	}
}

func TestRunAccumulatesEnergyCounter(t *testing.T) {
	d := mustNew(t, V100Spec(), 1)
	p := computeBound()
	if d.EnergyCounterJ() != 0 {
		t.Fatal("fresh device has nonzero energy counter")
	}
	r1, err := d.Run(p)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(d.EnergyCounterJ()-r1.EnergyJ) > 1e-12 {
		t.Error("counter does not match first run")
	}
	r2, _ := d.Run(p)
	if math.Abs(d.EnergyCounterJ()-(r1.EnergyJ+r2.EnergyJ)) > 1e-9 {
		t.Error("counter does not accumulate")
	}
}

func TestNoiseIsSeededAndBounded(t *testing.T) {
	a := mustNew(t, V100Spec(), 77)
	b := mustNew(t, V100Spec(), 77)
	p := computeBound()
	ra, _ := a.Run(p)
	rb, _ := b.Run(p)
	if ra != rb {
		t.Error("identically seeded devices observed different measurements")
	}
	c := mustNew(t, V100Spec(), 78)
	rc, _ := c.Run(p)
	if rc == ra {
		t.Error("different seeds produced identical noise")
	}
	// Noise is small: within 5% of the analytic value.
	exact := a.Analytic(p, a.CoreFreqMHz())
	if rel := math.Abs(ra.TimeS-exact.TimeS) / exact.TimeS; rel > 0.05 {
		t.Errorf("noise magnitude %.2f%% too large", rel*100)
	}
}

func TestZeroNoiseMatchesAnalytic(t *testing.T) {
	d := mustNew(t, V100Spec(), 1)
	d.SetNoiseSigma(0)
	p := computeBound()
	r, _ := d.Run(p)
	exact := d.Analytic(p, d.CoreFreqMHz())
	if r.TimeS != exact.TimeS || r.EnergyJ != exact.EnergyJ {
		t.Error("zero-noise run differs from analytic result")
	}
}

func TestSetCoreFreqValidation(t *testing.T) {
	d := mustNew(t, V100Spec(), 1)
	if err := d.SetCoreFreqMHz(123456); err == nil {
		t.Error("expected error for frequency not in table")
	}
	if err := d.SetCoreFreqMHz(d.Spec().FMaxMHz()); err != nil {
		t.Errorf("valid frequency rejected: %v", err)
	}
	d.ResetCoreFreq()
	if d.CoreFreqMHz() != d.Spec().BaselineFreqMHz() {
		t.Error("reset did not restore baseline")
	}
	if _, err := d.RunAt(computeBound(), 1); err == nil {
		t.Error("RunAt with bad frequency should fail")
	}
}

func TestAMDBaselineIsAuto(t *testing.T) {
	s := MI100Spec()
	if s.BaselineFreqMHz() != s.AutoFreqMHz {
		t.Errorf("AMD baseline %d, want auto %d", s.BaselineFreqMHz(), s.AutoFreqMHz)
	}
	if s.Vendor.String() != "AMD" {
		t.Errorf("vendor string %q", s.Vendor)
	}
	if NVIDIA.String() != "NVIDIA" || Vendor(9).String() == "" {
		t.Error("vendor strings")
	}
}

func TestAnalyticAlwaysPositive(t *testing.T) {
	d := mustNew(t, V100Spec(), 1)
	s := d.Spec()
	f := func(items uint16, launches, ga, fa uint8, reuse float64) bool {
		p := kernels.Profile{
			Name: "q",
			Mix: kernels.InstructionMix{
				FloatAdd: float64(fa) + 1, GlobalAcc: float64(ga),
			},
			WorkItems:       float64(items) + 1,
			Launches:        float64(launches) + 1,
			WorkingSetBytes: float64(items) * 64,
			CacheReuse:      math.Mod(math.Abs(reuse), 0.99),
		}
		if p.Validate() != nil {
			return true
		}
		for _, freq := range []int{s.FMinMHz(), s.BaselineFreqMHz(), s.FMaxMHz()} {
			r := d.Analytic(p, freq)
			if !(r.TimeS > 0) || !(r.EnergyJ > 0) || math.IsInf(r.EnergyJ, 0) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func BenchmarkAnalyzeAt(b *testing.B) {
	// cached: steady-state hit on the device's analytic cache (the shape of
	// every repeated sweep/probe/decision evaluation).
	b.Run("cached", func(b *testing.B) {
		d := mustNew(b, V100Spec(), 1)
		p := computeBound()
		d.AnalyzeAt(p, 1297)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			_ = d.AnalyzeAt(p, 1297)
		}
	})
	// uncached: the pure evaluation cost with the cache disabled — the cost
	// every first touch of a (profile, frequency) pays.
	b.Run("uncached", func(b *testing.B) {
		d := mustNew(b, V100Spec(), 1)
		d.cache = nil
		p := computeBound()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			_ = d.AnalyzeAt(p, 1297)
		}
	})
	// contention: GOMAXPROCS goroutines hammering one shared cache across the
	// clock menu, the parallel-sweep access pattern (forked devices share the
	// parent's cache).
	b.Run("contention", func(b *testing.B) {
		d := mustNew(b, V100Spec(), 1)
		p := computeBound()
		freqs := d.Spec().CoreFreqsMHz
		for _, f := range freqs {
			d.AnalyzeAt(p, f)
		}
		b.ResetTimer()
		b.RunParallel(func(pb *testing.PB) {
			c := d.Fork()
			i := 0
			for pb.Next() {
				_ = c.AnalyzeAt(p, freqs[i%len(freqs)])
				i++
			}
		})
	})
}

func TestPowerCapThrottles(t *testing.T) {
	d := mustNew(t, V100Spec(), 1)
	d.SetNoiseSigma(0)
	p := computeBound()
	fmax := d.Spec().FMaxMHz()

	uncapped := d.Analytic(p, fmax)
	if uncapped.AvgPowerW < 150 {
		t.Fatalf("test premise broken: uncapped power %g too low", uncapped.AvgPowerW)
	}
	cap := uncapped.AvgPowerW * 0.7
	if err := d.SetPowerCapW(cap); err != nil {
		t.Fatal(err)
	}
	r, err := d.RunAt(p, fmax)
	if err != nil {
		t.Fatal(err)
	}
	if r.AvgPowerW > cap*1.0001 {
		t.Errorf("capped run drew %g W, cap %g W", r.AvgPowerW, cap)
	}
	if r.TimeS <= uncapped.TimeS {
		t.Errorf("throttled run not slower: %g vs %g", r.TimeS, uncapped.TimeS)
	}
}

func TestPowerCapDisabledByZero(t *testing.T) {
	d := mustNew(t, V100Spec(), 1)
	d.SetNoiseSigma(0)
	p := computeBound()
	fmax := d.Spec().FMaxMHz()
	if err := d.SetPowerCapW(100); err != nil {
		t.Fatal(err)
	}
	if err := d.SetPowerCapW(0); err != nil {
		t.Fatal(err)
	}
	r, _ := d.RunAt(p, fmax)
	exact := d.Analytic(p, fmax)
	if r.TimeS != exact.TimeS {
		t.Error("cap=0 should disable throttling")
	}
}

func TestPowerCapBelowMinimumUsesLowestClock(t *testing.T) {
	d := mustNew(t, V100Spec(), 1)
	d.SetNoiseSigma(0)
	p := computeBound()
	if err := d.SetPowerCapW(1); err != nil { // unachievable
		t.Fatal(err)
	}
	r, err := d.RunAt(p, d.Spec().FMaxMHz())
	if err != nil {
		t.Fatal(err)
	}
	lowest := d.Analytic(p, d.Spec().FMinMHz())
	if r.TimeS != lowest.TimeS {
		t.Errorf("unachievable cap should pin the lowest clock: %g vs %g", r.TimeS, lowest.TimeS)
	}
}

func TestPowerCapValidation(t *testing.T) {
	d := mustNew(t, V100Spec(), 1)
	if err := d.SetPowerCapW(-5); err == nil {
		t.Error("expected error for negative cap")
	}
	if err := d.SetPowerCapW(250); err != nil {
		t.Fatal(err)
	}
	if d.PowerCapW() != 250 {
		t.Errorf("cap getter %g", d.PowerCapW())
	}
}

func TestThermalThrottling(t *testing.T) {
	spec := V100Spec()
	// Tighten the thermal envelope so the compute-bound kernel at f_max
	// exceeds it: ceiling = (70-30)/0.2 = 200 W.
	spec.ThermalResKW = 0.2
	spec.TAmbientC = 30
	spec.TThrottleC = 70
	d := mustNew(t, spec, 1)
	d.SetNoiseSigma(0)
	p := computeBound()

	r, err := d.RunAt(p, spec.FMaxMHz())
	if err != nil {
		t.Fatal(err)
	}
	if r.AvgPowerW > 200*1.0001 {
		t.Errorf("thermally throttled run drew %g W, ceiling 200 W", r.AvgPowerW)
	}
	unthrottled := d.Analytic(p, spec.FMaxMHz())
	if r.TimeS <= unthrottled.TimeS {
		t.Error("thermal throttling did not slow the kernel")
	}
}

func TestSteadyTemperature(t *testing.T) {
	spec := V100Spec()
	d := mustNew(t, spec, 1)
	p := computeBound()
	temp := d.SteadyTempC(p, spec.BaselineFreqMHz())
	power := d.Analytic(p, spec.BaselineFreqMHz()).AvgPowerW
	want := spec.TAmbientC + spec.ThermalResKW*power
	if math.Abs(temp-want) > 1e-9 {
		t.Errorf("steady temp %g, want %g", temp, want)
	}
	// The production presets leave normal operation unthrottled.
	if temp >= spec.TThrottleC {
		t.Errorf("preset throttles at the baseline clock: %g C >= %g C", temp, spec.TThrottleC)
	}
	noThermal := spec
	noThermal.ThermalResKW = 0
	d2 := mustNew(t, noThermal, 1)
	if got := d2.SteadyTempC(p, spec.BaselineFreqMHz()); got != noThermal.TAmbientC {
		t.Errorf("no thermal model should report ambient, got %g", got)
	}
}

func TestPresetsDoNotThrottleAtFMax(t *testing.T) {
	// The preset envelopes are calibrated so every paper experiment runs
	// unthrottled: the governor never silently changes the swept clock.
	for _, spec := range Specs() {
		d := mustNew(t, spec, 1)
		d.SetNoiseSigma(0)
		p := computeBound()
		r, _ := d.RunAt(p, spec.FMaxMHz())
		exact := d.Analytic(p, spec.FMaxMHz())
		if r != exact {
			t.Errorf("%s throttles a saturated kernel at f_max", spec.Name)
		}
	}
}

func TestA100PresetValid(t *testing.T) {
	s := A100Spec()
	if err := s.Validate(); err != nil {
		t.Fatal(err)
	}
	if len(AllSpecs()) != 3 {
		t.Errorf("AllSpecs length %d, want 3", len(AllSpecs()))
	}
	if _, ok := SpecByName("NVIDIA A100"); !ok {
		t.Error("A100 not resolvable by name")
	}
	if _, ok := SpecByName("H100"); ok {
		t.Error("unknown device resolved")
	}
	// A100 outperforms V100 on a saturated compute kernel (more CUs).
	dv := mustNew(t, V100Spec(), 1)
	da := mustNew(t, A100Spec(), 1)
	p := computeBound()
	tv := dv.Analytic(p, V100Spec().BaselineFreqMHz()).TimeS
	ta := da.Analytic(p, A100Spec().BaselineFreqMHz()).TimeS
	if ta >= tv {
		t.Errorf("A100 compute time %g not below V100 %g", ta, tv)
	}
}

func TestFloorFreq(t *testing.T) {
	s := V100Spec()
	if got := s.FloorFreqMHz(s.FMaxMHz() + 100); got != s.FMaxMHz() {
		t.Errorf("floor above table %d, want f_max %d", got, s.FMaxMHz())
	}
	if got := s.FloorFreqMHz(s.FMinMHz() - 1); got != s.FMinMHz() {
		t.Errorf("floor below table %d, want f_min %d", got, s.FMinMHz())
	}
	if got := s.FloorFreqMHz(s.DefaultFreqMHz); got != s.DefaultFreqMHz {
		t.Errorf("floor of a table frequency %d, want itself %d", got, s.DefaultFreqMHz)
	}
	// Between two table entries the floor is the lower one, never the
	// nearest: a throttle cap must not be exceeded by rounding up.
	mid := s.CoreFreqsMHz[10] + 1
	if got := s.FloorFreqMHz(mid); got != s.CoreFreqsMHz[10] {
		t.Errorf("floor of %d = %d, want %d", mid, got, s.CoreFreqsMHz[10])
	}
}

func TestAddEnergyAdvancesCounter(t *testing.T) {
	d := mustNew(t, V100Spec(), 1)
	before := d.EnergyCounterJ()
	d.AddEnergyJ(12.5)
	if got := d.EnergyCounterJ() - before; math.Abs(got-12.5) > 1e-12 {
		t.Errorf("counter advanced by %g, want 12.5", got)
	}
}
