package gpusim

import (
	"sync"
	"sync/atomic"

	"dsenergy/internal/kernels"
	"dsenergy/internal/obs"
)

// analyticKey identifies one noiseless model evaluation: the full kernel
// signature plus the core frequency. The device is identified by the cache
// instance itself — each Device owns (or shares through Fork) exactly one
// cache, so two devices built from look-alike specs (e.g. the roofline
// ablation's bandwidth-inflated V100, which keeps the original name) can
// never read each other's entries.
type analyticKey struct {
	profile kernels.Profile
	mhz     int
}

// analyticCache memoizes Breakdowns of the noiseless analytical model. The
// measurement stack re-evaluates identical (kernel, frequency) pairs
// constantly — every repetition of a sweep point, every throttle probe, every
// figure that re-runs a workload — and the model is a pure function of
// (spec, profile, frequency), so memoized values are bit-identical to
// recomputed ones and caching is invisible to the determinism contract.
// The cache is safe for concurrent use; device forks running on a worker
// pool share their parent's instance.
type analyticCache struct {
	mu     sync.RWMutex
	m      map[analyticKey]Breakdown
	hits   atomic.Uint64
	misses atomic.Uint64
	// Mirror counters in the observer's unstable tier: whether two parallel
	// forks both miss on the same key depends on scheduling, so these totals
	// are reproducible only on serial runs and stay out of the deterministic
	// export. Set once (before concurrent use) via Device.SetObserver.
	obsHits   *obs.Counter
	obsMisses *obs.Counter
}

func newAnalyticCache() *analyticCache {
	return &analyticCache{m: make(map[analyticKey]Breakdown)}
}

func (c *analyticCache) lookup(p kernels.Profile, mhz int) (Breakdown, bool) {
	c.mu.RLock()
	b, ok := c.m[analyticKey{profile: p, mhz: mhz}]
	c.mu.RUnlock()
	if ok {
		c.hits.Add(1)
		c.obsHits.Inc()
	} else {
		c.misses.Add(1)
		c.obsMisses.Inc()
	}
	return b, ok
}

func (c *analyticCache) setObserver(m *obs.Registry, device string) {
	c.obsHits = m.UnstableCounter("gpusim_analytic_cache_hits_total", obs.L("device", device))
	c.obsMisses = m.UnstableCounter("gpusim_analytic_cache_misses_total", obs.L("device", device))
}

func (c *analyticCache) store(p kernels.Profile, mhz int, b Breakdown) {
	c.mu.Lock()
	c.m[analyticKey{profile: p, mhz: mhz}] = b
	c.mu.Unlock()
}

// AnalyzeAt evaluates the noiseless analytical model for profile p at the
// given core frequency, serving repeated evaluations from the device's
// analytic cache (shared with every fork of the device).
func (d *Device) AnalyzeAt(p kernels.Profile, mhz int) Breakdown {
	if d.cache == nil {
		return d.analyze(p, mhz)
	}
	if b, ok := d.cache.lookup(p, mhz); ok {
		return b
	}
	b := d.analyze(p, mhz)
	d.cache.store(p, mhz, b)
	return b
}

// AnalyticCacheStats reports the device's analytic-cache hit/miss counters
// (zero for devices without a cache). Forks share their parent's counters.
func (d *Device) AnalyticCacheStats() (hits, misses uint64) {
	if d.cache == nil {
		return 0, 0
	}
	return d.cache.hits.Load(), d.cache.misses.Load()
}
