package gpusim

import (
	"sync"
	"sync/atomic"

	"dsenergy/internal/kernels"
	"dsenergy/internal/obs"
)

// profileEntry is the compiled form of one kernel profile on one device: the
// frequency-invariant terms plus the dense Breakdown curve over the full
// clock menu, indexed by menu position. Entries are immutable once
// published, so readers may hold them across snapshot swaps.
type profileEntry struct {
	cp    compiledProfile
	curve []Breakdown
}

// analyticCache memoizes compiled profiles of the noiseless analytical
// model. The measurement stack re-evaluates identical (kernel, frequency)
// pairs constantly — every repetition of a sweep point, every throttle
// probe, every figure that re-runs a workload — and the model is a pure
// function of (spec, profile, frequency), so cached values are bit-identical
// to recomputed ones and caching is invisible to the determinism contract.
//
// The cache is two-level: an atomic snapshot map keyed by the full kernel
// signature, each entry carrying the dense per-menu-frequency curve. The
// read path is lock-free — one snapshot load plus one map lookup serves any
// number of frequencies of a profile — and device forks running on a worker
// pool share their parent's instance without contending on a lock. Writers
// copy the map and publish a new snapshot under mu (the RCU pattern of
// internal/serve's model registry). The device is identified by the cache
// instance itself — each Device owns (or shares through Fork) exactly one
// cache, so two devices built from look-alike specs (e.g. the roofline
// ablation's bandwidth-inflated V100, which keeps the original name) can
// never read each other's entries.
type analyticCache struct {
	snap atomic.Pointer[map[kernels.Profile]*profileEntry]
	mu   sync.Mutex // serializes publishers; readers never take it

	hits   atomic.Uint64 // profile lookups served from the snapshot
	misses atomic.Uint64 // profile lookups that compiled and published
	// Mirror counters in the observer's unstable tier: whether two parallel
	// forks both miss on the same profile depends on scheduling, so these
	// totals are reproducible only on serial runs and stay out of the
	// deterministic export. Set once (before concurrent use) via
	// Device.SetObserver.
	obsHits   *obs.Counter
	obsMisses *obs.Counter
}

func newAnalyticCache() *analyticCache {
	c := &analyticCache{}
	empty := make(map[kernels.Profile]*profileEntry)
	c.snap.Store(&empty)
	return c
}

func (c *analyticCache) setObserver(m *obs.Registry, device string) {
	c.obsHits = m.UnstableCounter("gpusim_analytic_cache_hits_total", obs.L("device", device))
	c.obsMisses = m.UnstableCounter("gpusim_analytic_cache_misses_total", obs.L("device", device))
}

// entry returns the compiled entry for p, compiling the profile and its
// dense curve on first touch. Hits and misses count profile lookups (the
// pre-compiled cache counted (profile, frequency) point lookups): a hit
// means the entire curve was served without touching a lock.
func (c *analyticCache) entry(d *Device, p *kernels.Profile) *profileEntry {
	if e, ok := (*c.snap.Load())[*p]; ok {
		c.hits.Add(1)
		c.obsHits.Inc()
		return e
	}
	c.misses.Add(1)
	c.obsMisses.Inc()
	return c.compileAndPublish(d, p)
}

// compileAndPublish compiles p, evaluates its dense menu curve and publishes
// a snapshot containing it. A publisher that lost the race to another fork
// adopts the winner's entry, so concurrent sweeps converge on one shared
// curve per profile.
func (c *analyticCache) compileAndPublish(d *Device, p *kernels.Profile) *profileEntry {
	c.mu.Lock()
	defer c.mu.Unlock()
	cur := *c.snap.Load()
	if e, ok := cur[*p]; ok {
		return e
	}
	e := &profileEntry{curve: make([]Breakdown, len(d.tables.terms))}
	d.spec.compileInto(&e.cp, p)
	for i := range d.tables.terms {
		d.spec.evalInto(&e.curve[i], &e.cp, &d.tables.terms[i])
	}
	next := make(map[kernels.Profile]*profileEntry, len(cur)+1)
	for k, v := range cur {
		next[k] = v
	}
	next[*p] = e
	c.snap.Store(&next)
	return e
}

// entryFor returns the compiled cache entry for p, short-circuiting the
// snapshot map lookup when the device re-touches the profile it served last
// — the dominant pattern in sweeps, which walk one kernel across the whole
// clock menu. The memo is per-Device, not shared: Device is documented
// single-goroutine (forks get their own memo), and entries are immutable and
// never evicted, so a memoized pointer cannot go stale. Memoized lookups
// still count as cache hits.
func (d *Device) entryFor(p *kernels.Profile) *profileEntry {
	if d.lastEntry != nil && *p == d.lastProfile {
		d.cache.hits.Add(1)
		d.cache.obsHits.Inc()
		return d.lastEntry
	}
	e := d.cache.entry(d, p)
	d.lastProfile = *p
	d.lastEntry = e
	return e
}

// AnalyzeAt evaluates the noiseless analytical model for profile p at the
// given core frequency. On-menu frequencies are served from the profile's
// dense compiled curve — a lock-free snapshot read shared with every fork of
// the device; off-menu frequencies evaluate the frequency terms directly
// against the cached compiled profile.
func (d *Device) AnalyzeAt(p kernels.Profile, mhz int) (b Breakdown) {
	if d.cache == nil {
		d.analyzeInto(&b, &p, mhz)
		return b
	}
	e := d.entryFor(&p)
	if i, ok := d.tables.menuIndex(mhz); ok {
		return e.curve[i]
	}
	ft := d.spec.freqTermsAt(mhz)
	d.spec.evalInto(&b, &e.cp, &ft)
	return b
}

// analyzeCurveInto is the cacheless AnalyzeCurve body: one on-the-fly
// compile amortized over the batch.
func (d *Device) analyzeCurveInto(out []Breakdown, p *kernels.Profile, freqs []int) {
	var cp compiledProfile
	d.spec.compileInto(&cp, p)
	for i, f := range freqs {
		d.evalFreqInto(&out[i], &cp, f)
	}
}

// AnalyzeCurve evaluates the model for p at every frequency in freqs,
// amortizing one profile lookup (or compile) over the whole batch. Each
// returned Breakdown is bit-identical to AnalyzeAt(p, freqs[i]); full-menu
// callers pay one snapshot load and len(freqs) dense copies.
func (d *Device) AnalyzeCurve(p kernels.Profile, freqs []int) []Breakdown {
	out := make([]Breakdown, len(freqs))
	if d.cache == nil {
		d.analyzeCurveInto(out, &p, freqs)
		return out
	}
	e := d.entryFor(&p)
	for i, f := range freqs {
		if j, ok := d.tables.menuIndex(f); ok {
			out[i] = e.curve[j]
		} else {
			ft := d.spec.freqTermsAt(f)
			d.spec.evalInto(&out[i], &e.cp, &ft)
		}
	}
	return out
}

// DisableAnalyticCache detaches the device's analytic cache, forcing every
// evaluation through the direct path. Results are bit-identical either way —
// the cache memoizes a pure function — which the cache-on ≡ cache-off CI
// smoke asserts; the switch exists for that smoke and for benchmarking the
// raw evaluation cost. Forks made after the call share the detached state.
func (d *Device) DisableAnalyticCache() {
	d.cache = nil
	d.lastEntry = nil
}

// AnalyticCacheStats reports the device's analytic-cache profile-lookup
// hit/miss counters (zero for devices without a cache). Forks share their
// parent's counters.
func (d *Device) AnalyticCacheStats() (hits, misses uint64) {
	if d.cache == nil {
		return 0, 0
	}
	return d.cache.hits.Load(), d.cache.misses.Load()
}
