package gpusim

import (
	"math"

	"dsenergy/internal/kernels"
)

// Breakdown exposes the intermediate quantities of the analytical model for
// one execution. It is returned by AnalyzeAt for inspection, debugging and
// white-box tests; Analytic returns only the externally observable Result.
type Breakdown struct {
	FreqGHz      float64 // core frequency used
	VoltageV     float64 // operating voltage at that frequency
	Utilization  float64 // fraction of resident-item capacity in use
	ComputeTimeS float64 // per-launch time under the compute roof
	MemTimeS     float64 // per-launch time under the memory roof
	OverheadS    float64 // per-launch enqueue/dispatch overhead
	MemBound     bool    // whether the memory roof dominates
	DRAMBytes    float64 // effective DRAM traffic per launch after caching
	AchievedGBs  float64 // realized DRAM bandwidth
	ActivityComp float64 // ALU duty cycle (drives dynamic power)
	IdleW        float64
	LeakW        float64
	DynW         float64
	MemW         float64
	TotalPowerW  float64
	TimeS        float64 // total wall time, all launches
	EnergyJ      float64
}

// voltageAt returns the operating voltage of the V/f curve at freq (MHz).
func (s *Spec) voltageAt(mhz int) float64 {
	fmax := float64(s.FMaxMHz())
	knee := s.VKnee * fmax
	f := float64(mhz)
	if f <= knee {
		return s.VMin
	}
	x := (f - knee) / (fmax - knee)
	return s.VMin + (s.VMax-s.VMin)*math.Pow(x, s.VExp)
}

// bwFactorAt returns the fraction of the achieved bandwidth available at the
// given core frequency: below the bandwidth knee the cores cannot issue
// enough outstanding requests to keep DRAM busy.
func (s *Spec) bwFactorAt(mhz int) float64 {
	fr := float64(mhz) / float64(s.FMaxMHz())
	if fr >= s.BWKnee {
		return 1
	}
	return math.Pow(fr/s.BWKnee, s.BWKneeExp)
}

// dramTraffic returns the effective DRAM bytes of one launch after the cache
// model: a fraction CacheReuse of the raw accesses hits cache while the
// working set fits in the LLC; as the working set grows past the LLC the
// reused fraction progressively spills back to DRAM.
func (s *Spec) dramTraffic(p *kernels.Profile) float64 {
	// Inline Profile.RawGlobalBytes (same expression): calling the value
	// receiver through the pointer would copy the whole Profile per call.
	raw := p.Mix.GlobalBytes() * p.WorkItems
	miss := 1 - p.CacheReuse
	if p.WorkingSetBytes > s.LLCBytes && p.WorkingSetBytes > 0 {
		spill := 1 - s.LLCBytes/p.WorkingSetBytes
		miss += p.CacheReuse * spill
	}
	return raw * miss
}

// freqTerms holds the frequency-dependent pure sub-expressions of the
// analytical model at one core frequency. Every field memoizes exactly the
// sub-expression the single-pass evaluation computes — the same operations
// in the same association — so evaluating from a tabulated freqTerms is
// bit-identical to evaluating inline. New tabulates one entry per clock-menu
// position (tables.go); off-menu frequencies compute the terms on the fly.
type freqTerms struct {
	fGHz      float64 // mhz / 1000
	voltageV  float64 // voltageAt(mhz)
	bwFactor  float64 // bwFactorAt(mhz)
	overheadS float64 // LaunchFixedS + LaunchCycles/(f[GHz]·1e9)
	dynPreW   float64 // DynCoeffW · NumCU · V² · f[GHz], awaiting · activity
	clockW    float64 // ClockCoeffW · V² · f[GHz]
	leakW     float64 // LeakCoeffW · V²
}

// freqTermsAt evaluates the frequency-dependent terms directly. This is the
// slow path — two math.Pow calls sit behind voltageAt/bwFactorAt — which is
// precisely why the clock menu is tabulated once per device.
func (s *Spec) freqTermsAt(mhz int) freqTerms {
	fGHz := float64(mhz) / 1000
	v := s.voltageAt(mhz)
	return freqTerms{
		fGHz:      fGHz,
		voltageV:  v,
		bwFactor:  s.bwFactorAt(mhz),
		overheadS: s.LaunchFixedS + s.LaunchCycles/(fGHz*1e9),
		dynPreW:   s.DynCoeffW * float64(s.NumCU) * v * v * fGHz,
		clockW:    s.ClockCoeffW * v * v * fGHz,
		leakW:     s.LeakCoeffW * v * v,
	}
}

// compiledProfile holds the frequency-invariant terms of one kernel profile
// on one device: occupancy, lane allocation, total compute work, effective
// DRAM traffic and the bandwidth-utilization prefactor are all pure in
// (spec, profile), so one compile serves the entire clock menu.
type compiledProfile struct {
	util     float64 // resident-item occupancy, clamped to 1
	aPart    float64 // min(WorkItems, lanes) · ComputeEff, awaiting · f[GHz]·1e9
	cycles   float64 // TotalComputeCycles per launch
	bytes    float64 // effective DRAM bytes per launch after the cache model
	bwPre    float64 // PeakBW·1e9 · MemEff · bwUtil, awaiting · bwFactor
	launches float64
}

// compileInto evaluates the frequency-invariant stage of the model into cp.
func (s *Spec) compileInto(cp *compiledProfile, p *kernels.Profile) {
	// util is the fraction of the device's resident-item capacity occupied
	// by one launch; it throttles both achievable issue rate (indirectly,
	// through parallelism) and dynamic power.
	util := p.WorkItems / s.ConcurrentItems
	if util > 1 {
		util = 1
	}
	// Effective parallel lanes: a launch cannot use more lanes than it has
	// work items. The builtin min matches math.Min bit-for-bit (NaN
	// propagation, -0 below +0) and compiles to a bare vminsd.
	lanes := float64(s.NumCU * s.LanesPerCU)
	activeLanes := min(p.WorkItems, lanes)
	bwUtil := p.WorkItems / s.BWSaturateItems
	if bwUtil > 1 {
		bwUtil = 1
	}
	minUtil := s.BWMinUtil
	if minUtil == 0 {
		minUtil = 0.02
	}
	if bwUtil < minUtil {
		bwUtil = minUtil
	}
	cp.util = util
	cp.aPart = activeLanes * s.ComputeEff
	// Inline Profile.TotalComputeCycles (same expression, same receiver-copy
	// rationale as in dramTraffic).
	cp.cycles = p.Mix.ComputeCycles() * p.WorkItems
	cp.bytes = s.dramTraffic(p)
	cp.bwPre = s.PeakBWGBs * 1e9 * s.MemEff * bwUtil
	cp.launches = p.Launches
}

// evalInto is the per-frequency tail of the model: roughly twenty floating
// point operations combining one compiled profile with one set of frequency
// terms, written into out (the out-parameter keeps Breakdown copies off the
// hot path). The operation order reproduces the original single-pass
// evaluation exactly — the staged factors above are left-associated prefixes
// of the original expressions — so every Breakdown field is bit-identical to
// the unstaged computation (TestGoldenAnalytic pins this).
func (s *Spec) evalInto(out *Breakdown, cp *compiledProfile, ft *freqTerms) {
	// --- Compute roof -------------------------------------------------------
	issueRate := cp.aPart * ft.fGHz * 1e9 // lane-cycles/s
	tComp := cp.cycles / issueRate

	// --- Memory roof --------------------------------------------------------
	bw := cp.bwPre * ft.bwFactor
	var tMem float64
	if cp.bytes > 0 {
		tMem = cp.bytes / bw
	}

	// --- Launch composition --------------------------------------------------
	tLaunch := max(tComp, tMem) + ft.overheadS
	total := tLaunch * cp.launches

	// --- Power ---------------------------------------------------------------
	// The ALUs are busy only for the compute fraction of each launch.
	duty := 1.0
	if tMem > tComp && tLaunch > 0 {
		duty = (tComp + ft.overheadS*0.1) / tLaunch
	}
	act := cp.util * duty
	dynW := ft.dynPreW * act
	// Clock-tree and uncore switching power is paid chip-wide whenever a
	// kernel is resident, regardless of occupancy; on real boards this is
	// what separates busy-idle from deep-idle power.
	dynW += ft.clockW
	achievedGBs := 0.0
	if tLaunch > 0 {
		achievedGBs = cp.bytes / tLaunch / 1e9
	}
	memW := s.MemCoeffWGBs * achievedGBs
	powerW := s.IdleW + ft.leakW + dynW + memW

	// Field stores, not a composite literal: out never aliases cp/ft, and
	// direct stores keep the 136-byte struct from bouncing through a
	// zeroed temporary.
	out.FreqGHz = ft.fGHz
	out.VoltageV = ft.voltageV
	out.Utilization = cp.util
	out.ComputeTimeS = tComp
	out.MemTimeS = tMem
	out.OverheadS = ft.overheadS
	out.MemBound = tMem > tComp
	out.DRAMBytes = cp.bytes
	out.AchievedGBs = achievedGBs
	out.ActivityComp = act
	out.IdleW = s.IdleW
	out.LeakW = ft.leakW
	out.DynW = dynW
	out.MemW = memW
	out.TotalPowerW = powerW
	out.TimeS = total
	out.EnergyJ = powerW * total
}

// analyzeInto is the uncached evaluation of the noiseless analytical model
// for profile p at the given core frequency: compile the profile on the fly,
// fetch (or compute) the frequency terms, evaluate. It is pure in
// (spec, p, mhz), which is what makes the memoization in AnalyzeAt
// (cache.go) sound.
func (d *Device) analyzeInto(out *Breakdown, p *kernels.Profile, mhz int) {
	var cp compiledProfile
	d.spec.compileInto(&cp, p)
	d.evalFreqInto(out, &cp, mhz)
}

// evalFreqInto evaluates one compiled profile at mhz: against the tabulated
// frequency terms in place when mhz is on the clock menu, against directly
// computed terms otherwise.
func (d *Device) evalFreqInto(out *Breakdown, cp *compiledProfile, mhz int) {
	if d.tables != nil {
		if i, ok := d.tables.menuIndex(mhz); ok {
			d.spec.evalInto(out, cp, &d.tables.terms[i])
			return
		}
	}
	ft := d.spec.freqTermsAt(mhz)
	d.spec.evalInto(out, cp, &ft)
}

// Analytic returns the noiseless (time, energy) prediction of the model for
// profile p at the given frequency.
func (d *Device) Analytic(p kernels.Profile, mhz int) Result {
	b := d.AnalyzeAt(p, mhz)
	return Result{TimeS: b.TimeS, EnergyJ: b.EnergyJ, AvgPowerW: b.TotalPowerW}
}

// DefaultNoiseSigma is the relative standard deviation of the multiplicative
// measurement noise applied to simulated observations. It corresponds to the
// run-to-run variability of wall-clock and energy-counter readings on real
// hardware (below one percent on an otherwise idle node).
const DefaultNoiseSigma = 0.006

// NoiseModel perturbs analytic results with multiplicative Gaussian noise,
// standing in for the measurement variability the paper averages away by
// repeating every experiment five times.
type NoiseModel struct {
	Sigma float64
	rng   interface{ Norm() float64 }
}

// NewNoiseModel returns a noise model with relative level sigma drawing
// variates from rng.
func NewNoiseModel(sigma float64, rng interface{ Norm() float64 }) *NoiseModel {
	return &NoiseModel{Sigma: sigma, rng: rng}
}

// Perturb applies independent multiplicative noise to time and energy.
func (n *NoiseModel) Perturb(r Result) Result {
	if n.Sigma == 0 {
		return r
	}
	r.TimeS *= 1 + n.Sigma*n.rng.Norm()
	r.EnergyJ *= 1 + n.Sigma*n.rng.Norm()
	if r.TimeS <= 0 {
		r.TimeS = 1e-12
	}
	if r.EnergyJ <= 0 {
		r.EnergyJ = 1e-12
	}
	r.AvgPowerW = r.EnergyJ / r.TimeS
	return r
}
