package gpusim

import (
	"math"

	"dsenergy/internal/kernels"
)

// Breakdown exposes the intermediate quantities of the analytical model for
// one execution. It is returned by AnalyzeAt for inspection, debugging and
// white-box tests; Analytic returns only the externally observable Result.
type Breakdown struct {
	FreqGHz      float64 // core frequency used
	VoltageV     float64 // operating voltage at that frequency
	Utilization  float64 // fraction of resident-item capacity in use
	ComputeTimeS float64 // per-launch time under the compute roof
	MemTimeS     float64 // per-launch time under the memory roof
	OverheadS    float64 // per-launch enqueue/dispatch overhead
	MemBound     bool    // whether the memory roof dominates
	DRAMBytes    float64 // effective DRAM traffic per launch after caching
	AchievedGBs  float64 // realized DRAM bandwidth
	ActivityComp float64 // ALU duty cycle (drives dynamic power)
	IdleW        float64
	LeakW        float64
	DynW         float64
	MemW         float64
	TotalPowerW  float64
	TimeS        float64 // total wall time, all launches
	EnergyJ      float64
}

// voltageAt returns the operating voltage of the V/f curve at freq (MHz).
func (s Spec) voltageAt(mhz int) float64 {
	fmax := float64(s.FMaxMHz())
	knee := s.VKnee * fmax
	f := float64(mhz)
	if f <= knee {
		return s.VMin
	}
	x := (f - knee) / (fmax - knee)
	return s.VMin + (s.VMax-s.VMin)*math.Pow(x, s.VExp)
}

// bwFactorAt returns the fraction of the achieved bandwidth available at the
// given core frequency: below the bandwidth knee the cores cannot issue
// enough outstanding requests to keep DRAM busy.
func (s Spec) bwFactorAt(mhz int) float64 {
	fr := float64(mhz) / float64(s.FMaxMHz())
	if fr >= s.BWKnee {
		return 1
	}
	return math.Pow(fr/s.BWKnee, s.BWKneeExp)
}

// dramTraffic returns the effective DRAM bytes of one launch after the cache
// model: a fraction CacheReuse of the raw accesses hits cache while the
// working set fits in the LLC; as the working set grows past the LLC the
// reused fraction progressively spills back to DRAM.
func (s Spec) dramTraffic(p kernels.Profile) float64 {
	raw := p.RawGlobalBytes()
	miss := 1 - p.CacheReuse
	if p.WorkingSetBytes > s.LLCBytes && p.WorkingSetBytes > 0 {
		spill := 1 - s.LLCBytes/p.WorkingSetBytes
		miss += p.CacheReuse * spill
	}
	return raw * miss
}

// analyze is the uncached evaluation of the noiseless analytical model for
// profile p at the given core frequency. It is pure in (spec, p, mhz), which
// is what makes the memoization in AnalyzeAt (cache.go) sound.
func (d *Device) analyze(p kernels.Profile, mhz int) Breakdown {
	s := &d.spec
	fGHz := float64(mhz) / 1000
	v := s.voltageAt(mhz)

	// --- Occupancy ---------------------------------------------------------
	// util is the fraction of the device's resident-item capacity occupied
	// by one launch; it throttles both achievable issue rate (indirectly,
	// through parallelism) and dynamic power.
	util := p.WorkItems / s.ConcurrentItems
	if util > 1 {
		util = 1
	}

	// --- Compute roof -------------------------------------------------------
	// Effective parallel lanes: a launch cannot use more lanes than it has
	// work items.
	lanes := float64(s.NumCU * s.LanesPerCU)
	activeLanes := math.Min(p.WorkItems, lanes)
	issueRate := activeLanes * s.ComputeEff * fGHz * 1e9 // lane-cycles/s
	tComp := p.TotalComputeCycles() / issueRate

	// --- Memory roof --------------------------------------------------------
	bytes := s.dramTraffic(p)
	bwUtil := p.WorkItems / s.BWSaturateItems
	if bwUtil > 1 {
		bwUtil = 1
	}
	minUtil := s.BWMinUtil
	if minUtil == 0 {
		minUtil = 0.02
	}
	if bwUtil < minUtil {
		bwUtil = minUtil
	}
	bw := s.PeakBWGBs * 1e9 * s.MemEff * bwUtil * s.bwFactorAt(mhz)
	var tMem float64
	if bytes > 0 {
		tMem = bytes / bw
	}

	// --- Launch composition --------------------------------------------------
	overhead := s.LaunchFixedS + s.LaunchCycles/(fGHz*1e9)
	tLaunch := math.Max(tComp, tMem) + overhead
	total := tLaunch * p.Launches

	// --- Power ---------------------------------------------------------------
	// The ALUs are busy only for the compute fraction of each launch.
	duty := 1.0
	if tMem > tComp && tLaunch > 0 {
		duty = (tComp + overhead*0.1) / tLaunch
	}
	act := util * duty
	dynW := s.DynCoeffW * float64(s.NumCU) * v * v * fGHz * act
	// Clock-tree and uncore switching power is paid chip-wide whenever a
	// kernel is resident, regardless of occupancy; on real boards this is
	// what separates busy-idle from deep-idle power.
	dynW += s.ClockCoeffW * v * v * fGHz
	leakW := s.LeakCoeffW * v * v
	achievedGBs := 0.0
	if tLaunch > 0 {
		achievedGBs = bytes / tLaunch / 1e9
	}
	memW := s.MemCoeffWGBs * achievedGBs
	powerW := s.IdleW + leakW + dynW + memW

	return Breakdown{
		FreqGHz:      fGHz,
		VoltageV:     v,
		Utilization:  util,
		ComputeTimeS: tComp,
		MemTimeS:     tMem,
		OverheadS:    overhead,
		MemBound:     tMem > tComp,
		DRAMBytes:    bytes,
		AchievedGBs:  achievedGBs,
		ActivityComp: act,
		IdleW:        s.IdleW,
		LeakW:        leakW,
		DynW:         dynW,
		MemW:         memW,
		TotalPowerW:  powerW,
		TimeS:        total,
		EnergyJ:      powerW * total,
	}
}

// Analytic returns the noiseless (time, energy) prediction of the model for
// profile p at the given frequency.
func (d *Device) Analytic(p kernels.Profile, mhz int) Result {
	b := d.AnalyzeAt(p, mhz)
	return Result{TimeS: b.TimeS, EnergyJ: b.EnergyJ, AvgPowerW: b.TotalPowerW}
}

// DefaultNoiseSigma is the relative standard deviation of the multiplicative
// measurement noise applied to simulated observations. It corresponds to the
// run-to-run variability of wall-clock and energy-counter readings on real
// hardware (below one percent on an otherwise idle node).
const DefaultNoiseSigma = 0.006

// NoiseModel perturbs analytic results with multiplicative Gaussian noise,
// standing in for the measurement variability the paper averages away by
// repeating every experiment five times.
type NoiseModel struct {
	Sigma float64
	rng   interface{ Norm() float64 }
}

// NewNoiseModel returns a noise model with relative level sigma drawing
// variates from rng.
func NewNoiseModel(sigma float64, rng interface{ Norm() float64 }) *NoiseModel {
	return &NoiseModel{Sigma: sigma, rng: rng}
}

// Perturb applies independent multiplicative noise to time and energy.
func (n *NoiseModel) Perturb(r Result) Result {
	if n.Sigma == 0 {
		return r
	}
	r.TimeS *= 1 + n.Sigma*n.rng.Norm()
	r.EnergyJ *= 1 + n.Sigma*n.rng.Norm()
	if r.TimeS <= 0 {
		r.TimeS = 1e-12
	}
	if r.EnergyJ <= 0 {
		r.EnergyJ = 1e-12
	}
	r.AvgPowerW = r.EnergyJ / r.TimeS
	return r
}
