package obs

import (
	"fmt"
	"io"
	"sync"
)

// Span is one completed unit of simulated work. DurS is simulated seconds
// (the simulator's own clock), never wall time — that is what makes a trace
// reproducible. Attrs are stored sorted by key.
type Span struct {
	Name  string
	Attrs []Label
	DurS  float64
}

// Trace is an ordered list of spans. Order is append order; parallel
// regions keep it deterministic with the same fork/absorb discipline the
// rest of the repo uses for RNG streams: fork one child trace per task in
// task order before the pool starts, record into the child, absorb children
// back in task order afterwards. All methods are safe on a nil trace.
type Trace struct {
	mu    sync.Mutex
	spans []Span
}

// NewTrace returns an empty trace.
func NewTrace() *Trace { return &Trace{} }

// Add appends one finished span.
func (t *Trace) Add(name string, durS float64, attrs ...Label) {
	if t == nil {
		return
	}
	s := Span{Name: name, Attrs: sortedLabels(attrs), DurS: durS}
	t.mu.Lock()
	t.spans = append(t.spans, s)
	t.mu.Unlock()
}

// Fork returns a fresh child trace for one task of a parallel region.
func (t *Trace) Fork() *Trace {
	if t == nil {
		return nil
	}
	return NewTrace()
}

// Absorb appends the child's spans to t, preserving their internal order.
// Call in task order after a parallel region completes.
func (t *Trace) Absorb(child *Trace) {
	if t == nil || child == nil {
		return
	}
	child.mu.Lock()
	spans := child.spans
	child.spans = nil
	child.mu.Unlock()
	if len(spans) == 0 {
		return
	}
	t.mu.Lock()
	t.spans = append(t.spans, spans...)
	t.mu.Unlock()
}

// Len returns the number of spans recorded so far.
func (t *Trace) Len() int {
	if t == nil {
		return 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return len(t.spans)
}

// Spans returns a copy of the recorded spans in order.
func (t *Trace) Spans() []Span {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return append([]Span(nil), t.spans...)
}

// WriteText renders the trace, one span per line, assigning each span a
// cumulative simulated start offset (the sum of all earlier durations).
// The simulated timeline is a bookkeeping axis, not a claim that the spans
// ran back to back on one device.
func (t *Trace) WriteText(w io.Writer) error {
	if t == nil {
		_, err := fmt.Fprintln(w, "# tracing disabled (no observer)")
		return err
	}
	var startS float64
	for i, s := range t.Spans() {
		if _, err := fmt.Fprintf(w, "%6d  start=%ss dur=%ss  %s", i, formatFloat(startS), formatFloat(s.DurS), s.Name); err != nil {
			return err
		}
		for _, a := range s.Attrs {
			if _, err := fmt.Fprintf(w, " %s=%s", a.Key, a.Value); err != nil {
				return err
			}
		}
		if _, err := fmt.Fprintln(w); err != nil {
			return err
		}
		startS += s.DurS
	}
	return nil
}
