package obs

import (
	"fmt"
	"io"
	"math"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
)

// Label is one metric dimension. Labels are canonicalised (sorted by key)
// when a metric is registered, so the handle for a given (name, label set)
// is unique regardless of argument order.
type Label struct {
	Key   string
	Value string
}

// L is shorthand for constructing a Label.
func L(key, value string) Label { return Label{Key: key, Value: value} }

// Counter is a monotonically increasing integer metric. Integer addition is
// commutative and associative, so a counter's final value is independent of
// the schedule that produced it — counters are safe for the deterministic
// export even when bumped from worker goroutines.
type Counter struct{ v atomic.Uint64 }

// Inc adds one. Safe on a nil counter.
func (c *Counter) Inc() { c.Add(1) }

// Add adds n. Safe on a nil counter.
func (c *Counter) Add(n uint64) {
	if c == nil {
		return
	}
	c.v.Add(n)
}

// Value returns the current count (0 for nil).
func (c *Counter) Value() uint64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Gauge is a last-write-wins float metric. Because "last write" is
// schedule-dependent under concurrency, gauges belong in the deterministic
// export only when they are set from a single goroutine or at points where
// every schedule produces the same final value.
type Gauge struct{ bits atomic.Uint64 }

// Set stores v. Safe on a nil gauge.
func (g *Gauge) Set(v float64) {
	if g == nil {
		return
	}
	g.bits.Store(math.Float64bits(v))
}

// Value returns the stored value (0 for nil).
func (g *Gauge) Value() float64 {
	if g == nil {
		return 0
	}
	return math.Float64frombits(g.bits.Load())
}

// Histogram records a distribution of float observations into fixed
// buckets. It deliberately does NOT keep a running sum: a float sum
// accumulated in schedule order is not byte-deterministic, whereas bucket
// counts, the total count, and min/max are all order-invariant functions of
// the observed multiset — those are what the export contains.
type Histogram struct {
	bounds  []float64 // upper bounds, strictly increasing; +Inf implied last
	buckets []atomic.Uint64
	count   atomic.Uint64
	minBits atomic.Uint64 // math.Float64bits, CAS-updated
	maxBits atomic.Uint64
}

func newHistogram(bounds []float64) *Histogram {
	h := &Histogram{
		bounds:  append([]float64(nil), bounds...),
		buckets: make([]atomic.Uint64, len(bounds)+1),
	}
	h.minBits.Store(math.Float64bits(math.Inf(1)))
	h.maxBits.Store(math.Float64bits(math.Inf(-1)))
	return h
}

// Observe records one value. Safe on a nil histogram.
func (h *Histogram) Observe(v float64) {
	if h == nil {
		return
	}
	i := sort.SearchFloat64s(h.bounds, v)
	h.buckets[i].Add(1)
	h.count.Add(1)
	for {
		cur := h.minBits.Load()
		if v >= math.Float64frombits(cur) {
			break
		}
		if h.minBits.CompareAndSwap(cur, math.Float64bits(v)) {
			break
		}
	}
	for {
		cur := h.maxBits.Load()
		if v <= math.Float64frombits(cur) {
			break
		}
		if h.maxBits.CompareAndSwap(cur, math.Float64bits(v)) {
			break
		}
	}
}

// Count returns the number of observations (0 for nil).
func (h *Histogram) Count() uint64 {
	if h == nil {
		return 0
	}
	return h.count.Load()
}

// Min returns the smallest observation, or +Inf when empty.
func (h *Histogram) Min() float64 {
	if h == nil {
		return math.Inf(1)
	}
	return math.Float64frombits(h.minBits.Load())
}

// Max returns the largest observation, or -Inf when empty.
func (h *Histogram) Max() float64 {
	if h == nil {
		return math.Inf(-1)
	}
	return math.Float64frombits(h.maxBits.Load())
}

type metricKind int

const (
	kindCounter metricKind = iota
	kindGauge
	kindHistogram
)

type metric struct {
	name     string
	labels   []Label // sorted by key
	kind     metricKind
	unstable bool
	counter  *Counter
	gauge    *Gauge
	hist     *Histogram
}

// key returns "name{k1=v1,k2=v2}" over sorted labels — the registry map key
// and also the export identity.
func (m *metric) key() string { return metricKey(m.name, m.labels) }

func metricKey(name string, labels []Label) string {
	if len(labels) == 0 {
		return name
	}
	var b strings.Builder
	b.WriteString(name)
	b.WriteByte('{')
	for i, l := range labels {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(l.Key)
		b.WriteByte('=')
		b.WriteString(l.Value)
	}
	b.WriteByte('}')
	return b.String()
}

func sortedLabels(labels []Label) []Label {
	out := append([]Label(nil), labels...)
	sort.Slice(out, func(i, j int) bool { return out[i].Key < out[j].Key })
	return out
}

// Registry is a concurrency-safe collection of metrics. Handles are
// get-or-create: repeated registration with the same name and label set
// returns the same handle, so forks of an instrumented component share
// accumulation naturally. All methods are safe on a nil registry (they
// return nil handles, which are themselves no-ops).
type Registry struct {
	mu      sync.Mutex
	metrics map[string]*metric
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{metrics: make(map[string]*metric)}
}

func (r *Registry) get(name string, labels []Label, kind metricKind, unstable bool, bounds []float64) *metric {
	ls := sortedLabels(labels)
	k := metricKey(name, ls)
	r.mu.Lock()
	defer r.mu.Unlock()
	if m, ok := r.metrics[k]; ok {
		return m
	}
	m := &metric{name: name, labels: ls, kind: kind, unstable: unstable}
	switch kind {
	case kindCounter:
		m.counter = &Counter{}
	case kindGauge:
		m.gauge = &Gauge{}
	case kindHistogram:
		m.hist = newHistogram(bounds)
	}
	r.metrics[k] = m
	return m
}

// Counter returns the counter for (name, labels), creating it on first use.
func (r *Registry) Counter(name string, labels ...Label) *Counter {
	if r == nil {
		return nil
	}
	return r.get(name, labels, kindCounter, false, nil).counter
}

// UnstableCounter is Counter for scheduling-dependent values (e.g. shared
// cache hits/misses, retry totals that depend on goroutine interleaving).
// Unstable metrics are excluded from the deterministic export and appear
// only in the profile dump.
func (r *Registry) UnstableCounter(name string, labels ...Label) *Counter {
	if r == nil {
		return nil
	}
	return r.get(name, labels, kindCounter, true, nil).counter
}

// Gauge returns the gauge for (name, labels), creating it on first use.
func (r *Registry) Gauge(name string, labels ...Label) *Gauge {
	if r == nil {
		return nil
	}
	return r.get(name, labels, kindGauge, false, nil).gauge
}

// Histogram returns the histogram for (name, labels), creating it with the
// given upper bounds on first use. Bounds must be strictly increasing; a
// final +Inf bucket is implicit. Later calls may pass nil bounds to fetch
// the existing handle.
func (r *Registry) Histogram(name string, bounds []float64, labels ...Label) *Histogram {
	if r == nil {
		return nil
	}
	return r.get(name, labels, kindHistogram, false, bounds).hist
}

type exportFilter int

const (
	stableOnly exportFilter = iota
	unstableOnly
)

// snapshot returns the selected metrics sorted by export key.
func (r *Registry) snapshot(filter exportFilter) []*metric {
	r.mu.Lock()
	out := make([]*metric, 0, len(r.metrics))
	for _, m := range r.metrics {
		if m.unstable == (filter == unstableOnly) {
			out = append(out, m)
		}
	}
	r.mu.Unlock()
	sort.Slice(out, func(i, j int) bool { return out[i].key() < out[j].key() })
	return out
}

func formatFloat(v float64) string { return strconv.FormatFloat(v, 'g', -1, 64) }

// WriteText writes the deterministic (stable-tier) metrics as one line per
// metric, sorted by name and label signature.
func (r *Registry) WriteText(w io.Writer) error {
	if r == nil {
		_, err := fmt.Fprintln(w, "# metrics disabled (no observer)")
		return err
	}
	return r.writeText(w, stableOnly)
}

func (r *Registry) writeText(w io.Writer, filter exportFilter) error {
	for _, m := range r.snapshot(filter) {
		var err error
		switch m.kind {
		case kindCounter:
			_, err = fmt.Fprintf(w, "%s %d\n", m.key(), m.counter.Value())
		case kindGauge:
			_, err = fmt.Fprintf(w, "%s %s\n", m.key(), formatFloat(m.gauge.Value()))
		case kindHistogram:
			err = writeHistText(w, m)
		}
		if err != nil {
			return err
		}
	}
	return nil
}

func writeHistText(w io.Writer, m *metric) error {
	h := m.hist
	if _, err := fmt.Fprintf(w, "%s count=%d", m.key(), h.Count()); err != nil {
		return err
	}
	if h.Count() > 0 {
		if _, err := fmt.Fprintf(w, " min=%s max=%s", formatFloat(h.Min()), formatFloat(h.Max())); err != nil {
			return err
		}
	}
	for i := range h.buckets {
		bound := "+Inf"
		if i < len(h.bounds) {
			bound = formatFloat(h.bounds[i])
		}
		if _, err := fmt.Fprintf(w, " le(%s)=%d", bound, h.buckets[i].Load()); err != nil {
			return err
		}
	}
	_, err := fmt.Fprintln(w)
	return err
}

// WriteJSON writes the deterministic metrics as a JSON object keyed by the
// metric's export key, with stable member ordering (hand-rendered so the
// output is byte-reproducible; encoding/json map ordering is sorted too,
// but hand-rendering also keeps per-metric shape explicit).
func (r *Registry) WriteJSON(w io.Writer) error {
	if r == nil {
		_, err := fmt.Fprintln(w, "{}")
		return err
	}
	ms := r.snapshot(stableOnly)
	if _, err := fmt.Fprint(w, "{"); err != nil {
		return err
	}
	for i, m := range ms {
		sep := ","
		if i == 0 {
			sep = ""
		}
		var body string
		switch m.kind {
		case kindCounter:
			body = fmt.Sprintf(`{"type":"counter","value":%d}`, m.counter.Value())
		case kindGauge:
			body = fmt.Sprintf(`{"type":"gauge","value":%s}`, jsonFloat(m.gauge.Value()))
		case kindHistogram:
			body = histJSON(m.hist)
		}
		if _, err := fmt.Fprintf(w, "%s\n  %s: %s", sep, strconv.Quote(m.key()), body); err != nil {
			return err
		}
	}
	if len(ms) > 0 {
		if _, err := fmt.Fprintln(w); err != nil {
			return err
		}
	}
	_, err := fmt.Fprintln(w, "}")
	return err
}

// jsonFloat renders a float as a JSON value; non-finite values (legal in
// our text export, not in JSON) are quoted.
func jsonFloat(v float64) string {
	if math.IsInf(v, 0) || math.IsNaN(v) {
		return strconv.Quote(formatFloat(v))
	}
	return formatFloat(v)
}

func histJSON(h *Histogram) string {
	var b strings.Builder
	fmt.Fprintf(&b, `{"type":"histogram","count":%d`, h.Count())
	if h.Count() > 0 {
		fmt.Fprintf(&b, `,"min":%s,"max":%s`, jsonFloat(h.Min()), jsonFloat(h.Max()))
	}
	b.WriteString(`,"buckets":[`)
	for i := range h.buckets {
		if i > 0 {
			b.WriteByte(',')
		}
		bound := `"+Inf"`
		if i < len(h.bounds) {
			bound = jsonFloat(h.bounds[i])
		}
		fmt.Fprintf(&b, `{"le":%s,"count":%d}`, bound, h.buckets[i].Load())
	}
	b.WriteString("]}")
	return b.String()
}
