package obs

import (
	"bytes"
	"math"
	"strings"
	"sync"
	"testing"
)

func TestCounterGaugeNilSafety(t *testing.T) {
	var o *Observer
	// Every operation on a nil observer must be a safe no-op.
	o.Metrics().Counter("x").Inc()
	o.Metrics().Gauge("g").Set(3)
	o.Metrics().Histogram("h", []float64{1}).Observe(0.5)
	o.Trace().Add("span", 1.0)
	stop := o.Profile().Phase("p").Start()
	stop()
	kids := o.ForkN(3)
	if len(kids) != 3 || kids[0] != nil {
		t.Fatalf("ForkN on nil observer: got %v", kids)
	}
	o.AbsorbAll(kids)
	var buf bytes.Buffer
	if err := o.WriteMetricsText(&buf); err != nil {
		t.Fatal(err)
	}
	if err := o.WriteMetricsJSON(&buf); err != nil {
		t.Fatal(err)
	}
	if err := o.WriteTraceText(&buf); err != nil {
		t.Fatal(err)
	}
	if err := o.WriteProfileText(&buf); err != nil {
		t.Fatal(err)
	}
}

func TestRegistryLabelCanonicalisation(t *testing.T) {
	r := NewRegistry()
	a := r.Counter("m", L("b", "2"), L("a", "1"))
	b := r.Counter("m", L("a", "1"), L("b", "2"))
	if a != b {
		t.Fatal("label order must not create distinct handles")
	}
	a.Add(5)
	var buf bytes.Buffer
	if err := r.WriteText(&buf); err != nil {
		t.Fatal(err)
	}
	want := "m{a=1,b=2} 5\n"
	if buf.String() != want {
		t.Fatalf("export = %q, want %q", buf.String(), want)
	}
}

func TestRegistryExportSortedAndStable(t *testing.T) {
	r := NewRegistry()
	r.Counter("zeta").Add(1)
	r.Counter("alpha", L("k", "v")).Add(2)
	r.Gauge("mid").Set(1.5)
	var a, b bytes.Buffer
	if err := r.WriteText(&a); err != nil {
		t.Fatal(err)
	}
	if err := r.WriteText(&b); err != nil {
		t.Fatal(err)
	}
	if a.String() != b.String() {
		t.Fatal("repeated exports differ")
	}
	lines := strings.Split(strings.TrimSpace(a.String()), "\n")
	want := []string{"alpha{k=v} 2", "mid 1.5", "zeta 1"}
	if len(lines) != len(want) {
		t.Fatalf("got %d lines, want %d", len(lines), len(want))
	}
	for i := range want {
		if lines[i] != want[i] {
			t.Fatalf("line %d = %q, want %q", i, lines[i], want[i])
		}
	}
}

func TestUnstableExcludedFromDeterministicExport(t *testing.T) {
	r := NewRegistry()
	r.Counter("stable_total").Add(1)
	r.UnstableCounter("cache_hits_total").Add(7)
	var txt, js bytes.Buffer
	if err := r.WriteText(&txt); err != nil {
		t.Fatal(err)
	}
	if err := r.WriteJSON(&js); err != nil {
		t.Fatal(err)
	}
	for _, s := range []string{txt.String(), js.String()} {
		if strings.Contains(s, "cache_hits_total") {
			t.Fatalf("unstable metric leaked into deterministic export:\n%s", s)
		}
		if !strings.Contains(s, "stable_total") {
			t.Fatalf("stable metric missing from export:\n%s", s)
		}
	}
	// The unstable tier shows up in the profile dump instead.
	o := NewObserver()
	o.Metrics().UnstableCounter("cache_hits_total").Add(3)
	var prof bytes.Buffer
	if err := o.WriteProfileText(&prof); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(prof.String(), "cache_hits_total 3") {
		t.Fatalf("unstable metric missing from profile dump:\n%s", prof.String())
	}
}

func TestHistogramOrderInvariance(t *testing.T) {
	bounds := []float64{0.1, 1, 10}
	obsv := []float64{0.05, 0.5, 5, 50, 0.5, 1, 10} // boundary values land in their own bucket (le semantics)
	export := func(order []int) string {
		r := NewRegistry()
		h := r.Histogram("h", bounds)
		for _, i := range order {
			h.Observe(obsv[i])
		}
		var buf bytes.Buffer
		if err := r.WriteText(&buf); err != nil {
			t.Fatal(err)
		}
		return buf.String()
	}
	fwd := export([]int{0, 1, 2, 3, 4, 5, 6})
	rev := export([]int{6, 5, 4, 3, 2, 1, 0})
	if fwd != rev {
		t.Fatalf("histogram export depends on observation order:\n%s\nvs\n%s", fwd, rev)
	}
	if !strings.Contains(fwd, "count=7") || !strings.Contains(fwd, "min=0.05") || !strings.Contains(fwd, "max=50") {
		t.Fatalf("unexpected histogram export: %s", fwd)
	}
	// le-bucket semantics: 0.05→le(0.1); 0.5,0.5,1→le(1); 5,10→le(10); 50→+Inf.
	if !strings.Contains(fwd, "le(0.1)=1 le(1)=3 le(10)=2 le(+Inf)=1") {
		t.Fatalf("unexpected bucket counts: %s", fwd)
	}
}

func TestHistogramEmpty(t *testing.T) {
	r := NewRegistry()
	r.Histogram("h", []float64{1})
	var buf bytes.Buffer
	if err := r.WriteText(&buf); err != nil {
		t.Fatal(err)
	}
	if strings.Contains(buf.String(), "min=") || strings.Contains(buf.String(), "max=") {
		t.Fatalf("empty histogram must not export min/max: %s", buf.String())
	}
	if math.IsInf(r.Histogram("h", nil).Min(), 1) != true {
		t.Fatal("empty histogram Min should be +Inf")
	}
}

func TestConcurrentCountersDeterministic(t *testing.T) {
	// 8 goroutines × 1000 increments: the total is schedule-independent.
	r := NewRegistry()
	c := r.Counter("n")
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 1000; i++ {
				c.Inc()
			}
		}()
	}
	wg.Wait()
	if c.Value() != 8000 {
		t.Fatalf("counter = %d, want 8000", c.Value())
	}
}

func TestTraceForkAbsorbOrder(t *testing.T) {
	// Children record concurrently; absorbing in task order must yield the
	// same byte export as the serial equivalent.
	serial := NewTrace()
	for i := 0; i < 4; i++ {
		serial.Add("task", float64(i+1), L("idx", string(rune('a'+i))))
	}
	parent := NewTrace()
	kids := make([]*Trace, 4)
	for i := range kids {
		kids[i] = parent.Fork()
	}
	var wg sync.WaitGroup
	for i := 3; i >= 0; i-- { // start in reverse order to shake scheduling
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			kids[i].Add("task", float64(i+1), L("idx", string(rune('a'+i))))
		}(i)
	}
	wg.Wait()
	for _, k := range kids {
		parent.Absorb(k)
	}
	var a, b bytes.Buffer
	if err := serial.WriteText(&a); err != nil {
		t.Fatal(err)
	}
	if err := parent.WriteText(&b); err != nil {
		t.Fatal(err)
	}
	if a.String() != b.String() {
		t.Fatalf("fork/absorb trace differs from serial:\n%s\nvs\n%s", a.String(), b.String())
	}
}

func TestTraceStartOffsets(t *testing.T) {
	tr := NewTrace()
	tr.Add("a", 1.5)
	tr.Add("b", 2.25)
	var buf bytes.Buffer
	if err := tr.WriteText(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "start=0s dur=1.5s  a") {
		t.Fatalf("missing first span offset: %s", out)
	}
	if !strings.Contains(out, "start=1.5s dur=2.25s  b") {
		t.Fatalf("missing cumulative offset: %s", out)
	}
}

func TestObserverForkSharesMetrics(t *testing.T) {
	o := NewObserver()
	kids := o.ForkN(2)
	kids[0].Metrics().Counter("n").Add(1)
	kids[1].Metrics().Counter("n").Add(2)
	kids[0].Trace().Add("s0", 1)
	kids[1].Trace().Add("s1", 2)
	o.AbsorbAll(kids)
	if got := o.Metrics().Counter("n").Value(); got != 3 {
		t.Fatalf("forked metrics not shared: %d", got)
	}
	spans := o.Trace().Spans()
	if len(spans) != 2 || spans[0].Name != "s0" || spans[1].Name != "s1" {
		t.Fatalf("absorbed spans out of order: %v", spans)
	}
}

func TestProfilePhases(t *testing.T) {
	p := NewProfile()
	stop := p.Phase("train").Start()
	stop()
	p.Phase("train").Start()() // immediate stop
	if got := p.Phase("train").Count(); got != 2 {
		t.Fatalf("phase count = %d, want 2", got)
	}
	var buf bytes.Buffer
	if err := p.WriteText(&buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "train") || !strings.Contains(buf.String(), "count=2") {
		t.Fatalf("profile dump missing phase: %s", buf.String())
	}
}

func TestWriteJSONShape(t *testing.T) {
	r := NewRegistry()
	r.Counter("c").Add(2)
	r.Gauge("g").Set(0.25)
	r.Histogram("h", []float64{1}).Observe(0.5)
	var buf bytes.Buffer
	if err := r.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{
		`"c": {"type":"counter","value":2}`,
		`"g": {"type":"gauge","value":0.25}`,
		`"h": {"type":"histogram","count":1,"min":0.5,"max":0.5,"buckets":[{"le":1,"count":1},{"le":"+Inf","count":0}]}`,
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("JSON export missing %q:\n%s", want, out)
		}
	}
}
