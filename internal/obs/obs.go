// Package obs is the repository's deterministic observability layer:
// metrics, tracing and profiling for the simulated measurement stack, built
// on the same discipline as internal/parallel — observing a run must never
// change its bytes.
//
// The layer separates three signals by how reproducible they are:
//
//   - Metrics (Registry): counters, gauges and histograms keyed by name and
//     sorted labels. The deterministic export contains only values that are
//     functions of the simulated work itself (kernel launches, DVFS
//     transitions, injected faults, CV folds): integer counts and
//     order-invariant histogram statistics, so the export is byte-identical
//     across runs and worker counts. Scheduling-dependent values (analytic
//     cache hits/misses) are registered as *unstable* and excluded from the
//     deterministic export.
//   - Traces (Trace): spans keyed on *simulated* time — durations come from
//     the simulator's clock, never the host's, and span order follows the
//     fork/absorb discipline of the parallel engine, so a trace is
//     byte-identical for every `-j` value and every schedule.
//   - Profiles (Profile): wall-clock phase timers. These are inherently
//     non-deterministic and are therefore never part of the metric or trace
//     exports; they are dumped separately (the CLIs' -profile flag),
//     together with the unstable metrics.
//
// Everything is nil-safe: a nil *Observer (and every handle derived from
// one) turns the whole layer into no-ops, so instrumented code calls it
// unconditionally and un-observed runs follow the exact same code path.
package obs

import (
	"fmt"
	"io"
)

// Observer bundles the three signals. The zero value is not useful;
// construct with NewObserver. A nil Observer disables all instrumentation.
type Observer struct {
	metrics *Registry
	trace   *Trace
	profile *Profile
}

// NewObserver returns an observer with all three signals enabled.
func NewObserver() *Observer {
	return &Observer{
		metrics: NewRegistry(),
		trace:   NewTrace(),
		profile: NewProfile(),
	}
}

// Metrics returns the metric registry (nil for a nil observer).
func (o *Observer) Metrics() *Registry {
	if o == nil {
		return nil
	}
	return o.metrics
}

// Trace returns the span collector (nil for a nil observer).
func (o *Observer) Trace() *Trace {
	if o == nil {
		return nil
	}
	return o.trace
}

// Profile returns the wall-clock profiler (nil for a nil observer).
func (o *Observer) Profile() *Profile {
	if o == nil {
		return nil
	}
	return o.profile
}

// Fork derives a child observer for one pre-ordered task of a parallel
// region. Metrics and profile are shared (their accumulation is
// order-invariant); the trace is forked so the child's spans stay private
// until the parent absorbs them in task order. Fork of a nil observer
// returns nil.
func (o *Observer) Fork() *Observer {
	if o == nil {
		return nil
	}
	return &Observer{metrics: o.metrics, trace: o.trace.Fork(), profile: o.profile}
}

// ForkN derives n children in task order — the pre-split idiom used before
// handing tasks to a worker pool. For a nil observer the returned slice
// holds n nils, so callers can index it unconditionally.
func (o *Observer) ForkN(n int) []*Observer {
	out := make([]*Observer, n)
	for i := range out {
		out[i] = o.Fork()
	}
	return out
}

// AbsorbAll folds the children's traces back into o in slice order. It is
// the counterpart of ForkN: calling it after every task succeeded makes the
// final trace independent of how the pool scheduled the tasks. Nil
// observers (on either side) are no-ops.
func (o *Observer) AbsorbAll(children []*Observer) {
	if o == nil {
		return
	}
	for _, c := range children {
		if c != nil {
			o.trace.Absorb(c.trace)
		}
	}
}

// WriteMetricsText writes the deterministic metric export as text.
func (o *Observer) WriteMetricsText(w io.Writer) error {
	return o.Metrics().WriteText(w)
}

// WriteMetricsJSON writes the deterministic metric export as JSON.
func (o *Observer) WriteMetricsJSON(w io.Writer) error {
	return o.Metrics().WriteJSON(w)
}

// WriteTraceText writes the simulated-time trace as text.
func (o *Observer) WriteTraceText(w io.Writer) error {
	return o.Trace().WriteText(w)
}

// WriteProfileText dumps the non-deterministic tier: wall-clock phase
// timers followed by the unstable metrics. This output is intentionally
// excluded from the deterministic exports — byte-identity across runs is
// neither promised nor wanted here.
func (o *Observer) WriteProfileText(w io.Writer) error {
	if o == nil {
		_, err := fmt.Fprintln(w, "# profiling disabled (no observer)")
		return err
	}
	if err := o.profile.WriteText(w); err != nil {
		return err
	}
	if _, err := fmt.Fprintln(w, "# unstable metrics (scheduling-dependent, excluded from -metrics)"); err != nil {
		return err
	}
	return o.metrics.writeText(w, unstableOnly)
}
