package obs

import (
	"fmt"
	"io"
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// PhaseTimer accumulates wall-clock time and invocation counts for one
// named phase. Wall time is inherently non-deterministic, which is exactly
// why it lives here and not in the metric registry: the profile dump is the
// one output that is allowed to differ between runs.
type PhaseTimer struct {
	count atomic.Uint64
	nanos atomic.Int64
}

// Start begins timing one invocation and returns the function that stops
// it. Safe on a nil timer (returns a no-op stop).
func (p *PhaseTimer) Start() func() {
	if p == nil {
		return func() {}
	}
	t0 := time.Now()
	return func() {
		p.nanos.Add(int64(time.Since(t0)))
		p.count.Add(1)
	}
}

// Count returns the number of completed invocations.
func (p *PhaseTimer) Count() uint64 {
	if p == nil {
		return 0
	}
	return p.count.Load()
}

// Total returns the accumulated wall-clock duration.
func (p *PhaseTimer) Total() time.Duration {
	if p == nil {
		return 0
	}
	return time.Duration(p.nanos.Load())
}

// Profile is a concurrency-safe collection of phase timers.
type Profile struct {
	mu     sync.Mutex
	phases map[string]*PhaseTimer
}

// NewProfile returns an empty profile.
func NewProfile() *Profile { return &Profile{phases: make(map[string]*PhaseTimer)} }

// Phase returns the timer for name, creating it on first use. Safe on a
// nil profile (returns a nil, no-op timer).
func (p *Profile) Phase(name string) *PhaseTimer {
	if p == nil {
		return nil
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	t, ok := p.phases[name]
	if !ok {
		t = &PhaseTimer{}
		p.phases[name] = t
	}
	return t
}

// WriteText dumps all phases sorted by name: count, total wall time and
// mean per invocation.
func (p *Profile) WriteText(w io.Writer) error {
	if p == nil {
		_, err := fmt.Fprintln(w, "# profiling disabled (no observer)")
		return err
	}
	p.mu.Lock()
	names := make([]string, 0, len(p.phases))
	for n := range p.phases {
		names = append(names, n)
	}
	timers := make(map[string]*PhaseTimer, len(p.phases))
	for n, t := range p.phases {
		timers[n] = t
	}
	p.mu.Unlock()
	sort.Strings(names)
	if _, err := fmt.Fprintln(w, "# wall-clock phase timers (non-deterministic by nature)"); err != nil {
		return err
	}
	for _, n := range names {
		t := timers[n]
		count := t.Count()
		total := t.Total()
		mean := time.Duration(0)
		if count > 0 {
			mean = total / time.Duration(count)
		}
		if _, err := fmt.Fprintf(w, "%-40s count=%-8d total=%-14s mean=%s\n", n, count, total, mean); err != nil {
			return err
		}
	}
	return nil
}
