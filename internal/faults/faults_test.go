package faults

import (
	"errors"
	"fmt"
	"testing"
)

func TestEmptyPlanInjectsNothing(t *testing.T) {
	in, err := NewInjector(Plan{Seed: 1}, 4)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < in.Devices(); i++ {
		d := in.Device(i)
		for s := 0; s < 100; s++ {
			if dec := d.OnSubmit(); dec.Err != nil || dec.CapMHz != 0 {
				t.Fatalf("empty plan injected %+v", dec)
			}
			if err := d.OnClockSet(); err != nil {
				t.Fatalf("empty plan rejected clock set: %v", err)
			}
		}
	}
	if !(Plan{}).Empty() {
		t.Error("zero plan not Empty")
	}
	if (Plan{TransientProb: 0.1}).Empty() {
		t.Error("plan with transient prob reported Empty")
	}
}

func TestPlanValidate(t *testing.T) {
	bad := []struct {
		name string
		plan Plan
	}{
		{"negative transient prob", Plan{TransientProb: -0.1}},
		{"transient prob above 1", Plan{TransientProb: 1.1}},
		{"clock-reject prob above 1", Plan{ClockRejectProb: 2}},
		{"failure device out of range", Plan{Failures: []DeviceFailure{{Device: 5}}}},
		{"failure before t=0", Plan{Failures: []DeviceFailure{{Device: 0, AfterSubmits: -1}}}},
		{"duplicate failure for one device", Plan{Failures: []DeviceFailure{
			{Device: 1, AfterSubmits: 2}, {Device: 1, AfterSubmits: 9}}}},
		{"throttle from-submit below 1", Plan{Throttles: []Throttle{
			{Device: 0, FromSubmit: 0, ToSubmit: 3, CapMHz: 800}}}},
		{"inverted throttle window", Plan{Throttles: []Throttle{
			{Device: 0, FromSubmit: 4, ToSubmit: 2, CapMHz: 800}}}},
		{"empty throttle window", Plan{Throttles: []Throttle{
			{Device: 0, FromSubmit: 3, ToSubmit: 3, CapMHz: 800}}}},
		{"non-positive throttle cap", Plan{Throttles: []Throttle{
			{Device: 0, FromSubmit: 1, ToSubmit: 2, CapMHz: 0}}}},
		{"overlapping throttle windows", Plan{Throttles: []Throttle{
			{Device: 0, FromSubmit: 2, ToSubmit: 5, CapMHz: 900},
			{Device: 0, FromSubmit: 4, ToSubmit: 7, CapMHz: 700}}}},
		{"nested throttle windows", Plan{Throttles: []Throttle{
			{Device: 0, FromSubmit: 1, ToSubmit: 10, CapMHz: 900},
			{Device: 0, FromSubmit: 3, ToSubmit: 4, CapMHz: 700}}}},
		{"clock-reject device out of range", Plan{ClockRejects: []ClockReject{{Device: -1, OnSet: 1}}}},
		{"clock-reject before first set", Plan{ClockRejects: []ClockReject{{Device: 0, OnSet: 0}}}},
	}
	for _, tc := range bad {
		if err := tc.plan.Validate(2); err == nil {
			t.Errorf("%s: plan validated: %+v", tc.name, tc.plan)
		}
	}
	good := []struct {
		name string
		plan Plan
	}{
		{"empty plan", Plan{}},
		{"adjacent throttle windows", Plan{Throttles: []Throttle{
			{Device: 0, FromSubmit: 2, ToSubmit: 4, CapMHz: 900},
			{Device: 0, FromSubmit: 4, ToSubmit: 6, CapMHz: 700}}}},
		{"same window on different devices", Plan{Throttles: []Throttle{
			{Device: 0, FromSubmit: 2, ToSubmit: 4, CapMHz: 900},
			{Device: 1, FromSubmit: 2, ToSubmit: 4, CapMHz: 900}}}},
		{"one failure per device", Plan{Failures: []DeviceFailure{
			{Device: 0, AfterSubmits: 3}, {Device: 1, AfterSubmits: 3}}}},
	}
	for _, tc := range good {
		if err := tc.plan.Validate(2); err != nil {
			t.Errorf("%s: plan rejected: %v", tc.name, err)
		}
	}
	if _, err := NewInjector(Plan{}, 0); err == nil {
		t.Error("injector accepted zero devices")
	}
}

func TestScheduledPermanentFailure(t *testing.T) {
	plan := Plan{Seed: 7, Failures: []DeviceFailure{{Device: 1, AfterSubmits: 2}}}
	in, err := NewInjector(plan, 3)
	if err != nil {
		t.Fatal(err)
	}
	d := in.Device(1)
	for s := 1; s <= 2; s++ {
		if dec := d.OnSubmit(); dec.Err != nil {
			t.Fatalf("submission %d faulted early: %v", s, dec.Err)
		}
	}
	dec := d.OnSubmit()
	if !IsPermanent(dec.Err) {
		t.Fatalf("submission 3 should be the permanent failure, got %v", dec.Err)
	}
	if dec.Frac < 0 || dec.Frac >= 1 {
		t.Errorf("fault fraction %g out of [0,1)", dec.Frac)
	}
	if !d.Dead() {
		t.Error("device not marked dead")
	}
	// Everything after death fails, including clock sets.
	if dec := d.OnSubmit(); !IsPermanent(dec.Err) {
		t.Error("post-death submission did not fail permanently")
	}
	if err := d.OnClockSet(); !IsPermanent(err) {
		t.Error("post-death clock set did not fail permanently")
	}
	// Other devices are unaffected.
	if dec := in.Device(0).OnSubmit(); dec.Err != nil {
		t.Errorf("healthy device faulted: %v", dec.Err)
	}
}

func TestThrottleWindowCapsClock(t *testing.T) {
	plan := Plan{Seed: 3, Throttles: []Throttle{
		{Device: 0, FromSubmit: 2, ToSubmit: 4, CapMHz: 900},
		{Device: 0, FromSubmit: 4, ToSubmit: 5, CapMHz: 700},
	}}
	in, err := NewInjector(plan, 1)
	if err != nil {
		t.Fatal(err)
	}
	d := in.Device(0)
	want := []int{0, 900, 900, 700, 0} // disjoint adjacent windows
	for s, cap := range want {
		dec := d.OnSubmit()
		if dec.Err != nil {
			t.Fatalf("submission %d faulted: %v", s+1, dec.Err)
		}
		if dec.CapMHz != cap {
			t.Errorf("submission %d cap %d MHz, want %d", s+1, dec.CapMHz, cap)
		}
	}
}

func TestScheduledClockReject(t *testing.T) {
	plan := Plan{Seed: 5, ClockRejects: []ClockReject{{Device: 0, OnSet: 2}}}
	in, err := NewInjector(plan, 2)
	if err != nil {
		t.Fatal(err)
	}
	d := in.Device(0)
	if err := d.OnClockSet(); err != nil {
		t.Fatalf("first clock set rejected: %v", err)
	}
	err2 := d.OnClockSet()
	var fe *Error
	if !errors.As(err2, &fe) || fe.Kind != ClockRejected {
		t.Fatalf("second clock set should be rejected, got %v", err2)
	}
	if IsTransient(err2) || IsPermanent(err2) {
		t.Error("clock rejection misclassified")
	}
	if !IsClockRejected(err2) {
		t.Error("IsClockRejected missed a clock rejection")
	}
	if !IsClockRejected(fmt.Errorf("wrapped: %w", err2)) {
		t.Error("IsClockRejected does not unwrap")
	}
	if err := d.OnClockSet(); err != nil {
		t.Errorf("third clock set rejected: %v", err)
	}
}

func TestTransientProbabilityIsSeededAndDeterministic(t *testing.T) {
	plan := Plan{Seed: 11, TransientProb: 0.3}
	sequence := func(seed uint64) string {
		p := plan
		p.Seed = seed
		in, err := NewInjector(p, 2)
		if err != nil {
			t.Fatal(err)
		}
		s := ""
		for i := 0; i < 200; i++ {
			dec := in.Device(0).OnSubmit()
			if dec.Err != nil {
				if !IsTransient(dec.Err) {
					t.Fatalf("unexpected fault kind: %v", dec.Err)
				}
				s += "x"
			} else {
				s += "."
			}
		}
		return s
	}
	a, b := sequence(11), sequence(11)
	if a != b {
		t.Fatalf("identical seeds produced different fault sequences:\n%s\n%s", a, b)
	}
	if c := sequence(12); a == c {
		t.Error("different seeds produced identical fault sequences")
	}
	// The empirical rate should be in the right ballpark for prob 0.3.
	n := 0
	for _, ch := range a {
		if ch == 'x' {
			n++
		}
	}
	if n < 30 || n > 90 {
		t.Errorf("transient rate %d/200 implausible for prob 0.3", n)
	}
}

func TestDeviceStreamsAreIndependent(t *testing.T) {
	// Consulting device 0 more often must not change device 1's sequence:
	// the resilient cluster relies on this to stay deterministic when shard
	// requeueing shifts work between devices.
	run := func(extraOnDev0 int) string {
		in, err := NewInjector(Plan{Seed: 21, TransientProb: 0.25}, 2)
		if err != nil {
			t.Fatal(err)
		}
		for i := 0; i < extraOnDev0; i++ {
			in.Device(0).OnSubmit()
		}
		s := ""
		for i := 0; i < 100; i++ {
			if dec := in.Device(1).OnSubmit(); dec.Err != nil {
				s += "x"
			} else {
				s += "."
			}
		}
		return s
	}
	if run(0) != run(57) {
		t.Error("device 1's fault stream depends on device 0's operation count")
	}
}

func TestErrorStringsAndKinds(t *testing.T) {
	for _, k := range []Kind{Transient, Permanent, ClockRejected, Kind(99)} {
		if k.String() == "" {
			t.Error("empty kind name")
		}
	}
	e := &Error{Kind: Transient, Device: 2, Op: 5}
	if e.Error() == "" {
		t.Error("empty error message")
	}
	wrapped := fmt.Errorf("synergy: device: %w", e)
	if !IsTransient(wrapped) {
		t.Error("IsTransient does not unwrap")
	}
	if IsTransient(nil) || IsPermanent(nil) || IsClockRejected(nil) {
		t.Error("nil error classified as fault")
	}
}
