// Package faults is a seeded, deterministic fault-injection layer for the
// simulated platform. The paper's applications run at scales where failures
// are routine — LiGen's EXSCALATE campaigns screened ligands on thousands of
// accelerator nodes (HPC5, MARCONI100) and Cronos runs long MHD simulations
// on distributed clusters — so the runtime layers above the simulator must be
// exercised against the fault classes real silicon produces:
//
//   - transient kernel faults (ECC-style retryable errors): the submission
//     aborts partway through, the device survives, a retry usually succeeds;
//   - permanent device failure: the device is lost for the rest of the
//     campaign, every later submission and clock operation fails;
//   - thermal-throttle windows: for a span of submissions the governor
//     silently caps the effective core clock below the requested one;
//   - clock-set rejections: SetCoreFreq calls fail the way flaky vendor
//     libraries do under driver contention.
//
// Everything is driven by per-device xrand streams derived from the plan
// seed, so a fault campaign is part of the deterministic contract: identical
// seeds produce identical fault sequences regardless of goroutine
// interleaving (each device's stream depends only on that device's own
// operation sequence), and the byte-identical-CSV guarantee of the
// measurement stack extends to fault-injected runs.
package faults

import (
	"errors"
	"fmt"

	"dsenergy/internal/xrand"
)

// Kind classifies an injected fault.
type Kind int

const (
	// Transient is an ECC-style retryable kernel fault.
	Transient Kind = iota
	// Permanent is an unrecoverable device loss.
	Permanent
	// ClockRejected is a failed clock-set operation.
	ClockRejected
)

// String returns the kind name.
func (k Kind) String() string {
	switch k {
	case Transient:
		return "transient"
	case Permanent:
		return "permanent"
	case ClockRejected:
		return "clock-rejected"
	default:
		return fmt.Sprintf("Kind(%d)", int(k))
	}
}

// Error is an injected fault, carrying enough context for the resilience
// layer to decide between retry, failover and abort.
type Error struct {
	Kind   Kind
	Device int // device index in the plan
	Op     int // 1-based per-device operation index that faulted
}

// Error implements error.
func (e *Error) Error() string {
	return fmt.Sprintf("faults: %s fault on device %d (op %d)", e.Kind, e.Device, e.Op)
}

// IsTransient reports whether err is (or wraps) a retryable injected fault.
func IsTransient(err error) bool {
	var fe *Error
	return errors.As(err, &fe) && fe.Kind == Transient
}

// IsPermanent reports whether err is (or wraps) a permanent device loss.
func IsPermanent(err error) bool {
	var fe *Error
	return errors.As(err, &fe) && fe.Kind == Permanent
}

// IsClockRejected reports whether err is (or wraps) a rejected clock-set
// operation — the flaky-vendor-library failure mode, distinct from the
// device being gone.
func IsClockRejected(err error) bool {
	var fe *Error
	return errors.As(err, &fe) && fe.Kind == ClockRejected
}

// DeviceFailure schedules a permanent failure: the device dies on its
// (AfterSubmits+1)-th submission. AfterSubmits 0 kills the first submission.
type DeviceFailure struct {
	Device       int
	AfterSubmits int
}

// Throttle declares a thermal-throttle window: submissions with 1-based
// per-device index in [FromSubmit, ToSubmit) run with the effective core
// clock capped at CapMHz, whatever clock was requested.
type Throttle struct {
	Device     int
	FromSubmit int
	ToSubmit   int
	CapMHz     int
}

// ClockReject schedules a rejection of the OnSet-th (1-based) clock-set
// call on the device.
type ClockReject struct {
	Device int
	OnSet  int
}

// Plan is a complete, seeded fault campaign. The zero Plan injects nothing;
// attaching it to a cluster is exactly a fault-free run.
type Plan struct {
	// Seed drives the per-device probability draws.
	Seed uint64
	// TransientProb is the per-submission probability of a retryable fault.
	TransientProb float64
	// ClockRejectProb is the per-clock-set probability of rejection.
	ClockRejectProb float64
	// Failures schedules permanent device losses.
	Failures []DeviceFailure
	// Throttles schedules thermal-throttle windows.
	Throttles []Throttle
	// ClockRejects schedules deterministic clock-set rejections.
	ClockRejects []ClockReject
}

// Empty reports whether the plan injects nothing at all.
func (p Plan) Empty() bool {
	return p.TransientProb == 0 && p.ClockRejectProb == 0 &&
		len(p.Failures) == 0 && len(p.Throttles) == 0 && len(p.ClockRejects) == 0
}

// Validate checks the plan against a device count.
func (p Plan) Validate(devices int) error {
	if p.TransientProb < 0 || p.TransientProb > 1 {
		return fmt.Errorf("faults: TransientProb %g out of [0,1]", p.TransientProb)
	}
	if p.ClockRejectProb < 0 || p.ClockRejectProb > 1 {
		return fmt.Errorf("faults: ClockRejectProb %g out of [0,1]", p.ClockRejectProb)
	}
	for i, f := range p.Failures {
		if f.Device < 0 || f.Device >= devices {
			return fmt.Errorf("faults: failure device %d out of range [0,%d)", f.Device, devices)
		}
		if f.AfterSubmits < 0 {
			return fmt.Errorf("faults: failure on device %d scheduled before t=0 (AfterSubmits %d)", f.Device, f.AfterSubmits)
		}
		for _, g := range p.Failures[:i] {
			if g.Device == f.Device {
				return fmt.Errorf("faults: duplicate failure for device %d (a device dies once)", f.Device)
			}
		}
	}
	for i, t := range p.Throttles {
		if t.Device < 0 || t.Device >= devices {
			return fmt.Errorf("faults: throttle device %d out of range [0,%d)", t.Device, devices)
		}
		if t.FromSubmit < 1 || t.ToSubmit <= t.FromSubmit {
			return fmt.Errorf("faults: bad throttle window [%d,%d)", t.FromSubmit, t.ToSubmit)
		}
		if t.CapMHz <= 0 {
			return fmt.Errorf("faults: non-positive throttle cap %d MHz", t.CapMHz)
		}
		// Overlapping windows on one device would leave the effective cap to
		// an implicit tie-break; demand disjoint windows instead of silently
		// combining them.
		for _, u := range p.Throttles[:i] {
			if t.Device == u.Device && t.FromSubmit < u.ToSubmit && u.FromSubmit < t.ToSubmit {
				return fmt.Errorf("faults: overlapping throttle windows [%d,%d) and [%d,%d) on device %d",
					u.FromSubmit, u.ToSubmit, t.FromSubmit, t.ToSubmit, t.Device)
			}
		}
	}
	for _, c := range p.ClockRejects {
		if c.Device < 0 || c.Device >= devices {
			return fmt.Errorf("faults: clock-reject device %d out of range [0,%d)", c.Device, devices)
		}
		if c.OnSet < 1 {
			return fmt.Errorf("faults: clock-reject OnSet %d must be >= 1", c.OnSet)
		}
	}
	return nil
}

// Decision is the injector's verdict on one submission.
type Decision struct {
	// Err, when non-nil, aborts the submission with the given fault.
	Err error
	// Frac is the fraction of the kernel completed before the fault struck
	// (meaningful only with a non-nil Err); the aborted work is wasted but
	// its time and energy were still spent.
	Frac float64
	// CapMHz, when non-zero, caps the effective core clock of this
	// submission (thermal throttling).
	CapMHz int
}

// Injector evaluates a plan for a fixed set of devices.
type Injector struct {
	plan    Plan
	devices []*DeviceInjector
}

// NewInjector builds an injector for the given device count. The plan must
// validate against it.
func NewInjector(plan Plan, devices int) (*Injector, error) {
	if devices < 1 {
		return nil, fmt.Errorf("faults: need at least 1 device, got %d", devices)
	}
	if err := plan.Validate(devices); err != nil {
		return nil, err
	}
	in := &Injector{plan: plan}
	base := xrand.New(plan.Seed)
	for i := 0; i < devices; i++ {
		// Per-device streams are split from the plan seed so each device's
		// fault sequence depends only on its own operation order — the
		// property that keeps concurrent shard execution deterministic.
		in.devices = append(in.devices, &DeviceInjector{
			plan:   &in.plan,
			device: i,
			rng:    base.Split(),
		})
	}
	return in, nil
}

// Device returns the per-device injector for device index i.
func (in *Injector) Device(i int) *DeviceInjector { return in.devices[i] }

// Devices returns the device count the injector was built for.
func (in *Injector) Devices() int { return len(in.devices) }

// DeviceInjector holds the fault state of one device. It is not safe for
// concurrent use on its own; the owning synergy.Queue serializes all
// consultations under its submission lock.
type DeviceInjector struct {
	plan      *Plan
	device    int
	rng       *xrand.Rand
	submits   int
	clockSets int
	dead      bool
}

// Dead reports whether the device has permanently failed.
func (d *DeviceInjector) Dead() bool { return d.dead }

// Submits returns how many submissions the device has been consulted for.
func (d *DeviceInjector) Submits() int { return d.submits }

// Fork derives a child injector for one partition of a pre-split parallel
// execution (e.g. one frequency of a parallel sweep). The child shares the
// plan but owns a stream split off the parent's and restarts the per-device
// operation counters: scheduled windows (Throttles, Failures, ClockRejects)
// are interpreted relative to the fork point, so a plan that throttles
// submissions [1, reps] of a device hits the first reps submissions of every
// partition — the partition-local reading that makes fault campaigns
// schedule-independent. A dead parent stays dead in the child.
func (d *DeviceInjector) Fork() *DeviceInjector {
	return &DeviceInjector{
		plan:   d.plan,
		device: d.device,
		rng:    d.rng.Split(),
		dead:   d.dead,
	}
}

// Absorb folds a forked child's state back into d: operation counters
// accumulate and a permanent failure observed by the child kills the parent.
// Absorbing every fork in fork order restores the aggregate counters a
// serial execution over the same partitions would have produced.
func (d *DeviceInjector) Absorb(child *DeviceInjector) {
	d.submits += child.submits
	d.clockSets += child.clockSets
	if child.dead {
		d.dead = true
	}
}

// OnSubmit is consulted by the device path before every kernel submission
// and returns the injector's decision for it.
func (d *DeviceInjector) OnSubmit() Decision {
	d.submits++
	if d.dead {
		return Decision{Err: &Error{Kind: Permanent, Device: d.device, Op: d.submits}}
	}
	var dec Decision
	for _, t := range d.plan.Throttles {
		if t.Device == d.device && d.submits >= t.FromSubmit && d.submits < t.ToSubmit {
			if dec.CapMHz == 0 || t.CapMHz < dec.CapMHz {
				dec.CapMHz = t.CapMHz
			}
		}
	}
	for _, f := range d.plan.Failures {
		if f.Device == d.device && d.submits > f.AfterSubmits {
			d.dead = true
			dec.Err = &Error{Kind: Permanent, Device: d.device, Op: d.submits}
			dec.Frac = d.rng.Float64()
			return dec
		}
	}
	if d.plan.TransientProb > 0 {
		if d.rng.Float64() < d.plan.TransientProb {
			dec.Err = &Error{Kind: Transient, Device: d.device, Op: d.submits}
			dec.Frac = d.rng.Float64()
			return dec
		}
	}
	return dec
}

// OnClockSet is consulted before every clock-set operation; a non-nil return
// rejects the set and leaves the device clock unchanged.
func (d *DeviceInjector) OnClockSet() error {
	d.clockSets++
	if d.dead {
		return &Error{Kind: Permanent, Device: d.device, Op: d.clockSets}
	}
	for _, c := range d.plan.ClockRejects {
		if c.Device == d.device && c.OnSet == d.clockSets {
			return &Error{Kind: ClockRejected, Device: d.device, Op: d.clockSets}
		}
	}
	if d.plan.ClockRejectProb > 0 {
		if d.rng.Float64() < d.plan.ClockRejectProb {
			return &Error{Kind: ClockRejected, Device: d.device, Op: d.clockSets}
		}
	}
	return nil
}
