package gpmodel

import (
	"math"
	"os"
	"path/filepath"
	"testing"

	"dsenergy/internal/gpusim"
	"dsenergy/internal/kernels"
	"dsenergy/internal/ml"
	"dsenergy/internal/synergy"
)

func trainSmall(t *testing.T) (*Model, *synergy.Queue) {
	t.Helper()
	p, err := synergy.NewPlatform(3, gpusim.V100Spec())
	if err != nil {
		t.Fatal(err)
	}
	q := p.Queues()[0]
	band := q.Spec().FreqsAbove(0.4)
	var freqs []int
	for i := 0; i < len(band); i += 16 {
		freqs = append(freqs, band[i])
	}
	freqs = append(freqs, q.Spec().FMaxMHz())
	m, err := Train(q, TrainConfig{
		Freqs: freqs, Reps: 2,
		Spec: ml.Spec{Algorithm: "forest", Params: map[string]float64{"n_estimators": 15}},
		Seed: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	return m, q
}

func computeMix() kernels.InstructionMix {
	return kernels.InstructionMix{FloatAdd: 80, FloatMul: 80, IntAdd: 10, GlobalAcc: 4}
}

func TestTrainProducesUsableModel(t *testing.T) {
	m, q := trainSmall(t)
	if m.BaselineFreqMHz != q.BaselineFreqMHz() {
		t.Errorf("baseline %d, want %d", m.BaselineFreqMHz, q.BaselineFreqMHz())
	}
	if m.TrainedOn != "NVIDIA V100" {
		t.Errorf("trained-on %q", m.TrainedOn)
	}
}

func TestPredictCurvesBaselineIsUnity(t *testing.T) {
	m, q := trainSmall(t)
	curves := m.PredictCurves(computeMix(), []int{q.BaselineFreqMHz()})
	if len(curves) != 1 {
		t.Fatal("want one point")
	}
	if curves[0].Speedup != 1 || curves[0].NormEnergy != 1 {
		t.Errorf("baseline prediction (%g, %g), want (1, 1)", curves[0].Speedup, curves[0].NormEnergy)
	}
}

func TestPredictCurvesInputBlind(t *testing.T) {
	// The general-purpose model's defining property: the same static mix
	// yields the same curve regardless of workload size (it has no input
	// channel at all).
	m, q := trainSmall(t)
	freqs := []int{q.Spec().NearestFreqMHz(900), q.BaselineFreqMHz(), q.Spec().FMaxMHz()}
	a := m.PredictCurves(computeMix(), freqs)
	b := m.PredictCurves(computeMix(), freqs)
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("prediction not deterministic")
		}
	}
}

func TestPredictComputeMixSpeedsUpWithFrequency(t *testing.T) {
	m, q := trainSmall(t)
	freqs := []int{q.Spec().NearestFreqMHz(900), q.Spec().FMaxMHz()}
	curves := m.PredictCurves(computeMix(), freqs)
	if curves[1].Speedup <= curves[0].Speedup {
		t.Errorf("compute mix speedup not increasing: %g -> %g", curves[0].Speedup, curves[1].Speedup)
	}
}

func TestPredictParetoNonEmptySubset(t *testing.T) {
	m, q := trainSmall(t)
	band := q.Spec().FreqsAbove(0.5)
	front := m.PredictPareto(computeMix(), band)
	if len(front) == 0 {
		t.Fatal("empty predicted front")
	}
	in := map[int]bool{}
	for _, f := range band {
		in[f] = true
	}
	for _, p := range front {
		if !in[p.FreqMHz] {
			t.Errorf("front frequency %d outside sweep", p.FreqMHz)
		}
		if math.IsNaN(p.Speedup) || math.IsNaN(p.NormEnergy) {
			t.Errorf("front point not finite: %+v", p)
		}
	}
}

func TestAppStaticFeaturesAggregates(t *testing.T) {
	p1 := kernels.Profile{Mix: kernels.InstructionMix{FloatAdd: 10}}
	p2 := kernels.Profile{Mix: kernels.InstructionMix{GlobalAcc: 30}}
	agg := AppStaticFeatures([]kernels.Profile{p1, p2})
	if agg.FloatAdd != 10 || agg.GlobalAcc != 30 {
		t.Errorf("aggregation wrong: %+v", agg)
	}
}

func TestTrainValidation(t *testing.T) {
	p, err := synergy.NewPlatform(3, gpusim.V100Spec())
	if err != nil {
		t.Fatal(err)
	}
	q := p.Queues()[0]
	if _, err := Train(q, TrainConfig{Freqs: []int{}}); err == nil {
		t.Error("expected error for empty sweep")
	}
	if _, err := Train(q, TrainConfig{Freqs: []int{1297}, Spec: ml.Spec{Algorithm: "nope"}}); err == nil {
		t.Error("expected error for unknown algorithm")
	}
}

func TestClusteredModelTrainsAndPredicts(t *testing.T) {
	p, err := synergy.NewPlatform(3, gpusim.V100Spec())
	if err != nil {
		t.Fatal(err)
	}
	q := p.Queues()[0]
	band := q.Spec().FreqsAbove(0.45)
	var freqs []int
	for i := 0; i < len(band); i += 20 {
		freqs = append(freqs, band[i])
	}
	freqs = append(freqs, q.BaselineFreqMHz(), q.Spec().FMaxMHz())
	m, err := TrainClustered(q, TrainConfig{Freqs: freqs, Reps: 1, Seed: 5}, 6)
	if err != nil {
		t.Fatal(err)
	}
	if m.NumClusters() != 6 {
		t.Errorf("clusters %d, want 6", m.NumClusters())
	}
	curves, err := m.PredictCurves(computeMix(), []int{q.BaselineFreqMHz(), q.Spec().FMaxMHz()})
	if err != nil {
		t.Fatal(err)
	}
	if len(curves) != 2 {
		t.Fatalf("want 2 points, got %d", len(curves))
	}
	if curves[0].Speedup != 1 || curves[0].NormEnergy != 1 {
		t.Errorf("baseline point (%g, %g), want (1, 1)", curves[0].Speedup, curves[0].NormEnergy)
	}
	if curves[1].Speedup <= 0 || curves[1].NormEnergy <= 0 {
		t.Errorf("non-positive prediction %+v", curves[1])
	}
}

func TestClusteredModelRejectsUnsweptFrequency(t *testing.T) {
	p, err := synergy.NewPlatform(3, gpusim.V100Spec())
	if err != nil {
		t.Fatal(err)
	}
	q := p.Queues()[0]
	freqs := []int{q.BaselineFreqMHz(), q.Spec().FMaxMHz()}
	m, err := TrainClustered(q, TrainConfig{Freqs: freqs, Reps: 1, Seed: 5}, 3)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := m.PredictCurves(computeMix(), []int{q.Spec().FMinMHz()}); err == nil {
		t.Error("expected error for frequency outside training sweep")
	}
}

func TestClusteredModelValidation(t *testing.T) {
	p, err := synergy.NewPlatform(3, gpusim.V100Spec())
	if err != nil {
		t.Fatal(err)
	}
	q := p.Queues()[0]
	if _, err := TrainClustered(q, TrainConfig{Freqs: []int{}}, 3); err == nil {
		t.Error("expected error for empty sweep")
	}
	if _, err := TrainClustered(q, TrainConfig{Freqs: []int{q.BaselineFreqMHz()}, Reps: 1}, 0); err == nil {
		t.Error("expected error for k=0")
	}
}

func TestStaticFeaturesFromListings(t *testing.T) {
	// The prediction phase can extract features from kernel listings (the
	// "new input code" of §4.1): parse the bundled dock and stencil
	// listings and check they land in the expected feature regimes.
	parse := func(name string) kernels.InstructionMix {
		f, err := os.Open(filepath.Join("testdata", name))
		if err != nil {
			t.Fatal(err)
		}
		defer f.Close()
		mix, err := kernels.ParseListing(f)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		return mix
	}
	dock := parse("dock.k")
	stencil := parse("stencil.k")

	df := dock.StaticFeatures()
	sf := stencil.StaticFeatures()
	// Dock: float-mul dominated; stencil: much higher global-access share.
	if df[5] < 0.2 {
		t.Errorf("dock float_mul fraction %g, want >= 0.2", df[5])
	}
	if sf[8] <= df[8] {
		t.Errorf("stencil gl_access fraction %g not above dock %g", sf[8], df[8])
	}

	// Both feed the trained GP model like any other mix.
	m, q := trainSmall(t)
	curves := m.PredictCurves(dock, []int{q.BaselineFreqMHz(), q.Spec().FMaxMHz()})
	if len(curves) != 2 || curves[1].Speedup <= 0 {
		t.Errorf("listing-derived prediction invalid: %+v", curves)
	}
}
