// Package gpmodel implements the general-purpose energy model the paper
// compares against (Fan et al., "Predictable GPUs Frequency Scaling for
// Energy and Performance", ICPP 2019): a supervised model trained on a suite
// of 106 micro-benchmarks whose inputs are the *static code features* of
// Table 1 plus the frequency configuration, predicting normalized energy and
// speedup for unseen codes without executing them.
//
// Being input-blind is the point: the model sees an application's instruction
// mix, not its workload, so one prediction curve serves every input size.
// That is exactly the limitation the paper's domain-specific models remove.
package gpmodel

import (
	"fmt"

	"dsenergy/internal/kernels"
	"dsenergy/internal/microbench"
	"dsenergy/internal/ml"
	"dsenergy/internal/pareto"
	"dsenergy/internal/synergy"
)

// Model predicts speedup and normalized energy from static code features and
// a frequency configuration.
type Model struct {
	speedup ml.Regressor
	energy  ml.Regressor
	// BaselineFreqMHz is the clock all training targets were normalized to.
	BaselineFreqMHz int
	// TrainedOn names the device whose measurements trained the model.
	TrainedOn string
}

// TrainConfig controls the micro-benchmark training sweep.
type TrainConfig struct {
	// Freqs is the frequency subset swept during training (nil = every
	// frequency of the device, as in the paper).
	Freqs []int
	// Reps is the repetitions per measurement (0 selects the paper's 5).
	Reps int
	// Spec is the regression algorithm (zero value selects a random
	// forest, the strongest performer).
	Spec ml.Spec
	// Seed drives stochastic learners.
	Seed uint64
}

// Train measures the micro-benchmark suite on q across the frequency sweep
// and fits the speedup and normalized-energy models.
func Train(q *synergy.Queue, cfg TrainConfig) (*Model, error) {
	freqs := cfg.Freqs
	if freqs == nil {
		freqs = q.SupportedFreqsMHz()
	}
	if len(freqs) == 0 {
		return nil, fmt.Errorf("gpmodel: empty frequency sweep")
	}
	reps := cfg.Reps
	if reps <= 0 {
		reps = 5
	}
	spec := cfg.Spec
	if spec.Algorithm == "" {
		spec = ml.Spec{Algorithm: "forest"}
	}
	base := q.BaselineFreqMHz()

	suite := microbench.Suite()
	var X [][]float64
	var ySpeed, yEnergy []float64
	for _, b := range suite {
		w := profileWorkload{b.Profile}
		ref, err := synergy.MeasureAt(q, w, base, reps)
		if err != nil {
			return nil, fmt.Errorf("gpmodel: baseline for %s: %w", b.Name, err)
		}
		for _, f := range freqs {
			m, err := synergy.MeasureAt(q, w, f, reps)
			if err != nil {
				return nil, fmt.Errorf("gpmodel: %s at %d MHz: %w", b.Name, f, err)
			}
			X = append(X, featureRow(b.Profile.Mix, f))
			ySpeed = append(ySpeed, ref.TimeS/m.TimeS)
			yEnergy = append(yEnergy, m.EnergyJ/ref.EnergyJ)
		}
	}

	sp, err := spec.New(cfg.Seed)
	if err != nil {
		return nil, err
	}
	if err := sp.Fit(X, ySpeed); err != nil {
		return nil, fmt.Errorf("gpmodel: fitting speedup model: %w", err)
	}
	en, err := spec.New(cfg.Seed + 1)
	if err != nil {
		return nil, err
	}
	if err := en.Fit(X, yEnergy); err != nil {
		return nil, fmt.Errorf("gpmodel: fitting energy model: %w", err)
	}
	return &Model{
		speedup: sp, energy: en,
		BaselineFreqMHz: base,
		TrainedOn:       q.Spec().Name,
	}, nil
}

// featureRow assembles the model input: the ten Table 1 fractions plus the
// frequency configuration.
func featureRow(mix kernels.InstructionMix, freqMHz int) []float64 {
	return append(mix.StaticFeatures(), float64(freqMHz))
}

// AppStaticFeatures extracts the input-independent feature vector of an
// application from its kernels: the per-work-item mixes combined weighted by
// each kernel's static instruction share, as a static analyzer summing over
// the program's kernels would.
func AppStaticFeatures(profiles []kernels.Profile) kernels.InstructionMix {
	var agg kernels.InstructionMix
	for _, p := range profiles {
		agg = agg.Add(p.Mix)
	}
	return agg
}

// CurvePoint is a predicted (speedup, normalized energy) at one frequency.
type CurvePoint struct {
	FreqMHz    int
	Speedup    float64
	NormEnergy float64
}

// PredictCurves evaluates the model for one application mix across freqs.
// The curve is re-normalized so the baseline frequency maps to exactly
// (1.0, 1.0), as the prediction workflow of Figure 12 prescribes.
func (m *Model) PredictCurves(mix kernels.InstructionMix, freqs []int) []CurvePoint {
	// Baseline row first, then the sweep, through the block-oriented
	// ml.PredictBatch path (bit-identical per row to Predict).
	rows := make([][]float64, 0, len(freqs)+1)
	rows = append(rows, featureRow(mix, m.BaselineFreqMHz))
	for _, f := range freqs {
		rows = append(rows, featureRow(mix, f))
	}
	speeds := ml.PredictBatch(m.speedup, rows)
	energies := ml.PredictBatch(m.energy, rows)
	baseSpeed, baseEnergy := speeds[0], energies[0]
	if baseSpeed == 0 {
		baseSpeed = 1
	}
	if baseEnergy == 0 {
		baseEnergy = 1
	}
	out := make([]CurvePoint, 0, len(freqs))
	for i, f := range freqs {
		out = append(out, CurvePoint{
			FreqMHz:    f,
			Speedup:    speeds[i+1] / baseSpeed,
			NormEnergy: energies[i+1] / baseEnergy,
		})
	}
	return out
}

// PredictPareto returns the model's predicted Pareto-optimal frequency set.
func (m *Model) PredictPareto(mix kernels.InstructionMix, freqs []int) []pareto.Point {
	curves := m.PredictCurves(mix, freqs)
	pts := make([]pareto.Point, len(curves))
	for i, c := range curves {
		pts[i] = pareto.Point{FreqMHz: c.FreqMHz, Speedup: c.Speedup, NormEnergy: c.NormEnergy}
	}
	return pareto.Front(pts)
}

// profileWorkload adapts a raw kernel profile to synergy.Workload.
type profileWorkload struct {
	p kernels.Profile
}

func (w profileWorkload) Name() string { return w.p.Name }

func (w profileWorkload) RunOn(q *synergy.Queue) (float64, float64, error) {
	r, err := q.Submit(w.p)
	if err != nil {
		return 0, 0, err
	}
	return r.TimeS, r.EnergyJ, nil
}
