package gpmodel

import (
	"fmt"
	"sort"

	"dsenergy/internal/kernels"
	"dsenergy/internal/microbench"
	"dsenergy/internal/ml"
	"dsenergy/internal/synergy"
)

// ClusteredModel is the second general-purpose baseline family the paper's
// related work discusses (Wu et al., HPCA'15): micro-benchmarks are
// clustered by their static feature vectors with k-means, and each cluster
// carries the mean measured scaling curve of its members. Prediction assigns
// an application's static features to the nearest cluster and returns that
// cluster's curve — input-blind, like the regression-based model.
type ClusteredModel struct {
	BaselineFreqMHz int
	TrainedOn       string

	km     *ml.KMeans
	freqs  []int
	curves [][]CurvePoint // per cluster, aligned with freqs
}

// TrainClustered measures the micro-benchmark suite on q and builds a
// k-cluster model.
func TrainClustered(q *synergy.Queue, cfg TrainConfig, k int) (*ClusteredModel, error) {
	freqs := cfg.Freqs
	if freqs == nil {
		freqs = q.SupportedFreqsMHz()
	}
	if len(freqs) == 0 {
		return nil, fmt.Errorf("gpmodel: empty frequency sweep")
	}
	reps := cfg.Reps
	if reps <= 0 {
		reps = 5
	}
	sorted := append([]int(nil), freqs...)
	sort.Ints(sorted)
	base := q.BaselineFreqMHz()

	suite := microbench.Suite()
	features := make([][]float64, len(suite))
	benchCurves := make([][]CurvePoint, len(suite))
	for bi, b := range suite {
		features[bi] = b.Profile.Mix.StaticFeatures()
		w := profileWorkload{b.Profile}
		ref, err := synergy.MeasureAt(q, w, base, reps)
		if err != nil {
			return nil, fmt.Errorf("gpmodel: clustered baseline for %s: %w", b.Name, err)
		}
		row := make([]CurvePoint, len(sorted))
		for fi, f := range sorted {
			m, err := synergy.MeasureAt(q, w, f, reps)
			if err != nil {
				return nil, err
			}
			row[fi] = CurvePoint{
				FreqMHz:    f,
				Speedup:    ref.TimeS / m.TimeS,
				NormEnergy: m.EnergyJ / ref.EnergyJ,
			}
		}
		benchCurves[bi] = row
	}

	km := ml.NewKMeans(k)
	if err := km.Fit(features, cfg.Seed); err != nil {
		return nil, fmt.Errorf("gpmodel: clustering suite: %w", err)
	}

	// Average the member curves of each cluster.
	curves := make([][]CurvePoint, k)
	counts := make([]int, k)
	for c := range curves {
		curves[c] = make([]CurvePoint, len(sorted))
		for fi, f := range sorted {
			curves[c][fi].FreqMHz = f
		}
	}
	for bi := range suite {
		c := km.Predict(features[bi])
		counts[c]++
		for fi := range sorted {
			curves[c][fi].Speedup += benchCurves[bi][fi].Speedup
			curves[c][fi].NormEnergy += benchCurves[bi][fi].NormEnergy
		}
	}
	for c := range curves {
		if counts[c] == 0 {
			continue
		}
		inv := 1 / float64(counts[c])
		for fi := range curves[c] {
			curves[c][fi].Speedup *= inv
			curves[c][fi].NormEnergy *= inv
		}
	}

	return &ClusteredModel{
		BaselineFreqMHz: base,
		TrainedOn:       q.Spec().Name,
		km:              km,
		freqs:           sorted,
		curves:          curves,
	}, nil
}

// PredictCurves returns the assigned cluster's curve at the requested
// frequencies (which must be a subset of the training sweep), re-normalized
// to the baseline point.
func (m *ClusteredModel) PredictCurves(mix kernels.InstructionMix, freqs []int) ([]CurvePoint, error) {
	cluster := m.km.Predict(mix.StaticFeatures())
	curve := m.curves[cluster]
	byFreq := make(map[int]CurvePoint, len(curve))
	for _, p := range curve {
		byFreq[p.FreqMHz] = p
	}
	baseP, ok := byFreq[m.BaselineFreqMHz]
	if !ok || baseP.Speedup == 0 || baseP.NormEnergy == 0 {
		baseP = CurvePoint{Speedup: 1, NormEnergy: 1}
	}
	out := make([]CurvePoint, 0, len(freqs))
	for _, f := range freqs {
		p, ok := byFreq[f]
		if !ok {
			return nil, fmt.Errorf("gpmodel: frequency %d MHz not in clustered training sweep", f)
		}
		out = append(out, CurvePoint{
			FreqMHz:    f,
			Speedup:    p.Speedup / baseP.Speedup,
			NormEnergy: p.NormEnergy / baseP.NormEnergy,
		})
	}
	return out, nil
}

// NumClusters returns the trained cluster count.
func (m *ClusteredModel) NumClusters() int { return len(m.curves) }
