package cluster

// Resilient execution: the runtime survives the faults internal/faults
// injects, the way the paper's production campaigns must survive real
// hardware (EXSCALATE screened ligands on thousands of accelerator nodes;
// Cronos runs for days on distributed clusters). The strategies are the
// standard HPC ones, made measurable:
//
//   - transient kernel faults are retried with capped exponential backoff;
//   - LiGen's embarrassingly parallel campaign is over-decomposed into more
//     shards than devices, and shards stranded on a dead device are requeued
//     to the survivors at the next round barrier;
//   - Cronos checkpoints every K steps; a device loss rolls the simulation
//     back to the last checkpoint, the z-slabs are re-decomposed over the
//     survivors and the lost steps are re-executed (graceful degradation to
//     n-1 devices);
//   - every recovery cost is accounted in the Result: retries, failovers,
//     backoff, checkpoint overhead and the wasted (aborted or re-executed)
//     time and energy — resilience itself becomes a time/energy trade-off in
//     the spirit of the paper.
//
// Determinism: per-device work runs in one goroutine per device, but each
// device owns private noise and fault streams and results are aggregated in
// device-index order at every barrier, so identical seeds give byte-identical
// results regardless of scheduling.

import (
	"fmt"
	"math"
	"strconv"
	"sync"

	"dsenergy/internal/cronos"
	"dsenergy/internal/faults"
	"dsenergy/internal/ligen"
	"dsenergy/internal/obs"
	"dsenergy/internal/synergy"
)

// ResilienceConfig controls the recovery strategies of a fault-injected
// cluster. The zero value selects the defaults noted on each field.
type ResilienceConfig struct {
	// MaxRetries is the per-attempt transient retry budget (default 3).
	MaxRetries int
	// BackoffBaseS is the first retry's backoff delay in simulated seconds
	// (default 0.01); delays grow by BackoffFactor (default 2) per retry and
	// are capped at BackoffCapS (default 0.1). Backoff time counts into the
	// device's busy time and burns idle power.
	BackoffBaseS  float64
	BackoffFactor float64
	BackoffCapS   float64
	// ShardsPerDevice is the LiGen work-queue granularity: the campaign is
	// split into ShardsPerDevice shards per device (default 4), so a dead
	// device strands at most 1/ShardsPerDevice of its work per round.
	ShardsPerDevice int
	// CheckpointEverySteps is the Cronos checkpoint interval (default 8;
	// negative disables checkpointing, so a failover restarts from step 0).
	CheckpointEverySteps int
	// CheckpointBWGBs is the bandwidth the checkpoint state is written and
	// restored at (default 10 GB/s, a parallel-filesystem-class sink).
	CheckpointBWGBs float64
}

// DefaultResilienceConfig returns the documented defaults.
func DefaultResilienceConfig() ResilienceConfig {
	return ResilienceConfig{
		MaxRetries:           3,
		BackoffBaseS:         0.01,
		BackoffFactor:        2,
		BackoffCapS:          0.1,
		ShardsPerDevice:      4,
		CheckpointEverySteps: 8,
		CheckpointBWGBs:      10,
	}
}

// withDefaults fills zero fields with the documented defaults.
func (rc ResilienceConfig) withDefaults() ResilienceConfig {
	d := DefaultResilienceConfig()
	if rc.MaxRetries == 0 {
		rc.MaxRetries = d.MaxRetries
	}
	if rc.BackoffBaseS == 0 {
		rc.BackoffBaseS = d.BackoffBaseS
	}
	if rc.BackoffFactor == 0 {
		rc.BackoffFactor = d.BackoffFactor
	}
	if rc.BackoffCapS == 0 {
		rc.BackoffCapS = d.BackoffCapS
	}
	if rc.ShardsPerDevice == 0 {
		rc.ShardsPerDevice = d.ShardsPerDevice
	}
	if rc.CheckpointEverySteps == 0 {
		rc.CheckpointEverySteps = d.CheckpointEverySteps
	}
	if rc.CheckpointBWGBs == 0 {
		rc.CheckpointBWGBs = d.CheckpointBWGBs
	}
	return rc
}

// SetFaultPlan attaches a seeded fault plan and resilience configuration to
// the cluster. An empty plan detaches injection entirely: the cluster then
// follows the exact fault-free execution path, so results are bit-identical
// to a cluster that never saw a plan (the determinism contract callers rely
// on). Attaching a plan mid-run is not supported; call it before RunCronos /
// ScreenLiGen.
func (c *Cluster) SetFaultPlan(plan faults.Plan, rc ResilienceConfig) error {
	if err := plan.Validate(len(c.queues)); err != nil {
		return err
	}
	c.rc = rc.withDefaults()
	if plan.Empty() {
		c.inj = nil
		for _, q := range c.queues {
			q.SetFaultInjector(nil)
		}
		return nil
	}
	inj, err := faults.NewInjector(plan, len(c.queues))
	if err != nil {
		return err
	}
	c.inj = inj
	for i, q := range c.queues {
		q.SetFaultInjector(inj.Device(i))
	}
	c.dead = make([]bool, len(c.queues))
	return nil
}

// Resilient reports whether a non-empty fault plan is attached.
func (c *Cluster) Resilient() bool { return c.inj != nil }

// alive returns the indices of devices not yet permanently failed, ascending.
func (c *Cluster) alive() []int {
	var out []int
	for i := range c.queues {
		if !c.dead[i] {
			out = append(out, i)
		}
	}
	return out
}

// attemptOut is the outcome of running one workload on one device with the
// transient-retry loop applied.
type attemptOut struct {
	goodTimeS     float64 // cost of the successful attempt (zero if none)
	goodEnergyJ   float64
	wasteTimeS    float64 // cost of failed attempts (partial aborts included)
	wasteEnergyJ  float64
	backoffTimeS  float64
	retries       int
	err           error // non-nil when the attempt gave up
	permanentFail bool  // err is a permanent device loss
}

// busyTimeS is the device wall time the attempt occupied.
func (o attemptOut) busyTimeS() float64 {
	return o.goodTimeS + o.wasteTimeS + o.backoffTimeS
}

// attempt runs w on device di, retrying transient faults with capped
// exponential backoff. Failed attempts are charged from the queue's event
// log, so partially executed kernels are accounted exactly once.
func (c *Cluster) attempt(di int, w synergy.Workload) attemptOut {
	q := c.queues[di]
	var o attemptOut
	for try := 0; ; try++ {
		first := q.EventCount()
		t, e, err := w.RunOn(q)
		if err == nil {
			o.goodTimeS, o.goodEnergyJ = t, e
			return o
		}
		for _, ev := range q.EventsFrom(first) {
			o.wasteTimeS += ev.TimeS
			o.wasteEnergyJ += ev.EnergyJ
		}
		if faults.IsPermanent(err) {
			o.err = err
			o.permanentFail = true
			return o
		}
		if !faults.IsTransient(err) || try >= c.rc.MaxRetries {
			o.err = err
			return o
		}
		o.retries++
		delayS := c.rc.BackoffBaseS * math.Pow(c.rc.BackoffFactor, float64(try))
		if delayS > c.rc.BackoffCapS {
			delayS = c.rc.BackoffCapS
		}
		o.backoffTimeS += delayS
	}
}

// slabSizes splits nz z-planes across n devices, sizes differing by at most
// one plane.
func slabSizes(nz, n int) []int {
	out := make([]int, n)
	for i := range out {
		out[i] = nz / n
		if i < nz%n {
			out[i]++
		}
	}
	return out
}

// runCronosResilient advances the simulation step by step with a
// bulk-synchronous barrier per step, checkpointing every K steps. A device
// loss rolls back to the last checkpoint, re-decomposes the slabs over the
// survivors and re-executes the lost steps; the rolled-back work is counted
// as wasted.
func (c *Cluster) runCronosResilient(nx, ny, nz, steps int) (Result, error) {
	rc := c.rc
	aliveIdx := c.alive()
	if len(aliveIdx) == 0 {
		return Result{}, fmt.Errorf("cluster: %w", ErrNoSurvivingDevices)
	}

	var res Result
	res.PerDevice = make([]float64, len(c.queues))
	idleW := c.queues[0].Spec().IdleW

	// Checkpoint write/restore time: the full conserved state streamed to
	// the checkpoint sink.
	stateBytes := float64(nx) * float64(ny) * float64(nz) * cronos.NVars * 8
	ckptWriteS := 0.0
	if rc.CheckpointEverySteps > 0 {
		ckptWriteS = stateBytes / (rc.CheckpointBWGBs * 1e9)
	}

	// Halo-exchange cost per step at the current device count.
	haloBytes := float64(cronos.Ghost) * float64(nx) * float64(ny) * cronos.NVars * 8
	commPerStepS := func(n int) float64 {
		if n < 2 {
			return 0
		}
		perSubstep := 2 * (haloBytes/(c.net.BandwidthGBs*1e9) + c.net.LatencyS)
		return 3 * perSubstep
	}

	lastCkpt := 0
	// Wall time and energy of completed steps since the last checkpoint —
	// the work a failover discards.
	var sinceCkptTimeS, sinceCkptEnergyJ float64

	step := 1
	for step <= steps {
		n := len(aliveIdx)
		if nz < n {
			return Result{}, fmt.Errorf("cluster: cannot split %d z-planes across %d devices", nz, n)
		}
		slabs := slabSizes(nz, n)
		outs := make([]attemptOut, n)
		var wg sync.WaitGroup
		for k := range aliveIdx {
			w, err := cronos.NewWorkload(nx, ny, slabs[k], 1)
			if err != nil {
				return Result{}, err
			}
			wg.Add(1)
			go func(k, di int, w cronos.Workload) {
				defer wg.Done()
				outs[k] = c.attempt(di, w)
			}(k, aliveIdx[k], w)
		}
		wg.Wait()

		// Aggregate in device-index order (aliveIdx is ascending).
		var stepSlowS, stepGoodEnergyJ float64
		var newlyDead []int
		for k, o := range outs {
			di := aliveIdx[k]
			res.PerDevice[di] += o.busyTimeS()
			res.EnergyJ += o.goodEnergyJ + o.wasteEnergyJ + o.backoffTimeS*idleW
			res.Retries += o.retries
			c.om.retries.Add(uint64(o.retries))
			res.WastedTimeS += o.wasteTimeS
			res.WastedEnergyJ += o.wasteEnergyJ
			res.BackoffTimeS += o.backoffTimeS
			stepGoodEnergyJ += o.goodEnergyJ
			if o.busyTimeS() > stepSlowS {
				stepSlowS = o.busyTimeS()
			}
			if o.permanentFail {
				newlyDead = append(newlyDead, di)
			} else if o.err != nil {
				return Result{}, fmt.Errorf("cluster: step %d: %w", step, o.err)
			}
		}

		if len(newlyDead) > 0 {
			// Failover: the step is lost, and so is everything since the
			// last checkpoint — it will be re-executed by the survivors.
			for _, di := range newlyDead {
				c.dead[di] = true
				c.obsv.Trace().Add("cluster.failover", 0,
					obs.L("device", c.queues[di].Spec().Name),
					obs.L("step", strconv.Itoa(step)))
			}
			res.Failovers += len(newlyDead)
			c.om.failovers.Add(uint64(len(newlyDead)))
			aliveIdx = c.alive()
			if len(aliveIdx) == 0 {
				return Result{}, fmt.Errorf("cluster: all %d devices failed at step %d: %w", len(c.queues), step, ErrNoSurvivingDevices)
			}
			res.TimeS += stepSlowS
			res.WastedTimeS += sinceCkptTimeS + stepSlowS
			res.WastedEnergyJ += sinceCkptEnergyJ + stepGoodEnergyJ
			sinceCkptTimeS, sinceCkptEnergyJ = 0, 0
			if ckptWriteS > 0 {
				// Restoring the checkpoint onto the survivors costs one read
				// of the state.
				res.TimeS += ckptWriteS
				res.CheckpointTimeS += ckptWriteS
				res.EnergyJ += ckptWriteS * idleW * float64(len(aliveIdx))
				c.obsv.Trace().Add("cluster.restore", ckptWriteS,
					obs.L("step", strconv.Itoa(lastCkpt)))
			}
			step = lastCkpt + 1
			continue
		}

		commS := commPerStepS(n)
		stepWallS := stepSlowS + commS
		res.CommTimeS += commS
		// Devices idle-waiting at the barrier burn idle power for the
		// communication time, as in the fault-free path.
		res.EnergyJ += commS * idleW * float64(n)
		if rc.CheckpointEverySteps > 0 && step%rc.CheckpointEverySteps == 0 {
			stepWallS += ckptWriteS
			res.CheckpointTimeS += ckptWriteS
			res.EnergyJ += ckptWriteS * idleW * float64(n)
			lastCkpt = step
			sinceCkptTimeS, sinceCkptEnergyJ = 0, 0
			c.om.checkpoints.Inc()
			c.obsv.Trace().Add("cluster.checkpoint", ckptWriteS,
				obs.L("step", strconv.Itoa(step)))
		} else {
			sinceCkptTimeS += stepSlowS + commS
			sinceCkptEnergyJ += stepGoodEnergyJ + commS*idleW*float64(n)
		}
		res.TimeS += stepWallS
		c.obsv.Trace().Add("cluster.cronos.step", stepWallS,
			obs.L("step", strconv.Itoa(step)),
			obs.L("devices", strconv.Itoa(n)))
		step++
	}
	res.SurvivingDevices = len(aliveIdx)
	return res, nil
}

// ligandShards splits a campaign into nShards shard sizes differing by at
// most one ligand.
func ligandShards(ligands, nShards int) []int {
	out := make([]int, nShards)
	for i := range out {
		out[i] = ligands / nShards
		if i < ligands%nShards {
			out[i]++
		}
	}
	return out
}

// screenLiGenResilient over-decomposes the campaign into ShardsPerDevice
// shards per device and executes rounds of shard batches with a barrier per
// round; shards stranded on a device that died mid-round are requeued to the
// survivors in the next round. Screening shards are independent, so requeue
// needs no rollback — only the dead device's unfinished work moves.
func (c *Cluster) screenLiGenResilient(in ligen.Input) (Result, error) {
	rc := c.rc
	aliveIdx := c.alive()
	if len(aliveIdx) == 0 {
		return Result{}, fmt.Errorf("cluster: %w", ErrNoSurvivingDevices)
	}
	if in.Ligands < len(aliveIdx) {
		return Result{}, fmt.Errorf("cluster: cannot shard %d ligands across %d devices", in.Ligands, len(aliveIdx))
	}

	nShards := len(aliveIdx) * rc.ShardsPerDevice
	if nShards > in.Ligands {
		nShards = in.Ligands
	}
	shardLigands := ligandShards(in.Ligands, nShards)
	pending := make([]int, nShards)
	for i := range pending {
		pending[i] = i
	}

	var res Result
	res.PerDevice = make([]float64, len(c.queues))
	idleW := c.queues[0].Spec().IdleW

	type devOut struct {
		out      attemptOut // accumulated over the device's shards this round
		stranded []int      // shards to requeue (device died or never started them)
		fatal    error      // non-recoverable, non-permanent failure
		died     bool
	}

	for round := 0; len(pending) > 0; round++ {
		if len(aliveIdx) == 0 {
			return Result{}, fmt.Errorf("cluster: all %d devices failed with %d shards unscreened: %w", len(c.queues), len(pending), ErrNoSurvivingDevices)
		}
		// Deterministic round-robin assignment of pending shards (ascending)
		// over the surviving devices (ascending).
		byDev := make([][]int, len(aliveIdx))
		for j, si := range pending {
			k := j % len(aliveIdx)
			byDev[k] = append(byDev[k], si)
		}
		outs := make([]devOut, len(aliveIdx))
		var wg sync.WaitGroup
		for k := range aliveIdx {
			wg.Add(1)
			go func(k, di int, shards []int) {
				defer wg.Done()
				d := &outs[k]
				for si, shard := range shards {
					sub := in
					sub.Ligands = shardLigands[shard]
					w, err := ligen.NewWorkload(sub)
					if err != nil {
						d.fatal = err
						return
					}
					o := c.attempt(di, w)
					d.out.goodTimeS += o.goodTimeS
					d.out.goodEnergyJ += o.goodEnergyJ
					d.out.wasteTimeS += o.wasteTimeS
					d.out.wasteEnergyJ += o.wasteEnergyJ
					d.out.backoffTimeS += o.backoffTimeS
					d.out.retries += o.retries
					if o.err == nil {
						continue
					}
					if o.permanentFail {
						// The in-flight shard and everything not yet started
						// is stranded; the survivors pick it up next round.
						d.died = true
						d.stranded = append(d.stranded, shards[si:]...)
					} else {
						d.fatal = o.err
					}
					return
				}
			}(k, aliveIdx[k], byDev[k])
		}
		wg.Wait()

		// Aggregate in device-index order.
		var roundSlowS float64
		var requeue []int
		for k, d := range outs {
			di := aliveIdx[k]
			if d.fatal != nil {
				return Result{}, fmt.Errorf("cluster: device %d: %w", di, d.fatal)
			}
			busy := d.out.busyTimeS()
			res.PerDevice[di] += busy
			res.EnergyJ += d.out.goodEnergyJ + d.out.wasteEnergyJ + d.out.backoffTimeS*idleW
			res.Retries += d.out.retries
			c.om.retries.Add(uint64(d.out.retries))
			res.WastedTimeS += d.out.wasteTimeS
			res.WastedEnergyJ += d.out.wasteEnergyJ
			res.BackoffTimeS += d.out.backoffTimeS
			if busy > roundSlowS {
				roundSlowS = busy
			}
			if d.died {
				c.dead[di] = true
				res.Failovers++
				c.om.failovers.Inc()
				c.obsv.Trace().Add("cluster.failover", 0,
					obs.L("device", c.queues[di].Spec().Name),
					obs.L("round", strconv.Itoa(round)))
			}
			requeue = append(requeue, d.stranded...)
		}
		res.TimeS += roundSlowS
		c.obsv.Trace().Add("cluster.ligen.round", roundSlowS,
			obs.L("round", strconv.Itoa(round)),
			obs.L("devices", strconv.Itoa(len(aliveIdx))),
			obs.L("shards", strconv.Itoa(len(pending))))
		c.om.requeued.Add(uint64(len(requeue)))
		pending = requeue
		aliveIdx = c.alive()
	}
	res.SurvivingDevices = len(aliveIdx)
	return res, nil
}
