package cluster

import (
	"errors"
	"math"
	"testing"

	"dsenergy/internal/faults"
	"dsenergy/internal/gpusim"
	"dsenergy/internal/ligen"
)

func resilientCluster(t *testing.T, n int, plan faults.Plan) *Cluster {
	t.Helper()
	c := newCluster(t, n)
	if err := c.SetFaultPlan(plan, ResilienceConfig{}); err != nil {
		t.Fatal(err)
	}
	return c
}

func TestEmptyPlanMatchesFaultFreeRun(t *testing.T) {
	in := ligen.Input{Ligands: 4096, Atoms: 63, Fragments: 8}
	base, err := newCluster(t, 4).ScreenLiGen(in)
	if err != nil {
		t.Fatal(err)
	}
	withPlan := resilientCluster(t, 4, faults.Plan{Seed: 99})
	got, err := withPlan.ScreenLiGen(in)
	if err != nil {
		t.Fatal(err)
	}
	if withPlan.Resilient() {
		t.Error("empty plan must not attach an injector")
	}
	if math.Abs(got.TimeS-base.TimeS) > 0 || math.Abs(got.EnergyJ-base.EnergyJ) > 0 {
		t.Errorf("empty plan changed results: %+v vs %+v", got, base)
	}
	if got.Retries != 0 || got.Failovers != 0 || got.WastedEnergyJ != 0 {
		t.Errorf("fault-free run reported resilience costs: %+v", got)
	}
}

func TestLiGenSurvivesPermanentFailure(t *testing.T) {
	in := ligen.Input{Ligands: 4096, Atoms: 63, Fragments: 8}
	base, err := newCluster(t, 4).ScreenLiGen(in)
	if err != nil {
		t.Fatal(err)
	}
	// Device 2 dies mid-campaign (shards are 3 submissions each; die inside
	// its second shard).
	plan := faults.Plan{
		Seed:     5,
		Failures: []faults.DeviceFailure{{Device: 2, AfterSubmits: 4}},
	}
	c := resilientCluster(t, 4, plan)
	res, err := c.ScreenLiGen(in)
	if err != nil {
		t.Fatalf("campaign did not survive device loss: %v", err)
	}
	if res.Failovers != 1 {
		t.Errorf("Failovers = %d, want 1", res.Failovers)
	}
	if res.SurvivingDevices != 3 {
		t.Errorf("SurvivingDevices = %d, want 3", res.SurvivingDevices)
	}
	if res.WastedEnergyJ <= 0 || res.WastedTimeS <= 0 {
		t.Errorf("aborted shard should report wasted work, got %+v", res)
	}
	// The survivors absorb the requeued shards: slower than fault-free, but
	// not catastrophically (4096 ligands over 3 devices instead of 4).
	if res.TimeS <= base.TimeS {
		t.Errorf("degraded run time %.4fs should exceed fault-free %.4fs", res.TimeS, base.TimeS)
	}
	if res.TimeS > 3*base.TimeS {
		t.Errorf("degraded run time %.4fs implausibly worse than fault-free %.4fs", res.TimeS, base.TimeS)
	}
	// The dead device keeps its partial busy time.
	if res.PerDevice[2] <= 0 {
		t.Errorf("dead device busy time = %v, want > 0", res.PerDevice[2])
	}
}

func TestCronosSurvivesPermanentFailureViaCheckpointRestart(t *testing.T) {
	const nx, ny, nz, steps = 64, 64, 32, 24
	base, err := newCluster(t, 4).RunCronos(nx, ny, nz, steps)
	if err != nil {
		t.Fatal(err)
	}
	// Each 1-step slab run is 4 submissions; device 1 dies during step 11
	// (after 10 clean steps = 40 submissions), between checkpoints at step 8
	// and 16 with the default interval.
	plan := faults.Plan{
		Seed:     5,
		Failures: []faults.DeviceFailure{{Device: 1, AfterSubmits: 41}},
	}
	c := resilientCluster(t, 4, plan)
	res, err := c.RunCronos(nx, ny, nz, steps)
	if err != nil {
		t.Fatalf("simulation did not survive device loss: %v", err)
	}
	if res.Failovers != 1 || res.SurvivingDevices != 3 {
		t.Errorf("Failovers/Surviving = %d/%d, want 1/3", res.Failovers, res.SurvivingDevices)
	}
	// Steps 9 and 10 were rolled back and re-executed: wasted work plus
	// checkpoint overhead must show up.
	if res.WastedEnergyJ <= 0 || res.WastedTimeS <= 0 {
		t.Errorf("rollback should report wasted work, got %+v", res)
	}
	if res.CheckpointTimeS <= 0 {
		t.Errorf("checkpointing run reported zero CheckpointTimeS")
	}
	if res.TimeS <= base.TimeS {
		t.Errorf("degraded run time %.4fs should exceed fault-free %.4fs", res.TimeS, base.TimeS)
	}
}

func TestTransientRetriesRecover(t *testing.T) {
	in := ligen.Input{Ligands: 2048, Atoms: 63, Fragments: 8}
	plan := faults.Plan{Seed: 11, TransientProb: 0.15}
	c := newCluster(t, 2)
	if err := c.SetFaultPlan(plan, ResilienceConfig{MaxRetries: 8}); err != nil {
		t.Fatal(err)
	}
	res, err := c.ScreenLiGen(in)
	if err != nil {
		t.Fatalf("transient faults at p=0.05 should be absorbed by retries: %v", err)
	}
	if res.Retries == 0 {
		t.Error("expected at least one retry at TransientProb=0.15")
	}
	if res.BackoffTimeS <= 0 {
		t.Error("retries must accumulate backoff time")
	}
	if res.Failovers != 0 || res.SurvivingDevices != 2 {
		t.Errorf("transient-only plan lost devices: %+v", res)
	}
}

func TestTransientBudgetExhaustionFailsJob(t *testing.T) {
	in := ligen.Input{Ligands: 2048, Atoms: 63, Fragments: 8}
	plan := faults.Plan{Seed: 11, TransientProb: 1.0} // every submission faults
	c := resilientCluster(t, 2, plan)
	if _, err := c.ScreenLiGen(in); err == nil {
		t.Fatal("TransientProb=1 must exhaust the retry budget and fail the job")
	}
}

func TestAllDevicesDeadFailsJob(t *testing.T) {
	plan := faults.Plan{
		Seed: 3,
		Failures: []faults.DeviceFailure{
			{Device: 0, AfterSubmits: 0},
			{Device: 1, AfterSubmits: 0},
		},
	}
	c := resilientCluster(t, 2, plan)
	if _, err := c.ScreenLiGen(ligen.Input{Ligands: 64, Atoms: 31, Fragments: 4}); err == nil {
		t.Fatal("expected error once every device has failed")
	}
	c2 := resilientCluster(t, 2, plan)
	if _, err := c2.RunCronos(32, 32, 8, 4); err == nil {
		t.Fatal("expected Cronos error once every device has failed")
	}
}

func TestTotalCapacityLossIsTypedError(t *testing.T) {
	// Both application paths must surface total capacity loss as
	// ErrNoSurvivingDevices so callers (the scheduler's failover re-planning
	// above all) can branch on errors.Is instead of string matching — whether
	// the devices die mid-campaign or were already dead at submission.
	plan := faults.Plan{
		Seed: 3,
		Failures: []faults.DeviceFailure{
			{Device: 0, AfterSubmits: 2},
			{Device: 1, AfterSubmits: 2},
		},
	}
	c := resilientCluster(t, 2, plan)
	_, err := c.ScreenLiGen(ligen.Input{Ligands: 4096, Atoms: 63, Fragments: 8})
	if !errors.Is(err, ErrNoSurvivingDevices) {
		t.Errorf("LiGen mid-campaign loss: got %v, want ErrNoSurvivingDevices", err)
	}
	// The cluster is now fully dead: the next submission must fail fast with
	// the same sentinel.
	if _, err := c.ScreenLiGen(ligen.Input{Ligands: 64, Atoms: 31, Fragments: 4}); !errors.Is(err, ErrNoSurvivingDevices) {
		t.Errorf("LiGen on dead cluster: got %v, want ErrNoSurvivingDevices", err)
	}
	c2 := resilientCluster(t, 2, plan)
	_, err = c2.RunCronos(32, 32, 8, 4)
	if !errors.Is(err, ErrNoSurvivingDevices) {
		t.Errorf("Cronos mid-run loss: got %v, want ErrNoSurvivingDevices", err)
	}
	if _, err := c2.RunCronos(32, 32, 8, 4); !errors.Is(err, ErrNoSurvivingDevices) {
		t.Errorf("Cronos on dead cluster: got %v, want ErrNoSurvivingDevices", err)
	}
}

func TestResilientRunsAreSeedDeterministic(t *testing.T) {
	in := ligen.Input{Ligands: 2048, Atoms: 63, Fragments: 8}
	plan := faults.Plan{
		Seed:          21,
		TransientProb: 0.03,
		Failures:      []faults.DeviceFailure{{Device: 0, AfterSubmits: 7}},
	}
	run := func(p faults.Plan) Result {
		res, err := resilientCluster(t, 3, p).ScreenLiGen(in)
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	a, b := run(plan), run(plan)
	if a.TimeS != b.TimeS || a.EnergyJ != b.EnergyJ || a.Retries != b.Retries ||
		a.WastedEnergyJ != b.WastedEnergyJ || a.BackoffTimeS != b.BackoffTimeS {
		t.Errorf("identical seeds diverged:\n%+v\n%+v", a, b)
	}
	plan.Seed = 22
	c := run(plan)
	if a.TimeS == c.TimeS && a.EnergyJ == c.EnergyJ && a.Retries == c.Retries {
		t.Error("different fault seeds produced identical results")
	}
}

func TestSetFaultPlanValidates(t *testing.T) {
	c := newCluster(t, 2)
	bad := faults.Plan{Seed: 1, Failures: []faults.DeviceFailure{{Device: 5}}}
	if err := c.SetFaultPlan(bad, ResilienceConfig{}); err == nil {
		t.Error("expected error for out-of-range device index")
	}
	if c.Resilient() {
		t.Error("rejected plan must not attach")
	}
}

func TestSetCoreFreqRollsBackOnRejection(t *testing.T) {
	// Device 2 rejects its first clock set; devices 0 and 1 were already
	// pinned and must be rolled back to their previous clock.
	plan := faults.Plan{
		Seed:         1,
		ClockRejects: []faults.ClockReject{{Device: 2, OnSet: 2}},
	}
	c := resilientCluster(t, 3, plan)
	freqs := gpusim.V100Spec().CoreFreqsMHz
	first, second := freqs[len(freqs)-1], freqs[len(freqs)-2]
	if err := c.SetCoreFreqMHz(first); err != nil {
		t.Fatalf("first cluster-wide set should succeed: %v", err)
	}
	if err := c.SetCoreFreqMHz(second); err == nil {
		t.Fatal("expected rejection from device 2 on its second clock set")
	}
	for i, q := range c.Queues() {
		if got := q.PinnedFreqMHz(); got != first {
			t.Errorf("device %d pinned at %d MHz after rollback, want %d", i, got, first)
		}
	}
}

func TestSetCoreFreqRollbackRestoresUnpinned(t *testing.T) {
	// Rejection on the very first cluster-wide set: prior state was
	// "unpinned", so rollback must reset, not pin.
	plan := faults.Plan{
		Seed:         1,
		ClockRejects: []faults.ClockReject{{Device: 1, OnSet: 1}},
	}
	c := resilientCluster(t, 2, plan)
	freqs := gpusim.V100Spec().CoreFreqsMHz
	if err := c.SetCoreFreqMHz(freqs[0]); err == nil {
		t.Fatal("expected rejection from device 1 on its first clock set")
	}
	for i, q := range c.Queues() {
		if got := q.PinnedFreqMHz(); got != 0 {
			t.Errorf("device %d still pinned at %d MHz, want unpinned", i, got)
		}
	}
}
