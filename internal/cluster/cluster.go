// Package cluster models multi-GPU distributed execution in the role of the
// Celerity runtime the paper builds on (Thoman et al., Euro-Par'19): Cronos'
// solver was ported to Celerity to run on distributed-memory clusters, and
// LiGen's virtual-screening campaigns ran on thousands of accelerator nodes
// (EXSCALATE on HPC5 and MARCONI100).
//
// The model is deliberately simple and standard: work is partitioned across
// devices; compute time per device comes from the single-GPU simulator;
// distributed Cronos adds per-step halo-exchange communication over an
// interconnect with bandwidth and latency; the job's wall time is the
// slowest device's (bulk-synchronous steps) and the job's energy is the sum
// over devices. This reproduces the canonical strong-scaling behaviour:
// embarrassingly parallel screening scales almost perfectly, stencil codes
// lose efficiency as halos start to dominate shrinking slabs.
package cluster

import (
	"errors"
	"fmt"
	"strconv"

	"dsenergy/internal/cronos"
	"dsenergy/internal/faults"
	"dsenergy/internal/gpusim"
	"dsenergy/internal/kernels"
	"dsenergy/internal/ligen"
	"dsenergy/internal/obs"
	"dsenergy/internal/synergy"
)

// Interconnect describes the network between devices.
type Interconnect struct {
	// BandwidthGBs is the per-link bandwidth (e.g. ~25 GB/s for the
	// NVLink/InfiniBand class fabrics of the paper's machines).
	BandwidthGBs float64
	// LatencyS is the per-message latency.
	LatencyS float64
}

// DefaultInterconnect returns an InfiniBand-class fabric.
func DefaultInterconnect() Interconnect {
	return Interconnect{BandwidthGBs: 25, LatencyS: 3e-6}
}

// Cluster is a set of identical simulated devices joined by an interconnect.
type Cluster struct {
	queues []*synergy.Queue
	net    Interconnect
	// inj is non-nil when a non-empty fault plan is attached; it switches
	// RunCronos/ScreenLiGen onto the resilient execution path.
	inj  *faults.Injector
	rc   ResilienceConfig
	dead []bool
	// obsv records cluster-level spans (device runs, steps, rounds, failover
	// and checkpoint events) on simulated time; om holds the pre-resolved
	// counter handles. Both are no-ops when unset. Spans are only appended
	// from the barrier-aggregation sections, which run in device-index order,
	// so the trace is schedule-independent.
	obsv *obs.Observer
	om   clusterObsHandles
}

// clusterObsHandles are the cluster's pre-resolved metric handles; the zero
// value disables every increment.
type clusterObsHandles struct {
	retries     *obs.Counter
	failovers   *obs.Counter
	requeued    *obs.Counter
	checkpoints *obs.Counter
}

// SetObserver attaches an observability sink to the cluster and every
// device queue in it (nil detaches). Call before runs start.
func (c *Cluster) SetObserver(o *obs.Observer) {
	c.obsv = o
	if o == nil {
		c.om = clusterObsHandles{}
	} else {
		m := o.Metrics()
		c.om = clusterObsHandles{
			retries:     m.Counter("cluster_retries_total"),
			failovers:   m.Counter("cluster_failovers_total"),
			requeued:    m.Counter("cluster_requeued_shards_total"),
			checkpoints: m.Counter("cluster_checkpoints_total"),
		}
	}
	for _, q := range c.queues {
		q.SetObserver(o)
	}
}

// New builds an n-device homogeneous cluster of the given spec. Devices are
// renamed "<name> #i" so every node stays individually addressable (the
// platform rejects duplicate device names).
func New(seed uint64, spec gpusim.Spec, n int, net Interconnect) (*Cluster, error) {
	if n < 1 {
		return nil, fmt.Errorf("cluster: need at least 1 device, got %d", n)
	}
	if net.BandwidthGBs <= 0 || net.LatencyS < 0 {
		return nil, fmt.Errorf("cluster: invalid interconnect %+v", net)
	}
	specs := make([]gpusim.Spec, n)
	for i := range specs {
		specs[i] = spec
		specs[i].Name = fmt.Sprintf("%s #%d", spec.Name, i)
	}
	p, err := synergy.NewPlatform(seed, specs...)
	if err != nil {
		return nil, err
	}
	return &Cluster{queues: p.Queues(), net: net, dead: make([]bool, n)}, nil
}

// ErrNoSurvivingDevices reports that graceful degradation exhausted the
// platform: every device has permanently failed. Callers branch on it with
// errors.Is to distinguish "the cluster is gone" from ordinary run errors.
var ErrNoSurvivingDevices = errors.New("no surviving devices")

// Size returns the device count.
func (c *Cluster) Size() int { return len(c.queues) }

// MarkDead records a permanent loss of device i observed by an external
// driver (e.g. the scheduler watching a fault surface directly), excluding
// it from subsequent resilient runs. Out-of-range indices are ignored.
func (c *Cluster) MarkDead(i int) {
	if i >= 0 && i < len(c.dead) {
		c.dead[i] = true
	}
}

// Dead reports whether device i has been marked permanently failed.
func (c *Cluster) Dead(i int) bool { return i >= 0 && i < len(c.dead) && c.dead[i] }

// Queues exposes the device queues (e.g. for frequency control).
func (c *Cluster) Queues() []*synergy.Queue { return c.queues }

// SetCoreFreqMHz pins every device to the same clock, all-or-nothing: if any
// device rejects the set, devices already pinned are rolled back to their
// previous clock and the error is returned. Without the rollback a partial
// failure would leave the cluster at mixed clocks, silently corrupting every
// bulk-synchronous timing downstream.
func (c *Cluster) SetCoreFreqMHz(mhz int) error {
	prev := make([]int, len(c.queues))
	for i, q := range c.queues {
		prev[i] = q.PinnedFreqMHz()
	}
	for i, q := range c.queues {
		err := q.SetCoreFreqMHz(mhz)
		if err == nil {
			continue
		}
		for j := i - 1; j >= 0; j-- {
			if prev[j] == 0 {
				c.queues[j].ResetFrequency()
			} else if rbErr := c.queues[j].SetCoreFreqMHz(prev[j]); rbErr != nil {
				// Best effort: a device that cannot take its old clock back
				// (e.g. it just died) is reset to the vendor baseline.
				c.queues[j].ResetFrequency()
			}
		}
		return fmt.Errorf("cluster: device %d rejected %d MHz (cluster rolled back): %w", i, mhz, err)
	}
	return nil
}

// Result is a distributed run's outcome. The resilience fields make the cost
// of surviving faults a first-class, measurable time/energy trade-off: a
// fault-free run reports zeros there, a faulty run reports how much of its
// bill was retries, failovers, checkpoints and re-executed work.
type Result struct {
	TimeS     float64   // wall time (slowest device, including communication)
	EnergyJ   float64   // total energy across devices (wasted energy included)
	CommTimeS float64   // communication time on the critical path
	PerDevice []float64 // per-device busy time (dead devices keep their partial total)

	// Resilience accounting (all zero on fault-free runs).
	Retries          int     // transient-fault retries performed
	Failovers        int     // permanent device losses survived
	SurvivingDevices int     // devices alive at the end of the run
	WastedTimeS      float64 // device time burned on work that was aborted or re-executed
	WastedEnergyJ    float64 // energy burned on that wasted work
	BackoffTimeS     float64 // cumulative retry backoff across devices
	CheckpointTimeS  float64 // checkpoint write/restore overhead on the critical path
}

// Efficiency returns the strong-scaling efficiency of this run against a
// single-device baseline time: t1 / (n · tn).
func (r Result) Efficiency(singleDeviceTimeS float64, n int) float64 {
	if r.TimeS <= 0 || n < 1 {
		return 0
	}
	return singleDeviceTimeS / (float64(n) * r.TimeS)
}

// RunCronos executes a Cronos simulation decomposed into z-slabs across the
// cluster: each device advances its slab, exchanging two-cell halos with its
// neighbours every substep, with a bulk-synchronous barrier per substep (the
// Celerity execution model for this stencil).
func (c *Cluster) RunCronos(nx, ny, nz, steps int) (Result, error) {
	n := len(c.queues)
	if nz < n {
		return Result{}, fmt.Errorf("cluster: cannot split %d z-planes across %d devices", nz, n)
	}
	if c.inj != nil {
		return c.runCronosResilient(nx, ny, nz, steps)
	}

	// Halo exchange per substep: Ghost planes of all variables, both
	// directions (interior devices have two neighbours).
	haloBytes := float64(cronos.Ghost) * float64(nx) * float64(ny) * cronos.NVars * 8
	msgsPerSubstep := 2.0
	commPerSubstep := msgsPerSubstep * (haloBytes/(c.net.BandwidthGBs*1e9) + c.net.LatencyS)
	substeps := float64(3 * steps)

	var res Result
	res.PerDevice = make([]float64, n)
	res.SurvivingDevices = n
	var slowest float64
	for i, q := range c.queues {
		// Slab sizes differ by at most one plane.
		slab := nz / n
		if i < nz%n {
			slab++
		}
		w, err := cronos.NewWorkload(nx, ny, slab, steps)
		if err != nil {
			return Result{}, err
		}
		t, e, err := w.RunOn(q)
		if err != nil {
			return Result{}, err
		}
		res.PerDevice[i] = t
		res.EnergyJ += e
		if t > slowest {
			slowest = t
		}
		c.obsv.Trace().Add("cluster.cronos.device", t,
			obs.L("device", q.Spec().Name))
	}
	if n > 1 {
		res.CommTimeS = substeps * commPerSubstep
	}
	res.TimeS = slowest + res.CommTimeS
	// Devices idle-waiting at the barrier still burn idle power for the
	// communication time.
	idleW := c.queues[0].Spec().IdleW
	res.EnergyJ += res.CommTimeS * idleW * float64(n)
	c.obsv.Trace().Add("cluster.cronos", res.TimeS,
		obs.L("devices", strconv.Itoa(n)), obs.L("steps", strconv.Itoa(steps)))
	return res, nil
}

// ScreenLiGen executes a virtual-screening campaign sharded across the
// cluster. Screening is embarrassingly parallel (the paper calls it out
// explicitly), so there is no communication beyond a final negligible
// gather.
func (c *Cluster) ScreenLiGen(in ligen.Input) (Result, error) {
	n := len(c.queues)
	if in.Ligands < n {
		return Result{}, fmt.Errorf("cluster: cannot shard %d ligands across %d devices", in.Ligands, n)
	}
	if c.inj != nil {
		return c.screenLiGenResilient(in)
	}
	var res Result
	res.PerDevice = make([]float64, n)
	res.SurvivingDevices = n
	var slowest float64
	for i, q := range c.queues {
		shard := in
		shard.Ligands = in.Ligands / n
		if i < in.Ligands%n {
			shard.Ligands++
		}
		w, err := ligen.NewWorkload(shard)
		if err != nil {
			return Result{}, err
		}
		t, e, err := w.RunOn(q)
		if err != nil {
			return Result{}, err
		}
		res.PerDevice[i] = t
		res.EnergyJ += e
		if t > slowest {
			slowest = t
		}
		c.obsv.Trace().Add("cluster.ligen.device", t,
			obs.L("device", q.Spec().Name))
	}
	res.TimeS = slowest
	c.obsv.Trace().Add("cluster.ligen", res.TimeS,
		obs.L("devices", strconv.Itoa(n)), obs.L("ligands", strconv.Itoa(in.Ligands)))
	return res, nil
}

// haloProfile is exposed for white-box tests: the raw communication volume
// of one Cronos substep on this cluster for an nx×ny plane.
func (c *Cluster) haloProfile(nx, ny int) kernels.InstructionMix {
	words := float64(cronos.Ghost) * float64(nx) * float64(ny) * cronos.NVars * 2
	return kernels.InstructionMix{GlobalAcc: words}
}
