package cluster

import (
	"math"
	"testing"
	"testing/quick"

	"dsenergy/internal/gpusim"
	"dsenergy/internal/ligen"
)

func newCluster(t *testing.T, n int) *Cluster {
	t.Helper()
	c, err := New(7, gpusim.V100Spec(), n, DefaultInterconnect())
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func TestNewValidation(t *testing.T) {
	if _, err := New(1, gpusim.V100Spec(), 0, DefaultInterconnect()); err == nil {
		t.Error("expected error for zero devices")
	}
	if _, err := New(1, gpusim.V100Spec(), 2, Interconnect{}); err == nil {
		t.Error("expected error for zero-bandwidth interconnect")
	}
}

func TestLiGenShardingScalesNearPerfectly(t *testing.T) {
	in := ligen.Input{Ligands: 8192, Atoms: 63, Fragments: 8}
	r1, err := newCluster(t, 1).ScreenLiGen(in)
	if err != nil {
		t.Fatal(err)
	}
	r4, err := newCluster(t, 4).ScreenLiGen(in)
	if err != nil {
		t.Fatal(err)
	}
	eff := r4.Efficiency(r1.TimeS, 4)
	if eff < 0.85 {
		t.Errorf("embarrassingly parallel screening efficiency %.2f, want >= 0.85", eff)
	}
	// Sharding does not create or destroy work: total energy is similar.
	if rel := math.Abs(r4.EnergyJ-r1.EnergyJ) / r1.EnergyJ; rel > 0.25 {
		t.Errorf("sharded energy diverges %.0f%% from single device", rel*100)
	}
}

func TestLiGenShardCounts(t *testing.T) {
	// 10 ligands on 3 devices -> shards 4, 3, 3.
	c := newCluster(t, 3)
	if _, err := c.ScreenLiGen(ligen.Input{Ligands: 10, Atoms: 31, Fragments: 4}); err != nil {
		t.Fatal(err)
	}
	if _, err := c.ScreenLiGen(ligen.Input{Ligands: 2, Atoms: 31, Fragments: 4}); err == nil {
		t.Error("expected error for fewer ligands than devices")
	}
}

func TestCronosScalingLosesEfficiencyOnSmallGrids(t *testing.T) {
	// Strong scaling: the large grid amortizes halo exchange much better
	// than the small one — the canonical stencil-scaling result.
	small := [3]int{40, 16, 16}
	large := [3]int{160, 64, 64}
	steps := 8

	eff := func(g [3]int, n int) float64 {
		t1, err := newCluster(t, 1).RunCronos(g[0], g[1], g[2], steps)
		if err != nil {
			t.Fatal(err)
		}
		tn, err := newCluster(t, n).RunCronos(g[0], g[1], g[2], steps)
		if err != nil {
			t.Fatal(err)
		}
		return tn.Efficiency(t1.TimeS, n)
	}
	effSmall := eff(small, 8)
	effLarge := eff(large, 8)
	t.Logf("8-device strong-scaling efficiency: small grid %.2f, large grid %.2f", effSmall, effLarge)
	if effLarge <= effSmall {
		t.Errorf("large grid should scale better: %.2f vs %.2f", effLarge, effSmall)
	}
	if effLarge < 0.5 {
		t.Errorf("large grid efficiency %.2f implausibly low", effLarge)
	}
}

func TestCronosCommOnCriticalPath(t *testing.T) {
	c := newCluster(t, 4)
	r, err := c.RunCronos(80, 32, 32, 4)
	if err != nil {
		t.Fatal(err)
	}
	if r.CommTimeS <= 0 {
		t.Error("multi-device stencil run reports no communication time")
	}
	var slowest float64
	for _, td := range r.PerDevice {
		if td > slowest {
			slowest = td
		}
	}
	if got := r.TimeS; math.Abs(got-(slowest+r.CommTimeS)) > 1e-12 {
		t.Errorf("wall time %g != slowest device %g + comm %g", got, slowest, r.CommTimeS)
	}
	// Single device: no communication.
	r1, err := newCluster(t, 1).RunCronos(80, 32, 32, 4)
	if err != nil {
		t.Fatal(err)
	}
	if r1.CommTimeS != 0 {
		t.Errorf("single-device run has comm time %g", r1.CommTimeS)
	}
}

func TestCronosRejectsOverDecomposition(t *testing.T) {
	c := newCluster(t, 8)
	if _, err := c.RunCronos(10, 4, 4, 2); err == nil {
		t.Error("expected error splitting 4 z-planes across 8 devices")
	}
}

func TestClusterFrequencyControl(t *testing.T) {
	c := newCluster(t, 3)
	spec := c.Queues()[0].Spec()
	low := spec.NearestFreqMHz(900)
	if err := c.SetCoreFreqMHz(low); err != nil {
		t.Fatal(err)
	}
	rLow, err := c.RunCronos(160, 64, 64, 2)
	if err != nil {
		t.Fatal(err)
	}
	if err := c.SetCoreFreqMHz(spec.BaselineFreqMHz()); err != nil {
		t.Fatal(err)
	}
	rBase, err := c.RunCronos(160, 64, 64, 2)
	if err != nil {
		t.Fatal(err)
	}
	// Memory-bound stencil: down-clocking the whole cluster saves energy.
	if rLow.EnergyJ >= rBase.EnergyJ {
		t.Errorf("cluster down-clock saved no energy: %g vs %g", rLow.EnergyJ, rBase.EnergyJ)
	}
	if err := c.SetCoreFreqMHz(1); err == nil {
		t.Error("expected error for invalid cluster frequency")
	}
}

func TestHaloProfileVolume(t *testing.T) {
	c := newCluster(t, 2)
	mix := c.haloProfile(160, 64)
	// Ghost(2) x 160 x 64 x 8 vars x 2 words.
	want := 2.0 * 160 * 64 * 8 * 2
	if mix.GlobalAcc != want {
		t.Errorf("halo words %g, want %g", mix.GlobalAcc, want)
	}
}

func TestShardSizesPartitionProperty(t *testing.T) {
	// Property: ligand shards across n devices differ by at most one and
	// sum to the campaign size (checked indirectly through total energy
	// being device-count independent in other tests; here structurally).
	f := func(lig uint16, n uint8) bool {
		total := int(lig)%20000 + 1
		devices := int(n)%12 + 1
		if total < devices {
			return true
		}
		sum := 0
		min, max := 1<<30, 0
		for i := 0; i < devices; i++ {
			shard := total / devices
			if i < total%devices {
				shard++
			}
			sum += shard
			if shard < min {
				min = shard
			}
			if shard > max {
				max = shard
			}
		}
		return sum == total && max-min <= 1
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}
