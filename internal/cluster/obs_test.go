package cluster

import (
	"bytes"
	"reflect"
	"strings"
	"testing"

	"dsenergy/internal/faults"
	"dsenergy/internal/ligen"
	"dsenergy/internal/obs"
)

func TestObserverDoesNotPerturbClusterRuns(t *testing.T) {
	in := ligen.Input{Ligands: 4096, Atoms: 63, Fragments: 8}
	plain, err := newCluster(t, 4).ScreenLiGen(in)
	if err != nil {
		t.Fatal(err)
	}
	observed := newCluster(t, 4)
	observed.SetObserver(obs.NewObserver())
	got, err := observed.ScreenLiGen(in)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(plain, got) {
		t.Errorf("observer changed ScreenLiGen result:\n%+v\nvs\n%+v", plain, got)
	}

	cp, err := newCluster(t, 4).RunCronos(40, 16, 16, 3)
	if err != nil {
		t.Fatal(err)
	}
	oc := newCluster(t, 4)
	oc.SetObserver(obs.NewObserver())
	cg, err := oc.RunCronos(40, 16, 16, 3)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(cp, cg) {
		t.Errorf("observer changed RunCronos result:\n%+v\nvs\n%+v", cp, cg)
	}
}

func TestResilientRunRecordsFailoverAndRequeueMetrics(t *testing.T) {
	in := ligen.Input{Ligands: 4096, Atoms: 63, Fragments: 8}
	plan := faults.Plan{
		Seed:     5,
		Failures: []faults.DeviceFailure{{Device: 2, AfterSubmits: 4}},
	}
	c := resilientCluster(t, 4, plan)
	o := obs.NewObserver()
	c.SetObserver(o)
	res, err := c.ScreenLiGen(in)
	if err != nil {
		t.Fatal(err)
	}
	m := o.Metrics()
	if got := m.Counter("cluster_failovers_total").Value(); got != uint64(res.Failovers) {
		t.Errorf("failover counter = %d, Result says %d", got, res.Failovers)
	}
	if m.Counter("cluster_requeued_shards_total").Value() == 0 {
		t.Error("requeue counter not incremented despite a device loss")
	}
	var tr bytes.Buffer
	if err := o.WriteTraceText(&tr); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(tr.String(), "cluster.failover") {
		t.Errorf("trace missing failover event:\n%s", tr.String())
	}
	if !strings.Contains(tr.String(), "cluster.ligen.round") {
		t.Errorf("trace missing round spans:\n%s", tr.String())
	}
}

func TestResilientCronosRecordsCheckpointsAndRetries(t *testing.T) {
	plan := faults.Plan{Seed: 11, TransientProb: 0.15}
	c := newCluster(t, 4)
	if err := c.SetFaultPlan(plan, ResilienceConfig{MaxRetries: 12}); err != nil {
		t.Fatal(err)
	}
	o := obs.NewObserver()
	c.SetObserver(o)
	res, err := c.RunCronos(40, 16, 16, 10)
	if err != nil {
		t.Fatal(err)
	}
	m := o.Metrics()
	if got := m.Counter("cluster_retries_total").Value(); got != uint64(res.Retries) {
		t.Errorf("retry counter = %d, Result says %d", got, res.Retries)
	}
	if m.Counter("cluster_checkpoints_total").Value() == 0 {
		t.Error("checkpoint counter not incremented over 10 steps (interval 8)")
	}
	var tr bytes.Buffer
	if err := o.WriteTraceText(&tr); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(tr.String(), "cluster.cronos.step") {
		t.Errorf("trace missing step spans:\n%s", tr.String())
	}
	if !strings.Contains(tr.String(), "cluster.checkpoint") {
		t.Errorf("trace missing checkpoint span:\n%s", tr.String())
	}
}

func TestResilientTraceIsSeedDeterministic(t *testing.T) {
	// Same seed, same plan, two fresh clusters: every export byte agrees even
	// though per-device work runs on one goroutine per device.
	run := func() (string, string) {
		plan := faults.Plan{
			Seed:          5,
			TransientProb: 0.1,
			Failures:      []faults.DeviceFailure{{Device: 2, AfterSubmits: 4}},
		}
		c := resilientCluster(t, 4, plan)
		o := obs.NewObserver()
		c.SetObserver(o)
		if _, err := c.ScreenLiGen(ligen.Input{Ligands: 4096, Atoms: 63, Fragments: 8}); err != nil {
			t.Fatal(err)
		}
		var m, tr bytes.Buffer
		if err := o.WriteMetricsText(&m); err != nil {
			t.Fatal(err)
		}
		if err := o.WriteTraceText(&tr); err != nil {
			t.Fatal(err)
		}
		return m.String(), tr.String()
	}
	m1, t1 := run()
	m2, t2 := run()
	if m1 != m2 {
		t.Errorf("metric exports differ across identical runs:\n%s\nvs\n%s", m1, m2)
	}
	if t1 != t2 {
		t.Errorf("trace exports differ across identical runs:\n%s\nvs\n%s", t1, t2)
	}
}
