// Package pareto computes Pareto-optimal frequency configurations in the
// speedup / normalized-energy plane used throughout the paper: a point
// dominates another when it has at least the speedup and at most the
// normalized energy, with one inequality strict. The Pareto front is the
// non-dominated subset; its members are the "optimal" frequencies the models
// are asked to predict (§2.1, §5.2.2).
package pareto

import (
	"math"
	"sort"
)

// Point is one frequency configuration's outcome: speedup and normalized
// energy relative to the device baseline.
type Point struct {
	FreqMHz    int
	Speedup    float64 // higher is better
	NormEnergy float64 // lower is better
}

// Dominates reports whether p is at least as good as q in both objectives
// and strictly better in at least one.
func (p Point) Dominates(q Point) bool {
	if p.Speedup < q.Speedup || p.NormEnergy > q.NormEnergy {
		return false
	}
	return p.Speedup > q.Speedup || p.NormEnergy < q.NormEnergy
}

// Front returns the Pareto-optimal subset of points, sorted by descending
// speedup. Duplicate outcomes are reduced to a single representative (the
// lowest frequency, being the cheaper configuration).
func Front(points []Point) []Point {
	if len(points) == 0 {
		return nil
	}
	sorted := append([]Point(nil), points...)
	// Sort by speedup descending; ties by energy ascending, then frequency
	// ascending, so the scan below keeps the preferred representative.
	sort.Slice(sorted, func(i, j int) bool {
		// Exact stored-value tie-breaks: identical predictions must compare
		// equal so the comparator stays a strict weak ordering.
		//dsalint:ignore floateq
		if sorted[i].Speedup != sorted[j].Speedup {
			return sorted[i].Speedup > sorted[j].Speedup
		}
		//dsalint:ignore floateq
		if sorted[i].NormEnergy != sorted[j].NormEnergy {
			return sorted[i].NormEnergy < sorted[j].NormEnergy
		}
		return sorted[i].FreqMHz < sorted[j].FreqMHz
	})
	var front []Point
	bestEnergy := math.Inf(1)
	lastSpeedup := math.Inf(1)
	for _, p := range sorted {
		// Strictly lower energy than everything faster -> non-dominated.
		// lastSpeedup is copied verbatim from a scanned point, so exact
		// identity is the correct same-speedup-group test.
		//dsalint:ignore floateq
		if p.NormEnergy < bestEnergy && p.Speedup != lastSpeedup {
			front = append(front, p)
			bestEnergy = p.NormEnergy
			lastSpeedup = p.Speedup
		}
	}
	return front
}

// Frequencies extracts the frequency set of the points.
func Frequencies(points []Point) []int {
	out := make([]int, len(points))
	for i, p := range points {
		out[i] = p.FreqMHz
	}
	return out
}

// ExactMatches counts how many predicted frequencies appear in the true
// Pareto-optimal frequency set — the paper's exact-match accuracy metric for
// predicted Pareto sets (§5.2.2).
func ExactMatches(predicted, truth []int) int {
	set := make(map[int]bool, len(truth))
	for _, f := range truth {
		set[f] = true
	}
	n := 0
	for _, f := range predicted {
		if set[f] {
			n++
		}
	}
	return n
}

// MeanFrontDistance measures how close a set of achieved points lies to a
// reference front: for each point, the Euclidean distance (in the
// speedup/normalized-energy plane) to the nearest front member, averaged.
// Lower is a better Pareto approximation.
func MeanFrontDistance(achieved, front []Point) float64 {
	if len(achieved) == 0 || len(front) == 0 {
		return math.NaN()
	}
	var total float64
	for _, a := range achieved {
		best := math.Inf(1)
		for _, f := range front {
			ds := a.Speedup - f.Speedup
			de := a.NormEnergy - f.NormEnergy
			if d := math.Sqrt(ds*ds + de*de); d < best {
				best = d
			}
		}
		total += best
	}
	return total / float64(len(achieved))
}

// Hypervolume returns the area dominated by the front relative to a
// reference point (refSpeedup, refEnergy) with refSpeedup below and
// refEnergy above every front point — a scalar quality indicator for
// comparing predicted fronts.
func Hypervolume(front []Point, refSpeedup, refEnergy float64) float64 {
	f := Front(front) // ensure sorted, non-dominated
	var area float64
	prevSpeedup := refSpeedup
	// Iterate from lowest speedup (end of the descending-sorted front).
	for i := len(f) - 1; i >= 0; i-- {
		p := f[i]
		w := p.Speedup - prevSpeedup
		h := refEnergy - p.NormEnergy
		if w > 0 && h > 0 {
			area += w * h
		}
		if p.Speedup > prevSpeedup {
			prevSpeedup = p.Speedup
		}
	}
	return area
}
