package pareto

import (
	"math"
	"testing"
	"testing/quick"

	"dsenergy/internal/xrand"
)

func TestDominates(t *testing.T) {
	a := Point{Speedup: 1.2, NormEnergy: 0.9}
	b := Point{Speedup: 1.0, NormEnergy: 1.0}
	if !a.Dominates(b) {
		t.Error("a should dominate b")
	}
	if b.Dominates(a) {
		t.Error("b should not dominate a")
	}
	if a.Dominates(a) {
		t.Error("a point must not dominate itself")
	}
	c := Point{Speedup: 1.3, NormEnergy: 1.2} // faster but hungrier
	if a.Dominates(c) || c.Dominates(a) {
		t.Error("trade-off points must be mutually non-dominated")
	}
}

func TestFrontSimple(t *testing.T) {
	pts := []Point{
		{FreqMHz: 1000, Speedup: 1.0, NormEnergy: 1.0},
		{FreqMHz: 1200, Speedup: 1.1, NormEnergy: 1.2},
		{FreqMHz: 800, Speedup: 0.9, NormEnergy: 0.8},
		{FreqMHz: 900, Speedup: 0.95, NormEnergy: 1.1}, // dominated by 1000
	}
	f := Front(pts)
	if len(f) != 3 {
		t.Fatalf("front size %d, want 3: %+v", len(f), f)
	}
	// Sorted by descending speedup.
	for i := 1; i < len(f); i++ {
		if f[i].Speedup > f[i-1].Speedup {
			t.Error("front not sorted by descending speedup")
		}
		if f[i].NormEnergy >= f[i-1].NormEnergy {
			t.Error("front energies not strictly increasing with speedup")
		}
	}
	for _, p := range f {
		if p.FreqMHz == 900 {
			t.Error("dominated point on the front")
		}
	}
}

func TestFrontDuplicateOutcomeRepresentative(t *testing.T) {
	// When several frequencies land on the exact same (speedup, energy)
	// outcome, the front keeps one representative: the lowest frequency,
	// being the cheaper configuration.
	cases := []struct {
		name      string
		pts       []Point
		wantFreqs []int
	}{
		{
			name: "exact duplicate keeps lowest frequency",
			pts: []Point{
				{FreqMHz: 1200, Speedup: 1.0, NormEnergy: 1.0},
				{FreqMHz: 900, Speedup: 1.0, NormEnergy: 1.0},
				{FreqMHz: 1050, Speedup: 1.0, NormEnergy: 1.0},
			},
			wantFreqs: []int{900},
		},
		{
			name: "duplicate group beside distinct members",
			pts: []Point{
				{FreqMHz: 1400, Speedup: 1.2, NormEnergy: 1.3},
				{FreqMHz: 1100, Speedup: 1.0, NormEnergy: 1.0},
				{FreqMHz: 1000, Speedup: 1.0, NormEnergy: 1.0},
				{FreqMHz: 700, Speedup: 0.8, NormEnergy: 0.7},
			},
			wantFreqs: []int{1400, 1000, 700},
		},
		{
			name: "same speedup different energy keeps cheaper energy only",
			pts: []Point{
				{FreqMHz: 1000, Speedup: 1.0, NormEnergy: 1.1},
				{FreqMHz: 1200, Speedup: 1.0, NormEnergy: 1.0},
			},
			wantFreqs: []int{1200},
		},
		{
			name: "duplicate outcomes dominated by a faster point drop entirely",
			pts: []Point{
				{FreqMHz: 1300, Speedup: 1.2, NormEnergy: 0.9},
				{FreqMHz: 1000, Speedup: 1.0, NormEnergy: 1.0},
				{FreqMHz: 900, Speedup: 1.0, NormEnergy: 1.0},
			},
			wantFreqs: []int{1300},
		},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			got := Frequencies(Front(c.pts))
			if len(got) != len(c.wantFreqs) {
				t.Fatalf("front frequencies = %v, want %v", got, c.wantFreqs)
			}
			for i := range got {
				if got[i] != c.wantFreqs[i] {
					t.Fatalf("front frequencies = %v, want %v", got, c.wantFreqs)
				}
			}
		})
	}
}

func TestFrontEmpty(t *testing.T) {
	if f := Front(nil); f != nil {
		t.Errorf("front of nothing should be nil, got %v", f)
	}
}

func TestFrontProperties(t *testing.T) {
	// Properties over random point clouds: (1) no front member dominates
	// another; (2) every excluded point is dominated by a front member or
	// duplicates a front member's outcome.
	f := func(seed uint16, n uint8) bool {
		if n == 0 {
			return true
		}
		rng := xrand.New(uint64(seed) + 1)
		pts := make([]Point, int(n%60)+2)
		for i := range pts {
			pts[i] = Point{
				FreqMHz:    500 + 10*i,
				Speedup:    0.5 + rng.Float64(),
				NormEnergy: 0.5 + rng.Float64(),
			}
		}
		front := Front(pts)
		onFront := map[int]bool{}
		for _, p := range front {
			onFront[p.FreqMHz] = true
		}
		for i, a := range front {
			for j, b := range front {
				if i != j && a.Dominates(b) {
					return false
				}
			}
		}
		for _, p := range pts {
			if onFront[p.FreqMHz] {
				continue
			}
			covered := false
			for _, fp := range front {
				if fp.Dominates(p) || (fp.Speedup == p.Speedup && fp.NormEnergy == p.NormEnergy) {
					covered = true
					break
				}
			}
			if !covered {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestExactMatches(t *testing.T) {
	if got := ExactMatches([]int{1, 2, 3}, []int{2, 3, 4}); got != 2 {
		t.Errorf("exact matches %d, want 2", got)
	}
	if got := ExactMatches(nil, []int{1}); got != 0 {
		t.Errorf("empty prediction matches %d, want 0", got)
	}
}

func TestMeanFrontDistance(t *testing.T) {
	front := []Point{{Speedup: 1, NormEnergy: 1}}
	achieved := []Point{{Speedup: 1, NormEnergy: 1}, {Speedup: 1, NormEnergy: 1.2}}
	got := MeanFrontDistance(achieved, front)
	if !almostEq(got, 0.1, 1e-12) {
		t.Errorf("mean distance %g, want 0.1", got)
	}
	if !math.IsNaN(MeanFrontDistance(nil, front)) {
		t.Error("distance of empty set should be NaN")
	}
}

func TestHypervolume(t *testing.T) {
	front := []Point{
		{Speedup: 1.0, NormEnergy: 1.0},
		{Speedup: 0.8, NormEnergy: 0.8},
	}
	// Reference corner (0.5, 1.5): point 1 contributes (1.0-0.8)*(1.5-1.0),
	// point 2 contributes (0.8-0.5)*(1.5-0.8).
	want := 0.2*0.5 + 0.3*0.7
	if got := Hypervolume(front, 0.5, 1.5); !almostEq(got, want, 1e-12) {
		t.Errorf("hypervolume %g, want %g", got, want)
	}
	// A strictly better front has larger hypervolume.
	better := []Point{
		{Speedup: 1.1, NormEnergy: 0.9},
		{Speedup: 0.8, NormEnergy: 0.7},
	}
	if Hypervolume(better, 0.5, 1.5) <= Hypervolume(front, 0.5, 1.5) {
		t.Error("dominating front should have larger hypervolume")
	}
}

func TestFrequencies(t *testing.T) {
	pts := []Point{{FreqMHz: 100}, {FreqMHz: 200}}
	fs := Frequencies(pts)
	if len(fs) != 2 || fs[0] != 100 || fs[1] != 200 {
		t.Errorf("frequencies %v", fs)
	}
}

func almostEq(a, b, tol float64) bool { return math.Abs(a-b) <= tol }
