package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
)

// FloatEq flags == and != between floating-point expressions. Measured
// times, energies and model predictions are never exactly equal; exact
// comparison either always fails or hides a tolerance that should be
// explicit. Test files are exempt — that is where the repository's
// tolerance helpers live and where exact-identity assertions (e.g. two
// identically-seeded streams) are deliberate.
var FloatEq = &Analyzer{
	Name: "floateq",
	Doc:  "flag ==/!= between floating-point expressions outside _test.go files",
	Run:  runFloatEq,
}

func runFloatEq(pass *Pass) {
	inspect(pass, func(n ast.Node) bool {
		x, ok := n.(*ast.BinaryExpr)
		if !ok || (x.Op != token.EQL && x.Op != token.NEQ) {
			return true
		}
		if pass.IsTestFile(x.Pos()) {
			return true
		}
		if !isFloat(pass.TypeOf(x.X)) || !isFloat(pass.TypeOf(x.Y)) {
			return true
		}
		// A constant operand marks a sentinel check (`cfg.DT == 0` for
		// "unset", division guards, `delta != 0` skip conditions): the other
		// side was exactly assigned that constant, so identity is the
		// intended semantics. The numerical-equality bug this pass hunts
		// compares two computed values.
		if isConstExpr(pass, x.X) || isConstExpr(pass, x.Y) {
			return true
		}
		pass.Reportf(x.OpPos, "floating-point %s comparison; use a tolerance (math.Abs(a-b) <= eps)", x.Op)
		return true
	})
}

func isFloat(t types.Type) bool {
	if t == nil {
		return false
	}
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsFloat != 0
}

func isConstExpr(pass *Pass, e ast.Expr) bool {
	if pass.Info == nil {
		return false
	}
	tv, ok := pass.Info.Types[e]
	return ok && tv.Value != nil
}
